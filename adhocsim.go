// Package adhocsim is a discrete-event simulator of IEEE 802.11b ad hoc
// (IBSS) networks, built to reproduce the measurement study of Anastasi,
// Borgia, Conti and Gregori, "IEEE 802.11 Ad Hoc Networks: Performance
// Measurements" (ICDCS Workshops 2003).
//
// The library implements the full stack the paper's testbed exercised:
// an 802.11b PHY with calibrated outdoor propagation and time-varying
// shadowing, the DCF MAC (CSMA/CA, NAV, RTS/CTS, EIFS, retransmissions),
// an IPv4-like network layer, UDP and TCP Reno transports, and the
// paper's CBR and ftp workloads — plus the paper's analytic capacity
// model (Equations (1) and (2)) and one experiment runner per table and
// figure of its evaluation.
//
// # Quick start
//
//	net := adhocsim.NewNetwork(1)
//	a := net.AddStation(adhocsim.Pos(0, 0), adhocsim.MACConfig{DataRate: adhocsim.Rate11})
//	b := net.AddStation(adhocsim.Pos(20, 0), adhocsim.MACConfig{DataRate: adhocsim.Rate11})
//
//	var sink adhocsim.UDPSink
//	sink.ListenUDP(b, 9000)
//	adhocsim.NewCBR(net, a, b.Addr(), 9000, 512, 0).Start()
//	net.Run(10 * time.Second)
//	fmt.Printf("%.2f Mbit/s\n", sink.ThroughputMbps(10*time.Second))
//
// See the examples directory for runnable versions of the paper's
// scenarios, cmd/adhocsim for the experiment CLI, and bench_test.go for
// the per-table/figure reproduction benches.
package adhocsim

import (
	"time"

	"adhocsim/internal/app"
	"adhocsim/internal/capacity"
	"adhocsim/internal/experiments"
	"adhocsim/internal/mac"
	"adhocsim/internal/network"
	"adhocsim/internal/node"
	"adhocsim/internal/phy"
	"adhocsim/internal/runner"
	"adhocsim/internal/scenario"
)

// PHY layer: rates, positions, radio profiles, weather.
type (
	// Rate is an 802.11b transmission rate.
	Rate = phy.Rate
	// Position is a station location in meters.
	Position = phy.Position
	// Profile is a radio + environment model.
	Profile = phy.Profile
	// Weather derives per-day channel variants (Figure 4).
	Weather = phy.Weather
)

// The four 802.11b rates.
const (
	Rate1   = phy.Rate1
	Rate2   = phy.Rate2
	Rate5_5 = phy.Rate5_5
	Rate11  = phy.Rate11
)

// Pos constructs a Position.
func Pos(x, y float64) Position { return phy.Pos(x, y) }

// DefaultProfile returns the radio profile calibrated to the paper's
// Table 3 transmission ranges.
func DefaultProfile() *Profile { return phy.DefaultProfile() }

// TestbedProfile returns DefaultProfile plus static per-link channel
// asymmetry, the model of the paper's four-station testbed conditions.
func TestbedProfile() *Profile { return phy.TestbedProfile() }

// Weather presets for the Figure 4 day-to-day comparison.
var (
	WeatherClear = phy.WeatherClear
	WeatherDamp  = phy.WeatherDamp
)

// MAC layer.
type (
	// MACConfig parameterizes a station's DCF MAC.
	MACConfig = mac.Config
	// ARF is the Automatic Rate Fallback controller (dynamic rate
	// switching, §2 of the paper).
	ARF = mac.ARF
)

// RTS threshold sentinels for MACConfig.RTSThreshold.
const (
	// RTSNever disables RTS/CTS (the paper's basic access mode).
	RTSNever = mac.RTSNever
	// RTSAlways protects every unicast data frame. Note the MACConfig
	// zero value means RTSNever; set RTSThreshold to 1 (or RTSAlways+1)
	// to protect all non-empty frames.
	RTSAlways = mac.RTSAlways
)

// NewARF returns an ARF rate controller starting at the given rate.
func NewARF(start Rate) *ARF { return mac.NewARF(start) }

// Network composition.
type (
	// Network owns one simulation: scheduler, medium, stations.
	Network = node.Network
	// Station is one ad hoc node with its full protocol stack.
	Station = node.Station
	// NetworkOption configures NewNetwork.
	NetworkOption = node.Option
	// NetAddr is an IPv4-style network address.
	NetAddr = network.Addr
	// RandomWaypoint is the mobility model extension.
	RandomWaypoint = node.RandomWaypoint
	// LinkMonitor counts link breaks under mobility (§3.2's route
	// re-calculation discussion).
	LinkMonitor = node.LinkMonitor
)

// NewNetwork creates an empty, seeded network.
func NewNetwork(seed uint64, opts ...NetworkOption) *Network {
	return node.NewNetwork(seed, opts...)
}

// WithProfile overrides the radio profile of a network.
func WithProfile(p *Profile) NetworkOption { return node.WithProfile(p) }

// WithMSS sets the TCP maximum segment size.
func WithMSS(mss int) NetworkOption { return node.WithMSS(mss) }

// DefaultWaypoint returns a pedestrian random-waypoint mobility model.
func DefaultWaypoint() RandomWaypoint { return node.DefaultWaypoint() }

// Workloads and sinks.
type (
	// CBR is the paper's constant-bit-rate UDP source.
	CBR = app.CBR
	// UDPSink measures CBR delivery.
	UDPSink = app.UDPSink
	// Bulk is the paper's saturating ftp-like TCP source.
	Bulk = app.Bulk
	// TCPSink measures bulk TCP delivery.
	TCPSink = app.TCPSink
)

// NewCBR creates a CBR source; interval 0 selects the saturating regime.
func NewCBR(net *Network, from *Station, dst NetAddr, port uint16, size int, interval time.Duration) *CBR {
	return app.NewCBR(net, from, dst, port, size, interval)
}

// StartBulk starts a saturating TCP transfer.
func StartBulk(net *Network, from *Station, dst NetAddr, port uint16, size int) *Bulk {
	return app.StartBulk(net, from, dst, port, size)
}

// Analytic capacity model (Equations (1) and (2)).
type (
	// CapacityModel evaluates the paper's throughput bound.
	CapacityModel = capacity.Model
	// Table2Row is one row of the regenerated Table 2.
	Table2Row = capacity.Table2Row
)

// NewCapacityModel returns the analytic model for one configuration.
func NewCapacityModel(rate Rate, payloadBytes int, rtscts bool) CapacityModel {
	return capacity.New(rate, payloadBytes, rtscts)
}

// Table2 regenerates the paper's Table 2.
func Table2(payloads ...int) []Table2Row { return capacity.Table2(payloads...) }

// Experiment runners: one per table/figure of the paper.
type (
	// Transport selects UDP (CBR) or TCP (ftp) workloads.
	Transport = experiments.Transport
	// TwoNode configures a §3.1 single-session experiment.
	TwoNode = experiments.TwoNode
	// TwoNodeResult is its outcome.
	TwoNodeResult = experiments.TwoNodeResult
	// FourNode configures a §3.3 two-session experiment.
	FourNode = experiments.FourNode
	// FourNodeResult is its outcome.
	FourNodeResult = experiments.FourNodeResult
	// LossSweep configures a §3.2 loss-vs-distance measurement.
	LossSweep = experiments.LossSweep
	// LossPoint is one sample of a loss curve.
	LossPoint = experiments.LossPoint
	// RangeEstimate is one Table 3 row.
	RangeEstimate = experiments.RangeEstimate
	// ChainConfig configures the multi-hop goodput-vs-hop-count sweep.
	ChainConfig = experiments.ChainConfig
	// ChainPoint is one cell of that sweep.
	ChainPoint = experiments.ChainPoint
)

// Workload transports.
const (
	UDP = experiments.UDP
	TCP = experiments.TCP
)

// Experiment entry points (see internal/experiments for documentation).
var (
	RunTwoNode   = experiments.RunTwoNode
	RunFourNode  = experiments.RunFourNode
	RunLossSweep = experiments.RunLossSweep
	Figure2      = experiments.Figure2
	Figure3      = experiments.Figure3
	Figure4      = experiments.Figure4
	Figure7      = experiments.Figure7
	Figure9      = experiments.Figure9
	Figure11     = experiments.Figure11
	Figure12     = experiments.Figure12
	Table3       = experiments.Table3
	// RunChainThroughput measures end-to-end goodput vs hop count over
	// a relay string (UDP and TCP), the canonical multi-hop result the
	// routing subsystem opens up.
	RunChainThroughput = experiments.RunChainThroughput
)

// Parallel replication harness (internal/runner): every experiment can
// be averaged over N independently seeded replications fanned out
// across worker goroutines. Aggregates are bit-identical for any
// worker count.
type (
	// Rep configures a replicated experiment: replication count, worker
	// bound, optional progress callback.
	Rep = experiments.Rep
	// Summary is the aggregate of one metric over replications
	// (mean, 95% CI, std, min, max).
	Summary = runner.Summary
	// TwoNodeSummary aggregates TwoNodeResult metrics over replications.
	TwoNodeSummary = experiments.TwoNodeSummary
	// FourNodeSummary aggregates FourNodeResult metrics over replications.
	FourNodeSummary = experiments.FourNodeSummary
)

// Replicated experiment entry points: the classic runners averaged over
// Rep.Replications independently seeded runs, with 95% confidence
// intervals. Replication 0 reuses the root seed, so Rep{Replications: 1}
// reproduces the classic output exactly.
var (
	ReplicateTwoNode  = experiments.ReplicateTwoNode
	ReplicateFourNode = experiments.ReplicateFourNode
	Figure2Reps       = experiments.Figure2Reps
	Figure3Reps       = experiments.Figure3Reps
	Figure4Reps       = experiments.Figure4Reps
	Figure7Reps       = experiments.Figure7Reps
	Figure9Reps       = experiments.Figure9Reps
	Figure11Reps      = experiments.Figure11Reps
	Figure12Reps      = experiments.Figure12Reps
	Table3Reps        = experiments.Table3Reps
)

// Declarative scenario layer (internal/scenario): one JSON-able Spec
// describes topology, traffic matrix, per-station configuration and
// mobility; one engine compiles and runs it. The classic TwoNode and
// FourNode experiments are presets that compile to Specs.
type (
	// Scenario is a declarative experiment specification.
	Scenario = scenario.Spec
	// ScenarioTopology places the stations (explicit positions or the
	// line/grid/ring/random-uniform generators).
	ScenarioTopology = scenario.Topology
	// ScenarioFlow is one src→dst session of the traffic matrix.
	ScenarioFlow = scenario.Flow
	// ScenarioResult is one scenario run's per-flow and per-station
	// outcome.
	ScenarioResult = scenario.Result
	// ScenarioSummary aggregates a replicated scenario.
	ScenarioSummary = scenario.Summary
	// ScenarioInstance is a compiled, not-yet-run scenario for callers
	// that drive the simulation themselves.
	ScenarioInstance = scenario.Instance
	// ScenarioMAC is the JSON-able MAC parameter block of a Spec.
	ScenarioMAC = scenario.MACParams
	// ScenarioStationOverride replaces the network-wide MAC/profile for
	// one station.
	ScenarioStationOverride = scenario.StationOverride
	// ScenarioMobility attaches a movement model to stations.
	ScenarioMobility = scenario.Mobility
	// ScenarioRouting enables a route control plane ("static" min-hop
	// compilation or on-air "dsdv"), which is what lets flows span
	// more than one hop.
	ScenarioRouting = scenario.RoutingParams
)

// ScenarioDuration converts a time.Duration to the Spec's JSON-friendly
// duration type (marshals as "10s"-style strings).
func ScenarioDuration(d time.Duration) scenario.Duration { return scenario.Duration(d) }

// Scenario entry points (see internal/scenario for documentation).
var (
	// RunScenario compiles and runs a Spec over its horizon.
	RunScenario = scenario.Run
	// BuildScenario compiles a Spec without running it.
	BuildScenario = scenario.Build
	// ReplicateScenario averages a Spec over N independent seeds.
	ReplicateScenario = scenario.Replicate
	// ParseScenario decodes and validates a JSON scenario spec.
	ParseScenario = scenario.ParseSpec
	// ScenarioPresets lists the built-in scenario library.
	ScenarioPresets = scenario.Presets
	// ScenarioPreset returns one built-in scenario by name.
	ScenarioPreset = scenario.Preset
)
