module adhocsim

go 1.24
