// Command capacity evaluates the paper's analytic throughput model
// (Equations (1) and (2)) and regenerates Tables 1 and 2.
//
// Usage:
//
//	capacity                          # print Tables 1 and 2
//	capacity -rate 5.5 -m 700 -rts    # one configuration
//	capacity -rate 11 -verify -replications 8
//
// With -verify the analytic bound is cross-checked against replicated
// simulations of a saturating UDP session (fanned out across -workers
// goroutines): the measured mean ± 95% CI should sit within a few
// percent of the model, as the paper's Figure 2 reports.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"adhocsim/internal/capacity"
	"adhocsim/internal/experiments"
	"adhocsim/internal/obs"
	"adhocsim/internal/phy"
	"adhocsim/internal/runner"
	"adhocsim/internal/trace"
)

func main() {
	rate := flag.Float64("rate", 0, "data rate in Mbit/s (1, 2, 5.5, 11); 0 prints the full tables")
	m := flag.Int("m", 512, "application payload bytes")
	rts := flag.Bool("rts", false, "enable RTS/CTS (Equation (2))")
	tcp := flag.Bool("tcp", false, "charge TCP+IP header overhead instead of UDP+IP")
	verify := flag.Bool("verify", false, "cross-check the model against replicated simulations")
	reps := flag.Int("replications", 4, "simulation replications for -verify")
	workers := flag.Int("workers", 0, "worker goroutines for -verify; 0 = all CPUs")
	seed := flag.Uint64("seed", 42, "root random seed for -verify")
	dur := flag.Duration("dur", 10*time.Second, "simulated horizon per -verify replication")
	progress := flag.Bool("progress", false, "stream -verify run progress to stderr")
	obsOut := flag.String("obs", "", "write an observability report (phase spans) as JSON to this file after -verify")
	obsServe := flag.String("obs-serve", "", "serve live observability during -verify on this address: /metrics, /report, /debug/pprof/")
	flag.Parse()

	if *rate == 0 {
		fmt.Print(experiments.RenderTable1())
		fmt.Println()
		fmt.Print(experiments.RenderTable2())
		return
	}

	var r phy.Rate
	switch *rate {
	case 1:
		r = phy.Rate1
	case 2:
		r = phy.Rate2
	case 5.5:
		r = phy.Rate5_5
	case 11:
		r = phy.Rate11
	default:
		fmt.Fprintf(os.Stderr, "capacity: invalid rate %v (want 1, 2, 5.5 or 11)\n", *rate)
		os.Exit(2)
	}
	model := capacity.New(r, *m, *rts)
	if *tcp {
		model = model.WithOverhead(capacity.OverheadTCP)
	}
	fmt.Printf("rate=%v m=%dB rts=%v overhead=%dB\n", r, *m, *rts, model.OverheadBytes)
	fmt.Printf("  T_DATA        %v\n", model.DataTime())
	fmt.Printf("  cycle time    %v\n", model.CycleTime())
	fmt.Printf("  throughput    %.3f Mbit/s\n", model.ThroughputMbps())
	fmt.Printf("  utilization   %.1f %% of nominal\n", 100*model.Utilization())

	if !*verify {
		return
	}
	tr := experiments.UDP
	if *tcp {
		tr = experiments.TCP
	}
	rep := experiments.Rep{Replications: *reps, Workers: *workers}
	if *progress {
		rep.Progress = runner.ProgressWriter(os.Stderr, "verify")
	}
	// Span-only observability (the analytic check runs below the
	// scenario layer that feeds the metrics registry); the live endpoint
	// still offers pprof.
	rec := trace.NewSpanRecorder()
	report := func() *obs.Report {
		return &obs.Report{Seed: *seed, Replications: *reps, Spans: rec.Records()}
	}
	if *obsServe != "" {
		addr, err := obs.Serve(*obsServe, nil, report)
		if err != nil {
			fmt.Fprintf(os.Stderr, "capacity: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "capacity: observability on http://%s (/report /debug/pprof/)\n", addr)
	}
	sp := rec.StartSpan("verify")
	sum := experiments.ReplicateTwoNode(experiments.TwoNode{
		Rate:       r,
		Transport:  tr,
		RTSCTS:     *rts,
		PacketSize: *m,
		Duration:   *dur,
		Seed:       *seed,
	}, rep)
	sp.End()
	if *obsOut != "" {
		f, err := os.Create(*obsOut)
		if err == nil {
			err = report().WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "capacity: -obs: %v\n", err)
			os.Exit(1)
		}
	}
	dev := 0.0
	if sum.IdealMbps > 0 {
		dev = 100 * (sum.Mbps.Mean - sum.IdealMbps) / sum.IdealMbps
	}
	fmt.Printf("  simulated     %.3f ± %.3f Mbit/s (n=%d, %+.1f%% vs model)\n",
		sum.Mbps.Mean, sum.Mbps.CI95, sum.Mbps.N, dev)
}
