// Command capacity evaluates the paper's analytic throughput model
// (Equations (1) and (2)) and regenerates Tables 1 and 2.
//
// Usage:
//
//	capacity                 # print Tables 1 and 2
//	capacity -rate 5.5 -m 700 -rts   # one configuration
package main

import (
	"flag"
	"fmt"
	"os"

	"adhocsim/internal/capacity"
	"adhocsim/internal/experiments"
	"adhocsim/internal/phy"
)

func main() {
	rate := flag.Float64("rate", 0, "data rate in Mbit/s (1, 2, 5.5, 11); 0 prints the full tables")
	m := flag.Int("m", 512, "application payload bytes")
	rts := flag.Bool("rts", false, "enable RTS/CTS (Equation (2))")
	tcp := flag.Bool("tcp", false, "charge TCP+IP header overhead instead of UDP+IP")
	flag.Parse()

	if *rate == 0 {
		fmt.Print(experiments.RenderTable1())
		fmt.Println()
		fmt.Print(experiments.RenderTable2())
		return
	}

	var r phy.Rate
	switch *rate {
	case 1:
		r = phy.Rate1
	case 2:
		r = phy.Rate2
	case 5.5:
		r = phy.Rate5_5
	case 11:
		r = phy.Rate11
	default:
		fmt.Fprintf(os.Stderr, "capacity: invalid rate %v (want 1, 2, 5.5 or 11)\n", *rate)
		os.Exit(2)
	}
	model := capacity.New(r, *m, *rts)
	if *tcp {
		model = model.WithOverhead(capacity.OverheadTCP)
	}
	fmt.Printf("rate=%v m=%dB rts=%v overhead=%dB\n", r, *m, *rts, model.OverheadBytes)
	fmt.Printf("  T_DATA        %v\n", model.DataTime())
	fmt.Printf("  cycle time    %v\n", model.CycleTime())
	fmt.Printf("  throughput    %.3f Mbit/s\n", model.ThroughputMbps())
	fmt.Printf("  utilization   %.1f %% of nominal\n", 100*model.Utilization())
}
