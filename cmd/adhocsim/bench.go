package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"adhocsim/internal/obs"
	"adhocsim/internal/scenario"
)

// benchLeg is one measured configuration of a benchmarked preset,
// mirroring the per-leg objects of the BENCH_PR*.json documents.
type benchLeg struct {
	MsPerIteration        float64 `json:"ms_per_iteration"`
	NsPerLogicalEvent     float64 `json:"ns_per_logical_event"`
	LogicalEventsPerRun   uint64  `json:"logical_events_per_run"`
	AllocsPerLogicalEvent float64 `json:"allocs_per_logical_event"`
}

// benchPreset is one preset's entry: the human description plus the
// measured leg under the kernel the spec selected.
type benchPreset struct {
	Preset     string    `json:"preset"`
	Sequential *benchLeg `json:"sequential,omitempty"`
	Parallel   *benchLeg `json:"parallel,omitempty"`
}

// runBenchJSON benchmarks the resolved scenario: iters timed iterations,
// each a full Build outside the timer followed by run + collect inside
// it (the discipline the repo's BENCH_PR*.json documents use), and
// writes a document in that same schema to out ("-" = stdout). Medians
// over the iterations keep one descheduling hiccup from skewing the
// figures.
func runBenchJSON(spec scenario.Spec, iters int, out string, status *obs.Status) error {
	if iters < 1 {
		iters = 1
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	walls := make([]float64, 0, iters)
	nsPerEv := make([]float64, 0, iters)
	allocsPerEv := make([]float64, 0, iters)
	var fired uint64
	parallel := false
	for i := 0; i < iters; i++ {
		inst, err := scenario.Build(spec)
		if err != nil {
			return err
		}
		horizon := inst.Spec.Duration.D()
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		inst.Net.Run(horizon)
		inst.Collect(horizon)
		wall := time.Since(t0)
		runtime.ReadMemStats(&m1)
		fired = inst.Net.Fired()
		parallel = inst.Net.Exec != nil
		if fired == 0 {
			return fmt.Errorf("bench: scenario %q fired no events", spec.Name)
		}
		walls = append(walls, float64(wall)/float64(time.Millisecond))
		nsPerEv = append(nsPerEv, float64(wall)/float64(fired))
		allocsPerEv = append(allocsPerEv, float64(m1.Mallocs-m0.Mallocs)/float64(fired))
		status.Progressf("bench %d/%d  (%.1f ms, %.1f ns/event)", i+1, iters, walls[i], nsPerEv[i])
	}
	status.Done()

	leg := &benchLeg{
		MsPerIteration:        round1(median(walls)),
		NsPerLogicalEvent:     round1(median(nsPerEv)),
		LogicalEventsPerRun:   fired,
		AllocsPerLogicalEvent: round2(median(allocsPerEv)),
	}
	entry := benchPreset{Preset: spec.Name}
	if parallel {
		entry.Parallel = leg
	} else {
		entry.Sequential = leg
	}
	slug := strings.ReplaceAll(spec.Name, "-", "_")
	if slug == "" {
		slug = "scenario"
	}
	doc := map[string]any{
		"bench":          fmt.Sprintf("adhocsim -scenario %s -bench-json", spec.Name),
		"package":        "adhocsim/internal/scenario",
		"description":    "CLI benchmark of one scenario workload: wall time, ns per logical event and heap allocations per logical event, medians over the timed iterations",
		"cpu":            cpuModel(),
		"cpus_available": runtime.GOMAXPROCS(0),
		"benchtime":      fmt.Sprintf("%dx, one full Build outside the timer then run + collect per iteration", iters),
		slug:             entry,
	}
	if out == "-" {
		return writeBenchDoc(os.Stdout, doc)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := writeBenchDoc(f, doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeBenchDoc(w *os.File, doc map[string]any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// median of a copy (the caller's slice stays in iteration order).
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func round1(v float64) float64 { return float64(int64(v*10+0.5)) / 10 }
func round2(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }

// cpuModel reports the host CPU model from /proc/cpuinfo, falling back
// to the architecture when unreadable (non-Linux, locked-down runners).
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if name, ok := strings.CutPrefix(line, "model name"); ok {
				if _, v, ok := strings.Cut(name, ":"); ok {
					return strings.TrimSpace(v)
				}
			}
		}
	}
	return runtime.GOARCH
}
