// Command adhocsim runs the paper's experiments end to end and prints
// their tables and figure data.
//
// Usage:
//
//	adhocsim -exp all                  # every table and figure
//	adhocsim -exp fig7 -dur 10s        # one experiment, longer horizon
//	adhocsim -exp fig3 -packets 400    # denser loss sweep
//	adhocsim -exp fig3 -csv            # CSV for plotting
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"adhocsim/internal/experiments"
	"adhocsim/internal/phy"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, table2, fig2, fig3, fig4, table3, fig7, fig9, fig11, fig12, all")
	seed := flag.Uint64("seed", 42, "root random seed")
	dur := flag.Duration("dur", 10*time.Second, "measurement horizon for throughput experiments")
	packets := flag.Int("packets", 200, "probes per distance for loss sweeps")
	csv := flag.Bool("csv", false, "emit CSV instead of tables (fig3/fig4 only)")
	flag.Parse()

	ok := false
	run := func(name string, fn func()) {
		if *exp == name || *exp == "all" {
			fn()
			fmt.Println()
			ok = true
		}
	}

	run("table1", func() { fmt.Print(experiments.RenderTable1()) })
	run("table2", func() { fmt.Print(experiments.RenderTable2()) })
	run("fig2", func() {
		cells := experiments.Figure2(phy.Rate11, *seed, *dur)
		fmt.Print(experiments.RenderFigure2(phy.Rate11, cells))
	})
	run("fig3", func() {
		curves := experiments.Figure3(*seed, *packets)
		if *csv {
			for _, r := range phy.Rates {
				fmt.Printf("# %v\n%s", r, experiments.CSV(curves[r]))
			}
			return
		}
		named := map[string][]experiments.LossPoint{}
		var order []string
		for _, r := range phy.Rates {
			named[r.String()] = curves[r]
			order = append(order, r.String())
		}
		fmt.Print(experiments.RenderLossCurves(
			"Figure 3. Packet loss rate vs distance", named, order))
	})
	run("fig4", func() {
		curves := experiments.Figure4(*seed, *packets)
		if *csv {
			for _, c := range curves {
				fmt.Printf("# %s\n%s", c.Day, experiments.CSV(c.Points))
			}
			return
		}
		named := map[string][]experiments.LossPoint{}
		var order []string
		for _, c := range curves {
			named[c.Day] = c.Points
			order = append(order, c.Day)
		}
		fmt.Print(experiments.RenderLossCurves(
			"Figure 4. 1 Mbit/s transmission range on different days", named, order))
	})
	run("table3", func() {
		fmt.Print(experiments.RenderTable3(experiments.Table3(*seed, *packets)))
	})
	run("fig7", func() {
		fmt.Print(experiments.RenderFourNode(
			"Figure 7. Four stations, 11 Mbit/s, 25/82.5/25 m",
			"3->4", experiments.Figure7(*seed, *dur)))
	})
	run("fig9", func() {
		fmt.Print(experiments.RenderFourNode(
			"Figure 9. Four stations, 2 Mbit/s, 25/92.5/25 m",
			"3->4", experiments.Figure9(*seed, *dur)))
	})
	run("fig11", func() {
		fmt.Print(experiments.RenderFourNode(
			"Figure 11. Symmetric scenario, 11 Mbit/s, 25/62.5/25 m",
			"4->3", experiments.Figure11(*seed, *dur)))
	})
	run("fig12", func() {
		fmt.Print(experiments.RenderFourNode(
			"Figure 12. Symmetric scenario, 2 Mbit/s, 25/62.5/25 m",
			"4->3", experiments.Figure12(*seed, *dur)))
	})

	if !ok {
		fmt.Fprintf(os.Stderr, "adhocsim: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}
