// Command adhocsim runs the paper's experiments end to end and prints
// their tables and figure data.
//
// Usage:
//
//	adhocsim -exp all                   # every table and figure
//	adhocsim -exp fig7 -dur 10s         # one experiment, longer horizon
//	adhocsim -exp fig3 -packets 400     # denser loss sweep
//	adhocsim -exp fig3 -csv             # CSV for plotting
//	adhocsim -exp fig7 -replications 8  # mean ± 95% CI over 8 seeds
//	adhocsim -exp fig3 -json -workers 4 # machine-readable, bounded pool
//
// Replications fan out across -workers goroutines (default: all CPUs)
// through the internal/runner harness; results are bit-identical for
// any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"adhocsim/internal/capacity"
	"adhocsim/internal/experiments"
	"adhocsim/internal/phy"
	"adhocsim/internal/runner"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, table2, fig2, fig3, fig4, table3, fig7, fig9, fig11, fig12, all")
	seed := flag.Uint64("seed", 42, "root random seed; replication seeds derive from it")
	dur := flag.Duration("dur", 10*time.Second, "measurement horizon for throughput experiments")
	packets := flag.Int("packets", 200, "probes per distance for loss sweeps")
	csv := flag.Bool("csv", false, "emit CSV instead of tables (fig3/fig4 only)")
	jsonOut := flag.Bool("json", false, "emit JSON instead of tables")
	reps := flag.Int("replications", 1, "independent replications per experiment (reported as mean ± 95% CI)")
	workers := flag.Int("workers", 0, "worker goroutines for parallel runs; 0 = all CPUs")
	progress := flag.Bool("progress", false, "stream run progress to stderr")
	flag.Parse()

	rep := experiments.Rep{Replications: *reps, Workers: *workers}
	if *progress {
		rep.Progress = runner.ProgressWriter(os.Stderr, "runs")
	}

	// emit prints v as JSON under -json and the rendered text otherwise;
	// experiments without a natural JSON value (the parameter table)
	// always print text.
	emit := func(text string, v any) {
		if *jsonOut && v != nil {
			if err := runner.WriteJSON(os.Stdout, v); err != nil {
				fmt.Fprintf(os.Stderr, "adhocsim: %v\n", err)
				os.Exit(1)
			}
			return
		}
		fmt.Print(text)
	}

	ok := false
	run := func(name string, fn func()) {
		if *exp == name || *exp == "all" {
			fn()
			fmt.Println()
			ok = true
		}
	}

	run("table1", func() { emit(experiments.RenderTable1(), nil) })
	run("table2", func() { emit(experiments.RenderTable2(), capacity.Table2()) })
	run("fig2", func() {
		cells := experiments.Figure2Reps(phy.Rate11, *seed, *dur, rep)
		emit(experiments.RenderFigure2(phy.Rate11, cells), cells)
	})
	run("fig3", func() {
		curves := experiments.Figure3Reps(*seed, *packets, rep)
		if *csv {
			for _, r := range phy.Rates {
				fmt.Printf("# %v\n%s", r, experiments.CSV(curves[r]))
			}
			return
		}
		named := map[string][]experiments.LossPoint{}
		var order []string
		for _, r := range phy.Rates {
			named[r.String()] = curves[r]
			order = append(order, r.String())
		}
		emit(experiments.RenderLossCurves(
			"Figure 3. Packet loss rate vs distance", named, order), named)
	})
	run("fig4", func() {
		curves := experiments.Figure4Reps(*seed, *packets, rep)
		if *csv {
			for _, c := range curves {
				fmt.Printf("# %s\n%s", c.Day, experiments.CSV(c.Points))
			}
			return
		}
		named := map[string][]experiments.LossPoint{}
		var order []string
		for _, c := range curves {
			named[c.Day] = c.Points
			order = append(order, c.Day)
		}
		emit(experiments.RenderLossCurves(
			"Figure 4. 1 Mbit/s transmission range on different days", named, order), curves)
	})
	run("table3", func() {
		rows := experiments.Table3Reps(*seed, *packets, rep)
		emit(experiments.RenderTable3(rows), rows)
	})
	run("fig7", func() {
		cells := experiments.Figure7Reps(*seed, *dur, rep)
		emit(experiments.RenderFourNode(
			"Figure 7. Four stations, 11 Mbit/s, 25/82.5/25 m", "3->4", cells), cells)
	})
	run("fig9", func() {
		cells := experiments.Figure9Reps(*seed, *dur, rep)
		emit(experiments.RenderFourNode(
			"Figure 9. Four stations, 2 Mbit/s, 25/92.5/25 m", "3->4", cells), cells)
	})
	run("fig11", func() {
		cells := experiments.Figure11Reps(*seed, *dur, rep)
		emit(experiments.RenderFourNode(
			"Figure 11. Symmetric scenario, 11 Mbit/s, 25/62.5/25 m", "4->3", cells), cells)
	})
	run("fig12", func() {
		cells := experiments.Figure12Reps(*seed, *dur, rep)
		emit(experiments.RenderFourNode(
			"Figure 12. Symmetric scenario, 2 Mbit/s, 25/62.5/25 m", "4->3", cells), cells)
	})

	if !ok {
		fmt.Fprintf(os.Stderr, "adhocsim: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}
