// Command adhocsim runs the paper's experiments end to end and prints
// their tables and figure data, and runs arbitrary declarative
// scenarios from JSON specs or the built-in preset library.
//
// Usage:
//
//	adhocsim -exp all                   # every table and figure
//	adhocsim -exp fig7 -dur 10s         # one experiment, longer horizon
//	adhocsim -exp fig3 -packets 400     # denser loss sweep
//	adhocsim -exp fig3 -csv             # CSV for plotting
//	adhocsim -exp fig7 -replications 8  # mean ± 95% CI over 8 seeds
//	adhocsim -exp fig3 -json -workers 4 # machine-readable, bounded pool
//
//	adhocsim -exp churn -replications 8 # graceful degradation vs churn rate
//
//	adhocsim -list-scenarios            # the built-in scenario library
//	adhocsim -scenario hidden-terminal  # run a preset by name
//	adhocsim -scenario spec.json -replications 8 -json
//	adhocsim -scenario random-16k -scheduler calendar -progress
//	adhocsim -scenario churn-random-16k -max-wall 5m  # bounded wall clock
//
// Replications fan out across -workers goroutines (default: all CPUs)
// through the internal/runner harness; results are bit-identical for
// any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"adhocsim/internal/capacity"
	"adhocsim/internal/experiments"
	"adhocsim/internal/obs"
	"adhocsim/internal/phy"
	"adhocsim/internal/routing"
	"adhocsim/internal/runner"
	"adhocsim/internal/scenario"
	"adhocsim/internal/sim"
	"adhocsim/internal/trace"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, table2, fig2, fig3, fig4, table3, fig7, fig9, fig11, fig12, chain, churn, all")
	seed := flag.Uint64("seed", 42, "root random seed; replication seeds derive from it")
	dur := flag.Duration("dur", 10*time.Second, "measurement horizon for throughput experiments")
	packets := flag.Int("packets", 200, "probes per distance for loss sweeps")
	csv := flag.Bool("csv", false, "emit CSV instead of tables (fig3/fig4 only)")
	jsonOut := flag.Bool("json", false, "emit JSON instead of tables")
	reps := flag.Int("replications", 1, "independent replications per experiment (reported as mean ± 95% CI)")
	workers := flag.Int("workers", 0, "worker goroutines for parallel runs; 0 = all CPUs")
	progress := flag.Bool("progress", false, "stream run progress to stderr")
	scen := flag.String("scenario", "", "run a declarative scenario: a spec .json file or a preset name (see -list-scenarios)")
	sched := flag.String("scheduler", "", "event-queue backend for -scenario runs: heap or calendar (default: the spec's \"scheduler\" block, else heap)")
	parRegions := flag.String("parallel-regions", "", "run -scenario on the space-partitioned parallel kernel: COLSxROWS (e.g. 4x4) or auto; with -replications > 1 the worker budget splits between replications and regions")
	partitioner := flag.String("partitioner", "", "cut-line placement for the parallel region grid: balanced (default) or uniform")
	listScen := flag.Bool("list-scenarios", false, "list the built-in scenario presets and exit")
	rebuild := flag.Bool("rebuild-each-rep", false, "verification: rebuild the network for every scenario replication instead of re-seeding each worker's arena (results are identical, only slower)")
	routingProto := flag.String("routing", "static", "route control plane for -exp chain: static or dsdv")
	hops := flag.Int("hops", 8, "longest chain for -exp chain (hops, not stations)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit (go tool pprof)")
	maxWall := flag.Duration("max-wall", 0, "wall-clock budget for the whole invocation; on expiry, flush profiles, note the partial results, and exit")
	obsOut := flag.String("obs", "", "write a run report (metrics snapshot, per-phase spans, trace tail) as JSON to this file after a -scenario run")
	obsServe := flag.String("obs-serve", "", "serve live observability during a -scenario run on this address: /metrics (Prometheus text), /report (JSON), /debug/pprof/")
	traceLv := flag.String("trace", "", "trace MAC retry/backoff and route-change events to stderr during a -scenario run: info or debug")
	benchJSON := flag.String("bench-json", "", "benchmark the -scenario workload and write ns/logical-event and allocation figures as JSON to this file instead of running normally")
	benchIters := flag.Int("bench-iterations", 5, "timed iterations for -bench-json (the report takes medians)")
	flag.Parse()

	startWallGuard(*maxWall)
	startProfiles(*cpuProfile, *memProfile)
	// Flush profiles on normal return and on panic alike; flushProfiles
	// (not exit) so a panic keeps unwinding and prints its trace.
	defer flushProfiles()

	scenario.SetRebuildEachRep(*rebuild)

	if *listScen {
		listScenarios()
		return
	}
	if *scen != "" {
		// -seed and -dur override the spec's embedded values only when the
		// user set them explicitly; otherwise the spec/preset wins. Flags
		// that only apply to the paper experiments are called out rather
		// than silently dropped.
		var seedOv *uint64
		var durOv *time.Duration
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "seed":
				seedOv = seed
			case "dur":
				durOv = dur
			case "exp", "csv", "packets", "routing", "hops":
				fmt.Fprintf(os.Stderr, "adhocsim: -%s has no effect in -scenario mode\n", f.Name)
			}
		})
		runScenario(*scen, scenarioOpts{
			reps: *reps, workers: *workers,
			jsonOut: *jsonOut, progress: *progress,
			seed: seedOv, dur: durOv,
			parRegions: *parRegions, partitioner: *partitioner, sched: *sched,
			obsOut: *obsOut, obsServe: *obsServe, traceLevel: *traceLv,
			benchJSON: *benchJSON, benchIters: *benchIters,
		})
		return
	}
	for _, f := range []struct{ name, v string }{
		{"parallel-regions", *parRegions}, {"partitioner", *partitioner}, {"scheduler", *sched},
		{"obs", *obsOut}, {"obs-serve", *obsServe}, {"trace", *traceLv}, {"bench-json", *benchJSON},
	} {
		if f.v != "" {
			fmt.Fprintf(os.Stderr, "adhocsim: -%s has no effect outside -scenario mode\n", f.name)
		}
	}

	rep := experiments.Rep{Replications: *reps, Workers: *workers}
	if *progress {
		rep.Progress = runner.ProgressWriter(os.Stderr, "runs")
	}

	// emit prints v as JSON under -json and the rendered text otherwise;
	// experiments without a natural JSON value (the parameter table)
	// always print text.
	emit := func(text string, v any) {
		if *jsonOut && v != nil {
			if err := runner.WriteJSON(os.Stdout, v); err != nil {
				fmt.Fprintf(os.Stderr, "adhocsim: %v\n", err)
				exit(1)
			}
			return
		}
		fmt.Print(text)
	}

	ok := false
	run := func(name string, fn func()) {
		if *exp == name || *exp == "all" {
			fn()
			fmt.Println()
			ok = true
		}
	}

	run("table1", func() { emit(experiments.RenderTable1(), nil) })
	run("table2", func() { emit(experiments.RenderTable2(), capacity.Table2()) })
	run("fig2", func() {
		cells := experiments.Figure2Reps(phy.Rate11, *seed, *dur, rep)
		emit(experiments.RenderFigure2(phy.Rate11, cells), cells)
	})
	run("fig3", func() {
		curves := experiments.Figure3Reps(*seed, *packets, rep)
		if *csv {
			for _, r := range phy.Rates {
				fmt.Printf("# %v\n%s", r, experiments.CSV(curves[r]))
			}
			return
		}
		named := map[string][]experiments.LossPoint{}
		var order []string
		for _, r := range phy.Rates {
			named[r.String()] = curves[r]
			order = append(order, r.String())
		}
		emit(experiments.RenderLossCurves(
			"Figure 3. Packet loss rate vs distance", named, order), named)
	})
	run("fig4", func() {
		curves := experiments.Figure4Reps(*seed, *packets, rep)
		if *csv {
			for _, c := range curves {
				fmt.Printf("# %s\n%s", c.Day, experiments.CSV(c.Points))
			}
			return
		}
		named := map[string][]experiments.LossPoint{}
		var order []string
		for _, c := range curves {
			named[c.Day] = c.Points
			order = append(order, c.Day)
		}
		emit(experiments.RenderLossCurves(
			"Figure 4. 1 Mbit/s transmission range on different days", named, order), curves)
	})
	run("table3", func() {
		rows := experiments.Table3Reps(*seed, *packets, rep)
		emit(experiments.RenderTable3(rows), rows)
	})
	run("fig7", func() {
		cells := experiments.Figure7Reps(*seed, *dur, rep)
		emit(experiments.RenderFourNode(
			"Figure 7. Four stations, 11 Mbit/s, 25/82.5/25 m", "3->4", cells), cells)
	})
	run("fig9", func() {
		cells := experiments.Figure9Reps(*seed, *dur, rep)
		emit(experiments.RenderFourNode(
			"Figure 9. Four stations, 2 Mbit/s, 25/92.5/25 m", "3->4", cells), cells)
	})
	run("fig11", func() {
		cells := experiments.Figure11Reps(*seed, *dur, rep)
		emit(experiments.RenderFourNode(
			"Figure 11. Symmetric scenario, 11 Mbit/s, 25/62.5/25 m", "4->3", cells), cells)
	})
	run("fig12", func() {
		cells := experiments.Figure12Reps(*seed, *dur, rep)
		emit(experiments.RenderFourNode(
			"Figure 12. Symmetric scenario, 2 Mbit/s, 25/62.5/25 m", "4->3", cells), cells)
	})
	// The chain and churn sweeps are extensions beyond the paper's
	// figures, so they run only when named — "all" keeps meaning "the
	// paper".
	if *exp == "churn" {
		cfg := experiments.ChurnConfig{Seed: *seed, Duration: *dur}
		points, err := experiments.ChurnReps(cfg, rep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "adhocsim: %v\n", err)
			exit(1)
		}
		emit(experiments.RenderChurn(cfg, points), points)
		fmt.Println()
		ok = true
	}
	if *exp == "chain" {
		if *routingProto != routing.ProtocolStatic && *routingProto != routing.ProtocolDSDV {
			fmt.Fprintf(os.Stderr, "adhocsim: -routing %q: want one of %v\n", *routingProto, routing.Protocols())
			exit(2)
		}
		if *hops < 1 {
			fmt.Fprintf(os.Stderr, "adhocsim: -hops must be ≥ 1\n")
			exit(2)
		}
		cfg := experiments.ChainConfig{
			MaxHops:  *hops,
			Routing:  *routingProto,
			Seed:     *seed,
			Duration: *dur,
		}
		points, err := experiments.ChainThroughputReps(cfg, rep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "adhocsim: %v\n", err)
			exit(1)
		}
		emit(experiments.RenderChain(cfg, points), points)
		fmt.Println()
		ok = true
	}

	if !ok {
		fmt.Fprintf(os.Stderr, "adhocsim: unknown experiment %q\n", *exp)
		flag.Usage()
		exit(2)
	}
}

// startWallGuard arms the -max-wall wall-clock budget: when the timer
// fires, the process notes which results are missing, flushes any
// profiles collected so far, and exits nonzero. A hard exit (not a
// cooperative cancel) is deliberate — the guard exists for unattended
// sweeps on shared machines, where a run that blows its budget must
// yield the box even if a kernel loop is wedged; whatever was already
// printed stands as partial results.
func startWallGuard(budget time.Duration) {
	if budget <= 0 {
		return
	}
	time.AfterFunc(budget, func() {
		fmt.Fprintf(os.Stderr, "adhocsim: -max-wall %v exceeded; results printed so far are partial\n", budget)
		exit(3)
	})
}

// memProfilePath is the heap-profile destination registered by
// startProfiles, written by exit just before the process terminates.
var memProfilePath string

// startProfiles begins CPU profiling and registers the heap profile
// destination. Profiles let future performance work see the simulator's
// real hot paths under real workloads (large -scenario runs,
// replicated experiments) instead of micro-benchmarks alone:
//
//	adhocsim -scenario random-1024 -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
func startProfiles(cpuPath, memPath string) {
	memProfilePath = memPath
	if cpuPath == "" {
		return
	}
	f, err := os.Create(cpuPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adhocsim: -cpuprofile: %v\n", err)
		os.Exit(1)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "adhocsim: -cpuprofile: %v\n", err)
		os.Exit(1)
	}
}

// profilesFlushed makes flushProfiles idempotent: it runs both from
// main's deferred call (normal return, panic) and from exit (error
// paths).
var profilesFlushed bool

// flushProfiles stops the CPU profile and writes the heap profile.
func flushProfiles() {
	if profilesFlushed {
		return
	}
	profilesFlushed = true
	pprof.StopCPUProfile()
	if memProfilePath != "" {
		f, err := os.Create(memProfilePath)
		if err == nil {
			runtime.GC() // materialize up-to-date allocation stats
			err = pprof.WriteHeapProfile(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "adhocsim: -memprofile: %v\n", err)
		}
	}
}

// exit flushes any active profiles and terminates with the given code,
// so profile files are complete even on error exits.
func exit(code int) {
	flushProfiles()
	os.Exit(code)
}

// listScenarios prints the preset library, one line per preset with its
// one-line description, plus the valid topology kinds, profile names
// and routing protocols for spec authors. The name column sizes itself
// to the longest preset name so descriptions stay aligned as the
// library grows.
func listScenarios() {
	presets := scenario.Presets()
	width := 0
	for _, p := range presets {
		if len(p.Name) > width {
			width = len(p.Name)
		}
	}
	fmt.Println("Built-in scenarios (run with -scenario <name>):")
	for _, p := range presets {
		fmt.Printf("  %-*s  %s\n", width, p.Name, p.Description)
	}
	fmt.Printf("\nTopology kinds for JSON specs: %s\n", strings.Join(scenario.TopologyKinds(), ", "))
	fmt.Printf("Radio profiles: %s\n", strings.Join(scenario.ProfileNames(), ", "))
	fmt.Printf("Routing protocols (\"routing\" spec block): %s\n", strings.Join(routing.Protocols(), ", "))
	fmt.Printf("Event-queue backends (\"scheduler\" spec block, -scheduler): %s, %s\n", sim.KindHeap, sim.KindCalendar)
}

// scenarioOpts carries every -scenario mode knob into runScenario.
type scenarioOpts struct {
	reps, workers                  int
	jsonOut, progress              bool
	seed                           *uint64
	dur                            *time.Duration
	parRegions, partitioner, sched string
	obsOut, obsServe, traceLevel   string
	benchJSON                      string
	benchIters                     int
}

// runScenario resolves ref as a spec file (when it exists or ends in
// .json) or a preset name, applies any explicit -seed/-dur/-scheduler
// overrides and the -parallel-regions/-partitioner kernel selection,
// runs it with replication, and prints the summary.
//
// Every human-facing stderr line — the exec-plan line, progress meters,
// trace output, observability notices — funnels through one obs.Status
// writer, so parallel replications can never splice lines into each
// other or into a live progress meter.
func runScenario(ref string, o scenarioOpts) {
	status := obs.NewStatus(os.Stderr)
	fail := func(code int, err error) {
		status.Linef("adhocsim: %v", err)
		exit(code)
	}
	spec, err := loadScenario(ref)
	if err != nil {
		fail(2, err)
	}
	if o.seed != nil {
		spec.Seed = *o.seed
	}
	if o.dur != nil {
		spec.Duration = scenario.Duration(*o.dur)
	}
	if o.sched != "" {
		spec.Scheduler = o.sched
	}
	if o.parRegions != "" {
		// With one replication the whole -workers budget is the
		// region-worker count; with a sweep, leave Workers unset so
		// Replicate's splitWorkers divides the budget between
		// replication and region workers instead of oversubscribing.
		regionWorkers := o.workers
		if o.reps > 1 {
			regionWorkers = 0
		}
		par, err := parseParallelRegions(o.parRegions, regionWorkers)
		if err != nil {
			fail(2, err)
		}
		spec.Parallel = par
	}
	if o.partitioner != "" {
		if spec.Parallel == nil {
			status.Linef("adhocsim: -partitioner has no effect without a parallel block (-parallel-regions or the spec's \"parallel\")")
		} else {
			spec.Parallel.Partitioner = o.partitioner
		}
	}

	// Observability wiring. The registry and tracer ride the spec
	// (JSON-invisible fields), so every layer below publishes into them;
	// results stay byte-identical either way — the equivalence tests in
	// internal/scenario pin that.
	obsOn := o.obsOut != "" || o.obsServe != ""
	var reg *obs.Registry
	if obsOn {
		reg = obs.NewRegistry()
		spec.Obs = &scenario.ObsParams{Enabled: true}
		spec.ObsRegistry = reg
	}
	var tr *trace.Tracer
	if o.traceLevel != "" {
		lv, err := trace.ParseLevel(o.traceLevel)
		if err != nil {
			fail(2, err)
		}
		if lv != trace.LevelOff {
			// The base handle's clock is a placeholder: every subsystem
			// gets a WithClock handle bound to its own scheduler.
			tr = trace.New(status.Writer(), lv, func() time.Duration { return 0 })
			spec.Tracer = tr
		}
	}
	rec := trace.NewSpanRecorder()
	report := func() *obs.Report {
		return &obs.Report{
			Scenario:     spec.Name,
			Seed:         spec.Seed,
			Replications: o.reps,
			Spans:        rec.Records(),
			Metrics:      reg.Snapshot(),
			TraceTail:    tr.Recent(64),
		}
	}
	if o.obsServe != "" {
		addr, err := obs.Serve(o.obsServe, reg, report)
		if err != nil {
			fail(1, err)
		}
		status.Linef("adhocsim: observability on http://%s (/metrics /report /debug/pprof/)", addr)
	}

	if o.benchJSON != "" {
		if err := runBenchJSON(spec, o.benchIters, o.benchJSON, status); err != nil {
			fail(1, err)
		}
		return
	}

	if o.progress {
		// Surface the chosen execution plan up front: the fitted region
		// grid and how the worker budget splits between replications and
		// regions. Nothing prints for sequential runs.
		if plan, err := scenario.PlanExec(spec, o.reps, o.workers); err == nil && plan != nil {
			status.Linef("adhocsim: %s", plan.Plan())
		}
	}
	var sum scenario.Summary
	if o.reps <= 1 && (o.progress || obsOn) {
		// A single run has no per-replication completions to count, so
		// -progress meters the run itself: simulated time against the
		// horizon, plus events fired — the meter a city-scale run needs.
		// Driving the instance here (the same 1% slices RunProgressExec
		// takes) also gives the run report its build/run/drain phases and
		// refreshes the live /metrics view between slices.
		if err := spec.Validate(); err != nil {
			fail(2, err)
		}
		sp := rec.StartSpan("build")
		inst, err := scenario.Build(spec)
		sp.End()
		if err != nil {
			fail(1, err)
		}
		horizon := inst.Spec.Duration.D()
		sp = rec.StartSpan("run")
		const steps = 100
		for i := 1; i <= steps; i++ {
			target := time.Duration(int64(horizon) * int64(i) / steps)
			inst.Net.Run(target - inst.Net.Now())
			inst.PublishObs()
			if o.progress {
				status.Progressf("sim %v / %v  (%d events)", inst.Net.Now().Truncate(time.Millisecond), horizon, inst.Net.Fired())
			}
		}
		sp.End()
		status.Done()
		sp = rec.StartSpan("drain")
		res := inst.Collect(horizon)
		sp.End()
		sum = scenario.SummarizeRuns(spec, []scenario.Result{res})
		sum.Exec = inst.ExecStats()
	} else {
		var prog func(done, total int)
		if o.progress {
			prog = func(done, total int) {
				status.Progressf("runs %d/%d", done, total)
				if done >= total {
					status.Done()
				}
			}
		}
		sp := rec.StartSpan("run")
		sum, err = scenario.Replicate(spec, o.reps, o.workers, prog)
		sp.End()
		if err != nil {
			fail(1, err)
		}
	}
	if o.obsOut != "" {
		if err := writeReport(o.obsOut, report()); err != nil {
			fail(1, err)
		}
	}
	if o.jsonOut {
		if err := runner.WriteJSON(os.Stdout, sum); err != nil {
			fail(1, err)
		}
		return
	}
	fmt.Print(scenario.Render(sum))
}

// writeReport writes the observability report to path ("-" = stdout).
func writeReport(path string, rep *obs.Report) error {
	if path == "-" {
		return rep.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseParallelRegions turns a -parallel-regions value into the spec's
// parallel block: "auto" lets the builder size the grid from the field
// extent, "COLSxROWS" forces the shape. workers pins the region-worker
// count when non-zero (results never depend on it); zero lets the
// sweep's splitWorkers derive it from the budget.
func parseParallelRegions(v string, workers int) (*scenario.ParallelParams, error) {
	par := &scenario.ParallelParams{Workers: workers}
	if strings.EqualFold(v, "auto") {
		return par, nil
	}
	c, r, ok := strings.Cut(strings.ToLower(v), "x")
	if ok {
		cols, errC := strconv.Atoi(c)
		rows, errR := strconv.Atoi(r)
		if errC == nil && errR == nil && cols > 0 && rows > 0 {
			par.Cols, par.Rows = cols, rows
			return par, nil
		}
	}
	return nil, fmt.Errorf("-parallel-regions %q: want COLSxROWS (e.g. 4x4) or auto", v)
}

// loadScenario resolves a -scenario argument: an existing regular file
// (or anything .json) parses as a spec; otherwise it is a preset name.
func loadScenario(ref string) (scenario.Spec, error) {
	if fi, err := os.Stat(ref); (err == nil && fi.Mode().IsRegular()) || strings.HasSuffix(ref, ".json") {
		data, err := os.ReadFile(ref)
		if err != nil {
			return scenario.Spec{}, err
		}
		return scenario.ParseSpec(data)
	}
	return scenario.Preset(ref)
}
