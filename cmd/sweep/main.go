// Command sweep runs a generic loss-vs-distance sweep and emits CSV or
// JSON, for exploring configurations beyond the paper's figures
// (different rates, weather, shadowing, packet sizes).
//
// Usage:
//
//	sweep -rate 11 -from 10 -to 80 -step 5 -packets 300 > curve.csv
//	sweep -rate 1 -weather damp
//	sweep -rate 11 -replications 8 -workers 4 -json
//
// Every (distance, replication) job runs on its own worker through the
// internal/runner harness; the output is bit-identical for any
// -workers value.
package main

import (
	"flag"
	"fmt"
	"os"

	"adhocsim/internal/experiments"
	"adhocsim/internal/obs"
	"adhocsim/internal/phy"
	"adhocsim/internal/runner"
	"adhocsim/internal/trace"
)

func main() {
	rate := flag.Float64("rate", 11, "data rate in Mbit/s (1, 2, 5.5, 11)")
	from := flag.Float64("from", 10, "start distance, meters")
	to := flag.Float64("to", 160, "end distance, meters")
	step := flag.Float64("step", 10, "distance step, meters")
	packets := flag.Int("packets", 200, "probes per distance")
	size := flag.Int("size", 512, "probe payload bytes")
	seed := flag.Uint64("seed", 1, "root random seed; replication seeds derive from it")
	sigma := flag.Float64("sigma", -1, "override shadowing σ in dB (-1 keeps default)")
	weather := flag.String("weather", "clear", "weather profile: clear or damp")
	reps := flag.Int("replications", 1, "independent probe trains per distance (loss is their mean, with 95% CI)")
	workers := flag.Int("workers", 0, "worker goroutines; 0 = all CPUs")
	jsonOut := flag.Bool("json", false, "emit JSON instead of CSV")
	progress := flag.Bool("progress", false, "stream sweep progress to stderr")
	obsOut := flag.String("obs", "", "write an observability report (phase spans) as JSON to this file")
	obsServe := flag.String("obs-serve", "", "serve live observability during the sweep on this address: /metrics, /report, /debug/pprof/")
	flag.Parse()

	var r phy.Rate
	switch *rate {
	case 1:
		r = phy.Rate1
	case 2:
		r = phy.Rate2
	case 5.5:
		r = phy.Rate5_5
	case 11:
		r = phy.Rate11
	default:
		fmt.Fprintf(os.Stderr, "sweep: invalid rate %v\n", *rate)
		os.Exit(2)
	}
	if *from <= 0 || *to < *from || *step <= 0 {
		fmt.Fprintln(os.Stderr, "sweep: invalid distance range")
		os.Exit(2)
	}

	prof := phy.DefaultProfile()
	switch *weather {
	case "clear":
		prof = phy.WeatherClear.Apply(prof)
	case "damp":
		prof = phy.WeatherDamp.Apply(prof)
	default:
		fmt.Fprintf(os.Stderr, "sweep: unknown weather %q\n", *weather)
		os.Exit(2)
	}
	if *sigma >= 0 {
		prof.Fading.SigmaDB = *sigma
	}

	var ds []float64
	for d := *from; d <= *to; d += *step {
		ds = append(ds, d)
	}
	cfg := experiments.LossSweep{
		Rate:         r,
		Distances:    ds,
		Packets:      *packets,
		PacketSize:   *size,
		Seed:         *seed,
		Profile:      prof,
		Replications: *reps,
		Workers:      *workers,
	}
	if *progress {
		cfg.Progress = runner.ProgressWriter(os.Stderr, "sweep")
	}
	// Observability is span-only here: the loss sweep drives the kernel
	// through internal/experiments, below the scenario layer that feeds
	// the metrics registry; the live endpoint still offers pprof.
	rec := trace.NewSpanRecorder()
	report := func() *obs.Report {
		return &obs.Report{Seed: *seed, Replications: *reps, Spans: rec.Records()}
	}
	if *obsServe != "" {
		addr, err := obs.Serve(*obsServe, nil, report)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "sweep: observability on http://%s (/report /debug/pprof/)\n", addr)
	}
	sp := rec.StartSpan("sweep")
	points := experiments.RunLossSweep(cfg)
	sp.End()
	crossing := experiments.CrossingDistance(points, 0.5)
	if *obsOut != "" {
		f, err := os.Create(*obsOut)
		if err == nil {
			err = report().WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: -obs: %v\n", err)
			os.Exit(1)
		}
	}

	if *jsonOut {
		err := runner.WriteJSON(os.Stdout, struct {
			Rate         string                  `json:"rate"`
			Weather      string                  `json:"weather"`
			SigmaDB      float64                 `json:"sigma_db"`
			Packets      int                     `json:"packets"`
			Replications int                     `json:"replications"`
			Seed         uint64                  `json:"seed"`
			Points       []experiments.LossPoint `json:"points"`
			Crossing50   float64                 `json:"crossing50_m"`
		}{r.String(), *weather, prof.Fading.SigmaDB, *packets, *reps, *seed, points, crossing})
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("# rate=%v weather=%s sigma=%.1fdB packets=%d replications=%d\n",
		r, *weather, prof.Fading.SigmaDB, *packets, *reps)
	fmt.Print(experiments.CSV(points))
	fmt.Printf("# 50%% crossing: %.1f m\n", crossing)
}
