package adhocsim_test

import (
	"testing"
	"time"

	"adhocsim"
)

// These tests exercise the public facade exactly as a downstream user
// would, keeping the exported API honest.

func TestPublicQuickstartFlow(t *testing.T) {
	net := adhocsim.NewNetwork(1)
	a := net.AddStation(adhocsim.Pos(0, 0), adhocsim.MACConfig{DataRate: adhocsim.Rate11})
	b := net.AddStation(adhocsim.Pos(20, 0), adhocsim.MACConfig{DataRate: adhocsim.Rate11})

	var sink adhocsim.UDPSink
	sink.ListenUDP(b, 9000)
	adhocsim.NewCBR(net, a, b.Addr(), 9000, 512, 0).Start()
	net.Run(time.Second)

	got := sink.ThroughputMbps(time.Second)
	ideal := adhocsim.NewCapacityModel(adhocsim.Rate11, 512, false).ThroughputMbps()
	if got < 0.85*ideal || got > 1.05*ideal {
		t.Fatalf("throughput %.2f vs ideal %.2f", got, ideal)
	}
}

func TestPublicTCPFlow(t *testing.T) {
	net := adhocsim.NewNetwork(2, adhocsim.WithMSS(512))
	a := net.AddStation(adhocsim.Pos(0, 0), adhocsim.MACConfig{})
	b := net.AddStation(adhocsim.Pos(15, 0), adhocsim.MACConfig{})

	var sink adhocsim.TCPSink
	sink.ListenTCP(b, 80)
	bulk := adhocsim.StartBulk(net, a, b.Addr(), 80, 512)
	net.Run(time.Second)

	if sink.Bytes == 0 {
		t.Fatal("no TCP bytes delivered through the public API")
	}
	if !bulk.Conn().Established() {
		t.Fatal("connection not established")
	}
}

func TestPublicTable2(t *testing.T) {
	rows := adhocsim.Table2()
	if len(rows) != 8 {
		t.Fatalf("Table2 rows = %d", len(rows))
	}
	if rows[0].Rate != adhocsim.Rate11 {
		t.Fatal("Table2 ordering wrong")
	}
}

func TestPublicExperimentRunners(t *testing.T) {
	res := adhocsim.RunTwoNode(adhocsim.TwoNode{
		Transport: adhocsim.UDP,
		Duration:  500 * time.Millisecond,
		Seed:      3,
	})
	if res.MeasuredMbps <= 0 || res.IdealMbps <= 0 {
		t.Fatalf("RunTwoNode: %+v", res)
	}

	four := adhocsim.RunFourNode(adhocsim.FourNode{
		Rate: adhocsim.Rate11, D12: 25, D23: 82.5, D34: 25,
		Transport: adhocsim.UDP,
		Duration:  500 * time.Millisecond,
		Seed:      3,
	})
	if four.Session1Kbps+four.Session2Kbps <= 0 {
		t.Fatalf("RunFourNode: %+v", four)
	}

	pts := adhocsim.RunLossSweep(adhocsim.LossSweep{
		Rate:      adhocsim.Rate11,
		Distances: []float64{20, 40},
		Packets:   30,
		Seed:      3,
	})
	if len(pts) != 2 || pts[0].Loss > pts[1].Loss {
		t.Fatalf("RunLossSweep: %+v", pts)
	}
}

func TestPublicReplicationHarness(t *testing.T) {
	sum := adhocsim.ReplicateTwoNode(adhocsim.TwoNode{
		Transport: adhocsim.UDP,
		Duration:  500 * time.Millisecond,
		Seed:      3,
	}, adhocsim.Rep{Replications: 3, Workers: 2})
	if sum.Replications != 3 || sum.Mbps.N != 3 {
		t.Fatalf("summary: %+v", sum)
	}
	if sum.Mbps.Mean <= 0 || sum.IdealMbps <= 0 {
		t.Fatalf("summary means: %+v", sum.Mbps)
	}
	// Replication 0 reuses the root seed: the classic runner is a
	// special case of the harness.
	classic := adhocsim.RunTwoNode(adhocsim.TwoNode{
		Transport: adhocsim.UDP,
		Duration:  500 * time.Millisecond,
		Seed:      3,
	})
	if sum.Runs[0] != classic {
		t.Fatalf("replication 0 %+v != classic %+v", sum.Runs[0], classic)
	}

	cells := adhocsim.Figure7Reps(42, 500*time.Millisecond, adhocsim.Rep{Replications: 2})
	if len(cells) != 4 {
		t.Fatalf("Figure7Reps cells = %d", len(cells))
	}
	for _, c := range cells {
		if c.Result.Session1Kbps+c.Result.Session2Kbps <= 0 {
			t.Fatalf("cell %+v has no traffic", c)
		}
	}
}

func TestPublicProfileAndWeather(t *testing.T) {
	p := adhocsim.DefaultProfile()
	if p.MedianRange(adhocsim.Rate11) < 25 || p.MedianRange(adhocsim.Rate11) > 35 {
		t.Fatalf("11 Mbit/s range = %.1f", p.MedianRange(adhocsim.Rate11))
	}
	damp := adhocsim.WeatherDamp.Apply(p)
	if damp.MedianRange(adhocsim.Rate1) >= p.MedianRange(adhocsim.Rate1) {
		t.Fatal("damp weather must shorten range")
	}
}

func TestPublicARF(t *testing.T) {
	arf := adhocsim.NewARF(adhocsim.Rate11)
	if arf.Rate() != adhocsim.Rate11 {
		t.Fatal("ARF start rate")
	}
	arf.OnFailure()
	arf.OnFailure()
	if arf.Rate() != adhocsim.Rate5_5 {
		t.Fatal("ARF fallback")
	}
}

func TestPublicMobility(t *testing.T) {
	net := adhocsim.NewNetwork(9)
	a := net.AddStation(adhocsim.Pos(10, 10), adhocsim.MACConfig{})
	b := net.AddStation(adhocsim.Pos(20, 10), adhocsim.MACConfig{})
	w := adhocsim.DefaultWaypoint()
	w.Drive(net, a)
	var lm adhocsim.LinkMonitor
	lm.Watch(net, a, b, 100, 100*time.Millisecond)
	net.Run(10 * time.Second)
	if lm.UpTime == 0 {
		t.Fatal("link monitor recorded nothing")
	}
}

// TestPublicScenarioAPI drives the declarative scenario facade the way
// a downstream user would: author a spec, run it, replicate it, and
// check the preset library and the TwoNode→Spec compilation agree.
func TestPublicScenarioAPI(t *testing.T) {
	spec := adhocsim.Scenario{
		Name:     "api-grid",
		Seed:     3,
		Duration: 5e8, // 500ms in ns
		Topology: adhocsim.ScenarioTopology{Kind: "grid", Rows: 2, Cols: 2, Spacing: 20},
		Flows: []adhocsim.ScenarioFlow{
			{Src: 0, Dst: 1},
			{Src: 2, Dst: 3},
		},
	}
	res, err := adhocsim.RunScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flows) != 2 || res.Flows[0].Bytes == 0 {
		t.Fatalf("scenario moved no traffic: %+v", res.Flows)
	}

	sum, err := adhocsim.ReplicateScenario(spec, 2, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Replications != 2 || len(sum.Runs) != 2 {
		t.Fatalf("summary shape: %+v", sum)
	}

	if len(adhocsim.ScenarioPresets()) < 5 {
		t.Fatal("preset library too small")
	}
	if _, err := adhocsim.ScenarioPreset("ring-8"); err != nil {
		t.Fatal(err)
	}

	// A scenario a user authors by hand must reproduce the classic
	// two-node experiment bit-for-bit. (RunTwoNode itself runs through
	// the engine now, so this checks the *authored* spec matches the
	// preset compilation, not the engine against itself.)
	cfg := adhocsim.TwoNode{Transport: adhocsim.UDP, Duration: 500 * time.Millisecond, Seed: 11}
	classic := adhocsim.RunTwoNode(cfg)
	handAuthored := adhocsim.Scenario{
		Name:     "two-node-by-hand",
		Seed:     11,
		Duration: adhocsim.ScenarioDuration(500 * time.Millisecond),
		MSS:      512,
		Topology: adhocsim.ScenarioTopology{Kind: "line", Spacings: []float64{10}},
		MAC:      adhocsim.ScenarioMAC{RateMbps: 11},
		Flows:    []adhocsim.ScenarioFlow{{Src: 0, Dst: 1, Transport: "udp", PacketSize: 512, Port: 9000}},
	}
	viaSpec, err := adhocsim.RunScenario(handAuthored)
	if err != nil {
		t.Fatal(err)
	}
	if viaSpec.Flows[0].GoodputMbps != classic.MeasuredMbps {
		t.Fatalf("hand-authored spec %.6f Mbit/s != classic %.6f", viaSpec.Flows[0].GoodputMbps, classic.MeasuredMbps)
	}
}
