package capacity

import (
	"math"
	"testing"
	"testing/quick"

	"adhocsim/internal/phy"
)

func TestCycleTimeKnownValue(t *testing.T) {
	// Hand-computed for 512 B + 28 B overhead at 11 Mbit/s, basic access,
	// paper backoff (16 slots):
	//   T_DATA = 192 + (272+4320)/11 µs ≈ 609.45 µs
	//   cycle  = 50 + 609.45 + 10 + 248 + 320 + 2 ≈ 1239.5 µs
	m := New(phy.Rate11, 512, false).PaperAssumptions()
	got := m.CycleTime().Seconds() * 1e6
	if math.Abs(got-1239.5) > 1 {
		t.Fatalf("cycle = %.2f µs, want ≈1239.5", got)
	}
	th := m.ThroughputMbps()
	if math.Abs(th-3.304) > 0.01 {
		t.Fatalf("throughput = %.3f, want ≈3.304", th)
	}
}

func TestMatchesPaperTable2(t *testing.T) {
	// The paper's Table 2 contains small internal inconsistencies (its 1
	// and 2 Mbit/s rows agree with Equation (1) to <2 %, the 11 Mbit/s
	// rows only to ~8 %); assert our model is within 11 % everywhere
	// without RTS and 13 % with it, and that every ordering the paper
	// reports holds exactly.
	paper := PaperTable2()
	for _, row := range Table2() {
		want := paper[row.Rate][row.PayloadBytes]
		m := New(row.Rate, row.PayloadBytes, false).PaperAssumptions()
		r := New(row.Rate, row.PayloadBytes, true).PaperAssumptions()
		devNo := math.Abs(m.ThroughputMbps()-want[0]) / want[0]
		devRTS := math.Abs(r.ThroughputMbps()-want[1]) / want[1]
		if devNo > 0.11 {
			t.Errorf("%v m=%d noRTS: got %.3f, paper %.3f (dev %.1f%%)",
				row.Rate, row.PayloadBytes, m.ThroughputMbps(), want[0], devNo*100)
		}
		if devRTS > 0.13 {
			t.Errorf("%v m=%d RTS: got %.3f, paper %.3f (dev %.1f%%)",
				row.Rate, row.PayloadBytes, r.ThroughputMbps(), want[1], devRTS*100)
		}
	}
}

func TestLowRatesMatchPaperClosely(t *testing.T) {
	// At 1 and 2 Mbit/s (basic access) the paper's own numbers agree
	// with Equation (1) to better than 2 %.
	paper := PaperTable2()
	for _, rate := range []phy.Rate{phy.Rate1, phy.Rate2} {
		for _, m := range []int{512, 1024} {
			got := New(rate, m, false).PaperAssumptions().ThroughputMbps()
			want := paper[rate][m][0]
			if dev := math.Abs(got-want) / want; dev > 0.02 {
				t.Errorf("%v m=%d: got %.3f, paper %.3f (dev %.1f%%)", rate, m, got, want, dev*100)
			}
		}
	}
}

func TestOrderingProperties(t *testing.T) {
	for _, m := range []int{64, 128, 256, 512, 1024, 1500} {
		for i, rate := range phy.Rates {
			base := New(rate, m, false)
			rts := New(rate, m, true)
			// RTS/CTS always costs throughput.
			if rts.ThroughputMbps() >= base.ThroughputMbps() {
				t.Fatalf("%v m=%d: RTS %.3f ≥ basic %.3f", rate, m, rts.ThroughputMbps(), base.ThroughputMbps())
			}
			// Higher rates always deliver more.
			if i > 0 {
				lower := New(phy.Rates[i-1], m, false)
				if base.ThroughputMbps() <= lower.ThroughputMbps() {
					t.Fatalf("m=%d: %v ≤ %v", m, rate, phy.Rates[i-1])
				}
			}
		}
	}
}

// Property: utilization grows with payload size (the paper: "this
// percentage increases with the payload size") and never reaches 44 %
// at 11 Mbit/s for m ≤ 1024.
func TestUtilizationProperties(t *testing.T) {
	prev := 0.0
	for m := 64; m <= 2304; m += 64 {
		u := New(phy.Rate11, m, false).Utilization()
		if u <= prev {
			t.Fatalf("utilization not increasing at m=%d", m)
		}
		prev = u
	}
	if u := New(phy.Rate11, 1024, false).Utilization(); u >= 0.47 {
		t.Fatalf("utilization at m=1024 = %.2f, want < 0.47 (paper: < 44%%)", u)
	}
	if u := New(phy.Rate1, 1024, false).Utilization(); u < 0.80 {
		t.Fatalf("1 Mbit/s utilization = %.2f, want > 0.80 (overheads shrink relatively)", u)
	}
}

func TestThroughputPositiveProperty(t *testing.T) {
	f := func(mRaw uint16, rtscts bool, rateIdx uint8) bool {
		m := int(mRaw%2304) + 1
		rate := phy.Rates[int(rateIdx)%len(phy.Rates)]
		th := New(rate, m, rtscts).ThroughputMbps()
		return th > 0 && th < rate.Mbps()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTable2Shape(t *testing.T) {
	rows := Table2()
	if len(rows) != 8 {
		t.Fatalf("Table2 has %d rows, want 8", len(rows))
	}
	if rows[0].Rate != phy.Rate11 || rows[len(rows)-1].Rate != phy.Rate1 {
		t.Fatal("Table2 must be ordered rate-descending like the paper")
	}
	for _, r := range rows {
		if r.RTS >= r.NoRTS {
			t.Fatalf("row %+v: RTS ≥ NoRTS", r)
		}
	}
}

func TestControlRateDefaults(t *testing.T) {
	if New(phy.Rate11, 512, false).controlRate() != phy.Rate2 {
		t.Fatal("11 Mbit/s data should use 2 Mbit/s control")
	}
	if New(phy.Rate1, 512, false).controlRate() != phy.Rate1 {
		t.Fatal("1 Mbit/s data should use 1 Mbit/s control")
	}
	m := New(phy.Rate11, 512, false)
	m.ControlRate = phy.Rate1
	if m.controlRate() != phy.Rate1 {
		t.Fatal("explicit control rate ignored")
	}
}

func TestOverheadPresets(t *testing.T) {
	udp := New(phy.Rate11, 512, false)
	tcp := udp.WithOverhead(OverheadTCP)
	if tcp.ThroughputMbps() >= udp.ThroughputMbps() {
		t.Fatal("TCP's larger headers must cost throughput")
	}
}
