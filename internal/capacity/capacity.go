// Package capacity implements the paper's analytical throughput model:
// Equations (1) and (2) of §3.1, which bound the application-level
// throughput of a single DCF session with and without RTS/CTS, using the
// protocol parameters of Table 1. The Table2 function regenerates the
// paper's Table 2.
package capacity

import (
	"time"

	"adhocsim/internal/phy"
)

// Transport-layer overhead presets added to each application packet
// before it reaches the MAC (Figure 1's encapsulation stack).
const (
	OverheadUDP = 8 + 20  // UDP + IP headers
	OverheadTCP = 20 + 20 // TCP + IP headers
)

// Model parameterizes Equations (1)/(2). The zero value is not useful;
// start from New.
type Model struct {
	// Rate is the NIC data rate for the data frame.
	Rate phy.Rate
	// PayloadBytes is m: application bytes per packet.
	PayloadBytes int
	// OverheadBytes is the transport+network header overhead carried in
	// the MAC payload (default OverheadUDP).
	OverheadBytes int
	// RTSCTS enables Equation (2)'s RTS/CTS exchange.
	RTSCTS bool
	// ControlRate is the basic rate for RTS/CTS/ACK; zero selects
	// phy.ControlRate(Rate), the highest basic rate ≤ the data rate.
	ControlRate phy.Rate
	// MeanBackoffSlots is the expected backoff per frame. The paper uses
	// CWmin/2 = 16; the DCF draws uniformly from [0, CWmin-1], whose mean
	// is 15.5. New defaults to 15.5 so the model matches the simulator;
	// PaperAssumptions switches to 16.
	MeanBackoffSlots float64
	// PropagationDelays is the number of τ terms charged per exchange
	// (default 2: data + ACK).
	PropagationDelays int
}

// New returns a model for one (rate, payload) point with the defaults
// used throughout this repository.
func New(rate phy.Rate, payloadBytes int, rtscts bool) Model {
	return Model{
		Rate:              rate,
		PayloadBytes:      payloadBytes,
		OverheadBytes:     OverheadUDP,
		RTSCTS:            rtscts,
		MeanBackoffSlots:  float64(phy.CWMin-1) / 2,
		PropagationDelays: 2,
	}
}

// PaperAssumptions returns the model with the paper's CWmin/2 backoff
// accounting, for side-by-side comparison with Table 2.
func (m Model) PaperAssumptions() Model {
	m.MeanBackoffSlots = phy.CWMin / 2
	return m
}

// WithOverhead returns the model with a different transport overhead.
func (m Model) WithOverhead(bytes int) Model {
	m.OverheadBytes = bytes
	return m
}

func (m Model) controlRate() phy.Rate {
	if m.ControlRate != 0 {
		return m.ControlRate
	}
	return phy.ControlRate(m.Rate)
}

// DataTime returns T_DATA: PLCP + MAC header/FCS + encapsulated payload
// at the data rate.
func (m Model) DataTime() time.Duration {
	return phy.DataTime(m.Rate, m.PayloadBytes+m.OverheadBytes)
}

// CycleTime returns the denominator of Equation (1) or (2): the total
// channel time consumed per delivered packet.
func (m Model) CycleTime() time.Duration {
	ctrl := m.controlRate()
	cycle := phy.DIFS + m.DataTime() + phy.SIFS + phy.ACKTime(ctrl)
	cycle += time.Duration(m.MeanBackoffSlots * float64(phy.SlotTime))
	cycle += time.Duration(m.PropagationDelays) * phy.PropDelay
	if m.RTSCTS {
		cycle += phy.RTSTime(ctrl) + phy.CTSTime(ctrl) + 2*phy.SIFS + 2*phy.PropDelay
	}
	return cycle
}

// ThroughputMbps returns the maximum expected application-level
// throughput in Mbit/s: Equation (1) without RTS/CTS, Equation (2)
// with it.
func (m Model) ThroughputMbps() float64 {
	payloadBits := float64(8 * m.PayloadBytes)
	return payloadBits / (float64(m.CycleTime()) / float64(time.Microsecond)) // bits/µs == Mbit/s
}

// Utilization returns throughput as a fraction of the nominal rate —
// the paper's "only a fraction of the 11 Mbps nominal bandwidth"
// observation (< 44 % even at m=1024).
func (m Model) Utilization() float64 {
	return m.ThroughputMbps() / m.Rate.Mbps()
}

// Table2Row is one cell group of the paper's Table 2: a (rate, payload)
// point with and without RTS/CTS.
type Table2Row struct {
	Rate         phy.Rate
	PayloadBytes int
	NoRTS        float64 // Mbit/s, Equation (1)
	RTS          float64 // Mbit/s, Equation (2)
}

// Table2 regenerates the paper's Table 2: maximum throughput at each
// data rate for 512- and 1024-byte application packets. Rows are ordered
// as in the paper (rate descending, both payload sizes).
func Table2(payloads ...int) []Table2Row {
	if len(payloads) == 0 {
		payloads = []int{512, 1024}
	}
	var rows []Table2Row
	for i := len(phy.Rates) - 1; i >= 0; i-- {
		for _, m := range payloads {
			rows = append(rows, Table2Row{
				Rate:         phy.Rates[i],
				PayloadBytes: m,
				NoRTS:        New(phy.Rates[i], m, false).ThroughputMbps(),
				RTS:          New(phy.Rates[i], m, true).ThroughputMbps(),
			})
		}
	}
	return rows
}

// PaperTable2 returns the values printed in the paper's Table 2, for
// comparison in tests, benches, and EXPERIMENTS.md.
func PaperTable2() map[phy.Rate]map[int][2]float64 {
	return map[phy.Rate]map[int][2]float64{
		phy.Rate11:  {512: {3.06, 2.549}, 1024: {4.788, 4.139}},
		phy.Rate5_5: {512: {2.366, 2.049}, 1024: {3.308, 2.985}},
		phy.Rate2:   {512: {1.319, 1.214}, 1024: {1.589, 1.511}},
		phy.Rate1:   {512: {0.758, 0.738}, 1024: {0.862, 0.839}},
	}
}
