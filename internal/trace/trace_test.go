package trace

import (
	"strings"
	"testing"
	"time"
)

func TestDisabledTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Infof("should not panic %d", 1)
	tr.Debugf("nor this")
	if tr.Enabled(LevelInfo) {
		t.Fatal("nil tracer reports enabled")
	}
	if tr.Recent(5) != nil {
		t.Fatal("nil tracer has history")
	}
	var zero Tracer
	zero.Infof("zero value is disabled too")
	if zero.Enabled(LevelInfo) {
		t.Fatal("zero tracer reports enabled")
	}
}

func TestLevels(t *testing.T) {
	var sb strings.Builder
	clock := func() time.Duration { return 42 * time.Microsecond }
	tr := New(&sb, LevelInfo, clock)
	tr.Infof("info %d", 1)
	tr.Debugf("debug %d", 2)
	out := sb.String()
	if !strings.Contains(out, "info 1") {
		t.Fatalf("missing info line: %q", out)
	}
	if strings.Contains(out, "debug") {
		t.Fatalf("debug leaked at info level: %q", out)
	}
	if !strings.Contains(out, "42µs") {
		t.Fatalf("missing timestamp: %q", out)
	}
}

func TestRecentRing(t *testing.T) {
	var sb strings.Builder
	tr := New(&sb, LevelDebug, func() time.Duration { return 0 })
	for i := 0; i < 300; i++ {
		tr.Debugf("line %d", i)
	}
	recent := tr.Recent(3)
	if len(recent) != 3 {
		t.Fatalf("Recent(3) = %d lines", len(recent))
	}
	if !strings.Contains(recent[2], "line 299") {
		t.Fatalf("last line = %q", recent[2])
	}
	if !strings.Contains(recent[0], "line 297") {
		t.Fatalf("first line = %q", recent[0])
	}
	// Asking for more than recorded or ring size caps gracefully.
	if got := tr.Recent(1000); len(got) != 256 {
		t.Fatalf("Recent(1000) = %d lines, want ring size 256", len(got))
	}
}
