package trace

import (
	"sync"
	"time"
)

// SpanRecord is one finished span: a named phase of a run (build, run,
// drain) or anything nested the layers chose to time, with its offset
// from the recorder's epoch and its wall-clock duration.
type SpanRecord struct {
	Name    string        `json:"name"`
	StartNS time.Duration `json:"start_ns"`
	WallNS  time.Duration `json:"wall_ns"`
}

// SpanRecorder collects spans for the run report. It is safe for
// concurrent use, and a nil *SpanRecorder is the disabled recorder:
// StartSpan returns a nil *Span whose End is a no-op, so phase timing
// calls need no guards on paths where observability is off.
type SpanRecorder struct {
	mu    sync.Mutex
	epoch time.Time
	recs  []SpanRecord
}

// NewSpanRecorder creates a recorder whose span offsets are relative to
// now.
func NewSpanRecorder() *SpanRecorder {
	return &SpanRecorder{epoch: time.Now()}
}

// Span is one in-flight phase timing. Close it with End.
type Span struct {
	rec   *SpanRecorder
	name  string
	start time.Time
}

// StartSpan begins timing a named phase. Nil recorders return nil spans.
func (r *SpanRecorder) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{rec: r, name: name, start: time.Now()}
}

// End finishes the span and records it. No-op on a nil span; ending a
// span twice records it twice (don't).
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	r := s.rec
	r.mu.Lock()
	r.recs = append(r.recs, SpanRecord{
		Name:    s.name,
		StartNS: s.start.Sub(r.epoch),
		WallNS:  end.Sub(s.start),
	})
	r.mu.Unlock()
}

// Records returns a copy of the finished spans in completion order.
func (r *SpanRecorder) Records() []SpanRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanRecord, len(r.recs))
	copy(out, r.recs)
	return out
}
