// Package trace provides a lightweight, optional event log for
// debugging simulations: timestamped, leveled lines into any io.Writer,
// plus a bounded ring buffer for post-mortem inspection in tests, and a
// span API (StartSpan/End) for per-phase wall timings that feed the obs
// run report. Tracing is off by default and costs one branch per call
// when disabled.
package trace

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Level filters trace output.
type Level int

// Levels, ordered by verbosity.
const (
	LevelOff Level = iota
	LevelInfo
	LevelDebug
)

// ParseLevel maps the CLI spellings to a Level: "off", "info", "debug".
func ParseLevel(s string) (Level, error) {
	switch s {
	case "off", "":
		return LevelOff, nil
	case "info":
		return LevelInfo, nil
	case "debug":
		return LevelDebug, nil
	}
	return LevelOff, fmt.Errorf("trace: unknown level %q (want off, info or debug)", s)
}

// traceCore is the shared sink behind one or more Tracer handles: the
// writer, the post-mortem ring, and the mutex serializing them. Handles
// derived with WithClock all point at one core, so MAC and routing call
// sites on different region schedulers interleave whole lines instead
// of corrupting each other under the parallel kernel.
type traceCore struct {
	mu   sync.Mutex
	w    io.Writer
	ring []string
	next int
}

// Tracer writes simulation events. The zero value and nil are disabled
// tracers; construct with New for an active one.
type Tracer struct {
	core  *traceCore
	level Level
	clock func() time.Duration
}

// New returns a tracer writing to w at the given level, timestamping
// events with clock (normally the scheduler's Now).
func New(w io.Writer, level Level, clock func() time.Duration) *Tracer {
	return &Tracer{
		core:  &traceCore{w: w, ring: make([]string, 256)},
		level: level,
		clock: clock,
	}
}

// WithClock derives a tracer handle sharing this tracer's writer, level
// and ring but timestamping with its own clock. In parallel mode every
// station lives on a region scheduler with its own local time; handing
// each subsystem a WithClock(station.Sched.Now) handle keeps timestamps
// honest while all output still funnels through one serialized sink.
func (t *Tracer) WithClock(clock func() time.Duration) *Tracer {
	if t == nil {
		return nil
	}
	return &Tracer{core: t.core, level: t.level, clock: clock}
}

// Enabled reports whether events at level l would be emitted.
func (t *Tracer) Enabled(l Level) bool {
	return t != nil && t.core != nil && t.core.w != nil && l <= t.level
}

// Infof logs a significant event (frame delivered, session state).
func (t *Tracer) Infof(format string, args ...any) { t.emit(LevelInfo, format, args...) }

// Debugf logs a fine-grained event (backoff ticks, CCA edges).
func (t *Tracer) Debugf(format string, args ...any) { t.emit(LevelDebug, format, args...) }

func (t *Tracer) emit(l Level, format string, args ...any) {
	if !t.Enabled(l) {
		return
	}
	line := fmt.Sprintf("[%12v] %s", t.clock(), fmt.Sprintf(format, args...))
	c := t.core
	c.mu.Lock()
	fmt.Fprintln(c.w, line)
	c.ring[c.next%len(c.ring)] = line
	c.next++
	c.mu.Unlock()
}

// Recent returns up to n of the most recent trace lines, oldest first.
func (t *Tracer) Recent(n int) []string {
	if t == nil || t.core == nil {
		return nil
	}
	c := t.core
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.next == 0 {
		return nil
	}
	if n > len(c.ring) {
		n = len(c.ring)
	}
	if n > c.next {
		n = c.next
	}
	out := make([]string, 0, n)
	for i := c.next - n; i < c.next; i++ {
		out = append(out, c.ring[i%len(c.ring)])
	}
	return out
}
