// Package trace provides a lightweight, optional event log for
// debugging simulations: timestamped, leveled lines into any io.Writer,
// plus a bounded ring buffer for post-mortem inspection in tests.
// Tracing is off by default and costs one branch per call when disabled.
package trace

import (
	"fmt"
	"io"
	"time"
)

// Level filters trace output.
type Level int

// Levels, ordered by verbosity.
const (
	LevelOff Level = iota
	LevelInfo
	LevelDebug
)

// Tracer writes simulation events. The zero value is a disabled tracer;
// construct with New for an active one.
type Tracer struct {
	w     io.Writer
	level Level
	clock func() time.Duration

	ring []string
	next int
}

// New returns a tracer writing to w at the given level, timestamping
// events with clock (normally the scheduler's Now).
func New(w io.Writer, level Level, clock func() time.Duration) *Tracer {
	return &Tracer{w: w, level: level, clock: clock, ring: make([]string, 256)}
}

// Enabled reports whether events at level l would be emitted.
func (t *Tracer) Enabled(l Level) bool {
	return t != nil && t.w != nil && l <= t.level
}

// Infof logs a significant event (frame delivered, session state).
func (t *Tracer) Infof(format string, args ...any) { t.emit(LevelInfo, format, args...) }

// Debugf logs a fine-grained event (backoff ticks, CCA edges).
func (t *Tracer) Debugf(format string, args ...any) { t.emit(LevelDebug, format, args...) }

func (t *Tracer) emit(l Level, format string, args ...any) {
	if !t.Enabled(l) {
		return
	}
	line := fmt.Sprintf("[%12v] %s", t.clock(), fmt.Sprintf(format, args...))
	fmt.Fprintln(t.w, line)
	t.ring[t.next%len(t.ring)] = line
	t.next++
}

// Recent returns up to n of the most recent trace lines, oldest first.
func (t *Tracer) Recent(n int) []string {
	if t == nil || t.next == 0 {
		return nil
	}
	if n > len(t.ring) {
		n = len(t.ring)
	}
	if n > t.next {
		n = t.next
	}
	out := make([]string, 0, n)
	for i := t.next - n; i < t.next; i++ {
		out = append(out, t.ring[i%len(t.ring)])
	}
	return out
}
