package trace

import (
	"testing"
	"time"
)

func TestSpanRecorder(t *testing.T) {
	rec := NewSpanRecorder()
	sp := rec.StartSpan("build")
	time.Sleep(time.Millisecond)
	sp.End()
	sp = rec.StartSpan("run")
	sp.End()
	recs := rec.Records()
	if len(recs) != 2 || recs[0].Name != "build" || recs[1].Name != "run" {
		t.Fatalf("records = %+v", recs)
	}
	if recs[0].WallNS < time.Millisecond {
		t.Fatalf("build wall = %v, want >= 1ms", recs[0].WallNS)
	}
	if recs[1].StartNS < recs[0].StartNS {
		t.Fatal("spans out of epoch order")
	}
	// Records returns a copy: mutating it must not corrupt the recorder.
	recs[0].Name = "mutated"
	if rec.Records()[0].Name != "build" {
		t.Fatal("Records exposed internal state")
	}
}

func TestNilSpanRecorder(t *testing.T) {
	var rec *SpanRecorder
	sp := rec.StartSpan("anything")
	sp.End() // must not panic
	if rec.Records() != nil {
		t.Fatal("nil recorder has records")
	}
}

func TestWithClockSharesSink(t *testing.T) {
	var sb mockWriter
	tr := New(&sb, LevelInfo, func() time.Duration { return time.Second })
	h := tr.WithClock(func() time.Duration { return 2 * time.Second })
	tr.Infof("base")
	h.Infof("derived")
	// Both lines land in the shared ring, stamped by their own clocks.
	recent := tr.Recent(2)
	if len(recent) != 2 {
		t.Fatalf("shared ring has %d lines, want 2", len(recent))
	}
	if got := h.Recent(2); len(got) != 2 {
		t.Fatal("derived handle does not see the shared ring")
	}
	var nilTr *Tracer
	if nilTr.WithClock(func() time.Duration { return 0 }) != nil {
		t.Fatal("WithClock on nil tracer must stay nil")
	}
}

type mockWriter struct{ n int }

func (m *mockWriter) Write(p []byte) (int, error) { m.n += len(p); return len(p), nil }
