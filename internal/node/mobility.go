package node

import (
	"time"

	"adhocsim/internal/phy"
)

// Mobility support. The paper's experiments are static, but its §3.2
// points out the consequence of short transmission ranges for mobile
// networks: "the shorter is the TX_range, the higher is the frequency of
// route re-calculation when the network stations are mobile." The
// random-waypoint mover plus the link monitor below quantify exactly
// that claim (see the ablation bench in the repository root).

// RandomWaypoint moves a station per the classic random-waypoint model:
// pick a uniform destination in the field, travel at a uniform random
// speed, pause, repeat.
type RandomWaypoint struct {
	Width, Height float64       // field size, meters
	MinSpeed      float64       // m/s
	MaxSpeed      float64       // m/s
	Pause         time.Duration // dwell time at each waypoint
	Tick          time.Duration // position-update granularity
}

// DefaultWaypoint returns a pedestrian-speed mover on a 300×300 m field.
func DefaultWaypoint() RandomWaypoint {
	return RandomWaypoint{
		Width: 300, Height: 300,
		MinSpeed: 0.5, MaxSpeed: 2.0,
		Pause: 2 * time.Second,
		Tick:  100 * time.Millisecond,
	}
}

// Drive starts moving the station. Movement continues for the lifetime
// of the simulation. The rng stream is derived from the network source
// and the station ID, so runs are reproducible.
func (w RandomWaypoint) Drive(net *Network, st *Station) {
	rng := net.Source.Stream("mobility." + st.Addr().String())
	var step func()
	var target phy.Position
	var speed float64
	pick := func() {
		target = phy.Pos(rng.Float64()*w.Width, rng.Float64()*w.Height)
		speed = w.MinSpeed + rng.Float64()*(w.MaxSpeed-w.MinSpeed)
	}
	pick()
	step = func() {
		cur := st.Radio.Pos()
		d := phy.Dist(cur, target)
		travel := speed * w.Tick.Seconds()
		if d <= travel {
			st.Radio.SetPos(target)
			pick()
			net.Sched.After(w.Pause+w.Tick, step)
			return
		}
		frac := travel / d
		st.Radio.SetPos(phy.Pos(cur.X+(target.X-cur.X)*frac, cur.Y+(target.Y-cur.Y)*frac))
		net.Sched.After(w.Tick, step)
	}
	net.Sched.After(w.Tick, step)
}

// LinkMonitor samples the distance between two stations and counts
// link-state transitions against a transmission range, quantifying the
// route-breakage frequency the paper's §3.2 discusses.
type LinkMonitor struct {
	Breaks  int           // up → down transitions
	Repairs int           // down → up transitions
	UpTime  time.Duration // total time within range
	up      bool
	started bool
}

// Watch samples the a↔b link every tick against rangeMeters until the
// simulation ends. Call before running the simulation.
func (lm *LinkMonitor) Watch(net *Network, a, b *Station, rangeMeters float64, tick time.Duration) {
	var step func()
	step = func() {
		within := phy.Dist(a.Radio.Pos(), b.Radio.Pos()) <= rangeMeters
		if !lm.started {
			lm.started = true
			lm.up = within
		} else if within != lm.up {
			if within {
				lm.Repairs++
			} else {
				lm.Breaks++
			}
			lm.up = within
		}
		if within {
			lm.UpTime += tick
		}
		net.Sched.After(tick, step)
	}
	net.Sched.After(tick, step)
}
