// Package node composes the full per-station protocol stack — radio, DCF
// MAC, network layer, UDP and TCP — and provides the Network builder the
// experiments and examples use to lay out ad hoc topologies.
package node

import (
	"fmt"
	"time"

	"adhocsim/internal/frame"
	"adhocsim/internal/mac"
	"adhocsim/internal/medium"
	"adhocsim/internal/network"
	"adhocsim/internal/phy"
	"adhocsim/internal/sim"
	"adhocsim/internal/transport"
)

// Station is one ad hoc node: a laptop of the paper's testbed.
type Station struct {
	ID    uint32
	MAC   *mac.MAC
	Radio *medium.Radio
	Net   *network.Stack
	UDP   *transport.UDP
	TCP   *transport.TCP
}

// Addr returns the station's network address inside 10.0.0.0/8
// (10.0.0.<id> for ids below 256; higher ids use the upper host octets).
func (s *Station) Addr() network.Addr { return network.StationAddr(s.ID) }

// HWAddr returns the station's MAC address.
func (s *Station) HWAddr() frame.Addr { return frame.AddrFromID(s.ID) }

// Network owns the shared simulation state of one experiment: scheduler,
// random source, radio profile, medium, and stations.
type Network struct {
	Sched    *sim.Scheduler
	Source   *sim.Source
	Medium   *medium.Medium
	Profile  *phy.Profile
	MSS      int
	Stations []*Station
}

// Option configures a Network.
type Option func(*Network)

// WithProfile overrides the default radio profile.
func WithProfile(p *phy.Profile) Option { return func(n *Network) { n.Profile = p } }

// WithMSS sets the TCP maximum segment size (the paper uses 512-byte
// application packets).
func WithMSS(mss int) Option { return func(n *Network) { n.MSS = mss } }

// NewNetwork creates an empty network seeded for reproducibility.
func NewNetwork(seed uint64, opts ...Option) *Network {
	n := &Network{
		Sched:   sim.NewScheduler(),
		Source:  sim.NewSource(seed),
		Profile: phy.DefaultProfile(),
		MSS:     transport.DefaultMSS,
	}
	n.Medium = medium.New(n.Sched, n.Source)
	for _, opt := range opts {
		opt(n)
	}
	return n
}

// AddStation creates a station at pos with the given MAC configuration
// (Address is assigned automatically) and wires it into the network:
// every station knows every other station's link-layer address, the
// testbed equivalent of a warm ARP cache.
func (n *Network) AddStation(pos phy.Position, cfg mac.Config) *Station {
	return n.AddStationProfile(pos, cfg, nil)
}

// AddStationProfile is AddStation with a per-station radio profile
// (heterogeneous NICs, per-station weather). A nil profile selects the
// network's shared profile, making it exactly AddStation.
func (n *Network) AddStationProfile(pos phy.Position, cfg mac.Config, profile *phy.Profile) *Station {
	if profile == nil {
		profile = n.Profile
	}
	id := uint32(len(n.Stations) + 1)
	if id > network.MaxStationID {
		panic(fmt.Sprintf("node: too many stations (%d)", id))
	}
	cfg.Address = frame.AddrFromID(id)
	m := mac.New(n.Sched, n.Source, cfg)
	st := &Station{ID: id, MAC: m}
	st.Radio = n.Medium.AddRadio(id, pos, profile, m)
	m.Attach(st.Radio)
	st.Net = network.NewStack(m, network.StationAddr(id))
	st.UDP = transport.NewUDP(st.Net)
	st.TCP = transport.NewTCP(n.Sched, n.Source, st.Net, n.MSS)
	// The transports' queue-space subscriptions are permanent wiring;
	// anything registered later (per-run traffic sources) is truncated
	// by Network.Reset.
	st.Net.FreezeSubscribers()

	for _, other := range n.Stations {
		other.Net.AddNeighbor(st.Addr(), st.HWAddr())
		st.Net.AddNeighbor(other.Addr(), other.HWAddr())
	}
	n.Stations = append(n.Stations, st)
	return st
}

// Run advances the simulation by d.
func (n *Network) Run(d time.Duration) {
	n.Sched.RunUntil(n.Sched.Now() + d)
}

// Reset re-seeds a built network for a fresh run without rebuilding it:
// the scheduler arena empties back to time zero, the random source
// re-roots at seed, and every layer of every station (radio, MAC,
// stack, UDP, TCP) returns to its just-built state, with station i
// re-placed at positions[i]. Station count, per-station MAC
// configuration and radio profiles are construction-time decisions and
// survive — which is exactly what makes Reset so much cheaper than
// rebuilding: the O(stations²) neighbor wiring, the map allocations and
// the rng stream states are all reused.
//
// The per-station reset order mirrors AddStationProfile's construction
// order, so the t=0 events a reset network schedules (IBSS beacons) get
// the same sequence numbers as on a fresh build — a Reset-then-run is
// bit-identical to a build-then-run at the same seed (the scenario
// package's reuse tests pin this).
func (n *Network) Reset(seed uint64, positions []phy.Position) {
	if len(positions) != len(n.Stations) {
		panic(fmt.Sprintf("node: Reset with %d positions for %d stations", len(positions), len(n.Stations)))
	}
	n.Sched.Reset()
	n.Source.Reseed(seed)
	n.Medium.Reset()
	for i, st := range n.Stations {
		st.Radio.Reset(positions[i])
		st.MAC.Reset(n.Source)
		st.Net.Reset()
		st.UDP.Reset()
		st.TCP.Reset(n.Source)
	}
}

// Now returns the current simulated time.
func (n *Network) Now() time.Duration { return n.Sched.Now() }
