// Package node composes the full per-station protocol stack — radio, DCF
// MAC, network layer, UDP and TCP — and provides the Network builder the
// experiments and examples use to lay out ad hoc topologies.
package node

import (
	"fmt"
	"time"

	"adhocsim/internal/frame"
	"adhocsim/internal/mac"
	"adhocsim/internal/medium"
	"adhocsim/internal/network"
	"adhocsim/internal/phy"
	"adhocsim/internal/sim"
	"adhocsim/internal/transport"
)

// Station is one ad hoc node: a laptop of the paper's testbed.
type Station struct {
	ID    uint32
	MAC   *mac.MAC
	Radio *medium.Radio
	Net   *network.Stack
	UDP   *transport.UDP
	TCP   *transport.TCP

	// Sched is the scheduler owning this station's events: the network's
	// global scheduler normally, the station's region scheduler when the
	// network runs in parallel mode. Timers and traffic sources acting on
	// behalf of this station must schedule here and nowhere else.
	Sched *sim.Scheduler
}

// Addr returns the station's network address inside 10.0.0.0/8
// (10.0.0.<id> for ids below 256; higher ids use the upper host octets).
func (s *Station) Addr() network.Addr { return network.StationAddr(s.ID) }

// HWAddr returns the station's MAC address.
func (s *Station) HWAddr() frame.Addr { return frame.AddrFromID(s.ID) }

// Network owns the shared simulation state of one experiment: scheduler,
// random source, radio profile, medium, and stations.
type Network struct {
	Sched    *sim.Scheduler
	Source   *sim.Source
	Medium   *medium.Medium
	Profile  *phy.Profile
	MSS      int
	Stations []*Station

	// Exec and Grid are set by WithParallel: the region executor and the
	// field partition of the space-partitioned parallel mode. When Exec
	// is non-nil every station binds to its region's scheduler at add
	// time and Run drives the executor instead of Sched.
	Exec *sim.Exec
	Grid phy.RegionGrid

	partitioned bool     // Medium.SetPartition installed (first Run)
	schedKind   sim.Kind // queue backend for every scheduler (SetScheduler)
	tableARP    bool     // explicit O(n²) neighbor wiring (WithNeighborTable)
}

// Option configures a Network.
type Option func(*Network)

// WithProfile overrides the default radio profile.
func WithProfile(p *phy.Profile) Option { return func(n *Network) { n.Profile = p } }

// WithMSS sets the TCP maximum segment size (the paper uses 512-byte
// application packets).
func WithMSS(mss int) Option { return func(n *Network) { n.MSS = mss } }

// WithScheduler selects the event-queue backend (sim.KindHeap or
// sim.KindCalendar) for every scheduler the network drives — the
// global one and, in parallel mode, every region's. The backends are
// bit-identical (the sim package's cross-backend tests insist); the
// calendar queue is the right pick for city-scale event populations.
func WithScheduler(k sim.Kind) Option { return func(n *Network) { n.schedKind = k } }

// WithNeighborTable restores the explicit per-station neighbor wiring:
// every station's stack gets a warm ARP entry for every other station,
// the pre-resolver reference behaviour. Resolution results are
// provably identical either way — station and link-layer addresses are
// both pure functions of the station id — and the equivalence test
// runs the same seed both ways to keep that claim honest. The explicit
// table costs O(stations²) build time and memory, which is exactly why
// city-scale networks default to the computed resolver.
func WithNeighborTable() Option { return func(n *Network) { n.tableARP = true } }

// WithParallel switches the network to the space-partitioned parallel
// execution mode: the field is partitioned by grid, every station's
// events run on its region's scheduler, and Run drives a conservative
// region executor with the given worker count. sequential selects the
// executor's single-goroutine reference path (sim.Exec.SetSequential) —
// same protocol, one goroutine — for equivalence testing.
//
// reach is the field's relevance radius (medium.FieldReach over every
// profile in play): the farthest one transmission can influence
// anything, which prices the lookahead between each pair of regions.
// It must be finite — a degenerate radio model has no relevance radius
// and must stay on the sequential kernel. Mobility and Reset are not
// supported in parallel mode.
func WithParallel(grid phy.RegionGrid, reach float64, workers int, sequential bool) Option {
	return func(n *Network) {
		ex := sim.NewExec(grid.Regions(), func(a, b int) time.Duration {
			return phy.MinPropagationDelay(grid.MinRegionDist(a, b), reach)
		})
		ex.SetWorkers(workers)
		ex.SetSequential(sequential)
		n.Exec = ex
		n.Grid = grid
	}
}

// NewNetwork creates an empty network seeded for reproducibility.
func NewNetwork(seed uint64, opts ...Option) *Network {
	n := &Network{
		Sched:   sim.NewScheduler(),
		Source:  sim.NewSource(seed),
		Profile: phy.DefaultProfile(),
		MSS:     transport.DefaultMSS,
	}
	n.Medium = medium.New(n.Sched, n.Source)
	for _, opt := range opts {
		opt(n)
	}
	n.applySchedKind()
	return n
}

// SetScheduler switches every scheduler the network drives to the
// given queue backend. Only legal while no events are pending — in
// practice, before the first station schedules anything.
func (n *Network) SetScheduler(k sim.Kind) {
	n.schedKind = k
	n.applySchedKind()
}

func (n *Network) applySchedKind() {
	n.Sched.SetKind(n.schedKind)
	if n.Exec != nil {
		for i := 0; i < n.Exec.Regions(); i++ {
			n.Exec.Sched(i).SetKind(n.schedKind)
		}
	}
}

// AddStation creates a station at pos with the given MAC configuration
// (Address is assigned automatically) and wires it into the network:
// every station can resolve every other station's link-layer address —
// the testbed equivalent of a warm ARP cache, served by a computed
// resolver rather than O(stations²) table entries (WithNeighborTable
// restores the explicit wiring).
func (n *Network) AddStation(pos phy.Position, cfg mac.Config) *Station {
	return n.AddStationProfile(pos, cfg, nil)
}

// AddStationProfile is AddStation with a per-station radio profile
// (heterogeneous NICs, per-station weather). A nil profile selects the
// network's shared profile, making it exactly AddStation.
func (n *Network) AddStationProfile(pos phy.Position, cfg mac.Config, profile *phy.Profile) *Station {
	if profile == nil {
		profile = n.Profile
	}
	id := uint32(len(n.Stations) + 1)
	if id > network.MaxStationID {
		panic(fmt.Sprintf("node: too many stations (%d)", id))
	}
	cfg.Address = frame.AddrFromID(id)
	sched := n.Sched
	if n.Exec != nil {
		sched = n.Exec.Sched(n.Grid.RegionOf(pos))
	}
	m := mac.New(sched, n.Source, cfg)
	st := &Station{ID: id, MAC: m, Sched: sched}
	st.Radio = n.Medium.AddRadio(id, pos, profile, m)
	m.Attach(st.Radio)
	st.Net = network.NewStack(m, network.StationAddr(id))
	st.UDP = transport.NewUDP(st.Net)
	st.TCP = transport.NewTCP(sched, n.Source, st.Net, n.MSS)
	// The transports' queue-space subscriptions are permanent wiring;
	// anything registered later (per-run traffic sources) is truncated
	// by Network.Reset.
	st.Net.FreezeSubscribers()

	if n.tableARP {
		for _, other := range n.Stations {
			other.Net.AddNeighbor(st.Addr(), st.HWAddr())
			st.Net.AddNeighbor(other.Addr(), other.HWAddr())
		}
	} else {
		st.Net.SetResolver(n.neighborHW)
	}
	n.Stations = append(n.Stations, st)
	return st
}

// neighborHW computes the link-layer address of any station this
// network has built: the station's network address and MAC address are
// both pure functions of its id (network.StationAddr, frame.AddrFromID),
// so the per-stack warm ARP table collapses to arithmetic plus a bound
// check. Addresses beyond the built station set fail resolution exactly
// as a missing table entry would. The closure reads only the station
// count, which is frozen before any event runs, so it is safe from
// every region goroutine in parallel mode.
func (n *Network) neighborHW(ip network.Addr) (frame.Addr, bool) {
	id, ok := network.StationID(ip)
	if !ok || id > uint32(len(n.Stations)) {
		return frame.Addr{}, false
	}
	return frame.AddrFromID(id), true
}

// Run advances the simulation by d.
func (n *Network) Run(d time.Duration) {
	if n.Exec != nil {
		if !n.partitioned {
			n.Medium.SetPartition(n.Exec, n.Grid)
			n.partitioned = true
		}
		n.Exec.Run(n.Exec.Now() + d)
		n.Medium.FoldCounters()
		return
	}
	n.Sched.RunUntil(n.Sched.Now() + d)
}

// Fired returns the number of events executed so far, across all region
// schedulers in parallel mode.
func (n *Network) Fired() uint64 {
	if n.Exec != nil {
		return n.Exec.Fired()
	}
	return n.Sched.Fired()
}

// KernelStats sums the scheduler observability counters over every
// scheduler the network drives — the global one, or all region
// schedulers in parallel mode. Call it only between Runs (the counters
// are plain fields owned by the driving goroutines); it feeds the obs
// layer and never influences the simulation.
func (n *Network) KernelStats() sim.Stats {
	if n.Exec == nil {
		return n.Sched.Stats()
	}
	var agg sim.Stats
	for i := 0; i < n.Exec.Regions(); i++ {
		s := n.Exec.Sched(i).Stats()
		agg.Fired += s.Fired
		agg.Pushes += s.Pushes
		agg.CalResizes += s.CalResizes
	}
	return agg
}

// Reset re-seeds a built network for a fresh run without rebuilding it:
// the scheduler arena empties back to time zero, the random source
// re-roots at seed, and every layer of every station (radio, MAC,
// stack, UDP, TCP) returns to its just-built state, with station i
// re-placed at positions[i]. Station count, per-station MAC
// configuration and radio profiles are construction-time decisions and
// survive — which is exactly what makes Reset so much cheaper than
// rebuilding: the per-station stacks, the map allocations and the rng
// stream states are all reused.
//
// The per-station reset order mirrors AddStationProfile's construction
// order, so the t=0 events a reset network schedules (IBSS beacons) get
// the same sequence numbers as on a fresh build — a Reset-then-run is
// bit-identical to a build-then-run at the same seed (the scenario
// package's reuse tests pin this).
func (n *Network) Reset(seed uint64, positions []phy.Position) {
	if n.Exec != nil {
		// Region schedulers have no arena-reuse path yet, and replication
		// sweeps already parallelize across seeds (internal/runner) — the
		// scenario layer strips parallel specs before replicating.
		panic("node: Reset is not supported in parallel mode; rebuild the network instead")
	}
	if len(positions) != len(n.Stations) {
		panic(fmt.Sprintf("node: Reset with %d positions for %d stations", len(positions), len(n.Stations)))
	}
	n.Sched.Reset()
	n.Source.Reseed(seed)
	n.Medium.Reset()
	for i, st := range n.Stations {
		st.Radio.Reset(positions[i])
		st.MAC.Reset(n.Source)
		st.Net.Reset()
		st.UDP.Reset()
		st.TCP.Reset(n.Source)
	}
}

// Now returns the current simulated time.
func (n *Network) Now() time.Duration {
	if n.Exec != nil {
		return n.Exec.Now()
	}
	return n.Sched.Now()
}
