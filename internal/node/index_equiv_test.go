package node

import (
	"math"
	"testing"
	"time"

	"adhocsim/internal/mac"
	"adhocsim/internal/medium"
	"adhocsim/internal/network"
	"adhocsim/internal/phy"
)

// shortRangeProfile returns a radio model whose relevance radius is
// under a hundred meters instead of kilometers — a steep urban-canyon
// path-loss exponent shrinks every range while keeping the default
// power budget intact — so the medium's spatial grid uses cells small
// enough for a random-waypoint walker to cross several of them during
// one test run. Decode range ends up ≈ 18 m, relevance radius ≈ 95 m.
func shortRangeProfile() *phy.Profile {
	p := phy.DefaultProfile()
	p.PathLoss.Exponent = 5
	p.Fading.SigmaDB = 0.5 // fading on: exercise the fade-bounded reach
	return p
}

// mobilityRun drives one fixed-seed network — a paced UDP flow from a
// fast random-waypoint walker to a static sink, plus a second static
// flow far outside their earshot — and returns every observable metric.
// With bruteForce the medium propagates exhaustively (the pre-index
// reference); otherwise the spatial grid serves the candidate sets.
func mobilityRun(t *testing.T, bruteForce bool) (metrics []uint64, cellsVisited int) {
	t.Helper()
	prof := shortRangeProfile()
	n := NewNetwork(77, WithProfile(prof))
	n.Medium.SetBruteForce(bruteForce)

	sink := n.AddStation(phy.Pos(150, 150), mac.Config{DataRate: phy.Rate1})
	walker := n.AddStation(phy.Pos(160, 150), mac.Config{DataRate: phy.Rate1})
	// A second, distant flow: beyond the walker pair's relevance radius,
	// so the index genuinely prunes cross-traffic between the two groups.
	farRx := n.AddStation(phy.Pos(2000, 2000), mac.Config{DataRate: phy.Rate1})
	farTx := n.AddStation(phy.Pos(2010, 2000), mac.Config{DataRate: phy.Rate1})

	w := RandomWaypoint{
		Width: 300, Height: 300,
		MinSpeed: 10, MaxSpeed: 30, // vehicular: crosses cells mid-run
		Pause: 500 * time.Millisecond,
		Tick:  50 * time.Millisecond,
	}
	w.Drive(n, walker)

	var sinkGot, farGot uint64
	sink.UDP.Listen(9, func(p []byte, _ network.Addr, _ uint16) { sinkGot++ })
	farRx.UDP.Listen(9, func(p []byte, _ network.Addr, _ uint16) { farGot++ })
	pace := func(src *Station, dst network.Addr) {
		var tick func()
		tick = func() {
			_ = src.UDP.SendTo(make([]byte, 256), dst, 9, 9)
			n.Sched.After(20*time.Millisecond, tick)
		}
		n.Sched.After(20*time.Millisecond, tick)
	}
	pace(walker, sink.Addr())
	pace(farTx, farRx.Addr())

	// Sample which grid cell the walker occupies, using the same cell
	// size the medium derives (max relevance radius at the lowest noise
	// floor): the equivalence claim is only interesting if the walker
	// actually crosses cell boundaries mid-run.
	cell := prof.ReachRange(prof.NoiseFloorDBm - medium.IrrelevantMarginDB)
	cells := map[[2]int32]bool{}
	var sample func()
	sample = func() {
		p := walker.Radio.Pos()
		cells[[2]int32{int32(math.Floor(p.X / cell)), int32(math.Floor(p.Y / cell))}] = true
		n.Sched.After(100*time.Millisecond, sample)
	}
	n.Sched.After(0, sample)

	n.Run(20 * time.Second)

	metrics = []uint64{
		sinkGot, farGot,
		n.Medium.Transmissions, n.Medium.Deliveries, n.Medium.PHYErrors,
		n.Sched.Fired(),
	}
	for _, st := range n.Stations {
		metrics = append(metrics,
			st.Radio.FramesSent, st.Radio.FramesDecoded, st.Radio.FramesErrored,
			st.Radio.FramesMissed, st.Radio.CaptureSwitches,
			st.MAC.Counters.Retries(), st.MAC.Counters.TxDrops, st.MAC.Counters.EIFSDeferrals,
		)
	}
	return metrics, len(cells)
}

// TestMobilityIndexMatchesBruteForce is the PR 3 equivalence test: a
// random-waypoint station crossing grid-cell boundaries mid-run must
// produce bit-identical flow and medium metrics with the spatial index
// and with the exhaustive reference propagation, at the same seed.
func TestMobilityIndexMatchesBruteForce(t *testing.T) {
	indexed, cellsIndexed := mobilityRun(t, false)
	brute, _ := mobilityRun(t, true)

	if cellsIndexed < 2 {
		t.Fatalf("walker stayed inside one grid cell (%d visited): the run does not exercise index relocation", cellsIndexed)
	}
	if indexed[0] == 0 {
		t.Fatal("sink received nothing: the run does not exercise delivery")
	}
	if len(indexed) != len(brute) {
		t.Fatalf("metric vectors differ in length: %d vs %d", len(indexed), len(brute))
	}
	for i := range indexed {
		if indexed[i] != brute[i] {
			t.Fatalf("metric %d diverged: indexed=%d brute=%d\nindexed: %v\nbrute:   %v", i, indexed[i], brute[i], indexed, brute)
		}
	}
}
