package node

import (
	"math/rand"
	"testing"
	"time"

	"adhocsim/internal/mac"
	"adhocsim/internal/network"
	"adhocsim/internal/phy"
)

// gainCacheRun drives one fixed-seed network through a pseudo-random
// interleaving of station moves and unicast transmissions — the two
// operations that interact with the link-gain cache (moves invalidate
// cached path loss via mobility epochs; transmissions consume cached
// gains) — and returns every observable metric. The interleaving is a
// pure function of seed, so two calls differing only in cacheOn execute
// the same operation sequence.
func gainCacheRun(t *testing.T, seed uint64, cacheOn bool) []uint64 {
	t.Helper()
	prof := phy.TestbedProfile() // static + dynamic shadowing components
	prof.PathLoss.Exponent = 4   // urban-canyon ranges: moves cross in/out of earshot
	prof.Fading.SigmaDB = 2
	prof.Fading.Coherence = 30 * time.Millisecond // several epoch rollovers per run

	n := NewNetwork(seed, WithProfile(prof))
	n.Medium.SetGainCache(cacheOn)

	var sts []*Station
	for i := 0; i < 6; i++ {
		sts = append(sts, n.AddStation(
			phy.Pos(float64(i%3)*25, float64(i/3)*25),
			mac.Config{DataRate: phy.Rate2}))
	}
	received := make([]uint64, len(sts))
	for i, st := range sts {
		i := i
		st.UDP.Listen(9, func(p []byte, _ network.Addr, _ uint16) { received[i]++ })
	}

	// The driver rng is separate from the network's sim.Source: it
	// scripts the interleaving, it is not part of the system under test.
	drv := rand.New(rand.NewSource(int64(seed)*7919 + 17))
	moves, sends := 0, 0
	var step func()
	step = func() {
		switch drv.Intn(3) {
		case 0: // move a random station by a random offset
			st := sts[drv.Intn(len(sts))]
			p := st.Radio.Pos()
			st.Radio.SetPos(phy.Pos(
				p.X+drv.Float64()*30-15,
				p.Y+drv.Float64()*30-15))
			moves++
		default: // queue a unicast datagram on a random pair
			src, dst := sts[drv.Intn(len(sts))], sts[drv.Intn(len(sts))]
			if src != dst {
				_ = src.UDP.SendTo(make([]byte, 200), dst.Addr(), 9, 9)
				sends++
			}
		}
		n.Sched.After(time.Duration(1+drv.Intn(8000))*time.Microsecond, step)
	}
	n.Sched.After(0, step)
	n.Run(3 * time.Second)

	if moves < 50 || sends < 100 {
		t.Fatalf("interleaving too thin to prove anything: %d moves, %d sends", moves, sends)
	}
	metrics := []uint64{
		n.Medium.Transmissions, n.Medium.Deliveries, n.Medium.PHYErrors,
		n.Sched.Fired(),
	}
	metrics = append(metrics, received...)
	for _, st := range sts {
		metrics = append(metrics,
			st.Radio.FramesSent, st.Radio.FramesDecoded, st.Radio.FramesErrored,
			st.Radio.FramesMissed, st.Radio.CaptureSwitches,
			st.MAC.Counters.Retries(), st.MAC.Counters.TxDrops, st.MAC.Counters.EIFSDeferrals)
	}
	return metrics
}

// TestGainCacheMatchesDirectUnderInterleaving is the PR 4 link-gain
// property test: arbitrary interleavings of Move and Transmit must
// produce bit-identical metrics — including the exact number of
// scheduler events fired — with the gain cache on and with the
// SetGainCache(false) direct-computation reference, across several
// interleaving seeds.
func TestGainCacheMatchesDirectUnderInterleaving(t *testing.T) {
	for _, seed := range []uint64{3, 77, 2026} {
		cached := gainCacheRun(t, seed, true)
		direct := gainCacheRun(t, seed, false)
		if cached[1] == 0 {
			t.Fatalf("seed %d: no deliveries — the run does not exercise reception", seed)
		}
		if len(cached) != len(direct) {
			t.Fatalf("seed %d: metric vectors differ in length: %d vs %d", seed, len(cached), len(direct))
		}
		for i := range cached {
			if cached[i] != direct[i] {
				t.Fatalf("seed %d metric %d diverged: cached=%d direct=%d\ncached: %v\ndirect: %v",
					seed, i, cached[i], direct[i], cached, direct)
			}
		}
	}
}
