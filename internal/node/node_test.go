package node

import (
	"testing"
	"time"

	"adhocsim/internal/mac"
	"adhocsim/internal/network"
	"adhocsim/internal/phy"
)

func TestAddStationWiring(t *testing.T) {
	n := NewNetwork(1)
	a := n.AddStation(phy.Pos(0, 0), mac.Config{})
	b := n.AddStation(phy.Pos(10, 0), mac.Config{})

	if a.ID != 1 || b.ID != 2 {
		t.Fatalf("IDs = %d, %d", a.ID, b.ID)
	}
	if a.Addr() != network.HostAddr(1) {
		t.Fatalf("a.Addr() = %v", a.Addr())
	}
	if a.MAC == nil || a.Radio == nil || a.Net == nil || a.UDP == nil || a.TCP == nil {
		t.Fatal("station stack incomplete")
	}
	if a.Radio.Pos() != phy.Pos(0, 0) {
		t.Fatalf("radio position = %v", a.Radio.Pos())
	}
}

func TestStationsCanTalkImmediately(t *testing.T) {
	// AddStation must pre-populate neighbor tables in both directions.
	n := NewNetwork(2)
	a := n.AddStation(phy.Pos(0, 0), mac.Config{})
	b := n.AddStation(phy.Pos(10, 0), mac.Config{})

	got := ""
	b.UDP.Listen(5, func(p []byte, _ network.Addr, _ uint16) { got = string(p) })
	if err := a.UDP.SendTo([]byte("hi"), b.Addr(), 5, 5); err != nil {
		t.Fatal(err)
	}
	n.Run(50 * time.Millisecond)
	if got != "hi" {
		t.Fatalf("got %q", got)
	}

	// And the reverse direction.
	got2 := ""
	a.UDP.Listen(5, func(p []byte, _ network.Addr, _ uint16) { got2 = string(p) })
	if err := b.UDP.SendTo([]byte("yo"), a.Addr(), 5, 5); err != nil {
		t.Fatal(err)
	}
	n.Run(50 * time.Millisecond)
	if got2 != "yo" {
		t.Fatalf("reverse got %q", got2)
	}
}

func TestRunAdvancesClock(t *testing.T) {
	n := NewNetwork(3)
	n.Run(time.Second)
	if n.Now() != time.Second {
		t.Fatalf("Now() = %v", n.Now())
	}
	n.Run(time.Second)
	if n.Now() != 2*time.Second {
		t.Fatalf("Now() = %v", n.Now())
	}
}

func TestOptions(t *testing.T) {
	prof := phy.DefaultProfile()
	prof.Name = "custom"
	n := NewNetwork(4, WithProfile(prof), WithMSS(512))
	if n.Profile.Name != "custom" {
		t.Fatal("WithProfile ignored")
	}
	if n.MSS != 512 {
		t.Fatal("WithMSS ignored")
	}
}

func TestRandomWaypointMovesStations(t *testing.T) {
	n := NewNetwork(5)
	a := n.AddStation(phy.Pos(50, 50), mac.Config{})
	w := DefaultWaypoint()
	w.Drive(n, a)
	start := a.Radio.Pos()
	n.Run(30 * time.Second)
	end := a.Radio.Pos()
	if start == end {
		t.Fatal("station never moved")
	}
	if end.X < 0 || end.X > w.Width || end.Y < 0 || end.Y > w.Height {
		t.Fatalf("station left the field: %v", end)
	}
}

func TestMobilityRespectsSpeedBound(t *testing.T) {
	n := NewNetwork(6)
	a := n.AddStation(phy.Pos(50, 50), mac.Config{})
	w := DefaultWaypoint()
	w.MinSpeed, w.MaxSpeed = 1, 2
	w.Drive(n, a)

	// Sample positions every tick and verify displacement ≤ max speed.
	prev := a.Radio.Pos()
	violations := 0
	for i := 0; i < 300; i++ {
		n.Run(w.Tick)
		cur := a.Radio.Pos()
		if phy.Dist(prev, cur) > w.MaxSpeed*w.Tick.Seconds()*1.01 {
			violations++
		}
		prev = cur
	}
	if violations > 0 {
		t.Fatalf("%d displacement(s) exceeded the speed bound", violations)
	}
}

func TestLinkMonitorCountsTransitions(t *testing.T) {
	n := NewNetwork(7)
	a := n.AddStation(phy.Pos(0, 0), mac.Config{})
	b := n.AddStation(phy.Pos(10, 0), mac.Config{})

	var lm LinkMonitor
	lm.Watch(n, a, b, 50, 10*time.Millisecond)

	// Drive b in and out of range manually.
	n.Sched.At(100*time.Millisecond, func() { b.Radio.SetPos(phy.Pos(100, 0)) })
	n.Sched.At(200*time.Millisecond, func() { b.Radio.SetPos(phy.Pos(20, 0)) })
	n.Sched.At(300*time.Millisecond, func() { b.Radio.SetPos(phy.Pos(200, 0)) })
	n.Run(400 * time.Millisecond)

	if lm.Breaks != 2 || lm.Repairs != 1 {
		t.Fatalf("breaks=%d repairs=%d, want 2/1", lm.Breaks, lm.Repairs)
	}
	if lm.UpTime == 0 {
		t.Fatal("no uptime recorded")
	}
}

func TestDeterministicNetworkRuns(t *testing.T) {
	run := func() uint64 {
		n := NewNetwork(42)
		a := n.AddStation(phy.Pos(0, 0), mac.Config{})
		b := n.AddStation(phy.Pos(28, 0), mac.Config{})
		for i := 0; i < 20; i++ {
			_ = a.UDP.SendTo(make([]byte, 100), b.Addr(), 1, 1)
		}
		n.Run(time.Second)
		return a.MAC.Counters.DataTx + b.MAC.Counters.RxData*1000
	}
	if run() != run() {
		t.Fatal("identical seeds diverged")
	}
}

// TestStationAddrsUniqueBeyond256 is the regression test for the Addr()
// truncation bug: station IDs used to be narrowed to one byte, so
// stations 1 and 257 silently shared 10.0.0.1 and cross-delivered
// traffic.
func TestStationAddrsUniqueBeyond256(t *testing.T) {
	n := NewNetwork(1)
	seen := make(map[network.Addr]uint32)
	for i := 0; i < 300; i++ {
		st := n.AddStation(phy.Pos(float64(i), 0), mac.Config{})
		if prev, dup := seen[st.Addr()]; dup {
			t.Fatalf("station %d shares address %v with station %d", st.ID, st.Addr(), prev)
		}
		seen[st.Addr()] = st.ID
	}
	if got := n.Stations[256].Addr(); got == network.HostAddr(1) {
		t.Fatalf("station 257 truncated back to %v", got)
	}
	if got, want := n.Stations[255].Addr().String(), "10.0.1.0"; got != want {
		t.Fatalf("station 256 address = %s, want %s", got, want)
	}
}

// TestStationAddrOverflowPanics pins the overflow behaviour: ids outside
// the 10/8 host space must panic rather than wrap.
func TestStationAddrOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("StationAddr(2^24) did not panic")
		}
	}()
	network.StationAddr(1 << 24)
}

// TestAddStationProfileOverride checks heterogeneous per-station radio
// profiles: a nil profile selects the network default, a non-nil one
// sticks to that station's radio alone.
func TestAddStationProfileOverride(t *testing.T) {
	n := NewNetwork(1)
	hot := phy.DefaultProfile()
	hot.TxPowerDBm += 10
	a := n.AddStationProfile(phy.Pos(0, 0), mac.Config{}, hot)
	b := n.AddStation(phy.Pos(10, 0), mac.Config{})
	if a.Radio.Profile() != hot {
		t.Fatal("override profile not applied")
	}
	if b.Radio.Profile() != n.Profile {
		t.Fatal("default profile not applied to plain AddStation")
	}
}
