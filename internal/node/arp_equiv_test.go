package node

import (
	"testing"
	"time"

	"adhocsim/internal/mac"
	"adhocsim/internal/network"
	"adhocsim/internal/phy"
)

// arpRun drives one fixed-seed network — a 4×4 grid of stations with
// three concurrently paced UDP flows — and returns every observable
// metric. With table set the network wires the explicit O(stations²)
// neighbor tables (the WithNeighborTable reference); otherwise IP→HW
// resolution goes through the computed resolver the city-scale builds
// rely on.
func arpRun(t *testing.T, table bool) []uint64 {
	t.Helper()
	var opts []Option
	if table {
		opts = append(opts, WithNeighborTable())
	}
	n := NewNetwork(99, opts...)

	var sts []*Station
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			sts = append(sts, n.AddStation(phy.Pos(float64(c)*60, float64(r)*60), mac.Config{DataRate: phy.Rate2}))
		}
	}

	pairs := [][2]int{{0, 1}, {5, 6}, {10, 14}}
	got := make([]uint64, len(pairs))
	for k, pr := range pairs {
		k := k
		sts[pr[1]].UDP.Listen(9, func(p []byte, _ network.Addr, _ uint16) { got[k]++ })
	}
	for k, pr := range pairs {
		src, dst := sts[pr[0]], sts[pr[1]]
		var tick func()
		tick = func() {
			_ = src.UDP.SendTo(make([]byte, 300), dst.Addr(), 9, 9)
			n.Sched.After(25*time.Millisecond, tick)
		}
		// Staggered starts so the flows contend rather than alternate in
		// lockstep.
		n.Sched.After(time.Duration(k+1)*5*time.Millisecond, tick)
	}

	n.Run(3 * time.Second)

	metrics := append([]uint64{}, got...)
	metrics = append(metrics,
		n.Medium.Transmissions, n.Medium.Deliveries, n.Medium.PHYErrors,
		n.Sched.Fired(),
	)
	for _, st := range n.Stations {
		metrics = append(metrics,
			st.Radio.FramesSent, st.Radio.FramesDecoded, st.Radio.FramesErrored,
			st.MAC.Counters.Retries(), st.MAC.Counters.TxDrops, st.MAC.Counters.EIFSDeferrals,
		)
	}
	return metrics
}

// TestResolverMatchesNeighborTable pins the computed ARP resolver
// against the explicit neighbor-table wiring it replaced: same seed,
// same traffic, bit-identical metrics — delivery counts, medium
// counters, per-station radio and MAC counters, and the total event
// count.
func TestResolverMatchesNeighborTable(t *testing.T) {
	resolved := arpRun(t, false)
	tabled := arpRun(t, true)

	if resolved[0] == 0 || resolved[1] == 0 || resolved[2] == 0 {
		t.Fatalf("a flow delivered nothing (%v): the run does not exercise resolution", resolved[:3])
	}
	if len(resolved) != len(tabled) {
		t.Fatalf("metric vectors differ in length: %d vs %d", len(resolved), len(tabled))
	}
	for i := range resolved {
		if resolved[i] != tabled[i] {
			t.Fatalf("metric %d diverged: resolver=%d table=%d\nresolver: %v\ntable:    %v",
				i, resolved[i], tabled[i], resolved, tabled)
		}
	}
}
