package faults

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"adhocsim/internal/phy"
	"adhocsim/internal/sim"
)

func sec(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

func TestCompileIsDeterministic(t *testing.T) {
	p := Params{
		Crashes: []Crash{{Station: 1, At: sec(2), Until: sec(4)}},
		Churn: &Churn{
			RatePerMin: 120, MinDown: sec(0.2), MaxDown: sec(1),
		},
	}
	a, err := Compile(p, sim.NewSource(42), sec(10), 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(p, sim.NewSource(42), sec(10), 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed compiled two schedules:\n%+v\n%+v", a, b)
	}
	if len(a.Crashes) < 2 {
		t.Fatalf("churn at 120/min over 10 s drew %d crashes beyond the explicit one", len(a.Crashes)-1)
	}
	c, err := Compile(p, sim.NewSource(43), sec(10), 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Crashes, c.Crashes) {
		t.Fatal("different seeds drew identical churn")
	}
}

func TestChurnNeverOverlapsCrashWindows(t *testing.T) {
	p := Params{
		Crashes: []Crash{{Station: 0, At: sec(1), Until: sec(9)}},
		Churn:   &Churn{RatePerMin: 600, MinDown: sec(1), MaxDown: sec(3)},
	}
	s, err := Compile(p, sim.NewSource(7), sec(10), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range s.Crashes {
		for j, b := range s.Crashes {
			if i >= j || a.Station != b.Station {
				continue
			}
			aEnd, bEnd := a.Until, b.Until
			if aEnd == 0 {
				aEnd = s.Horizon
			}
			if bEnd == 0 {
				bEnd = s.Horizon
			}
			if a.At < bEnd && b.At < aEnd {
				t.Fatalf("crashes %d and %d overlap on station %d: %+v vs %+v", i, j, a.Station, a, b)
			}
		}
	}
}

func TestValidateRejections(t *testing.T) {
	h := sec(10)
	cases := []struct {
		name string
		p    Params
		want string
	}{
		{"crash station", Params{Crashes: []Crash{{Station: 9, At: sec(1)}}}, "outside topology"},
		{"crash past horizon", Params{Crashes: []Crash{{Station: 0, At: sec(11)}}}, "outside run horizon"},
		{"crash restart before crash", Params{Crashes: []Crash{{Station: 0, At: sec(2), Until: sec(1)}}}, "not after"},
		{"crash overlap", Params{Crashes: []Crash{
			{Station: 0, At: sec(1), Until: sec(5)},
			{Station: 0, At: sec(4), Until: sec(6)},
		}}, "overlap"},
		{"open crash overlap", Params{Crashes: []Crash{
			{Station: 0, At: sec(1)},
			{Station: 0, At: sec(4), Until: sec(6)},
		}}, "overlap"},
		{"degradation gain", Params{Degradations: []Degradation{{Station: 0, From: sec(1), To: sec(2), OffsetDB: 3}}}, "gain"},
		{"degradation window", Params{Degradations: []Degradation{{Station: 0, From: sec(2), To: sec(2), OffsetDB: -3}}}, "empty"},
		{"partition box", Params{Partitions: []Partition{{X0: 5, X1: 5, Y0: 0, Y1: 1, From: sec(1), To: sec(2), AttenDB: 10}}}, "empty"},
		{"partition atten", Params{Partitions: []Partition{{X0: 0, X1: 1, Y0: 0, Y1: 1, From: sec(1), To: sec(2), AttenDB: -1}}}, "negative"},
		{"outage flow", Params{Outages: []Outage{{Flow: 2, From: sec(1), To: sec(2)}}}, "outside traffic matrix"},
		{"churn rate", Params{Churn: &Churn{RatePerMin: 0, MinDown: sec(1), MaxDown: sec(1)}}, "positive"},
		{"churn downtime", Params{Churn: &Churn{RatePerMin: 1, MinDown: sec(2), MaxDown: sec(1)}}, "invalid"},
		{"churn station dup", Params{Churn: &Churn{RatePerMin: 1, MinDown: sec(1), MaxDown: sec(1), Stations: []int{1, 1}}}, "twice"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.p.Validate(4, 2, h)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestStationUpDownAndDownAt(t *testing.T) {
	s, err := Compile(Params{Crashes: []Crash{
		{Station: 1, At: sec(2), Until: sec(3)},
		{Station: 1, At: sec(5), Until: sec(20)}, // clamped to the horizon
		{Station: 2, At: sec(4)},                 // never restarts
	}}, sim.NewSource(1), sec(10), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	ud := s.StationUpDown()
	if ud[0].Down != 0 || ud[0].Crashes != 0 {
		t.Fatalf("station 0 = %+v", ud[0])
	}
	if ud[1].Down != sec(6) || ud[1].Crashes != 2 {
		t.Fatalf("station 1 = %+v, want 6s down over 2 crashes", ud[1])
	}
	if ud[2].Down != sec(6) || ud[2].Crashes != 1 {
		t.Fatalf("station 2 = %+v, want 6s down over 1 crash", ud[2])
	}
	for _, tc := range []struct {
		st   int
		at   time.Duration
		want bool
	}{
		{1, sec(2), true}, {1, sec(3), false}, {1, sec(7), true},
		{2, sec(3.9), false}, {2, sec(9.9), true}, {0, sec(5), false},
	} {
		if got := s.DownAt(tc.st, tc.at); got != tc.want {
			t.Errorf("DownAt(%d, %v) = %v, want %v", tc.st, tc.at, got, tc.want)
		}
	}
	// Paced ticks every second: dst 2 is down at t=4..9 (6 ticks); src 1
	// is down at 2, 5..9 — overlapping ticks 5..9 are attributed to the
	// source side, leaving only t=4.
	if got := s.DowntimeTicks(1, 2, sec(1)); got != 1 {
		t.Fatalf("DowntimeTicks = %d, want 1", got)
	}
	if got := s.DowntimeTicks(0, 2, sec(1)); got != 6 {
		t.Fatalf("DowntimeTicks (healthy src) = %d, want 6", got)
	}
}

func TestEventsSortedAndClamped(t *testing.T) {
	s, err := Compile(Params{
		Crashes: []Crash{{Station: 0, At: sec(6), Until: sec(12)}},
		Outages: []Outage{{Flow: 0, From: sec(1), To: sec(3)}},
	}, sim.NewSource(1), sec(10), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	evs := s.Events()
	want := []Event{
		{At: sec(1), Kind: OutageStartEvent, Station: -1, Flow: 0},
		{At: sec(3), Kind: OutageEndEvent, Station: -1, Flow: 0},
		{At: sec(6), Kind: CrashEvent, Station: 0},
	}
	if !reflect.DeepEqual(evs, want) {
		t.Fatalf("events = %+v, want %+v (restart past the horizon dropped)", evs, want)
	}
}

func TestTimelineClassifiesPartition(t *testing.T) {
	s, err := Compile(Params{
		Degradations: []Degradation{{Station: 0, From: sec(1), To: sec(2), OffsetDB: -10}},
		Partitions:   []Partition{{X0: 50, Y0: -10, X1: 200, Y1: 10, From: sec(3), To: sec(5), AttenDB: 40}},
	}, sim.NewSource(1), sec(10), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	positions := []phy.Position{{X: 0}, {X: 60}, {X: 70}}
	d := s.Timeline(positions)
	if d == nil {
		t.Fatal("timeline nil with degradations present")
	}
	// Cross-boundary link 0-1 loses 40 dB inside the window, the inside
	// pair 1-2 and every link outside the window lose nothing; station
	// 0's episode adds its -10 dB during [1s, 2s).
	cases := []struct {
		tx, rx int32
		at     time.Duration
		want   float64
	}{
		{0, 1, sec(0.5), 0},
		{0, 1, sec(1.5), -10},
		{0, 1, sec(2.5), 0},
		{0, 1, sec(4), -40},
		{1, 2, sec(4), 0},
		{0, 1, sec(5), 0},
	}
	for _, tc := range cases {
		if got := d.LinkOffsetDB(tc.tx, tc.rx, tc.at); got != tc.want {
			t.Errorf("LinkOffsetDB(%d,%d,%v) = %g, want %g", tc.tx, tc.rx, tc.at, got, tc.want)
		}
	}
	if s2, _ := Compile(Params{}, sim.NewSource(1), sec(10), 3, 0); s2.Timeline(positions) != nil {
		t.Fatal("empty schedule produced a timeline")
	}
}
