// Package faults is the deterministic fault-injection engine: a
// declarative fault plan — station crashes, link-degradation episodes,
// regional partitions, flow outages, random churn — compiles against a
// seed into a fixed Schedule before the run starts. Everything random
// (churn arrival times, victim picks, downtimes) is drawn from one
// named stream of the simulation's root source at compile time, so the
// schedule is a pure function of (plan, seed): the same faults fire at
// the same instants whatever the worker count, scheduler backend or
// arena-reuse path, which is what keeps faulted runs inside the
// simulator's bit-identical equivalence class.
//
// The engine deliberately produces data, not side effects. Crashes and
// outages become a sorted Event list the scenario layer schedules as
// ordinary simulator events on the affected station's own scheduler
// (parallel-kernel safe: each event touches only its region's state);
// degradations and partitions become a medium.DegTimeline — a pure
// function of time the medium consults on every link computation — so
// they need no events at all and invalidate the gain caches through
// epoch keys instead of callbacks.
package faults

import (
	"fmt"
	"sort"
	"time"

	"adhocsim/internal/medium"
	"adhocsim/internal/phy"
	"adhocsim/internal/sim"
)

// churnStream names the Source stream all churn draws come from.
const churnStream = "faults.churn"

// Crash takes one station down at At: radio detached from the channel,
// MAC stack cold, routes gone. Until, when positive, restarts it — the
// station rejoins the IBSS with a reset stack and (under dsdv) a fresh
// route table at a bumped sequence number. Until zero means the
// station stays down for the rest of the run.
type Crash struct {
	Station int
	At      time.Duration
	Until   time.Duration
}

// Degradation deepens one station's shadowing by OffsetDB (≤ 0 dB, a
// loss) on every link it terminates during [From, To) — a body-blocked
// antenna, a vehicle in an underpass.
type Degradation struct {
	Station  int
	From, To time.Duration
	OffsetDB float64
}

// Partition attenuates every link that crosses the boundary of the
// axis-aligned region [X0,X1)×[Y0,Y1) by AttenDB (≥ 0 dB of extra
// loss) during [From, To), cutting the stations inside off from the
// rest of the field; at To the partition heals. Links with both ends
// on the same side are untouched.
type Partition struct {
	X0, Y0, X1, Y1 float64
	From, To       time.Duration
	AttenDB        float64
}

// Outage pauses one flow's source during [From, To): paced CBR ticks
// keep their phase but offer nothing, saturating sources stop
// refilling. An intentional silence, not a loss.
type Outage struct {
	Flow     int
	From, To time.Duration
}

// Churn draws random station crashes at RatePerMin (a Poisson process
// over [Start, End), End zero meaning the horizon): each event picks a
// victim uniformly from Stations (empty = every station) and a
// downtime uniformly from [MinDown, MaxDown]. Draws that would overlap
// an existing crash window of the victim are skipped — the draw is
// still consumed, so the remaining schedule is unchanged.
type Churn struct {
	RatePerMin       float64
	MinDown, MaxDown time.Duration
	Stations         []int
	Start, End       time.Duration
}

// Params is a complete declarative fault plan.
type Params struct {
	Crashes      []Crash
	Degradations []Degradation
	Partitions   []Partition
	Outages      []Outage
	Churn        *Churn
}

// Empty reports whether the plan injects nothing.
func (p Params) Empty() bool {
	return len(p.Crashes) == 0 && len(p.Degradations) == 0 &&
		len(p.Partitions) == 0 && len(p.Outages) == 0 && p.Churn == nil
}

// Validate checks the plan against a topology of n stations, nFlows
// flows and the run horizon.
func (p Params) Validate(n, nFlows int, horizon time.Duration) error {
	for i, c := range p.Crashes {
		if c.Station < 0 || c.Station >= n {
			return fmt.Errorf("faults: crash %d station %d outside topology of %d stations", i, c.Station, n)
		}
		if c.At < 0 || c.At >= horizon {
			return fmt.Errorf("faults: crash %d at %v outside run horizon %v", i, c.At, horizon)
		}
		if c.Until != 0 && c.Until <= c.At {
			return fmt.Errorf("faults: crash %d restarts at %v, not after its crash at %v", i, c.Until, c.At)
		}
	}
	if err := checkCrashOverlap(p.Crashes, horizon); err != nil {
		return err
	}
	for i, d := range p.Degradations {
		if d.Station < 0 || d.Station >= n {
			return fmt.Errorf("faults: degradation %d station %d outside topology of %d stations", i, d.Station, n)
		}
		if d.From < 0 || d.To <= d.From {
			return fmt.Errorf("faults: degradation %d window [%v, %v) is empty", i, d.From, d.To)
		}
		if d.OffsetDB > 0 {
			return fmt.Errorf("faults: degradation %d offset %+.1f dB is a gain; faults only inject losses (≤ 0 dB)", i, d.OffsetDB)
		}
	}
	for i, pt := range p.Partitions {
		if pt.X1 <= pt.X0 || pt.Y1 <= pt.Y0 {
			return fmt.Errorf("faults: partition %d region [%g,%g)x[%g,%g) is empty", i, pt.X0, pt.X1, pt.Y0, pt.Y1)
		}
		if pt.From < 0 || pt.To <= pt.From {
			return fmt.Errorf("faults: partition %d window [%v, %v) is empty", i, pt.From, pt.To)
		}
		if pt.AttenDB < 0 {
			return fmt.Errorf("faults: partition %d attenuation %g dB is negative (AttenDB is the extra loss)", i, pt.AttenDB)
		}
	}
	for i, o := range p.Outages {
		if o.Flow < 0 || o.Flow >= nFlows {
			return fmt.Errorf("faults: outage %d flow %d outside traffic matrix of %d flows", i, o.Flow, nFlows)
		}
		if o.From < 0 || o.To <= o.From {
			return fmt.Errorf("faults: outage %d window [%v, %v) is empty", i, o.From, o.To)
		}
	}
	if c := p.Churn; c != nil {
		if c.RatePerMin <= 0 {
			return fmt.Errorf("faults: churn rate %g/min must be positive", c.RatePerMin)
		}
		if c.MinDown <= 0 || c.MaxDown < c.MinDown {
			return fmt.Errorf("faults: churn downtime range [%v, %v] is invalid", c.MinDown, c.MaxDown)
		}
		if c.Start < 0 || (c.End != 0 && c.End <= c.Start) {
			return fmt.Errorf("faults: churn window [%v, %v) is empty", c.Start, c.End)
		}
		seen := make(map[int]bool, len(c.Stations))
		for _, st := range c.Stations {
			if st < 0 || st >= n {
				return fmt.Errorf("faults: churn station %d outside topology of %d stations", st, n)
			}
			if seen[st] {
				return fmt.Errorf("faults: churn station %d listed twice", st)
			}
			seen[st] = true
		}
	}
	return nil
}

// checkCrashOverlap rejects plans where one station's explicit crash
// windows overlap — the engine could pick an order, but an overlapping
// plan is a spec bug, not an intent.
func checkCrashOverlap(crashes []Crash, horizon time.Duration) error {
	byStation := map[int][]Crash{}
	for _, c := range crashes {
		byStation[c.Station] = append(byStation[c.Station], c)
	}
	for st, cs := range byStation {
		sort.Slice(cs, func(i, j int) bool { return cs[i].At < cs[j].At })
		for i := 1; i < len(cs); i++ {
			prevEnd := cs[i-1].Until
			if prevEnd == 0 {
				prevEnd = horizon
			}
			if cs[i].At < prevEnd {
				return fmt.Errorf("faults: station %d crash windows overlap at %v", st, cs[i].At)
			}
		}
	}
	return nil
}

// Schedule is a compiled fault plan: every instant fixed, every random
// draw already made. It is immutable and safe to query concurrently.
type Schedule struct {
	N       int
	Horizon time.Duration

	// Crashes merges the explicit plan with the churn draws, sorted by
	// crash instant (ties keep plan order, churn after plan).
	Crashes      []Crash
	Degradations []Degradation
	Partitions   []Partition
	Outages      []Outage
}

// Compile validates the plan and fixes every fault instant. All churn
// randomness is drawn here, from the source's "faults.churn" stream,
// so a Schedule is a pure function of (plan, seed, horizon, n):
// executing it cannot depend on worker count or event interleaving
// because nothing is left to decide at run time.
func Compile(p Params, src *sim.Source, horizon time.Duration, n, nFlows int) (*Schedule, error) {
	if err := p.Validate(n, nFlows, horizon); err != nil {
		return nil, err
	}
	s := &Schedule{
		N:            n,
		Horizon:      horizon,
		Crashes:      append([]Crash(nil), p.Crashes...),
		Degradations: append([]Degradation(nil), p.Degradations...),
		Partitions:   append([]Partition(nil), p.Partitions...),
		Outages:      append([]Outage(nil), p.Outages...),
	}
	if c := p.Churn; c != nil {
		s.Crashes = append(s.Crashes, drawChurn(*c, src, horizon, n, s.Crashes)...)
	}
	sort.SliceStable(s.Crashes, func(i, j int) bool { return s.Crashes[i].At < s.Crashes[j].At })
	return s, nil
}

// drawChurn expands a churn process into concrete crashes. existing
// holds the plan's explicit crashes, so churn never double-crashes a
// station that is already down.
func drawChurn(c Churn, src *sim.Source, horizon time.Duration, n int, existing []Crash) []Crash {
	rng := src.Stream(churnStream)
	cands := c.Stations
	if len(cands) == 0 {
		cands = make([]int, n)
		for i := range cands {
			cands[i] = i
		}
	}
	end := c.End
	if end == 0 || end > horizon {
		end = horizon
	}
	ratePerNs := c.RatePerMin / float64(time.Minute)
	windows := append([]Crash(nil), existing...)
	var drawn []Crash
	for t := c.Start; ; {
		t += time.Duration(rng.ExpFloat64() / ratePerNs)
		if t >= end {
			break
		}
		victim := cands[rng.Intn(len(cands))]
		down := c.MinDown
		if c.MaxDown > c.MinDown {
			down += time.Duration(rng.Int63n(int64(c.MaxDown-c.MinDown) + 1))
		}
		// A victim already inside a crash window is skipped, but its
		// draws are consumed: the rest of the process is unchanged.
		ev := Crash{Station: victim, At: t, Until: t + down}
		if overlapsAny(windows, ev, horizon) {
			continue
		}
		windows = append(windows, ev)
		drawn = append(drawn, ev)
	}
	return drawn
}

func overlapsAny(windows []Crash, c Crash, horizon time.Duration) bool {
	for _, w := range windows {
		if w.Station != c.Station {
			continue
		}
		wEnd, cEnd := w.Until, c.Until
		if wEnd == 0 {
			wEnd = horizon
		}
		if cEnd == 0 {
			cEnd = horizon
		}
		if c.At < wEnd && w.At < cEnd {
			return true
		}
	}
	return false
}

// Kind discriminates the schedule's executable events.
type Kind int

// The executable event kinds. Degradations and partitions produce no
// events — they live in the Timeline, a pure function of time.
const (
	CrashEvent Kind = iota
	RestartEvent
	OutageStartEvent
	OutageEndEvent
)

// Event is one executable fault: a station crash or restart, or a flow
// outage edge. Station is meaningful for crash/restart, Flow for
// outages.
type Event struct {
	At      time.Duration
	Kind    Kind
	Station int
	Flow    int
}

// Events lists the schedule's executable events sorted by instant
// (stable: ties keep crash-before-outage construction order). Events
// at or past the horizon are dropped — they could never fire.
func (s *Schedule) Events() []Event {
	var evs []Event
	for _, c := range s.Crashes {
		if c.At < s.Horizon {
			evs = append(evs, Event{At: c.At, Kind: CrashEvent, Station: c.Station})
		}
		if c.Until > 0 && c.Until < s.Horizon {
			evs = append(evs, Event{At: c.Until, Kind: RestartEvent, Station: c.Station})
		}
	}
	for _, o := range s.Outages {
		if o.From < s.Horizon {
			evs = append(evs, Event{At: o.From, Kind: OutageStartEvent, Flow: o.Flow, Station: -1})
		}
		if o.To < s.Horizon {
			evs = append(evs, Event{At: o.To, Kind: OutageEndEvent, Flow: o.Flow, Station: -1})
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return evs
}

// EventCounts tallies a schedule's executable events by kind, indexed
// by Kind — the planned-edge totals the obs layer publishes beside the
// applied-edge counters the wiring increments as each event actually
// fires (they differ only if a run stops short of the horizon).
func (s *Schedule) EventCounts() [4]int {
	var n [4]int
	for _, ev := range s.Events() {
		n[ev.Kind]++
	}
	return n
}

// Timeline compiles the schedule's degradations and partitions into
// the medium's degradation timeline: per-station shadowing episodes
// plus boundary attenuation for every partition, stations classified
// by the given positions. Nil when the schedule has neither — the
// medium then skips the degradation path entirely.
func (s *Schedule) Timeline(positions []phy.Position) *medium.DegTimeline {
	if len(s.Degradations) == 0 && len(s.Partitions) == 0 {
		return nil
	}
	d := medium.NewDegTimeline(s.N)
	for _, dg := range s.Degradations {
		d.AddStationEpisode(dg.Station, dg.From, dg.To, dg.OffsetDB)
	}
	for _, p := range s.Partitions {
		inside := make([]bool, s.N)
		for i, pos := range positions {
			inside[i] = pos.X >= p.X0 && pos.X < p.X1 && pos.Y >= p.Y0 && pos.Y < p.Y1
		}
		d.AddPairRule(inside, p.From, p.To, -p.AttenDB)
	}
	d.Finalize()
	return d
}

// UpDown is one station's downtime account over the run.
type UpDown struct {
	Down    time.Duration
	Crashes int
}

// StationUpDown folds the crash windows into per-station downtime and
// crash counts, windows clamped to the horizon.
func (s *Schedule) StationUpDown() []UpDown {
	out := make([]UpDown, s.N)
	for _, c := range s.Crashes {
		if c.At >= s.Horizon {
			continue
		}
		until := c.Until
		if until == 0 || until > s.Horizon {
			until = s.Horizon
		}
		out[c.Station].Down += until - c.At
		out[c.Station].Crashes++
	}
	return out
}

// DownAt reports whether the station is inside a crash window at t.
func (s *Schedule) DownAt(station int, t time.Duration) bool {
	for _, c := range s.Crashes {
		if c.Station != station {
			continue
		}
		until := c.Until
		if until == 0 {
			until = s.Horizon
		}
		if t >= c.At && t < until {
			return true
		}
	}
	return false
}

// DowntimeTicks counts a paced flow's offered instants (every interval
// from time zero) that fall while its destination is crashed but its
// source is not — the destination-side share of downtime-attributed
// loss. The source-side share is measured live (the MAC refuses the
// send with ErrDown), so excluding source-down instants here keeps the
// two shares disjoint.
func (s *Schedule) DowntimeTicks(src, dst int, interval time.Duration) uint64 {
	if interval <= 0 {
		return 0
	}
	var n uint64
	for t := time.Duration(0); t < s.Horizon; t += interval {
		if s.DownAt(dst, t) && !s.DownAt(src, t) {
			n++
		}
	}
	return n
}

// FaultInstants lists every instant a fault may break routes — crash
// onsets and partition onsets — sorted ascending. The scenario layer
// stamps them on every flow's sink as recovery markers: the first
// delivery after each marker closes it as a route-recovery sample.
func (s *Schedule) FaultInstants() []time.Duration {
	var out []time.Duration
	for _, c := range s.Crashes {
		if c.At < s.Horizon {
			out = append(out, c.At)
		}
	}
	for _, p := range s.Partitions {
		if p.From < s.Horizon {
			out = append(out, p.From)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
