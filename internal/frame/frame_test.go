package frame

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"adhocsim/internal/phy"
)

func TestAddrFromID(t *testing.T) {
	a := AddrFromID(1)
	b := AddrFromID(2)
	if a == b {
		t.Fatal("distinct IDs produced equal addresses")
	}
	if a.IsGroup() || a.IsBroadcast() {
		t.Fatal("station address must be unicast")
	}
	if !Broadcast.IsBroadcast() || !Broadcast.IsGroup() {
		t.Fatal("broadcast flags wrong")
	}
}

func TestPSDUBits(t *testing.T) {
	tests := []struct {
		f    Frame
		want int
	}{
		{Frame{Type: TypeACK}, 112},
		{Frame{Type: TypeCTS}, 112},
		{Frame{Type: TypeRTS}, 160},
		{Frame{Type: TypeData}, 272},
		{Frame{Type: TypeData, Payload: make([]byte, 512)}, 272 + 4096},
		{Frame{Type: TypeBeacon, Payload: make([]byte, 20)}, 272 + 160},
	}
	for _, tt := range tests {
		if got := tt.f.PSDUBits(); got != tt.want {
			t.Errorf("PSDUBits(%v, len=%d) = %d, want %d", tt.f.Type, len(tt.f.Payload), got, tt.want)
		}
	}
}

func TestAirTimeMatchesPaperAccounting(t *testing.T) {
	// 512-byte MSDU at 11 Mbit/s: 192 µs + (272+4096)/11 µs ≈ 589.1 µs.
	f := &Frame{Type: TypeData, Payload: make([]byte, 512)}
	want := phy.PLCPTime + phy.Rate11.Airtime(272+4096)
	if got := f.AirTime(phy.Rate11); got != want {
		t.Errorf("AirTime = %v, want %v", got, want)
	}
	ack := &Frame{Type: TypeACK}
	if got := ack.AirTime(phy.Rate2); got != 248*time.Microsecond {
		t.Errorf("ACK AirTime = %v, want 248µs", got)
	}
}

func TestNeedsACK(t *testing.T) {
	unicast := &Frame{Type: TypeData, Addr1: AddrFromID(7)}
	if !unicast.NeedsACK() {
		t.Error("unicast data must need ACK")
	}
	bcast := &Frame{Type: TypeData, Addr1: Broadcast}
	if bcast.NeedsACK() {
		t.Error("broadcast data must not need ACK")
	}
	for _, typ := range []Type{TypeACK, TypeRTS, TypeCTS, TypeBeacon} {
		f := &Frame{Type: typ, Addr1: AddrFromID(7)}
		if f.NeedsACK() {
			t.Errorf("%v must not need ACK", typ)
		}
	}
}

func TestCloneDeep(t *testing.T) {
	f := &Frame{Type: TypeData, Payload: []byte{1, 2, 3}}
	g := f.Clone()
	g.Payload[0] = 99
	g.Retry = true
	if f.Payload[0] != 1 || f.Retry {
		t.Error("Clone shares state with original")
	}
}

func TestEncodeDecodeAllTypes(t *testing.T) {
	frames := []*Frame{
		{Type: TypeACK, Addr1: AddrFromID(1), Duration: 0},
		{Type: TypeCTS, Addr1: AddrFromID(2), Duration: 500 * time.Microsecond},
		{Type: TypeRTS, Addr1: AddrFromID(1), Addr2: AddrFromID(2), Duration: 2 * time.Millisecond},
		{Type: TypeData, Addr1: AddrFromID(1), Addr2: AddrFromID(2), Addr3: AddrFromID(3),
			Seq: 1234, Retry: true, Duration: 304 * time.Microsecond, Payload: []byte("hello world")},
		{Type: TypeBeacon, Addr1: Broadcast, Addr2: AddrFromID(2), Addr3: AddrFromID(2),
			Seq: 7, Payload: make([]byte, 40)},
	}
	for _, f := range frames {
		got, err := Decode(Encode(f))
		if err != nil {
			t.Fatalf("Decode(%v): %v", f.Type, err)
		}
		if !reflect.DeepEqual(f, got) {
			t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", f, got)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	f := &Frame{Type: TypeData, Addr1: AddrFromID(1), Addr2: AddrFromID(2), Payload: []byte("payload")}
	wire := Encode(f)
	for i := range wire {
		bad := bytes.Clone(wire)
		bad[i] ^= 0x40
		if _, err := Decode(bad); err == nil {
			t.Fatalf("corruption at byte %d not detected", i)
		}
	}
}

func TestDecodeShortBuffers(t *testing.T) {
	for n := 0; n < 14; n++ {
		if _, err := Decode(make([]byte, n)); err == nil {
			t.Fatalf("len %d: expected error", n)
		}
	}
}

func TestDurationSaturates(t *testing.T) {
	f := &Frame{Type: TypeCTS, Addr1: AddrFromID(1), Duration: time.Hour}
	got, err := Decode(Encode(f))
	if err != nil {
		t.Fatal(err)
	}
	want := time.Duration(1<<16-1) * time.Microsecond
	if got.Duration != want {
		t.Errorf("Duration = %v, want saturated %v", got.Duration, want)
	}
	f.Duration = -time.Second
	got, err = Decode(Encode(f))
	if err != nil {
		t.Fatal(err)
	}
	if got.Duration != 0 {
		t.Errorf("negative duration should clamp to 0, got %v", got.Duration)
	}
}

// Property: encode/decode round-trips arbitrary data frames.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(seed int64, plen uint16, seq uint16, retry bool, durUS uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		payload := make([]byte, plen%2304)
		rng.Read(payload)
		var p []byte
		if len(payload) > 0 {
			p = payload
		}
		in := &Frame{
			Type:     TypeData,
			Retry:    retry,
			Duration: time.Duration(durUS) * time.Microsecond,
			Addr1:    AddrFromID(rng.Uint32()),
			Addr2:    AddrFromID(rng.Uint32()),
			Addr3:    AddrFromID(rng.Uint32()),
			Seq:      seq,
			Payload:  p,
		}
		out, err := Decode(Encode(in))
		return err == nil && reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: random garbage essentially never decodes (FCS protects).
func TestDecodeGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		buf := make([]byte, 14+rng.Intn(100))
		rng.Read(buf)
		if f, err := Decode(buf); err == nil {
			t.Fatalf("garbage decoded as %v", f)
		}
	}
}
