// Package frame defines IEEE 802.11 MAC frames: the control and data
// frame types the DCF exchanges (DATA, ACK, RTS, CTS, BEACON), their
// on-air sizes using the paper's Table 1 accounting, and a byte-level
// wire codec with a CRC-32 frame check sequence.
//
// The simulator passes *Frame values through the medium directly (no
// serialization on the hot path); the codec exists for traces, for
// property tests, and because a credible 802.11 implementation must be
// able to marshal its frames.
package frame

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"adhocsim/internal/phy"
)

// Type identifies the MAC frame type.
type Type uint8

// MAC frame types used by the DCF.
const (
	TypeData Type = iota + 1
	TypeACK
	TypeRTS
	TypeCTS
	TypeBeacon
)

// String names the frame type.
func (t Type) String() string {
	switch t {
	case TypeData:
		return "DATA"
	case TypeACK:
		return "ACK"
	case TypeRTS:
		return "RTS"
	case TypeCTS:
		return "CTS"
	case TypeBeacon:
		return "BEACON"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Addr is a 48-bit MAC address.
type Addr [6]byte

// Broadcast is the all-ones broadcast address.
var Broadcast = Addr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// AddrFromID returns a locally-administered unicast address derived from
// a small station identifier, convenient for simulations.
func AddrFromID(id uint32) Addr {
	var a Addr
	a[0] = 0x02 // locally administered, unicast
	a[1] = 0x11
	binary.BigEndian.PutUint32(a[2:], id)
	return a
}

// IsBroadcast reports whether a is the broadcast address.
func (a Addr) IsBroadcast() bool { return a == Broadcast }

// IsGroup reports whether a is a group (multicast or broadcast) address.
func (a Addr) IsGroup() bool { return a[0]&1 == 1 }

// String renders the address in colon-hex notation.
func (a Addr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", a[0], a[1], a[2], a[3], a[4], a[5])
}

// Frame is one MAC frame. Control frames (ACK, CTS) carry only Addr1;
// RTS carries Addr1 and Addr2; data and beacon frames carry all three
// addresses plus a sequence number and payload.
type Frame struct {
	Type     Type
	Retry    bool          // retransmission flag
	Duration time.Duration // NAV duration announced to third parties
	Addr1    Addr          // receiver address
	Addr2    Addr          // transmitter address (not in ACK/CTS)
	Addr3    Addr          // BSSID (data/beacon only)
	Seq      uint16        // sequence number (data/beacon only)
	Payload  []byte        // MSDU (data/beacon only)
}

// PSDUBits returns the number of bits of this frame as transmitted on
// air, excluding the PLCP preamble/header, using the paper's Table 1
// accounting (data header+FCS = 272 bits, ACK/CTS = 112, RTS = 160).
func (f *Frame) PSDUBits() int {
	switch f.Type {
	case TypeData, TypeBeacon:
		return phy.MACHeaderBits + 8*len(f.Payload)
	case TypeACK:
		return phy.ACKBits
	case TypeRTS:
		return phy.RTSBits
	case TypeCTS:
		return phy.CTSBits
	}
	panic(fmt.Sprintf("frame: PSDUBits on invalid type %d", f.Type))
}

// AirTime returns the full transmission time of the frame at rate r,
// including the PLCP preamble and header.
func (f *Frame) AirTime(r phy.Rate) time.Duration {
	return phy.PLCPTime + r.Airtime(f.PSDUBits())
}

// NeedsACK reports whether the frame solicits a MAC-level ACK: unicast
// data frames do; control, beacon, and group-addressed frames do not.
func (f *Frame) NeedsACK() bool {
	return f.Type == TypeData && !f.Addr1.IsGroup()
}

// Clone returns a deep copy of the frame (payload included) so that
// retransmissions can mutate flags without aliasing delivered frames.
func (f *Frame) Clone() *Frame {
	g := *f
	if f.Payload != nil {
		g.Payload = append([]byte(nil), f.Payload...)
	}
	return &g
}

// String renders the frame for traces and test failures.
func (f *Frame) String() string {
	switch f.Type {
	case TypeACK, TypeCTS:
		return fmt.Sprintf("%s ra=%s dur=%v", f.Type, f.Addr1, f.Duration)
	case TypeRTS:
		return fmt.Sprintf("%s ra=%s ta=%s dur=%v", f.Type, f.Addr1, f.Addr2, f.Duration)
	default:
		return fmt.Sprintf("%s %s->%s seq=%d len=%d dur=%v retry=%t",
			f.Type, f.Addr2, f.Addr1, f.Seq, len(f.Payload), f.Duration, f.Retry)
	}
}

// Wire format:
//
//	frameControl(2) duration(2) addr1(6) [addr2(6) [addr3(6) seq(2)]] payload FCS(4)
//
// frameControl packs the type in the low nibble and the retry bit at
// bit 4. duration is in microseconds, saturating at 2^16-1 like the real
// field.

const (
	fcRetry     = 1 << 4
	maxDuration = time.Duration(1<<16-1) * time.Microsecond
)

var (
	// ErrShortFrame is returned when decoding a buffer too small to be a
	// valid frame of its type.
	ErrShortFrame = errors.New("frame: buffer too short")
	// ErrBadFCS is returned when the frame check sequence does not match.
	ErrBadFCS = errors.New("frame: FCS mismatch")
	// ErrBadType is returned for an unknown frame type.
	ErrBadType = errors.New("frame: unknown type")
)

// Encode marshals the frame to wire format with a trailing CRC-32 FCS.
func Encode(f *Frame) []byte {
	d := f.Duration
	if d < 0 {
		d = 0
	}
	if d > maxDuration {
		d = maxDuration
	}
	fc := byte(f.Type)
	if f.Retry {
		fc |= fcRetry
	}
	buf := make([]byte, 0, 22+len(f.Payload)+4)
	buf = append(buf, fc, 0)
	buf = binary.BigEndian.AppendUint16(buf, uint16(d/time.Microsecond))
	buf = append(buf, f.Addr1[:]...)
	switch f.Type {
	case TypeRTS:
		buf = append(buf, f.Addr2[:]...)
	case TypeData, TypeBeacon:
		buf = append(buf, f.Addr2[:]...)
		buf = append(buf, f.Addr3[:]...)
		buf = binary.BigEndian.AppendUint16(buf, f.Seq)
		buf = append(buf, f.Payload...)
	}
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// Decode unmarshals a wire-format frame, verifying the FCS.
func Decode(buf []byte) (*Frame, error) {
	if len(buf) < 14 { // fc+dur+addr1+fcs
		return nil, ErrShortFrame
	}
	body, fcs := buf[:len(buf)-4], binary.BigEndian.Uint32(buf[len(buf)-4:])
	if crc32.ChecksumIEEE(body) != fcs {
		return nil, ErrBadFCS
	}
	f := &Frame{
		Type:     Type(body[0] &^ fcRetry),
		Retry:    body[0]&fcRetry != 0,
		Duration: time.Duration(binary.BigEndian.Uint16(body[2:4])) * time.Microsecond,
	}
	copy(f.Addr1[:], body[4:10])
	rest := body[10:]
	switch f.Type {
	case TypeACK, TypeCTS:
		if len(rest) != 0 {
			return nil, ErrShortFrame
		}
	case TypeRTS:
		if len(rest) != 6 {
			return nil, ErrShortFrame
		}
		copy(f.Addr2[:], rest)
	case TypeData, TypeBeacon:
		if len(rest) < 14 {
			return nil, ErrShortFrame
		}
		copy(f.Addr2[:], rest[:6])
		copy(f.Addr3[:], rest[6:12])
		f.Seq = binary.BigEndian.Uint16(rest[12:14])
		if p := rest[14:]; len(p) > 0 {
			f.Payload = append([]byte(nil), p...)
		}
	default:
		return nil, ErrBadType
	}
	return f, nil
}
