package obs

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"adhocsim/internal/trace"
)

func TestNilRegistryIsNop(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry handed out non-nil handles")
	}
	// Every handle method must be a no-op, not a panic.
	c.Add(3)
	c.Inc()
	g.Set(1.5)
	h.Observe(42)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles reported non-zero values")
	}
	if s := r.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "first")
	b := r.Counter("x_total", "second registration ignored")
	if a != b {
		t.Fatal("same name yielded different counter handles")
	}
	a.Add(2)
	b.Inc()
	if got := r.Counter("x_total", "").Value(); got != 3 {
		t.Fatalf("accumulated value = %d, want 3", got)
	}
	if h := r.Snapshot().Counters[0].Help; h != "first" {
		t.Fatalf("help = %q, want the first registration's", h)
	}
}

func TestGaugeRoundTrip(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("util", "")
	for _, v := range []float64{0, 0.25, -1, 1e308, math.Inf(1)} {
		g.Set(v)
		if got := g.Value(); got != v {
			t.Fatalf("gauge round trip %v -> %v", v, got)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "")
	// 0 lands in bucket 0 (le 0); 1 in bucket 1 (le 1); 1000 in bucket
	// 10 (le 1023).
	h.Observe(0)
	h.Observe(1)
	h.Observe(1000)
	h.Observe(1023)
	if h.Count() != 4 || h.Sum() != 2024 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	hs := r.Snapshot().Histograms[0]
	want := []BucketSample{{0, 1}, {1, 2}, {1023, 4}}
	if !reflect.DeepEqual(hs.Buckets, want) {
		t.Fatalf("buckets = %+v, want %+v", hs.Buckets, want)
	}
	// Cumulative counts must be monotone and end at Count.
	if hs.Buckets[len(hs.Buckets)-1].Count != hs.Count {
		t.Fatal("last cumulative bucket != total count")
	}
}

func TestSnapshotStableJSON(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		// Register in different orders; the snapshot sorts by name.
		r.Counter("b_total", "bee").Add(2)
		r.Counter("a_total", "ay").Add(1)
		r.Gauge("z", "").Set(0.5)
		r.Histogram("h_ns", "").Observe(7)
		return r
	}
	one, err := json.Marshal(build().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	r2 := NewRegistry()
	r2.Histogram("h_ns", "").Observe(7)
	r2.Gauge("z", "").Set(0.5)
	r2.Counter("a_total", "ay").Add(1)
	r2.Counter("b_total", "bee").Add(2)
	two, err := json.Marshal(r2.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(one) != string(two) {
		t.Fatalf("snapshot JSON depends on registration order:\n%s\n%s", one, two)
	}
	if !strings.Contains(string(one), `"a_total"`) {
		t.Fatalf("unexpected snapshot JSON: %s", one)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("events_total", "events").Add(5)
	r.Gauge("util", "busy fraction").Set(0.75)
	h := r.Histogram("wall_ns", "wall time")
	h.Observe(3)
	h.Observe(900)
	var sb strings.Builder
	if err := r.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP events_total events",
		"# TYPE events_total counter",
		"events_total 5",
		"# TYPE util gauge",
		"util 0.75",
		"# TYPE wall_ns histogram",
		`wall_ns_bucket{le="3"} 1`,
		`wall_ns_bucket{le="1023"} 2`,
		`wall_ns_bucket{le="+Inf"} 2`,
		"wall_ns_sum 903",
		"wall_ns_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"sim_events_fired_total": "sim_events_fired_total",
		"weird-name.metric":      "weird_name_metric",
		"1starts_with_digit":     "_1starts_with_digit",
	} {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHandlerRoutes(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "").Add(9)
	rep := &Report{Scenario: "x", Seed: 7}
	srv := httptest.NewServer(Handler(r, func() *Report { return rep }))
	defer srv.Close()

	get := func(path string) (int, string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	if code, body, ct := get("/metrics"); code != 200 || !strings.Contains(body, "hits_total 9") || !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics: code=%d ct=%q body=%q", code, ct, body)
	}
	if code, body, _ := get("/report"); code != 200 || !strings.Contains(body, `"scenario": "x"`) {
		t.Fatalf("/report: code=%d body=%q", code, body)
	}
	if code, _, _ := get("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/: code=%d", code)
	}
	if code, _, _ := get("/nope"); code != 404 {
		t.Fatalf("/nope: code=%d, want 404", code)
	}

	// A nil report func 404s /report; a nil registry serves an empty
	// exposition. Neither panics.
	srv2 := httptest.NewServer(Handler(nil, nil))
	defer srv2.Close()
	resp, err := http.Get(srv2.URL + "/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("nil report: code=%d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(srv2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("nil registry /metrics: code=%d", resp.StatusCode)
	}
}

func TestConcurrentUpdatesAndSnapshots(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "")
	h := r.Histogram("v_ns", "")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(uint64(i))
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			r.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != 4000 || h.Count() != 4000 {
		t.Fatalf("counter=%d hist count=%d, want 4000", c.Value(), h.Count())
	}
}

func TestReportJSONStable(t *testing.T) {
	rep := &Report{
		Scenario:     "demo",
		Seed:         1,
		Replications: 2,
		Spans:        []trace.SpanRecord{{Name: "build", StartNS: 0, WallNS: 10}},
		TraceTail:    []string{"line"},
	}
	var a, b strings.Builder
	if err := rep.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("report JSON not deterministic")
	}
	if !strings.Contains(a.String(), `"wall_ns": 10`) {
		t.Fatalf("span fields missing: %s", a.String())
	}
}

func TestStatusSerializesLines(t *testing.T) {
	var sb strings.Builder
	s := NewStatus(&sb)
	s.Progressf("working %d%%", 10)
	s.Linef("note")
	s.Progressf("working %d%%", 90)
	s.Done()
	out := sb.String()
	// The full line must start on a fresh line, not splice into the
	// meter, and Done must terminate the final meter.
	if !strings.Contains(out, "\nnote\n") {
		t.Fatalf("line spliced into progress meter: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("Done left an unterminated line: %q", out)
	}
	// The writer adapter also clears the live line first.
	s.Progressf("meter")
	io.WriteString(s.Writer(), "trace line\n")
	if !strings.Contains(sb.String(), "\ntrace line\n") {
		t.Fatalf("writer spliced into meter: %q", sb.String())
	}

	var nilStatus *Status
	nilStatus.Progressf("no panic")
	nilStatus.Linef("no panic")
	nilStatus.Done()
	if nilStatus.Writer() != nil {
		t.Fatal("nil status returned a writer")
	}
}
