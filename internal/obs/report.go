package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"adhocsim/internal/trace"
)

// Report is the post-run observability document: what ran, how long each
// phase took, and a full metrics snapshot. Its JSON encoding is stable —
// spans in recording order, metrics sorted by name — so golden tests and
// diffs over reports stay meaningful.
type Report struct {
	// Scenario names the spec that ran (empty for ad-hoc runs).
	Scenario string `json:"scenario,omitempty"`
	// Seed is the root seed of the run.
	Seed uint64 `json:"seed"`
	// Replications is the replication count (1 for single runs).
	Replications int `json:"replications,omitempty"`
	// Spans are the per-phase wall timings (build/run/drain and anything
	// nested the layers recorded).
	Spans []trace.SpanRecord `json:"spans,omitempty"`
	// Metrics is the registry snapshot at report time.
	Metrics Snapshot `json:"metrics"`
	// TraceTail is the most recent execution-trace lines when -trace was
	// active: the last thing the kernel did, embedded for post-mortems.
	TraceTail []string `json:"trace_tail,omitempty"`
}

// WriteJSON writes the report as indented JSON.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// promName sanitizes a metric name into the Prometheus exposition
// charset [a-zA-Z0-9_:]. Registry names are already snake_case; this is
// a guard, not a mangling scheme.
func promName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers, counters and gauges as
// single samples, histograms as cumulative le-labelled bucket series
// plus _sum and _count.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, c := range s.Counters {
		name := promName(c.Name)
		if c.Help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", name, c.Help)
		}
		fmt.Fprintf(w, "# TYPE %s counter\n", name)
		fmt.Fprintf(w, "%s %d\n", name, c.Value)
	}
	for _, g := range s.Gauges {
		name := promName(g.Name)
		if g.Help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", name, g.Help)
		}
		fmt.Fprintf(w, "# TYPE %s gauge\n", name)
		fmt.Fprintf(w, "%s %g\n", name, g.Value)
	}
	var err error
	for _, h := range s.Histograms {
		name := promName(h.Name)
		if h.Help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", name, h.Help)
		}
		fmt.Fprintf(w, "# TYPE %s histogram\n", name)
		for _, b := range h.Buckets {
			fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b.UpperBound, b.Count)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
		fmt.Fprintf(w, "%s_sum %d\n", name, h.Sum)
		_, err = fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
	}
	return err
}
