package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler builds the live observability HTTP surface:
//
//	/metrics       Prometheus text exposition of the registry, scraped live
//	/report        the full run report as JSON (built fresh per request)
//	/debug/pprof/  the standard net/http/pprof profiles
//
// report may be nil (the /report route then 404s); reg may be nil (both
// data routes then serve empty documents — useful before a run starts).
// Every scrape only performs atomic loads against the registry, so
// serving during a run can never perturb simulation results.
func Handler(reg *Registry, report func() *Report) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/report", func(w http.ResponseWriter, r *http.Request) {
		if report == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		report().WriteJSON(w)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "adhocsim observability: /metrics /report /debug/pprof/")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the observability listener on addr (":9090",
// "localhost:0") and serves Handler(reg, report) until the process
// exits. It returns the bound address — useful with port 0 — or an
// error if the listen fails. The server runs on a background goroutine;
// a simulation never waits on a scraper.
func Serve(addr string, reg *Registry, report func() *Report) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(reg, report)}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
