// Package obs is the kernel-wide observability layer: a zero-dependency
// metrics registry (counters, gauges, log-bucketed histograms), a run
// report model with stable JSON and Prometheus text exposition, an HTTP
// surface for live scraping, and the unified status writer the CLIs
// share for stderr.
//
// The contract, carried from every determinism PR before it: metrics
// live beside, never inside, the simulation state. Nothing in this
// package may feed back into event order — registries only ever receive
// copies of kernel counters, and every update is a single atomic
// operation so a concurrent /metrics scrape can never perturb (or even
// observe inconsistently enough to matter) a running simulation.
//
// The disabled path is free: a nil *Registry is the no-op registry. It
// hands out nil metric handles, and every handle method starts with a
// nil receiver check — one predictable branch, no allocation, no atomic
// — so hot paths can keep unconditional Observe/Add calls.
package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a set of named metrics. The zero value is not usable; use
// NewRegistry. A nil *Registry is the no-op ("Nop") registry: it is safe
// to call every method on it, all handles come back nil, and nil handles
// swallow updates for the cost of one branch.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
	help   map[string]string
}

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
		help:   make(map[string]string),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. Registration is idempotent: the same name always yields the
// same handle, so independent subsystems (or successive replications)
// can accumulate into one metric. Nil registries return nil handles.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counts[name]
	if c == nil {
		c = &Counter{}
		r.counts[name] = c
		r.help[name] = help
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Nil registries return nil handles.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
		r.help[name] = help
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use. Nil registries return nil handles.
func (r *Registry) Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
		r.help[name] = help
	}
	return h
}

// Counter is a monotonically increasing uint64. Updates are one atomic
// add; reads are one atomic load, so scrapers and simulators never
// contend beyond the cache line.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n. No-op on a nil handle.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil handle.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero on a nil handle).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down (utilization, live worker
// count). Stored as atomic bits so Set/Value are single atomics.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge's value. No-op on a nil handle.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value (zero on a nil handle).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts uint64 observations (typically nanoseconds) into
// fixed log-spaced buckets: observation v lands in bucket bits.Len64(v),
// i.e. bucket i covers [2^(i-1), 2^i). The scheme needs no configuration,
// covers the full uint64 range in 65 buckets, and makes Observe two
// atomic adds (bucket + sum) and one atomic increment (count) — cheap
// enough for per-window instrumentation, and entirely lock-free so
// snapshotting mid-run is always safe.
type Histogram struct {
	buckets [65]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one value. No-op on a nil handle.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bits.Len64(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations (zero on a nil handle).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (zero on a nil handle).
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// CounterSample is one counter in a snapshot.
type CounterSample struct {
	Name  string `json:"name"`
	Help  string `json:"help,omitempty"`
	Value uint64 `json:"value"`
}

// GaugeSample is one gauge in a snapshot.
type GaugeSample struct {
	Name  string  `json:"name"`
	Help  string  `json:"help,omitempty"`
	Value float64 `json:"value"`
}

// BucketSample is one cumulative histogram bucket: Count observations
// were at most UpperBound. Only non-empty buckets are emitted.
type BucketSample struct {
	UpperBound uint64 `json:"le"`
	Count      uint64 `json:"count"`
}

// HistogramSample is one histogram in a snapshot.
type HistogramSample struct {
	Name    string         `json:"name"`
	Help    string         `json:"help,omitempty"`
	Count   uint64         `json:"count"`
	Sum     uint64         `json:"sum"`
	Buckets []BucketSample `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of a registry, sorted by metric name
// within each kind so its JSON encoding is stable across runs and Go
// versions. Taking a snapshot never blocks writers: every value is one
// atomic load, so a snapshot taken mid-run is a consistent-enough view
// (each metric individually exact, cross-metric skew bounded by the
// scrape itself).
type Snapshot struct {
	Counters   []CounterSample   `json:"counters,omitempty"`
	Gauges     []GaugeSample     `json:"gauges,omitempty"`
	Histograms []HistogramSample `json:"histograms,omitempty"`
}

// Snapshot copies every metric out of the registry. A nil registry
// snapshots to the zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	counts := make(map[string]*Counter, len(r.counts))
	for k, v := range r.counts {
		counts[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	for name, c := range counts {
		s.Counters = append(s.Counters, CounterSample{Name: name, Help: help[name], Value: c.Value()})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	for name, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeSample{Name: name, Help: help[name], Value: g.Value()})
	}
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	for name, h := range hists {
		hs := HistogramSample{Name: name, Help: help[name], Count: h.count.Load(), Sum: h.sum.Load()}
		var cum uint64
		for i := range h.buckets {
			n := h.buckets[i].Load()
			if n == 0 {
				continue
			}
			cum += n
			ub := uint64(math.MaxUint64)
			if i < 64 {
				ub = (uint64(1) << uint(i)) - 1
			}
			hs.Buckets = append(hs.Buckets, BucketSample{UpperBound: ub, Count: cum})
		}
		s.Histograms = append(s.Histograms, hs)
	}
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}
