package obs

import (
	"fmt"
	"io"
	"sync"
)

// Status is the one writer every human-facing stderr line goes through:
// carriage-return progress meters, the exec-plan line, trace output and
// the final report summary all used to write to os.Stderr independently
// and could interleave mid-line under parallel replications. Status
// serializes them and tracks whether a live \r progress line is on
// screen, so a full line printed mid-progress clears the meter first
// instead of splicing into it.
//
// A nil *Status swallows everything, so plumbing it through optional
// paths needs no guards.
type Status struct {
	mu   sync.Mutex
	w    io.Writer
	live bool // an unterminated \r progress line is on screen
}

// NewStatus wraps w (normally os.Stderr). A nil w yields a nil Status.
func NewStatus(w io.Writer) *Status {
	if w == nil {
		return nil
	}
	return &Status{w: w}
}

// Progressf rewrites the live progress line: a leading carriage return,
// the formatted text, no newline. Successive calls overwrite each other.
func (s *Status) Progressf(format string, args ...any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	fmt.Fprintf(s.w, "\r"+format, args...)
	s.live = true
	s.mu.Unlock()
}

// Linef prints one full line, first terminating any live progress line
// so the output never splices into a meter.
func (s *Status) Linef(format string, args ...any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.live {
		fmt.Fprintln(s.w)
		s.live = false
	}
	fmt.Fprintf(s.w, format+"\n", args...)
	s.mu.Unlock()
}

// Done terminates a live progress line, if any. Call once after the work
// the meter tracked finishes.
func (s *Status) Done() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.live {
		fmt.Fprintln(s.w)
		s.live = false
	}
	s.mu.Unlock()
}

// Writer returns an io.Writer that routes through the status lock —
// the adapter for APIs that want a plain writer (the trace package).
// Writes are assumed to be whole lines. A nil Status returns nil.
func (s *Status) Writer() io.Writer {
	if s == nil {
		return nil
	}
	return statusWriter{s}
}

type statusWriter struct{ s *Status }

func (sw statusWriter) Write(p []byte) (int, error) {
	sw.s.mu.Lock()
	defer sw.s.mu.Unlock()
	if sw.s.live {
		fmt.Fprintln(sw.s.w)
		sw.s.live = false
	}
	return sw.s.w.Write(p)
}
