package phy

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"adhocsim/internal/sim"
)

func TestLogDistanceRoundTrip(t *testing.T) {
	l := LogDistance{RefLossDB: 40, Exponent: 3}
	f := func(d float64) bool {
		d = 1 + math.Mod(math.Abs(d), 500)
		loss := l.LossDB(d)
		back := l.RangeFor(loss)
		return math.Abs(back-d) < 1e-6*d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogDistanceClampsBelowReference(t *testing.T) {
	l := LogDistance{RefLossDB: 40, Exponent: 3}
	if l.LossDB(0.1) != l.LossDB(1) {
		t.Error("loss below 1 m should clamp to reference loss")
	}
	if l.LossDB(0) != 40 {
		t.Errorf("LossDB(0) = %v, want 40", l.LossDB(0))
	}
}

func TestLogDistanceMonotone(t *testing.T) {
	l := LogDistance{RefLossDB: 40, Exponent: 3}
	prev := l.LossDB(1)
	for d := 2.0; d <= 300; d += 1 {
		cur := l.LossDB(d)
		if cur <= prev {
			t.Fatalf("path loss not increasing at %v m", d)
		}
		prev = cur
	}
}

func TestDefaultProfileCalibration(t *testing.T) {
	p := DefaultProfile()
	// Median ranges must land on the paper's Table 3 estimates.
	tests := []struct {
		rate Rate
		want float64
		tol  float64
	}{
		{Rate11, 30, 0.5},
		{Rate5_5, 70, 0.5},
		{Rate2, 95, 0.5},
		{Rate1, 120, 0.5},
	}
	for _, tt := range tests {
		if got := p.MedianRange(tt.rate); math.Abs(got-tt.want) > tt.tol {
			t.Errorf("MedianRange(%v) = %.1f m, want %.1f m", tt.rate, got, tt.want)
		}
	}
	// PCS range must exceed every data range (paper §2).
	cs := p.CarrierSenseRange()
	if cs < 150 || cs > 250 {
		t.Errorf("CarrierSenseRange = %.1f m, want ~190 m", cs)
	}
	for _, r := range Rates {
		if p.MedianRange(r) >= cs {
			t.Errorf("TX range at %v exceeds PCS range", r)
		}
	}
}

func TestSensitivityOrdering(t *testing.T) {
	p := DefaultProfile()
	// Higher rates require stronger signals (shorter range).
	for i := 1; i < 4; i++ {
		if p.SensitivityDBm[i] <= p.SensitivityDBm[i-1] {
			t.Errorf("sensitivity[%d]=%v not above sensitivity[%d]=%v",
				i, p.SensitivityDBm[i], i-1, p.SensitivityDBm[i-1])
		}
		if p.SINRRequiredDB[i] <= p.SINRRequiredDB[i-1] {
			t.Errorf("SINR requirement not increasing with rate")
		}
	}
	// CCA threshold must be below (more sensitive than) every decode
	// sensitivity, and PLCP detect at the 1 Mbit/s sensitivity.
	if p.CCAThresholdDBm >= p.SensitivityDBm[0] {
		t.Error("CCA threshold should be below 1 Mbit/s sensitivity")
	}
	if p.PLCPDetectDBm != p.SensitivityDBm[Rate1.Index()] {
		t.Error("PLCP detect should equal 1 Mbit/s sensitivity")
	}
}

func TestLossProbabilityShape(t *testing.T) {
	p := DefaultProfile()
	for _, r := range Rates {
		median := p.MedianRange(r)
		if got := p.LossProbability(r, median); math.Abs(got-0.5) > 0.01 {
			t.Errorf("loss at median range of %v = %.3f, want 0.5", r, got)
		}
		if got := p.LossProbability(r, median/2); got > 0.05 {
			t.Errorf("loss at half median range of %v = %.3f, want < 0.05", r, got)
		}
		if got := p.LossProbability(r, median*2); got < 0.95 {
			t.Errorf("loss at double median range of %v = %.3f, want > 0.95", r, got)
		}
	}
	// Monotone in distance.
	for _, r := range Rates {
		prev := -1.0
		for d := 5.0; d < 300; d += 5 {
			cur := p.LossProbability(r, d)
			if cur < prev {
				t.Fatalf("loss probability decreasing at %v m for %v", d, r)
			}
			prev = cur
		}
	}
	// At any distance, higher rates lose more.
	for d := 10.0; d < 200; d += 10 {
		for i := 1; i < len(Rates); i++ {
			if p.LossProbability(Rates[i], d) < p.LossProbability(Rates[i-1], d)-1e-9 {
				t.Fatalf("at %v m, %v loses less than %v", d, Rates[i], Rates[i-1])
			}
		}
	}
}

func TestLossProbabilityNoFading(t *testing.T) {
	p := DefaultProfile()
	p.Fading.SigmaDB = 0
	r := Rate11
	median := p.MedianRange(r)
	if got := p.LossProbability(r, median-1); got != 0 {
		t.Errorf("loss just inside range = %v, want 0", got)
	}
	if got := p.LossProbability(r, median+1); got != 1 {
		t.Errorf("loss just outside range = %v, want 1", got)
	}
}

func TestFadingDeterminismAndEpochs(t *testing.T) {
	src := sim.NewSource(7)
	f := Fading{SigmaDB: 4, Coherence: 100 * time.Millisecond}
	a := f.ShadowDB(src, 1, 2, 10*time.Millisecond)
	b := f.ShadowDB(src, 1, 2, 20*time.Millisecond)
	if a != b {
		t.Error("shadowing changed within one coherence epoch")
	}
	c := f.ShadowDB(src, 1, 2, 150*time.Millisecond)
	if a == c {
		t.Error("shadowing identical across epochs (coincidence ~impossible)")
	}
}

func TestFadingAsymmetricByDefault(t *testing.T) {
	src := sim.NewSource(7)
	f := Fading{SigmaDB: 4, Coherence: time.Second}
	if f.ShadowDB(src, 1, 2, 0) == f.ShadowDB(src, 2, 1, 0) {
		t.Error("asymmetric fading returned symmetric values")
	}
	f.Symmetric = true
	if f.ShadowDB(src, 1, 2, 0) != f.ShadowDB(src, 2, 1, 0) {
		t.Error("symmetric fading differs by direction")
	}
}

func TestFadingZeroSigma(t *testing.T) {
	src := sim.NewSource(7)
	f := Fading{SigmaDB: 0, Coherence: time.Second}
	if f.ShadowDB(src, 1, 2, 0) != 0 {
		t.Error("zero sigma must produce zero shadowing")
	}
}

func TestFadingMoments(t *testing.T) {
	src := sim.NewSource(11)
	f := Fading{SigmaDB: 4, Coherence: time.Millisecond}
	var sum, sumSq float64
	const n = 5000
	for i := 0; i < n; i++ {
		v := f.ShadowDB(src, 1, 2, time.Duration(i)*time.Millisecond)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean) > 0.3 {
		t.Errorf("shadowing mean = %.2f dB, want ~0", mean)
	}
	if math.Abs(sd-4) > 0.3 {
		t.Errorf("shadowing σ = %.2f dB, want ~4", sd)
	}
}

func TestWeatherApply(t *testing.T) {
	base := DefaultProfile()
	damp := WeatherDamp.Apply(base)
	if damp.PathLoss.Exponent <= base.PathLoss.Exponent {
		t.Error("damp weather must raise the path-loss exponent")
	}
	if damp.Fading.SigmaDB <= base.Fading.SigmaDB {
		t.Error("damp weather must raise σ")
	}
	// Base profile untouched.
	if base.PathLoss.Exponent != 3.0 {
		t.Error("Apply mutated the base profile")
	}
	// Damp day: shorter range at the same sensitivity.
	if damp.MedianRange(Rate1) >= base.MedianRange(Rate1) {
		t.Error("damp weather should shorten the 1 Mbit/s range")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := DefaultProfile()
	q := p.Clone()
	q.TxPowerDBm = 0
	if p.TxPowerDBm == 0 {
		t.Error("Clone shares state with original")
	}
}

func TestDBmConversions(t *testing.T) {
	if got := DBmToMilliwatt(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("DBmToMilliwatt(0) = %v", got)
	}
	if got := DBmToMilliwatt(10); math.Abs(got-10) > 1e-9 {
		t.Errorf("DBmToMilliwatt(10) = %v", got)
	}
	f := func(dbm float64) bool {
		dbm = math.Mod(dbm, 100)
		return math.Abs(MilliwattToDBm(DBmToMilliwatt(dbm))-dbm) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(MilliwattToDBm(0), -1) {
		t.Error("MilliwattToDBm(0) should be -Inf")
	}
}

// TestShadowDBComposition pins the bit-identity contract the medium's
// link-gain cache depends on: ShadowDB must equal exactly (not just
// approximately) the static component plus the epoch component, for
// every combination of enabled components and link orientation. A
// single ULP of drift here would break the cached-vs-direct golden
// equivalence.
func TestShadowDBComposition(t *testing.T) {
	src := sim.NewSource(0xfeed)
	fadings := []Fading{
		{SigmaDB: 4, Coherence: 50 * time.Millisecond},
		{SigmaDB: 4, Coherence: 50 * time.Millisecond, Symmetric: true},
		{StaticSigmaDB: 4},
		{SigmaDB: 3, StaticSigmaDB: 4, Coherence: 20 * time.Millisecond},
		{SigmaDB: 2, Coherence: 0}, // no coherence: single epoch forever
		{},                         // disabled entirely
	}
	times := []time.Duration{0, 7 * time.Millisecond, 50 * time.Millisecond,
		123 * time.Millisecond, 9 * time.Second}
	for _, f := range fadings {
		for _, now := range times {
			for _, link := range [][2]uint64{{1, 2}, {2, 1}, {17, 900}, {900, 17}} {
				tx, rx := link[0], link[1]
				direct := f.ShadowDB(src, tx, rx, now)
				composed := f.StaticShadowDB(src, tx, rx)
				composed += f.EpochShadowDB(src, tx, rx, f.FadeEpoch(now))
				if f.SigmaDB == 0 && f.StaticSigmaDB == 0 {
					if direct != 0 {
						t.Fatalf("disabled fading returned %v", direct)
					}
					continue
				}
				if direct != composed {
					t.Fatalf("fading %+v link %d->%d at %v: ShadowDB %v != static+epoch %v",
						f, tx, rx, now, direct, composed)
				}
			}
		}
	}
}

// TestFadeEpochBoundaries checks the epoch function against the direct
// division the pre-refactor ShadowDB used.
func TestFadeEpochBoundaries(t *testing.T) {
	f := Fading{SigmaDB: 4, Coherence: 50 * time.Millisecond}
	for _, tc := range []struct {
		now  time.Duration
		want uint64
	}{
		{0, 0}, {49 * time.Millisecond, 0}, {50 * time.Millisecond, 1},
		{99 * time.Millisecond, 1}, {100 * time.Millisecond, 2},
		{5 * time.Second, 100},
	} {
		if got := f.FadeEpoch(tc.now); got != tc.want {
			t.Errorf("FadeEpoch(%v) = %d, want %d", tc.now, got, tc.want)
		}
	}
	noCoherence := Fading{SigmaDB: 4}
	if got := noCoherence.FadeEpoch(time.Hour); got != 0 {
		t.Errorf("zero-coherence epoch = %d, want 0", got)
	}
}

// TestLinearizeMatchesDirect pins the cached linear threshold table
// against the direct conversions the medium used to perform per call:
// every entry must be the bit-identical output of DBmToMilliwatt.
func TestLinearizeMatchesDirect(t *testing.T) {
	for _, p := range []*Profile{DefaultProfile(), TestbedProfile(),
		WeatherDamp.Apply(DefaultProfile())} {
		l := p.Linearize()
		if l.NoiseFloorMW != DBmToMilliwatt(p.NoiseFloorDBm) {
			t.Errorf("%s: NoiseFloorMW %v != direct %v", p.Name, l.NoiseFloorMW, DBmToMilliwatt(p.NoiseFloorDBm))
		}
		if l.CCAThresholdMW != DBmToMilliwatt(p.CCAThresholdDBm) {
			t.Errorf("%s: CCAThresholdMW %v != direct %v", p.Name, l.CCAThresholdMW, DBmToMilliwatt(p.CCAThresholdDBm))
		}
		for i, s := range p.SensitivityDBm {
			if l.SensitivityMW[i] != DBmToMilliwatt(s) {
				t.Errorf("%s: SensitivityMW[%d] %v != direct %v", p.Name, i, l.SensitivityMW[i], DBmToMilliwatt(s))
			}
		}
	}
}
