package phy

import (
	"math/rand"
	"testing"
)

// withFlatScan runs fn with the coarse layer disabled, restoring it
// afterwards.
func withFlatScan(fn func()) {
	SetHierarchy(false)
	defer SetHierarchy(true)
	fn()
}

// TestHierarchyMatchesFlat is the coarse layer's bit-identity check:
// on clustered sparse fields (the layout the supercell skip exists
// for), every query — wide, narrow, off-field, straddling empty
// supercell rows — returns the identical id sequence with the
// hierarchy on and off, across interleaved Move and Remove churn.
func TestHierarchyMatchesFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ix := NewCellIndex(50) // 50 m cells, 400 m supercells
	pos := make(map[uint32]Position)
	id := uint32(1)
	// A few tight clusters far apart, plus scattered singletons, over
	// a ~20 km field: most supercells stay empty.
	for c := 0; c < 6; c++ {
		cx := rng.Float64() * 20000
		cy := rng.Float64() * 20000
		for i := 0; i < 40; i++ {
			p := Position{X: cx + rng.Float64()*800, Y: cy + rng.Float64()*800}
			ix.Insert(id, p)
			pos[id] = p
			id++
		}
	}
	for i := 0; i < 20; i++ {
		p := Position{X: rng.Float64() * 20000, Y: rng.Float64() * 20000}
		ix.Insert(id, p)
		pos[id] = p
		id++
	}

	check := func(center Position, radius float64) {
		t.Helper()
		fast := ix.AppendWithin(nil, center, radius)
		var flat []uint32
		withFlatScan(func() { flat = ix.AppendWithin(nil, center, radius) })
		if len(fast) != len(flat) {
			t.Fatalf("query (%.0f,%.0f) r=%.0f: hierarchy %d ids, flat %d ids",
				center.X, center.Y, radius, len(fast), len(flat))
		}
		for i := range flat {
			if fast[i] != flat[i] {
				t.Fatalf("query (%.0f,%.0f) r=%.0f: id %d is %d with hierarchy, %d flat",
					center.X, center.Y, radius, i, fast[i], flat[i])
			}
		}
	}

	queries := func() {
		for i := 0; i < 50; i++ {
			center := Position{X: rng.Float64()*24000 - 2000, Y: rng.Float64()*24000 - 2000}
			check(center, []float64{30, 200, 1500, 6000}[i%4])
		}
		check(Position{X: -5000, Y: -5000}, 1000) // fully off-field
		check(Position{X: 10000, Y: 10000}, 40000) // covers everything
	}
	queries()

	// Churn: move a third of the ids (some across supercells), remove a
	// few, and re-check.
	ids := make([]uint32, 0, len(pos))
	for i := range pos {
		ids = append(ids, i)
	}
	for i, mv := range ids {
		switch i % 3 {
		case 0:
			p := Position{X: rng.Float64() * 20000, Y: rng.Float64() * 20000}
			ix.Move(mv, p)
			pos[mv] = p
		case 1:
			if i%9 == 1 {
				ix.Remove(mv)
				delete(pos, mv)
			}
		}
	}
	queries()
}

// TestHierarchyCoarseCounts checks the supercell occupancy bookkeeping
// directly: after arbitrary insert/move/remove churn the coarse map
// must hold exactly one count per occupied supercell, each matching
// the ids beneath it.
func TestHierarchyCoarseCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ix := NewCellIndex(10)
	live := map[uint32]Position{}
	for op := 0; op < 5000; op++ {
		switch r := rng.Intn(10); {
		case r < 5 || len(live) == 0:
			id := uint32(op + 1)
			p := Position{X: rng.Float64()*2000 - 1000, Y: rng.Float64()*2000 - 1000}
			ix.Insert(id, p)
			live[id] = p
		case r < 8:
			for id := range live {
				p := Position{X: rng.Float64()*2000 - 1000, Y: rng.Float64()*2000 - 1000}
				ix.Move(id, p)
				live[id] = p
				break
			}
		default:
			for id := range live {
				ix.Remove(id)
				delete(live, id)
				break
			}
		}
	}
	want := map[cellKey]int32{}
	for _, p := range live {
		want[superKey(ix.keyFor(p))]++
	}
	if len(want) != len(ix.coarse) {
		t.Fatalf("coarse layer has %d supercells, want %d", len(ix.coarse), len(want))
	}
	for sk, n := range want {
		if ix.coarse[sk] != n {
			t.Fatalf("supercell %v count %d, want %d", sk, ix.coarse[sk], n)
		}
	}
}

// BenchmarkAppendWithinSparse measures the wide-query case the coarse
// layer targets: a clustered field where the query box spans hundreds
// of mostly-empty cells.
func benchmarkAppendWithinSparse(b *testing.B, hierarchy bool) {
	if !hierarchy {
		SetHierarchy(false)
		defer SetHierarchy(true)
	}
	rng := rand.New(rand.NewSource(5))
	ix := NewCellIndex(100)
	id := uint32(1)
	centers := make([]Position, 0, 8)
	for c := 0; c < 8; c++ {
		cc := Position{X: rng.Float64() * 30000, Y: rng.Float64() * 30000}
		centers = append(centers, cc)
		for i := 0; i < 128; i++ {
			ix.Insert(id, Position{X: cc.X + rng.Float64()*1000, Y: cc.Y + rng.Float64()*1000})
			id++
		}
	}
	var buf []uint32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = ix.AppendWithin(buf[:0], centers[i%len(centers)], 8000)
	}
}

func BenchmarkAppendWithinSparseHierarchy(b *testing.B) { benchmarkAppendWithinSparse(b, true) }
func BenchmarkAppendWithinSparseFlat(b *testing.B)      { benchmarkAppendWithinSparse(b, false) }
