package phy

import (
	"fmt"
	"math"
)

// Position is a station location on the (flat, outdoor) experiment field,
// in meters. The paper's testbed is an open field without buildings, so a
// 2-D plane is an adequate geometry.
type Position struct {
	X, Y float64
}

// Pos is shorthand for constructing a Position.
func Pos(x, y float64) Position { return Position{X: x, Y: y} }

// Dist returns the Euclidean distance in meters between p and q.
func Dist(p, q Position) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Add returns p translated by (dx, dy).
func (p Position) Add(dx, dy float64) Position {
	return Position{X: p.X + dx, Y: p.Y + dy}
}

// String renders the position in meters.
func (p Position) String() string {
	return fmt.Sprintf("(%.1f,%.1f)m", p.X, p.Y)
}
