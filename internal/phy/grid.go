package phy

import (
	"fmt"
	"math"
	"slices"
)

// cellKey addresses one square cell of a CellIndex: the integer floor of
// the position divided by the cell size, per axis.
type cellKey struct{ cx, cy int32 }

// CellIndex is a uniform spatial hash grid over identified positions —
// the neighbor index the medium uses to find every radio a transmission
// could possibly matter to without touching the radios it cannot.
//
// The grid is unbounded: cells exist only while occupied, so the index
// costs memory proportional to the station count, not the field area.
// Within each cell, ids are kept sorted ascending; queries visit cells
// in deterministic row-major order (cy, then cx, ascending). Together
// this makes every query's output a pure function of the current
// id→position map — independent of insertion history, Go map iteration
// order, and past Move calls — which is what lets fixed-seed simulation
// runs stay bit-identical.
//
// CellIndex is not safe for concurrent use, matching the
// single-goroutine simulation kernel it serves.
//
// Above the fine cells sits a coarse layer of supercells, each covering
// a coarseSize×coarseSize block of cells, holding only an occupancy
// count. Wide queries — a radius spanning many cells, or a sparse
// clustered field where most of the bounding box is empty space —
// consult the coarse layer to skip whole supercell rows and row
// segments without probing each fine cell. The skip only ever elides
// provably empty cells, so query output (and its deterministic row-
// major order) is bit-identical with the hierarchy on or off;
// SetHierarchy(false) forces the flat scan as the reference path.
type CellIndex struct {
	cell   float64
	cells  map[cellKey][]uint32
	where  map[uint32]cellKey
	coarse map[cellKey]int32 // supercell → indexed-id count
}

const (
	// coarseShift is the log2 edge ratio between a supercell and a
	// cell: supercells cover 8×8 cells, a balance between skip reach
	// and coarse-layer probe cost.
	coarseShift = 3
	coarseSize  = 1 << coarseShift
	// coarseMinCells is the bounding-box area (in cells) below which a
	// query walks the flat grid directly: a handful of probes is
	// cheaper than any amount of skipping.
	coarseMinCells = 32
)

// flatOnly disables the coarse layer in queries (SetHierarchy).
var flatOnly bool

// SetHierarchy disables (false) or re-enables (true) the coarse
// supercell layer in CellIndex queries. Like medium.SetBruteForce it
// exists for verification: the skip is provably output-preserving, and
// the equivalence tests run both ways to keep that proof honest.
// Production callers never need it. Not safe to flip mid-query.
func SetHierarchy(on bool) { flatOnly = !on }

// superKey maps a cell to its supercell. Arithmetic shift floors
// toward negative infinity, which is the correct block assignment for
// negative coordinates too.
func superKey(k cellKey) cellKey {
	return cellKey{cx: k.cx >> coarseShift, cy: k.cy >> coarseShift}
}

// NewCellIndex returns an empty index with the given cell size in
// meters. The caller picks the cell size from its query radius; the
// medium uses the maximum relevance radius, so any query touches at
// most a 3×3 block of cells.
func NewCellIndex(cellSize float64) *CellIndex {
	if !(cellSize > 0) || math.IsInf(cellSize, 1) {
		panic(fmt.Sprintf("phy: cell size %v must be positive and finite", cellSize))
	}
	return &CellIndex{
		cell:   cellSize,
		cells:  make(map[cellKey][]uint32),
		where:  make(map[uint32]cellKey),
		coarse: make(map[cellKey]int32),
	}
}

// CellSize returns the cell edge length in meters.
func (ix *CellIndex) CellSize() float64 { return ix.cell }

// Len returns the number of indexed ids.
func (ix *CellIndex) Len() int { return len(ix.where) }

// keyFor maps a position to its cell.
func (ix *CellIndex) keyFor(p Position) cellKey {
	return cellKey{
		cx: int32(math.Floor(p.X / ix.cell)),
		cy: int32(math.Floor(p.Y / ix.cell)),
	}
}

// Insert adds id at position p. Inserting an id twice panics: the caller
// owns id uniqueness (the medium enforces it at AddRadio).
func (ix *CellIndex) Insert(id uint32, p Position) {
	if _, ok := ix.where[id]; ok {
		panic(fmt.Sprintf("phy: CellIndex already holds id %d", id))
	}
	k := ix.keyFor(p)
	ix.where[id] = k
	ix.cells[k] = insertSorted(ix.cells[k], id)
	ix.coarse[superKey(k)]++
}

// Move updates id's position, relocating it between cells only when the
// move actually crosses a cell boundary — the common mobility tick stays
// O(1) with no slice churn.
func (ix *CellIndex) Move(id uint32, p Position) {
	old, ok := ix.where[id]
	if !ok {
		panic(fmt.Sprintf("phy: CellIndex.Move of unknown id %d", id))
	}
	k := ix.keyFor(p)
	if k == old {
		return
	}
	ix.cells[old] = removeSorted(ix.cells[old], id)
	if len(ix.cells[old]) == 0 {
		delete(ix.cells, old)
	}
	ix.where[id] = k
	ix.cells[k] = insertSorted(ix.cells[k], id)
	if os, ns := superKey(old), superKey(k); os != ns {
		ix.coarseDec(os)
		ix.coarse[ns]++
	}
}

// coarseDec drops one occupant from a supercell, deleting the entry at
// zero so the coarse map stays proportional to the occupied area.
func (ix *CellIndex) coarseDec(sk cellKey) {
	if n := ix.coarse[sk] - 1; n == 0 {
		delete(ix.coarse, sk)
	} else {
		ix.coarse[sk] = n
	}
}

// Remove deletes id from the index. Removing an unknown id is a no-op.
// The medium never detaches radios today; Remove completes the index's
// surface for the dynamic-membership media (station churn, sharding)
// the roadmap points at.
func (ix *CellIndex) Remove(id uint32) {
	k, ok := ix.where[id]
	if !ok {
		return
	}
	delete(ix.where, id)
	ix.cells[k] = removeSorted(ix.cells[k], id)
	if len(ix.cells[k]) == 0 {
		delete(ix.cells, k)
	}
	ix.coarseDec(superKey(k))
}

// AppendWithin appends to dst the ids of every indexed position within
// radius meters of center, and returns the extended slice. It
// over-approximates at cell granularity: every id within the radius is
// returned, plus possibly some ids in partially-overlapping cells that
// lie just beyond it — callers that need the exact disc filter by true
// distance (the medium does so implicitly through the received-power
// cut). Passing a reused buffer as dst makes the query allocation-free
// in steady state.
//
// Cells are visited in row-major (cy, cx) order and each cell's ids are
// sorted ascending, so the output order is deterministic.
func (ix *CellIndex) AppendWithin(dst []uint32, center Position, radius float64) []uint32 {
	if !(radius >= 0) {
		return dst
	}
	c := ix.cell
	cx0 := int32(math.Floor((center.X - radius) / c))
	cx1 := int32(math.Floor((center.X + radius) / c))
	cy0 := int32(math.Floor((center.Y - radius) / c))
	cy1 := int32(math.Floor((center.Y + radius) / c))
	r2 := radius * radius
	// The coarse layer pays only on wide boxes: a 3×3 query is cheaper
	// probed directly.
	useCoarse := !flatOnly &&
		(int64(cx1-cx0)+1)*(int64(cy1-cy0)+1) >= coarseMinCells
	for cy := cy0; cy <= cy1; cy++ {
		if useCoarse && cy&(coarseSize-1) == 0 && cy1-cy >= coarseSize-1 &&
			ix.coarseRowEmpty(cy>>coarseShift, cx0, cx1) {
			// A fully empty supercell row, and the box covers all of it:
			// skip its remaining coarseSize-1 cell rows too.
			cy += coarseSize - 1
			continue
		}
		cx := cx0
		for cx <= cx1 {
			if useCoarse && ix.coarse[superKey(cellKey{cx, cy})] == 0 {
				// Empty supercell: jump to its right edge.
				cx = (cx>>coarseShift + 1) << coarseShift
				continue
			}
			ids := ix.cells[cellKey{cx, cy}]
			if len(ids) > 0 {
				// Skip cells whose nearest point is beyond the radius: the
				// bounding box visits corner cells the disc cannot touch.
				nx := clampF(center.X, float64(cx)*c, float64(cx+1)*c)
				ny := clampF(center.Y, float64(cy)*c, float64(cy+1)*c)
				dx, dy := nx-center.X, ny-center.Y
				if dx*dx+dy*dy <= r2 {
					dst = append(dst, ids...)
				}
			}
			cx++
		}
	}
	return dst
}

// coarseRowEmpty reports whether every supercell of row sy overlapping
// the cell-column range [cx0, cx1] is empty.
func (ix *CellIndex) coarseRowEmpty(sy, cx0, cx1 int32) bool {
	for sx := cx0 >> coarseShift; sx <= cx1>>coarseShift; sx++ {
		if ix.coarse[cellKey{sx, sy}] != 0 {
			return false
		}
	}
	return true
}

// clampF clamps v into [lo, hi].
func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// insertSorted inserts id into the ascending slice ids.
func insertSorted(ids []uint32, id uint32) []uint32 {
	i, _ := slices.BinarySearch(ids, id)
	return slices.Insert(ids, i, id)
}

// removeSorted deletes id from the ascending slice ids.
func removeSorted(ids []uint32, id uint32) []uint32 {
	i, found := slices.BinarySearch(ids, id)
	if !found {
		return ids
	}
	return slices.Delete(ids, i, i+1)
}
