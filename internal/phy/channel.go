package phy

import (
	"math"
	"time"

	"adhocsim/internal/sim"
)

// LogDistance is the deterministic component of the propagation model:
// path loss in dB grows as 10·n·log10(d) past a 1 m reference loss.
// Outdoor open-field measurements (the paper's setting) are well described
// by exponents n ≈ 2.7–3.5.
type LogDistance struct {
	RefLossDB float64 // loss at 1 m, dB
	Exponent  float64 // path-loss exponent n
}

// LossDB returns the mean path loss in dB at distance d meters. Distances
// below 1 m are clamped to the reference distance.
func (l LogDistance) LossDB(d float64) float64 {
	if d < 1 {
		d = 1
	}
	return l.RefLossDB + 10*l.Exponent*math.Log10(d)
}

// RangeFor returns the distance at which the mean path loss equals
// lossDB: the inverse of LossDB.
func (l LogDistance) RangeFor(lossDB float64) float64 {
	return math.Pow(10, (lossDB-l.RefLossDB)/(10*l.Exponent))
}

// Fading models time-varying log-normal shadowing as per-directed-link
// block fading: within one coherence epoch the shadowing offset of a link
// is constant; across epochs it is redrawn i.i.d. N(0, σ²). The offset is
// a pure function of (seed, link, epoch), so the process needs no stored
// state and is exactly reproducible.
//
// This is the substitute for the paper's outdoor radio channel: the paper
// reports that "the physical channel has time-varying and asymmetric
// propagation properties" (§2) and "high variability in the channel
// conditions during the same experiment" (footnote 4). Directed links
// fade independently (asymmetry); σ and the coherence time set how fast
// conditions swing.
type Fading struct {
	SigmaDB   float64       // time-varying shadowing standard deviation, dB
	Coherence time.Duration // epoch length; <=0 disables time variation
	Symmetric bool          // if true, both directions of a link share the fade
	// StaticSigmaDB adds a per-directed-link offset drawn once per run:
	// persistent location-dependent channel asymmetry (antenna placement,
	// ground multipath). Zero by default; the EXPERIMENTS.md discussion of
	// Figure 11 uses it to model the testbed's fixed asymmetries.
	StaticSigmaDB float64
}

// MaxShadowSigmas bounds each normal shadowing deviate to ±8σ. Measured
// shadowing distributions have bounded support — a draw eight standard
// deviations out is not a physical channel state but a numerical
// artifact of the Box-Muller tail — and a hard bound is what makes the
// fading process spatially indexable: it caps the power any transmission
// can deliver at a given distance, so the medium can derive a finite
// relevance radius (Profile.ReachRange) and skip all radios beyond it
// without ever disagreeing with an exhaustive per-radio evaluation. The
// truncation is statistically invisible (P(|z| > 8) ≈ 1.2e-15 per draw).
const MaxShadowSigmas = 8

// clampNorm truncates a standard normal deviate to ±MaxShadowSigmas.
func clampNorm(z float64) float64 {
	if z > MaxShadowSigmas {
		return MaxShadowSigmas
	}
	if z < -MaxShadowSigmas {
		return -MaxShadowSigmas
	}
	return z
}

// orient maps a directed link to the key its shadowing draws hash
// over: the link itself, or the sorted pair under Symmetric fading.
func (f Fading) orient(tx, rx uint64) (uint64, uint64) {
	if f.Symmetric && tx > rx {
		return rx, tx
	}
	return tx, rx
}

// StaticShadowDB returns the persistent per-link shadowing component in
// dB: the offset drawn once per run for the directed link tx→rx, or 0
// when StaticSigmaDB is disabled. It is a pure function of (seed, link),
// which is what lets the medium cache it per link for the lifetime of a
// run without ever disagreeing with a fresh computation.
func (f Fading) StaticShadowDB(src *sim.Source, tx, rx uint64) float64 {
	if f.StaticSigmaDB == 0 {
		return 0
	}
	a, b := f.orient(tx, rx)
	return f.StaticSigmaDB * clampNorm(src.HashNorm(0x57a71c, a, b))
}

// FadeEpoch returns the coherence epoch that governs the time-varying
// shadowing component at simulated time now. Within one epoch every
// link's dynamic fade is constant — the invariant the medium's
// link-gain cache keys on.
func (f Fading) FadeEpoch(now time.Duration) uint64 {
	if f.Coherence > 0 {
		return uint64(now / f.Coherence)
	}
	return 0
}

// EpochShadowDB returns the time-varying shadowing component in dB for
// the directed link tx→rx during the given coherence epoch, or 0 when
// SigmaDB is disabled. Like StaticShadowDB it is a pure function of
// (seed, link, epoch), so caching the value for the duration of the
// epoch is bit-identical to recomputing it per arrival.
func (f Fading) EpochShadowDB(src *sim.Source, tx, rx, epoch uint64) float64 {
	if f.SigmaDB == 0 {
		return 0
	}
	a, b := f.orient(tx, rx)
	return f.SigmaDB * clampNorm(src.HashNorm(0xfade, a, b, epoch))
}

// ShadowDB returns the shadowing offset in dB for the directed link
// tx→rx at simulated time now. The offset is bounded by ±MaxShadowDB.
// It composes StaticShadowDB and EpochShadowDB — the same components,
// summed in the same order, as the medium's link-gain cache, so cached
// and direct computations are bit-identical (TestShadowDBComposition
// pins this).
func (f Fading) ShadowDB(src *sim.Source, tx, rx uint64, now time.Duration) float64 {
	if f.SigmaDB == 0 && f.StaticSigmaDB == 0 {
		return 0
	}
	db := f.StaticShadowDB(src, tx, rx)
	db += f.EpochShadowDB(src, tx, rx, f.FadeEpoch(now))
	return db
}

// MaxShadowDB returns the largest shadowing offset ShadowDB can ever
// produce for this fading model: the bound that turns "could this frame
// matter at that receiver?" into a pure distance test.
func (f Fading) MaxShadowDB() float64 {
	return MaxShadowSigmas * (math.Abs(f.SigmaDB) + math.Abs(f.StaticSigmaDB))
}

// Profile is the complete radio model of one class of 802.11b NIC plus
// environment: transmit power, path loss, fading, receiver sensitivity
// per rate, SINR requirements per rate, and carrier-sense thresholds.
//
// The zero value is not useful; start from DefaultProfile and adjust.
type Profile struct {
	Name string

	TxPowerDBm    float64 // cards transmit at constant power (§2)
	NoiseFloorDBm float64

	PathLoss LogDistance
	Fading   Fading

	// SensitivityDBm[rate.Index()] is the minimum mean received power for
	// a frame at that rate to be decodable.
	SensitivityDBm [4]float64

	// SINRRequiredDB[rate.Index()] is the minimum signal-to-
	// (interference+noise) ratio for successful decoding at that rate.
	// Higher rates need denser constellations and hence more margin.
	SINRRequiredDB [4]float64

	// PLCPDetectDBm is the minimum power at which a receiver can lock
	// onto the PLCP preamble (always sent at 1 Mbit/s). Locked-but-
	// undecodable frames end with a PHY error, which triggers EIFS at
	// the MAC — a key mechanism in the paper's four-node asymmetries.
	PLCPDetectDBm float64

	// CCAThresholdDBm is the energy-detect threshold of physical carrier
	// sense. It is lower (more sensitive) than any decode sensitivity,
	// which is why PCS_range > TX_range (§2 of the paper).
	CCAThresholdDBm float64

	// CaptureMarginDB: during PLCP lock, a newcomer frame this many dB
	// stronger than the currently locked frame steals the receiver
	// (message-in-message capture). Set very high to disable.
	CaptureMarginDB float64
}

// DefaultProfile returns the calibrated radio model used by all paper
// reproductions. Calibration targets (median, i.e. 50 % packet loss,
// ranges — Table 3 of the paper):
//
//	11 Mbit/s  ≈  30 m   (paper: 30 m)
//	5.5 Mbit/s ≈  70 m   (paper: 70 m)
//	2 Mbit/s   ≈  95 m   (paper: 90–100 m)
//	1 Mbit/s   ≈ 120 m   (paper: 110–130 m)
//
// and PCS_range ≈ 190 m (energy detect), comfortably above every data
// range, as the paper's four-node experiments require.
func DefaultProfile() *Profile {
	p := &Profile{
		Name:          "dlink-dwl650-outdoor",
		TxPowerDBm:    15,
		NoiseFloorDBm: -100,
		PathLoss:      LogDistance{RefLossDB: 40, Exponent: 3.0},
		Fading: Fading{
			SigmaDB:   4,
			Coherence: 50 * time.Millisecond,
		},
		SINRRequiredDB:  [4]float64{4, 7, 9, 12}, // 1, 2, 5.5, 11 Mbit/s
		CaptureMarginDB: 10,
	}
	p.CalibrateRanges([4]float64{120, 95, 70, 30})
	p.PLCPDetectDBm = p.SensitivityDBm[Rate1.Index()]
	p.CCAThresholdDBm = p.rxPowerAt(190)
	return p
}

// TestbedProfile returns the radio model used for the paper's
// four-station experiments (§3.3): DefaultProfile plus a static
// per-link shadowing component. The paper explains its Figure 7
// unfairness by "the asymmetric condition that exists on the channel";
// the static component models exactly that — persistent, link-specific
// gain offsets from antenna placement and ground multipath — while the
// total shadowing variance stays at the default 4 dB² scale.
//
// Which session wins is a property of the drawn offsets (i.e. of the
// run seed), just as it was a property of the field on the measurement
// day; see EXPERIMENTS.md.
func TestbedProfile() *Profile {
	p := DefaultProfile()
	p.Name = "dlink-dwl650-outdoor-asymmetric"
	p.Fading.SigmaDB = 3
	p.Fading.StaticSigmaDB = 4
	return p
}

// CityProfile returns the radio model of the city-scale presets: the
// default NIC in a denser urban environment. Street-level clutter
// steepens the path-loss exponent to 3.5, and the many small scatterers
// average the shadowing down to σ = 2 dB; the sensitivities are
// recalibrated to the same Table 3 median ranges, so link budgets at
// preset distances match the outdoor model while power decays much
// faster beyond them.
//
// That faster decay is the point at scale: the relevance radius — the
// distance the medium's spatial index must search around every
// transmitter, priced by ReachRange at the irrelevance threshold —
// collapses from ~17 km under DefaultProfile to ~1.5 km here. On a
// 100 000-station field the outdoor model would make every transmission
// consider a large fraction of the city; under this profile it touches
// only its own few blocks.
func CityProfile() *Profile {
	p := &Profile{
		Name:          "dlink-dwl650-city",
		TxPowerDBm:    15,
		NoiseFloorDBm: -100,
		PathLoss:      LogDistance{RefLossDB: 40, Exponent: 3.5},
		Fading: Fading{
			SigmaDB: 2,
			// Static city stations: shadowing decorrelation is driven by
			// scatterer motion alone, not by the terminal moving through
			// the fade field, so the fade holds for ~half a second rather
			// than the outdoor model's 50 ms. (This is also what keeps
			// per-link fade redraws off the 100k hot path: one redraw per
			// link per half second instead of twenty.)
			Coherence: 500 * time.Millisecond,
		},
		SINRRequiredDB:  [4]float64{4, 7, 9, 12}, // 1, 2, 5.5, 11 Mbit/s
		CaptureMarginDB: 10,
	}
	p.CalibrateRanges([4]float64{120, 95, 70, 30})
	p.PLCPDetectDBm = p.SensitivityDBm[Rate1.Index()]
	// PCS_range is pinned at the same 190 m as the outdoor model (the
	// threshold lands lower in dBm because loss at 190 m is higher), so
	// the PCS_range > TX_range ordering the paper's experiments rest on
	// holds here too.
	p.CCAThresholdDBm = p.rxPowerAt(190)
	return p
}

// CalibrateRanges sets the per-rate sensitivities so that the median
// transmission range of each rate equals ranges (meters, indexed like
// Rate.Index: 1, 2, 5.5, 11 Mbit/s).
func (p *Profile) CalibrateRanges(ranges [4]float64) {
	for i, d := range ranges {
		p.SensitivityDBm[i] = p.TxPowerDBm - p.PathLoss.LossDB(d)
	}
}

// rxPowerAt returns the mean received power at distance d.
func (p *Profile) rxPowerAt(d float64) float64 {
	return p.TxPowerDBm - p.PathLoss.LossDB(d)
}

// MeanRxPowerDBm returns the mean (fade-free) received power in dBm at
// distance d meters from a transmitter using this profile.
func (p *Profile) MeanRxPowerDBm(d float64) float64 { return p.rxPowerAt(d) }

// RxPowerDBm returns the instantaneous received power for the directed
// link tx→rx at distance d and time now, including the current shadowing
// epoch.
func (p *Profile) RxPowerDBm(src *sim.Source, tx, rx uint64, d float64, now time.Duration) float64 {
	return p.rxPowerAt(d) + p.Fading.ShadowDB(src, tx, rx, now)
}

// MedianRange returns the distance at which the mean received power
// equals the sensitivity of rate r: the 50 %-loss distance, i.e. the
// paper's "transmission range" estimate for that rate.
func (p *Profile) MedianRange(r Rate) float64 {
	return p.PathLoss.RangeFor(p.TxPowerDBm - p.SensitivityDBm[r.Index()])
}

// CarrierSenseRange returns the distance at which the mean received power
// equals the CCA energy-detect threshold (the median PCS_range).
func (p *Profile) CarrierSenseRange() float64 {
	return p.PathLoss.RangeFor(p.TxPowerDBm - p.CCAThresholdDBm)
}

// ReachRange returns the maximum distance at which a transmission from
// this profile can arrive with instantaneous power ≥ thresholdDBm, under
// the most favorable shadowing draw the fading model admits
// (Fading.MaxShadowDB). Beyond this distance the received power is
// certainly below the threshold, whatever the fade — the guarantee the
// medium's spatial index is built on. The returned distance carries a
// small guard band (+0.1 %, +1 m) so that floating-point round-off in
// the loss/range inversion can never exclude a boundary receiver that a
// direct power computation would include.
func (p *Profile) ReachRange(thresholdDBm float64) float64 {
	d := p.PathLoss.RangeFor(p.TxPowerDBm + p.Fading.MaxShadowDB() - thresholdDBm)
	return d*1.001 + 1
}

// LossProbability returns the analytic probability that a frame at rate r
// is lost at distance d due to shadowing alone (no interference): the
// probability that the faded power falls below the rate's sensitivity.
func (p *Profile) LossProbability(r Rate, d float64) float64 {
	if p.Fading.SigmaDB == 0 && p.Fading.StaticSigmaDB == 0 {
		if p.rxPowerAt(d) >= p.SensitivityDBm[r.Index()] {
			return 0
		}
		return 1
	}
	margin := p.rxPowerAt(d) - p.SensitivityDBm[r.Index()]
	sigma := math.Hypot(p.Fading.SigmaDB, p.Fading.StaticSigmaDB)
	// P(X < -margin), X ~ N(0, σ) — the Gaussian Q-function.
	return 0.5 * math.Erfc(margin/(sigma*math.Sqrt2))
}

// Clone returns a deep copy of the profile, convenient for deriving
// weather variants without mutating the shared default.
func (p *Profile) Clone() *Profile {
	q := *p
	return &q
}

// Weather describes a day's channel conditions for the Figure 4
// experiment (1 Mbit/s transmission range measured on two different
// days). Wetter/worse days attenuate faster and swing more.
type Weather struct {
	Name          string
	ExponentDelta float64 // added to the path-loss exponent
	SigmaDeltaDB  float64 // added to the shadowing σ
}

// Standard weather profiles for the Figure 4 reproduction. The paper's
// curves for 06/12/2002 and 09/12/2002 differ by roughly 20 m at the
// same loss level; a small exponent shift reproduces that spread.
var (
	WeatherClear = Weather{Name: "2002-12-06 (clear)", ExponentDelta: 0, SigmaDeltaDB: 0}
	WeatherDamp  = Weather{Name: "2002-12-09 (damp)", ExponentDelta: 0.25, SigmaDeltaDB: 1}
)

// Apply returns a copy of profile p with the weather adjustment applied.
// Sensitivities are untouched: weather changes the channel, not the NIC.
func (w Weather) Apply(p *Profile) *Profile {
	q := p.Clone()
	q.Name = p.Name + "/" + w.Name
	q.PathLoss.Exponent += w.ExponentDelta
	q.Fading.SigmaDB += w.SigmaDeltaDB
	return q
}

// Linear holds a Profile's threshold quantities precomputed in linear
// milliwatts. The medium's hot receive path sums energies in linear
// scale, and before PR 4 it converted the *constant* dB-scale
// thresholds (noise floor, CCA energy-detect, per-rate sensitivities)
// through math.Pow on every busy-check and decode verdict. Linearize
// computes each value exactly once through the same DBmToMilliwatt the
// direct code path used, so a cached table entry is bit-identical to
// the on-the-fly conversion it replaces (TestLinearizeMatchesDirect
// pins this).
type Linear struct {
	// NoiseFloorMW is DBmToMilliwatt(Profile.NoiseFloorDBm).
	NoiseFloorMW float64
	// CCAThresholdMW is DBmToMilliwatt(Profile.CCAThresholdDBm).
	CCAThresholdMW float64
	// SensitivityMW[rate.Index()] is the per-rate decode sensitivity in
	// milliwatts, DBmToMilliwatt(Profile.SensitivityDBm[i]).
	SensitivityMW [4]float64
}

// Linearize precomputes the profile's linear-scale threshold table.
// Call it after the profile is fully configured: the table is a
// snapshot, not a view, so later threshold edits do not propagate
// (the medium takes its snapshot at radio attach time, matching the
// existing rule that profiles are configured before attach).
func (p *Profile) Linearize() Linear {
	l := Linear{
		NoiseFloorMW:   DBmToMilliwatt(p.NoiseFloorDBm),
		CCAThresholdMW: DBmToMilliwatt(p.CCAThresholdDBm),
	}
	for i, s := range p.SensitivityDBm {
		l.SensitivityMW[i] = DBmToMilliwatt(s)
	}
	return l
}

// DBmToMilliwatt converts dBm to linear milliwatts.
func DBmToMilliwatt(dbm float64) float64 { return math.Pow(10, dbm/10) }

// MilliwattToDBm converts linear milliwatts to dBm.
func MilliwattToDBm(mw float64) float64 {
	if mw <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(mw)
}
