package phy

import (
	"math"
	"testing"
	"time"
)

func TestRegionOfClamping(t *testing.T) {
	g := RegionGrid{MinX: 0, MinY: 0, CellW: 100, CellH: 100, Cols: 3, Rows: 2}
	for _, tc := range []struct {
		pos  Position
		want int
	}{
		{Position{X: 50, Y: 50}, 0},
		{Position{X: 150, Y: 50}, 1},
		{Position{X: 250, Y: 150}, 5},
		// Off-field positions clamp to border regions, never index out.
		{Position{X: -40, Y: 50}, 0},
		{Position{X: 1e6, Y: 1e6}, 5},
		{Position{X: 150, Y: -3}, 1},
		// The far edge itself belongs to the last region.
		{Position{X: 300, Y: 200}, 5},
	} {
		if got := g.RegionOf(tc.pos); got != tc.want {
			t.Errorf("RegionOf(%+v) = %d, want %d", tc.pos, got, tc.want)
		}
	}
}

func TestRegionOfDegenerateCells(t *testing.T) {
	// A zero-extent dimension (all stations on one line) must map
	// everything into the first row without dividing by zero.
	g := RegionGrid{MinX: 0, MinY: 5, CellW: 10, CellH: 0, Cols: 2, Rows: 1}
	if got := g.RegionOf(Position{X: 15, Y: 5}); got != 1 {
		t.Errorf("RegionOf on zero-height grid = %d, want 1", got)
	}
}

func TestMinRegionDist(t *testing.T) {
	g := RegionGrid{CellW: 100, CellH: 50, Cols: 4, Rows: 3}
	for _, tc := range []struct {
		a, b int
		want float64
	}{
		{0, 0, 0},
		{0, 1, 0}, // adjacent: rectangles touch
		{0, 5, 0}, // diagonal neighbors touch at the corner
		{0, 2, 100},
		{0, 3, 200},
		{0, 8, 50},                   // two rows down: one full cell height apart
		{0, 10, math.Hypot(100, 50)}, // (2,2): one cell gap each way
	} {
		if got := g.MinRegionDist(tc.a, tc.b); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("MinRegionDist(%d,%d) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if sym := g.MinRegionDist(tc.b, tc.a); sym != g.MinRegionDist(tc.a, tc.b) {
			t.Errorf("MinRegionDist(%d,%d) not symmetric", tc.a, tc.b)
		}
	}
}

func TestHopDist(t *testing.T) {
	g := RegionGrid{Cols: 4, Rows: 3}
	for _, tc := range []struct {
		a, b, want int
	}{
		{0, 0, 0}, {0, 1, 1}, {0, 5, 1}, {0, 11, 3}, {4, 7, 3},
	} {
		if got := g.HopDist(tc.a, tc.b); got != tc.want {
			t.Errorf("HopDist(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestMinPropagationDelay(t *testing.T) {
	for _, tc := range []struct {
		dist, reach float64
		want        time.Duration
	}{
		// Step 1 of the derivation: one bound, whatever the geometry.
		{0, 500, PropDelay},
		{100, 500, PropDelay},
		{500, 500, PropDelay},
		// Step 2: distance buys whole extra links.
		{501, 500, 2 * PropDelay},
		{1500, 500, 3 * PropDelay},
		// Degenerate radio models degrade to the unconditional bound.
		{1000, 0, PropDelay},
		{1000, -1, PropDelay},
		{1000, math.Inf(1), PropDelay},
		{-5, 500, PropDelay},
	} {
		if got := MinPropagationDelay(tc.dist, tc.reach); got != tc.want {
			t.Errorf("MinPropagationDelay(%v, %v) = %v, want %v", tc.dist, tc.reach, got, tc.want)
		}
	}
}

func TestFitRegionGrid(t *testing.T) {
	pos := []Position{{X: 10, Y: 20}, {X: 110, Y: 70}, {X: 60, Y: 45}}
	g := FitRegionGrid(pos, 2, 2)
	if g.MinX != 10 || g.MinY != 20 || g.CellW != 50 || g.CellH != 25 {
		t.Errorf("fitted grid = %+v", g)
	}
	// Every input position must land inside the grid.
	for _, p := range pos {
		r := g.RegionOf(p)
		if r < 0 || r >= g.Regions() {
			t.Errorf("RegionOf(%+v) = %d out of range", p, r)
		}
	}
	// Shape clamps below one region per dimension.
	if g := FitRegionGrid(pos, 0, -2); g.Cols != 1 || g.Rows != 1 {
		t.Errorf("clamped grid = %dx%d, want 1x1", g.Cols, g.Rows)
	}
	// No positions: a zero-size single cell at the origin.
	if g := FitRegionGrid(nil, 3, 3); g.Regions() != 9 || g.CellW != 0 || g.RegionOf(Position{}) != 0 {
		t.Errorf("empty fit = %+v", g)
	}
}

// TestFitRegionGridDegenerate pins the degenerate bounding boxes: every
// station at one point (zero extent both ways) and a single row
// (zero-height box). Both fitters must produce grids whose RegionOf
// stays in range for the stations themselves and for off-field
// positions — a /0 or an unclamped index here would crash the parallel
// kernel's station placement.
func TestFitRegionGridDegenerate(t *testing.T) {
	fitters := []struct {
		name string
		fit  func([]Position, int, int) RegionGrid
	}{
		{"uniform", FitRegionGrid},
		{"balanced", FitBalancedRegionGrid},
	}
	onePoint := []Position{{X: 7, Y: 7}, {X: 7, Y: 7}, {X: 7, Y: 7}}
	row := []Position{{X: 0, Y: 3}, {X: 10, Y: 3}, {X: 20, Y: 3}, {X: 30, Y: 3}}
	probes := []Position{{X: 7, Y: 7}, {X: -100, Y: 50}, {X: 1e9, Y: -1e9}, {}}
	for _, f := range fitters {
		for name, pos := range map[string][]Position{"one-point": onePoint, "single-row": row} {
			g := f.fit(pos, 4, 4)
			for _, p := range append(append([]Position{}, pos...), probes...) {
				if r := g.RegionOf(p); r < 0 || r >= g.Regions() {
					t.Errorf("%s/%s: RegionOf(%+v) = %d out of [0,%d)", f.name, name, p, r, g.Regions())
				}
			}
			// The degenerate geometry must also keep the lookahead inputs
			// finite and non-negative.
			for a := 0; a < g.Regions(); a++ {
				for b := 0; b < g.Regions(); b++ {
					if d := g.MinRegionDist(a, b); math.IsNaN(d) || d < 0 {
						t.Fatalf("%s/%s: MinRegionDist(%d,%d) = %v", f.name, name, a, b, d)
					}
				}
			}
		}
		// All stations coincident: everything lands in one region.
		g := f.fit(onePoint, 4, 4)
		want := g.RegionOf(onePoint[0])
		for _, p := range onePoint {
			if g.RegionOf(p) != want {
				t.Errorf("%s: coincident stations split across regions", f.name)
			}
		}
	}
	// A single row on a multi-row uniform grid: the zero-height box puts
	// every station in row 0, and columns still split by X.
	g := FitRegionGrid(row, 2, 3)
	if r := g.RegionOf(row[0]); r != 0 {
		t.Errorf("single-row leftmost station in region %d, want 0", r)
	}
	if r := g.RegionOf(row[3]); r != 1 {
		t.Errorf("single-row rightmost station in region %d, want 1", r)
	}
}

// TestFitBalancedRegionGrid pins the quantile cut placement: a
// clustered field splits so each column holds an equal share of
// stations, with each cut at the midpoint between the stations it
// separates.
func TestFitBalancedRegionGrid(t *testing.T) {
	// 6 stations on a line: 4 crowded left, 2 far right. A uniform 2x1
	// grid puts 5 of 6 in the left region; balanced splits 3/3.
	pos := []Position{
		{X: 0}, {X: 1}, {X: 2}, {X: 3}, {X: 100}, {X: 101},
	}
	g := FitBalancedRegionGrid(pos, 2, 1)
	if len(g.XCuts) != 1 || g.YCuts != nil {
		t.Fatalf("cuts = %v / %v, want one x cut", g.XCuts, g.YCuts)
	}
	// The cut separates sorted[2]=2 from sorted[3]=3: midpoint 2.5.
	if got := g.XCuts[0]; got != 2.5 {
		t.Errorf("cut at %v, want 2.5", got)
	}
	var left, right int
	for _, p := range pos {
		if g.RegionOf(p) == 0 {
			left++
		} else {
			right++
		}
	}
	if left != 3 || right != 3 {
		t.Errorf("balanced split %d/%d, want 3/3", left, right)
	}
	uni := FitRegionGrid(pos, 2, 1)
	uniLeft := 0
	for _, p := range pos {
		if uni.RegionOf(p) == 0 {
			uniLeft++
		}
	}
	if uniLeft != 4 {
		t.Errorf("uniform reference left count = %d, want 4 (the crowded cluster)", uniLeft)
	}

	// On an evenly spaced field the balanced fit converges to the
	// uniform assignment.
	var even []Position
	for i := 0; i < 16; i++ {
		even = append(even, Position{X: float64(i), Y: float64(i % 4)})
	}
	bal, uni := FitBalancedRegionGrid(even, 4, 2), FitRegionGrid(even, 4, 2)
	for _, p := range even {
		if bal.RegionOf(p) != uni.RegionOf(p) {
			t.Errorf("even field: balanced region %d != uniform %d at %+v", bal.RegionOf(p), uni.RegionOf(p), p)
		}
	}

	// A station exactly on a cut belongs to the left/lower region
	// (slot k spans (cut[k-1], cut[k]]).
	onCut := RegionGrid{Cols: 2, Rows: 1, XCuts: []float64{10}}
	if r := onCut.RegionOf(Position{X: 10}); r != 0 {
		t.Errorf("station on the cut in region %d, want 0", r)
	}
	if r := onCut.RegionOf(Position{X: 10.001}); r != 1 {
		t.Errorf("station past the cut in region %d, want 1", r)
	}
}

// TestBalancedMinRegionDist pins the lookahead geometry on explicit
// cut lines: the gap between non-adjacent regions is the distance
// between their facing cuts, adjacent regions touch, and MinEdge
// reports the narrowest slot.
func TestBalancedMinRegionDist(t *testing.T) {
	// Bounding box [0,100]x[0,60]; columns cut at 10 and 80, rows at 30.
	g := RegionGrid{
		MinX: 0, MinY: 0,
		CellW: 100.0 / 3, CellH: 30, // means, reconstruct the outer bounds
		Cols: 3, Rows: 2,
		XCuts: []float64{10, 80},
		YCuts: []float64{30},
	}
	if d := g.MinRegionDist(0, 1); d != 0 {
		t.Errorf("adjacent balanced regions: dist %v, want 0", d)
	}
	// Regions 0 and 2: the gap is the middle column's width, 80-10.
	if d := g.MinRegionDist(0, 2); math.Abs(d-70) > 1e-9 {
		t.Errorf("gap across the middle column = %v, want 70", d)
	}
	// Diagonal: region 0 (row 0) to region 5 (row 1, col 2) — x gap 70,
	// y gap 0 (rows are adjacent).
	if d := g.MinRegionDist(0, 5); math.Abs(d-70) > 1e-9 {
		t.Errorf("diagonal balanced dist = %v, want 70", d)
	}
	if e := g.MinEdge(); math.Abs(e-10) > 1e-9 {
		t.Errorf("MinEdge = %v, want 10 (the narrow first column)", e)
	}
	// Coincident cuts: a zero-width region yields a zero gap — sound,
	// it only tightens the lookahead to the unconditional bound.
	z := RegionGrid{Cols: 3, Rows: 1, XCuts: []float64{5, 5}}
	if d := z.MinRegionDist(0, 2); d != 0 {
		t.Errorf("zero-width middle region: dist %v, want 0", d)
	}
}
