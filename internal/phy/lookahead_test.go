package phy

import (
	"math"
	"testing"
	"time"
)

func TestRegionOfClamping(t *testing.T) {
	g := RegionGrid{MinX: 0, MinY: 0, CellW: 100, CellH: 100, Cols: 3, Rows: 2}
	for _, tc := range []struct {
		pos  Position
		want int
	}{
		{Position{X: 50, Y: 50}, 0},
		{Position{X: 150, Y: 50}, 1},
		{Position{X: 250, Y: 150}, 5},
		// Off-field positions clamp to border regions, never index out.
		{Position{X: -40, Y: 50}, 0},
		{Position{X: 1e6, Y: 1e6}, 5},
		{Position{X: 150, Y: -3}, 1},
		// The far edge itself belongs to the last region.
		{Position{X: 300, Y: 200}, 5},
	} {
		if got := g.RegionOf(tc.pos); got != tc.want {
			t.Errorf("RegionOf(%+v) = %d, want %d", tc.pos, got, tc.want)
		}
	}
}

func TestRegionOfDegenerateCells(t *testing.T) {
	// A zero-extent dimension (all stations on one line) must map
	// everything into the first row without dividing by zero.
	g := RegionGrid{MinX: 0, MinY: 5, CellW: 10, CellH: 0, Cols: 2, Rows: 1}
	if got := g.RegionOf(Position{X: 15, Y: 5}); got != 1 {
		t.Errorf("RegionOf on zero-height grid = %d, want 1", got)
	}
}

func TestMinRegionDist(t *testing.T) {
	g := RegionGrid{CellW: 100, CellH: 50, Cols: 4, Rows: 3}
	for _, tc := range []struct {
		a, b int
		want float64
	}{
		{0, 0, 0},
		{0, 1, 0}, // adjacent: rectangles touch
		{0, 5, 0}, // diagonal neighbors touch at the corner
		{0, 2, 100},
		{0, 3, 200},
		{0, 8, 50},                   // two rows down: one full cell height apart
		{0, 10, math.Hypot(100, 50)}, // (2,2): one cell gap each way
	} {
		if got := g.MinRegionDist(tc.a, tc.b); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("MinRegionDist(%d,%d) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if sym := g.MinRegionDist(tc.b, tc.a); sym != g.MinRegionDist(tc.a, tc.b) {
			t.Errorf("MinRegionDist(%d,%d) not symmetric", tc.a, tc.b)
		}
	}
}

func TestHopDist(t *testing.T) {
	g := RegionGrid{Cols: 4, Rows: 3}
	for _, tc := range []struct {
		a, b, want int
	}{
		{0, 0, 0}, {0, 1, 1}, {0, 5, 1}, {0, 11, 3}, {4, 7, 3},
	} {
		if got := g.HopDist(tc.a, tc.b); got != tc.want {
			t.Errorf("HopDist(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestMinPropagationDelay(t *testing.T) {
	for _, tc := range []struct {
		dist, reach float64
		want        time.Duration
	}{
		// Step 1 of the derivation: one bound, whatever the geometry.
		{0, 500, PropDelay},
		{100, 500, PropDelay},
		{500, 500, PropDelay},
		// Step 2: distance buys whole extra links.
		{501, 500, 2 * PropDelay},
		{1500, 500, 3 * PropDelay},
		// Degenerate radio models degrade to the unconditional bound.
		{1000, 0, PropDelay},
		{1000, -1, PropDelay},
		{1000, math.Inf(1), PropDelay},
		{-5, 500, PropDelay},
	} {
		if got := MinPropagationDelay(tc.dist, tc.reach); got != tc.want {
			t.Errorf("MinPropagationDelay(%v, %v) = %v, want %v", tc.dist, tc.reach, got, tc.want)
		}
	}
}

func TestFitRegionGrid(t *testing.T) {
	pos := []Position{{X: 10, Y: 20}, {X: 110, Y: 70}, {X: 60, Y: 45}}
	g := FitRegionGrid(pos, 2, 2)
	if g.MinX != 10 || g.MinY != 20 || g.CellW != 50 || g.CellH != 25 {
		t.Errorf("fitted grid = %+v", g)
	}
	// Every input position must land inside the grid.
	for _, p := range pos {
		r := g.RegionOf(p)
		if r < 0 || r >= g.Regions() {
			t.Errorf("RegionOf(%+v) = %d out of range", p, r)
		}
	}
	// Shape clamps below one region per dimension.
	if g := FitRegionGrid(pos, 0, -2); g.Cols != 1 || g.Rows != 1 {
		t.Errorf("clamped grid = %dx%d, want 1x1", g.Cols, g.Rows)
	}
	// No positions: a zero-size single cell at the origin.
	if g := FitRegionGrid(nil, 3, 3); g.Regions() != 9 || g.CellW != 0 || g.RegionOf(Position{}) != 0 {
		t.Errorf("empty fit = %+v", g)
	}
}
