package phy

import (
	"fmt"
	"math"
	"time"
)

// This file derives the conservative-lookahead geometry for the
// space-partitioned parallel event kernel (sim.Exec). DESIGN.md carries
// the prose version of the derivation:
//
//  1. Regions interact only through the medium: the single way one
//     region's state can influence another's is a transmission, and
//     every transmission's indications (CCA edges, arrivals) reach any
//     receiver no earlier than PropDelay after it starts — the model's
//     one-way propagation bound. So ANY cross-region influence is
//     delayed by at least PropDelay, whatever the geometry: a uniform
//     one-bound lookahead between all region pairs is unconditionally
//     sound.
//  2. Distance buys more. The medium never propagates a transmission
//     beyond the field's relevance radius `reach` (Profile.ReachRange
//     against the lowest noise floor minus medium.IrrelevantMarginDB —
//     past it, no shadowing draw can shift any CCA, preamble-lock, or
//     SINR decision). Influence covering a distance D therefore needs a
//     chain of at least ceil(D/reach) transmissions — each hop of the
//     chain moves at most `reach` meters — and each chain link costs at
//     least PropDelay, even if every intermediate station reacts
//     instantly (a CCA edge can trigger a same-instant transmit
//     decision, so no larger per-link bound is sound).
//
// Hence a region may safely execute every event strictly earlier than
//
//	min over other regions R of (clock(R) + delay(R, self))
//	delay(R, S) = max(1, ceil(minDist(R, S)/reach)) · PropDelay
//
// where minDist is the minimum separation of the two regions'
// rectangles. This is exactly the horizon sim.Exec computes from the
// published region clocks, via MinPropagationDelay. On fields smaller
// than `reach` — the calibrated 802.11b model's worst-case relevance
// radius spans kilometers — every pair degenerates to the uniform
// one-PropDelay lookahead of step 1, which the event sparsity of the
// workloads (frame exchanges are tens of microseconds apart, PropDelay
// is one) still turns into usable parallelism.

// RegionGrid partitions an axis-aligned bounding box of the field into
// Cols×Rows rectangular regions for the parallel event kernel. Regions
// are numbered row-major: region = row·Cols + col. Any grid is sound
// (see the derivation above); its shape only moves the
// performance trade-off between load balance and cross-region traffic.
type RegionGrid struct {
	MinX, MinY   float64
	CellW, CellH float64
	Cols, Rows   int
}

// Regions returns the number of regions in the grid.
func (g RegionGrid) Regions() int { return g.Cols * g.Rows }

// RegionOf maps a position to its region index. Positions outside the
// fitted bounding box clamp to the border regions, so a position
// slightly off the field never indexes out of range.
func (g RegionGrid) RegionOf(p Position) int {
	col := 0
	if g.CellW > 0 {
		col = int(math.Floor((p.X - g.MinX) / g.CellW))
	}
	row := 0
	if g.CellH > 0 {
		row = int(math.Floor((p.Y - g.MinY) / g.CellH))
	}
	if col < 0 {
		col = 0
	}
	if col >= g.Cols {
		col = g.Cols - 1
	}
	if row < 0 {
		row = 0
	}
	if row >= g.Rows {
		row = g.Rows - 1
	}
	return row*g.Cols + col
}

// HopDist returns the Chebyshev distance between two regions: how many
// region boundaries separate them.
func (g RegionGrid) HopDist(a, b int) int {
	ax, ay := a%g.Cols, a/g.Cols
	bx, by := b%g.Cols, b/g.Cols
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	if dx > dy {
		return dx
	}
	return dy
}

// MinRegionDist returns the minimum separation in meters between the
// two regions' rectangles (zero for the same or adjacent regions).
func (g RegionGrid) MinRegionDist(a, b int) float64 {
	ax, ay := a%g.Cols, a/g.Cols
	bx, by := b%g.Cols, b/g.Cols
	dx := math.Abs(float64(ax-bx)) - 1
	dy := math.Abs(float64(ay-by)) - 1
	if dx < 0 {
		dx = 0
	}
	if dy < 0 {
		dy = 0
	}
	return math.Hypot(dx*g.CellW, dy*g.CellH)
}

// MinEdge returns the smaller region edge length in meters.
func (g RegionGrid) MinEdge() float64 {
	if g.CellW < g.CellH {
		return g.CellW
	}
	return g.CellH
}

// String renders the grid compactly for diagnostics.
func (g RegionGrid) String() string {
	return fmt.Sprintf("%dx%d regions of %.0fx%.0f m", g.Cols, g.Rows, g.CellW, g.CellH)
}

// MinPropagationDelay returns the minimum simulated time any influence
// needs to cover distM meters when a single transmission carries it at
// most reachM meters: one one-way propagation bound per chain link
// (step 2 of the derivation above), never less than one bound total
// (step 1). It is the per-region-pair lookahead of the conservative
// window protocol; a non-positive or non-finite reach degrades to the
// unconditional single bound.
func MinPropagationDelay(distM, reachM float64) time.Duration {
	links := 1.0
	if distM > 0 && reachM > 0 && !math.IsInf(reachM, 1) {
		links = math.Ceil(distM / reachM)
		if links < 1 {
			links = 1
		}
	}
	return time.Duration(links) * PropDelay
}

// FitRegionGrid lays a cols×rows region grid over the bounding box of
// positions (values below 1 clamp to 1). Degenerate spans are fine: a
// dimension of zero extent puts everything in its first region row or
// column.
func FitRegionGrid(positions []Position, cols, rows int) RegionGrid {
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range positions {
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	if len(positions) == 0 {
		minX, minY, maxX, maxY = 0, 0, 0, 0
	}
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	g := RegionGrid{MinX: minX, MinY: minY, Cols: cols, Rows: rows}
	g.CellW = (maxX - minX) / float64(cols)
	g.CellH = (maxY - minY) / float64(rows)
	return g
}
