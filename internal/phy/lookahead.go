package phy

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// This file derives the conservative-lookahead geometry for the
// space-partitioned parallel event kernel (sim.Exec). DESIGN.md carries
// the prose version of the derivation:
//
//  1. Regions interact only through the medium: the single way one
//     region's state can influence another's is a transmission, and
//     every transmission's indications (CCA edges, arrivals) reach any
//     receiver no earlier than PropDelay after it starts — the model's
//     one-way propagation bound. So ANY cross-region influence is
//     delayed by at least PropDelay, whatever the geometry: a uniform
//     one-bound lookahead between all region pairs is unconditionally
//     sound.
//  2. Distance buys more. The medium never propagates a transmission
//     beyond the field's relevance radius `reach` (Profile.ReachRange
//     against the lowest noise floor minus medium.IrrelevantMarginDB —
//     past it, no shadowing draw can shift any CCA, preamble-lock, or
//     SINR decision). Influence covering a distance D therefore needs a
//     chain of at least ceil(D/reach) transmissions — each hop of the
//     chain moves at most `reach` meters — and each chain link costs at
//     least PropDelay, even if every intermediate station reacts
//     instantly (a CCA edge can trigger a same-instant transmit
//     decision, so no larger per-link bound is sound).
//
// Hence a region may safely execute every event strictly earlier than
//
//	min over other regions R of (clock(R) + delay(R, self))
//	delay(R, S) = max(1, ceil(minDist(R, S)/reach)) · PropDelay
//
// where minDist is the minimum separation of the two regions'
// rectangles. This is exactly the horizon sim.Exec computes from the
// published region clocks, via MinPropagationDelay. On fields smaller
// than `reach` — the calibrated 802.11b model's worst-case relevance
// radius spans kilometers — every pair degenerates to the uniform
// one-PropDelay lookahead of step 1, which the event sparsity of the
// workloads (frame exchanges are tens of microseconds apart, PropDelay
// is one) still turns into usable parallelism.

// RegionGrid partitions an axis-aligned bounding box of the field into
// Cols×Rows rectangular regions for the parallel event kernel. Regions
// are numbered row-major: region = row·Cols + col. Any grid is sound
// (see the derivation above); its shape only moves the
// performance trade-off between load balance and cross-region traffic.
//
// Two layouts share the type. The uniform layout (XCuts/YCuts nil)
// divides the bounding box into equal cells of CellW×CellH — the
// reference partitioner, FitRegionGrid. The balanced layout carries
// explicit interior cut lines instead (XCuts has Cols−1 ascending x
// coordinates, YCuts Rows−1 y coordinates), placed wherever the
// partitioner wants them — FitBalancedRegionGrid puts them at station
// count quantiles. Either way every region is an axis-aligned rectangle
// and neighbors share a cut line, which is all the lookahead derivation
// above needs: MinRegionDist measures the true gap between the two
// rectangles, and the closure prices influence chains across it.
type RegionGrid struct {
	MinX, MinY   float64
	CellW, CellH float64
	Cols, Rows   int

	// XCuts/YCuts are the interior cut lines of a balanced layout, in
	// ascending order (len Cols−1 and Rows−1). nil selects the uniform
	// arithmetic over CellW/CellH. Cuts may coincide (a zero-width
	// region) — sound, because a zero gap only tightens the lookahead
	// to the unconditional single propagation bound.
	XCuts, YCuts []float64
}

// Regions returns the number of regions in the grid.
func (g RegionGrid) Regions() int { return g.Cols * g.Rows }

// RegionOf maps a position to its region index. Positions outside the
// fitted bounding box clamp to the border regions, so a position
// slightly off the field never indexes out of range.
func (g RegionGrid) RegionOf(p Position) int {
	var col, row int
	if g.XCuts != nil {
		col = sort.SearchFloat64s(g.XCuts, p.X)
	} else if g.CellW > 0 {
		col = int(math.Floor((p.X - g.MinX) / g.CellW))
	}
	if g.YCuts != nil {
		row = sort.SearchFloat64s(g.YCuts, p.Y)
	} else if g.CellH > 0 {
		row = int(math.Floor((p.Y - g.MinY) / g.CellH))
	}
	if col < 0 {
		col = 0
	}
	if col >= g.Cols {
		col = g.Cols - 1
	}
	if row < 0 {
		row = 0
	}
	if row >= g.Rows {
		row = g.Rows - 1
	}
	return row*g.Cols + col
}

// HopDist returns the Chebyshev distance between two regions: how many
// region boundaries separate them.
func (g RegionGrid) HopDist(a, b int) int {
	ax, ay := a%g.Cols, a/g.Cols
	bx, by := b%g.Cols, b/g.Cols
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	if dx > dy {
		return dx
	}
	return dy
}

// MinRegionDist returns the minimum separation in meters between the
// two regions' rectangles (zero for the same or adjacent regions).
func (g RegionGrid) MinRegionDist(a, b int) float64 {
	ax, ay := a%g.Cols, a/g.Cols
	bx, by := b%g.Cols, b/g.Cols
	return math.Hypot(axisGap(ax, bx, g.XCuts, g.CellW), axisGap(ay, by, g.YCuts, g.CellH))
}

// axisGap is the one-axis separation between region slots a and b: the
// distance between the facing cut lines for a balanced layout, whole
// cells for the uniform one. Same or adjacent slots touch (gap zero).
func axisGap(a, b int, cuts []float64, cell float64) float64 {
	if a > b {
		a, b = b, a
	}
	if b-a <= 1 {
		return 0
	}
	if cuts != nil {
		// Slot k spans (cuts[k-1], cuts[k]]: the gap between a and b is
		// from a's upper cut to b's lower cut. Cuts ascend, so it is
		// non-negative (coincident cuts give a zero gap, which only
		// tightens the lookahead toward the unconditional bound).
		return cuts[b-1] - cuts[a]
	}
	return float64(b-a-1) * cell
}

// MinEdge returns the smallest region edge length in meters.
func (g RegionGrid) MinEdge() float64 {
	w, h := g.CellW, g.CellH
	if g.XCuts != nil {
		w = minSpan(g.XCuts, g.MinX, g.MinX+g.CellW*float64(g.Cols))
	}
	if g.YCuts != nil {
		h = minSpan(g.YCuts, g.MinY, g.MinY+g.CellH*float64(g.Rows))
	}
	if w < h {
		return w
	}
	return h
}

// minSpan returns the narrowest slot width of a cut sequence bounded by
// lo and hi (for balanced layouts CellW/CellH hold the mean widths, so
// the outer bounds reconstruct the bounding box).
func minSpan(cuts []float64, lo, hi float64) float64 {
	prev, minW := lo, math.Inf(1)
	for _, c := range cuts {
		if w := c - prev; w < minW {
			minW = w
		}
		prev = c
	}
	if w := hi - prev; w < minW {
		minW = w
	}
	return minW
}

// String renders the grid compactly for diagnostics.
func (g RegionGrid) String() string {
	if g.XCuts != nil || g.YCuts != nil {
		return fmt.Sprintf("%dx%d balanced regions (mean %.0fx%.0f m)", g.Cols, g.Rows, g.CellW, g.CellH)
	}
	return fmt.Sprintf("%dx%d regions of %.0fx%.0f m", g.Cols, g.Rows, g.CellW, g.CellH)
}

// MinPropagationDelay returns the minimum simulated time any influence
// needs to cover distM meters when a single transmission carries it at
// most reachM meters: one one-way propagation bound per chain link
// (step 2 of the derivation above), never less than one bound total
// (step 1). It is the per-region-pair lookahead of the conservative
// window protocol; a non-positive or non-finite reach degrades to the
// unconditional single bound.
func MinPropagationDelay(distM, reachM float64) time.Duration {
	links := 1.0
	if distM > 0 && reachM > 0 && !math.IsInf(reachM, 1) {
		links = math.Ceil(distM / reachM)
		if links < 1 {
			links = 1
		}
	}
	return time.Duration(links) * PropDelay
}

// FitRegionGrid lays a cols×rows region grid over the bounding box of
// positions (values below 1 clamp to 1). Degenerate spans are fine: a
// dimension of zero extent puts everything in its first region row or
// column.
func FitRegionGrid(positions []Position, cols, rows int) RegionGrid {
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range positions {
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	if len(positions) == 0 {
		minX, minY, maxX, maxY = 0, 0, 0, 0
	}
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	g := RegionGrid{MinX: minX, MinY: minY, Cols: cols, Rows: rows}
	g.CellW = (maxX - minX) / float64(cols)
	g.CellH = (maxY - minY) / float64(rows)
	return g
}

// FitBalancedRegionGrid lays a cols×rows region grid whose cut lines
// sit at station-count quantiles along each axis — weighted grid-line
// placement over the station positions with unit weights. On a uniform
// field it converges to FitRegionGrid's equal cells; on a clustered
// field it narrows columns and rows where stations crowd, so every
// region holds roughly the same share of the marginal station
// distribution (the product of the two marginals is not a perfect 2D
// equalizer, but it is exact for separable densities and never worse
// than uniform cells on them).
func FitBalancedRegionGrid(positions []Position, cols, rows int) RegionGrid {
	return FitWeightedRegionGrid(positions, nil, cols, rows)
}

// FitWeightedRegionGrid is the general occupancy-balanced partitioner:
// cut lines sit at weight quantiles of each axis's marginal, so every
// region column and row carries roughly the same share of the total
// station weight. A nil weights slice means unit weights (every
// station counts 1 — FitBalancedRegionGrid); callers that can predict
// where the event load will concentrate (the scenario layer weights
// flow endpoints) pass heavier weights there, and the cuts crowd
// around the hot spots.
//
// Each cut falls at the midpoint between the two stations it separates,
// so boundary stations sit strictly inside their region whenever the
// coordinates differ. Degenerate inputs stay sound: coincident or
// collinear positions produce coincident cuts (zero-width regions,
// which only tighten the lookahead), and the assignment is a pure
// function of the positions and weights — no randomness, no iteration
// order.
func FitWeightedRegionGrid(positions []Position, weights []float64, cols, rows int) RegionGrid {
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	g := FitRegionGrid(positions, cols, rows)
	if len(positions) == 0 || (cols == 1 && rows == 1) {
		return g
	}
	pts := make([]weightedCoord, len(positions))
	fill := func(coord func(Position) float64) {
		for i, p := range positions {
			w := 1.0
			if weights != nil {
				w = weights[i]
			}
			pts[i] = weightedCoord{c: coord(p), w: w}
		}
		sort.Slice(pts, func(i, j int) bool {
			if pts[i].c != pts[j].c {
				return pts[i].c < pts[j].c
			}
			return pts[i].w < pts[j].w
		})
	}
	if cols > 1 {
		fill(func(p Position) float64 { return p.X })
		g.XCuts = quantileCuts(pts, cols)
	}
	if rows > 1 {
		fill(func(p Position) float64 { return p.Y })
		g.YCuts = quantileCuts(pts, rows)
	}
	return g
}

// weightedCoord is one station's projection onto a partitioning axis.
type weightedCoord struct{ c, w float64 }

// quantileCuts places slots−1 interior cuts over the coordinate list
// (sorted ascending), each at the midpoint between the last station of
// one slot's weight share and the first of the next: cut c goes after
// the longest prefix whose weight does not exceed c/slots of the
// total. With unit weights that prefix is exactly ⌊c·n/slots⌋
// stations.
func quantileCuts(sorted []weightedCoord, slots int) []float64 {
	n := len(sorted)
	var total float64
	for _, p := range sorted {
		total += p.w
	}
	cuts := make([]float64, slots-1)
	k, prefix := 0, 0.0
	for c := 1; c < slots; c++ {
		target := total * float64(c) / float64(slots)
		for k < n && prefix+sorted[k].w <= target {
			prefix += sorted[k].w
			k++
		}
		j := k
		if j < 1 {
			j = 1
		}
		if j > n-1 {
			j = n - 1
		}
		cuts[c-1] = sorted[j-1].c + (sorted[j].c-sorted[j-1].c)/2
	}
	// Quantile midpoints of a sorted list ascend by construction, but
	// float rounding on near-equal neighbors could wobble; clamp so the
	// RegionOf binary search sees a sorted sequence no matter what.
	for i := 1; i < len(cuts); i++ {
		if cuts[i] < cuts[i-1] {
			cuts[i] = cuts[i-1]
		}
	}
	return cuts
}
