// Package phy models the IEEE 802.11b DSSS physical layer: transmission
// rates, PLCP framing overhead, frame airtime, and the radio channel
// (path loss, time-varying shadowing, receiver sensitivity).
//
// All timing constants come from Table 1 of Anastasi et al., "IEEE 802.11
// Ad Hoc Networks: Performance Measurements" (ICDCSW'03); the default
// radio profile is calibrated so that the median transmission ranges per
// rate match Table 3 of the paper.
package phy

import (
	"fmt"
	"time"
)

// Rate is an 802.11b transmission rate in units of 100 kbit/s. The unit
// is chosen so that 5.5 Mbit/s is exactly representable.
type Rate int

// The four 802.11b DSSS rates.
const (
	Rate1   Rate = 10  // 1 Mbit/s (DBPSK)
	Rate2   Rate = 20  // 2 Mbit/s (DQPSK)
	Rate5_5 Rate = 55  // 5.5 Mbit/s (CCK)
	Rate11  Rate = 110 // 11 Mbit/s (CCK)
)

// Rates lists all 802.11b rates in increasing order.
var Rates = []Rate{Rate1, Rate2, Rate5_5, Rate11}

// BasicRates is the default basic rate set of an 802.11b IBSS: the rates
// every station must be able to receive. Control frames (RTS, CTS, ACK)
// and broadcast frames must be transmitted at one of these rates (§2 of
// the paper).
var BasicRates = []Rate{Rate1, Rate2}

// Valid reports whether r is one of the four 802.11b rates.
func (r Rate) Valid() bool {
	switch r {
	case Rate1, Rate2, Rate5_5, Rate11:
		return true
	}
	return false
}

// Mbps returns the rate in Mbit/s.
func (r Rate) Mbps() float64 { return float64(r) / 10 }

// BitsPerSecond returns the rate in bit/s.
func (r Rate) BitsPerSecond() int64 { return int64(r) * 100_000 }

// Index returns a dense index 0..3 for array-backed per-rate tables.
func (r Rate) Index() int {
	switch r {
	case Rate1:
		return 0
	case Rate2:
		return 1
	case Rate5_5:
		return 2
	case Rate11:
		return 3
	}
	panic(fmt.Sprintf("phy: invalid rate %d", int(r)))
}

// String names the rate ("11Mbps", ...).
func (r Rate) String() string {
	switch r {
	case Rate1:
		return "1Mbps"
	case Rate2:
		return "2Mbps"
	case Rate5_5:
		return "5.5Mbps"
	case Rate11:
		return "11Mbps"
	}
	return fmt.Sprintf("Rate(%d)", int(r))
}

// Airtime returns the time to transmit bits payload bits at rate r,
// rounded to the nearest nanosecond. It does not include PLCP overhead.
func (r Rate) Airtime(bits int) time.Duration {
	if bits < 0 {
		panic("phy: negative bit count")
	}
	// ns = bits * 1e9 / (r * 1e5) = bits * 1e4 / r, rounded.
	return time.Duration((int64(bits)*10_000 + int64(r)/2) / int64(r))
}

// ControlRate returns the rate used for control responses (CTS, ACK) to a
// frame received at rate r: the highest basic rate not exceeding r.
func ControlRate(r Rate) Rate {
	best := BasicRates[0]
	for _, b := range BasicRates {
		if b <= r && b > best {
			best = b
		}
	}
	return best
}

// IEEE 802.11b MAC/PHY timing parameters (Table 1 of the paper).
const (
	SlotTime  = 20 * time.Microsecond // aSlotTime
	SIFS      = 10 * time.Microsecond // aSIFSTime
	DIFS      = 50 * time.Microsecond // SIFS + 2*SlotTime
	PropDelay = 1 * time.Microsecond  // τ, one-way propagation bound

	// Long PLCP: 144-bit preamble + 48-bit header, both at 1 Mbit/s.
	PLCPPreambleBits = 144
	PLCPHeaderBits   = 48
	PLCPBits         = PLCPPreambleBits + PLCPHeaderBits // 192 bits = 9.6 slots

	// MAC overheads in bits (paper's Table 1; the 272-bit data header
	// counts the 4-address format plus the 32-bit FCS).
	MACHeaderBits = 272 // data frame MAC header + FCS
	ACKBits       = 112 // ACK frame including FCS
	RTSBits       = 160 // RTS frame including FCS
	CTSBits       = 112 // CTS frame including FCS

	// Contention window bounds, in slots (paper's Table 1).
	CWMin = 32
	CWMax = 1024
)

// PLCPTime is the duration of the long PLCP preamble + header (always
// transmitted at 1 Mbit/s): 192 µs.
const PLCPTime = 192 * time.Microsecond

// ACKTime returns the airtime of a MAC ACK at rate r, including PLCP.
func ACKTime(r Rate) time.Duration { return PLCPTime + r.Airtime(ACKBits) }

// RTSTime returns the airtime of an RTS at rate r, including PLCP.
func RTSTime(r Rate) time.Duration { return PLCPTime + r.Airtime(RTSBits) }

// CTSTime returns the airtime of a CTS at rate r, including PLCP.
func CTSTime(r Rate) time.Duration { return PLCPTime + r.Airtime(CTSBits) }

// DataTime returns the airtime of a MAC data frame carrying payloadBytes
// of MSDU payload at rate r, including PLCP and the 272-bit MAC
// header+FCS.
func DataTime(r Rate, payloadBytes int) time.Duration {
	return PLCPTime + r.Airtime(MACHeaderBits+8*payloadBytes)
}

// EIFS returns the extended interframe space: the deferral used after the
// PHY reports a reception error. Per the standard it spans SIFS + the
// time to transmit an ACK at the lowest basic rate + DIFS, so that the
// (unheard) ACK of the corrupted exchange is protected.
func EIFS() time.Duration { return SIFS + ACKTime(BasicRates[0]) + DIFS }
