package phy

import (
	"testing"
	"testing/quick"
	"time"
)

func TestRateValues(t *testing.T) {
	tests := []struct {
		rate Rate
		mbps float64
		bps  int64
	}{
		{Rate1, 1, 1_000_000},
		{Rate2, 2, 2_000_000},
		{Rate5_5, 5.5, 5_500_000},
		{Rate11, 11, 11_000_000},
	}
	for _, tt := range tests {
		if got := tt.rate.Mbps(); got != tt.mbps {
			t.Errorf("%v.Mbps() = %v, want %v", tt.rate, got, tt.mbps)
		}
		if got := tt.rate.BitsPerSecond(); got != tt.bps {
			t.Errorf("%v.BitsPerSecond() = %v, want %v", tt.rate, got, tt.bps)
		}
		if !tt.rate.Valid() {
			t.Errorf("%v.Valid() = false", tt.rate)
		}
	}
	if Rate(42).Valid() {
		t.Error("Rate(42).Valid() = true")
	}
}

func TestRateIndexDense(t *testing.T) {
	seen := map[int]bool{}
	for i, r := range Rates {
		idx := r.Index()
		if idx != i {
			t.Errorf("%v.Index() = %d, want %d", r, idx, i)
		}
		if seen[idx] {
			t.Errorf("duplicate index %d", idx)
		}
		seen[idx] = true
	}
}

func TestAirtimeExactValues(t *testing.T) {
	tests := []struct {
		rate Rate
		bits int
		want time.Duration
	}{
		{Rate1, 1000, time.Millisecond},
		{Rate2, 1000, 500 * time.Microsecond},
		{Rate11, 1100, 100 * time.Microsecond},
		{Rate1, PLCPBits, 192 * time.Microsecond}, // PLCP check
		{Rate5_5, 55, 10 * time.Microsecond},
		{Rate5_5, 1, 182 * time.Nanosecond}, // 181.81.. rounds to 182
	}
	for _, tt := range tests {
		if got := tt.rate.Airtime(tt.bits); got != tt.want {
			t.Errorf("%v.Airtime(%d) = %v, want %v", tt.rate, tt.bits, got, tt.want)
		}
	}
}

// Property: airtime is monotone in bits and inversely ordered by rate.
func TestAirtimeMonotone(t *testing.T) {
	f := func(b uint16) bool {
		bits := int(b)
		for _, r := range Rates {
			if r.Airtime(bits+1) < r.Airtime(bits) {
				return false
			}
		}
		for i := 1; i < len(Rates); i++ {
			if Rates[i].Airtime(bits) > Rates[i-1].Airtime(bits) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestControlRate(t *testing.T) {
	tests := []struct {
		data, want Rate
	}{
		{Rate1, Rate1},
		{Rate2, Rate2},
		{Rate5_5, Rate2},
		{Rate11, Rate2},
	}
	for _, tt := range tests {
		if got := ControlRate(tt.data); got != tt.want {
			t.Errorf("ControlRate(%v) = %v, want %v", tt.data, got, tt.want)
		}
	}
}

func TestTable1Constants(t *testing.T) {
	// Straight from Table 1 of the paper.
	if SlotTime != 20*time.Microsecond {
		t.Errorf("SlotTime = %v", SlotTime)
	}
	if SIFS != 10*time.Microsecond {
		t.Errorf("SIFS = %v", SIFS)
	}
	if DIFS != 50*time.Microsecond {
		t.Errorf("DIFS = %v", DIFS)
	}
	if PLCPBits != 192 {
		t.Errorf("PLCPBits = %d", PLCPBits)
	}
	if PLCPTime != 192*time.Microsecond {
		t.Errorf("PLCPTime = %v (must be 9.6 slots at 1 Mbit/s)", PLCPTime)
	}
	if MACHeaderBits != 272 {
		t.Errorf("MACHeaderBits = %d", MACHeaderBits)
	}
	if ACKBits != 112 {
		t.Errorf("ACKBits = %d", ACKBits)
	}
	if CWMin != 32 || CWMax != 1024 {
		t.Errorf("CW = %d..%d", CWMin, CWMax)
	}
}

func TestFrameTimes(t *testing.T) {
	// ACK at 1 Mbit/s: 192 µs PLCP + 112 µs = 304 µs.
	if got := ACKTime(Rate1); got != 304*time.Microsecond {
		t.Errorf("ACKTime(1Mbps) = %v, want 304µs", got)
	}
	// ACK at 2 Mbit/s: 192 + 56 = 248 µs.
	if got := ACKTime(Rate2); got != 248*time.Microsecond {
		t.Errorf("ACKTime(2Mbps) = %v, want 248µs", got)
	}
	// Data, 512 B payload at 11 Mbit/s: 192 µs + (272+4096)/11 µs.
	want := PLCPTime + Rate11.Airtime(272+4096)
	if got := DataTime(Rate11, 512); got != want {
		t.Errorf("DataTime(11Mbps, 512) = %v, want %v", got, want)
	}
	if RTSTime(Rate2) >= RTSTime(Rate1) {
		t.Error("RTS at 2 Mbit/s should be shorter than at 1 Mbit/s")
	}
	if CTSTime(Rate2) != ACKTime(Rate2) {
		t.Error("CTS and ACK have equal length frames")
	}
}

func TestEIFS(t *testing.T) {
	// EIFS = SIFS + ACK@1Mbps + DIFS = 10 + 304 + 50 = 364 µs.
	if got := EIFS(); got != 364*time.Microsecond {
		t.Errorf("EIFS() = %v, want 364µs", got)
	}
	if EIFS() <= DIFS {
		t.Error("EIFS must exceed DIFS")
	}
}

func TestPositionDist(t *testing.T) {
	if d := Dist(Pos(0, 0), Pos(3, 4)); d != 5 {
		t.Errorf("Dist = %v, want 5", d)
	}
	if d := Dist(Pos(10, 0), Pos(10, 0)); d != 0 {
		t.Errorf("Dist = %v, want 0", d)
	}
	p := Pos(1, 2).Add(3, 4)
	if p != Pos(4, 6) {
		t.Errorf("Add = %v", p)
	}
}
