package phy

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"adhocsim/internal/sim"
)

// bruteWithin is the reference the index must never under-report: all
// ids within radius of center, by exact distance.
func bruteWithin(pos map[uint32]Position, center Position, radius float64) map[uint32]bool {
	out := map[uint32]bool{}
	for id, p := range pos {
		if Dist(center, p) <= radius {
			out[id] = true
		}
	}
	return out
}

// TestCellIndexNeverMissesInRange is the index's core contract: for
// random point sets, radii and cell sizes, every id within the query
// radius appears in the query result (the over-approximation may add
// neighbors just beyond it, never drop one inside it).
func TestCellIndexNeverMissesInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		cell := 10 + rng.Float64()*500
		ix := NewCellIndex(cell)
		pos := map[uint32]Position{}
		n := 1 + rng.Intn(200)
		for id := uint32(1); id <= uint32(n); id++ {
			p := Pos(rng.Float64()*2000-500, rng.Float64()*2000-500)
			pos[id] = p
			ix.Insert(id, p)
		}
		for q := 0; q < 20; q++ {
			center := Pos(rng.Float64()*2000-500, rng.Float64()*2000-500)
			radius := rng.Float64() * 800
			got := map[uint32]bool{}
			for _, id := range ix.AppendWithin(nil, center, radius) {
				if got[id] {
					t.Fatalf("id %d reported twice", id)
				}
				got[id] = true
				if d := Dist(center, pos[id]); d > radius+cell*1.4143 {
					t.Fatalf("id %d at distance %.1f reported for radius %.1f (cell %.1f): over-approximation exceeds one cell diagonal", id, d, radius, cell)
				}
			}
			for id := range bruteWithin(pos, center, radius) {
				if !got[id] {
					t.Fatalf("trial %d: id %d at %.1f m missing from radius-%.1f query (cell %.1f)", trial, id, Dist(center, pos[id]), radius, cell)
				}
			}
		}
	}
}

// TestCellIndexDeterministicOrder: the query output order is a pure
// function of the id→position map — rebuilding the same point set in a
// different insertion order, or reaching it through a history of moves,
// yields byte-identical query results.
func TestCellIndexDeterministicOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pos := map[uint32]Position{}
	for id := uint32(1); id <= 100; id++ {
		pos[id] = Pos(rng.Float64()*1000, rng.Float64()*1000)
	}

	forward := NewCellIndex(150)
	for id := uint32(1); id <= 100; id++ {
		forward.Insert(id, pos[id])
	}
	backward := NewCellIndex(150)
	for id := uint32(100); id >= 1; id-- {
		backward.Insert(id, pos[id])
	}
	moved := NewCellIndex(150)
	for id := uint32(1); id <= 100; id++ {
		moved.Insert(id, Pos(rng.Float64()*1000, rng.Float64()*1000))
	}
	for id := uint32(1); id <= 100; id++ {
		moved.Move(id, pos[id])
	}

	for q := 0; q < 30; q++ {
		center := Pos(rng.Float64()*1000, rng.Float64()*1000)
		radius := rng.Float64() * 400
		want := forward.AppendWithin(nil, center, radius)
		for name, ix := range map[string]*CellIndex{"backward": backward, "moved": moved} {
			if got := ix.AppendWithin(nil, center, radius); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s-built index query differs:\n got %v\nwant %v", name, got, want)
			}
		}
	}
}

func TestCellIndexMoveAcrossCells(t *testing.T) {
	ix := NewCellIndex(100)
	ix.Insert(1, Pos(50, 50))
	ix.Insert(2, Pos(250, 50))
	if got := ix.AppendWithin(nil, Pos(50, 50), 10); len(got) != 1 || got[0] != 1 {
		t.Fatalf("initial query = %v, want [1]", got)
	}
	ix.Move(1, Pos(260, 50)) // crosses two cell boundaries
	if got := ix.AppendWithin(nil, Pos(255, 50), 20); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("post-move query = %v, want [1 2]", got)
	}
	if got := ix.AppendWithin(nil, Pos(50, 50), 60); len(got) != 0 {
		t.Fatalf("old cell still reports %v after move", got)
	}
	ix.Move(1, Pos(261, 50)) // same cell: no relocation
	if ix.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", ix.Len())
	}
	ix.Remove(1)
	ix.Remove(1) // unknown id: no-op
	if ix.Len() != 1 {
		t.Fatalf("Len() after remove = %d, want 1", ix.Len())
	}
}

func TestCellIndexDuplicateInsertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate insert did not panic")
		}
	}()
	ix := NewCellIndex(10)
	ix.Insert(1, Pos(0, 0))
	ix.Insert(1, Pos(5, 5))
}

// TestReachRangeBoundsInstantaneousPower: no (link, epoch) draw may
// deliver power ≥ threshold from beyond ReachRange(threshold) — the
// soundness condition for the medium's spatial pruning.
func TestReachRangeBoundsInstantaneousPower(t *testing.T) {
	p := DefaultProfile()
	p.Fading.SigmaDB = 6
	p.Fading.StaticSigmaDB = 2
	src := sim.NewSource(99)
	threshold := p.NoiseFloorDBm - 20
	reach := p.ReachRange(threshold)

	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		d := reach * (1 + rng.Float64()*3)
		tx, rx := uint64(rng.Intn(1000)), uint64(rng.Intn(1000))
		now := time.Duration(rng.Int63n(int64(10 * time.Second)))
		if got := p.RxPowerDBm(src, tx, rx, d, now); got >= threshold {
			t.Fatalf("power %.2f dBm ≥ threshold %.2f dBm at %.1f m, beyond reach %.1f m", got, threshold, d, reach)
		}
	}

	// And the bound is not vacuous: just inside the mean-power range the
	// threshold is reachable.
	meanRange := p.PathLoss.RangeFor(p.TxPowerDBm - threshold)
	if got := p.MeanRxPowerDBm(meanRange * 0.99); got < threshold {
		t.Fatalf("mean power %.2f dBm below threshold just inside the mean range", got)
	}
	if reach <= meanRange {
		t.Fatalf("reach %.1f m must exceed the fade-free range %.1f m when fading is on", reach, meanRange)
	}
}

// TestMaxShadowDBBoundsShadowDB samples the fading process and checks
// the documented bound holds with headroom.
func TestMaxShadowDBBoundsShadowDB(t *testing.T) {
	f := Fading{SigmaDB: 4, Coherence: 50 * time.Millisecond, StaticSigmaDB: 3}
	src := sim.NewSource(1)
	bound := f.MaxShadowDB()
	if want := float64(MaxShadowSigmas) * 7; bound != want {
		t.Fatalf("MaxShadowDB = %v, want %v", bound, want)
	}
	for i := uint64(0); i < 20000; i++ {
		db := f.ShadowDB(src, i, i+1, time.Duration(i)*time.Millisecond)
		if db > bound || db < -bound {
			t.Fatalf("ShadowDB %v exceeds bound %v", db, bound)
		}
	}
}
