package transport

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"time"

	"adhocsim/internal/network"
	"adhocsim/internal/sim"
)

// TCPHeaderBytes is the TCP header size (no options).
const TCPHeaderBytes = 20

// TCP segment flags.
const (
	flagFIN = 1 << 0
	flagSYN = 1 << 1
	flagACK = 1 << 4
)

// TCP tuning (defaults follow the early-2000s Linux stacks of the
// paper's testbed closely enough for shape fidelity).
const (
	DefaultMSS     = 1460
	sendBufCap     = 64 << 10
	recvWindow     = 64<<10 - 1 // fits the 16-bit window field
	initialRTO     = 1 * time.Second
	minRTO         = 200 * time.Millisecond
	maxRTO         = 60 * time.Second
	delayedACKTime = 100 * time.Millisecond
	initialCwndMSS = 2
)

// segment is a parsed TCP segment.
type segment struct {
	srcPort, dstPort uint16
	seq, ack         uint32
	flags            uint8
	wnd              uint16
	payload          []byte
}

func encodeSegment(s *segment) []byte {
	buf := make([]byte, TCPHeaderBytes+len(s.payload))
	binary.BigEndian.PutUint16(buf[0:2], s.srcPort)
	binary.BigEndian.PutUint16(buf[2:4], s.dstPort)
	binary.BigEndian.PutUint32(buf[4:8], s.seq)
	binary.BigEndian.PutUint32(buf[8:12], s.ack)
	buf[12] = 5 << 4 // data offset: 5 words
	buf[13] = s.flags
	binary.BigEndian.PutUint16(buf[14:16], s.wnd)
	copy(buf[TCPHeaderBytes:], s.payload)
	return buf
}

func decodeSegment(b []byte) (*segment, error) {
	if len(b) < TCPHeaderBytes {
		return nil, errors.New("transport: segment shorter than TCP header")
	}
	return &segment{
		srcPort: binary.BigEndian.Uint16(b[0:2]),
		dstPort: binary.BigEndian.Uint16(b[2:4]),
		seq:     binary.BigEndian.Uint32(b[4:8]),
		ack:     binary.BigEndian.Uint32(b[8:12]),
		flags:   b[13],
		wnd:     binary.BigEndian.Uint16(b[14:16]),
		payload: b[TCPHeaderBytes:],
	}, nil
}

// Sequence-space comparisons (wraparound-safe).
func seqLT(a, b uint32) bool  { return int32(a-b) < 0 }
func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }

// connState is the TCP connection state (the subset a simulated bulk
// transfer visits).
type connState uint8

const (
	stateSynSent connState = iota + 1
	stateSynRcvd
	stateEstablished
	stateFinSent
	stateClosed
)

// ConnStats counts per-connection protocol events.
type ConnStats struct {
	SegsSent        uint64
	SegsRcvd        uint64
	BytesSent       uint64 // payload bytes, first transmissions only
	BytesAcked      uint64
	BytesDelivered  uint64 // in-order payload handed to the application
	Retransmits     uint64
	FastRetransmits uint64
	RTOs            uint64
	DupAcksRcvd     uint64
	DelayedACKs     uint64
}

type connKey struct {
	remote     network.Addr
	localPort  uint16
	remotePort uint16
}

// TCP is one station's TCP instance.
type TCP struct {
	sched *sim.Scheduler
	stack *network.Stack
	rng    *rand.Rand
	rngKey sim.StreamKey // pre-hashed stream name, for allocation-free Reset
	mss   int

	conns     map[connKey]*Conn
	listeners map[uint16]func(*Conn)
	nextPort  uint16

	// Orphans counts segments that matched no connection or listener.
	Orphans uint64
}

// NewTCP attaches a TCP layer to the stack. mss ≤ 0 selects DefaultMSS;
// the paper's experiments use 512-byte application packets, so its
// harness passes 512.
func NewTCP(sched *sim.Scheduler, src *sim.Source, stack *network.Stack, mss int) *TCP {
	if mss <= 0 {
		mss = DefaultMSS
	}
	key := sim.KeyFor("tcp.iss." + stack.Addr().String())
	t := &TCP{
		sched:     sched,
		stack:     stack,
		rng:       src.StreamFor(key),
		rngKey:    key,
		mss:       mss,
		conns:     make(map[connKey]*Conn),
		listeners: make(map[uint16]func(*Conn)),
		nextPort:  49152,
	}
	stack.Handle(network.ProtoTCP, t.receive)
	stack.OnQueueSpace(t.onQueueSpace)
	return t
}

// Listen registers an accept callback for a local port.
func (t *TCP) Listen(port uint16, accept func(*Conn)) { t.listeners[port] = accept }

// Reset discards every connection and listener and re-derives the ISN
// stream from src (which the caller has just Reseed-ed), returning the
// TCP layer to its just-constructed state for a new run on a reused
// network. The owning scheduler must have been Reset first, so the
// discarded connections' timers are already gone.
func (t *TCP) Reset(src *sim.Source) {
	src.ReseedStream(t.rng, t.rngKey)
	clear(t.conns)
	clear(t.listeners)
	t.nextPort = 49152
	t.Orphans = 0
}

// Dial opens a connection to dst:port and starts the three-way
// handshake. Writes may be queued immediately; they flow once the
// handshake completes.
func (t *TCP) Dial(dst network.Addr, port uint16) *Conn {
	local := t.nextPort
	t.nextPort++
	c := t.newConn(connKey{remote: dst, localPort: local, remotePort: port})
	c.state = stateSynSent
	c.sndNxt = c.iss + 1 // SYN consumes one sequence number
	if err := c.sendSYN(false); err != nil {
		// No route yet (dynamic routing still converging): poll rather
		// than waiting out a full RTO for a SYN that never hit the air.
		c.synLocalFail = true
		c.rtoEv = c.tcp.sched.Reschedule(c.rtoEv, c.tcp.sched.Now()+synRetryInterval, c.onRTO)
		return c
	}
	c.armRTO()
	return c
}

func (t *TCP) newConn(key connKey) *Conn {
	c := &Conn{
		tcp:      t,
		key:      key,
		mss:      t.mss,
		iss:      t.rng.Uint32(),
		cwnd:     float64(initialCwndMSS * t.mss),
		ssthresh: sendBufCap,
		rwnd:     uint32(t.mss), // until the peer advertises
		rto:      initialRTO,
		ooo:      make(map[uint32][]byte),
	}
	c.sndUna = c.iss
	c.sndNxt = c.iss
	t.conns[key] = c
	return c
}

func (t *TCP) onQueueSpace() {
	for _, c := range t.conns {
		if c.state == stateEstablished {
			c.trySend()
		}
	}
}

func (t *TCP) receive(data []byte, src, _ network.Addr) {
	seg, err := decodeSegment(data)
	if err != nil {
		return
	}
	key := connKey{remote: src, localPort: seg.dstPort, remotePort: seg.srcPort}
	c, ok := t.conns[key]
	if !ok {
		accept, lok := t.listeners[seg.dstPort]
		if !lok || seg.flags&flagSYN == 0 || seg.flags&flagACK != 0 {
			t.Orphans++
			return
		}
		// Passive open. A locally refused SYN-ACK (full queue, or no
		// reverse route yet under dynamic routing) retries on the RTO
		// path, which polls without backoff for local failures.
		c = t.newConn(key)
		c.state = stateSynRcvd
		c.rcvNxt = seg.seq + 1
		c.sndNxt = c.iss + 1
		if err := c.sendSYN(true); err != nil {
			c.synLocalFail = true
			c.rtoEv = c.tcp.sched.Reschedule(c.rtoEv, c.tcp.sched.Now()+synRetryInterval, c.onRTO)
			accept(c)
			return
		}
		c.armRTO()
		accept(c)
		return
	}
	c.processSegment(seg)
}

// Conn is one TCP connection endpoint.
type Conn struct {
	tcp   *TCP
	key   connKey
	state connState
	mss   int

	// Send side.
	iss        uint32
	sndUna     uint32
	sndNxt     uint32
	sendBuf    []byte // sendBuf[0] is the byte at sequence sndUna
	cwnd       float64
	ssthresh   float64
	rwnd       uint32
	dupAcks    int
	inRecovery bool
	sending    bool // re-entrancy guard: queue-space events fire inside Send

	// RTO state (Jacobson/Karn).
	rto      time.Duration
	srtt     time.Duration
	rttvar   time.Duration
	hasSRTT  bool
	sampling bool
	rttSeq   uint32
	rttStart time.Duration
	rtoEv    sim.Event

	// synLocalFail records that the most recent SYN attempt failed
	// locally (no route / full queue) and never reached the air, so the
	// next successful send must not inherit a Karn backoff.
	synLocalFail bool

	// Receive side.
	rcvNxt   uint32
	ooo      map[uint32][]byte
	acksOwed int
	delackEv sim.Event
	finRcvd  bool

	// Application hooks.
	onData     func([]byte)
	onWritable func()
	onClose    func()

	Stats ConnStats
}

// Established reports whether the handshake has completed.
func (c *Conn) Established() bool { return c.state == stateEstablished }

// OnData registers the in-order delivery callback.
func (c *Conn) OnData(fn func([]byte)) { c.onData = fn }

// OnWritable registers a callback invoked when send-buffer space frees
// up, for saturating sources.
func (c *Conn) OnWritable(fn func()) { c.onWritable = fn }

// OnClose registers a callback invoked when the peer closes.
func (c *Conn) OnClose(fn func()) { c.onClose = fn }

// CwndBytes exposes the congestion window for instrumentation.
func (c *Conn) CwndBytes() int { return int(c.cwnd) }

// RTO exposes the current retransmission timeout for instrumentation.
func (c *Conn) RTO() time.Duration { return c.rto }

// Write queues application bytes, returning how many fit in the send
// buffer. A short write indicates backpressure; OnWritable fires when
// space opens.
func (c *Conn) Write(b []byte) int {
	if c.state == stateClosed || c.state == stateFinSent {
		return 0
	}
	space := sendBufCap - len(c.sendBuf)
	n := min(space, len(b))
	c.sendBuf = append(c.sendBuf, b[:n]...)
	if c.state == stateEstablished {
		c.trySend()
	}
	return n
}

// Close sends a FIN once the send buffer drains; no further writes are
// accepted. (TIME_WAIT and simultaneous-close subtleties are out of
// scope for the simulated workloads.)
func (c *Conn) Close() {
	if c.state != stateEstablished {
		c.state = stateClosed
		c.tcp.sched.Cancel(c.rtoEv)
		c.tcp.sched.Cancel(c.delackEv)
		return
	}
	c.state = stateFinSent
	if len(c.sendBuf) == 0 {
		c.sendFIN()
	}
}

// segment construction ---------------------------------------------------

var debugSeg func(who network.Addr, dir string, s *segment, extra string)

func (c *Conn) send(seg *segment) error {
	seg.srcPort = c.key.localPort
	seg.dstPort = c.key.remotePort
	seg.wnd = recvWindow
	if debugSeg != nil {
		debugSeg(c.tcp.stack.Addr(), "->", seg, "")
	}
	if err := c.tcp.stack.Send(network.ProtoTCP, encodeSegment(seg), c.key.remote); err != nil {
		return err
	}
	c.Stats.SegsSent++
	return nil
}

// synRetryInterval paces handshake retries after a *local* send
// failure (no route yet under dynamic routing, or a full MAC queue).
// Such a failure never reached the air, so Karn's exponential backoff —
// a congestion response — does not apply; the connection just polls
// until the stack accepts the SYN.
const synRetryInterval = 100 * time.Millisecond

func (c *Conn) sendSYN(withACK bool) error {
	seg := &segment{seq: c.iss, flags: flagSYN}
	if withACK {
		seg.flags |= flagACK
		seg.ack = c.rcvNxt
	}
	return c.send(seg) // handshake retransmission rides on the RTO
}

func (c *Conn) sendFIN() {
	_ = c.send(&segment{seq: c.sndNxt, ack: c.rcvNxt, flags: flagFIN | flagACK})
	c.sndNxt++
	c.armRTO()
}

func (c *Conn) sendACK() {
	c.acksOwed = 0
	c.tcp.sched.Cancel(c.delackEv)
	_ = c.send(&segment{seq: c.sndNxt, ack: c.rcvNxt, flags: flagACK})
}

// trySend transmits as much buffered data as the congestion and receive
// windows allow.
func (c *Conn) trySend() {
	if c.state != stateEstablished && c.state != stateFinSent {
		return
	}
	// The MAC's queue-space callback fires synchronously from inside
	// stack.Send, which would re-enter this loop before sndNxt advances
	// and corrupt the sequence stream; the guard makes the outer loop
	// the only writer.
	if c.sending {
		return
	}
	c.sending = true
	defer func() { c.sending = false }()
	for {
		inFlight := c.sndNxt - c.sndUna
		window := uint32(c.cwnd)
		if c.rwnd < window {
			window = c.rwnd
		}
		if inFlight >= window {
			return
		}
		avail := len(c.sendBuf) - int(inFlight)
		if avail <= 0 {
			if c.state == stateFinSent && inFlight == 0 && len(c.sendBuf) == 0 {
				c.sendFIN()
				c.state = stateClosed
			}
			return
		}
		n := min(c.mss, avail)
		if inFlight+uint32(n) > window {
			return // don't send runt segments mid-window
		}
		payload := c.sendBuf[inFlight : inFlight+uint32(n)]
		seg := &segment{
			seq:     c.sndNxt,
			ack:     c.rcvNxt,
			flags:   flagACK,
			payload: payload,
		}
		if err := c.send(seg); err != nil {
			return // MAC queue full: resume on queue-space notification
		}
		if !c.sampling {
			c.sampling = true
			c.rttSeq = c.sndNxt + uint32(n)
			c.rttStart = c.tcp.sched.Now()
		}
		c.sndNxt += uint32(n)
		c.Stats.BytesSent += uint64(n)
		c.armRTO()
	}
}

// retransmit resends the segment at sndUna.
func (c *Conn) retransmit() {
	n := min(c.mss, len(c.sendBuf))
	if n == 0 {
		return
	}
	c.Stats.Retransmits++
	c.sampling = false // Karn: never sample retransmitted segments
	seg := &segment{
		seq:     c.sndUna,
		ack:     c.rcvNxt,
		flags:   flagACK,
		payload: c.sendBuf[:n],
	}
	_ = c.send(seg)
}

// timers -----------------------------------------------------------------

func (c *Conn) armRTO() {
	c.rtoEv = c.tcp.sched.Reschedule(c.rtoEv, c.tcp.sched.Now()+c.rto, c.onRTO)
}

func (c *Conn) onRTO() {
	switch c.state {
	case stateSynSent, stateSynRcvd:
		if err := c.sendSYN(c.state == stateSynRcvd); err != nil {
			// The SYN never left this host; retry soon, without backoff.
			c.synLocalFail = true
			c.rtoEv = c.tcp.sched.Reschedule(c.rtoEv, c.tcp.sched.Now()+synRetryInterval, c.onRTO)
			return
		}
		if c.synLocalFail {
			// First SYN to actually reach the air after a run of local
			// failures: it has never timed out, so it earns the base
			// RTO, not a Karn doubling.
			c.synLocalFail = false
			c.armRTO()
			return
		}
	case stateEstablished, stateFinSent:
		if c.sndNxt == c.sndUna {
			return // nothing outstanding
		}
		c.Stats.RTOs++
		flight := float64(c.sndNxt - c.sndUna)
		c.ssthresh = maxf(flight/2, float64(2*c.mss))
		c.cwnd = float64(c.mss)
		c.dupAcks = 0
		c.inRecovery = false
		c.retransmit()
	default:
		return
	}
	c.rto = minDur(2*c.rto, maxRTO) // exponential backoff (Karn)
	c.armRTO()
}

func (c *Conn) updateRTT(sample time.Duration) {
	if !c.hasSRTT {
		c.srtt = sample
		c.rttvar = sample / 2
		c.hasSRTT = true
	} else {
		diff := c.srtt - sample
		if diff < 0 {
			diff = -diff
		}
		c.rttvar = (3*c.rttvar + diff) / 4
		c.srtt = (7*c.srtt + sample) / 8
	}
	c.rto = c.srtt + 4*c.rttvar
	if c.rto < minRTO {
		c.rto = minRTO
	}
	if c.rto > maxRTO {
		c.rto = maxRTO
	}
}

// receive path -------------------------------------------------------------

func (c *Conn) processSegment(seg *segment) {
	if debugSeg != nil {
		debugSeg(c.tcp.stack.Addr(), "<-", seg, "")
	}
	c.Stats.SegsRcvd++
	now := c.tcp.sched.Now()

	// Handshake transitions.
	switch c.state {
	case stateSynSent:
		if seg.flags&flagSYN != 0 && seg.flags&flagACK != 0 && seg.ack == c.sndNxt {
			c.rcvNxt = seg.seq + 1
			c.sndUna = seg.ack
			c.rwnd = uint32(seg.wnd)
			c.state = stateEstablished
			c.tcp.sched.Cancel(c.rtoEv)
			c.rto = initialRTO
			c.sendACK()
			c.trySend()
		}
		return
	case stateSynRcvd:
		if seg.flags&flagACK != 0 && seg.ack == c.sndNxt {
			c.sndUna = seg.ack
			c.state = stateEstablished
			c.tcp.sched.Cancel(c.rtoEv)
			c.rto = initialRTO
			// Fall through: the ACK may carry data.
		} else {
			return
		}
	case stateClosed:
		return
	}

	if seg.flags&flagACK != 0 {
		c.rwnd = uint32(seg.wnd)
		c.processACK(seg, now)
	}
	if len(seg.payload) > 0 || seg.flags&flagFIN != 0 {
		c.processData(seg)
	}
}

func (c *Conn) processACK(seg *segment, now time.Duration) {
	switch {
	case seqLT(c.sndUna, seg.ack) && seqLEQ(seg.ack, c.sndNxt):
		acked := seg.ack - c.sndUna
		// SYN and FIN occupy sequence space but not buffer space.
		trim := min(int(acked), len(c.sendBuf))
		c.sendBuf = c.sendBuf[trim:]
		c.sndUna = seg.ack
		c.Stats.BytesAcked += uint64(acked)
		c.dupAcks = 0

		if c.sampling && seqLEQ(c.rttSeq, seg.ack) {
			c.sampling = false
			c.updateRTT(now - c.rttStart)
		}
		if c.inRecovery {
			// Reno: deflate on the first new ACK.
			c.cwnd = c.ssthresh
			c.inRecovery = false
		} else if c.cwnd < c.ssthresh {
			c.cwnd += float64(c.mss) // slow start
		} else {
			c.cwnd += float64(c.mss) * float64(c.mss) / c.cwnd // congestion avoidance
		}
		if c.sndUna == c.sndNxt {
			c.tcp.sched.Cancel(c.rtoEv)
		} else {
			c.armRTO()
		}
		if c.onWritable != nil && len(c.sendBuf) < sendBufCap {
			c.onWritable()
		}
		c.trySend()

	case seg.ack == c.sndUna && len(seg.payload) == 0 && c.sndNxt != c.sndUna:
		c.Stats.DupAcksRcvd++
		c.dupAcks++
		switch {
		case c.dupAcks == 3:
			// Fast retransmit + fast recovery.
			c.Stats.FastRetransmits++
			flight := float64(c.sndNxt - c.sndUna)
			c.ssthresh = maxf(flight/2, float64(2*c.mss))
			c.retransmit()
			c.cwnd = c.ssthresh + 3*float64(c.mss)
			c.inRecovery = true
			c.armRTO()
		case c.dupAcks > 3 && c.inRecovery:
			c.cwnd += float64(c.mss) // window inflation
			c.trySend()
		}
	}
}

func (c *Conn) processData(seg *segment) {
	switch {
	case seg.seq == c.rcvNxt:
		c.deliver(seg.payload)
		if seg.flags&flagFIN != 0 {
			c.rcvNxt++
			c.finRcvd = true
		}
		// Drain any contiguous out-of-order segments.
		for {
			p, ok := c.ooo[c.rcvNxt]
			if !ok {
				break
			}
			delete(c.ooo, c.rcvNxt)
			c.deliver(p)
		}
		if c.finRcvd {
			c.sendACK()
			if c.onClose != nil {
				c.onClose()
			}
			return
		}
		// Delayed ACK: every second segment, or after the timer.
		c.acksOwed++
		if c.acksOwed >= 2 || len(c.ooo) > 0 {
			c.sendACK()
		} else if !c.delackEv.Pending() {
			c.delackEv = c.tcp.sched.Reschedule(c.delackEv,
				c.tcp.sched.Now()+delayedACKTime, func() {
					c.Stats.DelayedACKs++
					c.sendACK()
				})
		}
	case seqLT(c.rcvNxt, seg.seq):
		// A hole: buffer and signal it with an immediate duplicate ACK.
		if len(c.ooo) < 256 {
			c.ooo[seg.seq] = append([]byte(nil), seg.payload...)
		}
		c.sendACK()
	default:
		// Entirely old data (a retransmission we already have): re-ACK so
		// the sender advances.
		c.sendACK()
	}
}

func (c *Conn) deliver(p []byte) {
	if len(p) == 0 {
		return
	}
	c.rcvNxt += uint32(len(p))
	c.Stats.BytesDelivered += uint64(len(p))
	if c.onData != nil {
		c.onData(p)
	}
}

// small helpers ------------------------------------------------------------

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}
