package transport

import "adhocsim/internal/network"

// Test-only exports of the unexported segment codec so external tests
// can property-test it without widening the public API.

// EncodeSegmentForTest marshals a segment from raw fields.
func EncodeSegmentForTest(srcPort, dstPort uint16, seq, ack uint32, flags uint8, wnd uint16, payload []byte) []byte {
	return encodeSegment(&segment{
		srcPort: srcPort, dstPort: dstPort,
		seq: seq, ack: ack, flags: flags, wnd: wnd, payload: payload,
	})
}

// DecodeSegmentForTest unmarshals a segment into raw fields.
func DecodeSegmentForTest(b []byte) (srcPort, dstPort uint16, seq, ack uint32, flags uint8, wnd uint16, payload []byte, err error) {
	s, err := decodeSegment(b)
	if err != nil {
		return 0, 0, 0, 0, 0, 0, nil, err
	}
	return s.srcPort, s.dstPort, s.seq, s.ack, s.flags, s.wnd, s.payload, nil
}

// SetDebugSeg installs a per-segment trace hook for tests.
func SetDebugSeg(fn func(who network.Addr, dir string, seq, ack uint32, flags uint8, plen int)) {
	if fn == nil {
		debugSeg = nil
		return
	}
	debugSeg = func(who network.Addr, dir string, s *segment, _ string) {
		fn(who, dir, s.seq, s.ack, s.flags, len(s.payload))
	}
}
