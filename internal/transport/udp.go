// Package transport implements the two transport protocols of the
// paper's workloads: UDP (for the CBR traffic) and a TCP Reno
// implementation complete enough for saturating bulk transfer (for the
// ftp traffic): connection establishment, cumulative and delayed ACKs,
// slow start, congestion avoidance, fast retransmit/recovery, and
// Jacobson/Karn retransmission timers.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"

	"adhocsim/internal/network"
)

// UDPHeaderBytes is the UDP header size.
const UDPHeaderBytes = 8

// ErrShortDatagram reports a datagram smaller than its header.
var ErrShortDatagram = errors.New("transport: datagram shorter than UDP header")

// UDPHandler receives datagrams for a bound port.
type UDPHandler func(payload []byte, src network.Addr, srcPort uint16)

// UDP is one station's UDP instance.
type UDP struct {
	stack *network.Stack
	ports map[uint16]UDPHandler

	// Counters.
	Sent, Received, NoPort uint64
}

// NewUDP attaches a UDP layer to the stack.
func NewUDP(stack *network.Stack) *UDP {
	u := &UDP{stack: stack, ports: make(map[uint16]UDPHandler)}
	stack.Handle(network.ProtoUDP, u.receive)
	return u
}

// Listen binds a handler to a local port, replacing any previous one.
func (u *UDP) Listen(port uint16, h UDPHandler) { u.ports[port] = h }

// Reset drops all port bindings and counters for a new run on a reused
// network. The stack registration survives (it was made once at
// construction); sinks re-Listen per run.
func (u *UDP) Reset() {
	clear(u.ports)
	u.Sent, u.Received, u.NoPort = 0, 0, 0
}

// SendTo transmits one datagram. Errors propagate from the stack (e.g.
// MAC queue full), letting sources implement backpressure.
func (u *UDP) SendTo(payload []byte, dst network.Addr, srcPort, dstPort uint16) error {
	dgram := make([]byte, UDPHeaderBytes+len(payload))
	binary.BigEndian.PutUint16(dgram[0:2], srcPort)
	binary.BigEndian.PutUint16(dgram[2:4], dstPort)
	binary.BigEndian.PutUint16(dgram[4:6], uint16(UDPHeaderBytes+len(payload)))
	copy(dgram[UDPHeaderBytes:], payload)
	if err := u.stack.Send(network.ProtoUDP, dgram, dst); err != nil {
		return fmt.Errorf("udp: %w", err)
	}
	u.Sent++
	return nil
}

func (u *UDP) receive(dgram []byte, src, _ network.Addr) {
	if len(dgram) < UDPHeaderBytes {
		return
	}
	srcPort := binary.BigEndian.Uint16(dgram[0:2])
	dstPort := binary.BigEndian.Uint16(dgram[2:4])
	h, ok := u.ports[dstPort]
	if !ok {
		u.NoPort++
		return
	}
	u.Received++
	h(dgram[UDPHeaderBytes:], src, srcPort)
}
