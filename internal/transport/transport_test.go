package transport_test

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"adhocsim/internal/app"
	"adhocsim/internal/mac"
	"adhocsim/internal/network"
	"adhocsim/internal/node"
	"adhocsim/internal/phy"
	"adhocsim/internal/transport"
)

// twoNode builds a clean (fade-free) two-station network 10 m apart.
func twoNode(seed uint64, rate phy.Rate, mss int) (*node.Network, *node.Station, *node.Station) {
	prof := phy.DefaultProfile()
	prof.Fading.SigmaDB = 0
	n := node.NewNetwork(seed, node.WithProfile(prof), node.WithMSS(mss))
	a := n.AddStation(phy.Pos(0, 0), mac.Config{DataRate: rate})
	b := n.AddStation(phy.Pos(10, 0), mac.Config{DataRate: rate})
	return n, a, b
}

func TestUDPDelivery(t *testing.T) {
	n, a, b := twoNode(1, phy.Rate11, 0)
	var got []byte
	var from network.Addr
	b.UDP.Listen(7000, func(p []byte, src network.Addr, srcPort uint16) {
		got = append([]byte(nil), p...)
		from = src
	})
	if err := a.UDP.SendTo([]byte("datagram"), b.Addr(), 5000, 7000); err != nil {
		t.Fatal(err)
	}
	n.Run(50 * time.Millisecond)
	if string(got) != "datagram" {
		t.Fatalf("got %q", got)
	}
	if from != a.Addr() {
		t.Fatalf("src = %v, want %v", from, a.Addr())
	}
}

func TestUDPUnboundPortDropped(t *testing.T) {
	n, a, b := twoNode(1, phy.Rate11, 0)
	if err := a.UDP.SendTo([]byte("x"), b.Addr(), 5000, 9999); err != nil {
		t.Fatal(err)
	}
	n.Run(50 * time.Millisecond)
	if b.UDP.NoPort != 1 {
		t.Fatalf("NoPort = %d, want 1", b.UDP.NoPort)
	}
}

func TestTCPHandshakeAndTransfer(t *testing.T) {
	n, a, b := twoNode(2, phy.Rate11, 512)

	var rcvd bytes.Buffer
	b.TCP.Listen(80, func(c *transport.Conn) {
		c.OnData(func(p []byte) { rcvd.Write(p) })
	})

	conn := a.TCP.Dial(b.Addr(), 80)
	msg := bytes.Repeat([]byte("0123456789abcdef"), 256) // 4 KiB
	if got := conn.Write(msg); got != len(msg) {
		t.Fatalf("Write = %d, want %d", got, len(msg))
	}
	n.Run(200 * time.Millisecond)

	if !conn.Established() {
		t.Fatal("handshake did not complete")
	}
	if !bytes.Equal(rcvd.Bytes(), msg) {
		t.Fatalf("received %d bytes, want %d identical bytes", rcvd.Len(), len(msg))
	}
	if conn.Stats.Retransmits != 0 {
		t.Fatalf("clean link: %d retransmits", conn.Stats.Retransmits)
	}
}

func TestTCPDeliversInOrderOnLossyLink(t *testing.T) {
	// 28 m at 11 Mbit/s with fast fading: heavy MAC losses, occasional
	// MSDU drops → TCP must repair everything.
	prof := phy.DefaultProfile()
	prof.Fading.Coherence = 4 * time.Millisecond
	n := node.NewNetwork(3, node.WithProfile(prof), node.WithMSS(512))
	a := n.AddStation(phy.Pos(0, 0), mac.Config{DataRate: phy.Rate11})
	b := n.AddStation(phy.Pos(28, 0), mac.Config{DataRate: phy.Rate11})

	var rcvd bytes.Buffer
	b.TCP.Listen(80, func(c *transport.Conn) {
		c.OnData(func(p []byte) { rcvd.Write(p) })
	})
	conn := a.TCP.Dial(b.Addr(), 80)

	pattern := make([]byte, 256<<10)
	for i := range pattern {
		pattern[i] = byte(i * 7)
	}
	sent := 0
	push := func() {
		for sent < len(pattern) {
			n := conn.Write(pattern[sent:])
			sent += n
			if n == 0 {
				return
			}
		}
	}
	conn.OnWritable(push)
	push()
	n.Run(5 * time.Second)

	if rcvd.Len() < 64<<10 {
		t.Fatalf("delivered only %d bytes", rcvd.Len())
	}
	if !bytes.Equal(rcvd.Bytes(), pattern[:rcvd.Len()]) {
		t.Fatal("delivered stream does not match the sent prefix")
	}
	if conn.Stats.Retransmits == 0 {
		t.Fatal("expected TCP retransmissions on a lossy link")
	}
}

func TestTCPDelayedACKs(t *testing.T) {
	n, a, b := twoNode(4, phy.Rate11, 512)
	var sink *transport.Conn
	b.TCP.Listen(80, func(c *transport.Conn) { sink = c })
	conn := a.TCP.Dial(b.Addr(), 80)
	conn.Write(make([]byte, 64<<10))
	n.Run(500 * time.Millisecond)

	if sink == nil {
		t.Fatal("no accept")
	}
	// With every-other-segment ACKing, the receiver sends roughly half
	// as many ACK segments as it receives data segments.
	ratio := float64(sink.Stats.SegsSent) / float64(sink.Stats.SegsRcvd)
	if ratio < 0.4 || ratio > 0.75 {
		t.Fatalf("ACK/data ratio = %.2f, want ≈0.5 (delayed ACKs)", ratio)
	}
}

func TestTCPCloseSignalsPeer(t *testing.T) {
	n, a, b := twoNode(5, phy.Rate11, 512)
	closed := false
	var rcvd int
	b.TCP.Listen(80, func(c *transport.Conn) {
		c.OnData(func(p []byte) { rcvd += len(p) })
		c.OnClose(func() { closed = true })
	})
	conn := a.TCP.Dial(b.Addr(), 80)
	conn.Write(make([]byte, 2048))
	n.Run(100 * time.Millisecond)
	conn.Close()
	n.Run(100 * time.Millisecond)

	if rcvd != 2048 {
		t.Fatalf("delivered %d bytes before close, want 2048", rcvd)
	}
	if !closed {
		t.Fatal("peer never saw the close")
	}
}

func TestTCPSlowStartGrowsCwnd(t *testing.T) {
	n, a, b := twoNode(6, phy.Rate11, 512)
	b.TCP.Listen(80, func(c *transport.Conn) {})
	conn := a.TCP.Dial(b.Addr(), 80)
	start := conn.CwndBytes()
	conn.Write(make([]byte, 64<<10))
	n.Run(300 * time.Millisecond)
	if conn.CwndBytes() <= start {
		t.Fatalf("cwnd did not grow: %d → %d", start, conn.CwndBytes())
	}
}

func TestTCPThroughputBelowUDP(t *testing.T) {
	// The Figure 2 relationship: at 11 Mbit/s with 512-byte packets, UDP
	// approaches the analytic maximum while TCP pays for its ACK stream.
	const horizon = 2 * time.Second

	nU, aU, bU := twoNode(7, phy.Rate11, 512)
	var sinkU app.UDPSink
	sinkU.ListenUDP(bU, 9000)
	app.NewCBR(nU, aU, bU.Addr(), 9000, 512, 0).Start()
	nU.Run(horizon)
	udp := sinkU.ThroughputMbps(horizon)

	nT, aT, bT := twoNode(7, phy.Rate11, 512)
	var sinkT app.TCPSink
	sinkT.ListenTCP(bT, 9000)
	app.StartBulk(nT, aT, bT.Addr(), 9000, 512)
	nT.Run(horizon)
	tcp := sinkT.ThroughputMbps(horizon)

	if udp < 2.7 || udp > 3.5 {
		t.Fatalf("UDP throughput = %.2f Mbit/s, want ≈3.2 (near analytic max)", udp)
	}
	if tcp >= udp {
		t.Fatalf("TCP %.2f ≥ UDP %.2f; TCP ACK overhead must show", tcp, udp)
	}
	if tcp < 1.5 {
		t.Fatalf("TCP throughput = %.2f Mbit/s implausibly low", tcp)
	}
}

func TestSegmentCodecProperty(t *testing.T) {
	f := func(srcPort, dstPort uint16, seq, ack uint32, flags uint8, wnd uint16, payload []byte) bool {
		in := map[string]any{}
		_ = in
		b := transport.EncodeSegmentForTest(srcPort, dstPort, seq, ack, flags, wnd, payload)
		sp, dp, s2, a2, f2, w2, p2, err := transport.DecodeSegmentForTest(b)
		if err != nil {
			return false
		}
		return sp == srcPort && dp == dstPort && s2 == seq && a2 == ack &&
			f2 == flags && w2 == wnd && bytes.Equal(p2, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
