package network

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"adhocsim/internal/frame"
	"adhocsim/internal/mac"
	"adhocsim/internal/medium"
	"adhocsim/internal/phy"
	"adhocsim/internal/sim"
)

func TestAddrString(t *testing.T) {
	if got := HostAddr(7).String(); got != "10.0.0.7" {
		t.Fatalf("HostAddr(7) = %s", got)
	}
	if got := AddrFrom(192, 168, 1, 42).String(); got != "192.168.1.42" {
		t.Fatalf("AddrFrom = %s", got)
	}
	if Broadcast.String() != "255.255.255.255" {
		t.Fatalf("Broadcast = %s", Broadcast)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	f := func(src, dst uint32, proto uint8, ttl uint8, plen uint16) bool {
		payload := make([]byte, plen%1400)
		rand.New(rand.NewSource(int64(src))).Read(payload)
		h := Header{Src: Addr(src), Dst: Addr(dst), Proto: Protocol(proto), TTL: ttl}
		h.Length = uint16(HeaderBytes + len(payload))
		pkt := EncodeHeader(h, payload)
		got, gotPayload, err := DecodeHeader(pkt)
		return err == nil && got == h && bytes.Equal(gotPayload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsCorruptHeader(t *testing.T) {
	h := Header{Src: HostAddr(1), Dst: HostAddr(2), Proto: ProtoUDP, TTL: 16, Length: HeaderBytes + 3}
	pkt := EncodeHeader(h, []byte{1, 2, 3})
	for i := 0; i < HeaderBytes; i++ {
		bad := bytes.Clone(pkt)
		bad[i] ^= 0xff
		if _, _, err := DecodeHeader(bad); err == nil {
			t.Fatalf("corruption at header byte %d undetected", i)
		}
	}
	if _, _, err := DecodeHeader(pkt[:10]); !errors.Is(err, ErrShortPacket) {
		t.Fatalf("short packet: err = %v", err)
	}
	// Truncated payload (length mismatch).
	if _, _, err := DecodeHeader(pkt[:len(pkt)-1]); err == nil {
		t.Fatal("length mismatch undetected")
	}
}

// stackPair wires two stations' stacks over a clean medium.
func stackPair(t *testing.T) (*sim.Scheduler, *Stack, *Stack) {
	t.Helper()
	prof := phy.DefaultProfile()
	prof.Fading.SigmaDB = 0
	sched := sim.NewScheduler()
	src := sim.NewSource(1)
	med := medium.New(sched, src)
	mk := func(id uint32, pos phy.Position) *Stack {
		m := mac.New(sched, src, mac.Config{Address: frame.AddrFromID(id)})
		radio := med.AddRadio(id, pos, prof, m)
		m.Attach(radio)
		s := NewStack(m, HostAddr(byte(id)))
		return s
	}
	a := mk(1, phy.Pos(0, 0))
	b := mk(2, phy.Pos(15, 0))
	a.AddNeighbor(b.Addr(), frame.AddrFromID(2))
	b.AddNeighbor(a.Addr(), frame.AddrFromID(1))
	return sched, a, b
}

func TestStackSendReceive(t *testing.T) {
	sched, a, b := stackPair(t)
	var got []byte
	var gotSrc Addr
	b.Handle(ProtoUDP, func(p []byte, src, dst Addr) {
		got = bytes.Clone(p)
		gotSrc = src
	})
	if err := a.Send(ProtoUDP, []byte("payload"), b.Addr()); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(50 * time.Millisecond)
	if string(got) != "payload" || gotSrc != a.Addr() {
		t.Fatalf("got %q from %v", got, gotSrc)
	}
	if a.Sent != 1 || b.Received != 1 {
		t.Fatalf("counters: sent=%d received=%d", a.Sent, b.Received)
	}
}

func TestStackNoNeighbor(t *testing.T) {
	_, a, _ := stackPair(t)
	err := a.Send(ProtoUDP, []byte("x"), HostAddr(99))
	if !errors.Is(err, ErrNoNeighbor) {
		t.Fatalf("err = %v, want ErrNoNeighbor", err)
	}
	if a.Dropped != 1 {
		t.Fatalf("Dropped = %d", a.Dropped)
	}
}

func TestStackBroadcast(t *testing.T) {
	sched, a, b := stackPair(t)
	n := 0
	b.Handle(ProtoUDP, func(p []byte, src, dst Addr) {
		if dst == Broadcast {
			n++
		}
	})
	if err := a.Send(ProtoUDP, []byte("hello all"), Broadcast); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(50 * time.Millisecond)
	if n != 1 {
		t.Fatalf("broadcast deliveries = %d", n)
	}
}

func TestStackForwarding(t *testing.T) {
	// Three stations in a chain; C is out of A's data range, so A routes
	// via B. This exercises the multi-hop readiness of the stack.
	prof := phy.DefaultProfile()
	prof.Fading.SigmaDB = 0
	sched := sim.NewScheduler()
	src := sim.NewSource(1)
	med := medium.New(sched, src)
	mk := func(id uint32, pos phy.Position) *Stack {
		m := mac.New(sched, src, mac.Config{Address: frame.AddrFromID(id), DataRate: phy.Rate11})
		radio := med.AddRadio(id, pos, prof, m)
		m.Attach(radio)
		return NewStack(m, HostAddr(byte(id)))
	}
	a := mk(1, phy.Pos(0, 0))
	b := mk(2, phy.Pos(25, 0))
	c := mk(3, phy.Pos(50, 0)) // 50 m from A: unreachable at 11 Mbit/s

	a.AddNeighbor(b.Addr(), frame.AddrFromID(2))
	b.AddNeighbor(a.Addr(), frame.AddrFromID(1))
	b.AddNeighbor(c.Addr(), frame.AddrFromID(3))
	c.AddNeighbor(b.Addr(), frame.AddrFromID(2))
	a.AddRoute(c.Addr(), b.Addr())
	b.Forwarding = true

	var got []byte
	c.Handle(ProtoUDP, func(p []byte, src, dst Addr) { got = bytes.Clone(p) })
	if err := a.Send(ProtoUDP, []byte("via B"), c.Addr()); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(100 * time.Millisecond)
	if string(got) != "via B" {
		t.Fatalf("multi-hop delivery failed: %q", got)
	}
	if b.Forwarded != 1 {
		t.Fatalf("B.Forwarded = %d", b.Forwarded)
	}
}

func TestForwardingDisabledByDefault(t *testing.T) {
	sched, a, b := stackPair(t)
	// A packet addressed to a third party must be dropped, not forwarded.
	if err := a.Send(ProtoUDP, []byte("x"), b.Addr()); err != nil {
		t.Fatal(err)
	}
	// Craft: b receives a packet for someone else by sending from a with
	// dst beyond b. Simpler: check the counter after direct receive path.
	sched.RunUntil(50 * time.Millisecond)
	if b.Forwarded != 0 {
		t.Fatal("forwarding happened while disabled")
	}
}

func TestRequireRoutesNoRoute(t *testing.T) {
	_, a, b := stackPair(t)
	a.RequireRoutes = true
	// b is a known neighbor but has no route entry: under RequireRoutes
	// the route table is the only reachability truth.
	err := a.Send(ProtoUDP, []byte("x"), b.Addr())
	if !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
	if a.Dropped != 1 {
		t.Fatalf("Dropped = %d", a.Dropped)
	}
	// Installing the (direct) route makes the same send work.
	a.AddRoute(b.Addr(), b.Addr())
	if err := a.Send(ProtoUDP, []byte("x"), b.Addr()); err != nil {
		t.Fatal(err)
	}
	// Removing it brings ErrNoRoute back.
	a.DelRoute(b.Addr())
	if err := a.Send(ProtoUDP, []byte("x"), b.Addr()); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err after DelRoute = %v, want ErrNoRoute", err)
	}
	// Broadcast needs no route even under RequireRoutes.
	if err := a.Send(ProtoUDP, []byte("x"), Broadcast); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastNotForwarded(t *testing.T) {
	// Three stations in range of each other; the middle one forwards.
	// A link-layer broadcast must be delivered locally everywhere and
	// never relayed — flooding is the routing protocol's job, not the
	// network layer's.
	prof := phy.DefaultProfile()
	prof.Fading.SigmaDB = 0
	sched := sim.NewScheduler()
	src := sim.NewSource(1)
	med := medium.New(sched, src)
	mk := func(id uint32, pos phy.Position) *Stack {
		m := mac.New(sched, src, mac.Config{Address: frame.AddrFromID(id), DataRate: phy.Rate11})
		radio := med.AddRadio(id, pos, prof, m)
		m.Attach(radio)
		s := NewStack(m, HostAddr(byte(id)))
		s.Forwarding = true
		return s
	}
	a := mk(1, phy.Pos(0, 0))
	b := mk(2, phy.Pos(14, 0))
	c := mk(3, phy.Pos(28, 0))
	deliveries := 0
	for _, s := range []*Stack{b, c} {
		s.Handle(ProtoUDP, func(p []byte, _, _ Addr) { deliveries++ })
	}
	if err := a.Send(ProtoUDP, []byte("flood?"), Broadcast); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(100 * time.Millisecond)
	if deliveries != 2 {
		t.Fatalf("broadcast deliveries = %d, want 2", deliveries)
	}
	if b.Forwarded != 0 || c.Forwarded != 0 {
		t.Fatalf("broadcast was forwarded: b=%d c=%d", b.Forwarded, c.Forwarded)
	}
	if b.Sent != 0 || c.Sent != 0 {
		t.Fatalf("broadcast was re-sent: b=%d c=%d", b.Sent, c.Sent)
	}
}

func TestTTLExpiry(t *testing.T) {
	// Two forwarding stacks pointing routes at each other would loop
	// packets forever without the TTL check.
	sched, a, b := stackPair(t)
	a.Forwarding = true
	b.Forwarding = true
	a.AddRoute(HostAddr(99), b.Addr())
	b.AddRoute(HostAddr(99), a.Addr())
	if err := a.Send(ProtoUDP, []byte("loop"), HostAddr(99)); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(time.Second)
	// The packet ping-pongs at most DefaultTTL times, then dies.
	total := a.Forwarded + b.Forwarded
	if total == 0 || total > DefaultTTL {
		t.Fatalf("forwards = %d, want 1..%d", total, DefaultTTL)
	}
	if a.Dropped+b.Dropped == 0 {
		t.Fatal("looping packet never dropped")
	}
}
