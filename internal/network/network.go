// Package network implements a minimal IPv4-like network layer on top of
// the 802.11 MAC: 20-byte headers, protocol demultiplexing, a static
// neighbor (ARP) table, TTL-guarded forwarding with static routes (so the
// library is multi-hop ready, although the paper's experiments are
// single-hop), and link-layer broadcast.
//
// The 20-byte header is carried inside the MAC payload so that frame
// airtimes include the same per-packet network overhead as the paper's
// testbed (Figure 1's encapsulation stack).
package network

import (
	"encoding/binary"
	"errors"
	"fmt"

	"adhocsim/internal/frame"
	"adhocsim/internal/mac"
	"adhocsim/internal/phy"
)

// Addr is an IPv4-style address.
type Addr uint32

// Broadcast is the all-stations address.
const Broadcast Addr = 0xffffffff

// AddrFrom builds an address from dotted-quad components.
func AddrFrom(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// HostAddr returns the conventional simulation address 10.0.0.n.
func HostAddr(n byte) Addr { return AddrFrom(10, 0, 0, n) }

// MaxStationID is the largest station identifier representable inside
// the 10.0.0.0/8 simulation network (24 host bits, minus the network
// and broadcast conventions).
const MaxStationID = 1<<24 - 2

// StationAddr returns the simulation address of station id inside
// 10.0.0.0/8: for ids below 256 it coincides with HostAddr(id); larger
// ids spill into the higher host octets (station 256 is 10.0.1.0), so
// addresses stay unique for up to 2^24-2 stations. Ids outside (0,
// MaxStationID] panic: a colliding address would silently cross-deliver
// traffic between stations.
func StationAddr(id uint32) Addr {
	if id == 0 || id > MaxStationID {
		panic(fmt.Sprintf("network: station id %d outside 10/8 host space", id))
	}
	return Addr(10<<24 | id)
}

// StationID inverts StationAddr: it extracts the station id from a 10/8
// simulation address, reporting false for addresses outside the
// convention. Both StationAddr and frame.AddrFromID are pure functions
// of the id, which is what lets a computed neighbor resolver
// (Stack.SetResolver) replace per-station ARP tables entirely.
func StationID(a Addr) (uint32, bool) {
	if uint32(a)>>24 != 10 {
		return 0, false
	}
	id := uint32(a) & (1<<24 - 1)
	if id == 0 || id > MaxStationID {
		return 0, false
	}
	return id, true
}

// String renders the address in dotted-quad notation.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Protocol identifies the payload's transport protocol, using the IANA
// numbers.
type Protocol uint8

// Transport protocols carried by this stack.
const (
	ProtoTCP Protocol = 6
	ProtoUDP Protocol = 17
	// ProtoRouting carries route control-plane traffic (DSDV
	// advertisements). 253 is an RFC 3692 experimentation number —
	// DSDV never received an IANA assignment.
	ProtoRouting Protocol = 253
)

// HeaderBytes is the network header size: the same 20 bytes as IPv4,
// which the paper's throughput model charges per packet.
const HeaderBytes = 20

// DefaultTTL is the initial hop budget of locally originated packets.
const DefaultTTL = 16

// Header is the network-layer header.
type Header struct {
	Src, Dst Addr
	Proto    Protocol
	TTL      uint8
	Length   uint16 // header + payload, bytes
}

// Common codec errors.
var (
	ErrShortPacket = errors.New("network: packet shorter than header")
	ErrBadChecksum = errors.New("network: header checksum mismatch")
	ErrBadLength   = errors.New("network: length field mismatch")
	ErrNoNeighbor  = errors.New("network: no link-layer mapping for next hop")
	ErrNoRoute     = errors.New("network: no route to destination")
	ErrTTLExceeded = errors.New("network: TTL exceeded")
)

// EncodeHeader marshals h into a 20-byte header prepended to payload.
func EncodeHeader(h Header, payload []byte) []byte {
	buf := make([]byte, HeaderBytes+len(payload))
	buf[0] = 0x45 // version 4, IHL 5 — fixed, for the looks of a pcap
	binary.BigEndian.PutUint16(buf[2:4], h.Length)
	buf[8] = h.TTL
	buf[9] = byte(h.Proto)
	binary.BigEndian.PutUint32(buf[12:16], uint32(h.Src))
	binary.BigEndian.PutUint32(buf[16:20], uint32(h.Dst))
	binary.BigEndian.PutUint16(buf[10:12], checksum(buf[:HeaderBytes]))
	copy(buf[HeaderBytes:], payload)
	return buf
}

// DecodeHeader unmarshals a packet, returning the header and payload.
func DecodeHeader(pkt []byte) (Header, []byte, error) {
	if len(pkt) < HeaderBytes {
		return Header{}, nil, ErrShortPacket
	}
	want := binary.BigEndian.Uint16(pkt[10:12])
	if checksum(pkt[:HeaderBytes]) != want {
		return Header{}, nil, ErrBadChecksum
	}
	h := Header{
		Src:    Addr(binary.BigEndian.Uint32(pkt[12:16])),
		Dst:    Addr(binary.BigEndian.Uint32(pkt[16:20])),
		Proto:  Protocol(pkt[9]),
		TTL:    pkt[8],
		Length: binary.BigEndian.Uint16(pkt[2:4]),
	}
	if int(h.Length) != len(pkt) {
		return Header{}, nil, ErrBadLength
	}
	return h, pkt[HeaderBytes:], nil
}

// checksum is the RFC 1071 ones-complement sum over the header with the
// checksum field zeroed.
func checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		if i == 10 {
			continue // checksum field treated as zero
		}
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// Handler receives demultiplexed transport payloads.
type Handler func(payload []byte, src, dst Addr)

// Stack is one station's network layer.
type Stack struct {
	addr Addr
	mac  *mac.MAC

	neighbors map[Addr]frame.Addr // IP → MAC of directly reachable stations
	routes    map[Addr]Addr       // destination → next hop (for multi-hop)
	handlers  map[Protocol]Handler
	space     []func() // transmit-queue space subscribers

	// resolver, when set, computes IP→MAC mappings the static neighbor
	// table does not hold (SetResolver). The node builder installs one
	// closing over the station-id bijection, which keeps per-station
	// neighbor state O(1) instead of O(stations).
	resolver func(Addr) (frame.Addr, bool)

	// rxHops records, per source, how many MAC hops the most recently
	// delivered packet from that source traveled (derived from its TTL).
	rxHops map[Addr]uint8

	// frozenSpace is the length of space at FreezeSubscribers time: the
	// construction-time (transport) subscribers that survive Reset,
	// as opposed to per-run application sources registered later.
	frozenSpace int

	Forwarding bool // enable packet forwarding (off by default)

	// RequireRoutes makes unicast sends fail with ErrNoRoute when the
	// destination has no entry in the route table, instead of falling
	// back to a direct link-layer transmission. Route control planes
	// (internal/routing) set it: under routing, the table — which then
	// covers direct neighbors too — is the single source of reachability
	// truth, and a destination the protocol has not (yet) resolved is
	// genuinely unreachable rather than worth an on-air shot in the
	// dark.
	RequireRoutes bool

	// Counters. Sent counts locally originated packets only (control
	// included); relayed packets count in Forwarded, never both.
	Sent, Received, Forwarded, Dropped uint64
}

// NewStack binds a network layer to a MAC. The MAC's delivery and
// queue-space callbacks are taken over by the stack; transports register
// through Stack.Handle and Stack.OnQueueSpace instead.
func NewStack(m *mac.MAC, addr Addr) *Stack {
	s := &Stack{
		addr:      addr,
		mac:       m,
		neighbors: make(map[Addr]frame.Addr),
		routes:    make(map[Addr]Addr),
		handlers:  make(map[Protocol]Handler),
		rxHops:    make(map[Addr]uint8),
	}
	m.OnDeliver(s.receive)
	m.OnQueueSpace(func() {
		for _, fn := range s.space {
			fn()
		}
	})
	return s
}

// Addr returns the stack's own address.
func (s *Stack) Addr() Addr { return s.addr }

// MAC returns the underlying MAC (for counters in experiments).
func (s *Stack) MAC() *mac.MAC { return s.mac }

// AddNeighbor installs a static IP→MAC mapping (the testbed equivalent
// of a pre-populated ARP cache). Explicit entries take precedence over
// the computed resolver.
func (s *Stack) AddNeighbor(ip Addr, hw frame.Addr) { s.neighbors[ip] = hw }

// SetResolver installs a computed neighbor resolver, consulted whenever
// the static neighbor table has no entry for a next hop. For networks
// whose link-layer addresses are a pure function of the IP — every
// node-built network, where both sides derive from the station id —
// this replaces n stations × n entries of warm ARP state with one
// closure, without changing a single resolution result (the node
// package's equivalence test pins that).
func (s *Stack) SetResolver(fn func(Addr) (frame.Addr, bool)) { s.resolver = fn }

// lookupNeighbor resolves an IP to its link-layer address: the static
// table first, then the computed resolver.
func (s *Stack) lookupNeighbor(ip Addr) (frame.Addr, bool) {
	if hw, ok := s.neighbors[ip]; ok {
		return hw, true
	}
	if s.resolver != nil {
		return s.resolver(ip)
	}
	return frame.Addr{}, false
}

// AddRoute installs a static route: packets for dst go via nextHop,
// which must itself be a neighbor.
func (s *Stack) AddRoute(dst, nextHop Addr) { s.routes[dst] = nextHop }

// DelRoute removes the route for dst, if any.
func (s *Stack) DelRoute(dst Addr) { delete(s.routes, dst) }

// ClearRoutes empties the route table. Route compilers call it before
// (re-)installing a topology's routes on a reused stack.
func (s *Stack) ClearRoutes() { clear(s.routes) }

// NextHop returns the installed next hop for dst, if a route exists.
func (s *Stack) NextHop(dst Addr) (Addr, bool) {
	via, ok := s.routes[dst]
	return via, ok
}

// Routes returns the number of installed routes.
func (s *Stack) Routes() int { return len(s.routes) }

// HopsFrom reports how many MAC hops the most recently delivered packet
// from src traveled to reach this stack (1 = direct link), or 0 when
// nothing from src has been delivered this run. This is a data-path
// measurement — derived from the received TTL — not a routing-table
// lookup, so it reports the hops actually taken.
func (s *Stack) HopsFrom(src Addr) int { return int(s.rxHops[src]) }

// Handle registers the receiver for a transport protocol.
func (s *Stack) Handle(p Protocol, h Handler) { s.handlers[p] = h }

// OnQueueSpace subscribes to transmit-queue space notifications, used by
// transports for backpressure.
func (s *Stack) OnQueueSpace(fn func()) { s.space = append(s.space, fn) }

// FreezeSubscribers marks the current queue-space subscriber set as the
// stack's permanent baseline. The station builder calls it once, after
// wiring the transports: subscribers registered later belong to one
// run's application sources (saturating CBR refills and the like), and
// Reset truncates back to the frozen baseline so a reused network does
// not accumulate — or wrongly re-trigger — the previous run's sources.
func (s *Stack) FreezeSubscribers() { s.frozenSpace = len(s.space) }

// Reset clears the stack's per-run state for arena reuse: counters
// zero and queue-space subscribers truncated to the FreezeSubscribers
// baseline. The neighbor table, routes and protocol handlers are
// construction-time wiring and survive.
func (s *Stack) Reset() {
	for i := s.frozenSpace; i < len(s.space); i++ {
		s.space[i] = nil
	}
	s.space = s.space[:s.frozenSpace]
	clear(s.rxHops)
	s.Sent, s.Received, s.Forwarded, s.Dropped = 0, 0, 0, 0
}

// QueueFree reports how many MSDUs the MAC queue can still take.
func (s *Stack) QueueFree() int { return s.mac.QueueCap() - s.mac.QueueLen() }

// Send transmits a transport payload to dst. Broadcast packets map to
// link-layer broadcast; unicast packets resolve dst (or its route's next
// hop) through the neighbor table.
func (s *Stack) Send(p Protocol, payload []byte, dst Addr) error {
	err := s.send(Header{
		Src:   s.addr,
		Dst:   dst,
		Proto: p,
		TTL:   DefaultTTL,
	}, payload)
	if err == nil {
		s.Sent++
	}
	return err
}

func (s *Stack) send(h Header, payload []byte) error {
	h.Length = uint16(HeaderBytes + len(payload))
	var hw frame.Addr
	if h.Dst == Broadcast {
		hw = frame.Broadcast
	} else {
		next := h.Dst
		if via, ok := s.routes[h.Dst]; ok {
			next = via
		} else if s.RequireRoutes {
			s.Dropped++
			return fmt.Errorf("%w: %v", ErrNoRoute, h.Dst)
		}
		var ok bool
		if hw, ok = s.lookupNeighbor(next); !ok {
			s.Dropped++
			return fmt.Errorf("%w: %v", ErrNoNeighbor, next)
		}
	}
	if err := s.mac.Send(EncodeHeader(h, payload), hw); err != nil {
		s.Dropped++
		return fmt.Errorf("network: %w", err)
	}
	return nil
}

// SendControl transmits a control-plane payload pinned to the given PHY
// rate (see mac.SendControl). Unlike Send it never consults the route
// table: control planes address their link neighbors directly — that is
// how routes get bootstrapped in the first place — and their frames ride
// a basic rate every station can decode.
func (s *Stack) SendControl(p Protocol, payload []byte, dst Addr, rate phy.Rate) error {
	h := Header{
		Src:    s.addr,
		Dst:    dst,
		Proto:  p,
		TTL:    1, // control frames are link-local, never forwarded
		Length: uint16(HeaderBytes + len(payload)),
	}
	hw := frame.Broadcast
	if dst != Broadcast {
		var ok bool
		if hw, ok = s.lookupNeighbor(dst); !ok {
			s.Dropped++
			return fmt.Errorf("%w: %v", ErrNoNeighbor, dst)
		}
	}
	if err := s.mac.SendControl(EncodeHeader(h, payload), hw, rate); err != nil {
		s.Dropped++
		return fmt.Errorf("network: %w", err)
	}
	s.Sent++
	return nil
}

// receive handles an MSDU delivered by the MAC.
func (s *Stack) receive(msdu []byte, from frame.Addr) {
	h, payload, err := DecodeHeader(msdu)
	if err != nil {
		s.Dropped++
		return
	}
	if h.Dst == s.addr || h.Dst == Broadcast {
		s.Received++
		if h.Dst == s.addr && s.Forwarding && h.Proto != ProtoRouting {
			// TTL arithmetic over the locally-originated budget gives the
			// hop count the packet actually traveled. Gated on Forwarding
			// so single-hop scenarios (where the answer is always 1) pay
			// no per-packet map write; route control frames are excluded
			// because they originate with a link-local TTL, not
			// DefaultTTL, and would corrupt the arithmetic.
			s.rxHops[h.Src] = DefaultTTL - h.TTL + 1
		}
		if fn := s.handlers[h.Proto]; fn != nil {
			fn(payload, h.Src, h.Dst)
		}
		return
	}
	if !s.Forwarding {
		s.Dropped++
		return
	}
	if h.TTL <= 1 {
		s.Dropped++
		return
	}
	h.TTL--
	if err := s.send(h, payload); err == nil {
		s.Forwarded++
	}
}
