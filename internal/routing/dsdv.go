package routing

import (
	"encoding/binary"
	"math/rand"
	"time"

	"adhocsim/internal/frame"
	"adhocsim/internal/mac"
	"adhocsim/internal/network"
	"adhocsim/internal/phy"
	"adhocsim/internal/sim"
	"adhocsim/internal/trace"
)

// This file implements DSDV (Destination-Sequenced Distance Vector,
// Perkins & Bhagwat '94), adapted to the simulator's 802.11 stack:
//
//   - every station periodically broadcasts its route table over
//     network.ProtoRouting; each entry is (destination, sequence
//     number, metric). The sender's own entry carries metric 0 and a
//     sequence number it alone increments (by 2, staying even) per
//     periodic advertisement.
//   - receivers adopt an entry when its sequence number is fresher, or
//     equally fresh with a smaller metric; entries relayed by the
//     current next hop always supersede (the next hop's latest word on
//     its own route). Adopted routes install into the stack with the
//     advertising neighbor as next hop.
//   - a route break — the MAC dropping a data MSDU to a next hop at
//     the retry limit — marks every route through that neighbor with
//     the infinity metric and an odd sequence number (last even + 1),
//     and triggers an immediate advertisement. Only the destination
//     itself can override a break, by advertising a fresher even
//     number; this is the sequence-number rule that makes DSDV
//     count-to-infinity-free.
//   - advertisements ride a pinned basic rate (mac.SendControl) so
//     every station in range can decode them — the same reason the
//     standard sends RTS/CTS/ACK at basic rates. Because basic-rate
//     control reaches much farther than high-rate data, receptions
//     weaker than MinNeighborDBm are ignored (gray-zone filtering):
//     a neighbor whose advertisement barely arrives at 1 Mbit/s would
//     lose every 11 Mbit/s data frame routed through it.

// InfinityMetric is the hop count meaning "unreachable". The TTL
// budget admits exactly DefaultTTL hops (the origin sends TTL 16 and a
// relay forwards while TTL > 1, so relays 1..15 can carry a packet to
// a 16th hop), so the first undeliverable metric is one past it.
const InfinityMetric = network.DefaultTTL + 1

// advertEntryBytes is the wire size of one advertisement entry:
// destination (4) + sequence number (4) + metric (1).
const advertEntryBytes = 9

// maxAdvertEntries bounds one advertisement to what fits an MSDU after
// the network header and the count byte.
const maxAdvertEntries = (mac.MaxMSDU - network.HeaderBytes - 1) / advertEntryBytes

// MaxNetworkSize is the largest station count DSDV supports: a full
// dump must fit one MSDU (the sender's own entry plus every possible
// destination), since the protocol has no incremental-dump mechanism.
// Scenario validation rejects larger dsdv networks up front — a
// silently truncated advertisement would starve the destinations that
// fell off the end, indistinguishable from genuine unreachability.
const MaxNetworkSize = maxAdvertEntries

// DSDVConfig parameterizes one station's DSDV instance.
type DSDVConfig struct {
	// AdvertInterval is the periodic full-table advertisement period
	// (default 1s). Each period the station increments its own sequence
	// number, which is what lets broken routes heal.
	AdvertInterval time.Duration
	// SettleDelay bounds the random delay before a triggered update and
	// the initial advertisement jitter (default 50ms). The jitter
	// de-synchronizes stations that would otherwise collide their
	// broadcasts forever.
	SettleDelay time.Duration
	// ControlRate is the pinned PHY rate of advertisements (default
	// 1 Mbit/s, the most robust basic rate).
	ControlRate phy.Rate
	// MinNeighborDBm, when nonzero, ignores advertisements received
	// weaker than this power: gray-zone filtering. Scenario wiring
	// derives it from the data rate's decode sensitivity, so "neighbor"
	// means "could carry my data frames", not "could deliver a
	// 1 Mbit/s broadcast on a lucky fade".
	MinNeighborDBm float64
	// BlacklistFor is how long a neighbor's advertisements are ignored
	// after its link is declared broken (default 2×AdvertInterval).
	// Fading makes the RSSI filter a per-sample test, so a marginal far
	// neighbor occasionally slips through on a lucky fade, gets adopted
	// as a shortcut, and immediately drops data; the blacklist keeps
	// such a neighbor from being re-adopted the moment its next
	// advertisement gets lucky again.
	BlacklistFor time.Duration
	// FailStreak is how many consecutive retry-limit MSDU drops to a
	// neighbor (with no intervening success) declare its link broken
	// (default 3). One drop is not a verdict under block fading: a
	// single bad coherence epoch routinely swallows an entire MSDU's
	// retry budget on a link that is healthy on average, and a failed
	// MSDU's backoff schedule spans roughly one epoch — so an honest
	// neighbor produces short failure streaks, while a gray-zone
	// shortcut that loses most epochs crosses the threshold within a
	// few packets.
	FailStreak int
	// AdmitStreak is how many consecutive strong advertisements (at or
	// above MinNeighborDBm) a sender needs before it is admitted as a
	// neighbor (default 2). Admission is sticky — a later weak
	// advertisement does not demote an admitted neighbor; only a link
	// break does. The hysteresis is what makes the filter decisive
	// under fading: a healthy link passes two consecutive samples
	// almost surely, a gray-zone one almost never. Irrelevant when
	// MinNeighborDBm is zero (no filter).
	AdmitStreak int
}

func (c DSDVConfig) withDefaults() DSDVConfig {
	if c.AdvertInterval <= 0 {
		c.AdvertInterval = time.Second
	}
	if c.SettleDelay <= 0 {
		c.SettleDelay = 50 * time.Millisecond
	}
	if c.ControlRate == 0 {
		c.ControlRate = phy.Rate1
	}
	if c.BlacklistFor <= 0 {
		c.BlacklistFor = 2 * c.AdvertInterval
	}
	if c.FailStreak <= 0 {
		c.FailStreak = 3
	}
	if c.AdmitStreak <= 0 {
		c.AdmitStreak = 2
	}
	return c
}

// DSDVCounters aggregates one station's control-plane activity.
type DSDVCounters struct {
	// AdvertsSent counts advertisement broadcasts handed to the MAC;
	// ControlBytes is their network-layer byte total (header included) —
	// the control overhead the summaries report.
	AdvertsSent  uint64
	ControlBytes uint64
	// AdvertsHeard counts advertisements processed; Filtered counts
	// those ignored by gray-zone filtering; Blacklisted counts those
	// ignored because the sender recently dropped our data.
	AdvertsHeard uint64
	Filtered     uint64
	Blacklisted  uint64
	// TriggeredUpdates counts advertisements sent ahead of schedule in
	// response to a route change or break.
	TriggeredUpdates uint64
	// LinkBreaks counts next-hop transmit failures observed from the
	// MAC; RouteChanges counts route-table installs and removals.
	LinkBreaks   uint64
	RouteChanges uint64
}

// dsdvEntry is one route-table row.
type dsdvEntry struct {
	next   network.Addr
	metric uint8
	seq    uint32
}

// DSDV is one station's distance-vector control plane. Create it with
// New (which wires the stack handler and MAC observer — permanent,
// Reset-surviving subscriptions) and arm it with Start. On an arena
// reuse, call Reset after the owning network's Reset.
type DSDV struct {
	sched  *sim.Scheduler
	source *sim.Source
	rng    *rand.Rand
	node   Node
	byHW   map[frame.Addr]network.Addr
	cfg    DSDVConfig

	// table plus its deterministic iteration order: advertisement
	// content must not depend on Go map ordering.
	table map[network.Addr]*dsdvEntry
	order []network.Addr

	// blacklist maps a neighbor to the simulated time until which its
	// advertisements are ignored (link recently proved broken);
	// failStreak counts its consecutive retry-limit drops since the
	// last success. admitted is the sticky neighbor set; strongStreak
	// counts a not-yet-admitted sender's consecutive strong
	// advertisements.
	blacklist    map[network.Addr]time.Duration
	failStreak   map[network.Addr]int
	admitted     map[network.Addr]bool
	strongStreak map[network.Addr]int

	ownSeq uint32
	rounds int // periodic advertisement rounds completed (fast-start pacing)

	// gen is the station's incarnation counter: every scheduled closure
	// captures the generation it was armed under and becomes inert when
	// Crash advances it. The fault engine cannot cancel the closures
	// individually (no handles are stored — see triggerPending below),
	// and dropping them wholesale via scheduler Reset would rewind the
	// whole run; the generation gate retires them in O(1) without
	// touching the scheduler.
	gen uint64

	// triggerPending coalesces bursts of route changes into one
	// pending triggered update. The scheduled events themselves need no
	// stored handles: nothing ever cancels them individually, and Reset
	// relies on the owning scheduler's Reset to drop them wholesale.
	triggerPending bool

	// tr, when enabled, logs route changes and link breaks (SetTracer).
	// Purely observational.
	tr *trace.Tracer

	Counters DSDVCounters
}

// SetTracer installs an execution tracer on the route-change and
// link-break paths. A nil or disabled tracer costs one branch per route
// event. Derive the handle with Tracer.WithClock on this station's
// scheduler so timestamps follow its region clock in parallel mode.
func (r *DSDV) SetTracer(t *trace.Tracer) { r.tr = t }

var _ mac.TxObserver = (*DSDV)(nil)

// New creates a DSDV instance for node, aware of the given peers (for
// resolving MAC transmit feedback back to network addresses). It
// registers the advertisement handler on the node's stack and
// subscribes to the node's MAC transmit outcomes — both construction-
// time wiring — and flips the stack into forwarding + RequireRoutes
// mode. Call Start to begin advertising.
func New(sched *sim.Scheduler, source *sim.Source, node Node, peers []Node, cfg DSDVConfig) *DSDV {
	r := &DSDV{
		sched:        sched,
		source:       source,
		node:         node,
		byHW:         make(map[frame.Addr]network.Addr, len(peers)),
		cfg:          cfg.withDefaults(),
		table:        make(map[network.Addr]*dsdvEntry),
		blacklist:    make(map[network.Addr]time.Duration),
		failStreak:   make(map[network.Addr]int),
		admitted:     make(map[network.Addr]bool),
		strongStreak: make(map[network.Addr]int),
	}
	for _, p := range peers {
		if p.Addr != node.Addr {
			r.byHW[p.HW] = p.Addr
		}
	}
	r.rng = r.stream()
	node.Stack.Handle(network.ProtoRouting, r.onAdvert)
	node.MAC.AddTxObserver(r)
	node.Stack.Forwarding = true
	node.Stack.RequireRoutes = true
	return r
}

func (r *DSDV) stream() *rand.Rand {
	return r.source.Stream("routing.dsdv." + r.node.Addr.String())
}

// Start arms the first advertisement (after a short random jitter, so
// co-located stations do not collide their initial broadcasts) and the
// periodic schedule behind it.
func (r *DSDV) Start() {
	delay := time.Duration(r.rng.Int63n(int64(r.cfg.SettleDelay)))
	gen := r.gen
	r.sched.After(delay, func() {
		if gen != r.gen {
			return
		}
		r.periodic()
	})
}

// Reset returns the instance to its just-built state for a new run on
// a reused arena: route table, sequence number and counters clear, the
// jitter rng re-derives from the (re-seeded) source, the stale event
// handles drop (the owning scheduler has been Reset), the stack's
// route table empties, and Start re-arms. The stack handler and MAC
// observer subscriptions persist from New.
func (r *DSDV) Reset() {
	r.rng = r.stream()
	clear(r.table)
	r.order = r.order[:0]
	clear(r.blacklist)
	clear(r.failStreak)
	clear(r.admitted)
	clear(r.strongStreak)
	r.ownSeq = 0
	r.rounds = 0
	r.triggerPending = false
	r.Counters = DSDVCounters{}
	r.node.Stack.ClearRoutes()
	r.Start()
}

// Crash tears the control plane down mid-run (station crash, fault
// engine): the route table, neighbor admission state, blacklist and
// failure streaks all vanish — a rebooted daemon remembers none of them
// — and the stack's installed routes empty. The generation counter
// advances so every armed closure (initial, periodic, triggered)
// retires inert. Two things deliberately survive: ownSeq, because the
// network still circulates our pre-crash sequence numbers and a restart
// that rewound to zero would advertise itself as staler than its own
// ghost and be ignored forever; and the counters, which are this run's
// measurement record, not the daemon's state.
func (r *DSDV) Crash() {
	r.gen++
	clear(r.table)
	r.order = r.order[:0]
	clear(r.blacklist)
	clear(r.failStreak)
	clear(r.admitted)
	clear(r.strongStreak)
	r.rounds = 0
	r.triggerPending = false
	r.node.Stack.ClearRoutes()
}

// Restart brings a crashed control plane back: the own sequence number
// jumps past anything the pre-crash incarnation could have advertised
// (so peers re-adopt us immediately) and the advertisement schedule
// re-arms from scratch, fast-start rounds included — a rejoining
// station needs to re-learn its neighborhood just like a cold one.
func (r *DSDV) Restart() {
	r.ownSeq += 2
	r.Start()
}

// fastStartRounds is how many initial advertisement rounds run at a
// quarter of the configured interval. Neighbor admission needs
// AdmitStreak consecutive strong samples, and samples only arrive with
// advertisements — a cold network at one advert per second would take
// several seconds just to find out who its neighbors are. Deployed
// distance-vector daemons burst their first updates for the same
// reason.
const fastStartRounds = 4

// periodic sends the scheduled full-table advertisement and re-arms.
func (r *DSDV) periodic() {
	r.ownSeq += 2 // fresh even sequence number: "I am alive and here"
	r.sendAdvert()
	interval := r.cfg.AdvertInterval
	if r.rounds++; r.rounds < fastStartRounds {
		interval /= 4
	}
	jitter := time.Duration(r.rng.Int63n(int64(r.cfg.SettleDelay)))
	gen := r.gen
	r.sched.After(interval+jitter, func() {
		if gen != r.gen {
			return
		}
		r.periodic()
	})
}

// scheduleTriggered arms a near-immediate advertisement after the
// settling delay, coalescing bursts of route changes into one update.
func (r *DSDV) scheduleTriggered() {
	if r.triggerPending {
		return
	}
	r.triggerPending = true
	delay := time.Duration(r.rng.Int63n(int64(r.cfg.SettleDelay)))
	gen := r.gen
	r.sched.After(delay, func() {
		if gen != r.gen {
			return
		}
		r.triggerPending = false
		r.Counters.TriggeredUpdates++
		r.sendAdvert()
	})
}

// sendAdvert broadcasts the route table. A full queue just drops the
// advertisement — the next periodic one repeats the information.
func (r *DSDV) sendAdvert() {
	payload := r.encodeAdvert()
	if err := r.node.Stack.SendControl(network.ProtoRouting, payload, network.Broadcast, r.cfg.ControlRate); err != nil {
		return
	}
	r.Counters.AdvertsSent++
	r.Counters.ControlBytes += uint64(network.HeaderBytes + len(payload))
}

// encodeAdvert marshals the advertisement: a count byte, then
// (destination, sequence, metric) entries — own entry first.
func (r *DSDV) encodeAdvert() []byte {
	n := 1 + len(r.order)
	if n > maxAdvertEntries {
		// Unreachable for validated scenarios (MaxNetworkSize); a direct
		// library user past the limit loses the newest entries.
		n = maxAdvertEntries
	}
	buf := make([]byte, 1+n*advertEntryBytes)
	buf[0] = byte(n)
	put := func(i int, dst network.Addr, seq uint32, metric uint8) {
		off := 1 + i*advertEntryBytes
		binary.BigEndian.PutUint32(buf[off:], uint32(dst))
		binary.BigEndian.PutUint32(buf[off+4:], seq)
		buf[off+8] = metric
	}
	put(0, r.node.Addr, r.ownSeq, 0)
	for i, dst := range r.order {
		if i+1 >= n {
			break
		}
		e := r.table[dst]
		put(i+1, dst, e.seq, e.metric)
	}
	return buf
}

// onAdvert processes a received advertisement from the neighbor `from`.
func (r *DSDV) onAdvert(payload []byte, from network.Addr, _ network.Addr) {
	if until, bad := r.blacklist[from]; bad {
		if r.sched.Now() < until {
			r.Counters.Blacklisted++
			return
		}
		delete(r.blacklist, from)
	}
	if r.cfg.MinNeighborDBm != 0 && !r.admitted[from] {
		if r.node.MAC.LastRxRSSIDBm() < r.cfg.MinNeighborDBm {
			r.strongStreak[from] = 0
			r.Counters.Filtered++
			return
		}
		r.strongStreak[from]++
		if r.strongStreak[from] < r.cfg.AdmitStreak {
			r.Counters.Filtered++
			return
		}
		delete(r.strongStreak, from)
		r.admitted[from] = true
	}
	if len(payload) < 1 {
		return
	}
	n := int(payload[0])
	if len(payload) < 1+n*advertEntryBytes {
		return
	}
	r.Counters.AdvertsHeard++
	for i := 0; i < n; i++ {
		off := 1 + i*advertEntryBytes
		dst := network.Addr(binary.BigEndian.Uint32(payload[off:]))
		seq := binary.BigEndian.Uint32(payload[off+4:])
		metric := payload[off+8]
		r.consider(from, dst, seq, metric)
	}
}

// consider applies one advertised entry.
func (r *DSDV) consider(from, dst network.Addr, seq uint32, metric uint8) {
	if dst == r.node.Addr {
		// Someone is circulating a broken route to us with a sequence
		// number at least as fresh as our own (an odd break number from
		// a dead link). Out-sequence it so our next advertisement
		// overrides the breakage; plain echoes of our good entry are
		// normal gossip and are ignored.
		if metric >= InfinityMetric && seq >= r.ownSeq {
			r.ownSeq = (seq/2 + 1) * 2
			r.scheduleTriggered()
		}
		return
	}
	if metric < InfinityMetric {
		metric++ // one more hop: through the advertising neighbor
	}
	cur, known := r.table[dst]
	adopt := !known ||
		seq > cur.seq ||
		(seq == cur.seq && (metric < cur.metric || cur.next == from))
	if !adopt {
		// A stale break heard about a route we hold fresher: advertise
		// the repair rather than letting the breakage echo.
		if metric >= InfinityMetric && cur.metric < InfinityMetric && cur.seq > seq {
			r.scheduleTriggered()
		}
		return
	}
	if !known {
		cur = &dsdvEntry{}
		r.table[dst] = cur
		r.order = append(r.order, dst)
	}
	wasUsable := known && cur.metric < InfinityMetric
	prevNext, prevMetric := cur.next, cur.metric
	cur.next, cur.seq, cur.metric = from, seq, metric

	switch {
	case metric >= InfinityMetric:
		if wasUsable {
			r.node.Stack.DelRoute(dst)
			r.Counters.RouteChanges++
			if r.tr.Enabled(trace.LevelInfo) {
				r.tr.Infof("dsdv %v: route to %v withdrawn (advertised broken via %v)",
					r.node.Addr, dst, from)
			}
			r.scheduleTriggered() // propagate the break
		}
	default:
		if !wasUsable || prevNext != from {
			r.node.Stack.AddRoute(dst, from)
			r.Counters.RouteChanges++
			if r.tr.Enabled(trace.LevelInfo) {
				r.tr.Infof("dsdv %v: route to %v via %v metric %d (was via %v metric %d)",
					r.node.Addr, dst, from, metric, prevNext, prevMetric)
			}
		}
		// New destinations and repaired routes are worth telling the
		// neighborhood about immediately; pure metric drift waits for
		// the periodic advertisement.
		if !known || !wasUsable || metric < prevMetric {
			r.scheduleTriggered()
		}
	}
}

// ObserveTx implements mac.TxObserver: cfg.FailStreak consecutive data
// MSDUs dropped at the retry limit are the MAC's word that the link to
// that neighbor is dead. Every route through the neighbor then gets the
// infinity metric and an odd sequence number (break numbers are one
// above the last even number heard — only the destination itself, with
// a fresher even number, can resurrect the route), and the neighbor is
// blacklisted so a lucky advertisement cannot immediately re-adopt it.
func (r *DSDV) ObserveTx(o mac.TxOutcome) {
	if !o.Final || o.Control {
		return
	}
	neighbor, ok := r.byHW[o.To]
	if !ok {
		return
	}
	if o.Success {
		delete(r.failStreak, neighbor)
		return
	}
	r.failStreak[neighbor]++
	if r.failStreak[neighbor] < r.cfg.FailStreak {
		return
	}
	delete(r.failStreak, neighbor)
	r.blacklist[neighbor] = r.sched.Now() + r.cfg.BlacklistFor
	delete(r.admitted, neighbor) // re-admission takes fresh strong samples
	delete(r.strongStreak, neighbor)
	broke := false
	for _, dst := range r.order {
		e := r.table[dst]
		if e.metric >= InfinityMetric || e.next != neighbor {
			continue
		}
		e.metric = InfinityMetric
		e.seq++ // odd: a break we observed, not the destination's word
		r.node.Stack.DelRoute(dst)
		r.Counters.RouteChanges++
		if r.tr.Enabled(trace.LevelInfo) {
			r.tr.Infof("dsdv %v: route to %v broken (next hop %v failed at the MAC)",
				r.node.Addr, dst, neighbor)
		}
		broke = true
	}
	if broke {
		r.Counters.LinkBreaks++
		r.scheduleTriggered()
	}
}

// Route reports the installed next hop and metric for dst, for tests
// and instrumentation. ok is false for unknown or broken destinations.
func (r *DSDV) Route(dst network.Addr) (next network.Addr, metric int, ok bool) {
	e, known := r.table[dst]
	if !known || e.metric >= InfinityMetric {
		return 0, 0, false
	}
	return e.next, int(e.metric), true
}
