// Package routing is the route control plane of the simulator: it
// decides, per station, which next hop carries a packet toward each
// destination, and installs those decisions into the network layer's
// route table (network.Stack.AddRoute).
//
// Two protocols are provided, matching the two classic ways ad hoc
// networks obtain routes:
//
//   - a static shortest-path compiler (InstallStatic): the omniscient
//     baseline. It derives the connectivity graph from station
//     positions and a link radius, runs a BFS per source, and installs
//     min-hop next hops at build time. No control traffic, no
//     convergence delay, no reaction to topology change.
//
//   - DSDV (New/Start), the sequence-numbered distance-vector protocol
//     of Perkins & Bhagwat: periodic and triggered route
//     advertisements broadcast over network.ProtoRouting, freshest-
//     sequence-number-wins route selection, and route invalidation
//     driven by MAC transmit-failure feedback (mac.TxObserver).
//
// Both protocols flip the stacks they manage into RequireRoutes mode:
// the route table becomes the single source of reachability truth, and
// sending to an unresolved destination fails with network.ErrNoRoute
// instead of gambling on a direct transmission.
package routing

import (
	"fmt"
	"math"
	"slices"

	"adhocsim/internal/frame"
	"adhocsim/internal/mac"
	"adhocsim/internal/network"
	"adhocsim/internal/phy"
)

// Protocol names, as scenario specs spell them.
const (
	// ProtocolStatic selects the build-time shortest-path compiler.
	ProtocolStatic = "static"
	// ProtocolDSDV selects the dynamic distance-vector protocol.
	ProtocolDSDV = "dsdv"
)

// Protocols lists the route control planes a scenario can select.
func Protocols() []string { return []string{ProtocolStatic, ProtocolDSDV} }

// Node is one station as the routing subsystem sees it: addresses at
// both layers, a position (for the static compiler), and the stack and
// MAC the control plane hooks into.
type Node struct {
	Addr  network.Addr
	HW    frame.Addr
	Pos   phy.Position
	Stack *network.Stack
	MAC   *mac.MAC
}

// Graph is a station connectivity graph plus its all-pairs min-hop
// routing solution. Stations are vertices; an undirected edge joins
// every pair closer than the link radius. Ties between equal-length
// paths break toward the lowest next-hop index, so the compiled routes
// are a pure function of the positions — no randomness, no map-order
// dependence.
type Graph struct {
	n         int
	linkRange float64
	adj       [][]int32 // ascending neighbor indices
	next      [][]int32 // next[src][dst] = first hop index, -1 unreachable
	hops      [][]int32 // hops[src][dst] = path length, -1 unreachable
}

// indexedAdjacencyMin is the station count above which NewGraph
// discovers edges through a spatial hash instead of the all-pairs scan;
// below it the scan is cheaper than building the index.
const indexedAdjacencyMin = 256

// bruteAdjacency forces the all-pairs edge scan regardless of size —
// the reference path the equivalence test compares the indexed
// discovery against.
var bruteAdjacency bool

// NewGraph builds the connectivity graph over the given positions with
// the given link radius (meters) and solves min-hop paths between every
// pair.
func NewGraph(positions []phy.Position, linkRange float64) *Graph {
	n := len(positions)
	g := &Graph{
		n:         n,
		linkRange: linkRange,
		adj:       make([][]int32, n),
		next:      make([][]int32, n),
		hops:      make([][]int32, n),
	}
	if n >= indexedAdjacencyMin && !bruteAdjacency &&
		linkRange > 0 && !math.IsInf(linkRange, 1) {
		// Edge discovery through a spatial hash with the link radius as
		// cell size: each station probes its 3×3 cell neighborhood instead
		// of the whole field, O(n·earshot) against the scan's O(n²). The
		// candidate list is sorted and filtered to j>i, so every adjacency
		// append happens in exactly the order the all-pairs loop performs
		// it — identical lists, identical BFS tie-breaks.
		ix := phy.NewCellIndex(linkRange)
		for i := 0; i < n; i++ {
			ix.Insert(uint32(i), positions[i])
		}
		var buf []uint32
		for i := 0; i < n; i++ {
			buf = ix.AppendWithin(buf[:0], positions[i], linkRange)
			slices.Sort(buf)
			for _, v := range buf {
				j := int(v)
				if j > i && phy.Dist(positions[i], positions[j]) <= linkRange {
					g.adj[i] = append(g.adj[i], int32(j))
					g.adj[j] = append(g.adj[j], int32(i))
				}
			}
		}
	} else {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if phy.Dist(positions[i], positions[j]) <= linkRange {
					g.adj[i] = append(g.adj[i], int32(j))
					g.adj[j] = append(g.adj[j], int32(i))
				}
			}
		}
	}
	// The i<j order (either discovery path) leaves every adjacency list
	// ascending (a vertex receives all smaller neighbors before any
	// larger one), so BFS visits neighbors in index order and
	// tie-breaks are stable.
	queue := make([]int32, 0, n)
	for src := 0; src < n; src++ {
		next := make([]int32, n)
		hops := make([]int32, n)
		for i := range next {
			next[i], hops[i] = -1, -1
		}
		hops[src] = 0
		queue = queue[:0]
		queue = append(queue, int32(src))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.adj[u] {
				if hops[v] >= 0 {
					continue
				}
				hops[v] = hops[u] + 1
				if u == int32(src) {
					next[v] = v
				} else {
					next[v] = next[u]
				}
				queue = append(queue, v)
			}
		}
		g.next[src] = next
		g.hops[src] = hops
	}
	return g
}

// LinkRange returns the link radius the graph was built with.
func (g *Graph) LinkRange() float64 { return g.linkRange }

// Degree returns the number of direct neighbors of station i.
func (g *Graph) Degree(i int) int { return len(g.adj[i]) }

// Hops returns the min-hop distance from src to dst, or -1 when dst is
// unreachable.
func (g *Graph) Hops(src, dst int) int { return int(g.hops[src][dst]) }

// NextHop returns the first-hop station index on the min-hop path from
// src to dst, or -1 when dst is unreachable.
func (g *Graph) NextHop(src, dst int) int { return int(g.next[src][dst]) }

// InstallStatic derives the connectivity graph from the nodes'
// positions and the link radius, solves min-hop paths, and installs the
// resulting next hops into every node's route table. Forwarding is
// enabled and the stacks are switched to RequireRoutes mode, so
// unreachable destinations fail fast with network.ErrNoRoute. Existing
// routes are cleared first, which is what makes the call idempotent and
// lets a reused (Reset) network be recompiled against re-drawn
// positions.
//
// The returned graph reports hop counts and reachability; callers
// validate their traffic matrix against it.
func InstallStatic(nodes []Node, linkRange float64) *Graph {
	positions := make([]phy.Position, len(nodes))
	for i, nd := range nodes {
		positions[i] = nd.Pos
	}
	g := NewGraph(positions, linkRange)
	g.Install(nodes)
	return g
}

// Install writes the graph's min-hop next hops into every node's route
// table (clearing existing routes first) and switches the stacks into
// forwarding + RequireRoutes mode. Callers that already hold a solved
// graph — a validation pass, say — install it directly instead of
// paying InstallStatic's recompute; nodes must be indexed like the
// positions the graph was built from.
func (g *Graph) Install(nodes []Node) {
	for src, nd := range nodes {
		nd.Stack.Forwarding = true
		nd.Stack.RequireRoutes = true
		nd.Stack.ClearRoutes()
		for dst := range nodes {
			if dst == src {
				continue
			}
			if via := g.NextHop(src, dst); via >= 0 {
				nd.Stack.AddRoute(nodes[dst].Addr, nodes[via].Addr)
			}
		}
	}
}

// DefaultLinkRange returns the link radius the static compiler uses
// when the scenario does not pin one: the profile's median transmission
// range at the given data rate — the paper's TX_range, the distance at
// which half the frames survive. Beyond it a link loses most frames, so
// min-hop paths over this graph are paths the MAC can actually sustain.
//
// Profile.ReachRange — the spatial index's relevance radius — is NOT a
// usable link predicate here: it answers "could a frame ever arrive
// under the luckiest fade?" (a ±8σ bound), which would connect station
// pairs whose links lose essentially every packet. See DESIGN.md.
func DefaultLinkRange(p *phy.Profile, rate phy.Rate) float64 {
	return p.MedianRange(rate)
}

// String renders a compact description of the graph for logs and
// errors.
func (g *Graph) String() string {
	edges := 0
	for _, a := range g.adj {
		edges += len(a)
	}
	return fmt.Sprintf("routing.Graph{%d stations, %d links, range %.1fm}", g.n, edges/2, g.linkRange)
}
