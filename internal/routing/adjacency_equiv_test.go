package routing

import (
	"reflect"
	"testing"

	"adhocsim/internal/phy"
	"adhocsim/internal/sim"
)

// TestIndexedAdjacencyMatchesBrute pins the spatial-hash edge discovery
// against the all-pairs reference scan on a field big enough to take
// the indexed path: identical adjacency lists (order included, so BFS
// tie-breaks agree), identical next-hop tables, identical hop counts.
func TestIndexedAdjacencyMatchesBrute(t *testing.T) {
	rng := sim.NewSource(7).Stream("routing.adjacency-test")
	n := 4 * indexedAdjacencyMin
	positions := make([]phy.Position, n)
	for i := range positions {
		positions[i] = phy.Pos(rng.Float64()*3000, rng.Float64()*3000)
	}
	const linkRange = 130.0

	indexed := NewGraph(positions, linkRange)
	bruteAdjacency = true
	defer func() { bruteAdjacency = false }()
	brute := NewGraph(positions, linkRange)

	edges := 0
	for i := range indexed.adj {
		edges += len(indexed.adj[i])
	}
	if edges == 0 {
		t.Fatal("graph has no edges: the field does not exercise edge discovery")
	}
	if !reflect.DeepEqual(indexed.adj, brute.adj) {
		t.Error("adjacency lists differ between indexed discovery and the all-pairs scan")
	}
	if !reflect.DeepEqual(indexed.next, brute.next) {
		t.Error("next-hop tables differ between indexed discovery and the all-pairs scan")
	}
	if !reflect.DeepEqual(indexed.hops, brute.hops) {
		t.Error("hop counts differ between indexed discovery and the all-pairs scan")
	}
}
