package routing

import (
	"testing"
	"time"

	"adhocsim/internal/frame"
	"adhocsim/internal/mac"
	"adhocsim/internal/medium"
	"adhocsim/internal/network"
	"adhocsim/internal/phy"
	"adhocsim/internal/sim"
)

// TestGraphMinHop pins the BFS solution on a 4-station string: min-hop
// paths, first hops, and unreachability.
func TestGraphMinHop(t *testing.T) {
	pos := []phy.Position{phy.Pos(0, 0), phy.Pos(20, 0), phy.Pos(40, 0), phy.Pos(60, 0)}
	g := NewGraph(pos, 25)
	cases := []struct{ src, dst, hops, next int }{
		{0, 1, 1, 1},
		{0, 2, 2, 1},
		{0, 3, 3, 1},
		{3, 0, 3, 2},
		{1, 3, 2, 2},
	}
	for _, c := range cases {
		if got := g.Hops(c.src, c.dst); got != c.hops {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.src, c.dst, got, c.hops)
		}
		if got := g.NextHop(c.src, c.dst); got != c.next {
			t.Errorf("NextHop(%d,%d) = %d, want %d", c.src, c.dst, got, c.next)
		}
	}
	// A station beyond everyone's range is unreachable.
	g = NewGraph([]phy.Position{phy.Pos(0, 0), phy.Pos(20, 0), phy.Pos(500, 0)}, 25)
	if g.Hops(0, 2) != -1 || g.NextHop(0, 2) != -1 {
		t.Fatalf("distant station reported reachable: hops=%d", g.Hops(0, 2))
	}
}

// TestGraphTieBreakDeterministic proves equal-length paths resolve to
// the lowest-index first hop, independent of geometry-irrelevant order.
func TestGraphTieBreakDeterministic(t *testing.T) {
	// A diamond: 0 can reach 3 via 1 or 2, both 2 hops. BFS must pick 1.
	pos := []phy.Position{phy.Pos(0, 0), phy.Pos(20, 10), phy.Pos(20, -10), phy.Pos(40, 0)}
	g := NewGraph(pos, 25)
	if got := g.NextHop(0, 3); got != 1 {
		t.Fatalf("NextHop(0,3) = %d, want lowest-index 1", got)
	}
}

// testNet builds stations over a fade-free medium for control-plane
// tests with deterministic geometry.
type testNet struct {
	sched  *sim.Scheduler
	src    *sim.Source
	med    *medium.Medium
	nodes  []Node
	macs   []*mac.MAC
	radios []*medium.Radio
}

func newTestNet(seed uint64, prof *phy.Profile, positions ...phy.Position) *testNet {
	src := sim.NewSource(seed)
	sched := sim.NewScheduler()
	tn := &testNet{sched: sched, src: src, med: medium.New(sched, src)}
	for i, pos := range positions {
		id := uint32(i + 1)
		m := mac.New(sched, src, mac.Config{Address: frame.AddrFromID(id), DataRate: phy.Rate11})
		radio := tn.med.AddRadio(id, pos, prof, m)
		m.Attach(radio)
		st := network.NewStack(m, network.StationAddr(id))
		tn.nodes = append(tn.nodes, Node{
			Addr: st.Addr(), HW: frame.AddrFromID(id), Pos: pos, Stack: st, MAC: m,
		})
		tn.macs = append(tn.macs, m)
		tn.radios = append(tn.radios, radio)
	}
	for i := range tn.nodes {
		for j := range tn.nodes {
			if i != j {
				tn.nodes[i].Stack.AddNeighbor(tn.nodes[j].Addr, tn.nodes[j].HW)
			}
		}
	}
	return tn
}

// TestInstallStatic proves the compiler installs working multi-hop
// routes: an end-to-end send over a 3-station string is relayed and
// delivered, and RequireRoutes rejects unreachable destinations.
func TestInstallStatic(t *testing.T) {
	prof := phy.DefaultProfile()
	prof.Fading.SigmaDB = 0
	tn := newTestNet(1, prof, phy.Pos(0, 0), phy.Pos(20, 0), phy.Pos(40, 0))
	g := InstallStatic(tn.nodes, 25)
	if g.Hops(0, 2) != 2 {
		t.Fatalf("hops(0,2) = %d", g.Hops(0, 2))
	}
	var got []byte
	tn.nodes[2].Stack.Handle(network.ProtoUDP, func(p []byte, _, _ network.Addr) { got = p })
	if err := tn.nodes[0].Stack.Send(network.ProtoUDP, []byte("relay me"), tn.nodes[2].Addr); err != nil {
		t.Fatal(err)
	}
	tn.sched.RunUntil(100 * time.Millisecond)
	if string(got) != "relay me" {
		t.Fatalf("end-to-end delivery failed: %q", got)
	}
	if tn.nodes[1].Stack.Forwarded != 1 {
		t.Fatalf("relay Forwarded = %d", tn.nodes[1].Stack.Forwarded)
	}
	if got := tn.nodes[2].Stack.HopsFrom(tn.nodes[0].Addr); got != 2 {
		t.Fatalf("HopsFrom = %d, want 2", got)
	}
	// An address outside the graph has no route: ErrNoRoute, not a
	// blind transmission.
	err := tn.nodes[0].Stack.Send(network.ProtoUDP, []byte("x"), network.HostAddr(99))
	if err == nil {
		t.Fatal("send to routeless destination succeeded")
	}
}

// dsdvNet wires a DSDV instance per station.
func dsdvNet(tn *testNet, cfg DSDVConfig) []*DSDV {
	routers := make([]*DSDV, len(tn.nodes))
	for i := range tn.nodes {
		routers[i] = New(tn.sched, tn.src, tn.nodes[i], tn.nodes, cfg)
	}
	for _, r := range routers {
		r.Start()
	}
	return routers
}

// TestDSDVConvergesOnChain proves the protocol discovers a 4-station
// string end to end: every station obtains a route to every other, with
// the right metrics, and data then flows over multiple hops.
func TestDSDVConvergesOnChain(t *testing.T) {
	prof := phy.DefaultProfile()
	prof.Fading.SigmaDB = 0 // clean channel: convergence logic in isolation
	tn := newTestNet(1, prof, phy.Pos(0, 0), phy.Pos(20, 0), phy.Pos(40, 0), phy.Pos(60, 0))
	thr := prof.SensitivityDBm[phy.Rate11.Index()]
	routers := dsdvNet(tn, DSDVConfig{MinNeighborDBm: thr})
	tn.sched.RunUntil(3 * time.Second)

	for i := range tn.nodes {
		for j := range tn.nodes {
			if i == j {
				continue
			}
			want := j - i
			if want < 0 {
				want = -want
			}
			_, metric, ok := routers[i].Route(tn.nodes[j].Addr)
			if !ok || metric != want {
				t.Fatalf("station %d route to %d: ok=%v metric=%d, want %d", i, j, ok, metric, want)
			}
		}
	}

	var got []byte
	tn.nodes[3].Stack.Handle(network.ProtoUDP, func(p []byte, _, _ network.Addr) { got = p })
	if err := tn.nodes[0].Stack.Send(network.ProtoUDP, []byte("over the air routes"), tn.nodes[3].Addr); err != nil {
		t.Fatal(err)
	}
	tn.sched.RunUntil(tn.sched.Now() + 100*time.Millisecond)
	if string(got) != "over the air routes" {
		t.Fatalf("delivery over DSDV routes failed: %q", got)
	}
	if got := tn.nodes[3].Stack.HopsFrom(tn.nodes[0].Addr); got != 3 {
		t.Fatalf("HopsFrom = %d, want 3", got)
	}
	if routers[0].Counters.ControlBytes == 0 {
		t.Fatal("no control overhead accounted")
	}
}

// TestDSDVLinkBreakRecovery proves the protocol reroutes after a
// mid-run link break: the source reaches the destination through the
// only relay until that relay walks away (and two replacement relays
// walk in), after which the MAC's transmit failures break the stale
// route and the replacement path takes over.
func TestDSDVLinkBreakRecovery(t *testing.T) {
	prof := phy.DefaultProfile()
	prof.Fading.SigmaDB = 0
	tn := newTestNet(1, prof,
		phy.Pos(0, 0),     // 0: source
		phy.Pos(20, 0),    // 1: the only relay at first (walks away mid-run)
		phy.Pos(40, 0),    // 2: destination
		phy.Pos(10, 5000), // 3: replacement relay, staged out of range
		phy.Pos(30, 5000), // 4: replacement relay, staged out of range
	)
	src, relay, dst := 0, 1, 2
	thr := prof.SensitivityDBm[phy.Rate11.Index()]
	routers := dsdvNet(tn, DSDVConfig{MinNeighborDBm: thr})

	delivered := 0
	tn.nodes[dst].Stack.Handle(network.ProtoUDP, func(p []byte, _, _ network.Addr) { delivered++ })
	// Paced data source: one packet every 20 ms for the whole run.
	var tick func()
	tick = func() {
		_ = tn.nodes[src].Stack.Send(network.ProtoUDP, []byte("payload"), tn.nodes[dst].Addr)
		tn.sched.After(20*time.Millisecond, tick)
	}
	tn.sched.After(0, tick)

	// Let the network converge and carry traffic on the only path.
	tn.sched.RunUntil(3 * time.Second)
	if delivered == 0 {
		t.Fatal("no delivery before the break")
	}
	if via, _, ok := routers[src].Route(tn.nodes[dst].Addr); !ok || via != tn.nodes[relay].Addr {
		t.Fatalf("pre-break route = %v (ok=%v), want via relay %v", via, ok, tn.nodes[relay].Addr)
	}
	before := delivered

	// The relay walks out of range — the source's data frames go
	// unacknowledged and its MAC reports transmit failures — while two
	// replacement relays walk into a 0–3–4–2 string.
	tn.radios[relay].SetPos(phy.Pos(20, 5000))
	tn.radios[3].SetPos(phy.Pos(10, 17))
	tn.radios[4].SetPos(phy.Pos(30, 17))
	tn.sched.RunUntil(10 * time.Second)

	if routers[src].Counters.LinkBreaks == 0 {
		t.Fatal("source never declared the link broken")
	}
	if via, _, ok := routers[src].Route(tn.nodes[dst].Addr); !ok {
		t.Fatal("route never recovered after the break")
	} else if via == tn.nodes[relay].Addr {
		t.Fatalf("route still via the departed relay %v", via)
	}
	if delivered <= before {
		t.Fatalf("no traffic delivered after the break: before=%d after=%d", before, delivered)
	}
	if routers[src].Counters.ControlBytes == 0 {
		t.Fatal("no control overhead accounted")
	}
}

// TestDSDVResetMatchesFresh proves Reset returns a router network to a
// state that evolves identically to a freshly built one — the property
// scenario arena reuse depends on.
func TestDSDVResetMatchesFresh(t *testing.T) {
	prof := phy.DefaultProfile()
	run := func(tn *testNet, routers []*DSDV) []uint64 {
		tn.sched.RunUntil(tn.sched.Now() + 2*time.Second)
		var sig []uint64
		for _, r := range routers {
			sig = append(sig, r.Counters.AdvertsSent, r.Counters.ControlBytes, r.Counters.RouteChanges)
		}
		return sig
	}
	pos := []phy.Position{phy.Pos(0, 0), phy.Pos(20, 0), phy.Pos(40, 0)}

	fresh := newTestNet(7, prof, pos...)
	thr := prof.SensitivityDBm[phy.Rate11.Index()]
	a := run(fresh, dsdvNet(fresh, DSDVConfig{MinNeighborDBm: thr}))

	// Same seed, but run once at a different seed first, then Reset.
	reused := newTestNet(3, prof, pos...)
	routers := dsdvNet(reused, DSDVConfig{MinNeighborDBm: thr})
	run(reused, routers)
	reused.sched.Reset()
	reused.src.Reseed(7)
	reused.med.Reset()
	for i := range reused.nodes {
		reused.radios[i].Reset(pos[i])
		reused.macs[i].Reset(reused.src)
		reused.nodes[i].Stack.Reset()
	}
	for _, r := range routers {
		r.Reset()
	}
	b := run(reused, routers)

	if len(a) != len(b) {
		t.Fatalf("signature lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reset run diverged from fresh at %d: %v vs %v", i, a, b)
		}
	}
}
