package sim

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Source derives independent, named random streams from a single root
// seed. Each subsystem asks for its own stream ("mac.backoff.3",
// "fading", "app.cbr.1", ...) so that adding randomness to one subsystem
// never perturbs the draws seen by another — experiments stay comparable
// across code changes.
type Source struct {
	seed uint64
}

// NewSource returns a stream factory rooted at seed.
func NewSource(seed uint64) *Source { return &Source{seed: seed} }

// Seed returns the root seed.
func (s *Source) Seed() uint64 { return s.seed }

// Reseed re-roots the source at a new seed, the arena-reuse equivalent
// of constructing a fresh Source. Hash-based draws (Hash64, HashNorm)
// pick up the new seed immediately; streams handed out by Stream were
// seeded from the old root and stay on it, so every holder of a derived
// stream must re-derive it after Reseed (the per-subsystem Reset
// methods do).
func (s *Source) Reseed(seed uint64) { s.seed = seed }

// Stream returns a deterministic pseudo-random stream named name.
// Streams with distinct names are statistically independent; calling
// Stream twice with the same name returns identically-seeded (but
// separate) streams.
func (s *Source) Stream(name string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(name))
	mixed := splitmix64(s.seed ^ h.Sum64())
	return rand.New(rand.NewSource(int64(mixed)))
}

// Hash64 deterministically mixes the root seed with the given words.
// It is the basis for stateless stochastic processes such as per-link
// block fading, where the value for (link, epoch) must be reproducible
// without storing history.
func (s *Source) Hash64(words ...uint64) uint64 {
	x := s.seed
	for _, w := range words {
		x = splitmix64(x ^ w)
	}
	return splitmix64(x)
}

// HashFloat01 maps Hash64 output to a uniform float64 in [0,1).
func (s *Source) HashFloat01(words ...uint64) float64 {
	return float64(s.Hash64(words...)>>11) / (1 << 53)
}

// HashNorm returns a standard normal deviate that is a pure function of
// (seed, words): the Box-Muller transform applied to two hashed uniforms.
func (s *Source) HashNorm(words ...uint64) float64 {
	u1 := s.HashFloat01(append(words, 0x9e3779b97f4a7c15)...)
	u2 := s.HashFloat01(append(words, 0xbf58476d1ce4e5b9)...)
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// splitmix64 is the SplitMix64 finalizer: a fast, well-mixed 64-bit hash
// used to decorrelate derived seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
