package sim

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Source derives independent, named random streams from a single root
// seed. Each subsystem asks for its own stream ("mac.backoff.3",
// "fading", "app.cbr.1", ...) so that adding randomness to one subsystem
// never perturbs the draws seen by another — experiments stay comparable
// across code changes.
type Source struct {
	seed uint64
}

// NewSource returns a stream factory rooted at seed.
func NewSource(seed uint64) *Source { return &Source{seed: seed} }

// Seed returns the root seed.
func (s *Source) Seed() uint64 { return s.seed }

// Reseed re-roots the source at a new seed, the arena-reuse equivalent
// of constructing a fresh Source. Hash-based draws (Hash64, HashNorm)
// pick up the new seed immediately; streams handed out by Stream were
// seeded from the old root and stay on it, so every holder of a derived
// stream must re-derive it after Reseed (the per-subsystem Reset
// methods do).
func (s *Source) Reseed(seed uint64) { s.seed = seed }

// Stream returns a deterministic pseudo-random stream named name.
// Streams with distinct names are statistically independent; calling
// Stream twice with the same name returns identically-seeded (but
// separate) streams.
func (s *Source) Stream(name string) *rand.Rand {
	return s.StreamFor(KeyFor(name))
}

// A StreamKey is a stream name in pre-hashed form. Subsystems that
// re-derive their stream on every arena reset (one per station, every
// replication) hold the key from construction so the reset skips the
// name formatting and hashing.
type StreamKey uint64

// KeyFor returns the key naming name: StreamFor(KeyFor(name)) and
// Stream(name) yield identically-seeded streams.
func KeyFor(name string) StreamKey {
	h := fnv.New64a()
	h.Write([]byte(name))
	return StreamKey(h.Sum64())
}

// StreamFor returns the stream named by k.
func (s *Source) StreamFor(k StreamKey) *rand.Rand {
	return rand.New(&lazySource{seed: s.streamSeed(k)})
}

// ReseedStream re-roots r — previously returned by Stream or StreamFor
// — to the stream named by k under the source's current root seed: the
// allocation-free equivalent of replacing r with StreamFor(k).
func (s *Source) ReseedStream(r *rand.Rand, k StreamKey) {
	r.Seed(s.streamSeed(k))
}

func (s *Source) streamSeed(k StreamKey) int64 {
	return int64(splitmix64(s.seed ^ uint64(k)))
}

// lazySource defers math/rand's generator seeding — an expensive
// many-hundred-word table initialization — until the stream's first
// draw. A city-scale network derives one backoff stream per station at
// build and again at every arena reset, but only the handful of
// stations that actually contend ever draw from theirs; eager seeding
// made that table fill the dominant cost of Build and Reset at 16k+
// stations. The wrapper forwards to the real generator, so a stream
// that is drawn from yields exactly the eager stream, bit for bit. It
// implements rand.Source64 just as the underlying generator does,
// keeping rand.Rand on the same internal code paths either way.
type lazySource struct {
	seed int64
	src  rand.Source64
}

func (l *lazySource) force() rand.Source64 {
	if l.src == nil {
		l.src = rand.NewSource(l.seed).(rand.Source64)
	}
	return l.src
}

func (l *lazySource) Int63() int64    { return l.force().Int63() }
func (l *lazySource) Uint64() uint64  { return l.force().Uint64() }
func (l *lazySource) Seed(seed int64) { l.seed, l.src = seed, nil }

// Hash64 deterministically mixes the root seed with the given words.
// It is the basis for stateless stochastic processes such as per-link
// block fading, where the value for (link, epoch) must be reproducible
// without storing history.
func (s *Source) Hash64(words ...uint64) uint64 {
	x := s.seed
	for _, w := range words {
		x = splitmix64(x ^ w)
	}
	return splitmix64(x)
}

// HashFloat01 maps Hash64 output to a uniform float64 in [0,1).
func (s *Source) HashFloat01(words ...uint64) float64 {
	return float64(s.Hash64(words...)>>11) / (1 << 53)
}

// HashNorm returns a standard normal deviate that is a pure function of
// (seed, words): the Box-Muller transform applied to two hashed uniforms.
// The two uniforms are Hash64(words..., C1) and Hash64(words..., C2) for
// two mixing constants; the shared words prefix of the chain is folded
// once and extended per constant, which is arithmetic-identical to the
// two full Hash64 calls while keeping the variadic slice on the stack —
// this runs once per (link, fade-epoch) on the medium's hot path, where
// an append-per-call heap allocation used to dominate the profile.
func (s *Source) HashNorm(words ...uint64) float64 {
	x := s.seed
	for _, w := range words {
		x = splitmix64(x ^ w)
	}
	u1 := float64(splitmix64(splitmix64(x^0x9e3779b97f4a7c15))>>11) / (1 << 53)
	u2 := float64(splitmix64(splitmix64(x^0xbf58476d1ce4e5b9))>>11) / (1 << 53)
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// splitmix64 is the SplitMix64 finalizer: a fast, well-mixed 64-bit hash
// used to decorrelate derived seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
