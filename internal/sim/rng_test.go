package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStreamDeterminism(t *testing.T) {
	a := NewSource(42).Stream("mac.backoff")
	b := NewSource(42).Stream("mac.backoff")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("identically named streams diverged")
		}
	}
}

func TestStreamIndependence(t *testing.T) {
	src := NewSource(42)
	a := src.Stream("a")
	b := src.Stream("b")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different names produced %d identical draws", same)
	}
}

func TestSeedChangesStreams(t *testing.T) {
	a := NewSource(1).Stream("x")
	b := NewSource(2).Stream("x")
	if a.Uint64() == b.Uint64() {
		t.Fatal("different seeds produced identical first draw")
	}
}

func TestHash64Deterministic(t *testing.T) {
	s := NewSource(7)
	if s.Hash64(1, 2, 3) != s.Hash64(1, 2, 3) {
		t.Fatal("Hash64 not deterministic")
	}
	if s.Hash64(1, 2, 3) == s.Hash64(3, 2, 1) {
		t.Fatal("Hash64 ignores word order")
	}
}

func TestHashFloat01Range(t *testing.T) {
	s := NewSource(7)
	f := func(a, b uint64) bool {
		v := s.HashFloat01(a, b)
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: HashNorm produces values with approximately standard-normal
// moments when aggregated over many inputs.
func TestHashNormMoments(t *testing.T) {
	s := NewSource(123)
	const n = 20000
	var sum, sumSq float64
	for i := uint64(0); i < n; i++ {
		v := s.HashNorm(i)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("mean = %f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("variance = %f, want ~1", variance)
	}
}

func TestHashNormDeterministic(t *testing.T) {
	s := NewSource(9)
	if s.HashNorm(5, 6) != s.HashNorm(5, 6) {
		t.Fatal("HashNorm not deterministic")
	}
}

func TestHashFloat01Uniformity(t *testing.T) {
	s := NewSource(99)
	const n = 10000
	buckets := make([]int, 10)
	for i := uint64(0); i < n; i++ {
		buckets[int(s.HashFloat01(i)*10)]++
	}
	for i, c := range buckets {
		if c < n/10-300 || c > n/10+300 {
			t.Fatalf("bucket %d has %d entries, want ~%d", i, c, n/10)
		}
	}
}
