package sim

import (
	"math/rand"
	"testing"
	"time"
)

// The calendar backend's correctness claim is total: both backends pop
// the unique least entry of the same (at, sub, seq) order, so any
// script of scheduler operations must produce the identical fire
// sequence and Fired() count. The tests here drive that claim with a
// byte-coded op interpreter shared by a seeded property test and a fuzz
// target: every byte stream is a program of At/After/Cancel/Reschedule/
// InjectAt/Step/RunUntil/Reset operations (including callbacks that
// schedule follow-up chains mid-Step, the case that exercises inserts
// into the bucket the wheel cursor is standing on).

// fireRec is one fired event in a script run: the clock it fired at and
// the unique id its schedule op minted.
type fireRec struct {
	at time.Duration
	id int
}

// scriptEnv is the mutable state of one interpreted run.
type scriptEnv struct {
	s     *Scheduler
	trace []fireRec
	live  []Event
	id    int
}

// chainAction is a pooled self-rescheduling action: each firing records
// itself and re-arms gap later, hops times. It exercises AtAction and
// scheduling from inside Step.
type chainAction struct {
	env  *scriptEnv
	id   int
	hops int
	gap  time.Duration
}

func (a *chainAction) Act() {
	a.env.trace = append(a.env.trace, fireRec{at: a.env.s.Now(), id: a.id})
	if a.hops > 0 {
		a.hops--
		a.env.s.AfterAction(a.gap, a)
	}
}

// interpretOps runs one byte-coded script against a fresh scheduler of
// the given kind and returns the fire trace and final Fired() count.
// Every branch and operand derives only from the byte stream and the
// scheduler's (deterministic) observable state, so two backends fed the
// same bytes execute the same op sequence.
func interpretOps(kind Kind, data []byte) ([]fireRec, uint64) {
	env := &scriptEnv{s: NewScheduler()}
	env.s.SetKind(kind)
	s := env.s
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}
	u16 := func() time.Duration {
		return time.Duration(uint64(next()) | uint64(next())<<8)
	}
	record := func(id int) func() {
		return func() { env.trace = append(env.trace, fireRec{at: s.Now(), id: id}) }
	}
	for pos < len(data) {
		switch next() % 12 {
		case 0, 1, 2: // near-future closure
			id := env.id
			env.id++
			env.live = append(env.live, s.At(s.Now()+u16()*time.Microsecond, record(id)))
		case 3: // far future: lands in the calendar's overflow band
			id := env.id
			env.id++
			env.live = append(env.live, s.After(u16()*10*time.Millisecond, record(id)))
		case 4: // same-instant tie (FIFO order must hold)
			id := env.id
			env.id++
			env.live = append(env.live, s.At(s.Now(), record(id)))
		case 5: // pooled self-rescheduling chain
			a := &chainAction{env: env, id: env.id, hops: int(next() % 5), gap: (1 + u16()) * time.Microsecond}
			env.id++
			env.live = append(env.live, s.AfterAction(u16()*time.Microsecond, a))
		case 6: // cancel a random outstanding handle (possibly stale)
			if len(env.live) > 0 {
				s.Cancel(env.live[int(u16())%len(env.live)])
			}
		case 7: // reschedule a random outstanding handle
			if len(env.live) > 0 {
				i := int(u16()) % len(env.live)
				id := env.id
				env.id++
				env.live[i] = s.Reschedule(env.live[i], s.Now()+u16()*time.Microsecond, record(id))
			}
		case 8: // inject an inter-region message (sub carries sentAt)
			id := env.id
			env.id++
			at := s.Now() + u16()*time.Microsecond
			back := u16() * time.Microsecond
			sentAt := s.Now() - back
			if sentAt < 0 {
				sentAt = 0
			}
			s.InjectAt(at, sentAt, &chainAction{env: env, id: id})
		case 9: // step a few events
			for i := byte(0); i < next()%8; i++ {
				s.Step()
			}
		case 10: // run a bounded horizon
			s.RunUntil(s.Now() + u16()*time.Microsecond)
		case 11: // occasional full reset mid-script
			if next()%4 == 0 {
				s.Reset()
				env.live = env.live[:0]
			}
		}
	}
	for i := 0; i < 1<<20 && s.Step(); i++ {
	}
	return env.trace, s.Fired()
}

// diffTraces fails the test at the first divergence between two runs.
func diffTraces(t *testing.T, heap, cal []fireRec, heapFired, calFired uint64) {
	t.Helper()
	if heapFired != calFired {
		t.Errorf("Fired(): heap %d, calendar %d", heapFired, calFired)
	}
	n := len(heap)
	if len(cal) != n {
		t.Errorf("trace length: heap %d, calendar %d", n, len(cal))
		if len(cal) < n {
			n = len(cal)
		}
	}
	for i := 0; i < n; i++ {
		if heap[i] != cal[i] {
			t.Fatalf("fire %d: heap (%v, id %d), calendar (%v, id %d)",
				i, heap[i].at, heap[i].id, cal[i].at, cal[i].id)
		}
	}
}

// TestCalendarMatchesHeap is the cross-backend property test: random
// op scripts, identical fire order and Fired() counts on both backends.
func TestCalendarMatchesHeap(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, 200+rng.Intn(2000))
		rng.Read(data)
		heapTrace, heapFired := interpretOps(KindHeap, data)
		calTrace, calFired := interpretOps(KindCalendar, data)
		diffTraces(t, heapTrace, calTrace, heapFired, calFired)
		if t.Failed() {
			t.Fatalf("seed %d diverged", seed)
		}
	}
}

// FuzzCalendarHeapEquivalence lets the fuzzer search for an op script
// on which the backends disagree.
func FuzzCalendarHeapEquivalence(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0xff, 9, 3, 3, 0xa0, 0x0f, 10, 0xff, 0xff})
	f.Add([]byte{3, 0xff, 0xff, 3, 0x10, 0x00, 11, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	rng := rand.New(rand.NewSource(7))
	seedScript := make([]byte, 512)
	rng.Read(seedScript)
	f.Add(seedScript)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<14 {
			t.Skip("script too long")
		}
		heapTrace, heapFired := interpretOps(KindHeap, data)
		calTrace, calFired := interpretOps(KindCalendar, data)
		diffTraces(t, heapTrace, calTrace, heapFired, calFired)
	})
}

// TestCalendarOverflowBand pins the band path directly: events far
// beyond any initial wheel window must still fire in time order, with
// cancels honored, across a wheel re-base per idle gap.
func TestCalendarOverflowBand(t *testing.T) {
	s := NewScheduler()
	s.SetKind(KindCalendar)
	var got []time.Duration
	times := []time.Duration{
		7 * time.Hour, 3 * time.Second, 50 * time.Millisecond,
		2 * time.Hour, time.Microsecond, 9 * time.Minute,
	}
	var cancel Event
	for i, at := range times {
		at := at
		e := s.At(at, func() { got = append(got, at) })
		if i == 3 { // 2h entry: cancelled below
			cancel = e
		}
	}
	s.Cancel(cancel)
	s.Run()
	want := []time.Duration{time.Microsecond, 50 * time.Millisecond, 3 * time.Second, 9 * time.Minute, 7 * time.Hour}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("Len() = %d after drain", s.Len())
	}
}

// TestSetKindGuards pins the backend-switch contract: switching with
// events pending panics, switching an idle scheduler round-trips.
func TestSetKindGuards(t *testing.T) {
	s := NewScheduler()
	if s.Kind() != KindHeap {
		t.Fatalf("default kind = %v", s.Kind())
	}
	s.SetKind(KindCalendar)
	if s.Kind() != KindCalendar {
		t.Fatalf("kind after SetKind = %v", s.Kind())
	}
	s.After(time.Second, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("SetKind with pending events did not panic")
		}
	}()
	s.SetKind(KindHeap)
}

// TestParseKind pins the spec/CLI spellings.
func TestParseKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kind
		err  bool
	}{
		{"", KindHeap, false},
		{"heap", KindHeap, false},
		{"calendar", KindCalendar, false},
		{"ladder", 0, true},
	} {
		got, err := ParseKind(tc.in)
		if (err != nil) != tc.err || (!tc.err && got != tc.want) {
			t.Errorf("ParseKind(%q) = %v, %v", tc.in, got, err)
		}
	}
}

// TestCalendarReset checks that a reset calendar scheduler replays a
// fresh scheduler's run exactly, arena reuse included.
func TestCalendarReset(t *testing.T) {
	script := func(s *Scheduler) []fireRec {
		var trace []fireRec
		for i := 0; i < 200; i++ {
			i := i
			s.At(time.Duration(i%17)*time.Millisecond+time.Duration(i)*time.Microsecond,
				func() { trace = append(trace, fireRec{at: s.Now(), id: i}) })
		}
		s.Run()
		return trace
	}
	s := NewScheduler()
	s.SetKind(KindCalendar)
	first := script(s)
	s.Reset()
	second := script(s)
	if len(first) != len(second) {
		t.Fatalf("trace lengths differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("fire %d differs after Reset: %v vs %v", i, first[i], second[i])
		}
	}
}

// benchmarkSchedulerHold measures the steady-state pop/push cycle both
// backends spend their lives in: n pending timers, each firing and
// re-arming a pseudo-random small delay ahead.
func benchmarkSchedulerHold(b *testing.B, kind Kind, n int) {
	s := NewScheduler()
	s.SetKind(kind)
	rng := rand.New(rand.NewSource(1))
	var arm func()
	arm = func() {
		s.After(time.Duration(1+rng.Intn(2000))*time.Microsecond, arm)
	}
	for i := 0; i < n; i++ {
		arm()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkSchedulerHeap4k(b *testing.B)     { benchmarkSchedulerHold(b, KindHeap, 4096) }
func BenchmarkSchedulerCalendar4k(b *testing.B) { benchmarkSchedulerHold(b, KindCalendar, 4096) }
func BenchmarkSchedulerHeap64k(b *testing.B)    { benchmarkSchedulerHold(b, KindHeap, 65536) }
func BenchmarkSchedulerCalendar64k(b *testing.B) {
	benchmarkSchedulerHold(b, KindCalendar, 65536)
}
