package sim

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"time"
)

// This file is the scheduler's calendar-queue backend: a circular
// bucketed time wheel (Brown's calendar queue, CACM 1988, with the
// ladder-queue refinement of a separate sorted far-future band) that
// replaces the 4-ary heap's O(log n) sift with O(1) bucket filing for
// the near-future events that dominate a saturated MAC simulation. The
// heap remains the reference backend; both share the slot arena, Event
// handles, and the (at, sub, seq) total order, so fire order is
// provably identical — the cross-backend property and fuzz tests in
// calendar_test.go insist.
//
// Layout. The wheel is a ring of len(buckets) spans of width each; an
// event within one full lap of the clock files into bucket
// (at/width) mod len(buckets), unsorted within the bucket. Events a
// lap or more ahead go to the overflow band, a single slice kept
// sorted by the scheduler's total order. The one-lap admission rule
// makes each bucket hold events of a single lap, so walking the ring
// forward from the clock's bucket visits events in non-decreasing
// time order: the earliest pending event is the least entry (by less)
// of the first non-empty bucket, and the band never has to be
// consulted while the ring holds anything. The band's due prefix
// migrates into the ring lazily, whenever findMin notices the band
// head has come within a lap.
//
// The forward scan is sound for events scheduled mid-Step: a new event
// is never earlier than now, hence never files into a ring position
// the scan for the current minimum has already passed.
//
// Adaptation. The width tracks an exponentially-weighted average of
// inter-dequeue gaps (the classic calendar-queue sampling problem,
// solved here by measuring the realized event rate instead of sampling
// the queue): the target is width = 4 * avgGap, so consecutive events
// land a fraction of a bucket apart and a bucket holds a handful of
// events. The bucket count doubles when the pending count outgrows two
// events per bucket and halves when it falls under a quarter; the
// width is re-applied on those resizes and — because a long-running
// simulation can drift far from the width its first resize froze —
// re-checked every calAdaptPops dequeues, re-filing the wheel when it
// is more than 2x off target. All triggers read simulated-time state
// only, so the structure (not just the fire order) is deterministic
// for a given event sequence.

const (
	// calMinBuckets is the smallest ring; shrinks stop here.
	calMinBuckets = 64
	// calDefaultWidth seeds the ring before any dequeue-gap statistics
	// exist; the first resize or staleness check replaces it.
	calDefaultWidth = time.Millisecond
	// calMaxWidth caps adaptation so lap arithmetic stays far from
	// overflowing time.Duration even on huge rings.
	calMaxWidth = time.Hour
	// calAdaptPops is how many dequeues pass between width staleness
	// checks in steady state: rare enough to amortize the O(n) re-file
	// a correction costs, frequent enough that a workload shift is
	// caught within a fraction of a run. The first checks after
	// construction or Reset come sooner (calFirstAdapt, doubling up to
	// the steady cadence) so a run does not spend its opening stretch
	// on the seed width.
	calAdaptPops  = 1024
	calFirstAdapt = 32

	// calOverflow in slot.bucket marks an event parked in the overflow
	// band; its heapIdx is the band position. calNowhere marks a slot
	// not filed anywhere (heap backend, or released).
	calOverflow = -2
	calNowhere  = -1
)

// calendar is the bucketed-wheel state hanging off a Scheduler when the
// calendar backend is selected. Entries are the same heapEntry values
// the heap backend uses; slot.bucket/slot.heapIdx locate an entry for
// Cancel exactly as heapIdx alone does for the heap.
type calendar struct {
	// buckets and occ are the ACTIVE ring: prefixes of bucketStore and
	// occStore, which hold the high-water storage so a ring that
	// oscillates between sizes (bursty workloads cross the grow/shrink
	// thresholds repeatedly) re-files into warmed slices instead of
	// reallocating every bucket each time. heapEntry is scalar-only, so
	// the retained tails pin no heap objects.
	buckets     [][]heapEntry
	occ         []uint64 // occupancy bitmap: bit b set iff buckets[b] is non-empty
	bucketStore [][]heapEntry
	occStore    []uint64
	overflow    []heapEntry // sorted ascending by less
	scratch     []heapEntry // resize staging; retained so re-files stop allocating
	width    time.Duration // bucket span; changes only on a full re-file
	lap      time.Duration // width * len(buckets), saturated
	inRing   int
	avgGap   time.Duration // windowed mean inter-dequeue gap
	anchorAt time.Duration // window start: the dequeue timestamp pops ago
	popped   bool          // any dequeue since Reset (anchors the window)
	pops     int           // dequeues since anchorAt
	adaptAt  int           // window length that triggers the next check
}

func newCalendar() *calendar {
	c := &calendar{
		bucketStore: make([][]heapEntry, calMinBuckets),
		occStore:    make([]uint64, calMinBuckets/64),
		width:       calDefaultWidth,
		adaptAt:     calFirstAdapt,
	}
	c.buckets = c.bucketStore
	c.occ = c.occStore
	c.setLap()
	return c
}

// The ring size is always a power of two no smaller than calMinBuckets
// (resize doubles or halves), so the occupancy bitmap is always a whole
// number of 64-bit words and bucket→(word, bit) is a shift and a mask.

func (c *calendar) occSet(b int)   { c.occ[b>>6] |= 1 << (uint(b) & 63) }
func (c *calendar) occClear(b int) { c.occ[b>>6] &^= 1 << (uint(b) & 63) }

// nextOccupied returns the first non-empty bucket at or after b, wrapping
// past the ring's end — the bitmap form of findMin's forward scan. The
// caller guarantees the ring holds at least one entry. Bursty schedules
// leave long runs of empty buckets between occupied ones (an idle gap of
// g buckets used to cost a g-step walk per dequeue); the bitmap crosses
// 64 buckets per word probe.
func (c *calendar) nextOccupied(b int) int {
	w := b >> 6
	if word := c.occ[w] >> (uint(b) & 63); word != 0 {
		return b + bits.TrailingZeros64(word)
	}
	nw := len(c.occ)
	for i := 1; i <= nw; i++ {
		idx := w + i
		if idx >= nw {
			idx -= nw
		}
		if word := c.occ[idx]; word != 0 {
			return idx<<6 + bits.TrailingZeros64(word)
		}
	}
	panic("sim: calendar ring accounting corrupt")
}

// setLap recomputes the ring's one-lap span, saturating instead of
// overflowing the Duration range.
func (c *calendar) setLap() {
	n := time.Duration(len(c.buckets))
	if c.width > math.MaxInt64/n {
		c.lap = math.MaxInt64
		return
	}
	c.lap = c.width * n
}

// horizon returns the exclusive admission bound for the ring: events
// before it are within one lap of now and file into buckets, events at
// or beyond it park in the overflow band.
func (c *calendar) horizon(now time.Duration) time.Duration {
	base := (now / c.width) * c.width
	if base > math.MaxInt64-c.lap {
		return math.MaxInt64
	}
	return base + c.lap
}

// count returns the pending-event total across ring and band.
func (c *calendar) count() int { return c.inRing + len(c.overflow) }

// insert files a new entry, growing the ring first when the pending
// count has outgrown it.
func (c *calendar) insert(s *Scheduler, e heapEntry) {
	if c.count() >= 2*len(c.buckets) {
		c.resize(s, 2*len(c.buckets))
	}
	c.place(s, e, c.horizon(s.now))
}

// place files an entry into its ring bucket, or into the sorted
// overflow band when it lies at or beyond the admission horizon.
func (c *calendar) place(s *Scheduler, e heapEntry, horizon time.Duration) {
	if e.at < horizon {
		b := int((e.at / c.width) % time.Duration(len(c.buckets)))
		sl := &s.slots[e.idx]
		sl.bucket = int32(b)
		sl.heapIdx = int32(len(c.buckets[b]))
		if len(c.buckets[b]) == 0 {
			c.occSet(b)
		}
		c.buckets[b] = append(c.buckets[b], e)
		c.inRing++
		return
	}
	pos := sort.Search(len(c.overflow), func(i int) bool { return less(e, c.overflow[i]) })
	c.overflow = append(c.overflow, heapEntry{})
	copy(c.overflow[pos+1:], c.overflow[pos:])
	c.overflow[pos] = e
	s.slots[e.idx].bucket = calOverflow
	for i := pos; i < len(c.overflow); i++ {
		s.slots[c.overflow[i].idx].heapIdx = int32(i)
	}
}

// remove unfiles a pending entry (Cancel's backend half). The slot's
// bucket/heapIdx say where it is; the caller releases the slot.
func (c *calendar) remove(s *Scheduler, idx int32) {
	sl := &s.slots[idx]
	pos := int(sl.heapIdx)
	if sl.bucket == calOverflow {
		c.overflowRemove(s, pos)
		return
	}
	b := c.buckets[sl.bucket]
	last := len(b) - 1
	if pos != last {
		b[pos] = b[last]
		s.slots[b[pos].idx].heapIdx = int32(pos)
	}
	c.buckets[sl.bucket] = b[:last]
	if last == 0 {
		c.occClear(int(sl.bucket))
	}
	c.inRing--
}

// overflowRemove deletes the band entry at pos, keeping the band sorted
// and the positions behind it in sync.
func (c *calendar) overflowRemove(s *Scheduler, pos int) {
	copy(c.overflow[pos:], c.overflow[pos+1:])
	c.overflow = c.overflow[:len(c.overflow)-1]
	for i := pos; i < len(c.overflow); i++ {
		s.slots[c.overflow[i].idx].heapIdx = int32(i)
	}
}

// migrate pulls the overflow band's due prefix — entries now within one
// lap of the clock — into the ring. O(1) when nothing is due.
func (c *calendar) migrate(s *Scheduler) {
	horizon := c.horizon(s.now)
	if len(c.overflow) == 0 || c.overflow[0].at >= horizon {
		return
	}
	n := sort.Search(len(c.overflow), func(i int) bool { return c.overflow[i].at >= horizon })
	for _, e := range c.overflow[:n] {
		c.place(s, e, horizon)
	}
	copy(c.overflow, c.overflow[n:])
	c.overflow = c.overflow[:len(c.overflow)-n]
	for i := range c.overflow {
		s.slots[c.overflow[i].idx].heapIdx = int32(i)
	}
}

// findMin locates the earliest pending entry without removing it:
// (bucket, position) within the ring, or bucket == calOverflow and
// position 0 for the band head (only when the ring is empty — a ring
// entry is always earlier than every band entry). It migrates due band
// entries first, a mutation that never changes which entry is least.
// Returns ok == false on an empty queue.
func (c *calendar) findMin(s *Scheduler) (int, int, bool) {
	c.migrate(s)
	if c.inRing == 0 {
		if len(c.overflow) == 0 {
			return 0, 0, false
		}
		// Band head more than a lap out (a long idle gap): it is the
		// minimum itself.
		return calOverflow, 0, true
	}
	b := c.nextOccupied(int((s.now / c.width) % time.Duration(len(c.buckets))))
	entries := c.buckets[b]
	best := 0
	for i := 1; i < len(entries); i++ {
		if less(entries[i], entries[best]) {
			best = i
		}
	}
	return b, best, true
}

// take removes the entry previously located by findMin and returns it.
func (c *calendar) take(s *Scheduler, bucket, pos int) heapEntry {
	if bucket == calOverflow {
		e := c.overflow[0]
		c.overflowRemove(s, 0)
		return e
	}
	b := c.buckets[bucket]
	e := b[pos]
	last := len(b) - 1
	if pos != last {
		b[pos] = b[last]
		s.slots[b[pos].idx].heapIdx = int32(pos)
	}
	c.buckets[bucket] = b[:last]
	if last == 0 {
		c.occClear(bucket)
	}
	c.inRing--
	return e
}

// noteGap feeds one dequeue into the width statistic, shrinks the ring
// when the pending count has fallen well under its capacity, and
// periodically corrects a stale width. The gap statistic is an exact
// windowed mean — simulated time elapsed over the window divided by
// the dequeues in it — rather than a per-gap EWMA: simulations bunch
// many events onto one instant (slot-aligned MAC timers), and a
// filter fed mostly zero gaps with occasional spikes oscillates hard
// enough to thrash the re-file trigger.
func (c *calendar) noteGap(s *Scheduler, at time.Duration) {
	if !c.popped {
		c.popped = true
		c.anchorAt = at
		c.pops = 0
		return
	}
	c.pops++
	if len(c.buckets) > calMinBuckets && c.count() < len(c.buckets)/4 {
		c.resize(s, len(c.buckets)/2)
		return
	}
	if c.pops >= c.adaptAt {
		c.avgGap = (at - c.anchorAt) / time.Duration(c.pops)
		c.anchorAt = at
		c.pops = 0
		if c.adaptAt < calAdaptPops {
			c.adaptAt *= 2
		}
		if w := c.targetWidth(); w > 2*c.width || 2*w < c.width {
			c.resize(s, len(c.buckets))
		}
	}
}

// targetWidth derives the adapted bucket width from the dequeue-gap
// average: wide enough that consecutive events rarely straddle many
// empty buckets, narrow enough that a bucket holds a handful of
// events.
func (c *calendar) targetWidth() time.Duration {
	w := 4 * c.avgGap
	if w <= 0 {
		return c.width
	}
	if w > calMaxWidth {
		return calMaxWidth
	}
	return w
}

// resize rebuilds the ring with n buckets and the adapted width,
// re-filing every pending entry. The entries are staged through a
// retained scratch buffer and the bucket/band slices keep their
// capacities whenever possible, so the width corrections a bursty
// workload triggers repeatedly re-file in place instead of reallocating
// the whole ring each time. Entries re-file in the same sequence the
// old code visited them (ring buckets in order, then the ascending
// band), so per-bucket entry order — and with it every downstream
// tie-break — is unchanged.
func (c *calendar) resize(s *Scheduler, n int) {
	if n < calMinBuckets {
		n = calMinBuckets
	}
	s.calResizes++
	sc := c.scratch[:0]
	for _, b := range c.buckets {
		sc = append(sc, b...)
	}
	sc = append(sc, c.overflow...)
	c.scratch = sc
	if n != len(c.buckets) {
		if n > len(c.bucketStore) {
			grown := make([][]heapEntry, n)
			copy(grown, c.bucketStore)
			c.bucketStore = grown
			c.occStore = make([]uint64, n/64)
		}
		c.buckets = c.bucketStore[:n]
		c.occ = c.occStore[:n/64]
	}
	for i := range c.buckets {
		c.buckets[i] = c.buckets[i][:0]
	}
	clear(c.occ)
	c.overflow = c.overflow[:0]
	c.inRing = 0
	c.width = c.targetWidth()
	c.setLap()
	horizon := c.horizon(s.now)
	for _, e := range sc {
		c.place(s, e, horizon)
	}
}

// reset empties the calendar back to its just-constructed shape while
// keeping bucket capacities, mirroring Scheduler.Reset's arena reuse.
func (c *calendar) reset() {
	for i := range c.buckets {
		c.buckets[i] = c.buckets[i][:0]
	}
	clear(c.occ)
	c.overflow = c.overflow[:0]
	c.width = calDefaultWidth
	c.setLap()
	c.inRing = 0
	c.avgGap = 0
	c.anchorAt = 0
	c.popped = false
	c.pops = 0
	c.adaptAt = calFirstAdapt
}

// Kind selects a Scheduler's queue backend.
type Kind uint8

const (
	// KindHeap is the 4-ary heap, the reference backend.
	KindHeap Kind = iota
	// KindCalendar is the calendar queue: O(1) near-future scheduling
	// with a sorted overflow band, for city-scale event populations.
	KindCalendar
)

// String returns the spec/CLI spelling of the kind.
func (k Kind) String() string {
	switch k {
	case KindHeap:
		return "heap"
	case KindCalendar:
		return "calendar"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// ParseKind parses the spec/CLI spelling of a scheduler backend.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "", "heap":
		return KindHeap, nil
	case "calendar":
		return KindCalendar, nil
	}
	return 0, fmt.Errorf("sim: unknown scheduler kind %q (want heap or calendar)", s)
}

// SetKind switches the scheduler's queue backend. Both backends share
// the slot arena, Event handles and the (at, sub, seq) total order, so
// runs are bit-identical either way — the calendar trades the heap's
// O(log n) sift for O(1) bucket filing on large event populations. The
// switch is only legal while the queue is empty (between runs, or
// right after construction/Reset); re-filing a live queue is not
// supported.
func (s *Scheduler) SetKind(k Kind) {
	if s.Len() != 0 {
		panic("sim: SetKind with events pending")
	}
	switch k {
	case KindHeap:
		s.cal = nil
	case KindCalendar:
		if s.cal == nil {
			s.cal = newCalendar()
		} else {
			s.cal.reset()
		}
	default:
		panic(fmt.Sprintf("sim: unknown scheduler kind %d", k))
	}
}

// Kind reports the scheduler's current queue backend.
func (s *Scheduler) Kind() Kind {
	if s.cal != nil {
		return KindCalendar
	}
	return KindHeap
}

// calStep is Step's calendar half: pop the least entry, advance the
// clock, run the callback.
func (s *Scheduler) calStep() bool {
	c := s.cal
	bucket, pos, ok := c.findMin(s)
	if !ok {
		return false
	}
	e := c.take(s, bucket, pos)
	sl := &s.slots[e.idx]
	s.now = e.at
	fn, act := sl.fn, sl.act
	c.noteGap(s, e.at)
	s.release(e.idx)
	s.fired++
	if fn != nil {
		fn()
	} else {
		act.Act()
	}
	return true
}

// calRunUntil is RunUntil's calendar half: one findMin per event (a
// PeekAt-then-Step loop would scan the ring twice per pop).
func (s *Scheduler) calRunUntil(t time.Duration) {
	c := s.cal
	for {
		bucket, pos, ok := c.findMin(s)
		if !ok {
			break
		}
		var at time.Duration
		if bucket == calOverflow {
			at = c.overflow[pos].at
		} else {
			at = c.buckets[bucket][pos].at
		}
		if at > t {
			break
		}
		e := c.take(s, bucket, pos)
		sl := &s.slots[e.idx]
		s.now = e.at
		fn, act := sl.fn, sl.act
		c.noteGap(s, e.at)
		s.release(e.idx)
		s.fired++
		if fn != nil {
			fn()
		} else {
			act.Act()
		}
	}
	s.now = t
}
