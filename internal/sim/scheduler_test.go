package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerZeroValueUsable(t *testing.T) {
	var s Scheduler
	fired := false
	s.After(time.Millisecond, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("event did not fire")
	}
	if got, want := s.Now(), time.Millisecond; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestSchedulerOrdersByTime(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.At(3*time.Millisecond, func() { order = append(order, 3) })
	s.At(1*time.Millisecond, func() { order = append(order, 1) })
	s.At(2*time.Millisecond, func() { order = append(order, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSchedulerFIFOTieBreak(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Millisecond, func() { order = append(order, i) })
	}
	s.Run()
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", order)
		}
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	e := s.After(time.Millisecond, func() { fired = true })
	if !e.Pending() {
		t.Fatal("event should be pending")
	}
	s.Cancel(e)
	if e.Pending() {
		t.Fatal("cancelled event still pending")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	s.Cancel(e)       // double cancel is a no-op
	s.Cancel(Event{}) // zero-value cancel is a no-op
}

func TestSchedulerCancelMiddleOfHeap(t *testing.T) {
	s := NewScheduler()
	var order []int
	var events []Event
	for i := 0; i < 20; i++ {
		i := i
		events = append(events, s.At(time.Duration(i)*time.Millisecond, func() { order = append(order, i) }))
	}
	// Cancel every third event.
	for i := 0; i < 20; i += 3 {
		s.Cancel(events[i])
	}
	s.Run()
	for _, v := range order {
		if v%3 == 0 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
	if len(order) != 13 {
		t.Fatalf("fired %d events, want 13", len(order))
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler()
	var fired []time.Duration
	for _, d := range []time.Duration{1, 2, 3, 4, 5} {
		d := d * time.Millisecond
		s.At(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(3 * time.Millisecond)
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3 (events at exactly the horizon must fire)", len(fired))
	}
	if s.Now() != 3*time.Millisecond {
		t.Fatalf("Now() = %v, want 3ms", s.Now())
	}
	s.RunUntil(10 * time.Millisecond)
	if len(fired) != 5 {
		t.Fatalf("fired %d events, want 5", len(fired))
	}
	if s.Now() != 10*time.Millisecond {
		t.Fatalf("Now() = %v, want 10ms (clock advances to horizon)", s.Now())
	}
}

func TestSchedulerPastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(time.Millisecond, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(0, func() {})
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 100 {
			s.After(time.Microsecond, rec)
		}
	}
	s.After(0, rec)
	s.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	// First call fires at t=0, the 100th at t=99µs.
	if got, want := s.Now(), 99*time.Microsecond; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestSchedulerReschedule(t *testing.T) {
	s := NewScheduler()
	count := 0
	e := s.At(time.Millisecond, func() { count++ })
	e = s.Reschedule(e, 2*time.Millisecond, func() { count += 10 })
	s.Run()
	if count != 10 {
		t.Fatalf("count = %d, want 10 (original must not fire)", count)
	}
	if e.Pending() {
		t.Fatal("event still pending after firing")
	}
}

// Property: for any random set of insertions and cancellations, the
// surviving events fire exactly once, in nondecreasing time order, with
// FIFO order within equal timestamps.
func TestSchedulerOrderingProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewScheduler()
		type rec struct {
			at  time.Duration
			seq int
		}
		var fired []rec
		var events []Event
		var expect []rec
		count := int(n%64) + 1
		for i := 0; i < count; i++ {
			at := time.Duration(rng.Intn(50)) * time.Millisecond
			i := i
			events = append(events, s.At(at, func() { fired = append(fired, rec{at, i}) }))
			expect = append(expect, rec{at, i})
		}
		cancelled := map[int]bool{}
		for i := 0; i < count/3; i++ {
			k := rng.Intn(count)
			s.Cancel(events[k])
			cancelled[k] = true
		}
		s.Run()
		var want []rec
		for _, r := range expect {
			if !cancelled[r.seq] {
				want = append(want, r)
			}
		}
		sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
		if len(fired) != len(want) {
			return false
		}
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestEventHandleSafeAcrossSlotReuse pins the generation-counter
// contract of the pooled arena: a handle to a fired event stays inert —
// not pending, cancel a no-op — even after its slot has been recycled
// for a newer event.
func TestEventHandleSafeAcrossSlotReuse(t *testing.T) {
	s := NewScheduler()
	stale := s.After(time.Millisecond, func() {})
	s.Run()
	if stale.Pending() {
		t.Fatal("fired event still pending")
	}
	// The next event must reuse the freed slot (single-slot arena).
	fresh := s.After(time.Millisecond, func() {})
	if !fresh.Pending() {
		t.Fatal("fresh event not pending")
	}
	if stale.Pending() {
		t.Fatal("stale handle reports the recycled slot's new event as its own")
	}
	s.Cancel(stale) // must not cancel fresh
	if !fresh.Pending() {
		t.Fatal("cancelling a stale handle killed the slot's new event")
	}
	fired := 0
	s.Reschedule(stale, s.Now()+time.Millisecond, func() { fired++ })
	s.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if got, want := fresh.At(), 2*time.Millisecond; got != want {
		t.Fatalf("fresh.At() = %v, want %v (handle keeps its own timestamp)", got, want)
	}
}

// countedAction is a pooled Action payload for the alloc-free tests.
type countedAction struct {
	s     *Scheduler
	left  int
	fired int
}

func (a *countedAction) Act() {
	a.fired++
	if a.left--; a.left > 0 {
		a.s.AfterAction(time.Microsecond, a)
	}
}

func TestSchedulerActions(t *testing.T) {
	s := NewScheduler()
	a := &countedAction{s: s, left: 50}
	e := s.AfterAction(time.Microsecond, a)
	if !e.Pending() {
		t.Fatal("action event not pending")
	}
	s.Run()
	if a.fired != 50 {
		t.Fatalf("action fired %d times, want 50", a.fired)
	}
	if got, want := s.Now(), 50*time.Microsecond; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

// TestSchedulerSteadyStateAllocFree pins the kernel's zero-alloc
// contract: once the arena and heap have warmed up, a
// schedule-action/fire cycle performs no heap allocation.
func TestSchedulerSteadyStateAllocFree(t *testing.T) {
	s := NewScheduler()
	a := &countedAction{s: s, left: 1 << 30}
	s.AfterAction(time.Microsecond, a)
	s.Step() // warm up: arena slot allocated, heap backing array grown
	allocs := testing.AllocsPerRun(1000, func() {
		s.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Step allocated %.1f times per event, want 0", allocs)
	}
}

func TestSchedulerFiredCounter(t *testing.T) {
	s := NewScheduler()
	for i := 0; i < 5; i++ {
		s.At(time.Duration(i)*time.Millisecond, func() {})
	}
	s.Run()
	if s.Fired() != 5 {
		t.Fatalf("Fired() = %d, want 5", s.Fired())
	}
	if s.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", s.Len())
	}
}

// TestSchedulerReset pins the arena-reuse contract: after Reset the
// scheduler behaves exactly like a fresh one (same firing order for the
// same schedule), pending events are gone, their handles are inert, and
// the counters restart from zero.
func TestSchedulerReset(t *testing.T) {
	run := func(s *Scheduler) []int {
		var order []int
		s.After(30*time.Millisecond, func() { order = append(order, 3) })
		s.After(10*time.Millisecond, func() { order = append(order, 1) })
		s.After(10*time.Millisecond, func() { order = append(order, 2) }) // FIFO tie
		s.RunUntil(time.Second)
		return order
	}

	s := NewScheduler()
	// Grow the arena with some churn, leave events pending, then reset.
	for i := 0; i < 100; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() {})
	}
	s.RunUntil(50 * time.Millisecond)
	stale := s.After(time.Hour, func() { t.Fatal("stale event fired after Reset") })
	s.Reset()

	if s.Now() != 0 || s.Len() != 0 || s.Fired() != 0 {
		t.Fatalf("after Reset: now=%v len=%d fired=%d, want all zero", s.Now(), s.Len(), s.Fired())
	}
	if stale.Pending() {
		t.Fatal("pre-Reset handle still pending")
	}
	s.Cancel(stale) // must be a harmless no-op

	got := run(s)
	want := run(NewScheduler())
	if len(got) != len(want) {
		t.Fatalf("reset scheduler fired %d events, fresh fired %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("firing order diverged at %d: reset=%v fresh=%v", i, got, want)
		}
	}
	if s.Fired() != uint64(len(want)) {
		t.Fatalf("Fired() = %d after reset run, want %d", s.Fired(), len(want))
	}
}
