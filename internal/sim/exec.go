package sim

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"adhocsim/internal/obs"
)

// Exec runs a set of region schedulers in parallel under a conservative
// bounded time window — the space-partitioned parallel mode of the
// event kernel. Each region owns one Scheduler (all events of the
// stations inside it); cross-region influence travels as timestamped
// messages (Send → Scheduler.InjectAt).
//
// # Protocol
//
// Execution proceeds in windows separated by barriers. Each window:
//
//  1. Prep (parallel over regions): drain the region's inbox, inject
//     every received message into its scheduler in canonical
//     (at, sentAt, source, send-sequence) order, and publish the
//     region's next pending event time L.
//
//  2. Barrier — the published L values now form a consistent snapshot.
//
//  3. Execute (parallel over regions): each region runs events strictly
//     earlier than its horizon
//
//     min over every other region R of (L(R) + md(R, self))
//
//     where md is the all-pairs shortest-path closure of the
//     caller-supplied pairwise minimum influence delays
//     (phy.MinPropagationDelay over the regions' separation, for the
//     medium's partition), with md(R, R) the shortest delay cycle
//     through R. The region's own reflected influence is bounded
//     dynamically instead: each message it sends to region k with
//     timestamp a caps its window at a + md(k, self), since anything
//     the region does to itself must route through a send it actually
//     made. Until it sends, it owes nothing to itself and may burn
//     through its serial event stream — the difference between a
//     window advancing one event cluster and a window advancing a
//     whole inter-transmission stretch. Messages generated here are
//     appended to the destination inboxes for the next window's prep.
//
//  4. Barrier, and back to 1. The run ends when the global minimum of
//     the L values passes the run horizon.
//
// Safety: mid-window causation is purely local (messages wait for the
// next prep), so every event executed anywhere descends from an event
// that was pending in its own region at the snapshot. A message
// arriving at region i therefore closes an influence chain rooted
// either at some other region j's pending event at time ≥ L(j) — and
// every link of the chain costs at least its pairwise delay, so the
// message's timestamp is at least L(j) + md(j, i) ≥ horizon(i) — or at
// region i itself, in which case the chain's first cross-region hop is
// a message i actually sent, say to region k with timestamp a, and the
// return path costs at least md(k, i): the dynamic cap a + md(k, i)
// bounds exactly that. The dynamic cap is sound wherever the static
// self term L(i) + md(i, i) was (a ≥ L(i) + md(i, k), so the cap never
// drops below it) while being dramatically wider between sends — the
// static term capped every busy region at one closure-cycle (~2 µs)
// per window, which made windows one event cluster wide.
//
// The snapshot-at-a-barrier structure matters as much as the closure:
// horizons derived from asynchronously-published clocks can tear
// (region A's clock read before a message lowered it, region B's read
// after it advanced past the send), which lets a region run ahead of
// mail already addressed to it.
//
// # Determinism
//
// The executed event sequence of every region — and therefore every
// simulation result — is a pure function of the initial events and the
// message timestamps, independent of worker count and wall-clock
// interleaving: the window boundaries depend only on the L snapshot,
// which is itself deterministic, and each prep sorts its batch into the
// canonical order before injection, erasing arrival interleaving. The
// equivalence suite in internal/scenario pins this worker-count
// invariance bit-for-bit.
//
// # Termination
//
// Run(until) executes everything at or before until (matching
// Scheduler.RunUntil semantics, including events at exactly until) and
// leaves every region clock at exactly until. Messages timestamped
// after until still inject — they stay pending in their destination
// scheduler, and a later Run executes them, exactly as the sequential
// kernel carries directly-scheduled events across RunUntil slices (the
// CLI's -progress mode runs the horizon in 100 such slices).
type Exec struct {
	regions []*execRegion
	// md[from*len(regions)+to] is the minimum simulated time for
	// influence to travel between the two regions along ANY chain of
	// cross-region hops — the shortest-path closure of the pairwise
	// delays, in nanoseconds. Diagonal entries hold the shortest cycle
	// back to the region (the reflected-influence bound).
	md         []int64
	workers    int
	sequential bool
	until      time.Duration
	windowsRun uint64
	hooks      ExecObs
}

// ExecObs holds the executor's optional out-of-band timing hooks. The
// histograms are updated with single atomic adds and never read by the
// protocol, so enabling them cannot change a result; nil histograms
// cost one branch per window (wall) or per barrier crossing (wait).
type ExecObs struct {
	// WindowWall receives worker 0's wall-clock nanoseconds per full
	// window iteration (prep + barrier + execute + barrier).
	WindowWall *obs.Histogram
	// BarrierWait receives every worker's wall-clock nanoseconds spent
	// inside each barrier crossing — the direct measure of load
	// imbalance (idle workers wait; the straggler doesn't).
	BarrierWait *obs.Histogram
}

// SetObs installs the executor's timing hooks. Call between Runs only.
func (e *Exec) SetObs(h ExecObs) { e.hooks = h }

// execRegion is one region's execution state.
type execRegion struct {
	sched *Scheduler

	// next is the region's published next-pending-event time in
	// nanoseconds (math.MaxInt64 = nothing pending), written by the
	// owning worker during prep and read by every worker after the
	// window barrier — the barrier's happens-before edge makes the
	// plain field safe.
	next int64

	// mu guards inbox against concurrent senders during the execute
	// phase. The owner drains it in prep without the lock: the window
	// barrier orders every sender's append before the drain.
	mu    sync.Mutex
	inbox []regionMsg

	// Owner-only state (the goroutine currently servicing the region).
	//
	// out[k] buffers this region's messages to region k for the current
	// window: Send appends lock-free (only the owning worker sends from
	// this region), and the owner flushes each non-empty buffer into its
	// destination inbox in one locked append at the end of the window —
	// one lock acquisition per (source, destination) pair per window
	// instead of one per message.
	out        [][]regionMsg
	staged     []regionMsg
	freeGroups []*groupAction
	sends      uint64
	delivered  uint64
	// dirty marks that the region executed events last window, so its
	// published next time must be recomputed; clean regions with empty
	// inboxes skip prep entirely.
	dirty bool
	// cap is the region's dynamic reflected-influence bound for the
	// window being executed: min over its own sends of the message
	// timestamp plus the closure delay back from the destination.
	cap int64
}

// regionMsg is one cross-region message: run act at time at; the
// sending event executed at sentAt in region src as its srcSeq-th send.
type regionMsg struct {
	at     time.Duration
	sentAt time.Duration
	src    int32
	srcSeq uint64
	act    Action
}

// NewExec creates a parallel executor over n fresh region schedulers.
// delay(a, b) must return the minimum simulated time for influence to
// travel from region a to region b; it is captured into a matrix once.
func NewExec(n int, delay func(a, b int) time.Duration) *Exec {
	if n < 1 {
		panic(fmt.Sprintf("sim: exec needs at least one region, got %d", n))
	}
	e := &Exec{
		regions: make([]*execRegion, n),
		md:      make([]int64, n*n),
		workers: 1,
	}
	for i := range e.regions {
		e.regions[i] = &execRegion{sched: NewScheduler(), next: infClock, out: make([][]regionMsg, n)}
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				e.md[a*n+b] = infClock
				continue
			}
			d := delay(a, b)
			if d <= 0 {
				panic(fmt.Sprintf("sim: non-positive lookahead %v between regions %d and %d", d, a, b))
			}
			e.md[a*n+b] = int64(d)
		}
	}
	// Floyd–Warshall closure: chains through intermediate regions can
	// undercut a direct delay, and the diagonal picks up the shortest
	// return cycle — with one region there is none, and the lone
	// diagonal entry stays infinite (nothing to reflect off).
	for k := 0; k < n; k++ {
		for a := 0; a < n; a++ {
			ak := e.md[a*n+k]
			if ak == infClock {
				continue
			}
			for b := 0; b < n; b++ {
				kb := e.md[k*n+b]
				if kb == infClock {
					continue
				}
				if v := ak + kb; v < e.md[a*n+b] {
					e.md[a*n+b] = v
				}
			}
		}
	}
	return e
}

// Regions returns the region count.
func (e *Exec) Regions() int { return len(e.regions) }

// Sched returns region i's scheduler. Everything owned by region i
// (its stations' MAC timers, radio edges, application ticks) must be
// scheduled here and nowhere else.
func (e *Exec) Sched(i int) *Scheduler { return e.regions[i].sched }

// Now returns the common simulated time. Region clocks only diverge
// inside Run; between runs they all sit at the last horizon.
func (e *Exec) Now() time.Duration { return e.regions[0].sched.Now() }

// Windows returns the number of barrier windows executed across all
// Runs so far — the executor's main overhead metric (each window costs
// two barrier crossings plus a prep sweep).
func (e *Exec) Windows() uint64 { return e.windowsRun }

// Fired returns the total number of events executed across all regions.
// Messages injected at the same instant from the same send time fire as
// one pooled group event (see prep), so this undercounts the individual
// cross-region actions; Messages counts those.
func (e *Exec) Fired() uint64 {
	var n uint64
	for _, r := range e.regions {
		n += r.sched.Fired()
	}
	return n
}

// Messages returns the total cross-region messages delivered into
// region schedulers across all Runs so far — the executor's boundary
// traffic metric (each message is one canonical-sort entry and at most
// one injected event).
func (e *Exec) Messages() uint64 {
	var n uint64
	for _, r := range e.regions {
		n += r.delivered
	}
	return n
}

// RegionFired returns the per-region executed event counts, indexed by
// region. max/mean over it is the executor's load-balance factor: how
// far the busiest region's event share sits above a perfectly even
// partition.
func (e *Exec) RegionFired() []uint64 {
	out := make([]uint64, len(e.regions))
	for i, r := range e.regions {
		out[i] = r.sched.Fired()
	}
	return out
}

// Workers returns the configured worker count (after SetWorkers's
// clamping) — diagnostic only; results never depend on it.
func (e *Exec) Workers() int { return e.workers }

// SetWorkers sets the goroutine count for subsequent Runs. Values below
// 1 or above the region count are clamped. The result of a Run does not
// depend on the worker count — that invariance is the mode's central
// test surface.
func (e *Exec) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	if n > len(e.regions) {
		n = len(e.regions)
	}
	e.workers = n
}

// SetSequential forces (true) or releases (false) the single-goroutine
// reference path: Run services all regions from the calling goroutine
// under the identical window protocol. It is the parallel kernel's
// verification escape hatch, the analog of medium.SetBruteForce and
// medium.SetGainCache — equivalence tests run the same seed both ways
// and require byte-identical results. Production callers never need it.
func (e *Exec) SetSequential(on bool) { e.sequential = on }

// Send delivers act to region to at absolute simulated time at. It must
// be called from an event executing on region from's scheduler (the
// send time is read from that scheduler's clock). Messages timestamped
// after the current Run's horizon are still delivered — they inject as
// pending events a later Run picks up, exactly as the sequential kernel
// leaves directly-scheduled events pending across RunUntil slices (a
// sliced parallel run must agree with a sliced sequential one). Safe
// for concurrent use by distinct sending regions: the message lands in
// the source region's per-destination outbox and crosses into the
// destination inbox at the window flush.
func (e *Exec) Send(from, to int, at time.Duration, act Action) {
	src := e.regions[from]
	seq := src.sends
	src.sends++
	// Reflections of this message can land back home no earlier than
	// its own timestamp plus the closure delay from the destination.
	if back := e.md[to*len(e.regions)+from]; back != infClock && int64(at)+back < src.cap {
		src.cap = int64(at) + back
	}
	src.out[to] = append(src.out[to], regionMsg{at: at, sentAt: src.sched.Now(), src: int32(from), srcSeq: seq, act: act})
}

// flush hands region src's buffered outgoing messages to their
// destination inboxes, one locked append per destination. Runs on the
// owner at the end of each window's execute phase, before the barrier
// that publishes the appends to the next prep.
func (e *Exec) flush(src *execRegion) {
	for to, msgs := range src.out {
		if len(msgs) == 0 {
			continue
		}
		dst := e.regions[to]
		dst.mu.Lock()
		dst.inbox = append(dst.inbox, msgs...)
		dst.mu.Unlock()
		for i := range msgs {
			msgs[i].act = nil
		}
		src.out[to] = msgs[:0]
	}
}

// Run executes every region's events through simulated time until
// (inclusive, matching Scheduler.RunUntil) and leaves every region
// clock at exactly until.
func (e *Exec) Run(until time.Duration) {
	if until < e.Now() {
		panic(fmt.Sprintf("sim: exec Run(%v) before now %v", until, e.Now()))
	}
	e.until = until
	// Events may have been scheduled directly on region schedulers since
	// the last Run; force a full first prep so every published next time
	// is fresh.
	for _, r := range e.regions {
		r.dirty = true
	}
	workers := e.workers
	if e.sequential || len(e.regions) == 1 {
		workers = 1
	}
	if workers <= 1 {
		e.windows(0, 1, nil)
	} else {
		bar := newBarrier(workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				e.windows(w, workers, bar)
			}(w)
		}
		wg.Wait()
	}
	for _, r := range e.regions {
		r.sched.RunUntil(until)
	}
}

const infClock = int64(math.MaxInt64)

// windows is one worker's run loop: it services regions w, w+stride,
// w+2·stride, … through the window protocol until the global minimum
// pending time passes the horizon. All workers compute the same global
// minimum from the same snapshot, so they exit the same window
// together; bar is nil on the single-worker path, where the barriers
// are trivially unnecessary.
func (e *Exec) windows(w, stride int, bar *barrier) {
	n := len(e.regions)
	until := int64(e.until)
	for {
		timeWin := w == 0 && e.hooks.WindowWall != nil
		var winStart time.Time
		if timeWin {
			winStart = time.Now()
		}
		if w == 0 {
			e.windowsRun++
		}
		for i := w; i < n; i += stride {
			e.prep(e.regions[i])
		}
		if bar != nil {
			e.barWait(bar)
		}
		g := infClock
		for _, r := range e.regions {
			if r.next < g {
				g = r.next
			}
		}
		if g > until {
			return
		}
		for i := w; i < n; i += stride {
			r := e.regions[i]
			horizon := infClock
			for j := 0; j < n; j++ {
				if j == i {
					continue // self-influence is the dynamic cap's job
				}
				l := e.regions[j].next
				d := e.md[j*n+i]
				if d == infClock || l > infClock-d {
					continue // effectively infinite
				}
				if v := l + d; v < horizon {
					horizon = v
				}
			}
			if r.next >= horizon {
				continue // nothing runnable; not even worth a peek
			}
			r.cap = infClock
			for {
				t, ok := r.sched.PeekAt()
				// r.cap shrinks as the events executed here send, so it
				// is re-read every iteration.
				if !ok || int64(t) >= horizon || int64(t) >= r.cap || int64(t) > until {
					break
				}
				r.sched.Step()
				r.dirty = true
			}
			if r.dirty {
				e.flush(r)
			}
		}
		if bar != nil {
			e.barWait(bar)
		}
		if timeWin {
			e.hooks.WindowWall.Observe(uint64(time.Since(winStart)))
		}
	}
}

// barWait crosses the window barrier, optionally timing the wait into
// the BarrierWait histogram. The observation happens after the crossing
// completes, so it never delays the workers the barrier releases.
func (e *Exec) barWait(bar *barrier) {
	h := e.hooks.BarrierWait
	if h == nil {
		bar.wait()
		return
	}
	t := time.Now()
	bar.wait()
	h.Observe(uint64(time.Since(t)))
}

// prep readies a region for the next window: drain the inbox, inject
// the batch in canonical order, publish the next pending time. The sort
// erases the wall-clock interleaving of concurrent senders — the
// injected order (and the heap insertion order breaking exact
// (at, sentAt) ties) is a pure function of the message set.
//
// Messages agreeing on both timestamp and send time coalesce into one
// pooled group event. That is exactly order-preserving, not just
// deterministic: an injected event's queue key is (at, sentAt-derived
// sub, insertion seq), so the members of such a run would fire
// back-to-back anyway — no local event can hold a key strictly between
// two identical (at, sub) pairs, and any same-keyed later injection
// gets a later insertion seq. Running the members inside one event in
// canonical order reproduces the exact same action sequence while
// firing (and paying for) one scheduler event instead of one per
// message. The steady path allocates nothing: staged and the group
// pool recycle, and the comparison-function sort has no reflection.
func (e *Exec) prep(r *execRegion) {
	// Reading inbox without the lock is safe here: senders only append
	// during the execute phase, and the window barrier orders all of
	// those appends before this prep. A clean region with no mail has
	// nothing to do — its published next time is still exact.
	if !r.dirty && len(r.inbox) == 0 {
		return
	}
	r.dirty = false
	if len(r.inbox) > 0 {
		r.staged = append(r.staged[:0], r.inbox...)
		r.inbox = r.inbox[:0]
	}
	if len(r.staged) > 0 {
		r.delivered += uint64(len(r.staged))
		slices.SortFunc(r.staged, func(x, y regionMsg) int {
			if x.at != y.at {
				if x.at < y.at {
					return -1
				}
				return 1
			}
			if x.sentAt != y.sentAt {
				if x.sentAt < y.sentAt {
					return -1
				}
				return 1
			}
			if x.src != y.src {
				return int(x.src) - int(y.src)
			}
			if x.srcSeq != y.srcSeq {
				if x.srcSeq < y.srcSeq {
					return -1
				}
				return 1
			}
			return 0
		})
		for i := 0; i < len(r.staged); {
			m := &r.staged[i]
			j := i + 1
			for j < len(r.staged) && r.staged[j].at == m.at && r.staged[j].sentAt == m.sentAt {
				j++
			}
			if j == i+1 {
				r.sched.InjectAt(m.at, m.sentAt, m.act)
			} else {
				g := r.newGroup()
				for k := i; k < j; k++ {
					g.acts = append(g.acts, r.staged[k].act)
				}
				r.sched.InjectAt(m.at, m.sentAt, g)
			}
			i = j
		}
		for i := range r.staged {
			r.staged[i].act = nil
		}
		r.staged = r.staged[:0]
	}
	r.next = infClock
	if t, ok := r.sched.PeekAt(); ok {
		r.next = int64(t)
	}
}

// groupAction is a pooled batch of same-instant, same-send-time message
// actions, fired as one scheduler event and run in canonical order. It
// returns itself to its region's pool after firing; both the allocation
// (prep) and the firing (execute) happen on the region's owner, so the
// pool needs no lock.
type groupAction struct {
	r    *execRegion
	acts []Action
}

func (r *execRegion) newGroup() *groupAction {
	if n := len(r.freeGroups); n > 0 {
		g := r.freeGroups[n-1]
		r.freeGroups = r.freeGroups[:n-1]
		return g
	}
	return &groupAction{r: r}
}

func (g *groupAction) Act() {
	for i, a := range g.acts {
		a.Act()
		g.acts[i] = nil
	}
	g.acts = g.acts[:0]
	g.r.freeGroups = append(g.r.freeGroups, g)
}

// barrier is a reusable sense-reversing barrier for the window loop:
// the last arriving worker flips the generation; the others spin
// briefly (windows are microseconds apart), yield the processor a few
// times, and then park on the condvar. The spin budget is zero when the
// machine has fewer processors than workers — spinning there steals
// the very core the straggler needs, turning each window into a full
// scheduler quantum. The atomic generation flip is the happens-before
// edge that publishes each worker's plain writes (region next fields,
// scheduler state, inbox drains) to every other worker.
type barrier struct {
	n     int32
	spin  int
	count atomic.Int32
	gen   atomic.Uint32

	mu   sync.Mutex
	cond *sync.Cond
}

func newBarrier(n int) *barrier {
	b := &barrier{n: int32(n)}
	if runtime.GOMAXPROCS(0) >= n {
		b.spin = 4096
	}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) wait() {
	gen := b.gen.Load()
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		b.mu.Lock()
		b.gen.Add(1)
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for spins := 0; spins < b.spin; spins++ {
		if b.gen.Load() != gen {
			return
		}
	}
	for yields := 0; yields < 4; yields++ {
		runtime.Gosched()
		if b.gen.Load() != gen {
			return
		}
	}
	b.mu.Lock()
	for b.gen.Load() == gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
