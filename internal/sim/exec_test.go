package sim

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

const execTestDelay = time.Microsecond

// uniformExec builds an n-region executor with a uniform pairwise
// delay, the shape the medium's partition produces on compact fields.
func uniformExec(n int) *Exec {
	return NewExec(n, func(a, b int) time.Duration { return execTestDelay })
}

// execLog is a per-region event log; regions append owner-only during a
// run, so reading after Run needs no locking.
type execLog struct {
	mu      sync.Mutex
	entries []string
}

func (l *execLog) add(format string, args ...any) {
	l.mu.Lock()
	l.entries = append(l.entries, fmt.Sprintf(format, args...))
	l.mu.Unlock()
}

func TestNewExecValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero regions", func() { NewExec(0, nil) })
	mustPanic("non-positive delay", func() {
		NewExec(2, func(a, b int) time.Duration { return 0 })
	})
}

// TestExecClosure pins the Floyd–Warshall closure: a chain through an
// intermediate region undercuts a slow direct link, and the diagonal
// holds the shortest return cycle.
func TestExecClosure(t *testing.T) {
	// 0 -1µs- 1 -1µs- 2, but 0-2 direct costs 10µs.
	d := func(a, b int) time.Duration {
		if a+b == 2 && a != 1 { // the 0-2 pair
			return 10 * time.Microsecond
		}
		return time.Microsecond
	}
	e := NewExec(3, d)
	us := int64(time.Microsecond)
	for _, tc := range []struct {
		a, b int
		want int64
	}{
		{0, 1, us}, {1, 0, us}, {1, 2, us},
		{0, 2, 2 * us}, // via region 1, undercutting the 10µs direct link
		{0, 0, 2 * us}, // shortest cycle: 0→1→0
		{1, 1, 2 * us},
	} {
		if got := e.md[tc.a*3+tc.b]; got != tc.want {
			t.Errorf("md(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
	if got := NewExec(1, nil).md[0]; got != infClock {
		t.Errorf("single-region diagonal = %d, want infinite (nothing to reflect off)", got)
	}
}

func TestExecSetWorkersClamps(t *testing.T) {
	e := uniformExec(3)
	for _, tc := range []struct{ set, want int }{
		{0, 1}, {-5, 1}, {2, 2}, {3, 3}, {100, 3},
	} {
		e.SetWorkers(tc.set)
		if e.workers != tc.want {
			t.Errorf("SetWorkers(%d): workers = %d, want %d", tc.set, e.workers, tc.want)
		}
	}
}

// TestExecSingleRegion pins the degenerate partition: one region must
// behave exactly like its scheduler run directly.
func TestExecSingleRegion(t *testing.T) {
	e := uniformExec(1)
	var log execLog
	e.Sched(0).At(time.Millisecond, func() { log.add("a") })
	e.Sched(0).At(2*time.Millisecond, func() { log.add("b") })
	e.Sched(0).At(3*time.Millisecond, func() { log.add("late") })
	e.Run(2 * time.Millisecond)
	if got := fmt.Sprint(log.entries); got != "[a b]" {
		t.Errorf("executed %v, want [a b] (the 3ms event is past the horizon)", log.entries)
	}
	if e.Now() != 2*time.Millisecond {
		t.Errorf("Now() = %v, want 2ms", e.Now())
	}
	if e.Fired() != 2 {
		t.Errorf("Fired() = %d, want 2", e.Fired())
	}
	e.Run(3 * time.Millisecond)
	if got := fmt.Sprint(log.entries); got != "[a b late]" {
		t.Errorf("after second Run executed %v, want [a b late]", log.entries)
	}
}

// TestExecRunBackwardsPanics matches Scheduler.RunUntil's contract.
func TestExecRunBackwardsPanics(t *testing.T) {
	e := uniformExec(2)
	e.Run(time.Millisecond)
	defer func() {
		if recover() == nil {
			t.Error("Run into the past: no panic")
		}
	}()
	e.Run(time.Microsecond)
}

// pingPong wires the reflected-influence regression: region 0 sends a
// ping whose reply must land back home BEFORE region 0's own later
// event — the executor must not let region 0 race past the reply's
// timestamp in the window where it sent the ping (that exact race was
// an InjectAt panic in an earlier protocol without the return-cycle
// bound).
func TestExecReflectedInfluence(t *testing.T) {
	for _, workers := range []int{1, 2} {
		e := uniformExec(2)
		e.SetWorkers(workers)
		var log execLog
		e.Sched(0).At(0, func() {
			log.add("ping@%v", e.Sched(0).Now())
			e.Send(0, 1, execTestDelay, actionFunc(func() {
				log.add("pong@%v", e.Sched(1).Now())
				e.Send(1, 0, 2*execTestDelay, actionFunc(func() {
					log.add("reply@%v", e.Sched(0).Now())
				}))
			}))
		})
		e.Sched(0).At(5*execTestDelay, func() { log.add("local@%v", e.Sched(0).Now()) })
		e.Run(time.Millisecond)
		want := "[ping@0s pong@1µs reply@2µs local@5µs]"
		if got := fmt.Sprint(log.entries); got != want {
			t.Errorf("workers=%d: executed %v, want %v", workers, log.entries, want)
		}
	}
}

// actionFunc adapts a closure to sim.Action for exec tests.
type actionFunc func()

func (f actionFunc) Act() { f() }

// TestExecSendCanonicalOrder pins the canonical message ordering: two
// regions send to a third at one instant; whatever the wall-clock
// interleaving, the receiver must run the messages ordered by (send
// time, source region, send sequence).
func TestExecSendCanonicalOrder(t *testing.T) {
	for _, workers := range []int{1, 3} {
		e := uniformExec(3)
		e.SetWorkers(workers)
		var log execLog
		at := 10 * execTestDelay
		// Region 1 sends twice from one event (sequence order), region 0
		// once from an earlier send time; all land at region 2 at `at`.
		e.Sched(1).At(2*execTestDelay, func() {
			e.Send(1, 2, at, actionFunc(func() { log.add("r1-first") }))
			e.Send(1, 2, at, actionFunc(func() { log.add("r1-second") }))
		})
		e.Sched(0).At(execTestDelay, func() {
			e.Send(0, 2, at, actionFunc(func() { log.add("r0") }))
		})
		e.Run(time.Millisecond)
		want := "[r0 r1-first r1-second]"
		if got := fmt.Sprint(log.entries); got != want {
			t.Errorf("workers=%d: receiver ran %v, want %v", workers, log.entries, want)
		}
	}
}

// TestExecDefersPastHorizon pins the cross-Run message rule: a message
// timestamped after the current Run's horizon is not executed by that
// Run (every clock still lands exactly on the horizon), but it is not
// lost either — a later Run covering its timestamp executes it, exactly
// as the sequential kernel carries pending events across RunUntil
// slices. Sliced drives (the CLI's -progress mode) depend on this.
func TestExecDefersPastHorizon(t *testing.T) {
	e := uniformExec(2)
	var log execLog
	e.Sched(0).At(time.Microsecond, func() {
		e.Send(0, 1, time.Millisecond, actionFunc(func() { log.add("deferred@%v", e.Sched(1).Now()) }))
	})
	e.Run(10 * time.Microsecond)
	if len(log.entries) != 0 {
		t.Errorf("message past the horizon executed early: %v", log.entries)
	}
	for i := 0; i < 2; i++ {
		if now := e.Sched(i).Now(); now != 10*time.Microsecond {
			t.Errorf("region %d clock = %v, want 10µs", i, now)
		}
	}
	e.Run(time.Millisecond)
	if got := fmt.Sprint(log.entries); got != "[deferred@1ms]" {
		t.Errorf("after the covering Run executed %v, want [deferred@1ms]", log.entries)
	}
}

// TestExecGroupsSameInstantMessages pins the pooled group injection:
// messages agreeing on (at, sentAt) fire as ONE scheduler event while
// running their actions in canonical source order, and the message
// counter still counts them individually.
func TestExecGroupsSameInstantMessages(t *testing.T) {
	e := uniformExec(3)
	var log execLog
	at := 10 * execTestDelay
	// Regions 0 and 1 each send from events at the same instant, so all
	// four messages share (at, sentAt) and must coalesce; region 2's own
	// local marker at the same instant fires separately.
	for _, from := range []int{0, 1} {
		from := from
		e.Sched(from).At(execTestDelay, func() {
			e.Send(from, 2, at, actionFunc(func() { log.add("r%d-a", from) }))
			e.Send(from, 2, at, actionFunc(func() { log.add("r%d-b", from) }))
		})
	}
	e.Sched(2).At(at, func() { log.add("local") })
	e.Run(time.Millisecond)
	// Local events schedule with an even sub key below any injected
	// message's odd key at the same send time, so the marker runs first.
	want := "[local r0-a r0-b r1-a r1-b]"
	if got := fmt.Sprint(log.entries); got != want {
		t.Errorf("executed %v, want %v", log.entries, want)
	}
	if got := e.Messages(); got != 4 {
		t.Errorf("Messages() = %d, want 4", got)
	}
	// 3 source events + 1 local marker + 1 group event for the 4
	// coalesced messages... the two source regions fire one event each,
	// region 2 fires its marker plus the single group.
	if fired := e.Fired(); fired != 4 {
		t.Errorf("Fired() = %d, want 4 (two sends, one marker, one pooled group)", fired)
	}
}

// TestExecWorkerInvariance runs a pseudo-random relay storm at every
// worker count and on the sequential reference path: identical
// per-region execution logs (the executor's determinism guarantee is
// the event sequence of each region, not a global interleaving) and an
// identical window structure.
func TestExecWorkerInvariance(t *testing.T) {
	const regions = 4
	run := func(workers int, sequential bool) ([]string, uint64) {
		e := uniformExec(regions)
		e.SetWorkers(workers)
		e.SetSequential(sequential)
		// logs[i] is appended only by region i's events — owner-only, no
		// locking needed, and per-region order is what must not drift.
		logs := make([][]string, regions)
		src := NewSource(7)
		// Each region seeds a relay chain: on every hop the message
		// re-sends itself to a pseudo-random region a delay out, so the
		// run exercises many windows with crossing traffic.
		var hop func(from int, step uint64) Action
		hop = func(from int, step uint64) Action {
			return actionFunc(func() {
				logs[from] = append(logs[from], fmt.Sprintf("r%d@%v#%d", from, e.Sched(from).Now(), step))
				if step == 12 {
					return
				}
				to := int(src.Hash64(uint64(from), step) % regions)
				at := e.Sched(from).Now() + time.Duration(1+step%3)*execTestDelay
				e.Send(from, to, at, hop(to, step+1))
			})
		}
		for i := 0; i < regions; i++ {
			i := i
			e.Sched(i).At(time.Duration(i)*execTestDelay, func() { hop(i, 0).Act() })
		}
		e.Run(time.Millisecond)
		var flat []string
		for i, l := range logs {
			flat = append(flat, fmt.Sprintf("region%d:%v", i, l))
		}
		return flat, e.Windows()
	}
	want, wantWindows := run(1, false)
	for _, workers := range []int{2, 4} {
		if got, w := run(workers, false); fmt.Sprint(got) != fmt.Sprint(want) || w != wantWindows {
			t.Errorf("workers=%d: logs %v windows %d, want %v windows %d", workers, got, w, want, wantWindows)
		}
	}
	if got, w := run(4, true); fmt.Sprint(got) != fmt.Sprint(want) || w != wantWindows {
		t.Errorf("sequential reference: logs %v windows %d, want %v windows %d", got, w, want, wantWindows)
	}
}
