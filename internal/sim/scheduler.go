// Package sim provides the discrete-event simulation kernel used by every
// other subsystem: a virtual clock, an event queue with deterministic
// ordering, cancellable timers, and seeded random-number streams.
//
// The kernel is single-goroutine by design. Determinism is a hard
// requirement for reproducing the paper's experiments: two runs with the
// same seed produce bit-identical results, which lets tests assert tight
// numeric bands instead of loose statistical ones.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a scheduled callback. The zero value is not useful; obtain
// events from Scheduler.At or Scheduler.After.
type Event struct {
	at    time.Duration
	seq   uint64
	fn    func()
	index int // heap index; -1 once fired or cancelled
}

// At reports the simulated time the event is scheduled to fire at.
func (e *Event) At() time.Duration { return e.at }

// Pending reports whether the event is still in the queue (neither fired
// nor cancelled).
func (e *Event) Pending() bool { return e != nil && e.index >= 0 }

// Scheduler is a discrete-event scheduler. The zero value is ready to use.
//
// Events scheduled for the same instant fire in the order they were
// scheduled (FIFO tie-break via a sequence number), which keeps runs
// deterministic regardless of heap internals.
type Scheduler struct {
	now   time.Duration
	queue eventQueue
	seq   uint64
	fired uint64
}

// NewScheduler returns an empty scheduler at time zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current simulated time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Len returns the number of pending events.
func (s *Scheduler) Len() int { return len(s.queue) }

// Fired returns the total number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// At schedules fn to run at absolute simulated time t.
// Scheduling in the past panics: it always indicates a logic bug in a
// protocol state machine, and silently reordering time would corrupt the
// simulation.
func (s *Scheduler) At(t time.Duration, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	e := &Event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d after the current simulated time.
func (s *Scheduler) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.At(s.now+d, fn)
}

// Cancel removes a pending event from the queue. Cancelling a nil, fired,
// or already-cancelled event is a no-op, so callers can cancel
// unconditionally in cleanup paths.
func (s *Scheduler) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	heap.Remove(&s.queue, e.index)
	e.index = -1
}

// Reschedule cancels e (if pending) and schedules fn at absolute time t,
// returning the new event. It is a convenience for self-rearming timers.
func (s *Scheduler) Reschedule(e *Event, t time.Duration, fn func()) *Event {
	s.Cancel(e)
	return s.At(t, fn)
}

// Step executes the earliest pending event, advancing the clock to its
// timestamp. It returns false when the queue is empty.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*Event)
	e.index = -1
	s.now = e.at
	s.fired++
	e.fn()
	return true
}

// RunUntil executes events until the queue is empty or the next event is
// strictly after t, then advances the clock to exactly t. Events scheduled
// at exactly t are executed.
func (s *Scheduler) RunUntil(t time.Duration) {
	if t < s.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", t, s.now))
	}
	for len(s.queue) > 0 && s.queue[0].at <= t {
		s.Step()
	}
	s.now = t
}

// Run executes events until the queue is empty. Most experiments should
// prefer RunUntil with an explicit horizon: saturating traffic sources
// never drain the queue.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// eventQueue implements heap.Interface ordered by (time, sequence).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}
