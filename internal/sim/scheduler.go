// Package sim provides the discrete-event simulation kernel used by every
// other subsystem: a virtual clock, an event queue with deterministic
// ordering, cancellable timers, and seeded random-number streams.
//
// The kernel is single-goroutine by design. Determinism is a hard
// requirement for reproducing the paper's experiments: two runs with the
// same seed produce bit-identical results, which lets tests assert tight
// numeric bands instead of loose statistical ones.
//
// The queue is a hand-rolled 4-ary heap over a pooled slot arena rather
// than container/heap: pushing an event neither boxes it into an
// interface nor allocates a node, so the steady-state hot path of a
// saturated simulation (schedule arrival → fire → schedule next) runs
// without touching the garbage collector. Freed slots are recycled
// through a free list; a per-slot generation counter keeps stale Event
// handles (held by MAC timers, TCP retransmit state, ...) safely inert
// after their slot has been reused.
package sim

import (
	"fmt"
	"time"
)

// Action is an alloc-free event payload: scheduling a pooled object that
// implements Action costs no per-event allocation, unlike a closure,
// which captures its variables on the heap. Hot paths (the medium's
// arrival records) schedule Actions; cold paths keep the convenience of
// closures via At/After.
type Action interface {
	// Act runs the event. It is invoked exactly once, from the event
	// loop, at the scheduled instant.
	Act()
}

// Event is a handle to a scheduled callback. It is a small value, not a
// pointer: the event's state lives in the scheduler's slot arena, and
// the handle carries the slot's generation so that a handle kept after
// its event fired (or was cancelled) stays a harmless no-op even once
// the slot has been recycled for a new event. The zero Event is valid
// and never pending.
type Event struct {
	s   *Scheduler
	idx int32
	gen uint64
	at  time.Duration
}

// At reports the simulated time the event was scheduled to fire at.
func (e Event) At() time.Duration { return e.at }

// Pending reports whether the event is still in the queue (neither fired
// nor cancelled).
func (e Event) Pending() bool {
	return e.s != nil && e.s.slots[e.idx].gen == e.gen
}

// slot is one arena entry. A slot is in the heap exactly while its
// generation matches the handles minted for it; firing or cancelling
// bumps gen, releases the callback reference, and returns the slot to
// the free list.
type slot struct {
	gen     uint64
	heapIdx int32
	// bucket locates the entry for the calendar backend: a wheel bucket
	// index, calOverflow for the sorted band, calNowhere when not
	// pending. The heap backend leaves it untouched (heapIdx suffices).
	bucket int32
	fn     func()
	act    Action
}

// heapEntry is one heap element. The ordering keys (at, sub, seq) live
// inline in the heap rather than in the slot arena: every sift
// comparison then reads adjacent heap memory instead of dereferencing
// two random slots, which is most of what a comparison used to cost on
// large queues.
//
// sub is the schedule-time subkey that makes event order reproducible
// across the parallel region kernel: the simulated instant the event
// was scheduled at, left-shifted one bit, with bit 0 set for events
// injected as inter-region messages (InjectAt). For a single-scheduler
// run sub is redundant — the clock is monotone, so within one instant
// ascending seq already implies ascending sub and the (at, sub, seq)
// order coincides exactly with the historical (at, seq) order. For a
// region scheduler it is load-bearing: a message injected late (its
// region's horizon only just reached it) still sorts against local
// events by when it was *sent*, not by when the window protocol got
// around to injecting it, so the executed event order is independent of
// worker count and window timing.
type heapEntry struct {
	at  time.Duration
	sub uint64
	seq uint64
	idx int32
}

// Scheduler is a discrete-event scheduler. The zero value is ready to use.
//
// Events scheduled for the same instant fire in the order they were
// scheduled (FIFO tie-break via a sequence number), which keeps runs
// deterministic regardless of heap internals.
type Scheduler struct {
	now   time.Duration
	slots []slot
	free  []int32     // recycled slot indices
	heap  []heapEntry // 4-ary heap ordered by (at, seq)
	cal   *calendar   // non-nil selects the calendar backend (SetKind)
	seq   uint64
	fired uint64

	// Out-of-band observability counters (Stats): plain fields because a
	// scheduler is owned by exactly one goroutine; the obs layer copies
	// them out only at barrier-safe points.
	pushes     uint64 // queue insertions (heap pushes or calendar inserts)
	calResizes uint64 // calendar-queue bucket-array resizes
}

// Stats is a point-in-time copy of a scheduler's out-of-band counters.
// Read it only from the goroutine driving the scheduler (or across a
// barrier in parallel mode); it never influences event order.
type Stats struct {
	Fired      uint64 // events executed
	Pushes     uint64 // queue insertions (heap or calendar backend)
	CalResizes uint64 // calendar bucket-array resizes (0 on the heap backend)
}

// Stats returns the scheduler's observability counters.
func (s *Scheduler) Stats() Stats {
	return Stats{Fired: s.fired, Pushes: s.pushes, CalResizes: s.calResizes}
}

// NewScheduler returns an empty scheduler at time zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current simulated time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Len returns the number of pending events.
func (s *Scheduler) Len() int {
	if s.cal != nil {
		return s.cal.count()
	}
	return len(s.heap)
}

// Fired returns the total number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// At schedules fn to run at absolute simulated time t.
// Scheduling in the past panics: it always indicates a logic bug in a
// protocol state machine, and silently reordering time would corrupt the
// simulation.
func (s *Scheduler) At(t time.Duration, fn func()) Event {
	if fn == nil {
		panic("sim: nil event callback")
	}
	return s.schedule(t, fn, nil)
}

// After schedules fn to run d after the current simulated time.
func (s *Scheduler) After(d time.Duration, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.At(s.now+d, fn)
}

// AtAction schedules a.Act() at absolute simulated time t. Unlike At it
// performs no allocation: the action value is stored directly in the
// recycled slot, so pooled callers run allocation-free.
func (s *Scheduler) AtAction(t time.Duration, a Action) Event {
	if a == nil {
		panic("sim: nil action")
	}
	return s.schedule(t, nil, a)
}

// AfterAction schedules a.Act() to run d after the current simulated time.
func (s *Scheduler) AfterAction(d time.Duration, a Action) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.AtAction(s.now+d, a)
}

// schedule acquires a slot, fills it and pushes it onto the heap.
func (s *Scheduler) schedule(t time.Duration, fn func(), act Action) Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	var idx int32
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.slots = append(s.slots, slot{})
		idx = int32(len(s.slots) - 1)
	}
	sl := &s.slots[idx]
	sl.fn = fn
	sl.act = act
	s.push(heapEntry{at: t, sub: uint64(s.now) << 1, seq: s.seq, idx: idx})
	s.seq++
	return Event{s: s, idx: idx, gen: sl.gen, at: t}
}

// push files an entry into the active backend's queue structure.
func (s *Scheduler) push(e heapEntry) {
	s.pushes++
	if s.cal != nil {
		s.cal.insert(s, e)
		return
	}
	s.slots[e.idx].heapIdx = int32(len(s.heap))
	s.heap = append(s.heap, e)
	s.siftUp(len(s.heap) - 1)
}

// InjectAt schedules a.Act() at absolute time t on behalf of an event
// that executed at sentAt on another region's scheduler. It is the
// inter-region message entry point of the parallel kernel (sim.Exec):
// the injected event carries sentAt — not this scheduler's current
// clock — as its ordering subkey, with the message bit set, so its
// position among same-instant events is a pure function of simulated
// time rather than of when the conservative window let the message in.
// Messages tie-break after local events of the same (instant, sentAt),
// and the caller (Exec) injects concurrent messages in a canonical
// order, which together make region runs worker-count-invariant.
func (s *Scheduler) InjectAt(t, sentAt time.Duration, a Action) {
	if a == nil {
		panic("sim: nil action")
	}
	if t < s.now {
		// A message from the past means the conservative lookahead was
		// violated — corrupt, not recoverable.
		panic(fmt.Sprintf("sim: injecting message at %v before now %v", t, s.now))
	}
	var idx int32
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.slots = append(s.slots, slot{})
		idx = int32(len(s.slots) - 1)
	}
	sl := &s.slots[idx]
	sl.fn = nil
	sl.act = a
	s.push(heapEntry{at: t, sub: uint64(sentAt)<<1 | 1, seq: s.seq, idx: idx})
	s.seq++
}

// PeekAt returns the timestamp of the earliest pending event, or false
// when the queue is empty. The parallel kernel publishes it as the
// region's conservative clock.
func (s *Scheduler) PeekAt() (time.Duration, bool) {
	if s.cal != nil {
		c := s.cal
		bucket, pos, ok := c.findMin(s)
		if !ok {
			return 0, false
		}
		if bucket == calOverflow {
			return c.overflow[pos].at, true
		}
		return c.buckets[bucket][pos].at, true
	}
	if len(s.heap) == 0 {
		return 0, false
	}
	return s.heap[0].at, true
}

// Cancel removes a pending event from the queue. Cancelling a zero,
// fired, or already-cancelled event is a no-op, so callers can cancel
// unconditionally in cleanup paths. Cancelling another scheduler's
// event panics: a handle is only valid against the arena that minted
// it, and silently operating cross-arena would hide a wiring bug.
func (s *Scheduler) Cancel(e Event) {
	if e.s == nil {
		return
	}
	if e.s != s {
		panic("sim: Cancel of an event from a different scheduler")
	}
	if s.slots[e.idx].gen != e.gen {
		return
	}
	if s.cal != nil {
		s.cal.remove(s, e.idx)
		s.release(e.idx)
		return
	}
	s.removeHeap(int(s.slots[e.idx].heapIdx))
}

// Reschedule cancels e (if pending) and schedules fn at absolute time t,
// returning the new event. It is a convenience for self-rearming timers.
func (s *Scheduler) Reschedule(e Event, t time.Duration, fn func()) Event {
	s.Cancel(e)
	return s.At(t, fn)
}

// release bumps the slot's generation (invalidating outstanding
// handles), drops the callback references so the GC can reclaim their
// captures, and returns the slot to the free list.
func (s *Scheduler) release(idx int32) {
	sl := &s.slots[idx]
	sl.gen++
	sl.heapIdx = -1
	sl.fn = nil
	sl.act = nil
	s.free = append(s.free, idx)
}

// removeHeap removes the heap entry at heap position h and releases its
// slot.
func (s *Scheduler) removeHeap(h int) {
	idx := s.heap[h].idx
	last := len(s.heap) - 1
	if h != last {
		s.heap[h] = s.heap[last]
		s.slots[s.heap[h].idx].heapIdx = int32(h)
	}
	s.heap = s.heap[:last]
	if h != last {
		if !s.siftDown(h) {
			s.siftUp(h)
		}
	}
	s.release(idx)
}

// Step executes the earliest pending event, advancing the clock to its
// timestamp. It returns false when the queue is empty.
func (s *Scheduler) Step() bool {
	if s.cal != nil {
		return s.calStep()
	}
	if len(s.heap) == 0 {
		return false
	}
	idx := s.heap[0].idx
	sl := &s.slots[idx]
	s.now = s.heap[0].at
	fn, act := sl.fn, sl.act
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap = s.heap[:last]
	if last > 0 {
		s.slots[s.heap[0].idx].heapIdx = 0
		s.siftDown(0)
	}
	// Release before running: the callback observes its own event as no
	// longer pending, and may immediately reuse the slot for a follow-up.
	s.release(idx)
	s.fired++
	if fn != nil {
		fn()
	} else {
		act.Act()
	}
	return true
}

// RunUntil executes events until the queue is empty or the next event is
// strictly after t, then advances the clock to exactly t. Events scheduled
// at exactly t are executed.
func (s *Scheduler) RunUntil(t time.Duration) {
	if t < s.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", t, s.now))
	}
	if s.cal != nil {
		s.calRunUntil(t)
		return
	}
	for len(s.heap) > 0 && s.heap[0].at <= t {
		s.Step()
	}
	s.now = t
}

// Run executes events until the queue is empty. Most experiments should
// prefer RunUntil with an explicit horizon: saturating traffic sources
// never drain the queue.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// Reset returns the scheduler to its just-constructed state — time
// zero, no pending events, counters cleared — while keeping the slot
// arena and heap capacity, so a replication sweep reuses the memory a
// previous run grew. Every outstanding Event handle is invalidated
// (generations bump exactly as if each event had been cancelled); a
// fresh run scheduled after Reset is bit-identical to one on a new
// scheduler, because event ordering depends only on (time, sequence),
// never on slot indices.
func (s *Scheduler) Reset() {
	s.heap = s.heap[:0]
	if s.cal != nil {
		s.cal.reset()
	}
	s.free = s.free[:0]
	for i := range s.slots {
		sl := &s.slots[i]
		sl.gen++
		sl.heapIdx = -1
		sl.fn = nil
		sl.act = nil
		s.free = append(s.free, int32(i))
	}
	s.now = 0
	s.seq = 0
	s.fired = 0
	s.pushes = 0
	s.calResizes = 0
}

// less orders heap entries by (time, schedule subkey, sequence): FIFO
// within one instant for a single-scheduler run (where sub is monotone
// in seq and therefore inert), send-time order across region kernels.
func less(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.sub != b.sub {
		return a.sub < b.sub
	}
	return a.seq < b.seq
}

// The heap is 4-ary: children of heap position i sit at 4i+1..4i+4.
// Compared with a binary heap this halves the tree depth, trading a few
// extra comparisons per level for markedly fewer cache lines touched on
// the sift paths — the right trade for a queue that is popped once per
// simulated event.

// siftUp restores the heap property upward from position i.
func (s *Scheduler) siftUp(i int) {
	e := s.heap[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !less(e, s.heap[parent]) {
			break
		}
		s.heap[i] = s.heap[parent]
		s.slots[s.heap[i].idx].heapIdx = int32(i)
		i = parent
	}
	s.heap[i] = e
	s.slots[e.idx].heapIdx = int32(i)
}

// siftDown restores the heap property downward from position i,
// reporting whether the entry moved.
func (s *Scheduler) siftDown(i int) bool {
	e := s.heap[i]
	start := i
	n := len(s.heap)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if less(s.heap[c], s.heap[best]) {
				best = c
			}
		}
		if !less(s.heap[best], e) {
			break
		}
		s.heap[i] = s.heap[best]
		s.slots[s.heap[i].idx].heapIdx = int32(i)
		i = best
	}
	s.heap[i] = e
	s.slots[e.idx].heapIdx = int32(i)
	return i != start
}
