package runner

import (
	"bytes"
	"math"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		got := Map(Config{Workers: workers}, 50, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got := Map(Config{}, 0, func(i int) int { t.Fatal("fn called"); return 0 })
	if len(got) != 0 {
		t.Fatalf("len = %d", len(got))
	}
}

func TestMapRunsEveryJobOnce(t *testing.T) {
	var calls [200]atomic.Int32
	Map(Config{Workers: 8}, len(calls), func(i int) struct{} {
		calls[i].Add(1)
		return struct{}{}
	})
	for i := range calls {
		if n := calls[i].Load(); n != 1 {
			t.Fatalf("job %d ran %d times", i, n)
		}
	}
}

func TestMapProgressStrictlyIncreasing(t *testing.T) {
	for _, workers := range []int{1, 8} {
		last := 0
		Map(Config{Workers: workers, Progress: func(done, total int) {
			if done <= last {
				t.Errorf("workers=%d: progress went %d -> %d", workers, last, done)
			}
			if total != 40 {
				t.Errorf("workers=%d: total = %d", workers, total)
			}
			last = done
		}}, 40, func(i int) int { return i })
		if last != 40 {
			t.Errorf("workers=%d: final progress %d, want 40", workers, last)
		}
	}
}

func TestSeedForReplicationZeroIsRoot(t *testing.T) {
	if got := SeedFor(42, 0); got != 42 {
		t.Fatalf("SeedFor(42, 0) = %d, want 42", got)
	}
}

func TestSeedsAreStableAndDistinct(t *testing.T) {
	a := make([]uint64, 16)
	for i := range a {
		a[i] = SeedFor(42, i)
	}
	seen := map[uint64]int{}
	for i := range a {
		if b := SeedFor(42, i); a[i] != b {
			t.Fatalf("seed %d not stable: %d vs %d", i, a[i], b)
		}
		if j, dup := seen[a[i]]; dup {
			t.Fatalf("seeds %d and %d collide (%d)", i, j, a[i])
		}
		seen[a[i]] = i
	}
	// Derived seeds must not land on the hand-picked neighborhoods the
	// experiments use for sweep points (root, root+1000, root+2000, ...).
	for i := 1; i < 16; i++ {
		if a[i] >= 42 && a[i] < 42+100000 {
			t.Errorf("seed %d = %d sits in the legacy root+offset range", i, a[i])
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Std-2.13809) > 1e-4 {
		t.Fatalf("std = %v", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.CI95 <= 0 || math.Abs(s.CI95-1.96*s.Std/math.Sqrt(8)) > 1e-12 {
		t.Fatalf("ci95 = %v", s.CI95)
	}
	if z := Summarize(nil); z != (Summary{}) {
		t.Fatalf("empty summary = %+v", z)
	}
}

func TestSummarizeBy(t *testing.T) {
	type r struct{ v float64 }
	s := SummarizeBy([]r{{1}, {2}, {3}}, func(x r) float64 { return x.v })
	if s.Mean != 2 || s.N != 3 {
		t.Fatalf("summary = %+v", s)
	}
}

// TestWorkersInvariantJSON is the package-level determinism gate: the
// same jobs aggregated after a 1-worker and an 8-worker run must
// serialize to byte-identical JSON.
func TestWorkersInvariantJSON(t *testing.T) {
	run := func(workers int) []byte {
		vals := Map(Config{Workers: workers}, 64, func(i int) float64 {
			// A seed-dependent, order-sensitive payload: float accumulation
			// would expose any index mixup.
			x := float64(SeedFor(7, i)%1000) / 7
			return math.Sin(x) * float64(i+1)
		})
		var buf bytes.Buffer
		if err := WriteJSON(&buf, struct {
			Values  []float64 `json:"values"`
			Summary Summary   `json:"summary"`
		}{vals, Summarize(vals)}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial, parallel := run(1), run(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("workers=1 and workers=8 diverged:\n%s\nvs\n%s", serial, parallel)
	}
}

func TestProgressWriter(t *testing.T) {
	var buf bytes.Buffer
	p := ProgressWriter(&buf, "sweep")
	p(1, 2)
	p(2, 2)
	got := buf.String()
	if !strings.Contains(got, "sweep 1/2") || !strings.Contains(got, "sweep 2/2") {
		t.Fatalf("progress output = %q", got)
	}
	if !strings.HasSuffix(got, "\n") {
		t.Fatalf("final progress line not terminated: %q", got)
	}
}

// TestParallelSpeedup checks that the pool actually uses the hardware.
// It needs real cores to be meaningful, so it skips on small machines
// and asserts a deliberately loose bound (2x on 4+ cores) elsewhere.
func TestParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("GOMAXPROCS = %d, need >= 4 for a meaningful speedup test", runtime.GOMAXPROCS(0))
	}
	work := func(i int) float64 {
		x := float64(i + 1)
		for k := 0; k < 2_000_000; k++ {
			x = math.Sqrt(x*x + 1)
		}
		return x
	}
	const jobs = 16
	t0 := time.Now()
	serial := Map(Config{Workers: 1}, jobs, work)
	serialDur := time.Since(t0)
	t0 = time.Now()
	parallel := Map(Config{Workers: 8}, jobs, work)
	parallelDur := time.Since(t0)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("result %d diverged", i)
		}
	}
	if speedup := serialDur.Seconds() / parallelDur.Seconds(); speedup < 2 {
		t.Errorf("speedup = %.2fx (serial %v, parallel %v), want >= 2x", speedup, serialDur, parallelDur)
	}
}

// BenchmarkMap8Replications measures the wall-clock of an 8-job
// CPU-bound fan-out at both worker counts; compare Workers1 vs
// WorkersMax ns/op to see the harness's speedup on this machine.
func BenchmarkMap8Replications(b *testing.B) {
	work := func(i int) float64 {
		x := float64(i + 1)
		for k := 0; k < 500_000; k++ {
			x = math.Sqrt(x*x + 1)
		}
		return x
	}
	b.Run("Workers1", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			Map(Config{Workers: 1}, 8, work)
		}
	})
	b.Run("WorkersMax", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			Map(Config{}, 8, work)
		}
	})
}

// TestMapWithReusesStatePerWorker checks both halves of the MapWith
// contract: results are indexed and worker-count independent, and each
// worker's state cell persists across the jobs it executes (that is the
// whole point — the cell would otherwise be an arena rebuilt per job).
func TestMapWithReusesStatePerWorker(t *testing.T) {
	type cell struct{ uses int }
	const n = 12
	for _, workers := range []int{1, 3, n + 5} {
		var inits atomic.Int64
		out := MapWith(Config{Workers: workers}, n, func(s *cell, i int) int {
			if s.uses == 0 {
				inits.Add(1)
			}
			s.uses++
			return i * i
		})
		for i, got := range out {
			if got != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got, i*i)
			}
		}
		// Never more initializations than workers actually started.
		max := int64(workers)
		if workers > n {
			max = n
		}
		if got := inits.Load(); got > max {
			t.Fatalf("workers=%d: %d state initializations, want <= %d", workers, got, max)
		}
	}
	// Serial path: one cell serves every job.
	var inits atomic.Int64
	MapWith(Config{Workers: 1}, n, func(s *cell, i int) struct{} {
		if s.uses == 0 {
			inits.Add(1)
		}
		s.uses++
		return struct{}{}
	})
	if got := inits.Load(); got != 1 {
		t.Fatalf("serial MapWith initialized %d cells, want 1", got)
	}
}

// TestMapRecoversPanickingJob injects a panicking job into fan-outs at
// both worker counts: with OnPanic set, every other job completes, the
// failed rep reports with its stack, and the fan-out returns normally.
func TestMapRecoversPanickingJob(t *testing.T) {
	const n, bad = 20, 7
	for _, workers := range []int{1, 4} {
		var failed []*PanicError
		out := Map(Config{Workers: workers, OnPanic: func(p *PanicError) {
			failed = append(failed, p)
		}}, n, func(i int) int {
			if i == bad {
				panic("injected failure")
			}
			return i * i
		})
		if len(failed) != 1 {
			t.Fatalf("workers=%d: %d failed reps, want 1", workers, len(failed))
		}
		p := failed[0]
		if p.Index != bad || p.Value != "injected failure" {
			t.Fatalf("workers=%d: failure = {index %d, value %v}", workers, p.Index, p.Value)
		}
		if !strings.Contains(string(p.Stack), "runner_test") {
			t.Fatalf("workers=%d: panic stack does not reach the job: %s", workers, p.Stack)
		}
		if !strings.Contains(p.Error(), "job 7 panicked") {
			t.Fatalf("workers=%d: error = %q", workers, p.Error())
		}
		for i, v := range out {
			want := i * i
			if i == bad {
				want = 0 // failed rep keeps the zero result
			}
			if v != want {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, want)
			}
		}
	}
}

// TestMapRepanicsWithoutHandler pins the no-handler contract: the first
// failing job re-panics as a *PanicError on the caller's goroutine
// after the fan-out drains — never as a bare goroutine death.
func TestMapRepanicsWithoutHandler(t *testing.T) {
	var ran atomic.Int64
	defer func() {
		r := recover()
		p, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("recovered %T (%v), want *PanicError", r, r)
		}
		if p.Index != 2 {
			t.Fatalf("panic index = %d, want 2", p.Index)
		}
		// The drain guarantee: the other jobs still ran to completion.
		if got := ran.Load(); got != 5 {
			t.Fatalf("%d healthy jobs ran, want 5", got)
		}
	}()
	Map(Config{Workers: 3}, 6, func(i int) int {
		if i == 2 {
			panic(i)
		}
		ran.Add(1)
		return i
	})
	t.Fatal("fan-out with a panicking job returned normally")
}

// TestMapWithZeroesStateAfterPanic checks the arena guard: a panic
// mid-job zeroes the worker's reusable cell so the next job rebuilds
// instead of inheriting half-mutated state.
func TestMapWithZeroesStateAfterPanic(t *testing.T) {
	type cell struct{ poisoned bool }
	out := MapWith(Config{Workers: 1, OnPanic: func(*PanicError) {}}, 3, func(s *cell, i int) bool {
		wasPoisoned := s.poisoned
		if i == 1 {
			s.poisoned = true
			panic("mid-job failure")
		}
		return wasPoisoned
	})
	if out[2] {
		t.Fatal("job after a panicked job saw the poisoned state cell")
	}
}

// TestReplicateWithSeedsMatchReplicate pins ReplicateWith to the same
// seed schedule as Replicate.
func TestReplicateWithSeedsMatchReplicate(t *testing.T) {
	const root, n = 99, 9
	want := Replicate(Config{Workers: 2}, root, n, func(seed uint64) uint64 { return seed })
	got := ReplicateWith(Config{Workers: 2}, root, n, func(_ *struct{}, seed uint64) uint64 { return seed })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replication %d: ReplicateWith seed %d, Replicate seed %d", i, got[i], want[i])
		}
	}
}
