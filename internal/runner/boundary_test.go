package runner

import (
	"runtime"
	"sync"
	"testing"
)

// TestWorkersBoundaries pins Config.workers() at the edges: zero and
// negative counts select one worker per available CPU, positive counts
// are taken literally (Map itself clamps to the job count).
func TestWorkersBoundaries(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	for _, tc := range []struct {
		workers int
		want    int
	}{
		{workers: 0, want: procs},
		{workers: -1, want: procs},
		{workers: -100, want: procs},
		{workers: 1, want: 1},
		{workers: 7, want: 7},
	} {
		if got := (Config{Workers: tc.workers}).workers(); got != tc.want {
			t.Errorf("Config{Workers: %d}.workers() = %d, want %d", tc.workers, got, tc.want)
		}
	}
}

// TestMapMoreWorkersThanJobs runs a fan-out whose worker count far
// exceeds the job count: the pool must clamp to one goroutine per job,
// complete every job exactly once, and keep results in job order.
func TestMapMoreWorkersThanJobs(t *testing.T) {
	const jobs = 3
	var mu sync.Mutex
	calls := make(map[int]int)
	got := Map(Config{Workers: 64}, jobs, func(i int) int {
		mu.Lock()
		calls[i]++
		mu.Unlock()
		return i * i
	})
	if len(got) != jobs {
		t.Fatalf("got %d results, want %d", len(got), jobs)
	}
	for i, v := range got {
		if v != i*i {
			t.Errorf("result[%d] = %d, want %d", i, v, i*i)
		}
		if calls[i] != 1 {
			t.Errorf("job %d ran %d times, want exactly once", i, calls[i])
		}
	}
}

// TestMapNonPositiveWorkers pins the Workers<=0 path end to end: the
// GOMAXPROCS default must produce exactly the same results as an
// explicit single worker, including the n==0 and n==1 degenerate jobs.
func TestMapNonPositiveWorkers(t *testing.T) {
	for _, n := range []int{0, 1, 5} {
		want := Map(Config{Workers: 1}, n, func(i int) int { return 3*i + 1 })
		got := Map(Config{Workers: 0}, n, func(i int) int { return 3*i + 1 })
		if len(want) != n || len(got) != n {
			t.Fatalf("n=%d: lengths %d / %d", n, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Errorf("n=%d: result[%d] = %d (default workers) vs %d (one worker)", n, i, got[i], want[i])
			}
		}
	}
}
