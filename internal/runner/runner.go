// Package runner is the parallel replication harness of the experiment
// layer: it fans independent simulation runs — replications of one
// configuration, points of a parameter sweep — out across worker
// goroutines and aggregates their metrics, without ever letting
// parallelism change a result.
//
// The determinism contract has three parts:
//
//   - Jobs are indexed. Each job derives everything random from the root
//     seed and its own index (SeedFor), never from scheduling order.
//   - Results are stored by job index, so the returned slice is the same
//     whatever the worker count or completion order.
//   - Aggregation (Summarize) folds results in index order, so streaming
//     statistics such as Welford means are bit-identical too.
//
// Consequently a run's output depends only on (root seed, job count):
// -workers=1 and -workers=8 produce byte-identical JSON.
package runner

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"adhocsim/internal/sim"
)

// Config parameterizes a fan-out.
type Config struct {
	// Workers is the number of worker goroutines; 0 or negative selects
	// runtime.GOMAXPROCS(0), i.e. one worker per available CPU.
	Workers int
	// Progress, when non-nil, is called as jobs complete with the number
	// of finished jobs and the total. Calls are serialized and done is
	// strictly increasing, so it can drive a progress meter directly.
	Progress func(done, total int)
	// OnPanic, when non-nil, receives every job that panicked — the
	// panic is recovered with its stack, the job's result stays the zero
	// value, and the fan-out continues, so one bad replication reports
	// as a failed rep instead of killing a whole sweep. Calls happen on
	// the caller's goroutine after all workers drain, in job-index
	// order. When nil, the first failing job (lowest index) is
	// re-panicked on the caller's goroutine as a *PanicError once the
	// fan-out drains — an unrecovered panic inside a worker goroutine
	// would otherwise kill the process with no chance for the caller to
	// attach context.
	OnPanic func(*PanicError)
	// OnJobDone, when non-nil, is called as each job finishes with its
	// index, its wall-clock duration, and whether it panicked (panicked
	// jobs still surface through OnPanic / re-panic as before — this
	// hook is observability, not error handling). Calls may come from
	// any worker goroutine concurrently; implementations must be safe
	// for concurrent use and must not feed back into job behaviour.
	OnJobDone func(i int, wall time.Duration, panicked bool)
}

// PanicError describes a fan-out job that panicked: which job, what it
// panicked with, and the goroutine stack captured at the point of
// recovery.
type PanicError struct {
	Index int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(i) for every i in [0, n) across the configured workers and
// returns the results indexed by i. fn must be self-contained: a
// simulation replication builds its own Network, so concurrent calls
// share no mutable state.
func Map[T any](cfg Config, n int, fn func(i int) T) []T {
	return MapWith(cfg, n, func(_ *struct{}, i int) T { return fn(i) })
}

// MapWith is Map for jobs that can profitably reuse expensive state
// within one worker: every worker goroutine owns a private state cell
// (a zero S), and each job it executes receives a pointer to that cell.
// The canonical use is an arena — a built simulation network that each
// job re-seeds instead of rebuilding; the first job a worker runs finds
// the cell empty and populates it.
//
// The determinism contract is unchanged from Map — results are indexed
// by job, so the returned slice does not depend on the worker count —
// but it now also binds the caller: fn must produce the same result for
// job i whether its cell is freshly zero or warmed by any earlier job,
// i.e. state reuse may change speed, never outcomes. (The scenario
// layer meets this with its Reset path and proves it with
// reuse-vs-rebuild equivalence tests.)
func MapWith[S, T any](cfg Config, n int, fn func(state *S, i int) T) []T {
	out := make([]T, n)
	if n == 0 {
		return out
	}
	// Every job runs under a recover guard: a panicking replication is
	// captured with its stack instead of tearing down the worker
	// goroutine (which would kill the process before the caller could
	// attach any context). Captures surface after the drain — see
	// Config.OnPanic.
	panics := make([]*PanicError, n)
	runJob := func(state *S, i int) {
		var start time.Time
		if cfg.OnJobDone != nil {
			start = time.Now()
		}
		defer func() {
			if r := recover(); r != nil {
				panics[i] = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
				// The panic may have left the worker's reusable state (an
				// arena mid-reset) inconsistent; zero it so the next job
				// this worker runs rebuilds from scratch.
				var zero S
				*state = zero
			}
			if cfg.OnJobDone != nil {
				cfg.OnJobDone(i, time.Since(start), panics[i] != nil)
			}
		}()
		out[i] = fn(state, i)
	}
	workers := cfg.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var state S
		for i := 0; i < n; i++ {
			runJob(&state, i)
			if cfg.Progress != nil {
				cfg.Progress(i+1, n)
			}
		}
		return finishPanics(cfg, out, panics)
	}

	var next, done atomic.Int64
	var mu sync.Mutex // serializes Progress
	reported := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var state S
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				runJob(&state, i)
				d := int(done.Add(1))
				if cfg.Progress != nil {
					mu.Lock()
					// Completions race on the counter; only ever report a
					// new high-water mark so done stays strictly increasing.
					if d > reported {
						reported = d
						cfg.Progress(d, n)
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return finishPanics(cfg, out, panics)
}

// finishPanics surfaces recovered job panics after a fan-out drains:
// handed to OnPanic in job-index order when set, otherwise the first
// failure is re-panicked on the caller's goroutine.
func finishPanics[T any](cfg Config, out []T, panics []*PanicError) []T {
	for _, p := range panics {
		if p == nil {
			continue
		}
		if cfg.OnPanic == nil {
			panic(p)
		}
		cfg.OnPanic(p)
	}
	return out
}

// Replicate fans n independently seeded replications of fn out across
// the configured workers: replication i runs fn(SeedFor(root, i)), and
// the results come back in replication order whatever the worker count.
// It is the one-liner behind every "mean ± CI over N seeds" aggregate in
// the experiment and scenario layers.
func Replicate[T any](cfg Config, root uint64, n int, fn func(seed uint64) T) []T {
	return Map(cfg, n, func(i int) T { return fn(SeedFor(root, i)) })
}

// ReplicateWith is Replicate with per-worker reusable state (MapWith):
// replication i runs fn(state, SeedFor(root, i)) against its worker's
// private cell. Use it when one replication's expensive setup (a built
// network) can be re-seeded for the next.
func ReplicateWith[S, T any](cfg Config, root uint64, n int, fn func(state *S, seed uint64) T) []T {
	return MapWith(cfg, n, func(s *S, i int) T { return fn(s, SeedFor(root, i)) })
}

// SeedFor derives the root seed of replication rep of a run rooted at
// root. Replication 0 is root itself, so a single-replication run is
// bit-identical to the classic serial experiments; every later
// replication gets an independent stream via sim.Source.Hash64
// (SplitMix64), so seeds never collide with the root-adjacent seeds
// experiments traditionally pick by hand (root+1, root+1000, ...).
func SeedFor(root uint64, rep int) uint64 {
	if rep == 0 {
		return root
	}
	return sim.NewSource(root).Hash64(uint64(rep))
}
