package runner

import (
	"fmt"
	"math"

	"adhocsim/internal/stats"
)

// Summary is the aggregate of one metric over replications: the numbers
// behind one "mean ± CI" cell of a paper table.
type Summary struct {
	N    uint64  `json:"n"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	CI95 float64 `json:"ci95"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// Summarize folds xs in slice order through a stats.Welford accumulator.
// Map returns results in job-index order regardless of worker count, so
// summaries of parallel runs are bit-identical to serial ones.
func Summarize(xs []float64) Summary {
	var w stats.Welford
	s := Summary{Min: math.Inf(1), Max: math.Inf(-1)}
	for _, x := range xs {
		w.Add(x)
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	if w.N() == 0 {
		return Summary{}
	}
	s.N = w.N()
	s.Mean = w.Mean()
	s.Std = w.Std()
	s.CI95 = w.CI95()
	return s
}

// SummarizeBy maps each element of runs to a float64 metric and
// summarizes the projection, preserving run order.
func SummarizeBy[T any](runs []T, metric func(T) float64) Summary {
	xs := make([]float64, len(runs))
	for i, r := range runs {
		xs[i] = metric(r)
	}
	return Summarize(xs)
}

// String renders the summary as "mean ± ci (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean, s.CI95, s.N)
}
