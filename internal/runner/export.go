package runner

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON writes v as indented, deterministic JSON: encoding/json
// emits struct fields in declaration order and sorts map keys, so equal
// values always serialize to identical bytes — the property the
// workers-invariance tests and the CLI -json flags rely on.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// ProgressWriter returns a Config.Progress callback that streams a
// carriage-return progress meter ("label 12/56") to w, finishing the
// line with a newline on the last job. Pass it os.Stderr in CLIs so the
// meter never mixes with result output on stdout.
func ProgressWriter(w io.Writer, label string) func(done, total int) {
	return func(done, total int) {
		fmt.Fprintf(w, "\r%s %d/%d", label, done, total)
		if done >= total {
			fmt.Fprintln(w)
		}
	}
}
