package medium

import (
	"testing"
	"time"

	"adhocsim/internal/phy"
	"adhocsim/internal/sim"
)

// BenchmarkMedium64Stations measures the per-transmission cost of the
// broadcast medium with 64 radios spread over a 5.6 km diagonal: an 8×8
// grid with 700 m spacing, so most transmitter/receiver pairs are far
// below the noise floor. Before the irrelevant-receiver cut in
// Radio.Transmit, every transmission scheduled two events at all 63
// other radios; with it, arrivals ≥ irrelevantMarginDB under the noise
// floor are never scheduled, and the event count per transmission drops
// to the handful of radios the frame can physically matter to.
//
// This bench is the first entry of the repository's bench trajectory
// (BENCH_PR2.json at the root).
func BenchmarkMedium64Stations(b *testing.B) {
	const side = 8
	prof := phy.DefaultProfile()
	prof.Fading.SigmaDB = 0 // geometry-only: keep the cut deterministic

	sched := sim.NewScheduler()
	m := New(sched, sim.NewSource(1))
	radios := make([]*Radio, 0, side*side)
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			h := &mockHandler{}
			r := m.AddRadio(uint32(len(radios)+1), phy.Pos(float64(x)*700, float64(y)*700), prof, h)
			radios = append(radios, r)
		}
	}

	f := dataFrame(1, 2, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Every radio transmits one frame; rotating start times keep the
		// medium from ever seeing two frames from one radio in flight.
		for _, r := range radios {
			r.Transmit(f, phy.Rate11)
			sched.RunUntil(sched.Now() + 10*time.Millisecond)
		}
	}
	b.ReportMetric(float64(sched.Fired())/float64(b.N*len(radios)), "events/tx")
}
