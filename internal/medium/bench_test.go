package medium

import (
	"testing"
	"time"

	"adhocsim/internal/phy"
	"adhocsim/internal/sim"
)

// BenchmarkMedium64Stations measures the per-transmission cost of the
// broadcast medium with 64 radios spread over a 5.6 km diagonal: an 8×8
// grid with 700 m spacing, so most transmitter/receiver pairs are far
// below the noise floor. Before the irrelevant-receiver cut in
// Radio.Transmit, every transmission scheduled two events at all 63
// other radios; with it, arrivals ≥ IrrelevantMarginDB under the noise
// floor are never scheduled, and the event count per transmission drops
// to the handful of radios the frame can physically matter to.
//
// This bench is the first entry of the repository's bench trajectory
// (BENCH_PR2.json at the root).
func BenchmarkMedium64Stations(b *testing.B) {
	benchmarkMediumGrid(b, 8)
}

// BenchmarkMedium1024Stations is the PR 3 headline bench: a 32×32 grid
// with the same 700 m spacing (21.7 km per side). At this scale the
// pre-index medium spent O(N) work per transmission computing distance
// and fading for every radio on the field before discarding almost all
// of them; the spatial hash grid visits only the cells a transmission
// can physically matter to (see BENCH_PR3.json at the root).
func BenchmarkMedium1024Stations(b *testing.B) {
	benchmarkMediumGrid(b, 32)
}

// benchmarkMediumGrid measures the per-transmission cost of the
// broadcast medium with side×side radios on a 700 m grid, so most
// transmitter/receiver pairs are far below the noise floor.
func benchmarkMediumGrid(b *testing.B, side int) {
	prof := phy.DefaultProfile()
	prof.Fading.SigmaDB = 0 // geometry-only: keep the relevance cut deterministic

	sched := sim.NewScheduler()
	m := New(sched, sim.NewSource(1))
	radios := make([]*Radio, 0, side*side)
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			h := &mockHandler{}
			r := m.AddRadio(uint32(len(radios)+1), phy.Pos(float64(x)*700, float64(y)*700), prof, h)
			radios = append(radios, r)
		}
	}

	f := dataFrame(1, 2, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Every radio transmits one frame; rotating start times keep the
		// medium from ever seeing two frames from one radio in flight.
		for _, r := range radios {
			r.Transmit(f, phy.Rate11)
			sched.RunUntil(sched.Now() + 10*time.Millisecond)
		}
	}
	b.ReportMetric(float64(sched.Fired())/float64(b.N*len(radios)), "events/tx")
}
