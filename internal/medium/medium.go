// Package medium simulates the shared wireless channel: it propagates
// every transmission to every radio it can physically matter to,
// maintains per-receiver energy bookkeeping for physical carrier sense
// (CCA), decides which frames are decodable under cumulative co-channel
// interference (SINR), and models preamble locking with power capture.
//
// The medium is where the paper's three ranges become emergent behaviour
// rather than configured constants:
//
//   - TX_range: a frame decodes only if its received power clears the
//     per-rate sensitivity and SINR requirement (shorter for faster rates).
//   - PCS_range: CCA reports busy whenever total received energy exceeds
//     the energy-detect threshold, far below decode sensitivity.
//   - IF_range: a transmission too weak to decode still raises the
//     interference floor at distant receivers and can corrupt their
//     receptions.
//
// Because the ranges are emergent, the medium cannot use a configured
// "who hears whom" adjacency; instead it derives a hard relevance radius
// from the radio model itself — the distance beyond which no shadowing
// draw can lift a transmission's power to within IrrelevantMarginDB of
// any receiver's noise floor (phy.Profile.ReachRange) — and keeps the
// radios in a spatial hash grid (phy.CellIndex) with that radius as the
// cell size. Transmit then touches only the 3×3 cell neighborhood of the
// transmitter: per-transmission cost is proportional to the stations in
// earshot, not the stations in existence, which is what makes
// thousand-station fields tractable. Candidates are dispatched in
// ascending radio-id order — identical to the pre-index insertion order
// for networks built by internal/node — so fixed-seed runs are
// bit-identical with and without the index (see SetBruteForce).
//
// The per-transmission bookkeeping runs allocation-free in steady state:
// transmission descriptors are pooled and carry their receiver set
// inline, and the leading/trailing propagation edges are scheduled as
// two batch Actions per transmission (every receiver shares the same
// edge instants) rather than a closure or event pair per receiver — so
// the scheduler's pending set scales with transmissions in flight, not
// with receivers in earshot.
package medium

import (
	"fmt"
	"math"
	"slices"
	"time"

	"adhocsim/internal/frame"
	"adhocsim/internal/phy"
	"adhocsim/internal/sim"
)

// Handler receives PHY indications. It is implemented by the MAC.
// Callbacks are invoked synchronously from the event loop.
type Handler interface {
	// CCAChanged reports physical carrier sense edges: busy=true when the
	// medium becomes busy at this radio, false when it returns to idle.
	CCAChanged(busy bool)

	// RxEnd reports the end of a locked reception. ok=true delivers a
	// decoded frame; ok=false is a PHY reception error (the receiver
	// locked onto a preamble but could not decode the body — FCS error),
	// which must trigger EIFS at the MAC. f is non-nil in both cases.
	RxEnd(f *frame.Frame, rate phy.Rate, rssiDBm float64, ok bool)

	// TxDone reports that this radio's own transmission left the air.
	TxDone()
}

// IrrelevantMarginDB is how far under a receiver's noise floor an
// arrival must be before the medium stops simulating it at that
// receiver. At 20 dB each skipped arrival carries at most 1% of the
// noise power, so any CCA, preamble-lock, or SINR decision would need
// on the order of a hundred such arrivals overlapping at one receiver
// before the summed skipped energy rivals the noise floor itself. This
// is a deliberate approximation: it trades exactness in that
// pathological regime (dozens of concurrent transmitters all barely
// under the floor at the same radio) for O(radios-within-earshot)
// event scheduling instead of O(all radios) per transmission.
const IrrelevantMarginDB = 20

// Medium is the shared broadcast channel connecting a set of radios.
type Medium struct {
	sched *sim.Scheduler
	src   *sim.Source

	radios []*Radio
	byID   map[uint32]*Radio

	// index is the spatial neighbor grid; nil while dirty, after
	// SetBruteForce(true), or when a degenerate radio model admits no
	// finite relevance radius (Transmit then falls back to exhaustive
	// propagation). It is rebuilt lazily on the first Transmit after a
	// radio set change and updated incrementally by Radio.SetPos.
	index      *phy.CellIndex
	indexDirty bool
	bruteForce bool

	// gainCacheOff forces the direct per-arrival PHY computation, the
	// pre-cache reference path (SetGainCache). The link-gain cache
	// itself lives on each transmitting radio (Radio.gains), indexed by
	// the receiver's dense slot, so a hot-path lookup is an array index
	// rather than a map probe.
	gainCacheOff bool

	// Pools: reused across transmissions so the steady-state event flow
	// allocates nothing.
	freeTx     []*transmission
	candidates []uint32 // scratch buffer for index queries

	// Parallel partition (nil/empty in sequential mode): the region
	// executor, and one shard of pools + counters per region. See
	// partition.go.
	ex     *sim.Exec
	shards []medShard

	// Counters (aggregate, for experiments and tests).
	Transmissions uint64
	Deliveries    uint64
	PHYErrors     uint64
}

// New returns an empty medium driven by sched, drawing fading values
// from src.
func New(sched *sim.Scheduler, src *sim.Source) *Medium {
	return &Medium{
		sched:      sched,
		src:        src,
		byID:       make(map[uint32]*Radio),
		indexDirty: true,
	}
}

// Now returns the current simulated time.
func (m *Medium) Now() time.Duration { return m.sched.Now() }

// SetBruteForce disables (true) or re-enables (false) the spatial
// neighbor index, forcing Transmit back to exhaustive per-radio
// propagation in radio insertion order — the pre-index reference
// behaviour. It exists for verification: the mobility equivalence tests
// run the same seed with and without the index and require identical
// metrics. Production callers never need it.
func (m *Medium) SetBruteForce(on bool) {
	m.bruteForce = on
	m.indexDirty = true
}

// SetGainCache re-enables (true) or disables (false) the pairwise
// link-gain cache, forcing every propagation back to the direct
// per-arrival PHY computation — the pre-cache reference behaviour.
// Like SetBruteForce it exists for verification: the equivalence tests
// run the same seed with the cache on and off and require identical
// metrics (including sim.Scheduler.Fired). Production callers never
// need it. Re-enabling invalidates any stale entries.
func (m *Medium) SetGainCache(on bool) {
	m.gainCacheOff = !on
	m.invalidateGains()
}

// invalidateGains marks every link-gain entry stale without releasing
// the allocated per-transmitter slices.
func (m *Medium) invalidateGains() {
	for _, r := range m.radios {
		for i := range r.gains {
			r.gains[i].have = 0
		}
	}
}

// Reset returns the medium to its just-built state so a replication
// sweep can re-seed a constructed network instead of rebuilding it:
// aggregate counters clear, the spatial index is marked for rebuild,
// and every link-gain cache entry is invalidated (its shadowing draws
// depend on the run seed, which the owning sim.Source is about to
// change). The arrival/transmission pools and the cache's allocated
// entries are deliberately retained — reusing them is the point of the
// arena. Radio placement and per-radio state are the caller's next
// step, via Radio.Reset.
func (m *Medium) Reset() {
	m.Transmissions, m.Deliveries, m.PHYErrors = 0, 0, 0
	m.indexDirty = true
	m.invalidateGains()
}

// Link-gain cache -------------------------------------------------------

// linkGain validity bits.
const (
	gainBase   uint8 = 1 << iota // baseDBm matches the radios' mobility epochs
	gainStatic                   // staticDB drawn for this run
	gainFade                     // fadeDB matches fadeEpoch
	gainMW                       // mw matches the current composed power
)

// linkGain caches the deterministic pieces of one directed link's
// received power, each stored exactly as first computed so cached and
// direct results are bit-identical:
//
//   - baseDBm: transmit power minus log-distance path loss — a pure
//     function of the two positions, invalidated by either radio's
//     mobility epoch (bumped on SetPos). Static stations, the common
//     case, never recompute the math.Log10.
//   - staticDB: the per-run static shadowing draw — a pure function of
//     (seed, link), valid for the whole run.
//   - fadeDB: the time-varying shadowing draw — a pure function of
//     (seed, link, coherence epoch), valid until the epoch rolls over.
//   - mw: the linear-milliwatt form of the composed power, memoized so
//     repeat arrivals within one epoch skip the dBm→mW exponential.
type linkGain struct {
	txMove, rxMove uint64 // mobility epochs the base term was computed at
	fadeEpoch      uint64 // coherence epoch of the cached dynamic fade
	have           uint8  // gain* validity bits
	baseDBm        float64
	staticDB       float64
	fadeDB         float64
	mw             float64
}

// milliwatt returns phy.DBmToMilliwatt(dbm), memoized on the entry
// until any gain component is recomputed (which changes dbm).
func (g *linkGain) milliwatt(dbm float64) float64 {
	if g.have&gainMW == 0 {
		g.mw = phy.DBmToMilliwatt(dbm)
		g.have |= gainMW
	}
	return g.mw
}

// linkPower returns the instantaneous received power in dBm for the
// directed link from→rx at time now, served from the link-gain cache
// (the returned entry memoizes the linear form; nil when the cache is
// disabled). The composition — path-loss base plus static shadow plus
// epoch fade, summed in that order — mirrors phy.Profile.RxPowerDBm
// exactly, so a cache hit is bit-identical to the direct computation
// the gainCacheOff path performs.
func (m *Medium) linkPower(from, rx *Radio, now time.Duration) (float64, *linkGain) {
	if m.gainCacheOff {
		d := phy.Dist(from.pos, rx.pos)
		return from.profile.RxPowerDBm(m.src, uint64(from.id), uint64(rx.id), d, now), nil
	}
	// The per-transmitter slice is sized lazily: only radios that
	// actually transmit pay for a row, and the row grows only when the
	// radio set has grown since.
	if int(rx.slot) >= len(from.gains) {
		from.gains = append(from.gains, make([]linkGain, len(m.radios)-len(from.gains))...)
	}
	g := &from.gains[rx.slot]
	if g.have&gainBase == 0 || g.txMove != from.moveEpoch || g.rxMove != rx.moveEpoch {
		g.baseDBm = from.profile.MeanRxPowerDBm(phy.Dist(from.pos, rx.pos))
		g.txMove, g.rxMove = from.moveEpoch, rx.moveEpoch
		g.have |= gainBase
		g.have &^= gainMW
	}
	fad := &from.profile.Fading
	var shadow float64
	if fad.StaticSigmaDB != 0 {
		if g.have&gainStatic == 0 {
			g.staticDB = fad.StaticShadowDB(m.src, uint64(from.id), uint64(rx.id))
			g.have |= gainStatic
			g.have &^= gainMW
		}
		shadow = g.staticDB
	}
	if fad.SigmaDB != 0 {
		epoch := fad.FadeEpoch(now)
		if g.have&gainFade == 0 || g.fadeEpoch != epoch {
			g.fadeDB = fad.EpochShadowDB(m.src, uint64(from.id), uint64(rx.id), epoch)
			g.fadeEpoch = epoch
			g.have |= gainFade
			g.have &^= gainMW
		}
		shadow += g.fadeDB
	}
	return g.baseDBm + shadow, g
}

// ensureIndex rebuilds the neighbor grid if the radio set changed since
// the last transmission. The cell size is the maximum relevance radius
// over all transmitter profiles against the lowest noise floor on the
// field, so any transmission's candidate set lies within the 3×3 cell
// block around the transmitter.
func (m *Medium) ensureIndex() {
	if !m.indexDirty {
		return
	}
	m.indexDirty = false
	m.index = nil
	if m.bruteForce || len(m.radios) == 0 {
		return
	}
	minFloor := math.Inf(1)
	for _, r := range m.radios {
		if f := r.profile.NoiseFloorDBm; f < minFloor {
			minFloor = f
		}
	}
	threshold := minFloor - IrrelevantMarginDB
	maxReach := 0.0
	for _, r := range m.radios {
		// A non-positive path-loss exponent means received power does not
		// fall with distance, so no relevance radius exists at all; a
		// non-finite ReachRange means the budget never runs out. Either
		// way the index cannot soundly prune anything — keep the
		// exhaustive path.
		d := r.profile.ReachRange(threshold)
		if r.profile.PathLoss.Exponent <= 0 || !(d > 0) || math.IsInf(d, 1) {
			return
		}
		r.reach = d
		if d > maxReach {
			maxReach = d
		}
	}
	ix := phy.NewCellIndex(maxReach)
	for _, r := range m.radios {
		ix.Insert(r.id, r.pos)
	}
	m.index = ix
}

// radioState tracks what a radio's receive chain is doing.
type radioState uint8

const (
	stateListen radioState = iota
	stateTransmit
)

// Radio is one station's PHY attachment to the medium.
type Radio struct {
	id      uint32
	m       *Medium
	pos     phy.Position
	profile *phy.Profile
	handler Handler

	state radioState

	// reach is this radio's transmit relevance radius in meters, set by
	// Medium.ensureIndex: beyond it no receiver on the field can see
	// this radio's frames above the irrelevance threshold.
	reach float64

	// lin caches the profile's dB-scale thresholds in linear milliwatts,
	// snapshotted at attach time (profiles are configured before attach)
	// so the hot CCA/verdict paths never re-run the dBm→mW exponential
	// on constants. irrelevantDBm is the precomputed per-receiver power
	// cut, profile.NoiseFloorDBm − IrrelevantMarginDB.
	lin           phy.Linear
	irrelevantDBm float64

	// moveEpoch counts SetPos calls; the link-gain cache keys its
	// path-loss term on the epochs of both endpoint radios, so a move
	// invalidates exactly the cached distances it changes.
	moveEpoch uint64

	// slot is this radio's dense index in Medium.radios; gains is the
	// radio's transmit-side link-gain cache, indexed by receiver slot
	// and allocated lazily on first transmission (see linkGain).
	slot  int32
	gains []linkGain

	// Parallel partition bindings (zero in sequential mode): the radio's
	// region, that region's scheduler — where every event this radio
	// originates must land — and its shard. Set by Medium.SetPartition;
	// a non-nil sched routes Transmit to the partitioned path.
	reg   int32
	sched *sim.Scheduler
	shard *medShard

	// txEnd is the pooled end-of-own-transmission action, scheduled once
	// per Transmit without allocating.
	txEnd txEndAction

	// arrivals lists every in-flight transmission overlapping this radio
	// with its received power (fixed at arrival time, one fading epoch
	// per frame), in arrival order. A slice rather than a map: the
	// handful of entries makes linear scans faster than hashing, and —
	// decisive for the determinism contract — the interference/CCA power
	// sums accumulate in a fixed order, where Go's randomized map
	// iteration would let three-summand float sums differ between
	// identically-seeded runs. The linear power form is cached at the
	// leading edge so the hot sums never re-run the dBm→mW exponential.
	arrivals []arrivalEntry

	// locked is the transmission the receive chain is synchronized to.
	locked       *transmission
	lockedPower  float64 // dBm
	maxInterfMW  float64 // worst cumulative interference during the lock
	ccaBusy      bool
	txEndPending sim.Event

	// Counters.
	FramesSent      uint64
	FramesDecoded   uint64
	FramesErrored   uint64 // locked but failed decode (→ EIFS at MAC)
	FramesMissed    uint64 // arrived while busy or below preamble detect
	CaptureSwitches uint64
}

// transmission is one frame in flight. Descriptors are pooled and carry
// their receiver set inline: every receiver shares the same leading and
// trailing edge instants (propagation delay is a constant bound), so
// the medium schedules two batch events per transmission — lead and
// trail — instead of two events per receiver. Receivers are dispatched
// in target order, which is exactly the order the per-receiver events
// used to fire in (consecutive sequence numbers at one instant), so
// the batch is event-order-identical to the pre-batch kernel while
// keeping the pending-event heap proportional to transmissions in
// flight, not receivers in earshot.
type transmission struct {
	from    *Radio
	f       *frame.Frame
	rate    phy.Rate
	end     time.Duration
	targets []arrivalTarget
	lead    txLeadAction
	trail   txTrailAction

	// lo:hi is the slice of targets the local lead/trail pair serves —
	// the whole set in sequential mode, the transmitter's own region's
	// segment in partitioned mode (remote segments ride tx.segs).
	// remaining counts the regions still holding the descriptor; the
	// last finishOn returns it to the origin shard's pool (accessed
	// atomically only in partitioned mode — see partition.go).
	lo, hi    int32
	remaining int32

	// Partitioned-mode state: the remote-region segments (embedded so a
	// recirculating descriptor reuses their storage) and the shard whose
	// pool the descriptor recirculates through — the transmitter's, so
	// the targets capacity warms up where the fan-out happens.
	segs   []txSegment
	origin *medShard
}

// arrivalTarget is one receiver of an in-flight transmission with its
// received power in both scales, and the receiver's region (zero in
// sequential mode) so the partitioned path can split the set.
type arrivalTarget struct {
	rx  *Radio
	reg int32
	dbm float64
	mw  float64
}

// txLeadAction fires the leading edge of a transmission at every
// receiver in earshot, in target (ascending radio id) order. It is
// embedded in the pooled transmission and scheduled by pointer, so the
// interface conversion never allocates.
type txLeadAction struct{ tx *transmission }

// Act implements sim.Action.
func (a *txLeadAction) Act() {
	tx := a.tx
	for i := tx.lo; i < tx.hi; i++ {
		t := &tx.targets[i]
		t.rx.arrivalStart(tx, t.dbm, t.mw)
	}
}

// txTrailAction fires the trailing edge at every local receiver, then
// drops the local region's hold on the descriptor (sequential mode
// holds exactly one, so this is the release).
type txTrailAction struct{ tx *transmission }

// Act implements sim.Action.
func (a *txTrailAction) Act() {
	tx := a.tx
	for i := tx.lo; i < tx.hi; i++ {
		tx.targets[i].rx.arrivalEnd(tx)
	}
	tx.finishOn(tx.from.shard)
}

// arrivalEntry is one in-flight transmission's received power at one
// radio, in both scales: dBm for lock/sensitivity decisions, linear
// milliwatts for energy summation.
type arrivalEntry struct {
	tx  *transmission
	dbm float64
	mw  float64
}

// txEndAction returns a transmitting radio to listen state when its own
// frame leaves the air.
type txEndAction struct{ r *Radio }

// Act implements sim.Action.
func (t *txEndAction) Act() {
	r := t.r
	r.state = stateListen
	r.txEndPending = sim.Event{}
	r.updateCCA()
	r.handler.TxDone()
}

func (m *Medium) newTransmission(from *Radio, f *frame.Frame, rate phy.Rate, end time.Duration) *transmission {
	var tx *transmission
	if n := len(m.freeTx); n > 0 {
		tx = m.freeTx[n-1]
		m.freeTx = m.freeTx[:n-1]
	} else {
		tx = new(transmission)
	}
	*tx = transmission{from: from, f: f, rate: rate, end: end,
		targets: tx.targets[:0], segs: tx.segs[:0]}
	tx.lead.tx = tx
	tx.trail.tx = tx
	return tx
}

func (m *Medium) releaseTransmission(tx *transmission) {
	*tx = transmission{targets: tx.targets[:0], segs: tx.segs[:0]}
	m.freeTx = append(m.freeTx, tx)
}

// AddRadio attaches a radio at pos with the given profile and handler.
// The id must be unique; it keys the fading process and the spatial
// index.
func (m *Medium) AddRadio(id uint32, pos phy.Position, profile *phy.Profile, h Handler) *Radio {
	if _, dup := m.byID[id]; dup {
		panic(fmt.Sprintf("medium: duplicate radio id %d", id))
	}
	if m.shards != nil {
		panic("medium: AddRadio after SetPartition")
	}
	r := &Radio{
		id:            id,
		m:             m,
		pos:           pos,
		profile:       profile,
		handler:       h,
		lin:           profile.Linearize(),
		irrelevantDBm: profile.NoiseFloorDBm - IrrelevantMarginDB,
		slot:          int32(len(m.radios)),
	}
	r.txEnd.r = r
	m.byID[id] = r
	m.radios = append(m.radios, r)
	m.indexDirty = true
	return r
}

// ID returns the radio identifier.
func (r *Radio) ID() uint32 { return r.id }

// Pos returns the radio's current position.
func (r *Radio) Pos() phy.Position { return r.pos }

// SetPos moves the radio (mobility support). Takes effect for
// transmissions that begin after the move. The spatial index follows
// incrementally: a move within the radio's current grid cell is O(1)
// bookkeeping, and only a cell-boundary crossing relocates it.
func (r *Radio) SetPos(p phy.Position) {
	r.pos = p
	r.moveEpoch++
	if m := r.m; m.index != nil && !m.indexDirty {
		m.index.Move(r.id, p)
	}
}

// Reset clears the radio's per-run receive state and counters and
// re-places it at pos, keeping the attachment (profile, handler,
// precomputed linear tables) intact. It is the per-radio half of the
// arena-reuse path: call Medium.Reset first (which invalidates the
// link-gain cache and marks the spatial index for rebuild), then Reset
// every radio with its new-run position.
func (r *Radio) Reset(pos phy.Position) {
	r.pos = pos
	r.moveEpoch = 0
	r.state = stateListen
	clear(r.arrivals)
	r.arrivals = r.arrivals[:0]
	r.locked = nil
	r.lockedPower = 0
	r.maxInterfMW = 0
	r.ccaBusy = false
	r.txEndPending = sim.Event{}
	r.FramesSent, r.FramesDecoded, r.FramesErrored = 0, 0, 0
	r.FramesMissed, r.CaptureSwitches = 0, 0
}

// Profile returns the radio's PHY profile.
func (r *Radio) Profile() *phy.Profile { return r.profile }

// CCABusy reports the current physical-carrier-sense state.
func (r *Radio) CCABusy() bool { return r.ccaBusy }

// Transmitting reports whether the radio is currently transmitting.
func (r *Radio) Transmitting() bool { return r.state == stateTransmit }

// Transmit puts f on the air at the given rate and returns its airtime.
// The radio's receive chain is disabled for the duration (half-duplex);
// any reception in progress is abandoned. TxDone fires when the frame
// leaves the air.
func (r *Radio) Transmit(f *frame.Frame, rate phy.Rate) time.Duration {
	if r.state == stateTransmit {
		panic("medium: Transmit while already transmitting")
	}
	if !rate.Valid() {
		panic(fmt.Sprintf("medium: invalid rate %d", rate))
	}
	m := r.m
	if r.sched != nil {
		return m.partTransmit(r, f, rate)
	}
	now := m.sched.Now()
	air := f.AirTime(rate)
	m.Transmissions++
	r.FramesSent++

	// Half-duplex: abandon any lock; the abandoned frame still occupies
	// the arrivals set (it remains energy in the air).
	r.locked = nil
	r.maxInterfMW = 0
	r.state = stateTransmit
	r.updateCCA()

	tx := m.newTransmission(r, f, rate, now+air)
	m.ensureIndex()
	if m.index == nil {
		for _, rx := range m.radios {
			m.propagate(tx, r, rx, now)
		}
	} else {
		// Candidate cells are visited in deterministic grid order; the
		// gathered ids are then dispatched ascending, which coincides
		// with the exhaustive path's insertion order for node-built
		// networks (ids are assigned sequentially), keeping fixed-seed
		// runs bit-identical across the index.
		ids := m.index.AppendWithin(m.candidates[:0], r.pos, r.reach)
		slices.Sort(ids)
		m.candidates = ids
		for _, id := range ids {
			m.propagate(tx, r, m.byID[id], now)
		}
	}
	r.txEndPending = m.sched.AtAction(now+air, &r.txEnd)
	if len(tx.targets) == 0 {
		// Nobody in earshot: the descriptor never entered any receiver's
		// bookkeeping.
		m.releaseTransmission(tx)
	} else {
		tx.lo, tx.hi = 0, int32(len(tx.targets))
		tx.remaining = 1
		m.sched.AtAction(now+phy.PropDelay, &tx.lead)
		m.sched.AtAction(now+air+phy.PropDelay, &tx.trail)
	}
	return air
}

// propagate adds rx to tx's receiver set, unless the frame arrives so
// far under rx's noise floor that it cannot shift any CCA, lock, or
// SINR decision there. Received power comes from the link-gain cache:
// for static link/epoch combinations already seen this run the
// transcendental PHY arithmetic is skipped entirely. The edges
// themselves are scheduled once per transmission by Transmit, not once
// per receiver.
func (m *Medium) propagate(tx *transmission, from, rx *Radio, now time.Duration) {
	if rx == from {
		return
	}
	p, g := m.linkPower(from, rx, now)
	if p < rx.irrelevantDBm {
		return
	}
	var mw float64
	if g != nil {
		mw = g.milliwatt(p)
	} else {
		mw = phy.DBmToMilliwatt(p)
	}
	tx.targets = append(tx.targets, arrivalTarget{rx: rx, reg: rx.reg, dbm: p, mw: mw})
}

// DebugArrival, when set, observes every arrival edge (test hook).
var DebugArrival func(rx uint32, from uint32, powerDBm float64, state string)

// arrivalStart handles the leading edge of a transmission reaching this
// radio. powerMW is the caller-supplied linear form of powerDBm.
func (r *Radio) arrivalStart(tx *transmission, powerDBm, powerMW float64) {
	r.arrivals = append(r.arrivals, arrivalEntry{tx: tx, dbm: powerDBm, mw: powerMW})
	prof := r.profile
	if DebugArrival != nil {
		st := "listen-unlocked"
		if r.state == stateTransmit {
			st = "transmitting"
		} else if r.locked != nil {
			st = "locked"
		}
		DebugArrival(r.id, tx.from.id, powerDBm, st)
	}

	switch {
	case r.state == stateTransmit:
		// Half-duplex: cannot hear anything while transmitting.
		r.FramesMissed++
	case powerDBm < prof.PLCPDetectDBm:
		// Too weak to synchronize: pure energy/interference.
		r.FramesMissed++
	case r.locked == nil:
		// Preamble must clear the interference floor to synchronize.
		if powerDBm >= r.interferenceFloorDBm(tx)+prof.SINRRequiredDB[phy.Rate1.Index()] {
			r.lock(tx, powerDBm)
		} else {
			r.FramesMissed++
		}
	case powerDBm >= r.lockedPower+prof.CaptureMarginDB:
		// Message-in-message capture: a much stronger newcomer steals
		// the receiver; the previous frame is lost.
		r.CaptureSwitches++
		r.FramesMissed++ // the abandoned frame
		r.lock(tx, powerDBm)
	default:
		r.FramesMissed++
	}

	if r.locked != nil && r.locked != tx {
		// Newcomer interferes with the locked frame.
		r.noteInterference()
	}
	r.updateCCA()
}

func (r *Radio) lock(tx *transmission, powerDBm float64) {
	r.locked = tx
	r.lockedPower = powerDBm
	r.maxInterfMW = 0
	r.noteInterference()
}

// noteInterference records the current cumulative interference against
// the locked frame. The decode verdict uses the worst value seen during
// the whole reception.
func (r *Radio) noteInterference() {
	var mw float64
	for _, a := range r.arrivals {
		if a.tx != r.locked {
			mw += a.mw
		}
	}
	if mw > r.maxInterfMW {
		r.maxInterfMW = mw
	}
}

// interferenceFloorDBm returns noise + all arrivals except tx, in dBm.
// The noise floor comes from the attach-time linear table rather than a
// fresh dBm→mW conversion per call.
func (r *Radio) interferenceFloorDBm(except *transmission) float64 {
	mw := r.lin.NoiseFloorMW
	for _, a := range r.arrivals {
		if a.tx != except {
			mw += a.mw
		}
	}
	return phy.MilliwattToDBm(mw)
}

// arrivalEnd handles the trailing edge of a transmission at this radio.
func (r *Radio) arrivalEnd(tx *transmission) {
	for i := range r.arrivals {
		if r.arrivals[i].tx == tx {
			// Remove preserving arrival order, so later sums stay a pure
			// function of the remaining arrival sequence.
			last := len(r.arrivals) - 1
			copy(r.arrivals[i:], r.arrivals[i+1:])
			r.arrivals[last] = arrivalEntry{}
			r.arrivals = r.arrivals[:last]
			break
		}
	}
	if r.locked == tx {
		r.locked = nil
		ok := r.verdict(tx)
		if ok {
			r.FramesDecoded++
			if r.shard != nil {
				r.shard.deliveries++
			} else {
				r.m.Deliveries++
			}
		} else {
			r.FramesErrored++
			if r.shard != nil {
				r.shard.phyErrors++
			} else {
				r.m.PHYErrors++
			}
		}
		power := r.lockedPower
		r.maxInterfMW = 0
		r.updateCCA()
		r.handler.RxEnd(tx.f, tx.rate, power, ok)
		return
	}
	r.updateCCA()
}

// verdict decides whether the locked frame decoded successfully: power
// above the rate's sensitivity, and SINR above the rate's requirement
// against the worst noise+interference seen during the reception.
func (r *Radio) verdict(tx *transmission) bool {
	prof := r.profile
	idx := tx.rate.Index()
	if r.lockedPower < prof.SensitivityDBm[idx] {
		return false
	}
	floorMW := r.lin.NoiseFloorMW + r.maxInterfMW
	sinr := r.lockedPower - phy.MilliwattToDBm(floorMW)
	return sinr >= prof.SINRRequiredDB[idx]
}

// updateCCA recomputes physical carrier sense and reports edges.
// The medium is busy at this radio when it is transmitting, when its
// receive chain is locked, or when total in-air energy exceeds the
// energy-detect threshold.
func (r *Radio) updateCCA() {
	busy := r.state == stateTransmit || r.locked != nil
	if !busy && len(r.arrivals) > 0 {
		var mw float64
		for _, a := range r.arrivals {
			mw += a.mw
		}
		busy = mw >= r.lin.CCAThresholdMW
	}
	if busy != r.ccaBusy {
		r.ccaBusy = busy
		r.handler.CCAChanged(busy)
	}
}
