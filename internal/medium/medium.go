// Package medium simulates the shared wireless channel: it propagates
// every transmission to every radio, maintains per-receiver energy
// bookkeeping for physical carrier sense (CCA), decides which frames are
// decodable under cumulative co-channel interference (SINR), and models
// preamble locking with power capture.
//
// The medium is where the paper's three ranges become emergent behaviour
// rather than configured constants:
//
//   - TX_range: a frame decodes only if its received power clears the
//     per-rate sensitivity and SINR requirement (shorter for faster rates).
//   - PCS_range: CCA reports busy whenever total received energy exceeds
//     the energy-detect threshold, far below decode sensitivity.
//   - IF_range: a transmission too weak to decode still raises the
//     interference floor at distant receivers and can corrupt their
//     receptions.
package medium

import (
	"fmt"
	"time"

	"adhocsim/internal/frame"
	"adhocsim/internal/phy"
	"adhocsim/internal/sim"
)

// Handler receives PHY indications. It is implemented by the MAC.
// Callbacks are invoked synchronously from the event loop.
type Handler interface {
	// CCAChanged reports physical carrier sense edges: busy=true when the
	// medium becomes busy at this radio, false when it returns to idle.
	CCAChanged(busy bool)

	// RxEnd reports the end of a locked reception. ok=true delivers a
	// decoded frame; ok=false is a PHY reception error (the receiver
	// locked onto a preamble but could not decode the body — FCS error),
	// which must trigger EIFS at the MAC. f is non-nil in both cases.
	RxEnd(f *frame.Frame, rate phy.Rate, rssiDBm float64, ok bool)

	// TxDone reports that this radio's own transmission left the air.
	TxDone()
}

// irrelevantMarginDB is how far under a receiver's noise floor an
// arrival must be before the medium stops simulating it at that
// receiver. At 20 dB each skipped arrival carries at most 1% of the
// noise power, so any CCA, preamble-lock, or SINR decision would need
// on the order of a hundred such arrivals overlapping at one receiver
// before the summed skipped energy rivals the noise floor itself. This
// is a deliberate approximation: it trades exactness in that
// pathological regime (dozens of concurrent transmitters all barely
// under the floor at the same radio) for O(radios-within-earshot)
// event scheduling instead of O(all radios) per transmission.
const irrelevantMarginDB = 20

// Medium is the shared broadcast channel connecting a set of radios.
type Medium struct {
	sched *sim.Scheduler
	src   *sim.Source

	radios []*Radio

	// Counters (aggregate, for experiments and tests).
	Transmissions uint64
	Deliveries    uint64
	PHYErrors     uint64
}

// New returns an empty medium driven by sched, drawing fading values
// from src.
func New(sched *sim.Scheduler, src *sim.Source) *Medium {
	return &Medium{sched: sched, src: src}
}

// Now returns the current simulated time.
func (m *Medium) Now() time.Duration { return m.sched.Now() }

// radioState tracks what a radio's receive chain is doing.
type radioState uint8

const (
	stateListen radioState = iota
	stateTransmit
)

// Radio is one station's PHY attachment to the medium.
type Radio struct {
	id      uint32
	m       *Medium
	pos     phy.Position
	profile *phy.Profile
	handler Handler

	state radioState

	// arrivals maps every in-flight transmission overlapping this radio
	// to its received power in dBm (fixed at arrival time, one fading
	// epoch per frame).
	arrivals map[*transmission]float64

	// locked is the transmission the receive chain is synchronized to.
	locked       *transmission
	lockedPower  float64 // dBm
	maxInterfMW  float64 // worst cumulative interference during the lock
	ccaBusy      bool
	txEndPending *sim.Event

	// Counters.
	FramesSent      uint64
	FramesDecoded   uint64
	FramesErrored   uint64 // locked but failed decode (→ EIFS at MAC)
	FramesMissed    uint64 // arrived while busy or below preamble detect
	CaptureSwitches uint64
}

// transmission is one frame in flight.
type transmission struct {
	from *Radio
	f    *frame.Frame
	rate phy.Rate
	end  time.Duration
}

// AddRadio attaches a radio at pos with the given profile and handler.
// The id must be unique; it keys the fading process.
func (m *Medium) AddRadio(id uint32, pos phy.Position, profile *phy.Profile, h Handler) *Radio {
	for _, r := range m.radios {
		if r.id == id {
			panic(fmt.Sprintf("medium: duplicate radio id %d", id))
		}
	}
	r := &Radio{
		id:       id,
		m:        m,
		pos:      pos,
		profile:  profile,
		handler:  h,
		arrivals: make(map[*transmission]float64),
	}
	m.radios = append(m.radios, r)
	return r
}

// ID returns the radio identifier.
func (r *Radio) ID() uint32 { return r.id }

// Pos returns the radio's current position.
func (r *Radio) Pos() phy.Position { return r.pos }

// SetPos moves the radio (mobility support). Takes effect for
// transmissions that begin after the move.
func (r *Radio) SetPos(p phy.Position) { r.pos = p }

// Profile returns the radio's PHY profile.
func (r *Radio) Profile() *phy.Profile { return r.profile }

// CCABusy reports the current physical-carrier-sense state.
func (r *Radio) CCABusy() bool { return r.ccaBusy }

// Transmitting reports whether the radio is currently transmitting.
func (r *Radio) Transmitting() bool { return r.state == stateTransmit }

// Transmit puts f on the air at the given rate and returns its airtime.
// The radio's receive chain is disabled for the duration (half-duplex);
// any reception in progress is abandoned. TxDone fires when the frame
// leaves the air.
func (r *Radio) Transmit(f *frame.Frame, rate phy.Rate) time.Duration {
	if r.state == stateTransmit {
		panic("medium: Transmit while already transmitting")
	}
	if !rate.Valid() {
		panic(fmt.Sprintf("medium: invalid rate %d", rate))
	}
	now := r.m.sched.Now()
	air := f.AirTime(rate)
	r.m.Transmissions++
	r.FramesSent++

	// Half-duplex: abandon any lock; the abandoned frame still occupies
	// the arrivals set (it remains energy in the air).
	r.locked = nil
	r.maxInterfMW = 0
	r.state = stateTransmit
	r.updateCCA()

	tx := &transmission{from: r, f: f, rate: rate, end: now + air}
	for _, rx := range r.m.radios {
		if rx == r {
			continue
		}
		rx := rx
		d := phy.Dist(r.pos, rx.pos)
		p := r.profile.RxPowerDBm(r.m.src, uint64(r.id), uint64(rx.id), d, now)
		if p < rx.profile.NoiseFloorDBm-irrelevantMarginDB {
			// The frame arrives so far under this receiver's noise floor
			// that it cannot shift any CCA, lock, or SINR decision; skip
			// the arrival bookkeeping entirely. In sparse wide-area
			// topologies this turns the per-transmission event cost from
			// O(radios) into O(radios within earshot).
			continue
		}
		r.m.sched.At(now+phy.PropDelay, func() { rx.arrivalStart(tx, p) })
		r.m.sched.At(now+air+phy.PropDelay, func() { rx.arrivalEnd(tx) })
	}
	r.txEndPending = r.m.sched.At(now+air, func() {
		r.state = stateListen
		r.txEndPending = nil
		r.updateCCA()
		r.handler.TxDone()
	})
	return air
}

// DebugArrival, when set, observes every arrival edge (test hook).
var DebugArrival func(rx uint32, from uint32, powerDBm float64, state string)

// arrivalStart handles the leading edge of a transmission reaching this
// radio.
func (r *Radio) arrivalStart(tx *transmission, powerDBm float64) {
	r.arrivals[tx] = powerDBm
	prof := r.profile
	if DebugArrival != nil {
		st := "listen-unlocked"
		if r.state == stateTransmit {
			st = "transmitting"
		} else if r.locked != nil {
			st = "locked"
		}
		DebugArrival(r.id, tx.from.id, powerDBm, st)
	}

	switch {
	case r.state == stateTransmit:
		// Half-duplex: cannot hear anything while transmitting.
		r.FramesMissed++
	case powerDBm < prof.PLCPDetectDBm:
		// Too weak to synchronize: pure energy/interference.
		r.FramesMissed++
	case r.locked == nil:
		// Preamble must clear the interference floor to synchronize.
		if powerDBm >= r.interferenceFloorDBm(tx)+prof.SINRRequiredDB[phy.Rate1.Index()] {
			r.lock(tx, powerDBm)
		} else {
			r.FramesMissed++
		}
	case powerDBm >= r.lockedPower+prof.CaptureMarginDB:
		// Message-in-message capture: a much stronger newcomer steals
		// the receiver; the previous frame is lost.
		r.CaptureSwitches++
		r.FramesMissed++ // the abandoned frame
		r.lock(tx, powerDBm)
	default:
		r.FramesMissed++
	}

	if r.locked != nil && r.locked != tx {
		// Newcomer interferes with the locked frame.
		r.noteInterference()
	}
	r.updateCCA()
}

func (r *Radio) lock(tx *transmission, powerDBm float64) {
	r.locked = tx
	r.lockedPower = powerDBm
	r.maxInterfMW = 0
	r.noteInterference()
}

// noteInterference records the current cumulative interference against
// the locked frame. The decode verdict uses the worst value seen during
// the whole reception.
func (r *Radio) noteInterference() {
	var mw float64
	for tx, p := range r.arrivals {
		if tx != r.locked {
			mw += phy.DBmToMilliwatt(p)
		}
	}
	if mw > r.maxInterfMW {
		r.maxInterfMW = mw
	}
}

// interferenceFloorDBm returns noise + all arrivals except tx, in dBm.
func (r *Radio) interferenceFloorDBm(except *transmission) float64 {
	mw := phy.DBmToMilliwatt(r.profile.NoiseFloorDBm)
	for tx, p := range r.arrivals {
		if tx != except {
			mw += phy.DBmToMilliwatt(p)
		}
	}
	return phy.MilliwattToDBm(mw)
}

// arrivalEnd handles the trailing edge of a transmission at this radio.
func (r *Radio) arrivalEnd(tx *transmission) {
	delete(r.arrivals, tx)
	if r.locked == tx {
		r.locked = nil
		ok := r.verdict(tx)
		if ok {
			r.FramesDecoded++
			r.m.Deliveries++
		} else {
			r.FramesErrored++
			r.m.PHYErrors++
		}
		power := r.lockedPower
		r.maxInterfMW = 0
		r.updateCCA()
		r.handler.RxEnd(tx.f, tx.rate, power, ok)
		return
	}
	r.updateCCA()
}

// verdict decides whether the locked frame decoded successfully: power
// above the rate's sensitivity, and SINR above the rate's requirement
// against the worst noise+interference seen during the reception.
func (r *Radio) verdict(tx *transmission) bool {
	prof := r.profile
	idx := tx.rate.Index()
	if r.lockedPower < prof.SensitivityDBm[idx] {
		return false
	}
	floorMW := phy.DBmToMilliwatt(prof.NoiseFloorDBm) + r.maxInterfMW
	sinr := r.lockedPower - phy.MilliwattToDBm(floorMW)
	return sinr >= prof.SINRRequiredDB[idx]
}

// updateCCA recomputes physical carrier sense and reports edges.
// The medium is busy at this radio when it is transmitting, when its
// receive chain is locked, or when total in-air energy exceeds the
// energy-detect threshold.
func (r *Radio) updateCCA() {
	busy := r.state == stateTransmit || r.locked != nil
	if !busy {
		var mw float64
		for _, p := range r.arrivals {
			mw += phy.DBmToMilliwatt(p)
		}
		busy = mw >= phy.DBmToMilliwatt(r.profile.CCAThresholdDBm)
	}
	if busy != r.ccaBusy {
		r.ccaBusy = busy
		r.handler.CCAChanged(busy)
	}
}
