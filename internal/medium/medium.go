// Package medium simulates the shared wireless channel: it propagates
// every transmission to every radio it can physically matter to,
// maintains per-receiver energy bookkeeping for physical carrier sense
// (CCA), decides which frames are decodable under cumulative co-channel
// interference (SINR), and models preamble locking with power capture.
//
// The medium is where the paper's three ranges become emergent behaviour
// rather than configured constants:
//
//   - TX_range: a frame decodes only if its received power clears the
//     per-rate sensitivity and SINR requirement (shorter for faster rates).
//   - PCS_range: CCA reports busy whenever total received energy exceeds
//     the energy-detect threshold, far below decode sensitivity.
//   - IF_range: a transmission too weak to decode still raises the
//     interference floor at distant receivers and can corrupt their
//     receptions.
//
// Because the ranges are emergent, the medium cannot use a configured
// "who hears whom" adjacency; instead it derives a hard relevance radius
// from the radio model itself — the distance beyond which no shadowing
// draw can lift a transmission's power to within IrrelevantMarginDB of
// any receiver's noise floor (phy.Profile.ReachRange) — and keeps the
// radios in a spatial hash grid (phy.CellIndex) with that radius as the
// cell size. Transmit then touches only the 3×3 cell neighborhood of the
// transmitter: per-transmission cost is proportional to the stations in
// earshot, not the stations in existence, which is what makes
// thousand-station fields tractable. Candidates are dispatched in
// ascending radio-id order — identical to the pre-index insertion order
// for networks built by internal/node — so fixed-seed runs are
// bit-identical with and without the index (see SetBruteForce).
//
// The per-transmission bookkeeping runs allocation-free in steady state:
// arrival records and transmission descriptors are pooled, and both are
// scheduled through sim.Scheduler's Action path rather than closures.
package medium

import (
	"fmt"
	"math"
	"slices"
	"time"

	"adhocsim/internal/frame"
	"adhocsim/internal/phy"
	"adhocsim/internal/sim"
)

// Handler receives PHY indications. It is implemented by the MAC.
// Callbacks are invoked synchronously from the event loop.
type Handler interface {
	// CCAChanged reports physical carrier sense edges: busy=true when the
	// medium becomes busy at this radio, false when it returns to idle.
	CCAChanged(busy bool)

	// RxEnd reports the end of a locked reception. ok=true delivers a
	// decoded frame; ok=false is a PHY reception error (the receiver
	// locked onto a preamble but could not decode the body — FCS error),
	// which must trigger EIFS at the MAC. f is non-nil in both cases.
	RxEnd(f *frame.Frame, rate phy.Rate, rssiDBm float64, ok bool)

	// TxDone reports that this radio's own transmission left the air.
	TxDone()
}

// IrrelevantMarginDB is how far under a receiver's noise floor an
// arrival must be before the medium stops simulating it at that
// receiver. At 20 dB each skipped arrival carries at most 1% of the
// noise power, so any CCA, preamble-lock, or SINR decision would need
// on the order of a hundred such arrivals overlapping at one receiver
// before the summed skipped energy rivals the noise floor itself. This
// is a deliberate approximation: it trades exactness in that
// pathological regime (dozens of concurrent transmitters all barely
// under the floor at the same radio) for O(radios-within-earshot)
// event scheduling instead of O(all radios) per transmission.
const IrrelevantMarginDB = 20

// Medium is the shared broadcast channel connecting a set of radios.
type Medium struct {
	sched *sim.Scheduler
	src   *sim.Source

	radios []*Radio
	byID   map[uint32]*Radio

	// index is the spatial neighbor grid; nil while dirty, after
	// SetBruteForce(true), or when a degenerate radio model admits no
	// finite relevance radius (Transmit then falls back to exhaustive
	// propagation). It is rebuilt lazily on the first Transmit after a
	// radio set change and updated incrementally by Radio.SetPos.
	index      *phy.CellIndex
	indexDirty bool
	bruteForce bool

	// Pools: reused across transmissions so the steady-state event flow
	// allocates nothing.
	freeArrivals []*arrival
	freeTx       []*transmission
	candidates   []uint32 // scratch buffer for index queries

	// Counters (aggregate, for experiments and tests).
	Transmissions uint64
	Deliveries    uint64
	PHYErrors     uint64
}

// New returns an empty medium driven by sched, drawing fading values
// from src.
func New(sched *sim.Scheduler, src *sim.Source) *Medium {
	return &Medium{
		sched:      sched,
		src:        src,
		byID:       make(map[uint32]*Radio),
		indexDirty: true,
	}
}

// Now returns the current simulated time.
func (m *Medium) Now() time.Duration { return m.sched.Now() }

// SetBruteForce disables (true) or re-enables (false) the spatial
// neighbor index, forcing Transmit back to exhaustive per-radio
// propagation in radio insertion order — the pre-index reference
// behaviour. It exists for verification: the mobility equivalence tests
// run the same seed with and without the index and require identical
// metrics. Production callers never need it.
func (m *Medium) SetBruteForce(on bool) {
	m.bruteForce = on
	m.indexDirty = true
}

// ensureIndex rebuilds the neighbor grid if the radio set changed since
// the last transmission. The cell size is the maximum relevance radius
// over all transmitter profiles against the lowest noise floor on the
// field, so any transmission's candidate set lies within the 3×3 cell
// block around the transmitter.
func (m *Medium) ensureIndex() {
	if !m.indexDirty {
		return
	}
	m.indexDirty = false
	m.index = nil
	if m.bruteForce || len(m.radios) == 0 {
		return
	}
	minFloor := math.Inf(1)
	for _, r := range m.radios {
		if f := r.profile.NoiseFloorDBm; f < minFloor {
			minFloor = f
		}
	}
	threshold := minFloor - IrrelevantMarginDB
	maxReach := 0.0
	for _, r := range m.radios {
		// A non-positive path-loss exponent means received power does not
		// fall with distance, so no relevance radius exists at all; a
		// non-finite ReachRange means the budget never runs out. Either
		// way the index cannot soundly prune anything — keep the
		// exhaustive path.
		d := r.profile.ReachRange(threshold)
		if r.profile.PathLoss.Exponent <= 0 || !(d > 0) || math.IsInf(d, 1) {
			return
		}
		r.reach = d
		if d > maxReach {
			maxReach = d
		}
	}
	ix := phy.NewCellIndex(maxReach)
	for _, r := range m.radios {
		ix.Insert(r.id, r.pos)
	}
	m.index = ix
}

// radioState tracks what a radio's receive chain is doing.
type radioState uint8

const (
	stateListen radioState = iota
	stateTransmit
)

// Radio is one station's PHY attachment to the medium.
type Radio struct {
	id      uint32
	m       *Medium
	pos     phy.Position
	profile *phy.Profile
	handler Handler

	state radioState

	// reach is this radio's transmit relevance radius in meters, set by
	// Medium.ensureIndex: beyond it no receiver on the field can see
	// this radio's frames above the irrelevance threshold.
	reach float64

	// txEnd is the pooled end-of-own-transmission action, scheduled once
	// per Transmit without allocating.
	txEnd txEndAction

	// arrivals lists every in-flight transmission overlapping this radio
	// with its received power (fixed at arrival time, one fading epoch
	// per frame), in arrival order. A slice rather than a map: the
	// handful of entries makes linear scans faster than hashing, and —
	// decisive for the determinism contract — the interference/CCA power
	// sums accumulate in a fixed order, where Go's randomized map
	// iteration would let three-summand float sums differ between
	// identically-seeded runs. The linear power form is cached at the
	// leading edge so the hot sums never re-run the dBm→mW exponential.
	arrivals []arrivalEntry

	// locked is the transmission the receive chain is synchronized to.
	locked       *transmission
	lockedPower  float64 // dBm
	maxInterfMW  float64 // worst cumulative interference during the lock
	ccaBusy      bool
	txEndPending sim.Event

	// Counters.
	FramesSent      uint64
	FramesDecoded   uint64
	FramesErrored   uint64 // locked but failed decode (→ EIFS at MAC)
	FramesMissed    uint64 // arrived while busy or below preamble detect
	CaptureSwitches uint64
}

// transmission is one frame in flight. Descriptors are pooled: refs
// counts the arrival records still holding one, and the descriptor
// returns to the pool when the last arrival completes.
type transmission struct {
	from *Radio
	f    *frame.Frame
	rate phy.Rate
	end  time.Duration
	refs int32
}

// arrivalEntry is one in-flight transmission's received power at one
// radio, in both scales: dBm for lock/sensitivity decisions, linear
// milliwatts for energy summation.
type arrivalEntry struct {
	tx  *transmission
	dbm float64
	mw  float64
}

// arrival is the pooled per-receiver record of one transmission
// overlapping one radio. It is scheduled twice — once at the leading
// edge, once at the trailing edge — replacing the closure pair the
// medium used to allocate per receiver.
type arrival struct {
	rx       *Radio
	tx       *transmission
	powerDBm float64
	started  bool
}

// Act fires the arrival's next edge.
func (a *arrival) Act() {
	if !a.started {
		a.started = true
		a.rx.arrivalStart(a.tx, a.powerDBm)
		return
	}
	rx, tx := a.rx, a.tx
	m := rx.m
	m.releaseArrival(a)
	rx.arrivalEnd(tx)
	if tx.refs--; tx.refs == 0 {
		m.releaseTransmission(tx)
	}
}

// txEndAction returns a transmitting radio to listen state when its own
// frame leaves the air.
type txEndAction struct{ r *Radio }

// Act implements sim.Action.
func (t *txEndAction) Act() {
	r := t.r
	r.state = stateListen
	r.txEndPending = sim.Event{}
	r.updateCCA()
	r.handler.TxDone()
}

func (m *Medium) newArrival(rx *Radio, tx *transmission, powerDBm float64) *arrival {
	var a *arrival
	if n := len(m.freeArrivals); n > 0 {
		a = m.freeArrivals[n-1]
		m.freeArrivals = m.freeArrivals[:n-1]
	} else {
		a = new(arrival)
	}
	*a = arrival{rx: rx, tx: tx, powerDBm: powerDBm}
	return a
}

func (m *Medium) releaseArrival(a *arrival) {
	*a = arrival{}
	m.freeArrivals = append(m.freeArrivals, a)
}

func (m *Medium) newTransmission(from *Radio, f *frame.Frame, rate phy.Rate, end time.Duration) *transmission {
	var tx *transmission
	if n := len(m.freeTx); n > 0 {
		tx = m.freeTx[n-1]
		m.freeTx = m.freeTx[:n-1]
	} else {
		tx = new(transmission)
	}
	*tx = transmission{from: from, f: f, rate: rate, end: end}
	return tx
}

func (m *Medium) releaseTransmission(tx *transmission) {
	*tx = transmission{}
	m.freeTx = append(m.freeTx, tx)
}

// AddRadio attaches a radio at pos with the given profile and handler.
// The id must be unique; it keys the fading process and the spatial
// index.
func (m *Medium) AddRadio(id uint32, pos phy.Position, profile *phy.Profile, h Handler) *Radio {
	if _, dup := m.byID[id]; dup {
		panic(fmt.Sprintf("medium: duplicate radio id %d", id))
	}
	r := &Radio{
		id:      id,
		m:       m,
		pos:     pos,
		profile: profile,
		handler: h,
	}
	r.txEnd.r = r
	m.byID[id] = r
	m.radios = append(m.radios, r)
	m.indexDirty = true
	return r
}

// ID returns the radio identifier.
func (r *Radio) ID() uint32 { return r.id }

// Pos returns the radio's current position.
func (r *Radio) Pos() phy.Position { return r.pos }

// SetPos moves the radio (mobility support). Takes effect for
// transmissions that begin after the move. The spatial index follows
// incrementally: a move within the radio's current grid cell is O(1)
// bookkeeping, and only a cell-boundary crossing relocates it.
func (r *Radio) SetPos(p phy.Position) {
	r.pos = p
	if m := r.m; m.index != nil && !m.indexDirty {
		m.index.Move(r.id, p)
	}
}

// Profile returns the radio's PHY profile.
func (r *Radio) Profile() *phy.Profile { return r.profile }

// CCABusy reports the current physical-carrier-sense state.
func (r *Radio) CCABusy() bool { return r.ccaBusy }

// Transmitting reports whether the radio is currently transmitting.
func (r *Radio) Transmitting() bool { return r.state == stateTransmit }

// Transmit puts f on the air at the given rate and returns its airtime.
// The radio's receive chain is disabled for the duration (half-duplex);
// any reception in progress is abandoned. TxDone fires when the frame
// leaves the air.
func (r *Radio) Transmit(f *frame.Frame, rate phy.Rate) time.Duration {
	if r.state == stateTransmit {
		panic("medium: Transmit while already transmitting")
	}
	if !rate.Valid() {
		panic(fmt.Sprintf("medium: invalid rate %d", rate))
	}
	m := r.m
	now := m.sched.Now()
	air := f.AirTime(rate)
	m.Transmissions++
	r.FramesSent++

	// Half-duplex: abandon any lock; the abandoned frame still occupies
	// the arrivals set (it remains energy in the air).
	r.locked = nil
	r.maxInterfMW = 0
	r.state = stateTransmit
	r.updateCCA()

	tx := m.newTransmission(r, f, rate, now+air)
	m.ensureIndex()
	if m.index == nil {
		for _, rx := range m.radios {
			m.propagate(tx, r, rx, now, air)
		}
	} else {
		// Candidate cells are visited in deterministic grid order; the
		// gathered ids are then dispatched ascending, which coincides
		// with the exhaustive path's insertion order for node-built
		// networks (ids are assigned sequentially), keeping fixed-seed
		// runs bit-identical across the index.
		ids := m.index.AppendWithin(m.candidates[:0], r.pos, r.reach)
		slices.Sort(ids)
		m.candidates = ids
		for _, id := range ids {
			m.propagate(tx, r, m.byID[id], now, air)
		}
	}
	r.txEndPending = m.sched.AtAction(now+air, &r.txEnd)
	if tx.refs == 0 {
		// Nobody in earshot: the descriptor never entered any receiver's
		// bookkeeping.
		m.releaseTransmission(tx)
	}
	return air
}

// propagate schedules tx's leading and trailing edges at rx, unless the
// frame arrives so far under rx's noise floor that it cannot shift any
// CCA, lock, or SINR decision there.
func (m *Medium) propagate(tx *transmission, from, rx *Radio, now, air time.Duration) {
	if rx == from {
		return
	}
	d := phy.Dist(from.pos, rx.pos)
	p := from.profile.RxPowerDBm(m.src, uint64(from.id), uint64(rx.id), d, now)
	if p < rx.profile.NoiseFloorDBm-IrrelevantMarginDB {
		return
	}
	tx.refs++
	a := m.newArrival(rx, tx, p)
	m.sched.AtAction(now+phy.PropDelay, a)
	m.sched.AtAction(now+air+phy.PropDelay, a)
}

// DebugArrival, when set, observes every arrival edge (test hook).
var DebugArrival func(rx uint32, from uint32, powerDBm float64, state string)

// arrivalStart handles the leading edge of a transmission reaching this
// radio.
func (r *Radio) arrivalStart(tx *transmission, powerDBm float64) {
	r.arrivals = append(r.arrivals, arrivalEntry{tx: tx, dbm: powerDBm, mw: phy.DBmToMilliwatt(powerDBm)})
	prof := r.profile
	if DebugArrival != nil {
		st := "listen-unlocked"
		if r.state == stateTransmit {
			st = "transmitting"
		} else if r.locked != nil {
			st = "locked"
		}
		DebugArrival(r.id, tx.from.id, powerDBm, st)
	}

	switch {
	case r.state == stateTransmit:
		// Half-duplex: cannot hear anything while transmitting.
		r.FramesMissed++
	case powerDBm < prof.PLCPDetectDBm:
		// Too weak to synchronize: pure energy/interference.
		r.FramesMissed++
	case r.locked == nil:
		// Preamble must clear the interference floor to synchronize.
		if powerDBm >= r.interferenceFloorDBm(tx)+prof.SINRRequiredDB[phy.Rate1.Index()] {
			r.lock(tx, powerDBm)
		} else {
			r.FramesMissed++
		}
	case powerDBm >= r.lockedPower+prof.CaptureMarginDB:
		// Message-in-message capture: a much stronger newcomer steals
		// the receiver; the previous frame is lost.
		r.CaptureSwitches++
		r.FramesMissed++ // the abandoned frame
		r.lock(tx, powerDBm)
	default:
		r.FramesMissed++
	}

	if r.locked != nil && r.locked != tx {
		// Newcomer interferes with the locked frame.
		r.noteInterference()
	}
	r.updateCCA()
}

func (r *Radio) lock(tx *transmission, powerDBm float64) {
	r.locked = tx
	r.lockedPower = powerDBm
	r.maxInterfMW = 0
	r.noteInterference()
}

// noteInterference records the current cumulative interference against
// the locked frame. The decode verdict uses the worst value seen during
// the whole reception.
func (r *Radio) noteInterference() {
	var mw float64
	for _, a := range r.arrivals {
		if a.tx != r.locked {
			mw += a.mw
		}
	}
	if mw > r.maxInterfMW {
		r.maxInterfMW = mw
	}
}

// interferenceFloorDBm returns noise + all arrivals except tx, in dBm.
func (r *Radio) interferenceFloorDBm(except *transmission) float64 {
	mw := phy.DBmToMilliwatt(r.profile.NoiseFloorDBm)
	for _, a := range r.arrivals {
		if a.tx != except {
			mw += a.mw
		}
	}
	return phy.MilliwattToDBm(mw)
}

// arrivalEnd handles the trailing edge of a transmission at this radio.
func (r *Radio) arrivalEnd(tx *transmission) {
	for i := range r.arrivals {
		if r.arrivals[i].tx == tx {
			// Remove preserving arrival order, so later sums stay a pure
			// function of the remaining arrival sequence.
			last := len(r.arrivals) - 1
			copy(r.arrivals[i:], r.arrivals[i+1:])
			r.arrivals[last] = arrivalEntry{}
			r.arrivals = r.arrivals[:last]
			break
		}
	}
	if r.locked == tx {
		r.locked = nil
		ok := r.verdict(tx)
		if ok {
			r.FramesDecoded++
			r.m.Deliveries++
		} else {
			r.FramesErrored++
			r.m.PHYErrors++
		}
		power := r.lockedPower
		r.maxInterfMW = 0
		r.updateCCA()
		r.handler.RxEnd(tx.f, tx.rate, power, ok)
		return
	}
	r.updateCCA()
}

// verdict decides whether the locked frame decoded successfully: power
// above the rate's sensitivity, and SINR above the rate's requirement
// against the worst noise+interference seen during the reception.
func (r *Radio) verdict(tx *transmission) bool {
	prof := r.profile
	idx := tx.rate.Index()
	if r.lockedPower < prof.SensitivityDBm[idx] {
		return false
	}
	floorMW := phy.DBmToMilliwatt(prof.NoiseFloorDBm) + r.maxInterfMW
	sinr := r.lockedPower - phy.MilliwattToDBm(floorMW)
	return sinr >= prof.SINRRequiredDB[idx]
}

// updateCCA recomputes physical carrier sense and reports edges.
// The medium is busy at this radio when it is transmitting, when its
// receive chain is locked, or when total in-air energy exceeds the
// energy-detect threshold.
func (r *Radio) updateCCA() {
	busy := r.state == stateTransmit || r.locked != nil
	if !busy && len(r.arrivals) > 0 {
		var mw float64
		for _, a := range r.arrivals {
			mw += a.mw
		}
		busy = mw >= phy.DBmToMilliwatt(r.profile.CCAThresholdDBm)
	}
	if busy != r.ccaBusy {
		r.ccaBusy = busy
		r.handler.CCAChanged(busy)
	}
}
