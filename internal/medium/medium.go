// Package medium simulates the shared wireless channel: it propagates
// every transmission to every radio it can physically matter to,
// maintains per-receiver energy bookkeeping for physical carrier sense
// (CCA), decides which frames are decodable under cumulative co-channel
// interference (SINR), and models preamble locking with power capture.
//
// The medium is where the paper's three ranges become emergent behaviour
// rather than configured constants:
//
//   - TX_range: a frame decodes only if its received power clears the
//     per-rate sensitivity and SINR requirement (shorter for faster rates).
//   - PCS_range: CCA reports busy whenever total received energy exceeds
//     the energy-detect threshold, far below decode sensitivity.
//   - IF_range: a transmission too weak to decode still raises the
//     interference floor at distant receivers and can corrupt their
//     receptions.
//
// Because the ranges are emergent, the medium cannot use a configured
// "who hears whom" adjacency; instead it derives a hard relevance radius
// from the radio model itself — the distance beyond which no shadowing
// draw can lift a transmission's power to within IrrelevantMarginDB of
// any receiver's noise floor (phy.Profile.ReachRange) — and keeps the
// radios in a spatial hash grid (phy.CellIndex) with that radius as the
// cell size. Transmit then touches only the 3×3 cell neighborhood of the
// transmitter: per-transmission cost is proportional to the stations in
// earshot, not the stations in existence, which is what makes
// thousand-station fields tractable. Candidates are dispatched in
// ascending radio-id order — identical to the pre-index insertion order
// for networks built by internal/node — so fixed-seed runs are
// bit-identical with and without the index (see SetBruteForce).
//
// The per-transmission bookkeeping runs allocation-free in steady state:
// transmission descriptors are pooled and carry their receiver set
// inline, and the leading/trailing propagation edges are scheduled as
// two batch Actions per transmission (every receiver shares the same
// edge instants) rather than a closure or event pair per receiver — so
// the scheduler's pending set scales with transmissions in flight, not
// with receivers in earshot.
package medium

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"time"

	"adhocsim/internal/frame"
	"adhocsim/internal/phy"
	"adhocsim/internal/sim"
)

// Handler receives PHY indications. It is implemented by the MAC.
// Callbacks are invoked synchronously from the event loop.
type Handler interface {
	// CCAChanged reports physical carrier sense edges: busy=true when the
	// medium becomes busy at this radio, false when it returns to idle.
	CCAChanged(busy bool)

	// RxEnd reports the end of a locked reception. ok=true delivers a
	// decoded frame; ok=false is a PHY reception error (the receiver
	// locked onto a preamble but could not decode the body — FCS error),
	// which must trigger EIFS at the MAC. f is non-nil in both cases.
	RxEnd(f *frame.Frame, rate phy.Rate, rssiDBm float64, ok bool)

	// TxDone reports that this radio's own transmission left the air.
	TxDone()
}

// IrrelevantMarginDB is how far under a receiver's noise floor an
// arrival must be before the medium stops simulating it at that
// receiver. At 20 dB each skipped arrival carries at most 1% of the
// noise power, so any CCA, preamble-lock, or SINR decision would need
// on the order of a hundred such arrivals overlapping at one receiver
// before the summed skipped energy rivals the noise floor itself. This
// is a deliberate approximation: it trades exactness in that
// pathological regime (dozens of concurrent transmitters all barely
// under the floor at the same radio) for O(radios-within-earshot)
// event scheduling instead of O(all radios) per transmission.
const IrrelevantMarginDB = 20

// Medium is the shared broadcast channel connecting a set of radios.
type Medium struct {
	sched *sim.Scheduler
	src   *sim.Source

	radios []*Radio
	byID   map[uint32]*Radio

	// Struct-of-arrays mirrors of the per-radio state the transmit inner
	// loop reads per candidate, indexed by radio slot: id, position, the
	// mobility epoch keying the link-gain cache, and the precomputed
	// irrelevance power cut. Packing them densely keeps the per-candidate
	// work inside a few sequential cache lines instead of chasing a map
	// probe plus a Radio pointer per candidate; the *Radio itself is
	// touched only when the candidate survives the power cut. The arrays
	// are mirrors — Radio.pos stays authoritative for the public API —
	// kept in sync by AddRadio, SetPos and Reset.
	soaID    []uint32
	soaPos   []phy.Position
	soaMove  []uint64
	soaIrrel []float64

	// gainRows is the link-gain cache: one row per transmitter slot,
	// indexed by receiver slot, rows allocated lazily on first
	// transmission (see linkGain).
	gainRows [][]linkGain

	// idsMonotone records whether radio ids ascend in slot order — true
	// for node-built networks, which assign ids sequentially. It lets
	// sortCandidates order slots directly instead of through the id
	// array.
	idsMonotone bool

	// index is the spatial neighbor grid; nil while dirty, after
	// SetBruteForce(true), or when a degenerate radio model admits no
	// finite relevance radius (Transmit then falls back to exhaustive
	// propagation). It is rebuilt lazily on the first Transmit after a
	// radio set change and updated incrementally by Radio.SetPos.
	index      *phy.CellIndex
	indexDirty bool
	bruteForce bool

	// posEpoch stamps the station geometry. It advances on every radio
	// insertion, move, arena reset, and reference-path toggle, and
	// validates the per-transmitter candidate memos (Radio.cand): while
	// the geometry stands still, a repeat transmitter's index walk and
	// dispatch-order sort collapse to a slice reuse.
	posEpoch uint64

	// gainSeed is the sim.Source root seed the link-gain cache contents
	// were drawn under; Reset invalidates the cache only when the seed
	// it finds on the source differs.
	gainSeed uint64

	// gainCacheOff forces the direct per-arrival PHY computation, the
	// pre-cache reference path (SetGainCache). The cache itself is
	// gainRows above, indexed by transmitter then receiver slot, so a
	// hot-path lookup is an array index rather than a map probe.
	gainCacheOff bool

	// incrementalOff forces the receivers' interference/CCA energy sums
	// back to the per-edge recomputation loops, the reference path
	// (SetIncremental).
	incrementalOff bool

	// deg is the run's link-degradation timeline (nil when no fault
	// schedule is installed): an immutable piecewise-constant offset the
	// link-power composition adds after the shadowing terms. See
	// SetDegradation for the cache-invalidation contract.
	deg *DegTimeline

	// Pools: reused across transmissions so the steady-state event flow
	// allocates nothing.
	freeTx []*transmission

	// Parallel partition (nil/empty in sequential mode): the region
	// executor, and one shard of pools + counters per region. See
	// partition.go.
	ex     *sim.Exec
	shards []medShard

	// Counters (aggregate, for experiments and tests).
	Transmissions uint64
	Deliveries    uint64
	PHYErrors     uint64

	// Out-of-band cache-efficiency counters (Stats). Plain fields: in
	// sequential mode one goroutine owns the medium; in parallel mode
	// the hot paths increment the per-region shard mirrors instead and
	// FoldCounters folds them here at the post-join point. They are
	// observability only — nothing reads them on a simulation path.
	gainHits, gainMisses     uint64
	fanReplays, fanBuilds    uint64
	candReuses, candRebuilds uint64
	soaRescans               uint64
}

// Stats is a point-in-time copy of the medium's counters, the raw
// material of the obs layer's cache hit-rate metrics. In parallel mode
// it is exact only after FoldCounters (the node layer folds after every
// Run), and must be read from the post-join goroutine.
type Stats struct {
	Transmissions uint64
	Deliveries    uint64
	PHYErrors     uint64
	GainHits      uint64 // lookups serving the path-loss base from cache
	GainMisses    uint64 // lookups that recomputed the path-loss base
	FanReplays    uint64 // transmissions replayed from the fan-out memo
	FanBuilds     uint64 // transmissions that walked candidates and rebuilt it
	CandReuses    uint64 // candidate-memo reuses (index walk + sort skipped)
	CandRebuilds  uint64 // candidate-memo rebuilds after a geometry change
	SoARescans    uint64 // arrival-list energy-fold rebuilds (trailing edges)
}

// Stats returns the medium's observability counters.
func (m *Medium) Stats() Stats {
	return Stats{
		Transmissions: m.Transmissions,
		Deliveries:    m.Deliveries,
		PHYErrors:     m.PHYErrors,
		GainHits:      m.gainHits,
		GainMisses:    m.gainMisses,
		FanReplays:    m.fanReplays,
		FanBuilds:     m.fanBuilds,
		CandReuses:    m.candReuses,
		CandRebuilds:  m.candRebuilds,
		SoARescans:    m.soaRescans,
	}
}

// New returns an empty medium driven by sched, drawing fading values
// from src.
func New(sched *sim.Scheduler, src *sim.Source) *Medium {
	return &Medium{
		sched:       sched,
		src:         src,
		gainSeed:    src.Seed(),
		byID:        make(map[uint32]*Radio),
		indexDirty:  true,
		idsMonotone: true,
	}
}

// Now returns the current simulated time.
func (m *Medium) Now() time.Duration { return m.sched.Now() }

// SetBruteForce disables (true) or re-enables (false) the spatial
// neighbor index, forcing Transmit back to exhaustive per-radio
// propagation in radio insertion order — the pre-index reference
// behaviour. It exists for verification: the mobility equivalence tests
// run the same seed with and without the index and require identical
// metrics. Production callers never need it.
func (m *Medium) SetBruteForce(on bool) {
	m.bruteForce = on
	m.indexDirty = true
	m.posEpoch++
}

// SetGainCache re-enables (true) or disables (false) the pairwise
// link-gain cache, forcing every propagation back to the direct
// per-arrival PHY computation — the pre-cache reference behaviour.
// Like SetBruteForce it exists for verification: the equivalence tests
// run the same seed with the cache on and off and require identical
// metrics (including sim.Scheduler.Fired). Production callers never
// need it. Re-enabling invalidates any stale entries.
func (m *Medium) SetGainCache(on bool) {
	m.gainCacheOff = !on
	m.invalidateGains()
}

// SetIncremental re-enables (true) or disables (false) the maintained
// per-receiver energy sums, forcing the interference floor, the
// lock-time interference record and CCA back to their per-edge
// recomputation loops — the pre-incremental reference behaviour. The
// maintained sums are constructed to be bit-identical to those loops
// (see arrivalStart), and the equivalence tests run the same seed both
// ways to keep that claim honest. Production callers never need it.
func (m *Medium) SetIncremental(on bool) {
	m.incrementalOff = !on
	for _, r := range m.radios {
		r.recomputeSums()
	}
}

// invalidateGains marks every link-gain entry stale without releasing
// the allocated per-transmitter rows.
func (m *Medium) invalidateGains() {
	for _, row := range m.gainRows {
		for i := range row {
			row[i].have = 0
		}
	}
}

// Reset returns the medium to its just-built state so a replication
// sweep can re-seed a constructed network instead of rebuilding it:
// aggregate counters clear. Everything derived from the run seed or the
// geometry is invalidated exactly when its input actually changes, so a
// same-seed same-placement replication — the benchmark loop, a
// variance-reduction sweep — re-runs on every cached structure intact:
//
//   - The link-gain cache is invalidated (and the fan-out memos
//     staled via posEpoch) only if the owning sim.Source's root seed
//     changed since the entries were drawn — the node layer reseeds
//     the source before calling here, and the shadowing draws are pure
//     functions of (seed, link).
//   - The spatial index and the candidate memos are NOT touched here:
//     Radio.Reset dirties them if (and only if) its radio lands on a
//     new position, and AddRadio/SetBruteForce cover the radio-set and
//     reference-path changes.
//
// The arrival/transmission pools and the cache's allocated entries are
// deliberately retained — reusing them is the point of the arena. Radio
// placement and per-radio state are the caller's next step, via
// Radio.Reset.
func (m *Medium) Reset() {
	m.Transmissions, m.Deliveries, m.PHYErrors = 0, 0, 0
	m.gainHits, m.gainMisses = 0, 0
	m.fanReplays, m.fanBuilds = 0, 0
	m.candReuses, m.candRebuilds = 0, 0
	m.soaRescans = 0
	if seed := m.src.Seed(); seed != m.gainSeed {
		m.gainSeed = seed
		m.invalidateGains()
		m.posEpoch++
	}
}

// Link-gain cache -------------------------------------------------------

// linkGain validity bits.
const (
	gainBase   uint8 = 1 << iota // baseDBm matches the radios' mobility epochs
	gainStatic                   // staticDB drawn for this run
	gainFade                     // fadeDB matches fadeEpoch
	gainDeg                      // degDB matches both endpoints' degradation epochs
	gainMW                       // mw matches the current composed power
)

// linkGain caches the deterministic pieces of one directed link's
// received power, each stored exactly as first computed so cached and
// direct results are bit-identical:
//
//   - baseDBm: transmit power minus log-distance path loss — a pure
//     function of the two positions, invalidated by either radio's
//     mobility epoch (bumped on SetPos). Static stations, the common
//     case, never recompute the math.Log10.
//   - staticDB: the per-run static shadowing draw — a pure function of
//     (seed, link), valid for the whole run.
//   - fadeDB: the time-varying shadowing draw — a pure function of
//     (seed, link, coherence epoch), valid until the epoch rolls over.
//   - mw: the linear-milliwatt form of the composed power, memoized so
//     repeat arrivals within one epoch skip the dBm→mW exponential.
type linkGain struct {
	txMove, rxMove uint64 // mobility epochs the base term was computed at
	fadeEpoch      uint64 // coherence epoch of the cached dynamic fade
	txDegE, rxDegE uint64 // degradation epochs of the cached deg offset
	have           uint8  // gain* validity bits
	baseDBm        float64
	staticDB       float64
	fadeDB         float64
	degDB          float64
	mw             float64
}

// milliwatt returns phy.DBmToMilliwatt(dbm), memoized on the entry
// until any gain component is recomputed (which changes dbm).
func (g *linkGain) milliwatt(dbm float64) float64 {
	if g.have&gainMW == 0 {
		g.mw = phy.DBmToMilliwatt(dbm)
		g.have |= gainMW
	}
	return g.mw
}

// linkPower returns the instantaneous received power in dBm for the
// directed link from the given radio to the receiver in slot rxSlot at
// time now, served from the link-gain cache (the returned entry
// memoizes the linear form; nil when the cache is disabled). The
// receiver side is read entirely from the slot-indexed SoA arrays. The
// composition — path-loss base plus static shadow plus epoch fade,
// summed in that order, then the fault engine's degradation offset when
// a timeline is installed — mirrors phy.Profile.RxPowerDBm exactly, so
// a cache hit is bit-identical to the direct computation the
// gainCacheOff path performs (which decomposes to the same ordered sum
// when degradation is active).
func (m *Medium) linkPower(from *Radio, rxSlot int32, now time.Duration) (float64, *linkGain) {
	rxID := uint64(m.soaID[rxSlot])
	if m.gainCacheOff {
		d := phy.Dist(from.pos, m.soaPos[rxSlot])
		if dg := m.deg; dg != nil {
			// Degradation composes after the shadowing sum — the same
			// association as the cached path's base + ((static+fade)+deg).
			shadow := from.profile.Fading.ShadowDB(m.src, uint64(from.id), rxID, now)
			shadow += dg.linkOffset(from.slot, rxSlot, now)
			return from.profile.MeanRxPowerDBm(d) + shadow, nil
		}
		return from.profile.RxPowerDBm(m.src, uint64(from.id), rxID, d, now), nil
	}
	// The per-transmitter row is sized lazily: only radios that
	// actually transmit pay for one, and the row grows only when the
	// radio set has grown since.
	row := m.gainRows[from.slot]
	if int(rxSlot) >= len(row) {
		row = append(row, make([]linkGain, len(m.radios)-len(row))...)
		m.gainRows[from.slot] = row
	}
	g := &row[rxSlot]
	// Hit/miss classification: the cache exists to skip the
	// transcendental path-loss base (PR 4), so a lookup is a miss only
	// when that base recomputes. Fade/degradation epoch refreshes are
	// cheap keyed lookups that by construction accompany *every* fan-out
	// rebuild (the memo is keyed on those same epochs), so charging them
	// as misses would pin the hit counter at zero forever.
	miss := false
	txMove, rxMove := m.soaMove[from.slot], m.soaMove[rxSlot]
	if g.have&gainBase == 0 || g.txMove != txMove || g.rxMove != rxMove {
		g.baseDBm = from.profile.MeanRxPowerDBm(phy.Dist(from.pos, m.soaPos[rxSlot]))
		g.txMove, g.rxMove = txMove, rxMove
		g.have |= gainBase
		g.have &^= gainMW
		miss = true
	}
	fad := &from.profile.Fading
	var shadow float64
	if fad.StaticSigmaDB != 0 {
		if g.have&gainStatic == 0 {
			g.staticDB = fad.StaticShadowDB(m.src, uint64(from.id), rxID)
			g.have |= gainStatic
			g.have &^= gainMW
		}
		shadow = g.staticDB
	}
	if fad.SigmaDB != 0 {
		epoch := fad.FadeEpoch(now)
		if g.have&gainFade == 0 || g.fadeEpoch != epoch {
			g.fadeDB = fad.EpochShadowDB(m.src, uint64(from.id), rxID, epoch)
			g.fadeEpoch = epoch
			g.have |= gainFade
			g.have &^= gainMW
		}
		shadow += g.fadeDB
	}
	if dg := m.deg; dg != nil {
		te, re := dg.epoch(from.slot, now), dg.epoch(rxSlot, now)
		if g.have&gainDeg == 0 || g.txDegE != te || g.rxDegE != re {
			g.degDB = dg.linkOffset(from.slot, rxSlot, now)
			g.txDegE, g.rxDegE = te, re
			g.have |= gainDeg
			g.have &^= gainMW
		}
		shadow += g.degDB
	}
	// Hit/miss bookkeeping: linkPower only ever runs on the transmitter's
	// owning goroutine (its region's, in parallel mode — the same
	// discipline that makes the row mutation above safe), so the plain
	// shard/medium counters need no atomics.
	if sh := from.shard; sh != nil {
		if miss {
			sh.gainMisses++
		} else {
			sh.gainHits++
		}
	} else if miss {
		m.gainMisses++
	} else {
		m.gainHits++
	}
	return g.baseDBm + shadow, g
}

// ensureIndex rebuilds the neighbor grid if the radio set changed since
// the last transmission. The cell size is the maximum relevance radius
// over all transmitter profiles against the lowest noise floor on the
// field, so any transmission's candidate set lies within the 3×3 cell
// block around the transmitter.
func (m *Medium) ensureIndex() {
	if !m.indexDirty {
		return
	}
	m.indexDirty = false
	m.index = nil
	if m.bruteForce || len(m.radios) == 0 {
		return
	}
	minFloor := math.Inf(1)
	for _, r := range m.radios {
		if f := r.profile.NoiseFloorDBm; f < minFloor {
			minFloor = f
		}
	}
	threshold := minFloor - IrrelevantMarginDB
	maxReach := 0.0
	for _, r := range m.radios {
		// A non-positive path-loss exponent means received power does not
		// fall with distance, so no relevance radius exists at all; a
		// non-finite ReachRange means the budget never runs out. Either
		// way the index cannot soundly prune anything — keep the
		// exhaustive path.
		d := r.profile.ReachRange(threshold)
		if r.profile.PathLoss.Exponent <= 0 || !(d > 0) || math.IsInf(d, 1) {
			return
		}
		r.reach = d
		if d > maxReach {
			maxReach = d
		}
	}
	ix := phy.NewCellIndex(maxReach)
	for _, r := range m.radios {
		// The index holds slots, not ids: a query result then drives the
		// SoA arrays directly, with no id→radio map probe on the hot path.
		ix.Insert(uint32(r.slot), r.pos)
	}
	m.index = ix
}

// radioState tracks what a radio's receive chain is doing.
type radioState uint8

const (
	stateListen radioState = iota
	stateTransmit
)

// Radio is one station's PHY attachment to the medium.
type Radio struct {
	id      uint32
	m       *Medium
	pos     phy.Position
	profile *phy.Profile
	handler Handler

	state radioState

	// reach is this radio's transmit relevance radius in meters, set by
	// Medium.ensureIndex: beyond it no receiver on the field can see
	// this radio's frames above the irrelevance threshold.
	reach float64

	// lin caches the profile's dB-scale thresholds in linear milliwatts,
	// snapshotted at attach time (profiles are configured before attach)
	// so the hot CCA/verdict paths never re-run the dBm→mW exponential
	// on constants. irrelevantDBm is the precomputed per-receiver power
	// cut, profile.NoiseFloorDBm − IrrelevantMarginDB.
	lin           phy.Linear
	irrelevantDBm float64

	// slot is this radio's dense index in Medium.radios and in the
	// medium's slot-indexed SoA arrays (positions, mobility epochs,
	// irrelevance cuts, link-gain rows).
	slot int32

	// Parallel partition bindings (zero in sequential mode): the radio's
	// region, that region's scheduler — where every event this radio
	// originates must land — and its shard. Set by Medium.SetPartition;
	// a non-nil sched routes Transmit to the partitioned path.
	reg   int32
	sched *sim.Scheduler
	shard *medShard

	// txEnd is the pooled end-of-own-transmission action, scheduled once
	// per Transmit without allocating.
	txEnd txEndAction

	// arrivals lists every in-flight transmission overlapping this radio
	// with its received power (fixed at arrival time, one fading epoch
	// per frame), in arrival order. A slice rather than a map: the
	// handful of entries makes linear scans faster than hashing, and —
	// decisive for the determinism contract — the interference/CCA power
	// sums accumulate in a fixed order, where Go's randomized map
	// iteration would let three-summand float sums differ between
	// identically-seeded runs. The linear power form is cached at the
	// leading edge so the hot sums never re-run the dBm→mW exponential.
	arrivals []arrivalEntry

	// cand memoizes this radio's sorted candidate slot list from the
	// spatial index — the receivers within its relevance radius, in
	// dispatch order. Valid while candEpoch matches the medium's
	// posEpoch; any geometry change invalidates every memo at once. In
	// partitioned mode the memo is touched only by the region goroutine
	// servicing this radio's transmissions, so it stays race-free.
	cand      []uint32
	candEpoch uint64

	// fan memoizes this radio's full propagation fan-out: the candidates
	// that survive the irrelevance cut, with both power forms and the
	// receiver regions — everything propagate would append for a
	// transmission starting now. Each component is a pure function of the
	// geometry (posEpoch) and the transmitter profile's fade epoch (all
	// of one transmitter's links fade on its own profile's clock), so
	// while both stamps stand still, replaying the memo is bit-identical
	// to re-running the per-candidate power probes. Disabled alongside
	// the gain cache so the reference path stays a genuinely direct
	// computation; race-free in partitioned mode for the same reason the
	// candidate memo is.
	fan      []arrivalTarget
	fanEpoch uint64 // posEpoch the fan was computed at (0 = never)
	fanFade  uint64 // transmitter-profile fade epoch of the memo
	fanDeg   uint64 // degradation global epoch of the memo (0 when no timeline)

	// down marks a crashed station's radio: energy bookkeeping continues
	// (the radio stays in the spatial index and its arrivals stay summed,
	// so CCA state is consistent the instant it restarts) but the receive
	// chain never locks — every arrival is missed — and the MAC layer
	// guarantees no transmission originates here. Set by PowerDown,
	// cleared by PowerUp and Reset.
	down bool

	// locked is the transmission the receive chain is synchronized to.
	locked       *transmission
	lockedPower  float64 // dBm
	maxInterfMW  float64 // worst cumulative interference during the lock
	ccaBusy      bool
	txEndPending sim.Event

	// Maintained energy folds over the arrivals list, updated at arrival
	// edges instead of recomputed by the per-edge loops (the reference
	// path SetIncremental(false) preserves): ccaMW is the total in-air
	// energy CCA compares against its threshold; floorMW is the same
	// fold seeded with the noise floor, serving the preamble
	// interference-floor test; interfMW is the fold excluding the locked
	// transmission, valid only while locked. Each is kept bit-identical
	// to its reference loop — appends extend a left-to-right float fold
	// exactly, and removals trigger recomputeSums because a mid-list
	// removal changes the fold's association.
	ccaMW    float64
	floorMW  float64
	interfMW float64

	// Counters.
	FramesSent      uint64
	FramesDecoded   uint64
	FramesErrored   uint64 // locked but failed decode (→ EIFS at MAC)
	FramesMissed    uint64 // arrived while busy or below preamble detect
	CaptureSwitches uint64
}

// transmission is one frame in flight. Descriptors are pooled and carry
// their receiver set inline: every receiver shares the same leading and
// trailing edge instants (propagation delay is a constant bound), so
// the medium schedules two batch events per transmission — lead and
// trail — instead of two events per receiver. Receivers are dispatched
// in target order, which is exactly the order the per-receiver events
// used to fire in (consecutive sequence numbers at one instant), so
// the batch is event-order-identical to the pre-batch kernel while
// keeping the pending-event heap proportional to transmissions in
// flight, not receivers in earshot.
type transmission struct {
	from    *Radio
	f       *frame.Frame
	rate    phy.Rate
	end     time.Duration
	targets []arrivalTarget
	lead    txLeadAction
	trail   txTrailAction

	// lo:hi is the slice of targets the local lead/trail pair serves —
	// the whole set in sequential mode, the transmitter's own region's
	// segment in partitioned mode (remote segments ride tx.segs).
	// remaining counts the regions still holding the descriptor; the
	// last finishOn returns it to the origin shard's pool (accessed
	// atomically only in partitioned mode — see partition.go).
	lo, hi    int32
	remaining int32

	// Partitioned-mode state: the remote-region segments (embedded so a
	// recirculating descriptor reuses their storage) and the shard whose
	// pool the descriptor recirculates through — the transmitter's, so
	// the targets capacity warms up where the fan-out happens.
	segs   []txSegment
	origin *medShard
}

// arrivalTarget is one receiver of an in-flight transmission with its
// received power in both scales, and the receiver's region (zero in
// sequential mode) so the partitioned path can split the set.
type arrivalTarget struct {
	rx  *Radio
	reg int32
	dbm float64
	mw  float64
}

// txLeadAction fires the leading edge of a transmission at every
// receiver in earshot, in target (ascending radio id) order. It is
// embedded in the pooled transmission and scheduled by pointer, so the
// interface conversion never allocates.
type txLeadAction struct{ tx *transmission }

// Act implements sim.Action.
func (a *txLeadAction) Act() {
	tx := a.tx
	for i := tx.lo; i < tx.hi; i++ {
		t := &tx.targets[i]
		t.rx.arrivalStart(tx, t.dbm, t.mw)
	}
}

// txTrailAction fires the trailing edge at every local receiver, then
// drops the local region's hold on the descriptor (sequential mode
// holds exactly one, so this is the release).
type txTrailAction struct{ tx *transmission }

// Act implements sim.Action.
func (a *txTrailAction) Act() {
	tx := a.tx
	for i := tx.lo; i < tx.hi; i++ {
		tx.targets[i].rx.arrivalEnd(tx)
	}
	tx.finishOn(tx.from.shard)
}

// arrivalEntry is one in-flight transmission's received power at one
// radio, in both scales: dBm for lock/sensitivity decisions, linear
// milliwatts for energy summation.
type arrivalEntry struct {
	tx  *transmission
	dbm float64
	mw  float64
}

// txEndAction returns a transmitting radio to listen state when its own
// frame leaves the air.
type txEndAction struct{ r *Radio }

// Act implements sim.Action.
func (t *txEndAction) Act() {
	r := t.r
	r.state = stateListen
	r.txEndPending = sim.Event{}
	r.updateCCA()
	r.handler.TxDone()
}

func (m *Medium) newTransmission(from *Radio, f *frame.Frame, rate phy.Rate, end time.Duration) *transmission {
	var tx *transmission
	if n := len(m.freeTx); n > 0 {
		tx = m.freeTx[n-1]
		m.freeTx = m.freeTx[:n-1]
	} else {
		tx = new(transmission)
	}
	*tx = transmission{from: from, f: f, rate: rate, end: end,
		targets: tx.targets[:0], segs: tx.segs[:0]}
	tx.lead.tx = tx
	tx.trail.tx = tx
	return tx
}

func (m *Medium) releaseTransmission(tx *transmission) {
	*tx = transmission{targets: tx.targets[:0], segs: tx.segs[:0]}
	m.freeTx = append(m.freeTx, tx)
}

// AddRadio attaches a radio at pos with the given profile and handler.
// The id must be unique; it keys the fading process and the spatial
// index.
func (m *Medium) AddRadio(id uint32, pos phy.Position, profile *phy.Profile, h Handler) *Radio {
	if _, dup := m.byID[id]; dup {
		panic(fmt.Sprintf("medium: duplicate radio id %d", id))
	}
	if m.shards != nil {
		panic("medium: AddRadio after SetPartition")
	}
	r := &Radio{
		id:            id,
		m:             m,
		pos:           pos,
		profile:       profile,
		handler:       h,
		lin:           profile.Linearize(),
		irrelevantDBm: profile.NoiseFloorDBm - IrrelevantMarginDB,
		slot:          int32(len(m.radios)),
	}
	r.floorMW = r.lin.NoiseFloorMW
	r.txEnd.r = r
	if n := len(m.radios); n > 0 && id <= m.radios[n-1].id {
		m.idsMonotone = false
	}
	m.byID[id] = r
	m.radios = append(m.radios, r)
	m.soaID = append(m.soaID, id)
	m.soaPos = append(m.soaPos, pos)
	m.soaMove = append(m.soaMove, 0)
	m.soaIrrel = append(m.soaIrrel, r.irrelevantDBm)
	m.gainRows = append(m.gainRows, nil)
	m.indexDirty = true
	m.posEpoch++
	return r
}

// ID returns the radio identifier.
func (r *Radio) ID() uint32 { return r.id }

// Pos returns the radio's current position.
func (r *Radio) Pos() phy.Position { return r.pos }

// SetPos moves the radio (mobility support). Takes effect for
// transmissions that begin after the move. The spatial index follows
// incrementally: a move within the radio's current grid cell is O(1)
// bookkeeping, and only a cell-boundary crossing relocates it.
func (r *Radio) SetPos(p phy.Position) {
	m := r.m
	r.pos = p
	m.soaPos[r.slot] = p
	m.soaMove[r.slot]++
	m.posEpoch++
	if m.index != nil && !m.indexDirty {
		m.index.Move(uint32(r.slot), p)
	}
}

// Reset clears the radio's per-run receive state and counters and
// re-places it at pos, keeping the attachment (profile, handler,
// precomputed linear tables) intact. It is the per-radio half of the
// arena-reuse path: call Medium.Reset first (which invalidates the
// link-gain cache if the seed changed), then Reset every radio with its
// new-run position. The move epoch, geometry epoch, and spatial-index
// rebuild flag advance only if the radio actually lands somewhere new,
// so a same-placement replication keeps its cached path-loss terms, its
// candidate and fan-out memos, and the built index.
func (r *Radio) Reset(pos phy.Position) {
	m := r.m
	if pos != r.pos {
		m.soaMove[r.slot]++
		m.posEpoch++
		m.indexDirty = true
	}
	r.pos = pos
	m.soaPos[r.slot] = pos
	r.state = stateListen
	clear(r.arrivals)
	r.arrivals = r.arrivals[:0]
	r.locked = nil
	r.lockedPower = 0
	r.maxInterfMW = 0
	r.ccaMW, r.floorMW, r.interfMW = 0, r.lin.NoiseFloorMW, 0
	r.ccaBusy = false
	r.down = false
	r.txEndPending = sim.Event{}
	r.FramesSent, r.FramesDecoded, r.FramesErrored = 0, 0, 0
	r.FramesMissed, r.CaptureSwitches = 0, 0
}

// Profile returns the radio's PHY profile.
func (r *Radio) Profile() *phy.Profile { return r.profile }

// CCABusy reports the current physical-carrier-sense state.
func (r *Radio) CCABusy() bool { return r.ccaBusy }

// Transmitting reports whether the radio is currently transmitting.
func (r *Radio) Transmitting() bool { return r.state == stateTransmit }

// Down reports whether the radio is powered down (crashed station).
func (r *Radio) Down() bool { return r.down }

// PowerDown detaches the radio's receive chain: any lock is abandoned
// and no arrival can lock until PowerUp. The radio deliberately stays
// in the spatial index and its in-air energy bookkeeping keeps running
// — a crash must not mutate the field geometry mid-run (the parallel
// kernel's partition and every candidate/fan memo depend on it), and
// carrying the sums through the downtime makes CCA exact the instant
// the station restarts. A transmission already in the air when the
// crash fires plays out naturally (its trailing edges are already
// scheduled at every receiver); the MAC layer discards its TxDone.
func (r *Radio) PowerDown() {
	r.down = true
	r.locked = nil
	r.maxInterfMW = 0
	r.updateCCA()
}

// PowerUp re-enables the receive chain after a PowerDown. CCA state is
// already exact — the energy folds ran through the downtime — so the
// restarted MAC can read CCABusy immediately.
func (r *Radio) PowerUp() {
	r.down = false
	r.updateCCA()
}

// Transmit puts f on the air at the given rate and returns its airtime.
// The radio's receive chain is disabled for the duration (half-duplex);
// any reception in progress is abandoned. TxDone fires when the frame
// leaves the air.
func (r *Radio) Transmit(f *frame.Frame, rate phy.Rate) time.Duration {
	if r.state == stateTransmit {
		panic("medium: Transmit while already transmitting")
	}
	if !rate.Valid() {
		panic(fmt.Sprintf("medium: invalid rate %d", rate))
	}
	m := r.m
	if r.sched != nil {
		return m.partTransmit(r, f, rate)
	}
	now := m.sched.Now()
	air := f.AirTime(rate)
	m.Transmissions++
	r.FramesSent++

	// Half-duplex: abandon any lock; the abandoned frame still occupies
	// the arrivals set (it remains energy in the air).
	r.locked = nil
	r.maxInterfMW = 0
	r.state = stateTransmit
	r.updateCCA()

	tx := m.newTransmission(r, f, rate, now+air)
	m.ensureIndex()
	if m.index == nil {
		for slot := range m.radios {
			m.propagate(tx, r, int32(slot), now)
		}
	} else {
		// Candidate cells are visited in deterministic grid order; the
		// gathered slots are then put in ascending-id dispatch order,
		// which coincides with the exhaustive path's insertion order for
		// node-built networks (ids are assigned sequentially), keeping
		// fixed-seed runs bit-identical across the index. The sorted list
		// is memoized per transmitter: both steps are pure functions of
		// the geometry, so while posEpoch stands still the memo IS the
		// fresh query.
		slots := r.cand
		if r.candEpoch != m.posEpoch {
			slots = m.index.AppendWithin(r.cand[:0], r.pos, r.reach)
			m.sortCandidates(slots)
			r.cand = slots
			r.candEpoch = m.posEpoch
			m.candRebuilds++
		} else {
			m.candReuses++
		}
		var fade uint64
		if pf := &r.profile.Fading; pf.SigmaDB != 0 {
			fade = pf.FadeEpoch(now)
		}
		var degE uint64
		if m.deg != nil {
			degE = m.deg.globalEpoch(now)
		}
		if !m.gainCacheOff && r.fanEpoch == m.posEpoch && r.fanFade == fade && r.fanDeg == degE {
			tx.targets = append(tx.targets, r.fan...)
			m.fanReplays++
		} else {
			for _, slot := range slots {
				m.propagate(tx, r, int32(slot), now)
			}
			if !m.gainCacheOff {
				r.fan = append(r.fan[:0], tx.targets...)
				r.fanEpoch, r.fanFade, r.fanDeg = m.posEpoch, fade, degE
			}
			m.fanBuilds++
		}
	}
	r.txEndPending = m.sched.AtAction(now+air, &r.txEnd)
	if len(tx.targets) == 0 {
		// Nobody in earshot: the descriptor never entered any receiver's
		// bookkeeping.
		m.releaseTransmission(tx)
	} else {
		tx.lo, tx.hi = 0, int32(len(tx.targets))
		tx.remaining = 1
		m.sched.AtAction(now+phy.PropDelay, &tx.lead)
		m.sched.AtAction(now+air+phy.PropDelay, &tx.trail)
	}
	return air
}

// sortCandidates puts a slot list gathered from the spatial index into
// dispatch order: ascending radio id, the contract every reference path
// shares. Node-built networks assign ids in slot order, so the common
// case is a plain slot sort; hand-assembled media with out-of-order ids
// sort through the id array instead.
func (m *Medium) sortCandidates(slots []uint32) {
	if m.idsMonotone {
		slices.Sort(slots)
		return
	}
	ids := m.soaID
	slices.SortFunc(slots, func(a, b uint32) int {
		return cmp.Compare(ids[a], ids[b])
	})
}

// propagate adds the radio in slot rxSlot to tx's receiver set, unless
// the frame arrives so far under that receiver's noise floor that it
// cannot shift any CCA, lock, or SINR decision there. The candidate
// test runs entirely on the slot-indexed SoA arrays and the link-gain
// row — for static link/epoch combinations already seen this run the
// transcendental PHY arithmetic is skipped entirely, and the *Radio is
// only dereferenced for candidates that survive the power cut. The
// edges themselves are scheduled once per transmission by Transmit,
// not once per receiver.
func (m *Medium) propagate(tx *transmission, from *Radio, rxSlot int32, now time.Duration) {
	if rxSlot == from.slot {
		return
	}
	p, g := m.linkPower(from, rxSlot, now)
	if p < m.soaIrrel[rxSlot] {
		return
	}
	var mw float64
	if g != nil {
		mw = g.milliwatt(p)
	} else {
		mw = phy.DBmToMilliwatt(p)
	}
	rx := m.radios[rxSlot]
	tx.targets = append(tx.targets, arrivalTarget{rx: rx, reg: rx.reg, dbm: p, mw: mw})
}

// DebugArrival, when set, observes every arrival edge (test hook).
var DebugArrival func(rx uint32, from uint32, powerDBm float64, state string)

// arrivalStart handles the leading edge of a transmission reaching this
// radio. powerMW is the caller-supplied linear form of powerDBm.
//
// Incremental mode maintains the three energy folds at this edge
// instead of looping over the arrivals per decision, and stays
// bit-identical to the reference loops by a fold-prefix argument:
// appending to a left-to-right float fold extends it exactly (the
// prefix's association is unchanged), and the two "all but the new
// arrival" quantities the decisions need — the preamble's interference
// floor and a fresh lock's interference record — are precisely the
// folds' values before this append.
func (r *Radio) arrivalStart(tx *transmission, powerDBm, powerMW float64) {
	inc := !r.m.incrementalOff
	preCCA, preFloor := r.ccaMW, r.floorMW
	r.arrivals = append(r.arrivals, arrivalEntry{tx: tx, dbm: powerDBm, mw: powerMW})
	if inc {
		r.ccaMW += powerMW
		r.floorMW += powerMW
		if r.locked != nil {
			// A lock switch below re-seeds interfMW from preCCA.
			r.interfMW += powerMW
		}
	}
	prof := r.profile
	if DebugArrival != nil {
		st := "listen-unlocked"
		if r.state == stateTransmit {
			st = "transmitting"
		} else if r.locked != nil {
			st = "locked"
		}
		DebugArrival(r.id, tx.from.id, powerDBm, st)
	}

	switch {
	case r.down:
		// Crashed station: the receive chain is off. The arrival still
		// entered the energy bookkeeping above, so CCA state is exact at
		// restart, but nothing can lock.
		r.FramesMissed++
	case r.state == stateTransmit:
		// Half-duplex: cannot hear anything while transmitting.
		r.FramesMissed++
	case powerDBm < prof.PLCPDetectDBm:
		// Too weak to synchronize: pure energy/interference.
		r.FramesMissed++
	case r.locked == nil:
		// Preamble must clear the interference floor to synchronize.
		// preFloor is noise plus every arrival before this one, the exact
		// value the reference loop recomputes with tx excluded.
		var floor float64
		if inc {
			floor = phy.MilliwattToDBm(preFloor)
		} else {
			floor = r.interferenceFloorDBm(tx)
		}
		if powerDBm >= floor+prof.SINRRequiredDB[phy.Rate1.Index()] {
			r.lock(tx, powerDBm, preCCA)
		} else {
			r.FramesMissed++
		}
	case powerDBm >= r.lockedPower+prof.CaptureMarginDB:
		// Message-in-message capture: a much stronger newcomer steals
		// the receiver; the previous frame is lost.
		r.CaptureSwitches++
		r.FramesMissed++ // the abandoned frame
		r.lock(tx, powerDBm, preCCA)
	default:
		r.FramesMissed++
	}

	if r.locked != nil && r.locked != tx {
		// Newcomer interferes with the locked frame.
		if inc {
			if r.interfMW > r.maxInterfMW {
				r.maxInterfMW = r.interfMW
			}
		} else {
			r.noteInterference()
		}
	}
	r.updateCCA()
}

// lock synchronizes the receive chain to tx, which is always the
// arrival just appended. interfMW is the pre-append total-energy fold:
// with tx last in the list, that is exactly the reference's "every
// arrival except the locked one" fold — including a previously locked
// frame a capture just abandoned, at its original fold position.
func (r *Radio) lock(tx *transmission, powerDBm, interfMW float64) {
	r.locked = tx
	r.lockedPower = powerDBm
	r.maxInterfMW = 0
	if r.m.incrementalOff {
		r.noteInterference()
		return
	}
	r.interfMW = interfMW
	if interfMW > 0 {
		r.maxInterfMW = interfMW
	}
}

// noteInterference records the current cumulative interference against
// the locked frame. The decode verdict uses the worst value seen during
// the whole reception.
func (r *Radio) noteInterference() {
	var mw float64
	for _, a := range r.arrivals {
		if a.tx != r.locked {
			mw += a.mw
		}
	}
	if mw > r.maxInterfMW {
		r.maxInterfMW = mw
	}
}

// interferenceFloorDBm returns noise + all arrivals except tx, in dBm.
// The noise floor comes from the attach-time linear table rather than a
// fresh dBm→mW conversion per call. Reference path only: incremental
// mode reads the maintained floorMW fold instead (see arrivalStart).
func (r *Radio) interferenceFloorDBm(except *transmission) float64 {
	mw := r.lin.NoiseFloorMW
	for _, a := range r.arrivals {
		if a.tx != except {
			mw += a.mw
		}
	}
	return phy.MilliwattToDBm(mw)
}

// recomputeSums rebuilds the three maintained energy folds from the
// arrivals list in arrival order — the same left-to-right folds the
// reference loops perform. Removing an arrival from the middle of the
// list changes the folds' association, so the running values cannot be
// maintained by subtraction without parting from the reference one ulp
// at a time; one rebuild per trailing edge keeps them exact (and, with
// the list empty, pins them back to exactly zero — no drift ever
// accumulates).
func (r *Radio) recomputeSums() {
	if sh := r.shard; sh != nil {
		sh.soaRescans++
	} else {
		r.m.soaRescans++
	}
	cca, interf := 0.0, 0.0
	floor := r.lin.NoiseFloorMW
	for _, a := range r.arrivals {
		cca += a.mw
		floor += a.mw
		if a.tx != r.locked {
			interf += a.mw
		}
	}
	r.ccaMW, r.floorMW, r.interfMW = cca, floor, interf
}

// arrivalEnd handles the trailing edge of a transmission at this radio.
func (r *Radio) arrivalEnd(tx *transmission) {
	for i := range r.arrivals {
		if r.arrivals[i].tx == tx {
			// Remove preserving arrival order, so later sums stay a pure
			// function of the remaining arrival sequence.
			last := len(r.arrivals) - 1
			copy(r.arrivals[i:], r.arrivals[i+1:])
			r.arrivals[last] = arrivalEntry{}
			r.arrivals = r.arrivals[:last]
			if !r.m.incrementalOff {
				r.recomputeSums()
			}
			break
		}
	}
	if r.locked == tx {
		r.locked = nil
		ok := r.verdict(tx)
		if ok {
			r.FramesDecoded++
			if r.shard != nil {
				r.shard.deliveries++
			} else {
				r.m.Deliveries++
			}
		} else {
			r.FramesErrored++
			if r.shard != nil {
				r.shard.phyErrors++
			} else {
				r.m.PHYErrors++
			}
		}
		power := r.lockedPower
		r.maxInterfMW = 0
		r.updateCCA()
		r.handler.RxEnd(tx.f, tx.rate, power, ok)
		return
	}
	r.updateCCA()
}

// verdict decides whether the locked frame decoded successfully: power
// above the rate's sensitivity, and SINR above the rate's requirement
// against the worst noise+interference seen during the reception.
func (r *Radio) verdict(tx *transmission) bool {
	prof := r.profile
	idx := tx.rate.Index()
	if r.lockedPower < prof.SensitivityDBm[idx] {
		return false
	}
	floorMW := r.lin.NoiseFloorMW + r.maxInterfMW
	sinr := r.lockedPower - phy.MilliwattToDBm(floorMW)
	return sinr >= prof.SINRRequiredDB[idx]
}

// updateCCA recomputes physical carrier sense and reports edges.
// The medium is busy at this radio when it is transmitting, when its
// receive chain is locked, or when total in-air energy exceeds the
// energy-detect threshold.
func (r *Radio) updateCCA() {
	busy := r.state == stateTransmit || r.locked != nil
	if !busy && len(r.arrivals) > 0 {
		if r.m.incrementalOff {
			var mw float64
			for _, a := range r.arrivals {
				mw += a.mw
			}
			busy = mw >= r.lin.CCAThresholdMW
		} else {
			busy = r.ccaMW >= r.lin.CCAThresholdMW
		}
	}
	if busy != r.ccaBusy {
		r.ccaBusy = busy
		r.handler.CCAChanged(busy)
	}
}
