package medium

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"adhocsim/internal/frame"
	"adhocsim/internal/phy"
	"adhocsim/internal/sim"
)

// This file is the medium's half of the space-partitioned parallel
// execution mode (sim.Exec). The field is partitioned by a
// phy.RegionGrid; a transmission's receiver set may span any number of
// regions, and each remote region's slice crosses the boundary as ONE
// exec message — the leading edge, timestamped one propagation bound
// out, the minimum any cross-region influence costs, which is what the
// conservative lookahead (phy.MinPropagationDelay over the regions'
// separation and the field's relevance radius) rests on; see
// internal/phy/lookahead.go for the derivation. The trailing edge never
// crosses the boundary itself: the lead schedules it locally on the
// destination scheduler once it arrives (the frame end is strictly
// after the frame start, so it is always a local-future event there).
//
// Partitioned state discipline: everything a region's events touch is
// either owned by that region (its radios' receive chains, its shard's
// pools and counters) or reached across a region boundary only through
// sim.Exec.Send, whose timestamps are at least one propagation bound in
// the future — the exec's published-clock protocol then guarantees the
// receiving region observes the sender's writes (the race detector job
// in CI checks exactly this). The link-gain cache stays safe: each
// gainRows row is written only by its transmitter's region (a radio
// transmits only on its own region's goroutine, and distinct rows are
// distinct elements of a fixed outer slice), and the receiver-side SoA
// arrays a cache fill reads (position, mobility epoch, id) are
// immutable while a partition is installed (mobility scenarios fall
// back to the sequential kernel).

// medShard is the per-region slice of the medium's mutable transmit
// state: descriptor pool, sort scratch and counters, each touched only
// by the owning region's goroutine — except returns, the locked list
// through which remote regions hand descriptors back to their origin
// pool so the targets capacity stays warm where the fan-out happens
// (one short lock per finished transmission). The pad keeps two
// shards' hot counters off one cache line.
type medShard struct {
	freeTx   []*transmission
	regCount []int32
	sortBuf  []arrivalTarget

	transmissions uint64
	deliveries    uint64
	phyErrors     uint64

	// Per-region mirrors of the medium's cache-efficiency counters
	// (Medium.Stats) — owned by the region goroutine, folded with the
	// aggregates above.
	gainHits, gainMisses     uint64
	fanReplays, fanBuilds    uint64
	candReuses, candRebuilds uint64
	soaRescans               uint64

	retMu   sync.Mutex
	returns []*transmission

	_ [64]byte
}

func (sh *medShard) newTransmission(from *Radio, f *frame.Frame, rate phy.Rate, end time.Duration) *transmission {
	if len(sh.freeTx) == 0 {
		// Swap in whatever remote regions have returned; the empty
		// freeTx backing becomes the next returns list.
		sh.retMu.Lock()
		sh.freeTx, sh.returns = sh.returns, sh.freeTx
		sh.retMu.Unlock()
	}
	var tx *transmission
	if n := len(sh.freeTx); n > 0 {
		tx = sh.freeTx[n-1]
		sh.freeTx = sh.freeTx[:n-1]
	} else {
		tx = new(transmission)
	}
	*tx = transmission{from: from, f: f, rate: rate, end: end,
		targets: tx.targets[:0], segs: tx.segs[:0], origin: sh}
	tx.lead.tx = tx
	tx.trail.tx = tx
	return tx
}

func (sh *medShard) release(tx *transmission) {
	sh.freeTx = append(sh.freeTx, tx)
}

// FieldReach returns the maximum relevance radius any of the given
// profiles can have on a field whose lowest noise floor is also drawn
// from them — the farthest a single transmission can influence
// anything, and hence the per-link distance bound of the parallel
// kernel's lookahead (phy.MinPropagationDelay). It returns +Inf when
// any profile is degenerate (non-positive path-loss exponent or
// unbounded reach), meaning no spatial index exists and the parallel
// kernel must not be used.
func FieldReach(profiles []*phy.Profile) float64 {
	minFloor := 0.0
	first := true
	for _, p := range profiles {
		if first || p.NoiseFloorDBm < minFloor {
			minFloor = p.NoiseFloorDBm
			first = false
		}
	}
	threshold := minFloor - IrrelevantMarginDB
	reach := 0.0
	for _, p := range profiles {
		d := p.ReachRange(threshold)
		if p.PathLoss.Exponent <= 0 || !(d > 0) {
			return math.Inf(1)
		}
		if d > reach {
			reach = d
		}
	}
	return reach
}

// SetPartition installs the parallel partition: every radio is assigned
// to its grid region and re-bound to that region's scheduler, and the
// medium's transmit path switches to the partitioned variant. Any grid
// shape is sound — the executor's lookahead already accounts for
// arbitrarily close regions (see internal/phy/lookahead.go) — but the
// radio model must admit a spatial index, or the relevance radius the
// lookahead leans on does not exist. It must be called after every
// radio is attached and before the first event runs.
func (m *Medium) SetPartition(ex *sim.Exec, grid phy.RegionGrid) {
	if ex.Regions() != grid.Regions() {
		panic(fmt.Sprintf("medium: exec has %d regions, grid %s has %d",
			ex.Regions(), grid, grid.Regions()))
	}
	m.ensureIndex()
	if m.index == nil {
		panic("medium: parallel partition requires the spatial index (degenerate radio model or brute-force mode)")
	}
	m.ex = ex
	// Region assignments are baked into the fan-out memos (arrivalTarget
	// carries reg), so installing a partition is a geometry change.
	m.posEpoch++
	m.shards = make([]medShard, grid.Regions())
	for i := range m.shards {
		m.shards[i].regCount = make([]int32, grid.Regions())
	}
	for _, r := range m.radios {
		reg := grid.RegionOf(r.pos)
		r.reg = int32(reg)
		r.sched = ex.Sched(reg)
		r.shard = &m.shards[reg]
	}
}

// FoldCounters accumulates the per-region shard counters into the
// public aggregate fields. The node layer calls it after each parallel
// run, from the single post-join goroutine.
func (m *Medium) FoldCounters() {
	for i := range m.shards {
		sh := &m.shards[i]
		m.Transmissions += sh.transmissions
		m.Deliveries += sh.deliveries
		m.PHYErrors += sh.phyErrors
		sh.transmissions, sh.deliveries, sh.phyErrors = 0, 0, 0
		m.gainHits += sh.gainHits
		m.gainMisses += sh.gainMisses
		m.fanReplays += sh.fanReplays
		m.fanBuilds += sh.fanBuilds
		m.candReuses += sh.candReuses
		m.candRebuilds += sh.candRebuilds
		m.soaRescans += sh.soaRescans
		sh.gainHits, sh.gainMisses = 0, 0
		sh.fanReplays, sh.fanBuilds = 0, 0
		sh.candReuses, sh.candRebuilds = 0, 0
		sh.soaRescans = 0
	}
}

// txSegment is the remote-region slice of one transmission's receiver
// set: targets[lo:hi] all live in one region other than the
// transmitter's. Only its lead action travels to that region as an exec
// message; the lead then schedules the trailing edge locally on the
// destination scheduler (sched, at trailAt) — one cross-region message
// per segment instead of two, halving the executor's boundary traffic
// and canonical-sort load. shard is the destination region's, for the
// final descriptor release.
type txSegment struct {
	tx      *transmission
	lo, hi  int32
	shard   *medShard
	sched   *sim.Scheduler
	trailAt time.Duration
	lead    segLeadAction
	trail   segTrailAction
}

// segLeadAction is the remote leading edge: it starts the segment's
// receivers and schedules the trailing edge locally. Implements
// sim.Action.
func (a *segLeadAction) Act() {
	s := a.s
	tx := s.tx
	for i := s.lo; i < s.hi; i++ {
		t := &tx.targets[i]
		t.rx.arrivalStart(tx, t.dbm, t.mw)
	}
	// trailAt is strictly after the lead (airtime is positive), so this
	// schedules into the region's own future — no cross-region timing
	// constraint applies, and a trailing edge past one Run's horizon
	// simply stays pending for the next Run, like any local event.
	s.sched.AtAction(s.trailAt, &s.trail)
}

// segLeadAction/segTrailAction carry their segment.
type segLeadAction struct{ s *txSegment }

// segTrailAction is the remote trailing edge: it finishes the segment's
// receivers and drops the segment's hold on the descriptor.
type segTrailAction struct{ s *txSegment }

func (a *segTrailAction) Act() {
	s := a.s
	tx := s.tx
	for i := s.lo; i < s.hi; i++ {
		tx.targets[i].rx.arrivalEnd(tx)
	}
	tx.finishOn(s.shard)
}

// finishOn drops one region's hold on the descriptor and, on the last,
// returns it to its origin region's pool — directly when the finishing
// region is the origin, through the origin's locked returns list
// otherwise. Returning home (rather than to whichever region finished
// last) keeps each descriptor's targets capacity warm at the
// transmitter that grows it.
func (tx *transmission) finishOn(sh *medShard) {
	if atomic.AddInt32(&tx.remaining, -1) > 0 {
		return
	}
	o := tx.origin
	switch {
	case o == nil:
		tx.from.m.releaseTransmission(tx)
	case o == sh:
		o.release(tx)
	default:
		o.retMu.Lock()
		o.returns = append(o.returns, tx)
		o.retMu.Unlock()
	}
}

// partTransmit is the partitioned counterpart of the sequential body of
// Radio.Transmit: same candidate query, same propagation arithmetic
// (the results are bit-identical — the equivalence tests insist), but
// the receiver set is split into per-region segments. The transmitter's
// own region is dispatched on the local scheduler exactly like the
// sequential path; every other region's segment crosses the boundary as
// one exec message (the leading edge, timestamped one propagation bound
// out), which schedules the trailing edge locally on arrival.
func (m *Medium) partTransmit(r *Radio, f *frame.Frame, rate phy.Rate) time.Duration {
	if m.index == nil || m.indexDirty {
		panic("medium: partitioned transmit without a live spatial index")
	}
	sched := r.sched
	now := sched.Now()
	air := f.AirTime(rate)
	sh := r.shard
	sh.transmissions++
	r.FramesSent++

	r.locked = nil
	r.maxInterfMW = 0
	r.state = stateTransmit
	r.updateCCA()

	tx := sh.newTransmission(r, f, rate, now+air)
	// Same per-transmitter memo as the sequential path; only this
	// radio's region goroutine services its transmissions, so the memo
	// never races across shards.
	slots := r.cand
	if r.candEpoch != m.posEpoch {
		slots = m.index.AppendWithin(r.cand[:0], r.pos, r.reach)
		m.sortCandidates(slots)
		r.cand = slots
		r.candEpoch = m.posEpoch
		sh.candRebuilds++
	} else {
		sh.candReuses++
	}
	var fade uint64
	if pf := &r.profile.Fading; pf.SigmaDB != 0 {
		fade = pf.FadeEpoch(now)
	}
	var degE uint64
	if m.deg != nil {
		degE = m.deg.globalEpoch(now)
	}
	if !m.gainCacheOff && r.fanEpoch == m.posEpoch && r.fanFade == fade && r.fanDeg == degE {
		tx.targets = append(tx.targets, r.fan...)
		sh.fanReplays++
	} else {
		if cap(tx.targets) < len(slots) {
			tx.targets = make([]arrivalTarget, 0, len(slots))
		}
		for _, slot := range slots {
			m.propagate(tx, r, int32(slot), now)
		}
		if !m.gainCacheOff {
			r.fan = append(r.fan[:0], tx.targets...)
			r.fanEpoch, r.fanFade, r.fanDeg = m.posEpoch, fade, degE
		}
		sh.fanBuilds++
	}
	r.txEndPending = sched.AtAction(now+air, &r.txEnd)
	nt := len(tx.targets)
	if nt == 0 {
		sh.release(tx)
		return air
	}

	// Per-region segments, ordered (region, id). The targets were
	// appended in ascending radio id (the candidate list is sorted), so
	// a stable counting scatter by region yields exactly the (region,
	// id) order a comparison sort would — within one region the dispatch
	// order stays ascending radio id, and a one-region partition is
	// event-for-event identical to the sequential path.
	cnt := sh.regCount
	for i := range cnt {
		cnt[i] = 0
	}
	for i := range tx.targets {
		cnt[tx.targets[i].reg]++
	}
	if int(cnt[tx.targets[0].reg]) != nt { // more than one region: scatter
		buf := sh.sortBuf
		if cap(buf) < nt {
			buf = make([]arrivalTarget, nt)
		}
		buf = buf[:nt]
		pos := int32(0)
		for reg := range cnt {
			c := cnt[reg]
			cnt[reg] = pos
			pos += c
		}
		for i := range tx.targets {
			t := &tx.targets[i]
			buf[cnt[t.reg]] = *t
			cnt[t.reg]++
		}
		sh.sortBuf, tx.targets = tx.targets, buf
	}
	// Segments live inside the descriptor; the capacity is reserved up
	// front so the lead/trail pointers handed to Send stay put.
	if cap(tx.segs) < len(m.shards) {
		tx.segs = make([]txSegment, 0, len(m.shards))
	}
	regions := int32(0)
	for i := 0; i < nt; {
		reg := tx.targets[i].reg
		j := i + 1
		for j < nt && tx.targets[j].reg == reg {
			j++
		}
		regions++
		if reg == r.reg {
			tx.lo, tx.hi = int32(i), int32(j)
		} else {
			tx.segs = append(tx.segs, txSegment{tx: tx, lo: int32(i), hi: int32(j),
				shard: &m.shards[reg], sched: m.ex.Sched(int(reg)), trailAt: now + air + phy.PropDelay})
			seg := &tx.segs[len(tx.segs)-1]
			seg.lead.s = seg
			seg.trail.s = seg
			m.ex.Send(int(r.reg), int(reg), now+phy.PropDelay, &seg.lead)
		}
		i = j
	}
	atomic.StoreInt32(&tx.remaining, regions)
	if tx.hi > tx.lo {
		sched.AtAction(now+phy.PropDelay, &tx.lead)
		sched.AtAction(now+air+phy.PropDelay, &tx.trail)
	}
	return air
}
