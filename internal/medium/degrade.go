package medium

import (
	"fmt"
	"sort"
	"time"
)

// DegTimeline is a precompiled, immutable link-degradation timeline: a
// piecewise-constant shadowing offset per station slot plus regional
// partition rules that attenuate every link crossing a region boundary
// during their window. The fault engine compiles one per run from the
// Spec's fault schedule and installs it with Medium.SetDegradation.
//
// Immutability is the parallel-kernel contract: after Finalize the
// timeline is never written again, every query is a pure function of
// (slots, now), and region goroutines can evaluate it concurrently
// without synchronization. Offsets must be ≤ 0 dB — degradation only
// ever lowers received power — so the spatial index's relevance radius
// (computed fade-optimistically, without degradation) remains a sound
// upper bound and the irrelevance cut can only prune more, never less.
//
// The link-gain cache keys degradation by per-endpoint epochs: each
// slot's timeline is a sorted boundary list, and the epoch at time now
// is the count of boundaries ≤ now. Partition windows inject their
// boundaries into every inside station's timeline (leaving the value
// unchanged), so any link that crosses a partition edge has at least
// one endpoint whose epoch ticks at the window's open and close — the
// cached pair offset can never go stale.
type DegTimeline struct {
	// Per-slot step functions: bounds[s] is sorted ascending and
	// vals[s] has len(bounds[s])+1 entries — vals[s][e] is the slot's
	// offset during epoch e (the interval between boundary e-1 and
	// boundary e, half-open on the right).
	bounds [][]time.Duration
	vals   [][]float64

	// pairs are the partition rules, applied to a link when exactly one
	// endpoint is inside the region during the window.
	pairs []degPair

	// global is the sorted distinct union of every boundary instant, the
	// coarse epoch the fan-out memo keys on.
	global []time.Duration

	// episodes is builder state, consumed by Finalize.
	episodes []degEpisode
	final    bool
}

// degEpisode is one per-station degradation window (builder state).
type degEpisode struct {
	slot     int
	from, to time.Duration
	offsetDB float64
}

// degPair is one compiled partition rule.
type degPair struct {
	from, to time.Duration
	attenDB  float64
	inside   []bool // per slot
}

// NewDegTimeline returns an empty timeline over n station slots.
func NewDegTimeline(n int) *DegTimeline {
	return &DegTimeline{
		bounds: make([][]time.Duration, n),
		vals:   make([][]float64, n),
	}
}

// AddStationEpisode adds offsetDB to every link touching slot during
// [from, to). Offsets must be ≤ 0 (see the type comment); overlapping
// episodes sum in insertion order.
func (d *DegTimeline) AddStationEpisode(slot int, from, to time.Duration, offsetDB float64) {
	if d.final {
		panic("medium: AddStationEpisode after Finalize")
	}
	if offsetDB > 0 {
		panic(fmt.Sprintf("medium: positive degradation offset %g dB would unsound the spatial index", offsetDB))
	}
	if !(from < to) || slot < 0 || slot >= len(d.bounds) {
		panic(fmt.Sprintf("medium: bad degradation episode slot=%d [%v,%v)", slot, from, to))
	}
	d.episodes = append(d.episodes, degEpisode{slot: slot, from: from, to: to, offsetDB: offsetDB})
}

// AddPairRule adds attenDB (≤ 0) to every link with exactly one
// endpoint inside the region during [from, to). inside must have one
// entry per slot and is retained — the caller must not mutate it.
func (d *DegTimeline) AddPairRule(inside []bool, from, to time.Duration, attenDB float64) {
	if d.final {
		panic("medium: AddPairRule after Finalize")
	}
	if attenDB > 0 {
		panic(fmt.Sprintf("medium: positive partition attenuation %g dB would unsound the spatial index", attenDB))
	}
	if !(from < to) || len(inside) != len(d.bounds) {
		panic(fmt.Sprintf("medium: bad partition rule [%v,%v) over %d slots", from, to, len(inside)))
	}
	d.pairs = append(d.pairs, degPair{from: from, to: to, attenDB: attenDB, inside: inside})
}

// Finalize compiles the accumulated episodes and rules into the
// queryable step functions. Call exactly once, before installation.
func (d *DegTimeline) Finalize() {
	if d.final {
		panic("medium: Finalize called twice")
	}
	d.final = true

	// Gather per-slot boundary instants: the slot's own episode edges
	// plus the edges of every partition window it is inside (the value
	// does not change there, but the epoch must tick — that is what
	// keys the pair offset out of the cache).
	perSlot := make([][]time.Duration, len(d.bounds))
	for _, e := range d.episodes {
		perSlot[e.slot] = append(perSlot[e.slot], e.from, e.to)
	}
	for _, p := range d.pairs {
		for s, in := range p.inside {
			if in {
				perSlot[s] = append(perSlot[s], p.from, p.to)
			}
		}
	}
	var global []time.Duration
	for s, b := range perSlot {
		sortDedupTimes(&b)
		d.bounds[s] = b
		vals := make([]float64, len(b)+1)
		for e := 0; e <= len(b); e++ {
			// Probe at the epoch's left edge: epochs are half-open on the
			// right and every episode edge is itself a boundary, so the
			// left edge classifies the whole interval exactly.
			var t time.Duration
			if e > 0 {
				t = b[e-1]
			} else {
				t = -1 // before every boundary
			}
			var v float64
			for _, ep := range d.episodes {
				if ep.slot == s && t >= ep.from && t < ep.to {
					v += ep.offsetDB
				}
			}
			vals[e] = v
		}
		d.vals[s] = vals
		global = append(global, b...)
	}
	for _, p := range d.pairs {
		global = append(global, p.from, p.to)
	}
	sortDedupTimes(&global)
	d.global = global
	d.episodes = nil
}

// sortDedupTimes sorts ts ascending and removes duplicates in place.
func sortDedupTimes(ts *[]time.Duration) {
	b := *ts
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	out := b[:0]
	for i, t := range b {
		if i == 0 || t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	*ts = out
}

// epoch returns the slot's degradation epoch at time now: the number of
// its boundaries ≤ now. The cached pair offset is valid while both
// endpoints' epochs stand still.
func (d *DegTimeline) epoch(slot int32, now time.Duration) uint64 {
	b := d.bounds[slot]
	return uint64(sort.Search(len(b), func(i int) bool { return b[i] > now }))
}

// globalEpoch returns the coarse whole-field epoch at time now — the
// count of any boundary instants ≤ now — keying the fan-out memo.
func (d *DegTimeline) globalEpoch(now time.Duration) uint64 {
	g := d.global
	return uint64(sort.Search(len(g), func(i int) bool { return g[i] > now }))
}

// linkOffset returns the degradation offset in dB for the directed link
// txSlot→rxSlot at time now: the two endpoint offsets plus every active
// partition rule the link crosses, summed in a fixed order so cached
// and direct computations are bit-identical.
func (d *DegTimeline) linkOffset(txSlot, rxSlot int32, now time.Duration) float64 {
	v := d.vals[txSlot][d.epoch(txSlot, now)]
	v += d.vals[rxSlot][d.epoch(rxSlot, now)]
	for i := range d.pairs {
		p := &d.pairs[i]
		if now >= p.from && now < p.to && p.inside[txSlot] != p.inside[rxSlot] {
			v += p.attenDB
		}
	}
	return v
}

// LinkOffsetDB exposes linkOffset for instrumentation and tests: the
// compiled degradation offset in dB for the directed link tx→rx at time
// now. The timeline must be finalized.
func (d *DegTimeline) LinkOffsetDB(tx, rx int32, now time.Duration) float64 {
	if !d.final {
		panic("medium: LinkOffsetDB before Finalize")
	}
	return d.linkOffset(tx, rx, now)
}

// Empty reports whether the timeline degrades nothing — no episodes
// and no partition rules survived compilation.
func (d *DegTimeline) Empty() bool {
	return len(d.global) == 0 && len(d.pairs) == 0
}

// SetDegradation installs (or, with nil, removes) the run's link
// degradation timeline. The timeline must be finalized. Installation
// invalidates the link-gain cache and the candidate/fan memos: the
// timeline is part of the link-power function, and a reused arena must
// recompute against the new run's schedule. Installing nil over nil is
// a no-op, so fault-free scenarios keep every cache warm across resets.
func (m *Medium) SetDegradation(d *DegTimeline) {
	if m.deg == nil && d == nil {
		return
	}
	if d != nil && !d.final {
		panic("medium: SetDegradation before Finalize")
	}
	m.deg = d
	m.invalidateGains()
	m.posEpoch++
}
