package medium

import (
	"testing"
	"time"

	"adhocsim/internal/frame"
	"adhocsim/internal/phy"
	"adhocsim/internal/sim"
)

// mockHandler records PHY indications for assertions.
type mockHandler struct {
	ccaEdges []bool
	rx       []rxRecord
	txDone   int
}

type rxRecord struct {
	f    *frame.Frame
	rate phy.Rate
	ok   bool
	at   time.Duration
}

type mockEnv struct {
	sched *sim.Scheduler
	m     *Medium
}

func (h *mockHandler) CCAChanged(busy bool) { h.ccaEdges = append(h.ccaEdges, busy) }
func (h *mockHandler) TxDone()              { h.txDone++ }
func (h *mockHandler) RxEnd(f *frame.Frame, rate phy.Rate, rssi float64, ok bool) {
	h.rx = append(h.rx, rxRecord{f: f, rate: rate, ok: ok})
}

// newEnv builds a medium with a fade-free default profile so geometry is
// deterministic.
func newEnv() (*mockEnv, *phy.Profile) {
	prof := phy.DefaultProfile()
	prof.Fading.SigmaDB = 0
	sched := sim.NewScheduler()
	return &mockEnv{sched: sched, m: New(sched, sim.NewSource(1))}, prof
}

func dataFrame(from, to uint32, size int) *frame.Frame {
	return &frame.Frame{
		Type:    frame.TypeData,
		Addr1:   frame.AddrFromID(to),
		Addr2:   frame.AddrFromID(from),
		Payload: make([]byte, size),
	}
}

func TestDeliveryInRange(t *testing.T) {
	env, prof := newEnv()
	hA, hB := &mockHandler{}, &mockHandler{}
	a := env.m.AddRadio(1, phy.Pos(0, 0), prof, hA)
	env.m.AddRadio(2, phy.Pos(20, 0), prof, hB)

	f := dataFrame(1, 2, 512)
	air := a.Transmit(f, phy.Rate11)
	env.sched.Run()

	if hA.txDone != 1 {
		t.Fatalf("sender TxDone = %d, want 1", hA.txDone)
	}
	if len(hB.rx) != 1 || !hB.rx[0].ok {
		t.Fatalf("receiver rx = %+v, want one successful frame", hB.rx)
	}
	if hB.rx[0].f != f {
		t.Fatal("delivered frame is not the transmitted frame")
	}
	wantAir := phy.DataTime(phy.Rate11, 512)
	if air != wantAir {
		t.Fatalf("airtime = %v, want %v", air, wantAir)
	}
	// Receiver saw a busy edge then an idle edge.
	if len(hB.ccaEdges) != 2 || !hB.ccaEdges[0] || hB.ccaEdges[1] {
		t.Fatalf("receiver CCA edges = %v, want [true false]", hB.ccaEdges)
	}
	// Sender's own TX shows as busy at the sender too.
	if len(hA.ccaEdges) != 2 || !hA.ccaEdges[0] || hA.ccaEdges[1] {
		t.Fatalf("sender CCA edges = %v, want [true false]", hA.ccaEdges)
	}
}

func TestRateDependentRange(t *testing.T) {
	// At 60 m: inside the 1 Mbit/s range (120 m) but outside the
	// 11 Mbit/s range (30 m). The 11 Mbit/s frame locks (PLCP is 1 Mbit/s)
	// but fails decoding — the EIFS trigger. The 1 Mbit/s frame decodes.
	env, prof := newEnv()
	hB := &mockHandler{}
	a := env.m.AddRadio(1, phy.Pos(0, 0), prof, &mockHandler{})
	env.m.AddRadio(2, phy.Pos(60, 0), prof, hB)

	a.Transmit(dataFrame(1, 2, 512), phy.Rate11)
	env.sched.Run()
	if len(hB.rx) != 1 || hB.rx[0].ok {
		t.Fatalf("11 Mbit/s at 60 m: rx = %+v, want one PHY error", hB.rx)
	}

	a.Transmit(dataFrame(1, 2, 512), phy.Rate1)
	env.sched.Run()
	if len(hB.rx) != 2 || !hB.rx[1].ok {
		t.Fatalf("1 Mbit/s at 60 m: rx = %+v, want success", hB.rx)
	}
}

func TestBeyondPLCPDetectOnlyEnergy(t *testing.T) {
	// At 150 m: below PLCP detect (~120 m median) but above the CCA
	// energy threshold (~190 m): the radio senses busy yet never locks.
	env, prof := newEnv()
	hB := &mockHandler{}
	a := env.m.AddRadio(1, phy.Pos(0, 0), prof, &mockHandler{})
	b := env.m.AddRadio(2, phy.Pos(150, 0), prof, hB)

	a.Transmit(dataFrame(1, 2, 512), phy.Rate11)
	env.sched.Run()

	if len(hB.rx) != 0 {
		t.Fatalf("rx = %+v, want none", hB.rx)
	}
	if b.FramesMissed != 1 {
		t.Fatalf("FramesMissed = %d, want 1", b.FramesMissed)
	}
	if len(hB.ccaEdges) != 2 || !hB.ccaEdges[0] {
		t.Fatalf("CCA edges = %v, want busy/idle from energy detect", hB.ccaEdges)
	}
}

func TestBeyondCarrierSenseSilent(t *testing.T) {
	env, prof := newEnv()
	hB := &mockHandler{}
	a := env.m.AddRadio(1, phy.Pos(0, 0), prof, &mockHandler{})
	env.m.AddRadio(2, phy.Pos(300, 0), prof, hB)

	a.Transmit(dataFrame(1, 2, 512), phy.Rate11)
	env.sched.Run()

	if len(hB.ccaEdges) != 0 || len(hB.rx) != 0 {
		t.Fatalf("beyond PCS range: edges=%v rx=%v, want silence", hB.ccaEdges, hB.rx)
	}
}

func TestCollisionCorruptsFrame(t *testing.T) {
	// Two transmitters equidistant from the receiver start simultaneously:
	// comparable power, SINR ~ 0 dB, the locked frame must fail.
	env, prof := newEnv()
	hC := &mockHandler{}
	a := env.m.AddRadio(1, phy.Pos(-20, 0), prof, &mockHandler{})
	b := env.m.AddRadio(2, phy.Pos(20, 0), prof, &mockHandler{})
	env.m.AddRadio(3, phy.Pos(0, 0), prof, hC)

	a.Transmit(dataFrame(1, 3, 512), phy.Rate11)
	b.Transmit(dataFrame(2, 3, 512), phy.Rate11)
	env.sched.Run()

	if len(hC.rx) != 1 {
		t.Fatalf("rx events = %d, want 1 (one lock)", len(hC.rx))
	}
	if hC.rx[0].ok {
		t.Fatal("collision decoded successfully; want corruption")
	}
}

func TestCaptureStrongerFrameWins(t *testing.T) {
	// A weak distant frame locks first; a near transmitter starts
	// mid-reception with >10 dB more power: capture switches the lock and
	// the strong frame decodes.
	env, prof := newEnv()
	sched := env.sched
	hC := &mockHandler{}
	far := env.m.AddRadio(1, phy.Pos(100, 0), prof, &mockHandler{})
	near := env.m.AddRadio(2, phy.Pos(5, 0), prof, &mockHandler{})
	c := env.m.AddRadio(3, phy.Pos(0, 0), prof, hC)

	far.Transmit(dataFrame(1, 3, 512), phy.Rate1)
	sched.At(400*time.Microsecond, func() {
		near.Transmit(dataFrame(2, 3, 256), phy.Rate11)
	})
	sched.Run()

	if c.CaptureSwitches != 1 {
		t.Fatalf("CaptureSwitches = %d, want 1", c.CaptureSwitches)
	}
	// The strong frame decodes; only it produces an RxEnd.
	if len(hC.rx) != 1 || !hC.rx[0].ok || hC.rx[0].rate != phy.Rate11 {
		t.Fatalf("rx = %+v, want the 11 Mbit/s capture to decode", hC.rx)
	}
}

func TestHalfDuplexMissesWhileTransmitting(t *testing.T) {
	env, prof := newEnv()
	hB := &mockHandler{}
	a := env.m.AddRadio(1, phy.Pos(0, 0), prof, &mockHandler{})
	b := env.m.AddRadio(2, phy.Pos(20, 0), prof, hB)

	// Both start at the same instant: each is transmitting when the
	// other's frame arrives.
	a.Transmit(dataFrame(1, 2, 512), phy.Rate11)
	b.Transmit(dataFrame(2, 1, 512), phy.Rate11)
	env.sched.Run()

	if len(hB.rx) != 0 {
		t.Fatalf("rx = %+v, want none (half duplex)", hB.rx)
	}
	if b.FramesMissed != 1 {
		t.Fatalf("FramesMissed = %d, want 1", b.FramesMissed)
	}
}

func TestTransmitWhileTransmittingPanics(t *testing.T) {
	env, prof := newEnv()
	a := env.m.AddRadio(1, phy.Pos(0, 0), prof, &mockHandler{})
	a.Transmit(dataFrame(1, 2, 100), phy.Rate11)
	defer func() {
		if recover() == nil {
			t.Fatal("double Transmit did not panic")
		}
	}()
	a.Transmit(dataFrame(1, 2, 100), phy.Rate11)
}

func TestDuplicateRadioIDPanics(t *testing.T) {
	env, prof := newEnv()
	env.m.AddRadio(1, phy.Pos(0, 0), prof, &mockHandler{})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate radio id did not panic")
		}
	}()
	env.m.AddRadio(1, phy.Pos(10, 0), prof, &mockHandler{})
}

func TestMediumCounters(t *testing.T) {
	env, prof := newEnv()
	a := env.m.AddRadio(1, phy.Pos(0, 0), prof, &mockHandler{})
	env.m.AddRadio(2, phy.Pos(20, 0), prof, &mockHandler{})
	for i := 0; i < 5; i++ {
		a.Transmit(dataFrame(1, 2, 100), phy.Rate11)
		env.sched.Run()
	}
	if env.m.Transmissions != 5 || env.m.Deliveries != 5 || env.m.PHYErrors != 0 {
		t.Fatalf("counters tx=%d rx=%d err=%d, want 5/5/0",
			env.m.Transmissions, env.m.Deliveries, env.m.PHYErrors)
	}
	if a.FramesSent != 5 {
		t.Fatalf("FramesSent = %d, want 5", a.FramesSent)
	}
}

func TestMobilityAffectsDelivery(t *testing.T) {
	env, prof := newEnv()
	hB := &mockHandler{}
	a := env.m.AddRadio(1, phy.Pos(0, 0), prof, &mockHandler{})
	b := env.m.AddRadio(2, phy.Pos(20, 0), prof, hB)

	a.Transmit(dataFrame(1, 2, 100), phy.Rate11)
	env.sched.Run()
	b.SetPos(phy.Pos(300, 0))
	a.Transmit(dataFrame(1, 2, 100), phy.Rate11)
	env.sched.Run()

	if len(hB.rx) != 1 {
		t.Fatalf("rx = %d events, want exactly 1 (second out of range)", len(hB.rx))
	}
}

func TestFadedLinkLossRateMatchesAnalytic(t *testing.T) {
	// With fading enabled, the empirical delivery rate at the median
	// range should be ~50%, matching Profile.LossProbability.
	prof := phy.DefaultProfile()
	prof.Fading.Coherence = time.Millisecond // fast fading:every frame gets a new epoch
	sched := sim.NewScheduler()
	m := New(sched, sim.NewSource(42))
	hB := &mockHandler{}
	d := prof.MedianRange(phy.Rate11)
	a := m.AddRadio(1, phy.Pos(0, 0), prof, &mockHandler{})
	m.AddRadio(2, phy.Pos(d, 0), prof, hB)

	const n = 400
	for i := 0; i < n; i++ {
		sched.RunUntil(time.Duration(i) * 2 * time.Millisecond)
		a.Transmit(dataFrame(1, 2, 100), phy.Rate11)
	}
	sched.Run()

	okCount := 0
	for _, r := range hB.rx {
		if r.ok {
			okCount++
		}
	}
	got := float64(okCount) / n
	if got < 0.40 || got > 0.60 {
		t.Fatalf("delivery rate at median range = %.2f, want ~0.5", got)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (uint64, uint64) {
		prof := phy.DefaultProfile()
		sched := sim.NewScheduler()
		m := New(sched, sim.NewSource(99))
		a := m.AddRadio(1, phy.Pos(0, 0), prof, &mockHandler{})
		m.AddRadio(2, phy.Pos(prof.MedianRange(phy.Rate11), 0), prof, &mockHandler{})
		for i := 0; i < 100; i++ {
			sched.RunUntil(time.Duration(i) * 300 * time.Millisecond)
			a.Transmit(dataFrame(1, 2, 100), phy.Rate11)
		}
		sched.Run()
		return m.Deliveries, m.PHYErrors
	}
	d1, e1 := run()
	d2, e2 := run()
	if d1 != d2 || e1 != e2 {
		t.Fatalf("runs diverged: (%d,%d) vs (%d,%d)", d1, e1, d2, e2)
	}
}

// TestLinkGainCacheMatchesDirect pits the link-gain cache against the
// direct per-call PHY computation across everything that can invalidate
// an entry — time advancing through coherence epochs, either endpoint
// moving, static and dynamic shadowing components — and requires the
// returned power (and its memoized linear form) to be bit-identical on
// every query, including repeat queries served from the cache.
func TestLinkGainCacheMatchesDirect(t *testing.T) {
	prof := phy.TestbedProfile() // static + dynamic shadowing components
	prof.Fading.Coherence = 10 * time.Millisecond
	sched := sim.NewScheduler()
	src := sim.NewSource(99)
	m := New(sched, src)
	a := m.AddRadio(1, phy.Pos(0, 0), prof, &mockHandler{})
	b := m.AddRadio(2, phy.Pos(35, 0), prof, &mockHandler{})
	c := m.AddRadio(3, phy.Pos(10, 40), prof, &mockHandler{})

	check := func(from, rx *Radio, now time.Duration) {
		t.Helper()
		d := phy.Dist(from.Pos(), rx.Pos())
		want := from.Profile().RxPowerDBm(src, uint64(from.ID()), uint64(rx.ID()), d, now)
		for i := 0; i < 3; i++ { // repeat: later queries come from the cache
			got, g := m.linkPower(from, rx.slot, now)
			if got != want {
				t.Fatalf("linkPower(%d->%d, %v) query %d = %v, want direct %v",
					from.ID(), rx.ID(), now, i, got, want)
			}
			if mw := g.milliwatt(got); mw != phy.DBmToMilliwatt(want) {
				t.Fatalf("milliwatt(%d->%d, %v) = %v, want direct %v",
					from.ID(), rx.ID(), now, mw, phy.DBmToMilliwatt(want))
			}
		}
	}

	times := []time.Duration{0, 3 * time.Millisecond, 10 * time.Millisecond,
		14 * time.Millisecond, 50 * time.Millisecond}
	pairs := [][2]*Radio{{a, b}, {b, a}, {a, c}, {c, a}, {b, c}, {c, b}}
	for _, now := range times {
		for _, p := range pairs {
			check(p[0], p[1], now)
		}
	}

	// Move one endpoint: both link directions touching it must pick up
	// the new distance; untouched links must stay cached and correct.
	b.SetPos(phy.Pos(80, 5))
	for _, p := range pairs {
		check(p[0], p[1], 50*time.Millisecond)
	}
	a.SetPos(phy.Pos(-20, -20))
	for _, now := range []time.Duration{50 * time.Millisecond, 61 * time.Millisecond} {
		for _, p := range pairs {
			check(p[0], p[1], now)
		}
	}

	// The reference path (cache off) must agree too.
	m.SetGainCache(false)
	d := phy.Dist(a.Pos(), b.Pos())
	want := prof.RxPowerDBm(src, 1, 2, d, 70*time.Millisecond)
	got, g := m.linkPower(a, b.slot, 70*time.Millisecond)
	if got != want || g != nil {
		t.Fatalf("cache-off linkPower = (%v, %v), want (%v, nil)", got, g, want)
	}
	m.SetGainCache(true)
	check(a, b, 70*time.Millisecond)
}
