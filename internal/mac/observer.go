package mac

import "adhocsim/internal/frame"

// TxOutcome describes the fate of one transmission event for a data
// MSDU, as reported to the MAC's transmit observers. Two kinds of event
// are reported, mirroring the legacy RateController semantics exactly:
//
//   - a completed MSDU (Success && Final): the frame was acknowledged,
//     or was a broadcast and left the air;
//   - a failed attempt (!Success): one transmission attempt ended in a
//     CTS or ACK timeout. Final is additionally set when that failure
//     drove the MSDU past its retry limit and out of the pipeline.
//
// Beacons are not reported (they never were to rate controllers
// either). Control-plane MSDUs queued through SendControl are reported
// with Control set so rate-adaptation observers can ignore them.
type TxOutcome struct {
	// To is the MSDU's link-layer destination — for routing protocols,
	// the next hop whose link just proved itself alive or dead.
	To frame.Addr
	// Success reports a completed MSDU; false is a failed attempt.
	Success bool
	// Final reports that the MSDU left the transmit pipeline: delivered,
	// or dropped at the retry limit. A Final failure is the MAC-level
	// signal that the link to To is broken.
	Final bool
	// Control marks MSDUs queued via SendControl (pinned basic-rate
	// control traffic, e.g. routing advertisements). Rate controllers
	// ignore these; they are not subject to rate adaptation.
	Control bool
}

// TxObserver receives transmit outcomes. Multiple observers can
// subscribe to one MAC (AddTxObserver); ARF-style rate adaptation and
// routing link-failure detection coexist this way.
type TxObserver interface {
	ObserveTx(TxOutcome)
}

// TxObserverFunc adapts a plain function to the TxObserver interface.
type TxObserverFunc func(TxOutcome)

// ObserveTx implements TxObserver.
func (f TxObserverFunc) ObserveTx(o TxOutcome) { f(o) }

// rateControlObserver adapts the legacy RateController observation
// surface (OnSuccess/OnFailure) onto the generalized observer list, so
// Config.RateControl keeps working unchanged: OnSuccess per completed
// MSDU, OnFailure per failed attempt, beacons and pinned control frames
// excluded.
type rateControlObserver struct{ rc RateController }

func (a rateControlObserver) ObserveTx(o TxOutcome) {
	if o.Control {
		return
	}
	if o.Success {
		a.rc.OnSuccess()
	} else {
		a.rc.OnFailure()
	}
}

// AddTxObserver subscribes an observer to this MAC's transmit outcomes.
// Subscriptions are construction-time wiring: they survive Reset, like
// the delivery callback. Observers are notified in subscription order;
// a Config.RateControl adapter, when present, is always first.
func (m *MAC) AddTxObserver(o TxObserver) { m.txObservers = append(m.txObservers, o) }

// notifyTx reports a transmit outcome for pkt to every observer.
// Beacons are excluded, preserving the legacy RateController contract.
func (m *MAC) notifyTx(pkt *msdu, success, final bool) {
	if pkt.isBeacon || len(m.txObservers) == 0 {
		return
	}
	o := TxOutcome{To: pkt.to, Success: success, Final: final, Control: pkt.pinned}
	for _, obs := range m.txObservers {
		obs.ObserveTx(o)
	}
}
