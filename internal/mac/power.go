package mac

import (
	"errors"

	"adhocsim/internal/phy"
	"adhocsim/internal/sim"
)

// This file implements station crash/restart for the fault-injection
// engine: PowerDown tears the MAC back to a cold stack mid-run and
// PowerUp brings it back, both as ordinary scheduler events so faulted
// runs stay bit-identical across kernels. The split from Reset matters:
// Reset rewinds a whole network to t=0 between replications, while a
// power cycle happens at a live instant on a live channel — state the
// peers keep (their duplicate-suppression caches, their routes through
// us) is beyond our reach, and the restart must coexist with it.

// ErrDown is returned by Send/SendControl while the station is crashed.
var ErrDown = errors.New("mac: station is down")

// Down reports whether the MAC is powered down (crashed station).
func (m *MAC) Down() bool { return m.down }

// PowerDown crashes the station's MAC: every pending timer is
// cancelled, the transmit queue and pipeline are discarded, and the
// DCF state machine returns to idle. Frames lost here are the crash's
// data loss — nothing is preserved for the restart, exactly as a real
// power loss wipes driver state. The caller powers the radio down
// separately (medium.Radio.PowerDown), after this call, so the
// CCAChanged edge a dropped lock may produce is already gated.
//
// The MAC's own sequence counter deliberately survives: peers hold our
// pre-crash sequence numbers in their duplicate-suppression caches, and
// restarting from zero would make them silently eat our first frames
// after the restart. Received-side duplicate state is cleared — that is
// the stack state a crash genuinely loses.
func (m *MAC) PowerDown() {
	if m.down {
		return
	}
	m.down = true
	m.sched.Cancel(m.resumeEv)
	m.sched.Cancel(m.slotEv)
	m.sched.Cancel(m.navEv)
	m.sched.Cancel(m.timeoutEv)
	m.sched.Cancel(m.sifsEv)
	m.sched.Cancel(m.beaconEv)
	m.resumeEv, m.slotEv, m.navEv = sim.Event{}, sim.Event{}, sim.Event{}
	m.timeoutEv, m.sifsEv, m.beaconEv = sim.Event{}, sim.Event{}, sim.Event{}
	clear(m.queue)
	m.queue = m.queue[:0]
	m.current = nil
	m.st = stIdle
	m.cw = phy.CWMin
	m.backoff = -1
	m.nav = 0
	m.lastRxError = false
	m.pendingResp = nil
	m.respRate = 0
	m.respInFlight = false
	clear(m.rxSeq)
	clear(m.rxSeqV)
	m.lastRxRSSI = 0
}

// PowerUp restarts a crashed MAC. The radio must already be powered up
// (medium.Radio.PowerUp) so carrier sense reads the live channel. The
// tail mirrors Attach exactly — channel-state initialization, then
// beacon arming — so a restarted station re-enters the IBSS the same
// way a freshly attached one joins it. Saturating sources blocked on
// ErrDown are re-kicked through the queue-space callback.
func (m *MAC) PowerUp() {
	if !m.down {
		return
	}
	m.down = false
	m.available = !m.radio.CCABusy()
	m.availSince = m.sched.Now()
	if m.cfg.BeaconInterval > 0 {
		m.scheduleBeacon()
	}
	if m.queueSpace != nil {
		m.queueSpace()
	}
}
