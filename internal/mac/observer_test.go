package mac

import (
	"testing"
	"time"

	"adhocsim/internal/phy"
)

// recordingObserver captures every outcome for assertions.
type recordingObserver struct{ outcomes []TxOutcome }

func (r *recordingObserver) ObserveTx(o TxOutcome) { r.outcomes = append(r.outcomes, o) }

// TestTxObserverSeesSuccess proves a subscribed observer is told about a
// completed MSDU, with the link-layer destination it completed to.
func TestTxObserverSeesSuccess(t *testing.T) {
	tb := newTestbed(t, 1, false, defaults(phy.Rate11, false), phy.Pos(0, 0), phy.Pos(20, 0))
	a := tb.stations[0]
	rec := &recordingObserver{}
	a.mac.AddTxObserver(rec)

	if err := a.mac.Send([]byte("x"), addr(2)); err != nil {
		t.Fatal(err)
	}
	tb.sched.RunUntil(50 * time.Millisecond)
	if len(rec.outcomes) != 1 {
		t.Fatalf("outcomes = %d, want 1", len(rec.outcomes))
	}
	o := rec.outcomes[0]
	if !o.Success || !o.Final || o.Control || o.To != addr(2) {
		t.Fatalf("outcome = %+v", o)
	}
}

// TestTxObserverSeesRetryLimitDrop proves every failed attempt is
// reported and the last one carries Final — the signal routing
// protocols use for link-failure detection.
func TestTxObserverSeesRetryLimitDrop(t *testing.T) {
	// Station 2 is far outside data range, so every attempt times out.
	tb := newTestbed(t, 1, false, defaults(phy.Rate11, false), phy.Pos(0, 0), phy.Pos(500, 0))
	a := tb.stations[0]
	rec := &recordingObserver{}
	a.mac.AddTxObserver(rec)

	if err := a.mac.Send([]byte("x"), addr(2)); err != nil {
		t.Fatal(err)
	}
	tb.sched.RunUntil(time.Second)
	// ShortRetryLimit defaults to 7: the initial attempt plus 7 retries,
	// the 8th failure being final.
	if len(rec.outcomes) != 8 {
		t.Fatalf("outcomes = %d, want 8", len(rec.outcomes))
	}
	for i, o := range rec.outcomes {
		if o.Success {
			t.Fatalf("outcome %d: unexpected success", i)
		}
		if got, want := o.Final, i == len(rec.outcomes)-1; got != want {
			t.Fatalf("outcome %d: Final = %v, want %v", i, got, want)
		}
	}
	if a.mac.Counters.TxDrops != 1 {
		t.Fatalf("TxDrops = %d", a.mac.Counters.TxDrops)
	}
}

// TestRateControlAliasAndObserverCoexist proves the deprecated
// Config.RateControl observation path and an explicitly added observer
// both see the same outcomes: ARF and routing can coexist.
func TestRateControlAliasAndObserverCoexist(t *testing.T) {
	arf := NewARF(phy.Rate11)
	cfg := func(i int) Config {
		c := Config{DataRate: phy.Rate11}
		if i == 0 {
			c.RateControl = arf
		}
		return c
	}
	tb := newTestbed(t, 1, false, cfg, phy.Pos(0, 0), phy.Pos(20, 0))
	a := tb.stations[0]
	rec := &recordingObserver{}
	a.mac.AddTxObserver(rec)

	const n = 20
	for i := 0; i < n; i++ {
		if err := a.mac.Send([]byte("payload"), addr(2)); err != nil {
			t.Fatal(err)
		}
	}
	tb.sched.RunUntil(time.Second)
	if len(rec.outcomes) != n {
		t.Fatalf("observer outcomes = %d, want %d", len(rec.outcomes), n)
	}
	// The clean channel completes every MSDU: ARF saw n successes too
	// (it starts at the top rate, so successes leave the rate pinned and
	// Upgrades at zero — the counters prove OnSuccess was invoked).
	if arf.Upgrades != 0 || arf.Downgrades != 0 {
		t.Fatalf("ARF transitions on a clean channel: up=%d down=%d", arf.Upgrades, arf.Downgrades)
	}
}

// TestSendControlPinsRate proves control MSDUs ride their pinned rate,
// are flagged Control to observers, and are invisible to rate control.
func TestSendControlPinsRate(t *testing.T) {
	arf := NewARF(phy.Rate11)
	cfg := func(i int) Config {
		c := Config{DataRate: phy.Rate11}
		if i == 0 {
			c.RateControl = arf
		}
		return c
	}
	tb := newTestbed(t, 1, false, cfg, phy.Pos(0, 0), phy.Pos(20, 0))
	a, b := tb.stations[0], tb.stations[1]
	rec := &recordingObserver{}
	a.mac.AddTxObserver(rec)

	if err := a.mac.SendControl([]byte("advert"), addr(2), phy.Rate1); err != nil {
		t.Fatal(err)
	}
	tb.sched.RunUntil(50 * time.Millisecond)
	if len(b.delivered) != 1 {
		t.Fatalf("deliveries = %d", len(b.delivered))
	}
	if len(rec.outcomes) != 1 || !rec.outcomes[0].Control {
		t.Fatalf("outcomes = %+v, want one Control outcome", rec.outcomes)
	}
	// A failure streak on control frames must not reach ARF either:
	// the controller's counters stay untouched.
	if arf.Upgrades != 0 || arf.Downgrades != 0 {
		t.Fatalf("ARF reacted to control traffic")
	}
}
