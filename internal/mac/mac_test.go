package mac

import (
	"fmt"
	"testing"
	"time"

	"adhocsim/internal/frame"
	"adhocsim/internal/medium"
	"adhocsim/internal/phy"
	"adhocsim/internal/sim"
)

// station bundles a MAC with its radio and a record of deliveries.
type station struct {
	mac       *MAC
	radio     *medium.Radio
	delivered [][]byte
	sources   []frame.Addr
}

// testbed wires n stations onto one medium.
type testbed struct {
	sched    *sim.Scheduler
	src      *sim.Source
	med      *medium.Medium
	stations []*station
}

// newTestbed builds n stations at the given positions. fade=false zeroes
// the shadowing for deterministic geometry.
func newTestbed(t *testing.T, seed uint64, fade bool, cfg func(i int) Config, positions ...phy.Position) *testbed {
	t.Helper()
	prof := phy.DefaultProfile()
	if !fade {
		prof.Fading.SigmaDB = 0
	}
	return newTestbedProfile(seed, prof, cfg, positions...)
}

func newTestbedProfile(seed uint64, prof *phy.Profile, cfg func(i int) Config, positions ...phy.Position) *testbed {
	src := sim.NewSource(seed)
	sched := sim.NewScheduler()
	tb := &testbed{sched: sched, src: src, med: medium.New(sched, src)}
	for i, pos := range positions {
		c := cfg(i)
		c.Address = frame.AddrFromID(uint32(i + 1))
		m := New(sched, src, c)
		st := &station{mac: m}
		m.OnDeliver(func(payload []byte, from frame.Addr) {
			st.delivered = append(st.delivered, payload)
			st.sources = append(st.sources, from)
		})
		st.radio = tb.med.AddRadio(uint32(i+1), pos, prof, m)
		m.Attach(st.radio)
		tb.stations = append(tb.stations, st)
	}
	return tb
}

func addr(i int) frame.Addr { return frame.AddrFromID(uint32(i)) }

func defaults(rate phy.Rate, rts bool) func(int) Config {
	thr := RTSNever
	if rts {
		thr = 1
	}
	return func(int) Config {
		return Config{DataRate: rate, RTSThreshold: thr}
	}
}

func TestSingleMSDUDelivered(t *testing.T) {
	tb := newTestbed(t, 1, false, defaults(phy.Rate11, false), phy.Pos(0, 0), phy.Pos(20, 0))
	a, b := tb.stations[0], tb.stations[1]

	payload := []byte("hello, ad hoc world")
	if err := a.mac.Send(payload, addr(2)); err != nil {
		t.Fatal(err)
	}
	tb.sched.RunUntil(50 * time.Millisecond)

	if len(b.delivered) != 1 || string(b.delivered[0]) != string(payload) {
		t.Fatalf("delivered = %q, want one copy of payload", b.delivered)
	}
	if b.sources[0] != addr(1) {
		t.Fatalf("source = %v, want %v", b.sources[0], addr(1))
	}
	if a.mac.Counters.TxSuccess != 1 {
		t.Fatalf("TxSuccess = %d, want 1", a.mac.Counters.TxSuccess)
	}
	if b.mac.Counters.ACKTx != 1 {
		t.Fatalf("receiver ACKTx = %d, want 1", b.mac.Counters.ACKTx)
	}
	if a.mac.Counters.RxACK != 1 {
		t.Fatalf("sender RxACK = %d, want 1", a.mac.Counters.RxACK)
	}
	if a.mac.Counters.RTSTx != 0 {
		t.Fatal("basic access must not send RTS")
	}
}

func TestRTSCTSExchange(t *testing.T) {
	tb := newTestbed(t, 1, false, defaults(phy.Rate11, true), phy.Pos(0, 0), phy.Pos(20, 0))
	a, b := tb.stations[0], tb.stations[1]

	if err := a.mac.Send(make([]byte, 512), addr(2)); err != nil {
		t.Fatal(err)
	}
	tb.sched.RunUntil(50 * time.Millisecond)

	if len(b.delivered) != 1 {
		t.Fatalf("delivered %d frames, want 1", len(b.delivered))
	}
	if a.mac.Counters.RTSTx != 1 || b.mac.Counters.CTSTx != 1 {
		t.Fatalf("RTS/CTS = %d/%d, want 1/1", a.mac.Counters.RTSTx, b.mac.Counters.CTSTx)
	}
	if a.mac.Counters.RxCTS != 1 {
		t.Fatalf("sender RxCTS = %d, want 1", a.mac.Counters.RxCTS)
	}
}

func TestBroadcastNoACK(t *testing.T) {
	tb := newTestbed(t, 1, false, defaults(phy.Rate11, true),
		phy.Pos(0, 0), phy.Pos(15, 0), phy.Pos(0, 15))
	a := tb.stations[0]

	if err := a.mac.Send([]byte("to everyone"), frame.Broadcast); err != nil {
		t.Fatal(err)
	}
	tb.sched.RunUntil(50 * time.Millisecond)

	for i, st := range tb.stations[1:] {
		if len(st.delivered) != 1 {
			t.Fatalf("station %d delivered %d, want 1", i+2, len(st.delivered))
		}
		if st.mac.Counters.ACKTx != 0 {
			t.Fatal("broadcast must not be ACKed")
		}
	}
	// Broadcast bypasses RTS even with RTSThreshold=1.
	if a.mac.Counters.RTSTx != 0 {
		t.Fatal("broadcast must not use RTS")
	}
	if a.mac.Counters.TxSuccess != 1 {
		t.Fatalf("TxSuccess = %d, want 1", a.mac.Counters.TxSuccess)
	}
}

func TestRetryLimitAndDrop(t *testing.T) {
	// Receiver at 60 m: 11 Mbit/s data is never decodable (range 30 m),
	// so every attempt times out; the MSDU is dropped after
	// ShortRetryLimit retries.
	tb := newTestbed(t, 1, false, defaults(phy.Rate11, false), phy.Pos(0, 0), phy.Pos(60, 0))
	a, b := tb.stations[0], tb.stations[1]

	if err := a.mac.Send(make([]byte, 256), addr(2)); err != nil {
		t.Fatal(err)
	}
	tb.sched.RunUntil(time.Second)

	if len(b.delivered) != 0 {
		t.Fatal("frame should not be deliverable at 60 m / 11 Mbit/s")
	}
	if a.mac.Counters.TxDrops != 1 {
		t.Fatalf("TxDrops = %d, want 1", a.mac.Counters.TxDrops)
	}
	// Initial attempt + ShortRetryLimit retries.
	if got, want := a.mac.Counters.DataTx, uint64(8); got != want {
		t.Fatalf("DataTx = %d, want %d (1 try + 7 retries)", got, want)
	}
	if got := a.mac.Counters.ACKTimeouts; got != 8 {
		t.Fatalf("ACKTimeouts = %d, want 8", got)
	}
	// The receiver heard every frame as a PHY error (locked, undecodable).
	if b.mac.Counters.PHYErrors == 0 {
		t.Fatal("receiver should have logged PHY errors")
	}
}

func TestSaturationThroughputNearAnalytic(t *testing.T) {
	// Two stations, 10 m apart, saturated queue, 512-byte MSDUs at
	// 11 Mbit/s, basic access. Expected MAC-level throughput from the
	// paper's Equation (1) with these exact parameters:
	//   T_DATA = 192 + (272+4096)/11 ≈ 589.1 µs
	//   denom = DIFS + T_DATA + SIFS + ACK@2 + E[backoff] + 2τ
	//         ≈ 50 + 589.1 + 10 + 248 + 310 + 2 ≈ 1209 µs
	//   Th ≈ 4096 bits / 1209 µs ≈ 3.39 Mbit/s.
	tb := newTestbed(t, 7, false, defaults(phy.Rate11, false), phy.Pos(0, 0), phy.Pos(10, 0))
	a, b := tb.stations[0], tb.stations[1]

	payload := make([]byte, 512)
	fill := func() {
		for a.mac.Send(payload, addr(2)) == nil {
		}
	}
	a.mac.OnQueueSpace(fill)
	fill()

	const horizon = 2 * time.Second
	tb.sched.RunUntil(horizon)

	bits := float64(len(b.delivered)) * 512 * 8
	mbps := bits / horizon.Seconds() / 1e6
	if mbps < 3.25 || mbps > 3.55 {
		t.Fatalf("saturation throughput = %.3f Mbit/s, want ≈3.39", mbps)
	}
	if a.mac.Counters.ACKTimeouts != 0 {
		t.Fatalf("clean channel should have no timeouts, got %d", a.mac.Counters.ACKTimeouts)
	}
}

func TestRTSCTSThroughputLower(t *testing.T) {
	run := func(rts bool) int {
		tb := newTestbed(t, 7, false, defaults(phy.Rate11, rts), phy.Pos(0, 0), phy.Pos(10, 0))
		a, b := tb.stations[0], tb.stations[1]
		payload := make([]byte, 512)
		fill := func() {
			for a.mac.Send(payload, addr(2)) == nil {
			}
		}
		a.mac.OnQueueSpace(fill)
		fill()
		tb.sched.RunUntil(time.Second)
		return len(b.delivered)
	}
	basic, rts := run(false), run(true)
	if rts >= basic {
		t.Fatalf("RTS/CTS delivered %d ≥ basic %d; RTS overhead must cost throughput", rts, basic)
	}
	// With long-PLCP control frames at 2 Mbit/s the exchange adds
	// RTS(272µs)+CTS(248µs)+2·SIFS ≈ 540 µs to a ≈1209 µs cycle:
	// expected ratio ≈ 1209/1749 ≈ 0.69. (The paper's Table 2 implies
	// ≈0.83; see EXPERIMENTS.md for the accounting difference.)
	ratio := float64(rts) / float64(basic)
	if ratio < 0.64 || ratio > 0.75 {
		t.Fatalf("RTS/basic ratio = %.2f, want ≈0.69", ratio)
	}
}

func TestInOrderNoDuplicates(t *testing.T) {
	// Mid-range link with fading: retries and drops happen, but the
	// receiver must see payloads in order without duplicates.
	prof := phy.DefaultProfile()
	prof.Fading.Coherence = 5 * time.Millisecond
	tb := newTestbedProfile(3, prof, defaults(phy.Rate11, false),
		phy.Pos(0, 0), phy.Pos(28, 0))
	a, b := tb.stations[0], tb.stations[1]

	// The queue-space callback fires re-entrantly from inside Send, so
	// the filler guards against nested invocations.
	var next int
	var filling bool
	var fill func()
	fill = func() {
		if filling {
			return
		}
		filling = true
		defer func() { filling = false }()
		for {
			payload := []byte(fmt.Sprintf("pkt-%06d", next))
			next++
			if a.mac.Send(payload, addr(2)) != nil {
				next--
				return
			}
		}
	}
	a.mac.OnQueueSpace(fill)
	fill()
	tb.sched.RunUntil(3 * time.Second)

	if len(b.delivered) < 100 {
		t.Fatalf("delivered only %d frames", len(b.delivered))
	}
	last := -1
	for _, p := range b.delivered {
		var n int
		if _, err := fmt.Sscanf(string(p), "pkt-%d", &n); err != nil {
			t.Fatal(err)
		}
		if n <= last {
			t.Fatalf("out-of-order or duplicate delivery: %d after %d", n, last)
		}
		last = n
	}
	if a.mac.Counters.DataRetx == 0 {
		t.Fatal("expected retries on a faded mid-range link")
	}
}

func TestNAVDefersTransmission(t *testing.T) {
	// Inject a third-party CTS with a long Duration directly into the
	// MAC: it must defer its own pending traffic until the NAV expires.
	tb := newTestbed(t, 1, false, defaults(phy.Rate11, false), phy.Pos(0, 0), phy.Pos(20, 0))
	a := tb.stations[0]

	nav := 8 * time.Millisecond
	cts := &frame.Frame{Type: frame.TypeCTS, Addr1: addr(99), Duration: nav}
	a.mac.RxEnd(cts, phy.Rate2, -50, true)
	if err := a.mac.Send(make([]byte, 100), addr(2)); err != nil {
		t.Fatal(err)
	}

	tb.sched.RunUntil(nav - time.Millisecond)
	if tb.med.Transmissions != 0 {
		t.Fatal("transmitted during NAV")
	}
	tb.sched.RunUntil(nav + 5*time.Millisecond)
	if tb.med.Transmissions == 0 {
		t.Fatal("never transmitted after NAV expiry")
	}
	if a.mac.Counters.NAVUpdates != 1 {
		t.Fatalf("NAVUpdates = %d, want 1", a.mac.Counters.NAVUpdates)
	}
}

func TestEIFSAfterPHYError(t *testing.T) {
	// A PHY error must push the next transmission out to EIFS (364 µs)
	// instead of DIFS (50 µs).
	tb := newTestbed(t, 1, false, defaults(phy.Rate11, false), phy.Pos(0, 0), phy.Pos(20, 0))
	a := tb.stations[0]

	bad := &frame.Frame{Type: frame.TypeData, Addr1: addr(99), Addr2: addr(98), Payload: make([]byte, 100)}
	a.mac.RxEnd(bad, phy.Rate11, -80, false)
	if err := a.mac.Send(make([]byte, 100), addr(2)); err != nil {
		t.Fatal(err)
	}

	// Strictly before EIFS: nothing on the air.
	tb.sched.RunUntil(phy.EIFS() - 10*time.Microsecond)
	if tb.med.Transmissions != 0 {
		t.Fatal("transmitted before EIFS elapsed")
	}
	tb.sched.RunUntil(phy.EIFS() + phy.SlotTime)
	if tb.med.Transmissions != 1 {
		t.Fatalf("transmissions = %d, want 1 right after EIFS", tb.med.Transmissions)
	}
	if a.mac.Counters.EIFSDeferrals != 1 {
		t.Fatalf("EIFSDeferrals = %d, want 1", a.mac.Counters.EIFSDeferrals)
	}
}

func TestDuplicateSuppression(t *testing.T) {
	tb := newTestbed(t, 1, false, defaults(phy.Rate11, false), phy.Pos(0, 0), phy.Pos(20, 0))
	a := tb.stations[0]

	data := &frame.Frame{
		Type: frame.TypeData, Addr1: addr(1), Addr2: addr(9),
		Seq: 42, Payload: []byte("x"),
	}
	a.mac.RxEnd(data, phy.Rate11, -50, true)
	retry := data.Clone()
	retry.Retry = true
	tb.sched.RunUntil(time.Millisecond)
	a.mac.RxEnd(retry, phy.Rate11, -50, true)
	tb.sched.RunUntil(2 * time.Millisecond)

	if len(a.delivered) != 1 {
		t.Fatalf("delivered = %d, want 1 (duplicate suppressed)", len(a.delivered))
	}
	if a.mac.Counters.RxDup != 1 {
		t.Fatalf("RxDup = %d, want 1", a.mac.Counters.RxDup)
	}
	// A new sequence from the same source is not a duplicate.
	data2 := data.Clone()
	data2.Seq = 43
	a.mac.RxEnd(data2, phy.Rate11, -50, true)
	tb.sched.RunUntil(3 * time.Millisecond)
	if len(a.delivered) != 2 {
		t.Fatalf("delivered = %d, want 2", len(a.delivered))
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	tb := newTestbed(t, 1, false, defaults(phy.Rate11, false), phy.Pos(0, 0), phy.Pos(20, 0))
	a := tb.stations[0]

	cap := a.mac.QueueCap()
	for i := 0; i < cap; i++ {
		if err := a.mac.Send(make([]byte, 10), addr(2)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	// Note: the first Send may already be in the pipeline, so one more
	// fits; fill until full.
	for a.mac.Send(make([]byte, 10), addr(2)) == nil {
	}
	if err := a.mac.Send(make([]byte, 10), addr(2)); err != ErrQueueFull {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	spaceCalls := 0
	a.mac.OnQueueSpace(func() { spaceCalls++ })
	tb.sched.RunUntil(100 * time.Millisecond)
	if spaceCalls == 0 {
		t.Fatal("queue space callback never invoked")
	}
}

func TestOversizeMSDURejected(t *testing.T) {
	tb := newTestbed(t, 1, false, defaults(phy.Rate11, false), phy.Pos(0, 0), phy.Pos(20, 0))
	if err := tb.stations[0].mac.Send(make([]byte, MaxMSDU+1), addr(2)); err != ErrTooLarge {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestHiddenTerminalRTSHelps(t *testing.T) {
	// Classic hidden pair: shrink the carrier-sense range below the
	// station spacing so A and C cannot hear each other but both reach B.
	run := func(rts bool) (delivered int, timeouts uint64) {
		prof := phy.DefaultProfile()
		prof.Fading.SigmaDB = 0
		prof.CCAThresholdDBm = prof.MeanRxPowerDBm(100) // PCS range 100 m
		thr := RTSNever
		if rts {
			thr = 1
		}
		cfg := func(int) Config { return Config{DataRate: phy.Rate2, RTSThreshold: thr} }
		tb := newTestbedProfile(5, prof, cfg,
			phy.Pos(0, 0), phy.Pos(80, 0), phy.Pos(160, 0))
		a, b, c := tb.stations[0], tb.stations[1], tb.stations[2]

		payload := make([]byte, 512)
		fillA := func() {
			for a.mac.Send(payload, addr(2)) == nil {
			}
		}
		fillC := func() {
			for c.mac.Send(payload, addr(2)) == nil {
			}
		}
		a.mac.OnQueueSpace(fillA)
		c.mac.OnQueueSpace(fillC)
		fillA()
		fillC()
		tb.sched.RunUntil(2 * time.Second)
		return len(b.delivered), a.mac.Counters.ACKTimeouts + c.mac.Counters.ACKTimeouts +
			a.mac.Counters.CTSTimeouts + c.mac.Counters.CTSTimeouts
	}

	basicDelivered, basicTimeouts := run(false)
	rtsDelivered, rtsTimeouts := run(true)
	if basicTimeouts == 0 {
		t.Fatal("hidden terminals without RTS should collide")
	}
	// RTS/CTS converts long data collisions into short RTS collisions:
	// more deliveries, and failures become cheap.
	if rtsDelivered <= basicDelivered {
		t.Fatalf("RTS (%d delivered, %d timeouts) did not beat basic (%d delivered, %d timeouts)",
			rtsDelivered, rtsTimeouts, basicDelivered, basicTimeouts)
	}
}

func TestBeaconing(t *testing.T) {
	cfg := func(int) Config {
		return Config{DataRate: phy.Rate11, BeaconInterval: 100 * time.Millisecond}
	}
	tb := newTestbed(t, 1, false, cfg, phy.Pos(0, 0), phy.Pos(50, 0))
	a, b := tb.stations[0], tb.stations[1]

	var beacons int
	b.mac.OnBeacon(func(src frame.Addr) {
		if src == addr(1) {
			beacons++
		}
	})
	tb.sched.RunUntil(time.Second)

	// ~10 beacons each way in 1 s; B must have heard most of A's
	// (beacons go at 1 Mbit/s, range 120 m ≫ 50 m).
	if beacons < 8 {
		t.Fatalf("received %d beacons from A, want ≥8", beacons)
	}
	if a.mac.Counters.BeaconTx < 8 {
		t.Fatalf("A sent %d beacons, want ≥8", a.mac.Counters.BeaconTx)
	}
}

func TestControlFramesAtBasicRate(t *testing.T) {
	// The paper's central observation: data at 11 Mbit/s, control at
	// 2 Mbit/s, so ACKs reach ~95 m while data reaches ~30 m. Place the
	// sender and receiver 20 m apart and a third station at 60 m from
	// the receiver: it decodes the receiver's ACKs (2 Mbit/s) but hears
	// the sender's 11 Mbit/s data only as PHY errors.
	tb := newTestbed(t, 1, false, defaults(phy.Rate11, false),
		phy.Pos(0, 0), phy.Pos(20, 0), phy.Pos(80, 0))
	a, c := tb.stations[0], tb.stations[2]

	for i := 0; i < 10; i++ {
		if err := a.mac.Send(make([]byte, 512), addr(2)); err != nil {
			t.Fatal(err)
		}
	}
	tb.sched.RunUntil(time.Second)

	// c is 80 m from the sender: 11 Mbit/s data locks (PLCP at 1 Mbit/s
	// reaches 120 m) but cannot decode → PHY errors.
	if c.mac.Counters.PHYErrors == 0 {
		t.Fatal("third station should hear data frames as PHY errors")
	}
	// c is 60 m from the receiver: 2 Mbit/s ACKs decode fine.
	if c.mac.Counters.RxForOthers == 0 {
		t.Fatal("third station should decode the basic-rate ACKs")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, int) {
		tb := newTestbed(t, 42, true, defaults(phy.Rate11, false), phy.Pos(0, 0), phy.Pos(28, 0))
		a, b := tb.stations[0], tb.stations[1]
		payload := make([]byte, 512)
		fill := func() {
			for a.mac.Send(payload, addr(2)) == nil {
			}
		}
		a.mac.OnQueueSpace(fill)
		fill()
		tb.sched.RunUntil(time.Second)
		return a.mac.Counters.DataTx, len(b.delivered)
	}
	tx1, rx1 := run()
	tx2, rx2 := run()
	if tx1 != tx2 || rx1 != rx2 {
		t.Fatalf("runs diverged: (%d,%d) vs (%d,%d)", tx1, rx1, tx2, rx2)
	}
}
