package mac

// Counters aggregates every observable MAC event of one station. The
// experiment harness and the tests read them; none of the protocol logic
// does.
type Counters struct {
	// Upper-layer interface.
	MSDUQueued uint64 // MSDUs accepted from the upper layer
	QueueDrops uint64 // MSDUs rejected because the queue was full

	// Transmit side.
	DataTx      uint64 // data frame transmissions (including retries)
	DataRetx    uint64 // data frame retransmissions only
	RTSTx       uint64
	CTSTx       uint64
	ACKTx       uint64
	BeaconTx    uint64
	TxSuccess   uint64 // MSDUs completed (ACKed, or broadcast sent)
	TxDrops     uint64 // MSDUs dropped at the retry limit
	CTSTimeouts uint64
	ACKTimeouts uint64

	// Receive side.
	RxData      uint64 // unicast data addressed to this station
	RxDup       uint64 // duplicates suppressed (retry with known seq)
	RxRTS       uint64
	RxCTS       uint64
	RxACK       uint64
	RxBeacon    uint64
	RxForOthers uint64 // decoded frames addressed elsewhere

	// Channel state.
	RespSuppressed uint64 // SIFS responses suppressed by the DeferResponses quirk

	PHYErrors     uint64 // locked receptions that failed to decode
	EIFSDeferrals uint64 // deferrals extended from DIFS to EIFS
	NAVUpdates    uint64 // virtual carrier sense updates honoured
}

// Retries returns the total number of retransmission attempts.
func (c *Counters) Retries() uint64 { return c.DataRetx + c.CTSTimeouts }
