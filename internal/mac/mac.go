// Package mac implements the IEEE 802.11 Distributed Coordination
// Function (DCF): CSMA/CA channel access with binary exponential backoff,
// virtual carrier sense (NAV), the optional RTS/CTS exchange, MAC-level
// acknowledgements and retransmissions, and EIFS deferral after PHY
// reception errors.
//
// Timing constants follow Table 1 of Anastasi et al. (ICDCSW'03):
// SlotTime 20 µs, SIFS 10 µs, DIFS 50 µs, CW 32–1024 slots, long PLCP.
// Control frames (RTS/CTS/ACK) are transmitted at basic rates (1 or
// 2 Mbit/s) while data frames use the configured NIC rate — the rate
// split whose consequences the paper investigates.
package mac

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"adhocsim/internal/frame"
	"adhocsim/internal/medium"
	"adhocsim/internal/phy"
	"adhocsim/internal/sim"
	"adhocsim/internal/trace"
)

// RTS threshold sentinels.
const (
	// RTSAlways enables RTS/CTS protection for every unicast data frame.
	RTSAlways = 0
	// RTSNever disables RTS/CTS entirely (the basic access scheme).
	RTSNever = 1 << 30
)

// MaxMSDU is the largest MSDU accepted from the upper layer, per the
// 802.11 MSDU size limit.
const MaxMSDU = 2304

// Config parameterizes one station's MAC.
type Config struct {
	// Address is this station's MAC address. Required.
	Address frame.Addr
	// BSSID identifies the ad hoc network (IBSS). All stations in one
	// experiment share it. Defaults to a fixed IBSS id.
	BSSID frame.Addr
	// DataRate is the NIC rate for unicast data frames. Defaults to 11
	// Mbit/s. Ignored per-frame when RateControl is set.
	DataRate phy.Rate
	// RTSThreshold: unicast MSDUs of at least this many bytes are
	// protected by RTS/CTS. Use RTSAlways or RTSNever for the paper's
	// two access modes. Defaults to RTSNever.
	RTSThreshold int
	// ShortRetryLimit bounds attempts for frames without RTS protection
	// and for the RTS itself (aShortRetryLimit, default 7).
	ShortRetryLimit int
	// LongRetryLimit bounds attempts for RTS-protected data frames
	// (aLongRetryLimit, default 4).
	LongRetryLimit int
	// QueueCap bounds the MSDU transmit queue (default 50).
	QueueCap int
	// BeaconInterval enables IBSS beaconing when positive. Beacons are
	// broadcast at 1 Mbit/s and contend like normal traffic.
	BeaconInterval time.Duration
	// RateControl, when non-nil, selects the data rate per MSDU and
	// observes transmission outcomes (e.g. ARF). When nil the MAC uses
	// the fixed DataRate, as the paper's experiments do.
	//
	// Observation-wise this field is a deprecated alias: the controller
	// is adapted onto the generalized transmit-observer list (see
	// TxObserver and MAC.AddTxObserver), so rate adaptation and other
	// outcome consumers — routing link-failure detection — coexist.
	// Rate *selection* still goes through RateControl.Rate alone.
	RateControl RateController
	// DisableEIFS is an ablation switch: PHY errors defer by plain DIFS
	// instead of EIFS. The four-node asymmetry benches use it to isolate
	// how much of the unfairness the EIFS rule contributes. Default
	// false (standard behaviour).
	DisableEIFS bool
	// DeferResponses reproduces a testbed firmware quirk the paper's
	// §3.3 describes: the NIC carrier-senses before SIFS responses, so
	// an exposed receiver "is not able to send back the MAC ACK" while
	// it senses the other session, and the sender "reacts as in the
	// collision cases". Standard 802.11 sends SIFS responses regardless;
	// default false.
	DeferResponses bool
}

func (c Config) withDefaults() Config {
	if c.BSSID == (frame.Addr{}) {
		c.BSSID = frame.Addr{0x02, 0xad, 0x60, 0xc0, 0x00, 0x01}
	}
	if c.DataRate == 0 {
		c.DataRate = phy.Rate11
	}
	if !c.DataRate.Valid() {
		panic(fmt.Sprintf("mac: invalid data rate %d", c.DataRate))
	}
	if c.RTSThreshold == 0 {
		// The zero value means "unset"; explicit RTSAlways is also 0, so
		// experiments wanting RTS-on-everything set RTSThreshold: 1.
		// Keeping zero-value == paper's default (basic access).
		c.RTSThreshold = RTSNever
	}
	// Zero means "unset" (standard defaults); negative disables retries
	// entirely, which the range-probing sweeps use.
	if c.ShortRetryLimit == 0 {
		c.ShortRetryLimit = 7
	} else if c.ShortRetryLimit < 0 {
		c.ShortRetryLimit = 0
	}
	if c.LongRetryLimit == 0 {
		c.LongRetryLimit = 4
	} else if c.LongRetryLimit < 0 {
		c.LongRetryLimit = 0
	}
	if c.QueueCap == 0 {
		c.QueueCap = 50
	}
	return c
}

// ErrQueueFull is returned by Send when the transmit queue is at
// capacity; the upper layer should retry after the QueueSpace callback.
var ErrQueueFull = errors.New("mac: transmit queue full")

// ErrTooLarge is returned by Send for MSDUs above MaxMSDU.
var ErrTooLarge = errors.New("mac: MSDU exceeds 2304 bytes")

// state is the DCF transmit-path state.
type state uint8

const (
	stIdle     state = iota // no transmit operation in progress
	stContend               // waiting for IFS/backoff before transmitting
	stTxRTS                 // RTS on the air
	stWaitCTS               // awaiting CTS
	stTxData                // data frame on the air
	stWaitACK               // awaiting ACK
	stSIFSData              // CTS received; data frame due one SIFS later
)

func (s state) String() string {
	switch s {
	case stIdle:
		return "idle"
	case stContend:
		return "contend"
	case stTxRTS:
		return "tx-rts"
	case stWaitCTS:
		return "wait-cts"
	case stTxData:
		return "tx-data"
	case stWaitACK:
		return "wait-ack"
	case stSIFSData:
		return "sifs-data"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// msdu is one queued upper-layer packet plus its transmission state.
type msdu struct {
	payload    []byte
	to         frame.Addr
	seq        uint16
	rate       phy.Rate // data rate chosen for this MSDU
	shortRetry int
	longRetry  int
	ctsOK      bool // RTS/CTS handshake completed
	isBeacon   bool
	// pinned marks control-plane MSDUs whose rate was fixed at queue
	// time (SendControl): rate controllers neither choose their rate nor
	// observe their outcomes, exactly like beacons.
	pinned bool
	// needsBackoff is false only for frames eligible for the standard's
	// immediate-access rule (arrived to an idle pipeline on an idle
	// channel); every retry and every queued frame backs off.
	needsBackoff bool
}

// MAC is one station's DCF instance. Create with New, attach to a medium
// with Attach, then exchange MSDUs via Send and the Deliver callback.
type MAC struct {
	cfg    Config
	sched  *sim.Scheduler
	radio  *medium.Radio
	rng    *rand.Rand
	rngKey sim.StreamKey // pre-hashed stream name, for allocation-free Reset

	// Upper-layer hooks.
	deliver    func(payload []byte, src frame.Addr)
	queueSpace func()
	beaconSeen func(src frame.Addr)

	// txObservers receive transmit outcomes (rate controllers, routing
	// link-failure detectors). Construction-time wiring; survives Reset.
	txObservers []TxObserver

	queue   []*msdu
	current *msdu
	st      state

	cw      int // current contention window (slots)
	backoff int // remaining backoff slots; -1 = not drawn

	nav         time.Duration // virtual carrier sense expiry (absolute)
	available   bool          // channel available (CCA idle && NAV expired)
	availSince  time.Duration
	lastRxError bool // most recent reception ended in a PHY error (EIFS owed)
	down        bool // station crashed (PowerDown); all PHY callbacks gated

	resumeEv  sim.Event // fires when IFS after idle has elapsed
	slotEv    sim.Event // next backoff slot tick
	navEv     sim.Event // NAV expiry
	timeoutEv sim.Event // CTS/ACK timeout
	sifsEv    sim.Event // pending SIFS response
	beaconEv  sim.Event // next beacon

	pendingResp  *frame.Frame
	respRate     phy.Rate
	respInFlight bool

	seq    uint16
	rxSeq  map[frame.Addr]uint16 // last delivered sequence per source
	rxSeqV map[frame.Addr]bool

	// lastRxRSSI is the received power of the most recent error-free
	// reception; see LastRxRSSIDBm.
	lastRxRSSI float64

	// tr, when enabled, logs retry/backoff decisions (SetTracer). Purely
	// observational: trace calls read MAC state, never change it.
	tr *trace.Tracer

	Counters Counters
}

// SetTracer installs an execution tracer on the retry/backoff paths. A
// nil or disabled tracer costs one branch per failed attempt. Derive
// the handle with Tracer.WithClock on this station's scheduler so the
// timestamps follow its region clock in parallel mode.
func (m *MAC) SetTracer(t *trace.Tracer) { m.tr = t }

// Verify the MAC satisfies the medium's PHY indication interface.
var _ medium.Handler = (*MAC)(nil)

// New creates a MAC. Call Attach before use.
func New(sched *sim.Scheduler, src *sim.Source, cfg Config) *MAC {
	cfg = cfg.withDefaults()
	key := sim.KeyFor("mac.backoff." + cfg.Address.String())
	m := &MAC{
		cfg:     cfg,
		sched:   sched,
		rng:     src.StreamFor(key),
		rngKey:  key,
		cw:      phy.CWMin,
		backoff: -1,
		rxSeq:   make(map[frame.Addr]uint16),
		rxSeqV:  make(map[frame.Addr]bool),
	}
	if cfg.RateControl != nil {
		m.txObservers = append(m.txObservers, rateControlObserver{cfg.RateControl})
	}
	return m
}

// Attach binds the MAC to its radio. The radio must have been created
// with this MAC as its handler. Channel state is initialized from the
// radio and beaconing starts (if configured).
func (m *MAC) Attach(r *medium.Radio) {
	if m.radio != nil {
		panic("mac: Attach called twice")
	}
	m.radio = r
	m.available = !r.CCABusy()
	m.availSince = m.sched.Now()
	if m.cfg.BeaconInterval > 0 {
		m.scheduleBeacon()
	}
}

// Reset returns an attached MAC to its just-attached state for a new
// run: queue, DCF state machine, counters and sequence tracking clear,
// the backoff rng is re-derived from src (which the caller has just
// Reseed-ed), and beaconing re-arms if configured. The owning scheduler
// must have been Reset first — the MAC's event handles are stale by
// then, so they are simply dropped — and the radio must already be
// Reset so carrier sense reads idle. The configuration (including any
// RateControl) is retained; note an external rate controller carries
// its own state, which Reset cannot reach — callers that need
// bit-identical replications with rate control must rebuild instead
// (scenario.Replicate already falls back for MACHook specs).
func (m *MAC) Reset(src *sim.Source) {
	if m.radio == nil {
		panic("mac: Reset before Attach")
	}
	src.ReseedStream(m.rng, m.rngKey)
	clear(m.queue)
	m.queue = m.queue[:0]
	m.current = nil
	m.st = stIdle
	m.cw = phy.CWMin
	m.backoff = -1
	m.nav = 0
	m.lastRxError = false
	m.down = false
	m.resumeEv = sim.Event{}
	m.slotEv = sim.Event{}
	m.navEv = sim.Event{}
	m.timeoutEv = sim.Event{}
	m.sifsEv = sim.Event{}
	m.beaconEv = sim.Event{}
	m.pendingResp = nil
	m.respRate = 0
	m.respInFlight = false
	m.seq = 0
	clear(m.rxSeq)
	clear(m.rxSeqV)
	m.lastRxRSSI = 0
	m.Counters = Counters{}
	// Mirror Attach's channel-state initialization and beacon arming, in
	// the same order, so a Reset network schedules the same t=0 events
	// as a freshly built one.
	m.available = !m.radio.CCABusy()
	m.availSince = m.sched.Now()
	if m.cfg.BeaconInterval > 0 {
		m.scheduleBeacon()
	}
}

// Address returns the station's MAC address.
func (m *MAC) Address() frame.Addr { return m.cfg.Address }

// DataRate returns the rate the next data MSDU would use.
func (m *MAC) DataRate() phy.Rate {
	if m.cfg.RateControl != nil {
		return m.cfg.RateControl.Rate()
	}
	return m.cfg.DataRate
}

// QueueLen returns the number of queued MSDUs (excluding any in flight).
func (m *MAC) QueueLen() int { return len(m.queue) }

// QueueCap returns the transmit queue capacity.
func (m *MAC) QueueCap() int { return m.cfg.QueueCap }

// OnDeliver registers the upper-layer receive callback.
func (m *MAC) OnDeliver(fn func(payload []byte, src frame.Addr)) { m.deliver = fn }

// LastRxRSSIDBm returns the received power of the most recent
// error-free reception. Delivery is a synchronous call chain (PHY →
// MAC → network → transport), so a handler reading this during its own
// callback sees exactly the frame it is handling — the hook routing
// protocols use to reject neighbors whose advertisements arrive too
// weak to carry data ("gray zone" filtering). Zero before any
// reception.
func (m *MAC) LastRxRSSIDBm() float64 { return m.lastRxRSSI }

// OnQueueSpace registers a callback invoked whenever queue space becomes
// available, for saturating sources that keep the MAC busy.
func (m *MAC) OnQueueSpace(fn func()) { m.queueSpace = fn }

// OnBeacon registers a callback invoked when a beacon is received.
func (m *MAC) OnBeacon(fn func(src frame.Addr)) { m.beaconSeen = fn }

// Send queues one MSDU for transmission to the given address (which may
// be frame.Broadcast). It returns ErrQueueFull when the queue is at
// capacity and ErrTooLarge for oversized MSDUs.
func (m *MAC) Send(payload []byte, to frame.Addr) error {
	return m.enqueue(&msdu{payload: payload, to: to, rate: m.DataRate()})
}

// SendControl queues a control-plane MSDU pinned to the given PHY rate:
// the frame is exempt from rate control (neither re-rated per attempt
// nor reported to rate observers), like a beacon. Routing protocols use
// it so their advertisements ride a basic rate every station decodes —
// the same rule the standard applies to RTS/CTS/ACK.
func (m *MAC) SendControl(payload []byte, to frame.Addr, rate phy.Rate) error {
	if !rate.Valid() {
		panic(fmt.Sprintf("mac: invalid control rate %d", rate))
	}
	return m.enqueue(&msdu{payload: payload, to: to, rate: rate, pinned: true})
}

// enqueue admits one MSDU (rate and flags already chosen) to the
// transmit queue.
func (m *MAC) enqueue(pkt *msdu) error {
	if m.down {
		return ErrDown
	}
	if len(pkt.payload) > MaxMSDU {
		return ErrTooLarge
	}
	if len(m.queue) >= m.cfg.QueueCap {
		m.Counters.QueueDrops++
		return ErrQueueFull
	}
	pkt.seq = m.nextSeq()
	m.queue = append(m.queue, pkt)
	m.Counters.MSDUQueued++
	m.kick()
	return nil
}

func (m *MAC) nextSeq() uint16 {
	m.seq = (m.seq + 1) & 0x0fff
	return m.seq
}

// scheduleBeacon arms the next beacon. Beacons are queued at the head of
// the transmit queue and broadcast at 1 Mbit/s. Per the IBSS beacon
// generation rules, each station adds a random delay after the target
// beacon time so that stations sharing a TBTT do not collide forever.
func (m *MAC) scheduleBeacon() {
	jitter := time.Duration(m.rng.Intn(2*phy.CWMin)) * phy.SlotTime
	m.beaconEv = m.sched.After(m.cfg.BeaconInterval+jitter, func() {
		b := &msdu{
			payload:  make([]byte, 40), // timestamp+interval+capability+IBSS params
			to:       frame.Broadcast,
			seq:      m.nextSeq(),
			rate:     phy.Rate1,
			isBeacon: true,
		}
		if len(m.queue) < m.cfg.QueueCap {
			m.queue = append([]*msdu{b}, m.queue...)
			m.kick()
		}
		m.scheduleBeacon()
	})
}
