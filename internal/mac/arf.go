package mac

import "adhocsim/internal/phy"

// RateController selects the data rate for outgoing MSDUs and observes
// transmission outcomes. The paper's experiments pin the NIC rate (its
// §2 notes that "802.11b cards may implement a dynamic rate switching
// with the objective of improving performance"); ARF below implements
// that dynamic switching as an extension, with an ablation bench
// comparing it against fixed rates.
type RateController interface {
	// Rate returns the rate to use for the next MSDU.
	Rate() phy.Rate
	// OnSuccess records a completed MSDU at the current rate.
	OnSuccess()
	// OnFailure records a failed transmission attempt at the current rate.
	OnFailure()
}

// ARF implements Automatic Rate Fallback (Kamerman & Monteban's scheme,
// the one shipped in WaveLAN-II and most early 802.11b firmware):
//
//   - after UpAfter consecutive successes, probe the next higher rate;
//   - after DownAfter consecutive failures, fall back one rate;
//   - a failure on the first frame after an upgrade (the probe) drops
//     straight back down.
type ARF struct {
	// UpAfter is the consecutive-success threshold to move up (default 10).
	UpAfter int
	// DownAfter is the consecutive-failure threshold to move down (default 2).
	DownAfter int

	idx       int // index into phy.Rates
	successes int
	failures  int
	probing   bool // first frame after an upgrade

	// Upgrades and Downgrades count rate transitions, for tests and
	// ablation reporting.
	Upgrades   uint64
	Downgrades uint64
}

var _ RateController = (*ARF)(nil)

// NewARF returns an ARF controller starting at the given rate.
func NewARF(start phy.Rate) *ARF {
	return &ARF{UpAfter: 10, DownAfter: 2, idx: start.Index()}
}

// Rate implements RateController.
func (a *ARF) Rate() phy.Rate { return phy.Rates[a.idx] }

// OnSuccess implements RateController.
func (a *ARF) OnSuccess() {
	a.probing = false
	a.failures = 0
	a.successes++
	if a.successes >= a.UpAfter && a.idx < len(phy.Rates)-1 {
		a.idx++
		a.successes = 0
		a.probing = true
		a.Upgrades++
	}
}

// OnFailure implements RateController.
func (a *ARF) OnFailure() {
	a.successes = 0
	if a.probing {
		// The probe at the higher rate failed: fall back immediately.
		a.probing = false
		a.down()
		return
	}
	a.failures++
	if a.failures >= a.DownAfter {
		a.failures = 0
		a.down()
	}
}

func (a *ARF) down() {
	if a.idx > 0 {
		a.idx--
		a.Downgrades++
	}
}
