package mac

import (
	"time"

	"adhocsim/internal/frame"
	"adhocsim/internal/phy"
	"adhocsim/internal/trace"
)

// This file contains the DCF engine: channel-access bookkeeping (physical
// CCA + NAV + interframe spaces), the backoff procedure, the transmit
// paths (basic access and RTS/CTS), SIFS-spaced responses, timeouts, and
// the receive dispatch.
//
// Event/timer discipline:
//
//   - resumeEv fires when the channel has stayed available for a full
//     IFS (DIFS, or EIFS after a PHY error); it starts/resumes backoff.
//   - slotEv ticks one backoff slot; both are cancelled the instant the
//     channel becomes unavailable (CCA busy or NAV set).
//   - sifsEv carries SIFS-spaced actions (CTS/ACK responses, the data
//     frame of an RTS/CTS exchange) and is never cancelled by busy
//     channel: the standard sends these regardless of carrier state.
//   - timeoutEv guards stWaitCTS/stWaitACK.

// channel availability ------------------------------------------------

// CCAChanged implements medium.Handler.
func (m *MAC) CCAChanged(busy bool) {
	if m.down {
		return // crashed: PowerUp re-reads carrier sense directly
	}
	if busy {
		m.channelBusy()
	} else {
		m.maybeAvailable()
	}
}

// channelBusy suspends contention the instant the channel stops being
// available.
func (m *MAC) channelBusy() {
	m.available = false
	m.sched.Cancel(m.resumeEv)
	m.sched.Cancel(m.slotEv)
	// A frame that was eligible for immediate access loses that
	// eligibility the moment the medium turns busy before it got out.
	if m.current != nil {
		m.current.needsBackoff = true
	}
}

// maybeAvailable re-evaluates availability after CCA went idle or the
// NAV expired. Availability requires both physical and virtual carrier
// sense to be clear.
func (m *MAC) maybeAvailable() {
	if m.radio.CCABusy() {
		return
	}
	now := m.sched.Now()
	if m.nav > now {
		// Virtually busy: wait out the NAV.
		m.navEv = m.sched.Reschedule(m.navEv, m.nav, m.maybeAvailable)
		return
	}
	m.available = true
	m.availSince = now
	m.armResume(now + m.ifs())
}

// ifs returns the interframe space the station currently owes before
// resuming contention: EIFS while the most recent reception ended in a
// PHY error, DIFS otherwise. Per the standard, EIFS persists across
// busy periods until an error-free frame is received.
func (m *MAC) ifs() time.Duration {
	if m.lastRxError && !m.cfg.DisableEIFS {
		return phy.EIFS()
	}
	return phy.DIFS
}

// setNAV raises the virtual carrier sense until the absolute time t.
func (m *MAC) setNAV(t time.Duration) {
	now := m.sched.Now()
	if t <= m.nav || t <= now {
		return
	}
	m.nav = t
	m.Counters.NAVUpdates++
	if m.available {
		m.channelBusy()
	}
	m.navEv = m.sched.Reschedule(m.navEv, m.nav, m.maybeAvailable)
}

func (m *MAC) armResume(t time.Duration) {
	m.resumeEv = m.sched.Reschedule(m.resumeEv, t, m.resume)
}

// scheduleResumeIfAvailable re-arms contention after a wait state ends
// (success, timeout, drop): if the channel is already available the IFS
// may be partially or fully elapsed.
func (m *MAC) scheduleResumeIfAvailable() {
	if !m.available {
		return // the next idle edge will arm the resume
	}
	now := m.sched.Now()
	if t := m.availSince + m.ifs(); t > now {
		m.armResume(t)
		return
	}
	m.resume()
}

// backoff procedure ----------------------------------------------------

// resume runs when the channel has been available for a full IFS. It
// draws a backoff if one is needed and starts the slot countdown; frames
// that arrived on an idle channel transmit without backoff (the
// standard's immediate-access rule).
func (m *MAC) resume() {
	if !m.available || m.radio.Transmitting() {
		return
	}
	if m.slotEv.Pending() {
		return // countdown already running; don't double-tick
	}
	if m.st != stContend && !(m.st == stIdle && m.backoff >= 0) {
		return // transmitting or waiting for a response: no contention
	}
	if m.backoff < 0 {
		if m.current == nil {
			return
		}
		if !m.current.needsBackoff {
			m.txAttempt()
			return
		}
		m.backoff = m.rng.Intn(m.cw)
	}
	m.tickSlot()
}

// tickSlot consumes backoff slots while the channel stays available.
func (m *MAC) tickSlot() {
	if m.backoff == 0 {
		m.backoff = -1
		if m.current != nil {
			m.txAttempt()
		}
		return
	}
	m.slotEv = m.sched.After(phy.SlotTime, func() {
		m.backoff--
		m.tickSlot()
	})
}

// transmit paths -------------------------------------------------------

// usesRTS reports whether pkt is sent under RTS/CTS protection.
func (m *MAC) usesRTS(pkt *msdu) bool {
	return !pkt.to.IsGroup() && len(pkt.payload) >= m.cfg.RTSThreshold
}

// controlRate returns the basic rate used for the control frames that
// accompany a data frame at the given rate.
func (m *MAC) controlRate(dataRate phy.Rate) phy.Rate { return phy.ControlRate(dataRate) }

// txAttempt transmits the current MSDU's next frame: the RTS if the
// handshake is still owed, otherwise the data frame itself.
func (m *MAC) txAttempt() {
	pkt := m.current
	if pkt == nil {
		return
	}
	// The data rate is (re-)selected per attempt so that a rate
	// controller can adapt retransmissions, as real ARF firmware does.
	// Beacons and pinned control frames keep their fixed basic rate.
	if !pkt.isBeacon && !pkt.pinned {
		pkt.rate = m.DataRate()
	}
	if m.usesRTS(pkt) && !pkt.ctsOK {
		m.txRTS(pkt)
		return
	}
	m.txData(pkt)
}

func (m *MAC) txRTS(pkt *msdu) {
	ctrl := m.controlRate(pkt.rate)
	dataAir := phy.DataTime(pkt.rate, len(pkt.payload))
	// Duration covers the rest of the exchange: CTS + DATA + ACK + 3 SIFS.
	dur := 3*phy.SIFS + phy.CTSTime(ctrl) + dataAir + phy.ACKTime(ctrl)
	rts := &frame.Frame{
		Type:     frame.TypeRTS,
		Addr1:    pkt.to,
		Addr2:    m.cfg.Address,
		Duration: dur,
	}
	m.st = stTxRTS
	m.Counters.RTSTx++
	m.radio.Transmit(rts, ctrl)
}

func (m *MAC) txData(pkt *msdu) {
	f := &frame.Frame{
		Type:    frame.TypeData,
		Addr1:   pkt.to,
		Addr2:   m.cfg.Address,
		Addr3:   m.cfg.BSSID,
		Seq:     pkt.seq,
		Retry:   pkt.shortRetry+pkt.longRetry > 0,
		Payload: pkt.payload,
	}
	if pkt.isBeacon {
		f.Type = frame.TypeBeacon
		m.Counters.BeaconTx++
	}
	if f.NeedsACK() {
		f.Duration = phy.SIFS + phy.ACKTime(m.controlRate(pkt.rate))
	}
	m.st = stTxData
	m.Counters.DataTx++
	if f.Retry {
		m.Counters.DataRetx++
	}
	m.radio.Transmit(f, pkt.rate)
}

// TxDone implements medium.Handler: our frame left the air.
func (m *MAC) TxDone() {
	if m.down {
		return // a frame in the air when the station crashed: discard its outcome
	}
	if m.respInFlight {
		m.respInFlight = false
		return
	}
	switch m.st {
	case stTxRTS:
		m.st = stWaitCTS
		ctrl := m.controlRate(m.current.rate)
		timeout := phy.SIFS + phy.CTSTime(ctrl) + phy.SlotTime + 2*phy.PropDelay
		m.timeoutEv = m.sched.Reschedule(m.timeoutEv, m.sched.Now()+timeout, m.ctsTimeout)
	case stTxData:
		pkt := m.current
		if pkt != nil && !pkt.to.IsGroup() {
			m.st = stWaitACK
			ctrl := m.controlRate(pkt.rate)
			timeout := phy.SIFS + phy.ACKTime(ctrl) + phy.SlotTime + 2*phy.PropDelay
			m.timeoutEv = m.sched.Reschedule(m.timeoutEv, m.sched.Now()+timeout, m.ackTimeout)
			return
		}
		// Broadcast and beacon frames complete without acknowledgement.
		m.txSuccess()
	}
}

// outcome paths ---------------------------------------------------------

func (m *MAC) txSuccess() {
	m.notifyTx(m.current, true, true)
	m.Counters.TxSuccess++
	m.sched.Cancel(m.timeoutEv)
	m.cw = phy.CWMin
	m.current = nil
	m.st = stIdle
	// Post-transmission backoff (mandatory per the standard); it also
	// spaces back-to-back frames of a saturated queue, which is the
	// CWmin/2 term of the paper's Equation (1).
	m.backoff = m.rng.Intn(m.cw)
	m.popNext()
	m.scheduleResumeIfAvailable()
}

func (m *MAC) ctsTimeout() {
	m.Counters.CTSTimeouts++
	m.txFail(true)
}

func (m *MAC) ackTimeout() {
	m.Counters.ACKTimeouts++
	// Failures of unprotected data count against the short retry limit;
	// RTS-protected data counts against the long limit.
	m.txFail(!m.usesRTS(m.current))
}

// txFail handles a failed attempt: double the contention window, bump
// the appropriate retry counter, drop the MSDU past its limit, and
// contend again.
func (m *MAC) txFail(short bool) {
	pkt := m.current
	if pkt == nil {
		return
	}
	m.sched.Cancel(m.timeoutEv)
	if short {
		pkt.shortRetry++
	} else {
		pkt.longRetry++
	}
	pkt.ctsOK = false // a retry re-arms RTS protection
	pkt.needsBackoff = true

	exceeded := pkt.shortRetry > m.cfg.ShortRetryLimit || pkt.longRetry > m.cfg.LongRetryLimit
	m.notifyTx(pkt, false, exceeded)
	if exceeded {
		m.Counters.TxDrops++
		m.current = nil
		m.st = stIdle
		m.cw = phy.CWMin
	} else {
		m.st = stContend
		m.cw = min(2*m.cw, phy.CWMax)
	}
	m.backoff = m.rng.Intn(m.cw)
	if m.tr.Enabled(trace.LevelDebug) {
		verdict := "retry"
		if exceeded {
			verdict = "drop"
		}
		m.tr.Debugf("mac %v: tx fail to %v (short=%v retries %d/%d) %s, cw=%d backoff=%d",
			m.cfg.Address, pkt.to, short, pkt.shortRetry, pkt.longRetry, verdict, m.cw, m.backoff)
	}
	if m.current == nil {
		m.popNext()
	}
	m.scheduleResumeIfAvailable()
}

// popNext moves the head of the queue into the transmit pipeline and
// notifies the upper layer that queue space opened up.
func (m *MAC) popNext() {
	if m.current != nil || len(m.queue) == 0 {
		return
	}
	m.current = m.queue[0]
	copy(m.queue, m.queue[1:])
	m.queue[len(m.queue)-1] = nil
	m.queue = m.queue[:len(m.queue)-1]
	m.current.needsBackoff = true
	m.st = stContend
	if m.queueSpace != nil {
		m.queueSpace()
	}
}

// kick starts service for newly queued traffic when the pipeline is
// idle. A frame that arrives to an idle pipeline on a channel that is
// already available transmits after the residual DIFS without backoff
// (immediate access); otherwise it contends normally.
func (m *MAC) kick() {
	if m.st != stIdle || m.current != nil || len(m.queue) == 0 {
		return
	}
	immediate := m.backoff < 0 && m.available
	m.popNext()
	if !immediate {
		m.scheduleResumeIfAvailable()
		return
	}
	m.current.needsBackoff = false
	now := m.sched.Now()
	if t := m.availSince + m.ifs(); t > now {
		m.armResume(t)
		return
	}
	m.txAttempt()
}

// SIFS responses --------------------------------------------------------

// scheduleResponse queues a control response (ACK or CTS) or the data
// frame of an RTS exchange to be transmitted one SIFS from now,
// regardless of carrier state, as the standard requires.
func (m *MAC) scheduleResponse(f *frame.Frame, rate phy.Rate) {
	m.pendingResp, m.respRate = f, rate
	m.sifsEv = m.sched.Reschedule(m.sifsEv, m.sched.Now()+phy.SIFS, func() {
		resp := m.pendingResp
		m.pendingResp = nil
		if resp == nil || m.radio.Transmitting() {
			return
		}
		if m.cfg.DeferResponses && (m.radio.CCABusy() || m.nav > m.sched.Now()) {
			m.Counters.RespSuppressed++
			return
		}
		m.respInFlight = true
		switch resp.Type {
		case frame.TypeACK:
			m.Counters.ACKTx++
		case frame.TypeCTS:
			m.Counters.CTSTx++
		}
		m.radio.Transmit(resp, rate)
	})
}

// receive dispatch -------------------------------------------------------

// RxEnd implements medium.Handler: a locked reception finished.
func (m *MAC) RxEnd(f *frame.Frame, rate phy.Rate, rssiDBm float64, ok bool) {
	if m.down {
		return // crashed radios never lock, but gate defensively
	}
	if !ok {
		m.phyError()
		return
	}
	// An error-free reception terminates any standing EIFS obligation.
	m.lastRxError = false
	m.lastRxRSSI = rssiDBm
	now := m.sched.Now()
	if f.Addr1 != m.cfg.Address {
		// Third party traffic: honour its channel reservation.
		if f.Duration > 0 {
			m.setNAV(now + f.Duration)
		}
		switch f.Type {
		case frame.TypeBeacon:
			m.Counters.RxBeacon++
			if m.beaconSeen != nil {
				m.beaconSeen(f.Addr2)
			}
			if f.Addr1.IsBroadcast() {
				return
			}
		case frame.TypeData:
			if f.Addr1.IsBroadcast() {
				m.deliverUp(f)
				return
			}
		}
		m.Counters.RxForOthers++
		return
	}

	switch f.Type {
	case frame.TypeData:
		m.Counters.RxData++
		ack := &frame.Frame{Type: frame.TypeACK, Addr1: f.Addr2}
		m.scheduleResponse(ack, m.controlRate(rate))
		m.deliverUp(f)
	case frame.TypeRTS:
		m.Counters.RxRTS++
		// Respond only if our NAV is idle (standard rule): otherwise the
		// requesting station's exchange would collide with a reservation
		// we have already honoured.
		if m.nav <= now {
			cts := &frame.Frame{
				Type:     frame.TypeCTS,
				Addr1:    f.Addr2,
				Duration: f.Duration - phy.CTSTime(rate) - phy.SIFS,
			}
			m.scheduleResponse(cts, rate)
		}
	case frame.TypeCTS:
		m.Counters.RxCTS++
		if m.st == stWaitCTS {
			m.sched.Cancel(m.timeoutEv)
			m.current.ctsOK = true
			m.st = stSIFSData
			m.sifsEv = m.sched.Reschedule(m.sifsEv, now+phy.SIFS, func() {
				if m.radio.Transmitting() {
					return
				}
				m.txAttempt()
			})
		}
	case frame.TypeACK:
		m.Counters.RxACK++
		if m.st == stWaitACK {
			m.txSuccess()
		}
	}
}

// phyError handles a locked-but-undecodable reception: the MAC must
// defer by EIFS instead of DIFS before resuming contention. EIFS is the
// mechanism that penalizes stations which can hear a session's data
// frames but not decode its (basic-rate) control frames — central to the
// paper's four-node asymmetries.
func (m *MAC) phyError() {
	m.Counters.PHYErrors++
	if m.cfg.DisableEIFS {
		return // ablation: treat the error as plain energy (DIFS rules)
	}
	m.Counters.EIFSDeferrals++
	m.lastRxError = true
	if !m.available {
		return
	}
	// Restart the deferral from the error: the station owes a full EIFS
	// of continuous availability before contending again.
	m.availSince = m.sched.Now()
	m.armResume(m.availSince + m.ifs())
}

// deliverUp hands a received MSDU to the upper layer, suppressing
// duplicates created by lost ACKs (same source and sequence with the
// retry flag set).
func (m *MAC) deliverUp(f *frame.Frame) {
	src := f.Addr2
	if f.Retry && m.rxSeqV[src] && m.rxSeq[src] == f.Seq {
		m.Counters.RxDup++
		return
	}
	m.rxSeq[src] = f.Seq
	m.rxSeqV[src] = true
	if m.deliver != nil {
		m.deliver(f.Payload, src)
	}
}
