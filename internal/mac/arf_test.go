package mac

import (
	"testing"

	"adhocsim/internal/phy"
)

func TestARFUpgradesAfterSuccesses(t *testing.T) {
	a := NewARF(phy.Rate1)
	for i := 0; i < 9; i++ {
		a.OnSuccess()
	}
	if a.Rate() != phy.Rate1 {
		t.Fatalf("rate = %v after 9 successes, want 1Mbps", a.Rate())
	}
	a.OnSuccess()
	if a.Rate() != phy.Rate2 {
		t.Fatalf("rate = %v after 10 successes, want 2Mbps", a.Rate())
	}
	if a.Upgrades != 1 {
		t.Fatalf("Upgrades = %d, want 1", a.Upgrades)
	}
}

func TestARFDowngradesAfterFailures(t *testing.T) {
	a := NewARF(phy.Rate11)
	a.OnFailure()
	if a.Rate() != phy.Rate11 {
		t.Fatal("one failure must not downgrade")
	}
	a.OnFailure()
	if a.Rate() != phy.Rate5_5 {
		t.Fatalf("rate = %v after 2 failures, want 5.5Mbps", a.Rate())
	}
	if a.Downgrades != 1 {
		t.Fatalf("Downgrades = %d, want 1", a.Downgrades)
	}
}

func TestARFProbeFailureFallsBackImmediately(t *testing.T) {
	a := NewARF(phy.Rate1)
	for i := 0; i < 10; i++ {
		a.OnSuccess()
	}
	if a.Rate() != phy.Rate2 {
		t.Fatalf("rate = %v, want 2Mbps", a.Rate())
	}
	// First frame after the upgrade fails: immediate fallback.
	a.OnFailure()
	if a.Rate() != phy.Rate1 {
		t.Fatalf("rate = %v after failed probe, want 1Mbps", a.Rate())
	}
}

func TestARFProbeSuccessSticks(t *testing.T) {
	a := NewARF(phy.Rate1)
	for i := 0; i < 10; i++ {
		a.OnSuccess()
	}
	a.OnSuccess() // probe succeeds
	a.OnFailure() // one later failure: no fallback (DownAfter=2)
	if a.Rate() != phy.Rate2 {
		t.Fatalf("rate = %v, want 2Mbps to stick", a.Rate())
	}
}

func TestARFBounds(t *testing.T) {
	a := NewARF(phy.Rate1)
	for i := 0; i < 10; i++ {
		a.OnFailure()
	}
	if a.Rate() != phy.Rate1 {
		t.Fatal("rate fell below 1Mbps")
	}
	b := NewARF(phy.Rate11)
	for i := 0; i < 100; i++ {
		b.OnSuccess()
	}
	if b.Rate() != phy.Rate11 {
		t.Fatal("rate rose above 11Mbps")
	}
	if b.Upgrades != 0 {
		t.Fatal("upgrades counted at the top rate")
	}
}

func TestARFSuccessResetsFailureStreak(t *testing.T) {
	a := NewARF(phy.Rate11)
	a.OnFailure()
	a.OnSuccess()
	a.OnFailure()
	if a.Rate() != phy.Rate11 {
		t.Fatal("non-consecutive failures must not downgrade")
	}
}

func TestARFConvergesOnMediumLink(t *testing.T) {
	// End-to-end: a link at 60 m supports 5.5 Mbit/s (range 70 m) but
	// not 11 Mbit/s (range 30 m). ARF must settle around 5.5.
	arf := NewARF(phy.Rate11)
	cfg := func(i int) Config {
		c := Config{DataRate: phy.Rate11}
		if i == 0 {
			c.RateControl = arf
		}
		return c
	}
	tb := newTestbed(t, 9, false, cfg, phy.Pos(0, 0), phy.Pos(60, 0))
	a, b := tb.stations[0], tb.stations[1]
	payload := make([]byte, 512)
	fill := func() {
		for a.mac.Send(payload, addr(2)) == nil {
		}
	}
	a.mac.OnQueueSpace(fill)
	fill()
	tb.sched.RunUntil(500 * 1e6) // 500 ms

	if got := arf.Rate(); got != phy.Rate5_5 {
		t.Fatalf("ARF settled at %v, want 5.5Mbps", got)
	}
	if len(b.delivered) == 0 {
		t.Fatal("nothing delivered")
	}
	if arf.Downgrades == 0 {
		t.Fatal("expected at least one downgrade from 11 Mbit/s")
	}
}
