package scenario

import (
	"bytes"
	"testing"
	"time"
)

// The fault-engine equivalence suite: injected faults are ordinary
// scheduler events compiled from the Spec, so every determinism
// guarantee the kernel gives a fault-free run must survive unchanged
// with faults active — arena reuse, worker count, region partitioning,
// and the scheduler backend may change speed, never a byte of output.

// faultedSpecs returns the fault presets with horizons cut so each
// fault class is genuinely active inside the test budget: churn and a
// degradation episode on the mesh, a regional partition on the chain.
func faultedSpecs(t *testing.T) []Spec {
	t.Helper()
	mesh, err := Preset("churn-mesh-5x5")
	if err != nil {
		t.Fatal(err)
	}
	mesh.Duration = Duration(2500 * time.Millisecond) // degradation window opens at 2s
	chain, err := Preset("partition-heal-chain-8")
	if err != nil {
		t.Fatal(err)
	}
	chain.Duration = Duration(4 * time.Second) // partition opens at 3s
	return []Spec{mesh, chain}
}

// TestReplicateReuseWithFaults extends the arena-reuse equivalence to
// faulted runs: Reset must recompile the fault schedule against the new
// replication's seed and reinstall the degradation timeline, so a
// re-seeded arena sweeps byte-identically to rebuilding every network —
// and the worker count stays irrelevant.
func TestReplicateReuseWithFaults(t *testing.T) {
	const reps = 3
	for _, spec := range faultedSpecs(t) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			// workers=1 forces one worker through several replications
			// back to back, so the faulted Reset path actually runs.
			reuse, err := Replicate(spec, reps, 1, nil)
			if err != nil {
				t.Fatal(err)
			}
			SetRebuildEachRep(true)
			rebuild, err := Replicate(spec, reps, 1, nil)
			SetRebuildEachRep(false)
			if err != nil {
				t.Fatal(err)
			}
			a, b := marshalSummary(t, reuse), marshalSummary(t, rebuild)
			if !bytes.Equal(a, b) {
				t.Fatalf("faulted arena reuse diverged from rebuild-per-rep:\nreuse:   %s\nrebuild: %s", a, b)
			}
			parallel, err := Replicate(spec, reps, 3, nil)
			if err != nil {
				t.Fatal(err)
			}
			if c := marshalSummary(t, parallel); !bytes.Equal(a, c) {
				t.Fatalf("faulted summary depends on worker count:\n1 worker:  %s\n3 workers: %s", a, c)
			}
		})
	}
}

// TestFaultedSchedulerBackends runs each faulted spec on the 4-ary heap
// and the calendar queue: fault events ride the same scheduler as every
// other event, so the backend must not change a byte.
func TestFaultedSchedulerBackends(t *testing.T) {
	for _, spec := range faultedSpecs(t) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			heap := spec
			heap.Scheduler = "heap"
			cal := spec
			cal.Scheduler = "calendar"
			a, b := runJSON(t, heap), runJSON(t, cal)
			if !bytes.Equal(a, b) {
				t.Errorf("%s: heap and calendar backends disagree under faults\nheap:     %s\ncalendar: %s",
					spec.Name, a, b)
			}
		})
	}
}

// TestFaultedParallelEquivalence forces a 2x2 region grid onto the
// faulted mesh — crashes and churn restarts land on region schedulers,
// the partition timeline is evaluated concurrently by region goroutines
// — and requires the hard parallel guarantee to hold: byte-identical
// results at every worker count and on the SetSequential reference
// path. (The auto-fit preset sweep in parallel_equiv_test.go already
// pins faulted parallel == plain sequential for the single-region fit.)
func TestFaultedParallelEquivalence(t *testing.T) {
	spec := faultedSpecs(t)[0] // churn-mesh-5x5, shortened
	spec.Parallel = &ParallelParams{Cols: 2, Rows: 2, Workers: 1}
	if g := parallelGrid(t, spec); g.Regions() != 4 {
		t.Fatalf("forced 2x2 grid fit %s", g)
	}
	want := runJSON(t, spec)
	workers := []int{2, 4, 8}
	if testing.Short() {
		workers = []int{4}
	}
	for _, w := range workers {
		s := spec
		s.Parallel = &ParallelParams{Cols: 2, Rows: 2, Workers: w}
		if got := runJSON(t, s); !bytes.Equal(want, got) {
			t.Errorf("churn-mesh-5x5: %d-worker faulted result differs from 1-worker", w)
		}
	}
	ref := spec
	ref.Parallel = &ParallelParams{Cols: 2, Rows: 2, Sequential: true}
	if got := runJSON(t, ref); !bytes.Equal(want, got) {
		t.Errorf("churn-mesh-5x5: SetSequential faulted reference differs from 1-worker")
	}
}

// TestFaultMetricsSurface pins the graceful-degradation metrics on a
// hand-built scenario whose outcome is fully predictable: a three-hop
// DSDV chain whose relay crashes for one second mid-run. The flow must
// lose traffic while the relay is down, recover after DSDV re-converges,
// and every bookkeeping identity must hold exactly.
func TestFaultMetricsSurface(t *testing.T) {
	spec := Spec{
		Name:     "fault-metrics-chain",
		Seed:     42,
		Duration: Duration(10 * time.Second),
		// 20 m spacing with the +3 dB margin (as in chain-8) keeps the
		// 40 m end-to-end shortcut out of the DSDV tables, so the relay
		// genuinely carries the flow.
		Topology: Topology{Kind: KindLine, N: 3, Spacing: 20},
		MAC:      MACParams{RateMbps: 11},
		Routing:  &RoutingParams{Protocol: "dsdv", NeighborMarginDB: 3},
		Flows: []Flow{
			{Src: 0, Dst: 2, Transport: TransportUDP, PacketSize: 512,
				Interval: Duration(20 * time.Millisecond), Port: 9000},
		},
		Faults: &FaultSpec{
			Crashes: []FaultCrash{{Station: 1, At: Duration(2 * time.Second), Until: Duration(3 * time.Second)}},
		},
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	f := res.Flows[0]
	if f.Attempts == 0 {
		t.Fatal("faulted run recorded no send attempts")
	}
	if f.DeliveryRatio <= 0 || f.DeliveryRatio >= 1 {
		t.Errorf("delivery ratio = %v, want strictly inside (0,1): relay crash must cost traffic", f.DeliveryRatio)
	}
	if got := float64(f.Received) / float64(f.Attempts); f.DeliveryRatio != got {
		t.Errorf("delivery ratio = %v, want Received/Attempts = %v", f.DeliveryRatio, got)
	}
	if f.RecoveredFaults < 1 {
		t.Errorf("recovered faults = %d, want >= 1: delivery must resume after the relay returns", f.RecoveredFaults)
	}
	if f.UnrecoveredFaults != 0 {
		t.Errorf("unrecovered faults = %d, want 0 within a 10 s horizon", f.UnrecoveredFaults)
	}
	// Recovery spans the 1 s outage plus DSDV re-advertising the healed
	// route, so it must exceed the downtime but settle before the horizon.
	if f.RecoveryMaxMs <= 1000 || f.RecoveryMaxMs >= 8000 {
		t.Errorf("recovery max = %v ms, want in (1000, 8000): one second down plus re-convergence", f.RecoveryMaxMs)
	}
	if f.RecoveryMeanMs <= 0 || f.RecoveryMeanMs > f.RecoveryMaxMs {
		t.Errorf("recovery mean = %v ms, max = %v ms: mean must be positive and bounded by max", f.RecoveryMeanMs, f.RecoveryMaxMs)
	}
	// Source and destination stay up: downtime-attributed loss is zero —
	// the loss here is routing loss, and the split must not claim it.
	if f.DowntimeLoss != 0 {
		t.Errorf("downtime loss = %d, want 0: neither endpoint was down", f.DowntimeLoss)
	}
	st := res.Stations[1]
	if st.DownTime.D() != time.Second || st.Crashes != 1 {
		t.Errorf("relay up/down bookkeeping = down %v over %d crashes, want 1s over 1", st.DownTime.D(), st.Crashes)
	}
	if st.UpTime.D()+st.DownTime.D() != spec.Duration.D() {
		t.Errorf("relay up %v + down %v != horizon %v", st.UpTime.D(), st.DownTime.D(), spec.Duration.D())
	}
	for _, i := range []int{0, 2} {
		if s := res.Stations[i]; s.DownTime.D() != 0 || s.Crashes != 0 {
			t.Errorf("station %d = down %v over %d crashes, want none", i, s.DownTime.D(), s.Crashes)
		}
	}
}

// TestFaultSpecValidation pins the scenario-layer fault checks that sit
// above faults.Params.Validate: TCP endpoints are not crashable, and
// outages only pause UDP senders.
func TestFaultSpecValidation(t *testing.T) {
	base := Spec{
		Name:     "fault-validate",
		Seed:     1,
		Duration: Duration(time.Second),
		MSS:      512,
		Topology: Topology{Kind: KindLine, N: 3, Spacing: 15},
		MAC:      MACParams{RateMbps: 11},
		Flows: []Flow{
			{Src: 0, Dst: 1, Transport: TransportTCP, PacketSize: 512, Port: 5001},
			{Src: 2, Dst: 1, Transport: TransportUDP, PacketSize: 256, Port: 5002},
		},
	}
	cases := []struct {
		name   string
		faults FaultSpec
		want   string
	}{
		{"crash tcp endpoint",
			FaultSpec{Crashes: []FaultCrash{{Station: 1, At: Duration(500 * time.Millisecond)}}},
			"tcp flow endpoint"},
		{"churn without station list",
			FaultSpec{Churn: &FaultChurn{RatePerMin: 10, MinDown: Duration(100 * time.Millisecond), MaxDown: Duration(200 * time.Millisecond)}},
			"list churn stations explicitly"},
		{"outage on tcp flow",
			FaultSpec{Outages: []FaultOutage{{Flow: 0, From: Duration(100 * time.Millisecond), To: Duration(200 * time.Millisecond)}}},
			"not udp"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base
			s.Faults = &tc.faults
			_, err := Build(s)
			if err == nil {
				t.Fatalf("Build accepted %s", tc.name)
			}
			if !bytes.Contains([]byte(err.Error()), []byte(tc.want)) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// The UDP flow remains a legal crash and outage target.
	ok := base
	ok.Faults = &FaultSpec{
		Outages: []FaultOutage{{Flow: 1, From: Duration(100 * time.Millisecond), To: Duration(200 * time.Millisecond)}},
	}
	if _, err := Build(ok); err != nil {
		t.Fatalf("Build rejected a UDP-only outage: %v", err)
	}
}
