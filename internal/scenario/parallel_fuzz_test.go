package scenario

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// FuzzParallelEquivalence is the metamorphic property test of the
// parallel kernel: for ANY structurally valid spec — topology, traffic
// matrix, seed and forced region grid all drawn from the fuzz input —
// the result must be byte-identical across worker counts and on the
// single-goroutine SetSequential reference path. This is the executor's
// hard worker-invariance guarantee (the equivalence suite pins it for
// the preset library; the fuzzer hunts for a counterexample in the
// open spec space). Plain-sequential equality is deliberately NOT
// asserted here: forced grids on one-contention-domain fields are
// allowed the documented same-instant tie divergence.
//
// Run the smoke corpus with plain `go test`; hunt with
//
//	go test -fuzz=FuzzParallelEquivalence -fuzztime=30s ./internal/scenario
func FuzzParallelEquivalence(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(2), uint8(1), uint8(0), uint8(1), false)
	f.Add(uint64(42), uint8(6), uint8(3), uint8(2), uint8(2), uint8(0), true)
	f.Add(uint64(7), uint8(8), uint8(1), uint8(3), uint8(5), uint8(2), false)
	f.Add(uint64(1234), uint8(3), uint8(2), uint8(2), uint8(1), uint8(3), true)
	f.Add(uint64(99), uint8(10), uint8(3), uint8(1), uint8(7), uint8(4), false)

	f.Fuzz(func(t *testing.T, seed uint64, stations, cols, rows, flowPick, sizePick uint8, tcp bool) {
		spec := fuzzSpec(seed, stations, cols, rows, flowPick, sizePick, tcp)
		if err := spec.Validate(); err != nil {
			t.Skip("structurally invalid draw")
		}
		run := func(p ParallelParams) []byte {
			s := spec
			s.Parallel = &p
			res, err := Run(s)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			buf, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			return buf
		}
		base := run(ParallelParams{Cols: spec.Parallel.Cols, Rows: spec.Parallel.Rows, Workers: 1})
		for _, p := range []ParallelParams{
			{Cols: spec.Parallel.Cols, Rows: spec.Parallel.Rows, Workers: 4},
			{Cols: spec.Parallel.Cols, Rows: spec.Parallel.Rows, Sequential: true},
		} {
			if got := run(p); !bytes.Equal(base, got) {
				t.Errorf("spec %+v: %+v diverged from 1-worker\n1-worker: %s\nvariant:  %s",
					spec, p, base, got)
			}
		}
	})
}

// fuzzSpec shapes raw fuzz values into a small, always-cheap spec: a
// random-uniform field, one or two paced flows, a forced region grid.
// The duration and pacing keep one run in the low milliseconds so the
// fuzzer gets real coverage per second.
func fuzzSpec(seed uint64, stations, cols, rows, flowPick, sizePick uint8, tcp bool) Spec {
	n := 3 + int(stations)%8 // 3..10 stations
	c := 1 + int(cols)%3     // 1..3 grid columns
	r := 1 + int(rows)%3     // 1..3 grid rows
	src := int(flowPick) % n // first flow source
	dst := (src + 1 + int(sizePick)%(n-1)) % n
	spec := Spec{
		Name:     "fuzz-parallel",
		Seed:     seed,
		Duration: Duration(300 * time.Millisecond),
		Topology: Topology{
			Kind:   KindRandomUniform,
			N:      n,
			Width:  150 + 50*float64(int(cols)%8), // 150..500 m
			Height: 150 + 50*float64(int(rows)%8),
		},
		Flows: []Flow{{
			Src: src, Dst: dst,
			Transport:  TransportUDP,
			PacketSize: 256 + 64*(int(sizePick)%4),
			Interval:   Duration(20 * time.Millisecond),
		}},
		Parallel: &ParallelParams{Cols: c, Rows: r},
	}
	if tcp {
		spec.Flows = append(spec.Flows, Flow{
			Src: dst, Dst: src,
			Transport:  TransportTCP,
			PacketSize: 512,
		})
	}
	return spec
}
