package scenario

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"adhocsim/internal/phy"
)

// The city-scale equivalence suite: every fast path the 16k/100k tier
// leans on — the calendar queue, the hierarchical spatial index, the
// incremental interference sums — must be bit-identical to its
// reference implementation on the city presets themselves, not just on
// the small unit fixtures. The presets are far too large for the
// full-horizon preset sweeps (parallel_equiv_test.go skips N > 2048),
// so the toggle matrix runs here at a short horizon instead.

// cityShortSpec returns the named city preset with its horizon cut to
// something a test can afford — the toggle equivalences care about
// event-order agreement, not steady-state throughput.
func cityShortSpec(t *testing.T, name string, horizon time.Duration) Spec {
	t.Helper()
	spec, err := Preset(name)
	if err != nil {
		t.Fatal(err)
	}
	spec.Duration = Duration(horizon)
	return spec
}

// TestRandom16kKernelToggles runs random-16k once per kernel toggle and
// requires the result JSON byte-identical to the preset's own
// configuration (calendar queue, hierarchical index, incremental sums):
//
//   - calendar-vs-heap: the spec's "scheduler" block switched to the
//     4-ary heap reference backend;
//   - hierarchy-vs-flat: phy.SetHierarchy(false) forces every CellIndex
//     query down the flat fine-grid reference path;
//   - incremental-vs-recomputed: Medium.SetIncremental(false) forces
//     CCA, the interference floor and the lock-time interference record
//     back to their per-edge recomputation loops.
func TestRandom16kKernelToggles(t *testing.T) {
	if testing.Short() {
		t.Skip("city-scale preset run: skipped in -short")
	}
	spec := cityShortSpec(t, "random-16k", 50*time.Millisecond)
	base := runJSON(t, spec)

	t.Run("calendar-vs-heap", func(t *testing.T) {
		s := spec
		s.Scheduler = "heap"
		if got := runJSON(t, s); !bytes.Equal(base, got) {
			t.Errorf("random-16k: heap-backend result differs from calendar")
		}
	})

	t.Run("hierarchy-vs-flat", func(t *testing.T) {
		phy.SetHierarchy(false)
		defer phy.SetHierarchy(true)
		if got := runJSON(t, spec); !bytes.Equal(base, got) {
			t.Errorf("random-16k: flat-index result differs from hierarchical")
		}
	})

	t.Run("incremental-vs-recomputed", func(t *testing.T) {
		inst, err := Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		inst.Net.Medium.SetIncremental(false)
		horizon := inst.Spec.Duration.D()
		inst.Net.Run(horizon)
		got, err := json.Marshal(inst.Collect(horizon))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(base, got) {
			t.Errorf("random-16k: recomputed-interference result differs from incremental")
		}
	})
}

// TestRandom16kParallelToggles extends the city toggle matrix with the
// parallel-kernel axes: both partitioners crossed with both scheduler
// backends, each run on the space-partitioned kernel and required
// byte-identical to the sequential kernel under the same backend. The
// 16k field auto-fits an 8x8 grid, so this is the first multi-region
// equivalence check at city scale — the preset sweeps cap at 2048
// stations.
func TestRandom16kParallelToggles(t *testing.T) {
	if testing.Short() {
		t.Skip("city-scale preset run: skipped in -short")
	}
	spec := cityShortSpec(t, "random-16k", 50*time.Millisecond)
	for _, sched := range []string{"calendar", "heap"} {
		s := spec
		s.Scheduler = sched
		seq := runJSON(t, s)
		for _, part := range []string{PartitionerBalanced, PartitionerUniform} {
			t.Run(part+"-"+sched, func(t *testing.T) {
				p := s
				p.Parallel = &ParallelParams{Partitioner: part}
				if got := runJSON(t, p); !bytes.Equal(seq, got) {
					t.Errorf("random-16k: parallel (%s partitioner, %s backend) differs from sequential", part, sched)
				}
			})
		}
	}
}

// TestClusteredBlocks100kEndToEnd builds and runs the 100k preset at a
// short horizon: construction completes, the run fires events, and the
// paced flows actually deliver — each block's nearest-neighbor pair is
// a live link, not a stranded one.
func TestClusteredBlocks100kEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("city-scale preset run: skipped in -short")
	}
	spec := cityShortSpec(t, "clustered-blocks-100k", 100*time.Millisecond)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flows) != len(spec.Flows) {
		t.Fatalf("got %d flow results, want %d", len(res.Flows), len(spec.Flows))
	}
	delivered := 0
	for _, f := range res.Flows {
		if f.GoodputKbps > 0 {
			delivered++
		}
	}
	if delivered < len(res.Flows) {
		t.Errorf("only %d/%d flows delivered within %v", delivered, len(res.Flows), spec.Duration.D())
	}
}

// TestRandom16kBuildBudget pins the satellite fix that made the city
// tier possible at all: constructing a 16384-station network must cost
// seconds, not the minutes the old O(stations²) neighbor wiring and
// linear nearest-destination scans would take. The budget is generous —
// it guards against an accidental return of a quadratic build step, not
// against a slow machine.
func TestRandom16kBuildBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("city-scale preset build: skipped in -short")
	}
	spec, err := Preset("random-16k")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := Build(spec); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("Build(random-16k) took %v; a quadratic construction step is back", elapsed)
	}
}

// TestNearestDstIndexedMatchesBrute pins the indexed nearest-neighbor
// resolver against the reference linear scan on a field large enough to
// take the indexed path: every resolved destination identical,
// including equidistant ties (the growing-radius probe breaks ties
// toward the lowest index, exactly like the scan).
func TestNearestDstIndexedMatchesBrute(t *testing.T) {
	topo := Topology{Kind: KindRandomUniform, N: 4 * nearestIndexMin, Width: 8000, Height: 8000}
	positions, err := topo.Expand(1234)
	if err != nil {
		t.Fatal(err)
	}
	var flows []Flow
	for i := 0; i < 64; i++ {
		flows = append(flows, Flow{
			Src:        i * len(positions) / 64,
			NearestDst: true,
			Transport:  TransportUDP,
			PacketSize: 256,
			Interval:   Duration(time.Second),
			Port:       uint16(9000 + i),
		})
	}
	indexed, err := resolveFlows(flows, positions)
	if err != nil {
		t.Fatal(err)
	}
	nearestBruteOnly = true
	defer func() { nearestBruteOnly = false }()
	brute, err := resolveFlows(flows, positions)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(indexed, brute) {
		for i := range indexed {
			if indexed[i].Dst != brute[i].Dst {
				t.Errorf("flow %d (src %d): indexed dst %d, brute dst %d",
					i, flows[i].Src, indexed[i].Dst, brute[i].Dst)
			}
		}
	}
}
