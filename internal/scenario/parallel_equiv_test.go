package scenario

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"adhocsim/internal/phy"
)

// The parallel-kernel equivalence suite: the space-partitioned executor
// must produce results indistinguishable from the sequential kernel.
//
// The guarantees, strongest first:
//
//  1. Worker-count invariance (hard, every spec): a parallel run's
//     result is byte-identical across 1/2/4/8 workers and the
//     single-goroutine SetSequential reference path. The executor's
//     canonical message ordering makes this exact, never statistical.
//  2. Sequential equivalence (hard for almost every preset): a parallel
//     run is byte-identical to the plain sequential kernel. For
//     single-region fits this is structural (same scheduler, same event
//     order); grid-32x32 partitions into 16 regions and still matches
//     byte for byte.
//  3. Tie equivalence (random-1024, documented): cross-region
//     transmissions starting at the same instant reach a common
//     receiver in canonical (send-time, source) order, where the
//     sequential kernel uses global scheduling order. At seed 42 that
//     flips a handful of preamble-capture ties at idle bystander
//     stations — a few ±1 eifs_deferrals/phy_errors counters — while
//     every flow metric, every goodput byte and the fairness index stay
//     identical. assertTieEquivalent pins exactly that shape, and
//     TestParallelGoldenRandom1024 pins the parallel bytes themselves.
//
// Mobility presets exercise the documented fallback: Build ignores the
// parallel block, so equivalence is trivially exact — asserting it pins
// the fallback itself.

// tieTolerant lists the presets where multi-region parallel execution
// is allowed to differ from sequential in same-instant-arrival tie
// resolution (guarantee 3 above) rather than byte-for-byte.
var tieTolerant = map[string]bool{"random-1024": true}

// runJSON runs the spec and returns its Result as canonical JSON.
func runJSON(t *testing.T, spec Spec) []byte {
	t.Helper()
	res, err := Run(spec)
	if err != nil {
		t.Fatalf("Run(%s): %v", spec.Name, err)
	}
	buf, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return buf
}

// parallelGrid reports the region grid the spec's parallel block would
// fit, so tests can tell single-region fits from real partitions.
func parallelGrid(t *testing.T, spec Spec) phy.RegionGrid {
	t.Helper()
	s := spec
	if s.Parallel == nil {
		s.Parallel = &ParallelParams{}
	}
	inst, err := Build(s)
	if err != nil {
		t.Fatalf("Build(%s): %v", s.Name, err)
	}
	return inst.Net.Grid
}

// assertTieEquivalent checks guarantee 3: flows, fairness and routing
// byte-identical, station counters equal except for a handful of ±1
// eifs_deferrals/phy_errors tie flips at bystander stations.
func assertTieEquivalent(t *testing.T, name string, seq, par []byte) {
	t.Helper()
	var a, b Result
	if err := json.Unmarshal(seq, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(par, &b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Flows, b.Flows) {
		t.Errorf("%s: flow metrics differ between sequential and parallel", name)
	}
	if a.Fairness != b.Fairness {
		t.Errorf("%s: fairness %v (sequential) vs %v (parallel)", name, a.Fairness, b.Fairness)
	}
	if a.Routing != b.Routing || len(a.Stations) != len(b.Stations) {
		t.Fatalf("%s: result shapes differ", name)
	}
	const maxTieFlips = 8
	flips := 0
	for i := range a.Stations {
		if a.Stations[i] == b.Stations[i] {
			continue
		}
		flips++
		x, y := a.Stations[i], b.Stations[i]
		x.EIFSDeferrals, y.EIFSDeferrals = 0, 0
		x.PHYErrors, y.PHYErrors = 0, 0
		if x != y {
			t.Errorf("%s: station %d differs beyond tie counters:\nseq: %+v\npar: %+v",
				name, i, a.Stations[i], b.Stations[i])
		}
	}
	if flips > maxTieFlips {
		t.Errorf("%s: %d stations flipped tie counters, want <= %d", name, flips, maxTieFlips)
	}
}

// TestParallelMatchesSequentialPresets runs every preset through the
// parallel kernel at 1/2/4/8 workers against the plain sequential
// kernel: byte-identical result JSON, except the tie-tolerant presets,
// which must satisfy the documented tie equivalence instead.
func TestParallelMatchesSequentialPresets(t *testing.T) {
	for _, p := range Presets() {
		p := p
		if p.Topology.N > 2048 {
			// The city-scale presets (random-16k, clustered-blocks-100k)
			// are far too large for a 5-way full-horizon sweep; their
			// kernel-toggle equivalences run at short horizons in
			// city_equiv_test.go instead.
			continue
		}
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			base := runJSON(t, p)
			workers := []int{1, 2, 4, 8}
			if testing.Short() {
				workers = []int{1, 4}
			}
			for _, w := range workers {
				s := p
				s.Parallel = &ParallelParams{Workers: w}
				got := runJSON(t, s)
				if bytes.Equal(base, got) {
					continue
				}
				if tieTolerant[p.Name] {
					assertTieEquivalent(t, p.Name, base, got)
					continue
				}
				t.Errorf("%s: %d-worker parallel result differs from sequential\nsequential: %s\nparallel:   %s",
					p.Name, w, base, got)
			}
		})
	}
}

// TestParallelWorkerInvariance pins guarantee 1 on the preset that is
// not byte-identical to sequential: whatever the tie resolution is, it
// must be exactly the same at every worker count and on the
// SetSequential reference path.
func TestParallelWorkerInvariance(t *testing.T) {
	spec, err := Preset("random-1024")
	if err != nil {
		t.Fatal(err)
	}
	if g := parallelGrid(t, spec); g.Regions() < 4 {
		t.Fatalf("random-1024 fit only %s; want a real partition", g)
	}
	base := spec
	base.Parallel = &ParallelParams{Workers: 1}
	want := runJSON(t, base)
	workers := []int{2, 4, 8}
	if testing.Short() {
		workers = []int{4}
	}
	for _, w := range workers {
		s := spec
		s.Parallel = &ParallelParams{Workers: w}
		if got := runJSON(t, s); !bytes.Equal(want, got) {
			t.Errorf("random-1024: %d-worker result differs from 1-worker", w)
		}
	}
	ref := spec
	ref.Parallel = &ParallelParams{Sequential: true}
	if got := runJSON(t, ref); !bytes.Equal(want, got) {
		t.Errorf("random-1024: SetSequential reference differs from 1-worker")
	}
}

// TestParallelSequentialReferencePath pins the SetSequential escape
// hatch: the executor's single-goroutine reference servicing must match
// the multi-worker run byte for byte on a genuinely multi-region spec.
func TestParallelSequentialReferencePath(t *testing.T) {
	spec, err := Preset("grid-32x32")
	if err != nil {
		t.Fatal(err)
	}
	if g := parallelGrid(t, spec); g.Regions() < 4 {
		t.Fatalf("grid-32x32 fit only %s; want a real partition", g)
	}
	seq := spec
	seq.Parallel = &ParallelParams{Sequential: true}
	par := spec
	par.Parallel = &ParallelParams{Workers: 4}
	a, b := runJSON(t, seq), runJSON(t, par)
	if !bytes.Equal(a, b) {
		t.Errorf("sequential-reference vs 4-worker mismatch\nref: %s\npar: %s", a, b)
	}
}

// TestParallelForcedGrid forces a multi-region partition onto a field
// that auto-fits a single region, so cross-region handoff runs where
// every station hears every other — the worst case for boundary
// traffic, and (with DSDV adverts crossing every boundary) well past
// the tie-equivalence regime the auto-fitted grids stay in. The
// executor's hard guarantee is what is asserted: the result is exactly
// the same at every worker count and on the SetSequential reference
// path, for every forced shape.
func TestParallelForcedGrid(t *testing.T) {
	spec, err := Preset("mesh-5x5-multihop")
	if err != nil {
		t.Fatal(err)
	}
	for _, dims := range [][2]int{{2, 1}, {2, 2}, {5, 5}} {
		s := spec
		s.Parallel = &ParallelParams{Cols: dims[0], Rows: dims[1], Workers: 4}
		if g := parallelGrid(t, s); g.Regions() != dims[0]*dims[1] {
			t.Fatalf("forced %dx%d grid fit %s", dims[0], dims[1], g)
		}
		got := runJSON(t, s)
		s.Parallel = &ParallelParams{Cols: dims[0], Rows: dims[1], Workers: 1}
		if one := runJSON(t, s); !bytes.Equal(got, one) {
			t.Errorf("mesh-5x5-multihop: forced %dx%d grid not worker-invariant", dims[0], dims[1])
		}
		s.Parallel = &ParallelParams{Cols: dims[0], Rows: dims[1], Sequential: true}
		if ref := runJSON(t, s); !bytes.Equal(got, ref) {
			t.Errorf("mesh-5x5-multihop: forced %dx%d grid differs from its SetSequential reference", dims[0], dims[1])
		}
	}
}

// TestParallelGridFits documents the auto-sizing policy: the two big
// fields partition (their spans hold several carrier-sense ranges), the
// one-contention-domain presets collapse to a single region, where
// parallel equals sequential structurally.
func TestParallelGridFits(t *testing.T) {
	multi := map[string]bool{"grid-32x32": true, "random-1024": true}
	for _, p := range Presets() {
		if p.Mobility != nil || p.Topology.N > 2048 {
			// City-scale presets would partition too (their fields span
			// dozens of carrier-sense ranges); building 16k/100k stations
			// here per test run is not worth re-proving it.
			continue
		}
		g := parallelGrid(t, p)
		if multi[p.Name] && g.Regions() < 4 {
			t.Errorf("%s: fitted %s, want >= 4 regions", p.Name, g)
		}
		if !multi[p.Name] && g.Regions() != 1 {
			t.Errorf("%s: fitted %s, want exactly 1 region (field spans too few carrier-sense ranges)", p.Name, g)
		}
	}
}

// TestParallelGoldenRandom1024 pins the multi-region parallel result of
// random-1024 byte for byte — the other half of the tie-equivalence
// contract: sequential differs only in documented tie flips
// (TestParallelMatchesSequentialPresets), and the parallel bytes
// themselves never drift. Re-bless with -update only for a change that
// is meant to alter simulation results, and say so in the commit
// message.
func TestParallelGoldenRandom1024(t *testing.T) {
	spec, err := Preset("random-1024")
	if err != nil {
		t.Fatal(err)
	}
	spec.Parallel = &ParallelParams{Workers: 4}
	got := runJSON(t, spec)
	got = append(got, '\n')
	path := filepath.Join("testdata", "golden_parallel_random1024.json")
	if *updatePresetGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("recorded %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to record): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("random-1024 parallel result diverged from the recorded golden")
	}
}

// TestSplitWorkers pins the hybrid sweep's worker arithmetic: the
// budget goes to replications first, any surplus becomes region
// workers, and an explicit ParallelParams.Workers pins the region
// count regardless of the derived split.
func TestSplitWorkers(t *testing.T) {
	cases := []struct {
		reps, total, par     int
		wantReps, wantRegion int
	}{
		{reps: 4, total: 8, par: 0, wantReps: 4, wantRegion: 2},
		{reps: 8, total: 4, par: 0, wantReps: 4, wantRegion: 1},
		{reps: 1, total: 6, par: 0, wantReps: 1, wantRegion: 6},
		{reps: 3, total: 3, par: 0, wantReps: 3, wantRegion: 1},
		{reps: 2, total: 5, par: 0, wantReps: 2, wantRegion: 2},
		{reps: 4, total: 8, par: 3, wantReps: 4, wantRegion: 3},
		{reps: 1, total: 1, par: 0, wantReps: 1, wantRegion: 1},
	}
	for _, c := range cases {
		gotReps, gotRegion := splitWorkers(c.reps, c.total, c.par)
		if gotReps != c.wantReps || gotRegion != c.wantRegion {
			t.Errorf("splitWorkers(%d, %d, %d) = (%d, %d); want (%d, %d)",
				c.reps, c.total, c.par, gotReps, gotRegion, c.wantReps, c.wantRegion)
		}
	}
	// A non-positive budget defaults to GOMAXPROCS; the split must
	// still be well-formed.
	r, g := splitWorkers(2, 0, 0)
	if r < 1 || g < 1 {
		t.Errorf("splitWorkers(2, 0, 0) = (%d, %d); want both >= 1", r, g)
	}
}

// TestReplicateHybridWorkerInvariance pins the hybrid scheduling
// contract: a replication sweep over a parallel spec must produce the
// same summary whatever the worker budget — the budget only moves work
// between replication workers and region workers, never changes the
// event order. The exec block's worker split legitimately varies with
// the budget, so it is normalized before comparison while the run
// results and the folded executor counters (windows, messages,
// per-region fired histogram) must match exactly.
func TestReplicateHybridWorkerInvariance(t *testing.T) {
	spec, err := Preset("random-1024")
	if err != nil {
		t.Fatal(err)
	}
	spec.Duration = Duration(500 * time.Millisecond)
	spec.Parallel = &ParallelParams{}
	const reps = 2

	normalize := func(s Summary) []byte {
		t.Helper()
		if s.Exec == nil {
			t.Fatal("hybrid sweep produced no exec block")
		}
		es := *s.Exec
		es.RegionWorkers, es.ReplicationWorkers = 0, 0
		s.Exec = &es
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	base, err := Replicate(spec, reps, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := normalize(base)
	for _, budget := range []int{2, 5} {
		got, err := Replicate(spec, reps, budget, nil)
		if err != nil {
			t.Fatal(err)
		}
		if b := normalize(got); !bytes.Equal(want, b) {
			t.Errorf("hybrid sweep with budget %d diverged from budget 1:\nbudget 1: %s\nbudget %d: %s",
				budget, want, budget, b)
		}
	}
}
