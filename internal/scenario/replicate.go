package scenario

import (
	"fmt"
	"strings"

	"adhocsim/internal/runner"
)

// FlowSummary aggregates one flow's metrics over replications.
type FlowSummary struct {
	Flow int `json:"flow"`
	Src  int `json:"src"`
	// Dst is the flow's destination station. For a NearestDst flow on a
	// random topology every replication re-draws the field and re-pairs
	// the flow, so no single destination describes the aggregate; Dst is
	// then -1 and NearestDst is set (per-replication endpoints are in
	// Summary.Runs).
	Dst        int            `json:"dst"`
	NearestDst bool           `json:"nearest_dst,omitempty"`
	Transport  Transport      `json:"transport"`
	Kbps       runner.Summary `json:"kbps"`
	Retries    runner.Summary `json:"retries"`
	Gaps       runner.Summary `json:"gaps"`
	// Hops summarizes the MAC hop count the flow's packets actually
	// traveled (1 = direct link, 0 = nothing delivered that run).
	Hops runner.Summary `json:"hops"`
}

// StationSummary aggregates one station's network-layer activity over
// replications: relay load, drops, and routing control overhead.
type StationSummary struct {
	Station   int            `json:"station"`
	Forwarded runner.Summary `json:"forwarded"`
	Dropped   runner.Summary `json:"dropped"`
	CtlBytes  runner.Summary `json:"ctl_bytes"`
}

// Summary aggregates a replicated scenario: per-flow goodput/retry/loss
// summaries plus the fairness index, each as mean ± 95% CI over the
// replications.
type Summary struct {
	Name         string `json:"name"`
	Replications int    `json:"replications"`
	// Routing names the route control plane, empty for classic
	// single-hop scenarios.
	Routing string        `json:"routing,omitempty"`
	Flows   []FlowSummary `json:"flows"`
	// Stations aggregates relay load and control overhead; populated
	// only for routed scenarios, where relaying exists to report on.
	Stations []StationSummary `json:"stations,omitempty"`
	Fairness runner.Summary   `json:"fairness"`
	// Runs holds the per-replication results in replication order.
	Runs []Result `json:"runs"`
}

// rebuildEachRep, when set, makes Replicate compile every replication
// from scratch instead of re-seeding each worker's built network — the
// pre-arena-reuse reference behaviour (see SetRebuildEachRep).
var rebuildEachRep bool

// SetRebuildEachRep disables (true) or re-enables (false) arena reuse
// in Replicate, forcing every replication through a full Build. Like
// medium.SetBruteForce it exists for verification — the equivalence
// tests (and cmd/adhocsim -rebuild-each-rep) run the same sweep both
// ways and require byte-identical summaries. Production callers never
// need it. Not safe to flip while a Replicate call is in flight.
func SetRebuildEachRep(on bool) { rebuildEachRep = on }

// Replicate runs reps independently seeded copies of the spec across
// workers goroutines (0 = all CPUs) and aggregates per-flow metrics.
// Replication 0 reuses the spec's own seed, so a single-replication
// summary wraps exactly the result of Run(spec). The aggregate is
// bit-identical for any worker count.
//
// Each worker builds the network once and re-seeds it per replication
// (Instance.Reset), so a sweep pays the O(stations²) construction cost
// per worker, not per replication. Specs with a MACHook opt out: the
// hook may close over per-run state (rate controllers) that Reset
// cannot reach, so those replications rebuild — and serialize, since
// the shared hook state would also make concurrent replications a data
// race.
func Replicate(spec Spec, reps, workers int, progress func(done, total int)) (Summary, error) {
	// A sweep already parallelizes across seeds, and the arena-reuse
	// path depends on node.Network.Reset, which the parallel kernel does
	// not support — so multi-replication sweeps always run the
	// sequential kernel. One seed, one core; many seeds, many cores; the
	// parallel kernel is for the one-seed case (cmd/adhocsim
	// -parallel-regions, Run), so a single-replication summary keeps the
	// spec's parallel block and runs it through the full-build path.
	par := spec.Parallel
	spec.Parallel = nil
	if err := spec.Validate(); err != nil {
		return Summary{}, err
	}
	if reps < 1 {
		reps = 1
	}
	if reps == 1 && par != nil {
		s := spec
		s.Parallel = par
		return summarize(spec, []Result{MustRun(s)}), nil
	}
	if spec.MACHook != nil {
		workers = 1
	}
	cfg := runner.Config{Workers: workers, Progress: progress}
	var runs []Result
	if spec.MACHook != nil || rebuildEachRep {
		runs = runner.Replicate(cfg, spec.Seed, reps, func(seed uint64) Result {
			s := spec
			s.Seed = seed
			return MustRun(s)
		})
	} else {
		runs = runner.ReplicateWith(cfg, spec.Seed, reps, func(inst **Instance, seed uint64) Result {
			return runReused(inst, spec, seed)
		})
	}
	return summarize(spec, runs), nil
}

// SummarizeRuns aggregates already-collected runs of one spec into the
// same Summary Replicate produces — the hook for callers that drive
// the runs themselves (cmd/adhocsim's metered single runs).
func SummarizeRuns(spec Spec, runs []Result) Summary { return summarize(spec, runs) }

// summarize aggregates per-flow and per-station metrics over the runs
// of one replicated scenario.
func summarize(spec Spec, runs []Result) Summary {
	sum := Summary{
		Name:         spec.Name,
		Replications: len(runs),
		Routing:      runs[0].Routing,
		Fairness:     runner.SummarizeBy(runs, func(r Result) float64 { return r.Fairness }),
		Runs:         runs,
	}
	for i := range runs[0].Flows {
		i := i
		fs := FlowSummary{
			Flow:      i,
			Src:       runs[0].Flows[i].Src,
			Dst:       runs[0].Flows[i].Dst,
			Transport: runs[0].Flows[i].Transport,
			Kbps:      runner.SummarizeBy(runs, func(r Result) float64 { return r.Flows[i].GoodputKbps }),
			Retries:   runner.SummarizeBy(runs, func(r Result) float64 { return float64(r.Flows[i].Retries) }),
			Gaps:      runner.SummarizeBy(runs, func(r Result) float64 { return float64(r.Flows[i].Gaps) }),
			Hops:      runner.SummarizeBy(runs, func(r Result) float64 { return float64(r.Flows[i].Hops) }),
		}
		if len(spec.Flows) > i && spec.Flows[i].NearestDst {
			// When seed-dependent topology re-draws paired this flow to
			// different stations across replications, replication 0's
			// destination would misattribute the aggregate to a link the
			// other runs never used. When every replication resolved to
			// the same station, that one real destination stands.
			for _, r := range runs[1:] {
				if r.Flows[i].Dst != runs[0].Flows[i].Dst {
					fs.Dst = -1
					fs.NearestDst = true
					break
				}
			}
		}
		sum.Flows = append(sum.Flows, fs)
	}
	if sum.Routing != "" {
		for i := range runs[0].Stations {
			i := i
			sum.Stations = append(sum.Stations, StationSummary{
				Station:   i,
				Forwarded: runner.SummarizeBy(runs, func(r Result) float64 { return float64(r.Stations[i].NetForwarded) }),
				Dropped:   runner.SummarizeBy(runs, func(r Result) float64 { return float64(r.Stations[i].NetDropped) }),
				CtlBytes:  runner.SummarizeBy(runs, func(r Result) float64 { return float64(r.Stations[i].CtlBytes) }),
			})
		}
	}
	return sum
}

// runReused executes one replication on a worker's arena: the first
// replication a worker runs builds its network, every later one
// re-seeds it in place. Both paths produce bit-identical Results for a
// given seed (Instance.Reset's contract), so the sweep aggregate does
// not depend on which worker ran which replication.
func runReused(slot **Instance, spec Spec, seed uint64) Result {
	inst := *slot
	if inst == nil {
		s := spec
		s.Seed = seed
		built, err := Build(s)
		if err != nil {
			// Validate passed before the fan-out, so this is unreachable
			// short of a programming error; mirror MustRun's contract.
			panic(fmt.Sprintf("scenario: %v", err))
		}
		*slot = built
		inst = built
	} else if err := inst.Reset(seed); err != nil {
		panic(fmt.Sprintf("scenario: %v", err))
	}
	horizon := inst.Spec.Duration.D()
	inst.Net.Run(horizon)
	return inst.Collect(horizon)
}

// Render formats a replicated scenario summary as the text table the
// CLI prints: one row per flow plus the fairness line, and — for routed
// scenarios — the per-station relay/overhead table.
func Render(s Summary) string {
	var b strings.Builder
	if s.Routing != "" {
		fmt.Fprintf(&b, "Scenario %q — %d replication(s), %s routing\n", s.Name, s.Replications, s.Routing)
	} else {
		fmt.Fprintf(&b, "Scenario %q — %d replication(s)\n", s.Name, s.Replications)
	}
	fmt.Fprintf(&b, "%-6s %-10s %-12s %-18s %-14s %-8s %s\n",
		"flow", "route", "transport", "goodput [kbit/s]", "retries", "gaps", "hops")
	for _, f := range s.Flows {
		route := fmt.Sprintf("%d→%d", f.Src, f.Dst)
		if f.NearestDst {
			route = fmt.Sprintf("%d→nearest", f.Src)
		}
		fmt.Fprintf(&b, "%-6d %-10s %-12s %8.1f ± %-7.1f %6.1f ± %-5.1f %6.1f %6.1f\n",
			f.Flow, route, f.Transport,
			f.Kbps.Mean, f.Kbps.CI95, f.Retries.Mean, f.Retries.CI95, f.Gaps.Mean, f.Hops.Mean)
	}
	fmt.Fprintf(&b, "Jain fairness: %.3f ± %.3f\n", s.Fairness.Mean, s.Fairness.CI95)
	if s.Routing != "" {
		fmt.Fprintf(&b, "%-8s %-16s %-16s %s\n", "station", "forwarded", "dropped", "ctl [bytes]")
		for _, st := range s.Stations {
			fmt.Fprintf(&b, "%-8d %8.1f ± %-5.1f %8.1f ± %-5.1f %10.1f\n",
				st.Station, st.Forwarded.Mean, st.Forwarded.CI95, st.Dropped.Mean, st.Dropped.CI95, st.CtlBytes.Mean)
		}
	}
	return b.String()
}
