package scenario

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"adhocsim/internal/obs"
	"adhocsim/internal/runner"
)

// FlowSummary aggregates one flow's metrics over replications.
type FlowSummary struct {
	Flow int `json:"flow"`
	Src  int `json:"src"`
	// Dst is the flow's destination station. For a NearestDst flow on a
	// random topology every replication re-draws the field and re-pairs
	// the flow, so no single destination describes the aggregate; Dst is
	// then -1 and NearestDst is set (per-replication endpoints are in
	// Summary.Runs).
	Dst        int            `json:"dst"`
	NearestDst bool           `json:"nearest_dst,omitempty"`
	Transport  Transport      `json:"transport"`
	Kbps       runner.Summary `json:"kbps"`
	Retries    runner.Summary `json:"retries"`
	Gaps       runner.Summary `json:"gaps"`
	// Hops summarizes the MAC hop count the flow's packets actually
	// traveled (1 = direct link, 0 = nothing delivered that run).
	Hops runner.Summary `json:"hops"`

	// Graceful-degradation summaries, present only for UDP flows of
	// faulted scenarios (a "faults" block in the spec): delivery ratio
	// under churn, downtime-attributed loss, per-run mean and max route
	// recovery after each fault, and faults never recovered from.
	Delivery      *runner.Summary `json:"delivery_ratio,omitempty"`
	DowntimeLoss  *runner.Summary `json:"downtime_loss,omitempty"`
	RecoveryMs    *runner.Summary `json:"recovery_ms,omitempty"`
	RecoveryMaxMs *runner.Summary `json:"recovery_max_ms,omitempty"`
	Unrecovered   *runner.Summary `json:"unrecovered,omitempty"`
}

// StationSummary aggregates one station's network-layer activity over
// replications: relay load, drops, and routing control overhead.
type StationSummary struct {
	Station   int            `json:"station"`
	Forwarded runner.Summary `json:"forwarded"`
	Dropped   runner.Summary `json:"dropped"`
	CtlBytes  runner.Summary `json:"ctl_bytes"`

	// DownSecs and Crashes summarize the station's downtime under
	// faults; present only for faulted scenarios.
	DownSecs *runner.Summary `json:"down_secs,omitempty"`
	Crashes  *runner.Summary `json:"crashes,omitempty"`
}

// Summary aggregates a replicated scenario: per-flow goodput/retry/loss
// summaries plus the fairness index, each as mean ± 95% CI over the
// replications.
type Summary struct {
	Name         string `json:"name"`
	Replications int    `json:"replications"`
	// Routing names the route control plane, empty for classic
	// single-hop scenarios.
	Routing string        `json:"routing,omitempty"`
	Flows   []FlowSummary `json:"flows"`
	// Stations aggregates relay load and control overhead; populated
	// only for routed scenarios, where relaying exists to report on.
	Stations []StationSummary `json:"stations,omitempty"`
	Fairness runner.Summary   `json:"fairness"`
	// Exec reports the parallel kernel's execution plan and aggregate
	// counters when the sweep ran the space-partitioned kernel; nil for
	// sequential sweeps. It lives on the Summary, not on each Result:
	// the per-run Results stay byte-identical across kernels, which is
	// the equivalence contract the parallel tests pin.
	Exec *ExecSummary `json:"exec,omitempty"`
	// Runs holds the per-replication results in replication order.
	Runs []Result `json:"runs"`
}

// ExecSummary describes how a parallel sweep actually executed — the
// partition and the two-level worker split — plus the kernel's
// counters folded over the replications in replication order.
type ExecSummary struct {
	// Partitioner is the resolved cut-line placement ("balanced" or
	// "uniform"); Cols/Rows and Grid describe replication 0's fitted
	// region grid (random topologies re-draw positions per seed, which
	// moves the cut lines but not the auto-sized shape).
	Partitioner string `json:"partitioner"`
	Cols        int    `json:"cols"`
	Rows        int    `json:"rows"`
	Grid        string `json:"grid"`
	// RegionWorkers drive regions inside each replication;
	// ReplicationWorkers run replications concurrently. Neither
	// affects results — only wall-clock.
	RegionWorkers      int `json:"region_workers"`
	ReplicationWorkers int `json:"replication_workers"`
	// Windows counts barrier-separated lookahead windows and Messages
	// cross-region message deliveries, both summed over replications.
	Windows  uint64 `json:"windows"`
	Messages uint64 `json:"messages"`
	// RegionFired is the per-region events-fired histogram summed over
	// replications (row-major region order); LoadBalance is its
	// max/mean ratio — 1.0 is a perfectly even partition.
	RegionFired []uint64 `json:"region_fired"`
	LoadBalance float64  `json:"load_balance"`
}

// Plan renders the execution plan as the one-line human summary the
// CLI prints under -progress.
func (e *ExecSummary) Plan() string {
	return fmt.Sprintf("parallel plan: %s (%s partitioner), %d region worker(s) x %d replication worker(s)",
		e.Grid, e.Partitioner, e.RegionWorkers, e.ReplicationWorkers)
}

// rebuildEachRep, when set, makes Replicate compile every replication
// from scratch instead of re-seeding each worker's built network — the
// pre-arena-reuse reference behaviour (see SetRebuildEachRep).
var rebuildEachRep bool

// SetRebuildEachRep disables (true) or re-enables (false) arena reuse
// in Replicate, forcing every replication through a full Build. Like
// medium.SetBruteForce it exists for verification — the equivalence
// tests (and cmd/adhocsim -rebuild-each-rep) run the same sweep both
// ways and require byte-identical summaries. Production callers never
// need it. Not safe to flip while a Replicate call is in flight.
func SetRebuildEachRep(on bool) { rebuildEachRep = on }

// Replicate runs reps independently seeded copies of the spec across
// workers goroutines (0 = all CPUs) and aggregates per-flow metrics.
// Replication 0 reuses the spec's own seed, so a single-replication
// summary wraps exactly the result of Run(spec). The aggregate is
// bit-identical for any worker count.
//
// Each worker builds the network once and re-seeds it per replication
// (Instance.Reset), so a sweep pays the O(stations²) construction cost
// per worker, not per replication. Specs with a MACHook opt out: the
// hook may close over per-run state (rate controllers) that Reset
// cannot reach, so those replications rebuild — and serialize, since
// the shared hook state would also make concurrent replications a data
// race.
//
// Specs with a parallel block run the hybrid schedule instead: every
// replication keeps the space-partitioned kernel, and the worker
// budget splits between replication-level and region-level parallelism
// (see replicateParallel). The split never changes results — only
// wall-clock — and the chosen plan is reported in Summary.Exec.
func Replicate(spec Spec, reps, workers int, progress func(done, total int)) (Summary, error) {
	// Build falls back to the sequential kernel under mobility; strip
	// the parallel block up front so those sweeps keep the arena-reuse
	// path instead of pointlessly full-building every replication.
	if spec.Mobility != nil {
		spec.Parallel = nil
	}
	if err := spec.Validate(); err != nil {
		return Summary{}, err
	}
	if reps < 1 {
		reps = 1
	}
	// One registry serves the whole sweep: every worker's instance
	// publishes into it. Callers that read the metrics pass their own
	// via Spec.ObsRegistry; promoting here keeps the per-worker builds
	// from each minting a private, unreachable one.
	if spec.ObsRegistry == nil && spec.Obs != nil && spec.Obs.Enabled {
		spec.ObsRegistry = obs.NewRegistry()
	}
	if spec.Parallel != nil {
		return replicateParallel(spec, reps, workers, progress)
	}
	if spec.MACHook != nil {
		workers = 1
	}
	ro := newRunnerObs(spec.ObsRegistry)
	var sweepStart time.Time
	if spec.ObsRegistry != nil {
		sweepStart = time.Now()
	}
	cfg := runner.Config{Workers: workers, Progress: progress, OnJobDone: ro.onJobDone()}
	var runs []Result
	if spec.MACHook != nil || rebuildEachRep {
		runs = runner.Replicate(cfg, spec.Seed, reps, func(seed uint64) Result {
			s := spec
			s.Seed = seed
			return MustRun(s)
		})
	} else {
		runs = runner.ReplicateWith(cfg, spec.Seed, reps, func(inst **Instance, seed uint64) Result {
			return runReused(inst, spec, seed)
		})
	}
	if spec.ObsRegistry != nil {
		ro.noteSweep(min(reps, resolveWorkers(workers)), time.Since(sweepStart))
	}
	return summarize(spec, runs), nil
}

// resolveWorkers maps a Config-style worker count (0 = all CPUs) to the
// effective count, for the utilization gauge.
func resolveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// replicateParallel runs a sweep whose replications carry the
// space-partitioned kernel. The worker budget splits across the two
// levels of parallelism: replications first — independent seeds scale
// perfectly — with the surplus handed to the regions inside each
// replication, so a sweep of 2 replications on 8 cores runs 2x4
// instead of idling six cores. The split derives from the spec and the
// counts alone, never from timing, and neither level affects results
// (runner's index-ordered fan-out; the executor's worker-invariance
// guarantee), so the aggregate stays bit-identical for any worker
// count. Parallel instances do not support Reset, so every replication
// compiles from scratch — no arena reuse.
func replicateParallel(spec Spec, reps, workers int, progress func(done, total int)) (Summary, error) {
	repWorkers, regionWorkers := splitWorkers(reps, workers, spec.Parallel.Workers)
	if spec.MACHook != nil {
		// Concurrent replications would race on the shared hook state;
		// region workers are fine (the hook only runs at build time).
		repWorkers = 1
	}
	type outcome struct {
		res Result
		es  *ExecSummary
	}
	par := *spec.Parallel
	par.Workers = regionWorkers
	ro := newRunnerObs(spec.ObsRegistry)
	var sweepStart time.Time
	if spec.ObsRegistry != nil {
		sweepStart = time.Now()
	}
	cfg := runner.Config{Workers: repWorkers, Progress: progress, OnJobDone: ro.onJobDone()}
	outs := runner.Replicate(cfg, spec.Seed, reps, func(seed uint64) outcome {
		s := spec
		s.Seed = seed
		p := par
		s.Parallel = &p
		inst, err := Build(s)
		if err != nil {
			// Validate passed before the fan-out, so this is unreachable
			// short of a programming error; mirror MustRun's contract.
			panic(fmt.Sprintf("scenario: %v", err))
		}
		horizon := inst.Spec.Duration.D()
		inst.Net.Run(horizon)
		return outcome{res: inst.Collect(horizon), es: inst.ExecStats()}
	})
	if spec.ObsRegistry != nil {
		ro.noteSweep(repWorkers, time.Since(sweepStart))
	}
	runs := make([]Result, len(outs))
	for i, o := range outs {
		runs[i] = o.res
	}
	sum := summarize(spec, runs)
	// A degenerate radio model can make Build fall back to the
	// sequential kernel (no executor); the summary then reports no plan.
	if first := outs[0].es; first != nil {
		es := &ExecSummary{
			Partitioner:        first.Partitioner,
			Cols:               first.Cols,
			Rows:               first.Rows,
			Grid:               first.Grid,
			RegionWorkers:      first.RegionWorkers,
			ReplicationWorkers: repWorkers,
		}
		for _, o := range outs {
			if o.es == nil {
				continue
			}
			es.Windows += o.es.Windows
			es.Messages += o.es.Messages
			for len(es.RegionFired) < len(o.es.RegionFired) {
				es.RegionFired = append(es.RegionFired, 0)
			}
			for r, f := range o.es.RegionFired {
				es.RegionFired[r] += f
			}
		}
		es.LoadBalance = loadBalance(es.RegionFired)
		sum.Exec = es
	}
	return sum, nil
}

// ExecStats reports the instance's parallel-kernel execution stats —
// the plan fields from its fitted grid, the counters from its executor
// — as a single-replication ExecSummary. Nil when the instance runs
// the sequential kernel.
func (inst *Instance) ExecStats() *ExecSummary {
	ex := inst.Net.Exec
	if ex == nil {
		return nil
	}
	part := ""
	if inst.Spec.Parallel != nil {
		part = inst.Spec.Parallel.Partitioner
	}
	g := inst.Net.Grid
	es := &ExecSummary{
		Partitioner:        resolvePartitioner(part),
		Cols:               g.Cols,
		Rows:               g.Rows,
		Grid:               g.String(),
		RegionWorkers:      ex.Workers(),
		ReplicationWorkers: 1,
		Windows:            ex.Windows(),
		Messages:           ex.Messages(),
		RegionFired:        ex.RegionFired(),
	}
	es.LoadBalance = loadBalance(es.RegionFired)
	return es
}

// splitWorkers divides a sweep's worker budget between its two levels
// of parallelism: replications first (independent seeds need no
// synchronization at all), any surplus to the parallel kernel inside
// each replication. An explicit ParallelParams.Workers pins the
// region-level count instead of deriving it.
func splitWorkers(reps, total, parWorkers int) (repWorkers, regionWorkers int) {
	if total <= 0 {
		total = runtime.GOMAXPROCS(0)
	}
	repWorkers = min(reps, total)
	if repWorkers < 1 {
		repWorkers = 1
	}
	regionWorkers = parWorkers
	if regionWorkers == 0 {
		regionWorkers = max(1, total/repWorkers)
	}
	return repWorkers, regionWorkers
}

// loadBalance is the max/mean ratio of a per-region event histogram:
// 1.0 is a perfectly even partition, R (the region count) is all the
// work concentrated in one region.
func loadBalance(fired []uint64) float64 {
	var total, peak uint64
	for _, f := range fired {
		total += f
		if f > peak {
			peak = f
		}
	}
	if total == 0 {
		return 0
	}
	return float64(peak) * float64(len(fired)) / float64(total)
}

// resolvePartitioner maps the spec spelling to the effective
// partitioner name (empty selects balanced).
func resolvePartitioner(p string) string {
	if p == "" {
		return PartitionerBalanced
	}
	return p
}

// PlanExec resolves the execution plan a Replicate call with the same
// arguments will choose — the fitted region grid and the two-level
// worker split — without running anything, so the CLI can print it up
// front. Returns nil (and no error) when the sweep will run the
// sequential kernel throughout.
func PlanExec(spec Spec, reps, workers int) (*ExecSummary, error) {
	spec = spec.withDefaults()
	if spec.Parallel == nil || spec.Mobility != nil {
		return nil, nil
	}
	positions, flows, err := spec.check()
	if err != nil {
		return nil, err
	}
	// The balanced partitioner weights the resolved flow endpoints, so
	// the plan must resolve them exactly as Build does.
	spec.Flows = flows
	netProfile := spec.CustomProfile
	if netProfile == nil {
		if netProfile, err = profileByName(spec.Profile); err != nil {
			return nil, err
		}
	}
	grid, _, ok, err := spec.parallelGrid(positions, netProfile)
	if err != nil || !ok {
		return nil, err
	}
	if reps < 1 {
		reps = 1
	}
	repWorkers, regionWorkers := splitWorkers(reps, workers, spec.Parallel.Workers)
	if spec.MACHook != nil {
		repWorkers = 1
	}
	return &ExecSummary{
		Partitioner:        resolvePartitioner(spec.Parallel.Partitioner),
		Cols:               grid.Cols,
		Rows:               grid.Rows,
		Grid:               grid.String(),
		RegionWorkers:      min(regionWorkers, grid.Regions()),
		ReplicationWorkers: repWorkers,
	}, nil
}

// SummarizeRuns aggregates already-collected runs of one spec into the
// same Summary Replicate produces — the hook for callers that drive
// the runs themselves (cmd/adhocsim's metered single runs).
func SummarizeRuns(spec Spec, runs []Result) Summary { return summarize(spec, runs) }

// summarize aggregates per-flow and per-station metrics over the runs
// of one replicated scenario.
func summarize(spec Spec, runs []Result) Summary {
	sum := Summary{
		Name:         spec.Name,
		Replications: len(runs),
		Routing:      runs[0].Routing,
		Fairness:     runner.SummarizeBy(runs, func(r Result) float64 { return r.Fairness }),
		Runs:         runs,
	}
	for i := range runs[0].Flows {
		i := i
		fs := FlowSummary{
			Flow:      i,
			Src:       runs[0].Flows[i].Src,
			Dst:       runs[0].Flows[i].Dst,
			Transport: runs[0].Flows[i].Transport,
			Kbps:      runner.SummarizeBy(runs, func(r Result) float64 { return r.Flows[i].GoodputKbps }),
			Retries:   runner.SummarizeBy(runs, func(r Result) float64 { return float64(r.Flows[i].Retries) }),
			Gaps:      runner.SummarizeBy(runs, func(r Result) float64 { return float64(r.Flows[i].Gaps) }),
			Hops:      runner.SummarizeBy(runs, func(r Result) float64 { return float64(r.Flows[i].Hops) }),
		}
		if spec.Faults != nil && runs[0].Flows[i].Transport == TransportUDP {
			sumOf := func(f func(Result) float64) *runner.Summary {
				s := runner.SummarizeBy(runs, f)
				return &s
			}
			fs.Delivery = sumOf(func(r Result) float64 { return r.Flows[i].DeliveryRatio })
			fs.DowntimeLoss = sumOf(func(r Result) float64 { return float64(r.Flows[i].DowntimeLoss) })
			fs.RecoveryMs = sumOf(func(r Result) float64 { return r.Flows[i].RecoveryMeanMs })
			fs.RecoveryMaxMs = sumOf(func(r Result) float64 { return r.Flows[i].RecoveryMaxMs })
			fs.Unrecovered = sumOf(func(r Result) float64 { return float64(r.Flows[i].UnrecoveredFaults) })
		}
		if len(spec.Flows) > i && spec.Flows[i].NearestDst {
			// When seed-dependent topology re-draws paired this flow to
			// different stations across replications, replication 0's
			// destination would misattribute the aggregate to a link the
			// other runs never used. When every replication resolved to
			// the same station, that one real destination stands.
			for _, r := range runs[1:] {
				if r.Flows[i].Dst != runs[0].Flows[i].Dst {
					fs.Dst = -1
					fs.NearestDst = true
					break
				}
			}
		}
		sum.Flows = append(sum.Flows, fs)
	}
	if sum.Routing != "" {
		for i := range runs[0].Stations {
			i := i
			ss := StationSummary{
				Station:   i,
				Forwarded: runner.SummarizeBy(runs, func(r Result) float64 { return float64(r.Stations[i].NetForwarded) }),
				Dropped:   runner.SummarizeBy(runs, func(r Result) float64 { return float64(r.Stations[i].NetDropped) }),
				CtlBytes:  runner.SummarizeBy(runs, func(r Result) float64 { return float64(r.Stations[i].CtlBytes) }),
			}
			if spec.Faults != nil {
				down := runner.SummarizeBy(runs, func(r Result) float64 { return r.Stations[i].DownTime.D().Seconds() })
				crashes := runner.SummarizeBy(runs, func(r Result) float64 { return float64(r.Stations[i].Crashes) })
				ss.DownSecs, ss.Crashes = &down, &crashes
			}
			sum.Stations = append(sum.Stations, ss)
		}
	}
	return sum
}

// runReused executes one replication on a worker's arena: the first
// replication a worker runs builds its network, every later one
// re-seeds it in place. Both paths produce bit-identical Results for a
// given seed (Instance.Reset's contract), so the sweep aggregate does
// not depend on which worker ran which replication.
func runReused(slot **Instance, spec Spec, seed uint64) Result {
	inst := *slot
	if inst == nil {
		s := spec
		s.Seed = seed
		built, err := Build(s)
		if err != nil {
			// Validate passed before the fan-out, so this is unreachable
			// short of a programming error; mirror MustRun's contract.
			panic(fmt.Sprintf("scenario: %v", err))
		}
		*slot = built
		inst = built
	} else if err := inst.Reset(seed); err != nil {
		panic(fmt.Sprintf("scenario: %v", err))
	}
	horizon := inst.Spec.Duration.D()
	inst.Net.Run(horizon)
	return inst.Collect(horizon)
}

// Render formats a replicated scenario summary as the text table the
// CLI prints: one row per flow plus the fairness line, and — for routed
// scenarios — the per-station relay/overhead table.
func Render(s Summary) string {
	var b strings.Builder
	if s.Routing != "" {
		fmt.Fprintf(&b, "Scenario %q — %d replication(s), %s routing\n", s.Name, s.Replications, s.Routing)
	} else {
		fmt.Fprintf(&b, "Scenario %q — %d replication(s)\n", s.Name, s.Replications)
	}
	if s.Exec != nil {
		fmt.Fprintf(&b, "%s — %d window(s), %d cross-region message(s), load balance %.2f\n",
			s.Exec.Plan(), s.Exec.Windows, s.Exec.Messages, s.Exec.LoadBalance)
	}
	fmt.Fprintf(&b, "%-6s %-10s %-12s %-18s %-14s %-8s %s\n",
		"flow", "route", "transport", "goodput [kbit/s]", "retries", "gaps", "hops")
	for _, f := range s.Flows {
		route := fmt.Sprintf("%d→%d", f.Src, f.Dst)
		if f.NearestDst {
			route = fmt.Sprintf("%d→nearest", f.Src)
		}
		fmt.Fprintf(&b, "%-6d %-10s %-12s %8.1f ± %-7.1f %6.1f ± %-5.1f %6.1f %6.1f\n",
			f.Flow, route, f.Transport,
			f.Kbps.Mean, f.Kbps.CI95, f.Retries.Mean, f.Retries.CI95, f.Gaps.Mean, f.Hops.Mean)
	}
	faulted := false
	for _, f := range s.Flows {
		if f.Delivery != nil {
			faulted = true
			break
		}
	}
	if faulted {
		fmt.Fprintf(&b, "graceful degradation under faults:\n")
		fmt.Fprintf(&b, "%-6s %-16s %-14s %-22s %s\n",
			"flow", "delivery", "downtime-loss", "recovery [ms]", "unrecovered")
		for _, f := range s.Flows {
			if f.Delivery == nil {
				continue
			}
			fmt.Fprintf(&b, "%-6d %6.3f ± %-7.3f %8.1f %10.1f (max %6.1f) %8.1f\n",
				f.Flow, f.Delivery.Mean, f.Delivery.CI95, f.DowntimeLoss.Mean,
				f.RecoveryMs.Mean, f.RecoveryMaxMs.Mean, f.Unrecovered.Mean)
		}
	}
	fmt.Fprintf(&b, "Jain fairness: %.3f ± %.3f\n", s.Fairness.Mean, s.Fairness.CI95)
	if s.Routing != "" {
		fmt.Fprintf(&b, "%-8s %-16s %-16s %s\n", "station", "forwarded", "dropped", "ctl [bytes]")
		for _, st := range s.Stations {
			fmt.Fprintf(&b, "%-8d %8.1f ± %-5.1f %8.1f ± %-5.1f %10.1f\n",
				st.Station, st.Forwarded.Mean, st.Forwarded.CI95, st.Dropped.Mean, st.Dropped.CI95, st.CtlBytes.Mean)
		}
	}
	return b.String()
}
