package scenario

import (
	"fmt"
	"math"

	"adhocsim/internal/phy"
	"adhocsim/internal/sim"
)

// Topology kinds.
const (
	// KindExplicit places stations at Positions verbatim.
	KindExplicit = "explicit"
	// KindLine places N stations on the x-axis, spaced by Spacing or by
	// the per-hop Spacings list (the paper's four-station layout).
	KindLine = "line"
	// KindGrid places Rows×Cols stations with Spacing meters between
	// neighbors.
	KindGrid = "grid"
	// KindRing places N stations evenly on a circle of Radius meters.
	KindRing = "ring"
	// KindRandomUniform draws N stations uniformly over a Width×Height
	// field, deterministically from the spec seed.
	KindRandomUniform = "random-uniform"
	// KindClusteredBlocks scatters N stations into Rows×Cols dense
	// clusters ("city blocks") spread over a Width×Height field, each
	// station within Radius meters of its block center. Stations are
	// assigned to blocks consecutively — stations i and i+1 almost
	// always share a block — so index locality is spatial locality,
	// which is what the kernel's SoA hot state and the parallel
	// partition both want at city scale.
	KindClusteredBlocks = "clustered-blocks"
)

// TopologyKinds lists the supported generators.
func TopologyKinds() []string {
	return []string{KindExplicit, KindLine, KindGrid, KindRing, KindRandomUniform, KindClusteredBlocks}
}

// Topology describes where the stations stand. Kind selects the
// generator; the other fields parameterize it (unused fields are
// ignored).
type Topology struct {
	Kind string `json:"kind"`

	// N is the station count for line, ring, random-uniform and
	// clustered-blocks. For explicit it is implied by Positions, for
	// grid by Rows×Cols.
	N int `json:"n,omitempty"`

	// Positions are explicit [x, y] station coordinates in meters.
	Positions [][2]float64 `json:"positions,omitempty"`

	// Spacing is the uniform neighbor distance for line and grid.
	Spacing float64 `json:"spacing,omitempty"`
	// Spacings gives per-hop distances for line (length N-1), overriding
	// Spacing; the paper's 25/82.5/25 m four-station line uses this.
	Spacings []float64 `json:"spacings,omitempty"`

	// Rows and Cols shape the grid, or the block grid of
	// clustered-blocks.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`

	// Radius is the ring's circumradius, or the cluster radius of
	// clustered-blocks, in meters.
	Radius float64 `json:"radius,omitempty"`

	// Width and Height bound the random-uniform field in meters.
	Width  float64 `json:"width,omitempty"`
	Height float64 `json:"height,omitempty"`
}

// Expand generates the topology's station coordinates. Random
// topologies draw from a stream derived from seed, so the same spec
// always lays out the same field.
func (t Topology) Expand(seed uint64) ([]phy.Position, error) {
	switch t.Kind {
	case KindExplicit:
		if len(t.Positions) == 0 {
			return nil, fmt.Errorf("scenario: explicit topology without positions")
		}
		if t.N != 0 && t.N != len(t.Positions) {
			return nil, fmt.Errorf("scenario: explicit n=%d contradicts %d positions", t.N, len(t.Positions))
		}
		out := make([]phy.Position, len(t.Positions))
		for i, p := range t.Positions {
			out[i] = phy.Pos(p[0], p[1])
		}
		return out, nil

	case KindLine:
		n := t.N
		if n == 0 && len(t.Spacings) > 0 {
			n = len(t.Spacings) + 1
		}
		if n < 2 {
			return nil, fmt.Errorf("scenario: line topology needs n ≥ 2, got %d", n)
		}
		hops := t.Spacings
		if len(hops) == 0 {
			if t.Spacing < 0 {
				return nil, fmt.Errorf("scenario: line topology needs non-negative spacing")
			}
			hops = make([]float64, n-1)
			for i := range hops {
				hops[i] = t.Spacing
			}
		}
		if len(hops) != n-1 {
			return nil, fmt.Errorf("scenario: line topology has %d spacings for %d stations (want %d)", len(hops), n, n-1)
		}
		out := make([]phy.Position, n)
		x := 0.0
		out[0] = phy.Pos(0, 0)
		// Zero-length hops are legal (colocated stations); only negative
		// distances are geometry errors.
		for i, h := range hops {
			if h < 0 {
				return nil, fmt.Errorf("scenario: line spacing %d is negative", i)
			}
			x += h
			out[i+1] = phy.Pos(x, 0)
		}
		return out, nil

	case KindGrid:
		if t.Rows < 1 || t.Cols < 1 {
			return nil, fmt.Errorf("scenario: grid topology needs rows ≥ 1 and cols ≥ 1")
		}
		if t.Spacing <= 0 {
			return nil, fmt.Errorf("scenario: grid topology needs positive spacing")
		}
		if t.N != 0 && t.N != t.Rows*t.Cols {
			return nil, fmt.Errorf("scenario: grid n=%d contradicts rows×cols=%d", t.N, t.Rows*t.Cols)
		}
		out := make([]phy.Position, 0, t.Rows*t.Cols)
		for r := 0; r < t.Rows; r++ {
			for c := 0; c < t.Cols; c++ {
				out = append(out, phy.Pos(float64(c)*t.Spacing, float64(r)*t.Spacing))
			}
		}
		return out, nil

	case KindRing:
		if t.N < 3 {
			return nil, fmt.Errorf("scenario: ring topology needs n ≥ 3, got %d", t.N)
		}
		if t.Radius <= 0 {
			return nil, fmt.Errorf("scenario: ring topology needs positive radius")
		}
		out := make([]phy.Position, t.N)
		for i := range out {
			theta := 2 * math.Pi * float64(i) / float64(t.N)
			// Center at (R, R) so coordinates stay non-negative.
			out[i] = phy.Pos(t.Radius*(1+math.Cos(theta)), t.Radius*(1+math.Sin(theta)))
		}
		return out, nil

	case KindRandomUniform:
		if t.N < 1 {
			return nil, fmt.Errorf("scenario: random-uniform topology needs n ≥ 1, got %d", t.N)
		}
		if t.Width <= 0 || t.Height <= 0 {
			return nil, fmt.Errorf("scenario: random-uniform topology needs positive width and height")
		}
		rng := sim.NewSource(seed).Stream("scenario.topology")
		out := make([]phy.Position, t.N)
		for i := range out {
			out[i] = phy.Pos(rng.Float64()*t.Width, rng.Float64()*t.Height)
		}
		return out, nil

	case KindClusteredBlocks:
		if t.N < 1 {
			return nil, fmt.Errorf("scenario: clustered-blocks topology needs n ≥ 1, got %d", t.N)
		}
		if t.Rows < 1 || t.Cols < 1 {
			return nil, fmt.Errorf("scenario: clustered-blocks topology needs rows ≥ 1 and cols ≥ 1")
		}
		if t.Width <= 0 || t.Height <= 0 {
			return nil, fmt.Errorf("scenario: clustered-blocks topology needs positive width and height")
		}
		if t.Radius <= 0 {
			return nil, fmt.Errorf("scenario: clustered-blocks topology needs positive radius")
		}
		blocks := t.Rows * t.Cols
		bw, bh := t.Width/float64(t.Cols), t.Height/float64(t.Rows)
		rng := sim.NewSource(seed).Stream("scenario.topology")
		out := make([]phy.Position, t.N)
		for i := range out {
			// Consecutive assignment: station i belongs to block
			// i·blocks/N, so each block holds one contiguous index range
			// (see the kind's doc comment). Draws are clamped to the
			// field so positions stay non-negative whatever the radius.
			b := i * blocks / t.N
			cx := (float64(b%t.Cols) + 0.5) * bw
			cy := (float64(b/t.Cols) + 0.5) * bh
			x := cx + (2*rng.Float64()-1)*t.Radius
			y := cy + (2*rng.Float64()-1)*t.Radius
			out[i] = phy.Pos(
				math.Min(math.Max(x, 0), t.Width),
				math.Min(math.Max(y, 0), t.Height),
			)
		}
		return out, nil
	}
	return nil, fmt.Errorf("scenario: unknown topology kind %q (want one of %v)", t.Kind, TopologyKinds())
}
