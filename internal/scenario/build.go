package scenario

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"adhocsim/internal/app"
	"adhocsim/internal/faults"
	"adhocsim/internal/mac"
	"adhocsim/internal/medium"
	"adhocsim/internal/node"
	"adhocsim/internal/obs"
	"adhocsim/internal/phy"
	"adhocsim/internal/routing"
	"adhocsim/internal/sim"
	"adhocsim/internal/stats"
	"adhocsim/internal/transport"
)

// Auto-sized parallel region grids are capped at 8 per dimension (64
// regions) — beyond that, regions far outnumber cores and each extra
// boundary adds cross-region traffic — and then shrunk until regions
// average at least 64 stations, so modest fields (a thousand stations)
// keep the compact grids that buy real parallelism while city-scale
// fields get the full 8x8.
const (
	autoMaxRegionsPerDim     = 8
	autoMinStationsPerRegion = 64
)

// Instance is a compiled scenario: a live network plus the workload
// endpoints, ready to run. Callers that need more than Run's metrics —
// extra monitors, mid-run inspection, custom horizons — Build the
// instance and drive it themselves. A finished instance can be
// re-seeded in place with Reset, which is how replication sweeps avoid
// rebuilding the network per replication.
type Instance struct {
	Spec Spec
	Net  *node.Network

	// orig is the defaulted spec before seed-dependent resolution
	// (NearestDst flows unresolved): the template Reset re-resolves
	// against a new seed.
	orig Spec

	// udpSinks/tcpSinks/cbrs/bulks are indexed by flow.
	udpSinks []*app.UDPSink
	tcpSinks []*app.TCPSink
	cbrs     []*app.CBR
	bulks    []*app.Bulk

	// Route control plane (nil/empty without Spec.Routing). routers and
	// nbrThreshDBm are construction-time state that survives Reset;
	// graph is recompiled per seed (random topologies re-draw).
	routers      []*routing.DSDV
	graph        *routing.Graph
	nbrThreshDBm []float64

	// faultSched is the replication's compiled fault schedule; nil
	// without a faults block. Recompiled per seed (churn re-draws).
	faultSched *faults.Schedule

	// pub mirrors the kernel's out-of-band counters into the obs
	// registry; nil (all methods no-ops) unless the spec enables
	// observability. See obs.go for the publishing discipline.
	pub *obsPub
}

// Build validates the spec and compiles it into a live network with all
// sinks attached and all sources started at time zero.
//
// The construction order is part of the determinism contract (and of
// the golden equivalence with the classic experiment runners): stations
// in topology order, then every flow's sink in flow order, then every
// flow's source in flow order.
func Build(spec Spec) (*Instance, error) {
	spec = spec.withDefaults()
	orig := spec
	positions, flows, err := spec.check()
	if err != nil {
		return nil, err
	}
	// graph is nil unless the spec uses static routing on a
	// deterministic topology; wireRouting installs it (and solves its
	// own for the random-topology case the validation skips).
	graph, err := spec.staticReachability(positions, flows)
	if err != nil {
		return nil, err
	}
	// The instance carries the resolved flow matrix (NearestDst pairs
	// bound to this topology draw), so results report real endpoints.
	spec.Flows = flows

	netProfile := spec.CustomProfile
	if netProfile == nil {
		if netProfile, err = profileByName(spec.Profile); err != nil {
			return nil, err
		}
	}

	mss := spec.MSS
	if mss == 0 {
		mss = transport.DefaultMSS
		for _, f := range spec.Flows {
			if f.Transport == TransportTCP {
				mss = f.PacketSize
				break
			}
		}
	}

	opts := []node.Option{node.WithMSS(mss)}
	if netProfile != nil {
		opts = append(opts, node.WithProfile(netProfile))
	}
	// check() already rejected unknown spellings, so this cannot fail.
	schedKind, err := sim.ParseKind(spec.Scheduler)
	if err != nil {
		return nil, err
	}
	if schedKind != sim.KindHeap {
		opts = append(opts, node.WithScheduler(schedKind))
	}
	grid, reach, parOK, err := spec.parallelGrid(positions, netProfile)
	if err != nil {
		return nil, err
	}
	if parOK {
		workers := spec.Parallel.Workers
		if workers == 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		opts = append(opts, node.WithParallel(grid, reach, workers, spec.Parallel.Sequential))
	}
	net := node.NewNetwork(spec.Seed, opts...)

	overrides := make(map[int]StationOverride, len(spec.Stations))
	for _, ov := range spec.Stations {
		overrides[ov.Station] = ov
	}
	inst := &Instance{Spec: spec, Net: net, orig: orig, graph: graph}
	reg := spec.ObsRegistry
	if reg == nil && spec.Obs != nil && spec.Obs.Enabled {
		reg = obs.NewRegistry()
	}
	inst.pub = newObsPub(reg)
	inst.pub.attach(inst)
	for i, pos := range positions {
		params := spec.MAC
		var stProfile *phy.Profile
		if ov, ok := overrides[i]; ok {
			if ov.MAC != nil {
				params = *ov.MAC
			}
			if ov.Profile != "" {
				if stProfile, err = profileByName(ov.Profile); err != nil {
					return nil, err
				}
				// profileByName returns nil for "default" (meaning "let the
				// network choose"), but a per-station override of "default"
				// must actually pin DefaultProfile — otherwise it would
				// silently inherit the network-wide profile instead.
				if stProfile == nil {
					stProfile = phy.DefaultProfile()
				}
			}
		}
		cfg, err := params.Config()
		if err != nil {
			return nil, err
		}
		if spec.MACHook != nil {
			spec.MACHook(i, &cfg)
		}
		net.AddStationProfile(pos, cfg, stProfile)
		if spec.Routing != nil {
			inst.nbrThreshDBm = append(inst.nbrThreshDBm, neighborThreshold(spec.Routing, cfg, stProfile, net.Profile))
		}
	}

	if err := inst.wireRouting(positions, false); err != nil {
		return nil, err
	}
	inst.wireTracer()
	inst.attachWorkload()
	if err := inst.installFaults(positions); err != nil {
		return nil, err
	}
	return inst, nil
}

// parallelGrid resolves the spec's parallel block against a concrete
// topology draw into the region grid and the field's relevance radius.
// ok is false when the parallel kernel does not apply and the build
// falls back to the sequential kernel: no parallel block, a mobility
// model (a moving station would change regions), or a degenerate radio
// model with no finite relevance radius (the lookahead would have no
// distance bound).
//
// Explicit Cols/Rows are honored exactly as requested (any grid is
// sound — the lookahead adapts; see internal/phy/lookahead.go).
// Auto-sized dimensions target load balance: regions no smaller than
// the carrier-sense range (below it stations mostly contend with
// neighbors in other regions and the partition buys nothing), capped
// per dimension and held to the station-density floor documented at
// autoMaxRegionsPerDim. Small fields thus fit a single region, which
// runs the identical window protocol on one scheduler. The partitioner
// then places the cut lines: balanced occupancy quantiles by default,
// uniform cells on request.
func (s Spec) parallelGrid(positions []phy.Position, netProfile *phy.Profile) (grid phy.RegionGrid, reach float64, ok bool, err error) {
	p := s.Parallel
	if p == nil || s.Mobility != nil {
		return phy.RegionGrid{}, 0, false, nil
	}
	profiles := []*phy.Profile{netProfile}
	if netProfile == nil {
		profiles[0] = phy.DefaultProfile()
	}
	for _, ov := range s.Stations {
		if ov.Profile == "" {
			continue
		}
		sp, err := profileByName(ov.Profile)
		if err != nil {
			return phy.RegionGrid{}, 0, false, err
		}
		if sp == nil {
			sp = phy.DefaultProfile()
		}
		profiles = append(profiles, sp)
	}
	reach = medium.FieldReach(profiles)
	if math.IsInf(reach, 1) {
		return phy.RegionGrid{}, 0, false, nil
	}
	cols, rows := p.Cols, p.Rows
	if cols == 0 || rows == 0 {
		minEdge := 0.0
		for _, pr := range profiles {
			if d := pr.CarrierSenseRange(); d > minEdge {
				minEdge = d
			}
		}
		spanX, spanY := fieldSpans(positions)
		autoC, autoR := cols == 0, rows == 0
		if autoC {
			cols = autoRegions(spanX, minEdge)
		}
		if autoR {
			rows = autoRegions(spanY, minEdge)
		}
		// Density floor: shrink auto-sized dimensions (never explicit
		// ones) until regions average autoMinStationsPerRegion stations,
		// taking from the larger dimension first.
		maxRegions := len(positions) / autoMinStationsPerRegion
		if maxRegions < 1 {
			maxRegions = 1
		}
		for cols*rows > maxRegions {
			if autoC && cols > 1 && (cols >= rows || !(autoR && rows > 1)) {
				cols--
			} else if autoR && rows > 1 {
				rows--
			} else {
				break
			}
		}
	}
	if p.Partitioner == PartitionerUniform {
		grid = phy.FitRegionGrid(positions, cols, rows)
	} else {
		grid = phy.FitWeightedRegionGrid(positions, activityWeights(s.Flows, len(positions)), cols, rows)
	}
	return grid, reach, true, nil
}

// activityWeights is the balanced partitioner's station weighting. Raw
// station count is a poor predictor of event load when traffic is
// concentrated — on clustered-blocks-100k every flow terminates on the
// field's left edge, and count-quantile cuts are indistinguishable from
// uniform cells there — so each station weighs 1 plus an equal share of
// one station-mass per flow endpoint it hosts. Half the total weight
// then follows the workload: cut lines crowd around the flow endpoints
// (where the transmissions, deferrals and arrival edges concentrate)
// and idle expanses merge into wide regions. Weights derive from the
// resolved flow matrix, a pure function of the spec and its seed. Nil
// (unit weights) when the spec has no flows.
func activityWeights(flows []Flow, n int) []float64 {
	ends := 0
	for _, f := range flows {
		if f.Src >= 0 && f.Src < n {
			ends++
		}
		if f.Dst >= 0 && f.Dst < n {
			ends++
		}
	}
	if ends == 0 {
		return nil
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	share := float64(n) / float64(ends)
	for _, f := range flows {
		if f.Src >= 0 && f.Src < n {
			w[f.Src] += share
		}
		if f.Dst >= 0 && f.Dst < n {
			w[f.Dst] += share
		}
	}
	return w
}

// fieldSpans returns the bounding-box extents of the station field.
func fieldSpans(positions []phy.Position) (spanX, spanY float64) {
	if len(positions) == 0 {
		return 0, 0
	}
	minX, maxX := positions[0].X, positions[0].X
	minY, maxY := positions[0].Y, positions[0].Y
	for _, p := range positions[1:] {
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	return maxX - minX, maxY - minY
}

// autoRegions sizes one auto-fitted grid dimension: as many regions as
// carrier-sense ranges fit in the span, at least one, at most the cap.
func autoRegions(span, minEdge float64) int {
	if !(minEdge > 0) || !(span > 0) {
		return 1
	}
	n := int(math.Floor(span / minEdge))
	if n < 1 {
		n = 1
	}
	if n > autoMaxRegionsPerDim {
		n = autoMaxRegionsPerDim
	}
	return n
}

// neighborThreshold derives one station's dsdv gray-zone filter: the
// received power below which an advertisement does not establish its
// sender as a neighbor. It is the decode sensitivity of the station's
// unicast data rate plus a fade margin — a neighbor admitted under it
// can, at median fade, actually carry the data frames that will be
// routed through it, not just the 1 Mbit/s broadcast that advertised
// it.
func neighborThreshold(rp *RoutingParams, cfg mac.Config, stProfile, netProfile *phy.Profile) float64 {
	p := stProfile
	if p == nil {
		p = netProfile
	}
	rate := cfg.DataRate
	if rate == 0 {
		rate = phy.Rate11
	}
	return p.SensitivityDBm[rate.Index()] + rp.NeighborMarginDB
}

// wireRouting installs the spec's route control plane over the built
// stations: compiling and installing static routes, or creating
// (build) / re-seeding (reset) the per-station DSDV instances. Called
// from Build and Reset between network construction and workload
// attachment, so control-plane t=0 events schedule in the same order
// on both paths — part of the Reset determinism contract.
func (inst *Instance) wireRouting(positions []phy.Position, reset bool) error {
	rp := inst.Spec.Routing
	if rp == nil {
		return nil
	}
	if reset {
		switch rp.Protocol {
		case routing.ProtocolDSDV:
			// The routers were created at Build (their stack/MAC
			// subscriptions are permanent); a new run just re-seeds them.
			for _, r := range inst.routers {
				r.Reset()
			}
			return nil
		case routing.ProtocolStatic:
			// Only random topologies re-draw positions under a new seed;
			// everywhere else the graph — and the routes already sitting
			// in the stacks, which survive Stack.Reset — are exactly what
			// a recompile would produce, so a Reset reuses them.
			if inst.graph != nil && inst.Spec.Topology.Kind != KindRandomUniform {
				return nil
			}
		}
	}
	net := inst.Net
	nodes := make([]routing.Node, len(net.Stations))
	for i, st := range net.Stations {
		nodes[i] = routing.Node{
			Addr: st.Addr(), HW: st.HWAddr(), Pos: positions[i],
			Stack: st.Net, MAC: st.MAC,
		}
	}
	switch rp.Protocol {
	case routing.ProtocolStatic:
		// Random topologies (exempt from reachability validation, so no
		// pre-solved graph) and random-topology Resets solve here; the
		// deterministic case installs the graph validation already built.
		if inst.graph == nil || (reset && inst.Spec.Topology.Kind == KindRandomUniform) {
			inst.graph = routing.NewGraph(positions, rp.linkRange(net.Profile, inst.Spec.MAC))
		}
		inst.graph.Install(nodes)
	case routing.ProtocolDSDV:
		inst.routers = make([]*routing.DSDV, len(nodes))
		for i := range nodes {
			// Each router's timers belong to its own station's scheduler
			// (the region scheduler in parallel mode).
			inst.routers[i] = routing.New(net.Stations[i].Sched, net.Source, nodes[i], nodes, routing.DSDVConfig{
				AdvertInterval: rp.AdvertInterval.D(),
				SettleDelay:    rp.SettleDelay.D(),
				MinNeighborDBm: inst.nbrThreshDBm[i],
			})
		}
		for _, r := range inst.routers {
			r.Start()
		}
	}
	return nil
}

// Routers exposes the per-station DSDV instances (indexed like
// Net.Stations) for tests and instrumentation; nil unless the spec
// selected dsdv routing.
func (inst *Instance) Routers() []*routing.DSDV { return inst.routers }

// Graph exposes the compiled static connectivity graph; nil unless the
// spec selected static routing.
func (inst *Instance) Graph() *routing.Graph { return inst.graph }

// attachWorkload wires one run's measurement endpoints and traffic
// sources into the (fresh or just-Reset) network, in the order that is
// part of the determinism contract: every flow's sink in flow order,
// then every flow's source in flow order, then mobility. Build and
// Reset share it, which is what makes a Reset-then-run schedule the
// same t=0 event sequence as a build-then-run.
func (inst *Instance) attachWorkload() {
	spec, net := inst.Spec, inst.Net
	inst.udpSinks = make([]*app.UDPSink, len(spec.Flows))
	inst.tcpSinks = make([]*app.TCPSink, len(spec.Flows))
	inst.cbrs = make([]*app.CBR, len(spec.Flows))
	inst.bulks = make([]*app.Bulk, len(spec.Flows))
	for i, f := range spec.Flows {
		dst := net.Stations[f.Dst]
		switch f.Transport {
		case TransportUDP:
			sink := &app.UDPSink{}
			sink.ListenUDP(dst, f.Port)
			inst.udpSinks[i] = sink
		case TransportTCP:
			sink := &app.TCPSink{}
			sink.ListenTCP(dst, f.Port)
			inst.tcpSinks[i] = sink
		}
	}
	for i, f := range spec.Flows {
		src, dst := net.Stations[f.Src], net.Stations[f.Dst]
		switch f.Transport {
		case TransportUDP:
			cbr := app.NewCBR(net, src, dst.Addr(), f.Port, f.PacketSize, f.Interval.D())
			cbr.Start()
			inst.cbrs[i] = cbr
		case TransportTCP:
			inst.bulks[i] = app.StartBulk(net, src, dst.Addr(), f.Port, f.PacketSize)
		}
	}

	if m := spec.Mobility; m != nil {
		inst.startMobility(m)
	}
}

// Reset re-seeds the instance in place for a new replication, reusing
// the built network instead of compiling the spec from scratch: the
// topology is re-drawn (and any NearestDst flows re-paired) under the
// new seed, every protocol layer returns to its just-built state via
// node.Network.Reset, and fresh sinks and sources attach at time zero.
// The result of Reset(s) followed by Run is bit-identical to
// Build-with-seed-s followed by Run; TestReplicateReuseMatchesRebuild
// pins this for the preset library.
//
// Station count, MAC configuration and radio profiles come from the
// spec and do not depend on the seed, so they survive — that reuse is
// the point. Specs with a MACHook are the one exception (the hook may
// close over stateful objects like rate controllers that Reset cannot
// reach); scenario.Replicate rebuilds those instead.
func (inst *Instance) Reset(seed uint64) error {
	s := inst.orig
	s.Seed = seed
	positions, flows, err := s.check()
	if err != nil {
		return err
	}
	s.Flows = flows
	inst.Net.Reset(seed, positions)
	// The kernels' counters just rewound to zero; rebase the publisher
	// so the next publish reports only this replication's growth.
	inst.pub.rebase(inst)
	inst.Spec = s
	if err := inst.wireRouting(positions, true); err != nil {
		return err
	}
	inst.wireTracer()
	inst.attachWorkload()
	return inst.installFaults(positions)
}

// startMobility wires the movement model into the scheduler.
func (inst *Instance) startMobility(m *Mobility) {
	w := node.DefaultWaypoint()
	if m.Width > 0 {
		w.Width = m.Width
	}
	if m.Height > 0 {
		w.Height = m.Height
	}
	if m.MinSpeed > 0 {
		w.MinSpeed = m.MinSpeed
	}
	if m.MaxSpeed > 0 {
		w.MaxSpeed = m.MaxSpeed
	}
	if m.Pause > 0 {
		w.Pause = m.Pause.D()
	}
	if m.Tick > 0 {
		w.Tick = m.Tick.D()
	}
	movers := m.Stations
	if len(movers) == 0 {
		movers = make([]int, len(inst.Net.Stations))
		for i := range movers {
			movers[i] = i
		}
	}
	for _, i := range movers {
		w.Drive(inst.Net, inst.Net.Stations[i])
	}
}

// FlowResult reports one flow's end-to-end outcome.
type FlowResult struct {
	Flow      int       `json:"flow"`
	Src       int       `json:"src"`
	Dst       int       `json:"dst"`
	Transport Transport `json:"transport"`

	// AppSent counts UDP datagrams handed to the transport, or TCP
	// segments transmitted (including retransmissions).
	AppSent uint64 `json:"app_sent"`
	// Received counts UDP datagrams delivered to the sink; for TCP it is
	// delivered bytes divided by the flow packet size.
	Received uint64 `json:"received"`
	// Bytes is the application payload delivered end to end.
	Bytes uint64 `json:"bytes"`
	// Gaps and Reorders come from the UDP sink's sequence accounting
	// (zero for TCP, which repairs loss internally).
	Gaps     uint64 `json:"gaps"`
	Reorders uint64 `json:"reorders"`

	// GoodputMbps and GoodputKbps are the delivered application rate
	// over the horizon.
	GoodputMbps float64 `json:"goodput_mbps"`
	GoodputKbps float64 `json:"goodput_kbps"`

	// Sender MAC counters: the mechanism-level story behind the goodput.
	// The MAC keeps them per station, not per flow, so flows sharing a
	// source station report the same (combined) values.
	Retries       uint64 `json:"retries"`
	TxDrops       uint64 `json:"tx_drops"`
	EIFSDeferrals uint64 `json:"eifs_deferrals"`

	// Hops is the MAC hop count the flow's most recently delivered
	// packet actually traveled (TTL accounting at the destination): 1
	// for a direct link, 0 when nothing was delivered end to end.
	Hops int `json:"hops"`

	// Graceful-degradation metrics, populated only for UDP flows of
	// faulted runs (a "faults" block in the spec). Attempts counts every
	// datagram the source offered, delivered or not; DeliveryRatio is
	// Received/Attempts. DowntimeLoss is the share of the loss
	// attributable to a crashed endpoint: sends the source's own dead
	// MAC refused, plus offered instants while the destination was down.
	// RecoveredFaults/RecoveryMeanMs/RecoveryMaxMs summarize route
	// recovery: each crash or partition onset starts a clock that the
	// flow's next delivery stops; UnrecoveredFaults counts clocks still
	// running at the end of the run.
	Attempts          uint64  `json:"attempts,omitempty"`
	DeliveryRatio     float64 `json:"delivery_ratio,omitempty"`
	DowntimeLoss      uint64  `json:"downtime_loss,omitempty"`
	RecoveredFaults   uint64  `json:"recovered_faults,omitempty"`
	UnrecoveredFaults int     `json:"unrecovered_faults,omitempty"`
	RecoveryMeanMs    float64 `json:"recovery_mean_ms,omitempty"`
	RecoveryMaxMs     float64 `json:"recovery_max_ms,omitempty"`
}

// StationResult reports one station's MAC and network-layer counters
// after the run.
type StationResult struct {
	Station       int    `json:"station"`
	FramesSent    uint64 `json:"frames_sent"`
	FramesDecoded uint64 `json:"frames_decoded"`
	Retries       uint64 `json:"retries"`
	TxDrops       uint64 `json:"tx_drops"`
	EIFSDeferrals uint64 `json:"eifs_deferrals"`
	PHYErrors     uint64 `json:"phy_errors"`

	// Network-layer counters (network.Stack): locally originated
	// packets, locally delivered packets, packets relayed for others,
	// and packets dropped (no route, TTL expiry, queue-full, decode).
	// Forwarding drops were invisible to every experiment before these.
	NetSent      uint64 `json:"net_sent"`
	NetReceived  uint64 `json:"net_received"`
	NetForwarded uint64 `json:"net_forwarded"`
	NetDropped   uint64 `json:"net_dropped"`

	// Control-plane overhead (dsdv): advertisement broadcasts sent and
	// their network-layer bytes. Zero for static routing, which spends
	// no airtime.
	CtlAdverts uint64 `json:"ctl_adverts,omitempty"`
	CtlBytes   uint64 `json:"ctl_bytes,omitempty"`

	// Up/down accounting under faults (populated only for faulted
	// runs): time spent up and crashed over the horizon, and the number
	// of crash windows that hit the station.
	UpTime   Duration `json:"up_time,omitempty"`
	DownTime Duration `json:"down_time,omitempty"`
	Crashes  int      `json:"crashes,omitempty"`
}

// Result is one scenario run's complete outcome.
type Result struct {
	Name     string   `json:"name"`
	Seed     uint64   `json:"seed"`
	Duration Duration `json:"duration"`
	// Routing names the route control plane ("static", "dsdv"), empty
	// for classic single-hop scenarios.
	Routing string `json:"routing,omitempty"`

	Flows    []FlowResult    `json:"flows"`
	Stations []StationResult `json:"stations"`

	// Fairness is Jain's index over the per-flow goodputs: the scalar
	// the paper's four-station figures are really about.
	Fairness float64 `json:"fairness"`
}

// Collect gathers the instance's metrics over the given horizon. It
// does not advance the simulation; call it after driving Net yourself.
func (inst *Instance) Collect(horizon time.Duration) Result {
	// Flush the kernel counters into the obs registry (no-op with obs
	// off). Strictly read-only with respect to the Result below: a run
	// reports byte-identical metrics whether or not anyone is watching.
	inst.pub.publish(inst)
	res := Result{
		Name:     inst.Spec.Name,
		Seed:     inst.Spec.Seed,
		Duration: Duration(horizon),
	}
	if inst.Spec.Routing != nil {
		res.Routing = inst.Spec.Routing.Protocol
	}
	res.Flows = make([]FlowResult, 0, len(inst.Spec.Flows))
	res.Stations = make([]StationResult, 0, len(inst.Net.Stations))
	kbps := make([]float64, 0, len(inst.Spec.Flows))
	for i, f := range inst.Spec.Flows {
		src := inst.Net.Stations[f.Src]
		fr := FlowResult{
			Flow: i, Src: f.Src, Dst: f.Dst, Transport: f.Transport,
			Retries:       src.MAC.Counters.Retries(),
			TxDrops:       src.MAC.Counters.TxDrops,
			EIFSDeferrals: src.MAC.Counters.EIFSDeferrals,
		}
		switch f.Transport {
		case TransportUDP:
			sink := inst.udpSinks[i]
			fr.AppSent = inst.cbrs[i].Sent
			fr.Received = sink.Received
			fr.Bytes = sink.Bytes
			fr.Gaps = sink.Gaps
			fr.Reorders = sink.Reorders
			fr.GoodputMbps = sink.ThroughputMbps(horizon)
		case TransportTCP:
			sink := inst.tcpSinks[i]
			fr.AppSent = inst.bulks[i].Conn().Stats.SegsSent
			fr.Bytes = sink.Bytes
			fr.Received = sink.Bytes / uint64(f.PacketSize)
			fr.GoodputMbps = sink.ThroughputMbps(horizon)
		}
		fr.GoodputKbps = stats.Kbps(fr.Bytes, horizon)
		// The stack only tracks TTL-derived hop counts under a routing
		// control plane (see network.Stack.HopsFrom); without one every
		// delivery is by definition direct.
		if inst.Spec.Routing != nil {
			fr.Hops = inst.Net.Stations[f.Dst].Net.HopsFrom(src.Addr())
		} else if fr.Received > 0 {
			fr.Hops = 1
		}
		inst.collectFaultFlow(&fr, i)
		res.Flows = append(res.Flows, fr)
		kbps = append(kbps, fr.GoodputKbps)
	}
	var upDown []faults.UpDown
	if inst.faultSched != nil {
		upDown = inst.faultSched.StationUpDown()
	}
	for i, st := range inst.Net.Stations {
		sr := StationResult{
			Station:       i,
			FramesSent:    st.Radio.FramesSent,
			FramesDecoded: st.Radio.FramesDecoded,
			Retries:       st.MAC.Counters.Retries(),
			TxDrops:       st.MAC.Counters.TxDrops,
			EIFSDeferrals: st.MAC.Counters.EIFSDeferrals,
			PHYErrors:     st.MAC.Counters.PHYErrors,
			NetSent:       st.Net.Sent,
			NetReceived:   st.Net.Received,
			NetForwarded:  st.Net.Forwarded,
			NetDropped:    st.Net.Dropped,
		}
		if inst.routers != nil {
			sr.CtlAdverts = inst.routers[i].Counters.AdvertsSent
			sr.CtlBytes = inst.routers[i].Counters.ControlBytes
		}
		if upDown != nil {
			sr.DownTime = Duration(upDown[i].Down)
			sr.UpTime = Duration(horizon - upDown[i].Down)
			sr.Crashes = upDown[i].Crashes
		}
		res.Stations = append(res.Stations, sr)
	}
	res.Fairness = stats.JainFairness(kbps...)
	return res
}

// Run compiles the spec, drives the simulation for the spec's horizon,
// and returns the per-flow and per-station metrics.
func Run(spec Spec) (Result, error) {
	inst, err := Build(spec)
	if err != nil {
		return Result{}, err
	}
	horizon := inst.Spec.Duration.D()
	inst.Net.Run(horizon)
	return inst.Collect(horizon), nil
}

// RunProgress is Run with an in-run progress meter for long city-scale
// runs: the horizon is driven in ~1% slices and tick is called after
// each with the simulated time reached and the events fired so far.
// Slicing is invisible to the simulation — the scheduler runs exactly
// the events at or before each target either way — so the result is
// bit-identical to Run's.
func RunProgress(spec Spec, tick func(now, horizon time.Duration, fired uint64)) (Result, error) {
	res, _, err := RunProgressExec(spec, tick)
	return res, err
}

// RunProgressExec is RunProgress returning also the parallel kernel's
// execution stats (nil when the build fell back to the sequential
// kernel), for callers that surface the plan and counters alongside
// the result — the CLI's metered single runs.
func RunProgressExec(spec Spec, tick func(now, horizon time.Duration, fired uint64)) (Result, *ExecSummary, error) {
	inst, err := Build(spec)
	if err != nil {
		return Result{}, nil, err
	}
	horizon := inst.Spec.Duration.D()
	const steps = 100
	for i := 1; i <= steps; i++ {
		target := time.Duration(int64(horizon) * int64(i) / steps)
		inst.Net.Run(target - inst.Net.Now())
		// Between slices no region worker runs, so this is a safe point
		// to freshen a live /metrics view mid-run.
		inst.pub.publish(inst)
		tick(inst.Net.Now(), horizon, inst.Net.Fired())
	}
	return inst.Collect(horizon), inst.ExecStats(), nil
}

// MustRun is Run for presets that are valid by construction; it panics
// on error.
func MustRun(spec Spec) Result {
	res, err := Run(spec)
	if err != nil {
		panic(fmt.Sprintf("scenario: %v", err))
	}
	return res
}
