package scenario

import (
	"fmt"
	"time"

	"adhocsim/internal/app"
	"adhocsim/internal/node"
	"adhocsim/internal/phy"
	"adhocsim/internal/stats"
	"adhocsim/internal/transport"
)

// Instance is a compiled scenario: a live network plus the workload
// endpoints, ready to run. Callers that need more than Run's metrics —
// extra monitors, mid-run inspection, custom horizons — Build the
// instance and drive it themselves. A finished instance can be
// re-seeded in place with Reset, which is how replication sweeps avoid
// rebuilding the network per replication.
type Instance struct {
	Spec Spec
	Net  *node.Network

	// orig is the defaulted spec before seed-dependent resolution
	// (NearestDst flows unresolved): the template Reset re-resolves
	// against a new seed.
	orig Spec

	// udpSinks/tcpSinks/cbrs/bulks are indexed by flow.
	udpSinks []*app.UDPSink
	tcpSinks []*app.TCPSink
	cbrs     []*app.CBR
	bulks    []*app.Bulk
}

// Build validates the spec and compiles it into a live network with all
// sinks attached and all sources started at time zero.
//
// The construction order is part of the determinism contract (and of
// the golden equivalence with the classic experiment runners): stations
// in topology order, then every flow's sink in flow order, then every
// flow's source in flow order.
func Build(spec Spec) (*Instance, error) {
	spec = spec.withDefaults()
	orig := spec
	positions, flows, err := spec.check()
	if err != nil {
		return nil, err
	}
	// The instance carries the resolved flow matrix (NearestDst pairs
	// bound to this topology draw), so results report real endpoints.
	spec.Flows = flows

	netProfile := spec.CustomProfile
	if netProfile == nil {
		if netProfile, err = profileByName(spec.Profile); err != nil {
			return nil, err
		}
	}

	mss := spec.MSS
	if mss == 0 {
		mss = transport.DefaultMSS
		for _, f := range spec.Flows {
			if f.Transport == TransportTCP {
				mss = f.PacketSize
				break
			}
		}
	}

	opts := []node.Option{node.WithMSS(mss)}
	if netProfile != nil {
		opts = append(opts, node.WithProfile(netProfile))
	}
	net := node.NewNetwork(spec.Seed, opts...)

	overrides := make(map[int]StationOverride, len(spec.Stations))
	for _, ov := range spec.Stations {
		overrides[ov.Station] = ov
	}
	for i, pos := range positions {
		params := spec.MAC
		var stProfile *phy.Profile
		if ov, ok := overrides[i]; ok {
			if ov.MAC != nil {
				params = *ov.MAC
			}
			if ov.Profile != "" {
				if stProfile, err = profileByName(ov.Profile); err != nil {
					return nil, err
				}
				// profileByName returns nil for "default" (meaning "let the
				// network choose"), but a per-station override of "default"
				// must actually pin DefaultProfile — otherwise it would
				// silently inherit the network-wide profile instead.
				if stProfile == nil {
					stProfile = phy.DefaultProfile()
				}
			}
		}
		cfg, err := params.Config()
		if err != nil {
			return nil, err
		}
		if spec.MACHook != nil {
			spec.MACHook(i, &cfg)
		}
		net.AddStationProfile(pos, cfg, stProfile)
	}

	inst := &Instance{Spec: spec, Net: net, orig: orig}
	inst.attachWorkload()
	return inst, nil
}

// attachWorkload wires one run's measurement endpoints and traffic
// sources into the (fresh or just-Reset) network, in the order that is
// part of the determinism contract: every flow's sink in flow order,
// then every flow's source in flow order, then mobility. Build and
// Reset share it, which is what makes a Reset-then-run schedule the
// same t=0 event sequence as a build-then-run.
func (inst *Instance) attachWorkload() {
	spec, net := inst.Spec, inst.Net
	inst.udpSinks = make([]*app.UDPSink, len(spec.Flows))
	inst.tcpSinks = make([]*app.TCPSink, len(spec.Flows))
	inst.cbrs = make([]*app.CBR, len(spec.Flows))
	inst.bulks = make([]*app.Bulk, len(spec.Flows))
	for i, f := range spec.Flows {
		dst := net.Stations[f.Dst]
		switch f.Transport {
		case TransportUDP:
			sink := &app.UDPSink{}
			sink.ListenUDP(dst, f.Port)
			inst.udpSinks[i] = sink
		case TransportTCP:
			sink := &app.TCPSink{}
			sink.ListenTCP(dst, f.Port)
			inst.tcpSinks[i] = sink
		}
	}
	for i, f := range spec.Flows {
		src, dst := net.Stations[f.Src], net.Stations[f.Dst]
		switch f.Transport {
		case TransportUDP:
			cbr := app.NewCBR(net, src, dst.Addr(), f.Port, f.PacketSize, f.Interval.D())
			cbr.Start()
			inst.cbrs[i] = cbr
		case TransportTCP:
			inst.bulks[i] = app.StartBulk(net, src, dst.Addr(), f.Port, f.PacketSize)
		}
	}

	if m := spec.Mobility; m != nil {
		inst.startMobility(m)
	}
}

// Reset re-seeds the instance in place for a new replication, reusing
// the built network instead of compiling the spec from scratch: the
// topology is re-drawn (and any NearestDst flows re-paired) under the
// new seed, every protocol layer returns to its just-built state via
// node.Network.Reset, and fresh sinks and sources attach at time zero.
// The result of Reset(s) followed by Run is bit-identical to
// Build-with-seed-s followed by Run; TestReplicateReuseMatchesRebuild
// pins this for the preset library.
//
// Station count, MAC configuration and radio profiles come from the
// spec and do not depend on the seed, so they survive — that reuse is
// the point. Specs with a MACHook are the one exception (the hook may
// close over stateful objects like rate controllers that Reset cannot
// reach); scenario.Replicate rebuilds those instead.
func (inst *Instance) Reset(seed uint64) error {
	s := inst.orig
	s.Seed = seed
	positions, flows, err := s.check()
	if err != nil {
		return err
	}
	s.Flows = flows
	inst.Net.Reset(seed, positions)
	inst.Spec = s
	inst.attachWorkload()
	return nil
}

// startMobility wires the movement model into the scheduler.
func (inst *Instance) startMobility(m *Mobility) {
	w := node.DefaultWaypoint()
	if m.Width > 0 {
		w.Width = m.Width
	}
	if m.Height > 0 {
		w.Height = m.Height
	}
	if m.MinSpeed > 0 {
		w.MinSpeed = m.MinSpeed
	}
	if m.MaxSpeed > 0 {
		w.MaxSpeed = m.MaxSpeed
	}
	if m.Pause > 0 {
		w.Pause = m.Pause.D()
	}
	if m.Tick > 0 {
		w.Tick = m.Tick.D()
	}
	movers := m.Stations
	if len(movers) == 0 {
		movers = make([]int, len(inst.Net.Stations))
		for i := range movers {
			movers[i] = i
		}
	}
	for _, i := range movers {
		w.Drive(inst.Net, inst.Net.Stations[i])
	}
}

// FlowResult reports one flow's end-to-end outcome.
type FlowResult struct {
	Flow      int       `json:"flow"`
	Src       int       `json:"src"`
	Dst       int       `json:"dst"`
	Transport Transport `json:"transport"`

	// AppSent counts UDP datagrams handed to the transport, or TCP
	// segments transmitted (including retransmissions).
	AppSent uint64 `json:"app_sent"`
	// Received counts UDP datagrams delivered to the sink; for TCP it is
	// delivered bytes divided by the flow packet size.
	Received uint64 `json:"received"`
	// Bytes is the application payload delivered end to end.
	Bytes uint64 `json:"bytes"`
	// Gaps and Reorders come from the UDP sink's sequence accounting
	// (zero for TCP, which repairs loss internally).
	Gaps     uint64 `json:"gaps"`
	Reorders uint64 `json:"reorders"`

	// GoodputMbps and GoodputKbps are the delivered application rate
	// over the horizon.
	GoodputMbps float64 `json:"goodput_mbps"`
	GoodputKbps float64 `json:"goodput_kbps"`

	// Sender MAC counters: the mechanism-level story behind the goodput.
	// The MAC keeps them per station, not per flow, so flows sharing a
	// source station report the same (combined) values.
	Retries       uint64 `json:"retries"`
	TxDrops       uint64 `json:"tx_drops"`
	EIFSDeferrals uint64 `json:"eifs_deferrals"`
}

// StationResult reports one station's MAC counters after the run.
type StationResult struct {
	Station       int    `json:"station"`
	FramesSent    uint64 `json:"frames_sent"`
	FramesDecoded uint64 `json:"frames_decoded"`
	Retries       uint64 `json:"retries"`
	TxDrops       uint64 `json:"tx_drops"`
	EIFSDeferrals uint64 `json:"eifs_deferrals"`
	PHYErrors     uint64 `json:"phy_errors"`
}

// Result is one scenario run's complete outcome.
type Result struct {
	Name     string   `json:"name"`
	Seed     uint64   `json:"seed"`
	Duration Duration `json:"duration"`

	Flows    []FlowResult    `json:"flows"`
	Stations []StationResult `json:"stations"`

	// Fairness is Jain's index over the per-flow goodputs: the scalar
	// the paper's four-station figures are really about.
	Fairness float64 `json:"fairness"`
}

// Collect gathers the instance's metrics over the given horizon. It
// does not advance the simulation; call it after driving Net yourself.
func (inst *Instance) Collect(horizon time.Duration) Result {
	res := Result{
		Name:     inst.Spec.Name,
		Seed:     inst.Spec.Seed,
		Duration: Duration(horizon),
	}
	kbps := make([]float64, 0, len(inst.Spec.Flows))
	for i, f := range inst.Spec.Flows {
		src := inst.Net.Stations[f.Src]
		fr := FlowResult{
			Flow: i, Src: f.Src, Dst: f.Dst, Transport: f.Transport,
			Retries:       src.MAC.Counters.Retries(),
			TxDrops:       src.MAC.Counters.TxDrops,
			EIFSDeferrals: src.MAC.Counters.EIFSDeferrals,
		}
		switch f.Transport {
		case TransportUDP:
			sink := inst.udpSinks[i]
			fr.AppSent = inst.cbrs[i].Sent
			fr.Received = sink.Received
			fr.Bytes = sink.Bytes
			fr.Gaps = sink.Gaps
			fr.Reorders = sink.Reorders
			fr.GoodputMbps = sink.ThroughputMbps(horizon)
		case TransportTCP:
			sink := inst.tcpSinks[i]
			fr.AppSent = inst.bulks[i].Conn().Stats.SegsSent
			fr.Bytes = sink.Bytes
			fr.Received = sink.Bytes / uint64(f.PacketSize)
			fr.GoodputMbps = sink.ThroughputMbps(horizon)
		}
		fr.GoodputKbps = stats.Kbps(fr.Bytes, horizon)
		res.Flows = append(res.Flows, fr)
		kbps = append(kbps, fr.GoodputKbps)
	}
	for i, st := range inst.Net.Stations {
		res.Stations = append(res.Stations, StationResult{
			Station:       i,
			FramesSent:    st.Radio.FramesSent,
			FramesDecoded: st.Radio.FramesDecoded,
			Retries:       st.MAC.Counters.Retries(),
			TxDrops:       st.MAC.Counters.TxDrops,
			EIFSDeferrals: st.MAC.Counters.EIFSDeferrals,
			PHYErrors:     st.MAC.Counters.PHYErrors,
		})
	}
	res.Fairness = stats.JainFairness(kbps...)
	return res
}

// Run compiles the spec, drives the simulation for the spec's horizon,
// and returns the per-flow and per-station metrics.
func Run(spec Spec) (Result, error) {
	inst, err := Build(spec)
	if err != nil {
		return Result{}, err
	}
	horizon := inst.Spec.Duration.D()
	inst.Net.Run(horizon)
	return inst.Collect(horizon), nil
}

// MustRun is Run for presets that are valid by construction; it panics
// on error.
func MustRun(spec Spec) Result {
	res, err := Run(spec)
	if err != nil {
		panic(fmt.Sprintf("scenario: %v", err))
	}
	return res
}
