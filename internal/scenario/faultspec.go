package scenario

import (
	"fmt"

	"adhocsim/internal/faults"
)

// FaultCrash is the JSON form of faults.Crash: station down at "at",
// back up at "until" (omitted = stays down).
type FaultCrash struct {
	Station int      `json:"station"`
	At      Duration `json:"at"`
	Until   Duration `json:"until,omitempty"`
}

// FaultDegradation is the JSON form of faults.Degradation: the
// station's shadowing deepens by offset_db (≤ 0) during [from, to).
type FaultDegradation struct {
	Station  int      `json:"station"`
	From     Duration `json:"from"`
	To       Duration `json:"to"`
	OffsetDB float64  `json:"offset_db"`
}

// FaultPartition is the JSON form of faults.Partition: links crossing
// the rectangle's boundary lose atten_db (≥ 0) during [from, to).
type FaultPartition struct {
	X0      float64  `json:"x0"`
	Y0      float64  `json:"y0"`
	X1      float64  `json:"x1"`
	Y1      float64  `json:"y1"`
	From    Duration `json:"from"`
	To      Duration `json:"to"`
	AttenDB float64  `json:"atten_db"`
}

// FaultOutage is the JSON form of faults.Outage: the flow's source is
// paused during [from, to).
type FaultOutage struct {
	Flow int      `json:"flow"`
	From Duration `json:"from"`
	To   Duration `json:"to"`
}

// FaultChurn is the JSON form of faults.Churn: Poisson station crashes
// at rate_per_min over [start, end) (end omitted = horizon), downtimes
// uniform in [min_down, max_down], victims from stations (omitted =
// all).
type FaultChurn struct {
	RatePerMin float64  `json:"rate_per_min"`
	MinDown    Duration `json:"min_down"`
	MaxDown    Duration `json:"max_down"`
	Stations   []int    `json:"stations,omitempty"`
	Start      Duration `json:"start,omitempty"`
	End        Duration `json:"end,omitempty"`
}

// FaultSpec is the Spec's optional "faults" block: a declarative fault
// plan compiled per replication against the replication's seed (see
// internal/faults). All randomness is fixed before the run starts, so
// faulted runs stay bit-identical across worker counts, scheduler
// backends and arena reuse.
type FaultSpec struct {
	Crashes      []FaultCrash       `json:"crashes,omitempty"`
	Degradations []FaultDegradation `json:"degradations,omitempty"`
	Partitions   []FaultPartition   `json:"partitions,omitempty"`
	Outages      []FaultOutage      `json:"outages,omitempty"`
	Churn        *FaultChurn        `json:"churn,omitempty"`
}

// params converts the JSON block to the engine's plan.
func (f *FaultSpec) params() faults.Params {
	p := faults.Params{}
	for _, c := range f.Crashes {
		p.Crashes = append(p.Crashes, faults.Crash{Station: c.Station, At: c.At.D(), Until: c.Until.D()})
	}
	for _, d := range f.Degradations {
		p.Degradations = append(p.Degradations, faults.Degradation{
			Station: d.Station, From: d.From.D(), To: d.To.D(), OffsetDB: d.OffsetDB,
		})
	}
	for _, pt := range f.Partitions {
		p.Partitions = append(p.Partitions, faults.Partition{
			X0: pt.X0, Y0: pt.Y0, X1: pt.X1, Y1: pt.Y1,
			From: pt.From.D(), To: pt.To.D(), AttenDB: pt.AttenDB,
		})
	}
	for _, o := range f.Outages {
		p.Outages = append(p.Outages, faults.Outage{Flow: o.Flow, From: o.From.D(), To: o.To.D()})
	}
	if c := f.Churn; c != nil {
		p.Churn = &faults.Churn{
			RatePerMin: c.RatePerMin,
			MinDown:    c.MinDown.D(), MaxDown: c.MaxDown.D(),
			Stations: c.Stations,
			Start:    c.Start.D(), End: c.End.D(),
		}
	}
	return p
}

// checkFaults validates the faults block against the expanded topology
// and resolved flow matrix. Beyond the engine's own structural checks
// it enforces a scenario-level rule: a crashable station must not be a
// TCP flow endpoint — the TCP state machines have no crash semantics
// (a mid-run connection reset is a transport feature this engine does
// not model), so the spec must keep faults off them.
func (s Spec) checkFaults(n int, flows []Flow) error {
	f := s.Faults
	if f == nil {
		return nil
	}
	p := f.params()
	if err := p.Validate(n, len(flows), s.Duration.D()); err != nil {
		return err
	}
	tcpEnds := map[int]bool{}
	for _, fl := range flows {
		if fl.Transport == TransportTCP {
			tcpEnds[fl.Src] = true
			tcpEnds[fl.Dst] = true
		}
	}
	if len(tcpEnds) > 0 {
		for i, c := range p.Crashes {
			if tcpEnds[c.Station] {
				return fmt.Errorf("scenario: faults crash %d targets station %d, a tcp flow endpoint (crashes are only supported on udp endpoints and relays)", i, c.Station)
			}
		}
		if c := p.Churn; c != nil {
			if len(c.Stations) == 0 {
				return fmt.Errorf("scenario: faults churn over all stations clashes with tcp flows; list churn stations explicitly, excluding the tcp endpoints")
			}
			for _, st := range c.Stations {
				if tcpEnds[st] {
					return fmt.Errorf("scenario: faults churn station %d is a tcp flow endpoint", st)
				}
			}
		}
	}
	for i, o := range p.Outages {
		if flows[o.Flow].Transport != TransportUDP {
			return fmt.Errorf("scenario: faults outage %d pauses flow %d, which is not udp (only cbr sources can pause)", i, o.Flow)
		}
	}
	return nil
}
