package scenario

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"adhocsim/internal/mac"
	"adhocsim/internal/phy"
)

func line(n int, spacing float64) Topology { return Topology{Kind: KindLine, N: n, Spacing: spacing} }

func validSpec() Spec {
	return Spec{
		Name:     "t",
		Seed:     1,
		Duration: Duration(time.Second),
		Topology: line(2, 10),
		Flows:    []Flow{{Src: 0, Dst: 1}},
	}
}

// --- Topology generators -------------------------------------------------

func TestLineTopology(t *testing.T) {
	ps, err := Topology{Kind: KindLine, Spacings: []float64{25, 82.5, 25}}.Expand(1)
	if err != nil {
		t.Fatal(err)
	}
	want := []phy.Position{phy.Pos(0, 0), phy.Pos(25, 0), phy.Pos(107.5, 0), phy.Pos(132.5, 0)}
	if !reflect.DeepEqual(ps, want) {
		t.Fatalf("line = %v, want %v", ps, want)
	}
	if ps, _ = line(3, 50).Expand(1); ps[2] != phy.Pos(100, 0) {
		t.Fatalf("uniform line end = %v", ps[2])
	}
}

func TestGridTopology(t *testing.T) {
	ps, err := Topology{Kind: KindGrid, Rows: 3, Cols: 3, Spacing: 25}.Expand(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 9 {
		t.Fatalf("grid size = %d", len(ps))
	}
	if ps[4] != phy.Pos(25, 25) {
		t.Fatalf("grid center = %v", ps[4])
	}
	if ps[8] != phy.Pos(50, 50) {
		t.Fatalf("grid corner = %v", ps[8])
	}
}

func TestRingTopology(t *testing.T) {
	const r = 33.0
	ps, err := Topology{Kind: KindRing, N: 8, Radius: r}.Expand(1)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ps {
		d := math.Hypot(p.X-r, p.Y-r)
		if math.Abs(d-r) > 1e-9 {
			t.Fatalf("station %d at distance %.3f from center, want %.3f", i, d, r)
		}
	}
	// Adjacent chord length: 2R sin(π/8).
	want := 2 * r * math.Sin(math.Pi/8)
	got := phy.Dist(ps[0], ps[1])
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("chord = %.3f, want %.3f", got, want)
	}
}

func TestRandomUniformTopologyDeterministic(t *testing.T) {
	top := Topology{Kind: KindRandomUniform, N: 16, Width: 500, Height: 400}
	a, err := top.Expand(7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := top.Expand(7)
	c, _ := top.Expand(8)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different fields")
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical fields")
	}
	for i, p := range a {
		if p.X < 0 || p.X > 500 || p.Y < 0 || p.Y > 400 {
			t.Fatalf("station %d at %v outside field", i, p)
		}
	}
}

func TestTopologyErrors(t *testing.T) {
	bad := []Topology{
		{Kind: "hexagon"},
		{Kind: KindExplicit},
		{Kind: KindExplicit, N: 9, Positions: [][2]float64{{0, 0}, {1, 0}}},
		{Kind: KindLine, N: 1, Spacing: 10},
		{Kind: KindLine, N: 4, Spacings: []float64{1, 2}},
		{Kind: KindLine, N: 3, Spacings: []float64{10, -1}},
		{Kind: KindGrid, Rows: 2, Cols: 2},
		{Kind: KindGrid, Rows: 2, Cols: 2, Spacing: 10, N: 5},
		{Kind: KindRing, N: 2, Radius: 10},
		{Kind: KindRing, N: 8},
		{Kind: KindRandomUniform, N: 0, Width: 10, Height: 10},
		{Kind: KindRandomUniform, N: 4, Width: -1, Height: 10},
	}
	for i, top := range bad {
		if _, err := top.Expand(1); err == nil {
			t.Errorf("case %d (%+v): no error", i, top)
		}
	}
}

// --- Spec JSON and validation --------------------------------------------

func TestSpecJSONRoundTrip(t *testing.T) {
	spec := Spec{
		Name:        "round-trip",
		Description: "all the knobs",
		Seed:        99,
		Duration:    Duration(2500 * time.Millisecond),
		MSS:         512,
		Profile:     ProfileTestbed,
		Topology:    Topology{Kind: KindGrid, Rows: 2, Cols: 4, Spacing: 30},
		MAC:         MACParams{RateMbps: 5.5, RTSCTS: true},
		Stations: []StationOverride{
			{Station: 3, MAC: &MACParams{RateMbps: 1}, Profile: ProfileDamp},
		},
		Flows: []Flow{
			{Src: 0, Dst: 1, Transport: TransportUDP, PacketSize: 1024, Interval: Duration(5 * time.Millisecond), Port: 7000},
			{Src: 2, Dst: 3, Transport: TransportTCP, PacketSize: 512},
		},
		Mobility: &Mobility{Model: ModelRandomWaypoint, Width: 100, Height: 100, Stations: []int{1}},
	}
	buf, err := MarshalSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(buf)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, buf)
	}
	if !reflect.DeepEqual(spec, back) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", back, spec)
	}
}

func TestParseSpecReadableDurations(t *testing.T) {
	spec, err := ParseSpec([]byte(`{
		"name": "readable",
		"seed": 1,
		"duration": "1500ms",
		"topology": {"kind": "line", "n": 2, "spacing": 10},
		"flows": [{"src": 0, "dst": 1, "interval": "20ms"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Duration.D() != 1500*time.Millisecond {
		t.Fatalf("duration = %v", spec.Duration.D())
	}
	if spec.Flows[0].Interval.D() != 20*time.Millisecond {
		t.Fatalf("interval = %v", spec.Flows[0].Interval.D())
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	_, err := ParseSpec([]byte(`{"name": "typo", "seeed": 1}`))
	if err == nil || !strings.Contains(err.Error(), "seeed") {
		t.Fatalf("err = %v, want unknown-field complaint", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"no flows", func(s *Spec) { s.Flows = nil }, "no flows"},
		{"src out of range", func(s *Spec) { s.Flows[0].Src = 7 }, "outside topology"},
		{"self flow", func(s *Spec) { s.Flows[0].Dst = 0 }, "itself"},
		{"bad transport", func(s *Spec) { s.Flows[0].Transport = "sctp" }, "transport"},
		{"bad rate", func(s *Spec) { s.MAC.RateMbps = 54 }, "not an 802.11b rate"},
		{"bad profile", func(s *Spec) { s.Profile = "indoor" }, "unknown profile"},
		{"oversized packet", func(s *Spec) { s.Flows[0].PacketSize = 4000 }, "packet size"},
		{"negative interval", func(s *Spec) { s.Flows[0].Interval = -1 }, "interval"},
		{"port clash", func(s *Spec) {
			s.Flows = append(s.Flows, Flow{Src: 1, Dst: 1, Transport: TransportUDP})
			s.Flows[1].Src = 0 // both flows 0→1 on default port 9000
		}, "port"},
		{"override out of range", func(s *Spec) {
			s.Stations = []StationOverride{{Station: 5}}
		}, "override"},
		{"override duplicated", func(s *Spec) {
			s.Stations = []StationOverride{{Station: 0}, {Station: 0}}
		}, "overridden twice"},
		{"bad override rate", func(s *Spec) {
			s.Stations = []StationOverride{{Station: 0, MAC: &MACParams{RateMbps: 3}}}
		}, "not an 802.11b rate"},
		{"bad mobility model", func(s *Spec) {
			s.Mobility = &Mobility{Model: "brownian"}
		}, "mobility model"},
		{"mobility station out of range", func(s *Spec) {
			s.Mobility = &Mobility{Model: ModelRandomWaypoint, Stations: []int{9}}
		}, "mobility station"},
		{"mobility station duplicated", func(s *Spec) {
			s.Mobility = &Mobility{Model: ModelRandomWaypoint, Stations: []int{1, 1}}
		}, "listed twice"},
	}
	for _, tc := range cases {
		spec := validSpec()
		tc.mutate(&spec)
		err := spec.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

// --- Engine --------------------------------------------------------------

func TestRunDeterministic(t *testing.T) {
	spec := validSpec()
	spec.Duration = Duration(500 * time.Millisecond)
	a := MustRun(spec)
	b := MustRun(spec)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same spec diverged:\n%+v\n%+v", a, b)
	}
	spec.Seed = 2
	c := MustRun(spec)
	if reflect.DeepEqual(a.Flows, c.Flows) {
		t.Fatal("different seeds produced identical flow results")
	}
}

func TestRunDeliversTraffic(t *testing.T) {
	spec := validSpec()
	spec.Duration = Duration(time.Second)
	res := MustRun(spec)
	if len(res.Flows) != 1 || len(res.Stations) != 2 {
		t.Fatalf("result shape: %d flows, %d stations", len(res.Flows), len(res.Stations))
	}
	f := res.Flows[0]
	if f.Received == 0 || f.Bytes == 0 || f.GoodputMbps <= 0 {
		t.Fatalf("no traffic delivered: %+v", f)
	}
	// 10 m at 11 Mbit/s is deep in range: goodput must be near capacity.
	if f.GoodputMbps < 2 {
		t.Fatalf("goodput %.2f Mbit/s, want > 2", f.GoodputMbps)
	}
}

func TestRunTCPFlow(t *testing.T) {
	spec := validSpec()
	spec.Flows[0].Transport = TransportTCP
	spec.Duration = Duration(time.Second)
	res := MustRun(spec)
	f := res.Flows[0]
	if f.Bytes == 0 || f.AppSent == 0 {
		t.Fatalf("TCP flow moved no data: %+v", f)
	}
	if f.Received != f.Bytes/512 {
		t.Fatalf("Received = %d, want Bytes/512 = %d", f.Received, f.Bytes/512)
	}
}

func TestRunEightStationRingWithFlowMatrix(t *testing.T) {
	spec, err := Preset("ring-8")
	if err != nil {
		t.Fatal(err)
	}
	spec.Duration = Duration(time.Second)
	res := MustRun(spec)
	if len(res.Stations) != 8 || len(res.Flows) != 4 {
		t.Fatalf("shape: %d stations, %d flows", len(res.Stations), len(res.Flows))
	}
	var total float64
	for _, f := range res.Flows {
		total += f.GoodputKbps
	}
	if total < 100 {
		t.Fatalf("ring moved only %.1f kbit/s total", total)
	}
	if res.Fairness <= 0 || res.Fairness > 1 {
		t.Fatalf("fairness = %.3f", res.Fairness)
	}
}

func TestRunMobilitySpec(t *testing.T) {
	spec, err := Preset("mobile-pair")
	if err != nil {
		t.Fatal(err)
	}
	spec.Duration = Duration(2 * time.Second)
	inst, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	start := inst.Net.Stations[1].Radio.Pos()
	inst.Net.Run(spec.Duration.D())
	if inst.Net.Stations[1].Radio.Pos() == start {
		t.Fatal("mobile station never moved")
	}
	if inst.Net.Stations[0].Radio.Pos() != phy.Pos(150, 150) {
		t.Fatal("static station moved")
	}
}

func TestPerStationOverrides(t *testing.T) {
	spec := validSpec()
	spec.MAC = MACParams{RateMbps: 11}
	spec.Stations = []StationOverride{
		{Station: 1, MAC: &MACParams{RateMbps: 1}, Profile: ProfileDamp},
	}
	inst, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := inst.Net.Stations[0].MAC.DataRate(); got != phy.Rate11 {
		t.Fatalf("station 0 rate = %v", got)
	}
	if got := inst.Net.Stations[1].MAC.DataRate(); got != phy.Rate1 {
		t.Fatalf("station 1 rate = %v", got)
	}
	if inst.Net.Stations[1].Radio.Profile() == inst.Net.Stations[0].Radio.Profile() {
		t.Fatal("station 1 profile not overridden")
	}

	// An explicit per-station "default" on a non-default network must pin
	// DefaultProfile, not silently inherit the network-wide profile.
	spec = validSpec()
	spec.Profile = ProfileTestbed
	spec.Stations = []StationOverride{{Station: 0, Profile: ProfileDefault}}
	inst, err = Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := inst.Net.Stations[0].Radio.Profile().Name; got != phy.DefaultProfile().Name {
		t.Fatalf("station 0 profile = %q, want the default profile", got)
	}
	if got := inst.Net.Stations[1].Radio.Profile().Name; got != phy.TestbedProfile().Name {
		t.Fatalf("station 1 profile = %q, want the testbed profile", got)
	}
}

func TestMACHookRuns(t *testing.T) {
	spec := validSpec()
	var seen []int
	spec.MACHook = func(i int, _ *mac.Config) { seen = append(seen, i) }
	if _, err := Build(spec); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seen, []int{0, 1}) {
		t.Fatalf("hook stations = %v", seen)
	}
}

// --- Presets and replication ---------------------------------------------

func TestPresetsAllValid(t *testing.T) {
	ps := Presets()
	if len(ps) < 5 {
		t.Fatalf("only %d presets", len(ps))
	}
	for _, p := range ps {
		if p.Name == "" || p.Description == "" {
			t.Errorf("preset %q lacks name or description", p.Name)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", p.Name, err)
		}
		if _, err := MarshalSpec(p); err != nil {
			t.Errorf("preset %q does not marshal: %v", p.Name, err)
		}
	}
	if _, err := Preset("no-such"); err == nil {
		t.Fatal("unknown preset did not error")
	}
}

// TestLargeScalePresetsGeometry pins the two 1024-station presets: full
// station counts, and flow endpoints that can actually communicate (the
// random field's flows are nearest-neighbor pairs by construction).
func TestLargeScalePresetsGeometry(t *testing.T) {
	prof := phy.DefaultProfile()
	for _, name := range []string{"grid-32x32", "random-1024"} {
		spec, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		pos, err := spec.Topology.Expand(spec.Seed)
		if err != nil {
			t.Fatal(err)
		}
		if len(pos) != 1024 {
			t.Fatalf("%s expands to %d stations, want 1024", name, len(pos))
		}
		// Compile (but don't run): the engine accepts the scale, and
		// Build resolves any NearestDst pairings against the topology.
		inst, err := Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(inst.Net.Stations); got != 1024 {
			t.Fatalf("%s built network has %d stations, want 1024", name, got)
		}
		if len(inst.Spec.Flows) != 8 {
			t.Fatalf("%s has %d flows, want 8", name, len(inst.Spec.Flows))
		}
		for i, f := range inst.Spec.Flows {
			if d := phy.Dist(pos[f.Src], pos[f.Dst]); d > prof.MedianRange(phy.Rate1) {
				t.Errorf("%s flow %d spans %.0f m, beyond the 1 Mbit/s median range %.0f m", name, i, d, prof.MedianRange(phy.Rate1))
			}
		}
	}
}

// TestNearestDstResolution pins the NearestDst flow contract: the engine
// binds the destination to the station truly nearest the source in the
// *effective* topology draw — re-seeding a spec re-pairs its flows, so
// a seed sweep of a random-field preset always measures viable links.
func TestNearestDstResolution(t *testing.T) {
	spec, err := Preset("random-1024")
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{42, 99} {
		spec.Seed = seed
		pos, err := spec.Topology.Expand(seed)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		for i, f := range inst.Spec.Flows {
			want, best := -1, math.Inf(1)
			for j, p := range pos {
				if j == f.Src {
					continue
				}
				if d := phy.Dist(pos[f.Src], p); d < best {
					want, best = j, d
				}
			}
			if f.Dst != want {
				t.Fatalf("seed %d flow %d resolved to %d, nearest is %d (%.0f m)", seed, i, f.Dst, want, best)
			}
			if f.NearestDst {
				t.Fatalf("seed %d flow %d still flagged NearestDst after resolution", seed, i)
			}
		}
	}

	// Conflicting dst + nearest_dst fails validation loudly.
	bad := validSpec()
	bad.Flows[0].NearestDst = true
	bad.Flows[0].Dst = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("nearest_dst with explicit dst did not error")
	}

	// A nearest_dst flow sharing a port with any other flow must fail at
	// validation, seed-independently: on a random field another seed
	// could resolve both flows to the same sink, and a replication sweep
	// would otherwise crash mid-run on the clash.
	clash := Spec{
		Name:     "clash",
		Seed:     5,
		Topology: Topology{Kind: KindRandomUniform, N: 16, Width: 200, Height: 200},
		Flows: []Flow{
			{Src: 0, NearestDst: true},
			{Src: 8, NearestDst: true}, // same default port 9000
		},
	}
	if err := clash.Validate(); err == nil {
		t.Fatal("nearest_dst flows sharing a port did not error")
	}
}

// TestNearestDstReplicateLabeling: a multi-replication summary must not
// attribute a NearestDst flow's aggregate to replication 0's pairing —
// each replication re-drew the field — while a single-replication
// summary keeps the one real destination.
func TestNearestDstReplicateLabeling(t *testing.T) {
	spec := Spec{
		Name:     "nn",
		Seed:     5,
		Duration: Duration(200 * time.Millisecond),
		Topology: Topology{Kind: KindRandomUniform, N: 16, Width: 200, Height: 200},
		MAC:      MACParams{RateMbps: 1},
		Flows:    []Flow{{Src: 0, NearestDst: true, Interval: Duration(50 * time.Millisecond)}},
	}
	multi, err := Replicate(spec, 3, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f := multi.Flows[0]; f.Dst != -1 || !f.NearestDst {
		t.Fatalf("multi-rep summary claims dst %d (nearest=%v), want -1/true", f.Dst, f.NearestDst)
	}
	if got := Render(multi); !strings.Contains(got, "0→nearest") {
		t.Fatalf("render does not mark the nearest-dst flow:\n%s", got)
	}
	single, err := Replicate(spec, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f := single.Flows[0]; f.Dst < 0 || f.NearestDst {
		t.Fatalf("single-rep summary lost its resolved dst: %+v", f)
	}
}

func TestHiddenTerminalGeometry(t *testing.T) {
	spec, err := Preset("hidden-terminal")
	if err != nil {
		t.Fatal(err)
	}
	pos, err := spec.Topology.Expand(spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	prof := phy.DefaultProfile()
	if d := phy.Dist(pos[0], pos[2]); d <= prof.CarrierSenseRange() {
		t.Fatalf("senders %0.f m apart, inside PCS_range %.0f m — not hidden", d, prof.CarrierSenseRange())
	}
	if d := phy.Dist(pos[0], pos[1]); d >= prof.MedianRange(phy.Rate1) {
		t.Fatalf("sender %0.f m from receiver, outside 1 Mbit/s range %.0f m", d, prof.MedianRange(phy.Rate1))
	}
}

func TestReplicateWorkerInvariance(t *testing.T) {
	spec := validSpec()
	spec.Duration = Duration(300 * time.Millisecond)
	serial, err := Replicate(spec, 4, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Replicate(spec, 4, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("worker count changed replicated results")
	}
	if serial.Replications != 4 || serial.Flows[0].Kbps.N != 4 {
		t.Fatalf("summary shape: %+v", serial.Flows[0].Kbps)
	}
	if serial.Runs[0].Seed != spec.Seed {
		t.Fatalf("replication 0 seed = %d, want root %d", serial.Runs[0].Seed, spec.Seed)
	}
	if got := Render(serial); !strings.Contains(got, "0→1") || !strings.Contains(got, "fairness") {
		t.Fatalf("render missing pieces:\n%s", got)
	}
}
