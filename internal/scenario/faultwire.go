package scenario

import (
	"time"

	"adhocsim/internal/faults"
	"adhocsim/internal/phy"
)

// installFaults compiles the spec's faults block against the current
// seed and arms the run: the degradation timeline goes to the medium
// (a pure function of time — no events needed, the gain caches key on
// its epochs), and every crash, restart and outage edge is scheduled
// as an ordinary simulator event on the affected station's own
// scheduler, which in parallel mode is that station's region — each
// event touches only region-owned state, so the parallel kernel needs
// no special casing. Build and Reset both call it right after
// attachWorkload, so the t=0 event layout is identical on the fresh
// and arena-reuse paths.
func (inst *Instance) installFaults(positions []phy.Position) error {
	inst.faultSched = nil
	f := inst.Spec.Faults
	if f == nil {
		inst.Net.Medium.SetDegradation(nil)
		return nil
	}
	sched, err := faults.Compile(f.params(), inst.Net.Source, inst.Spec.Duration.D(), len(positions), len(inst.Spec.Flows))
	if err != nil {
		return err
	}
	inst.faultSched = sched
	inst.Net.Medium.SetDegradation(sched.Timeline(positions))
	inst.pub.notePlanned(sched.EventCounts())
	// Applied-edge counters, indexed by faults.Kind; nil handles (obs
	// off) make the Incs below single-nil-check no-ops. The closures run
	// on region goroutines in parallel mode — Inc is atomic.
	fc := inst.pub.faultCounters()
	for _, ev := range sched.Events() {
		switch ev.Kind {
		case faults.CrashEvent:
			st := inst.Net.Stations[ev.Station]
			idx := ev.Station
			st.Sched.After(ev.At, func() {
				// MAC before radio: dropping the radio's receive lock edges
				// carrier sense, and the MAC must already be gated when that
				// CCAChanged callback fires.
				st.MAC.PowerDown()
				st.Radio.PowerDown()
				if len(inst.routers) > 0 {
					inst.routers[idx].Crash()
				}
				fc[faults.CrashEvent].Inc()
			})
		case faults.RestartEvent:
			st := inst.Net.Stations[ev.Station]
			idx := ev.Station
			st.Sched.After(ev.At, func() {
				// Mirror of the crash order: radio first so the MAC's
				// PowerUp reads live carrier sense.
				st.Radio.PowerUp()
				st.MAC.PowerUp()
				if len(inst.routers) > 0 {
					inst.routers[idx].Restart()
				}
				fc[faults.RestartEvent].Inc()
			})
		case faults.OutageStartEvent:
			if cbr := inst.cbrs[ev.Flow]; cbr != nil {
				// The source's own scheduler: its tick/refill timers live
				// there.
				inst.Net.Stations[inst.Spec.Flows[ev.Flow].Src].Sched.After(ev.At, func() {
					cbr.Pause()
					fc[faults.OutageStartEvent].Inc()
				})
			}
		case faults.OutageEndEvent:
			if cbr := inst.cbrs[ev.Flow]; cbr != nil {
				inst.Net.Stations[inst.Spec.Flows[ev.Flow].Src].Sched.After(ev.At, func() {
					cbr.Resume()
					fc[faults.OutageEndEvent].Inc()
				})
			}
		}
	}
	// Recovery markers: every route-breaking instant is stamped on every
	// UDP sink (on the sink station's scheduler — it reads the clock at
	// delivery time); the first delivery after a marker closes it as a
	// route-recovery sample.
	instants := sched.FaultInstants()
	for i, fl := range inst.Spec.Flows {
		sink := inst.udpSinks[i]
		if sink == nil {
			continue
		}
		dst := inst.Net.Stations[fl.Dst]
		for _, t := range instants {
			at := t
			dst.Sched.After(at, func() { sink.MarkFault(at) })
		}
	}
	return nil
}

// FaultSchedule exposes the replication's compiled fault schedule for
// tests and instrumentation; nil without a faults block.
func (inst *Instance) FaultSchedule() *faults.Schedule { return inst.faultSched }

// collectFaultFlow fills one UDP flow's graceful-degradation metrics.
func (inst *Instance) collectFaultFlow(fr *FlowResult, i int) {
	sched := inst.faultSched
	if sched == nil {
		return
	}
	f := inst.Spec.Flows[i]
	if f.Transport != TransportUDP {
		return
	}
	cbr, sink := inst.cbrs[i], inst.udpSinks[i]
	fr.Attempts = cbr.Attempts
	if cbr.Attempts > 0 {
		fr.DeliveryRatio = float64(sink.Received) / float64(cbr.Attempts)
	}
	fr.DowntimeLoss = cbr.DownErr + sched.DowntimeTicks(f.Src, f.Dst, f.Interval.D())
	fr.RecoveredFaults = sink.Recovered
	fr.UnrecoveredFaults = sink.Unrecovered()
	if sink.Recovered > 0 {
		fr.RecoveryMeanMs = float64(sink.RecoverySum) / float64(sink.Recovered) / float64(time.Millisecond)
		fr.RecoveryMaxMs = float64(sink.RecoveryMax) / float64(time.Millisecond)
	}
}
