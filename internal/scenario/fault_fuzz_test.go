package scenario

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

// FuzzFaultScheduleDeterminism is the metamorphic property test of the
// fault engine: for ANY structurally valid faulted spec — crash window,
// degradation episode, regional partition, Poisson churn and flow
// outage all shaped from the fuzz input — determinism must survive
// every execution axis. Three properties are asserted per draw:
//
//  1. Compilation is pure: building the spec twice yields deeply equal
//     fault schedules (churn is drawn entirely at compile time from the
//     replication's seed, never at run time).
//  2. The scheduler backend is irrelevant: heap and calendar runs are
//     byte-identical — fault events ride the same queue as everything
//     else.
//  3. The parallel kernel's hard guarantee holds under faults: a forced
//     2x2 region grid produces byte-identical results at 1 and 4
//     workers and on the SetSequential reference path.
//
// Run the smoke corpus with plain `go test`; hunt with
//
//	go test -fuzz=FuzzFaultScheduleDeterminism -fuzztime=30s ./internal/scenario
func FuzzFaultScheduleDeterminism(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(0), uint8(0), uint8(0), uint8(0), false)
	f.Add(uint64(42), uint8(6), uint8(3), uint8(9), uint8(20), uint8(2), true)
	f.Add(uint64(7), uint8(8), uint8(255), uint8(1), uint8(0), uint8(7), false)
	f.Add(uint64(1234), uint8(3), uint8(17), uint8(0), uint8(59), uint8(1), true)
	f.Add(uint64(99), uint8(10), uint8(80), uint8(30), uint8(40), uint8(0), false)

	f.Fuzz(func(t *testing.T, seed uint64, stations, crashPick, degPick, partPick, churnPick uint8, outage bool) {
		spec := fuzzFaultSpec(seed, stations, crashPick, degPick, partPick, churnPick, outage)
		if err := spec.Validate(); err != nil {
			t.Skip("structurally invalid draw")
		}

		// Property 1: compiling the same spec twice is pure.
		instA, err := Build(spec)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		instB, err := Build(spec)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		if !reflect.DeepEqual(instA.FaultSchedule(), instB.FaultSchedule()) {
			t.Fatalf("spec %+v: two builds compiled different fault schedules", spec)
		}

		run := func(s Spec) []byte {
			res, err := Run(s)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			buf, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			return buf
		}

		// Property 2: scheduler backend invariance on the plain kernel.
		heap := spec
		heap.Scheduler = "heap"
		cal := spec
		cal.Scheduler = "calendar"
		base := run(heap)
		if got := run(cal); !bytes.Equal(base, got) {
			t.Errorf("spec %+v: calendar backend diverged from heap under faults\nheap:     %s\ncalendar: %s",
				spec, base, got)
		}

		// Property 3: worker invariance on a forced 2x2 grid.
		par := func(p ParallelParams) []byte {
			s := spec
			s.Parallel = &p
			return run(s)
		}
		one := par(ParallelParams{Cols: 2, Rows: 2, Workers: 1})
		for _, p := range []ParallelParams{
			{Cols: 2, Rows: 2, Workers: 4},
			{Cols: 2, Rows: 2, Sequential: true},
		} {
			if got := par(p); !bytes.Equal(one, got) {
				t.Errorf("spec %+v: faulted parallel %+v diverged from 1-worker\n1-worker: %s\nvariant:  %s",
					spec, p, one, got)
			}
		}
	})
}

// fuzzFaultSpec shapes raw fuzz values into a small, always-cheap
// faulted spec: a random-uniform field with one paced UDP flow and every
// fault class the picks enable. All windows land inside the 300 ms
// horizon so the faults are genuinely active.
func fuzzFaultSpec(seed uint64, stations, crashPick, degPick, partPick, churnPick uint8, outage bool) Spec {
	n := 3 + int(stations)%8 // 3..10 stations
	src := int(crashPick) % n
	dst := (src + 1 + int(degPick)%(n-1)) % n
	spec := Spec{
		Name:     "fuzz-faults",
		Seed:     seed,
		Duration: Duration(300 * time.Millisecond),
		Topology: Topology{
			Kind:   KindRandomUniform,
			N:      n,
			Width:  150 + 50*float64(int(partPick)%8), // 150..500 m
			Height: 150 + 50*float64(int(churnPick)%8),
		},
		Flows: []Flow{{
			Src: src, Dst: dst,
			Transport:  TransportUDP,
			PacketSize: 256,
			Interval:   Duration(20 * time.Millisecond),
		}},
		Faults: &FaultSpec{},
	}
	ms := func(v int) Duration { return Duration(time.Duration(v) * time.Millisecond) }
	// A crash window inside the horizon; every third draw never restarts.
	at := 40 + int(crashPick)%5*40 // 40..200 ms
	until := at + 50 + int(crashPick)%3*30
	if crashPick%3 == 0 {
		until = 0 // stays down
	}
	spec.Faults.Crashes = []FaultCrash{{Station: int(crashPick) % n, At: ms(at), Until: ms(until)}}
	if degPick%2 == 0 {
		spec.Faults.Degradations = []FaultDegradation{{
			Station: int(degPick) % n,
			From:    ms(30 + int(degPick)%4*30), To: ms(200 + int(degPick)%3*30),
			OffsetDB: -float64(1 + int(degPick)%30),
		}}
	}
	if partPick%2 == 0 {
		spec.Faults.Partitions = []FaultPartition{{
			X0: 0, Y0: 0,
			X1: 80 + 40*float64(int(partPick)%8), Y1: 80 + 40*float64(int(partPick)%5),
			From: ms(60 + int(partPick)%3*40), To: ms(220),
			AttenDB: float64(20 + int(partPick)%50),
		}}
	}
	if churnPick%2 == 0 {
		spec.Faults.Churn = &FaultChurn{
			RatePerMin: float64(200 + int(churnPick)*10),
			MinDown:    ms(20), MaxDown: ms(20 + int(churnPick)%5*10),
		}
	}
	if outage {
		spec.Faults.Outages = []FaultOutage{{Flow: 0, From: ms(80), To: ms(180)}}
	}
	return spec
}
