package scenario

import (
	"runtime"
	"testing"
	"time"
)

// TestParallelRegionsSpeedup is the acceptance measurement for the
// space-partitioned kernel: one random-1024 replication must run at
// least 2x faster wall-clock with 4+ region workers than on the
// sequential kernel, with equivalent summaries (worker-invariant by
// the equivalence suite; vs plain sequential the preset has the
// documented tie divergence, so this test compares against the
// executor's own single-worker run, which IS byte-checked against
// sequential elsewhere).
//
// Like runner.TestParallelSpeedup, the timing assertion needs real
// cores: the barrier-window protocol cannot beat one scheduler on one
// CPU, only match it (the benchmarks in bench_test.go measure that
// overhead; BENCH_PR6.json records the single-core numbers). On small
// machines the test still runs both kernels and checks agreement — it
// skips only the timing bound.
func TestParallelRegionsSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	spec, err := Preset("random-1024")
	if err != nil {
		t.Fatal(err)
	}

	run := func(par *ParallelParams) (Result, time.Duration) {
		s := spec
		s.Parallel = par
		t0 := time.Now()
		res := MustRun(s)
		return res, time.Since(t0)
	}
	base, baseDur := run(&ParallelParams{Workers: 1})
	par, parDur := run(&ParallelParams{Workers: 0}) // one worker per CPU

	if base.Fairness != par.Fairness || len(base.Flows) != len(par.Flows) {
		t.Fatalf("multi-worker run diverged from 1-worker: fairness %v vs %v", base.Fairness, par.Fairness)
	}
	for i := range base.Flows {
		if base.Flows[i] != par.Flows[i] {
			t.Errorf("flow %d diverged: %+v vs %+v", i, base.Flows[i], par.Flows[i])
		}
	}

	if procs := runtime.GOMAXPROCS(0); procs < 4 {
		t.Skipf("GOMAXPROCS = %d, need >= 4 for a meaningful speedup bound (1-worker %v, %d-worker %v)",
			procs, baseDur, procs, parDur)
	}
	if speedup := baseDur.Seconds() / parDur.Seconds(); speedup < 2 {
		t.Errorf("speedup = %.2fx (1-worker %v, parallel %v), want >= 2x on %d CPUs",
			speedup, baseDur, parDur, runtime.GOMAXPROCS(0))
	}
}
