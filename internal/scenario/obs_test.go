package scenario

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"adhocsim/internal/obs"
)

// The observability layer's hard contract (see DESIGN.md): metrics are
// strictly out-of-band. A run must produce byte-identical results with
// obs off, obs on, and obs on while a live /metrics endpoint is being
// scraped mid-run — and the concurrent-scrape leg must be race-clean
// (this file is part of the CI race job).

// obsToggleCases spans the kernels: a small sequential workload, a
// faulted workload (crash/restart closures increment fault counters),
// and a multi-region parallel city slice (exec histograms active).
func obsToggleCases(t *testing.T) []Spec {
	t.Helper()
	seq := cityShortSpec(t, "hidden-terminal", 2*time.Second)
	faulted := cityShortSpec(t, "churn-mesh-5x5", 4*time.Second)
	par := cityShortSpec(t, "random-1024", time.Second)
	par.Parallel = &ParallelParams{Cols: 2, Rows: 2, Workers: 2}
	return []Spec{seq, faulted, par}
}

func TestObsTogglesByteIdentical(t *testing.T) {
	for _, spec := range obsToggleCases(t) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			base := runJSON(t, spec)

			on := spec
			on.Obs = &ObsParams{Enabled: true}
			if got := runJSON(t, on); !bytes.Equal(base, got) {
				t.Fatal("result differs with Obs.Enabled")
			}

			// An explicit registry implies obs and must fill up while
			// leaving the result bytes alone.
			reg := obs.NewRegistry()
			withReg := spec
			withReg.ObsRegistry = reg
			if got := runJSON(t, withReg); !bytes.Equal(base, got) {
				t.Fatal("result differs with an explicit ObsRegistry")
			}
			if v := reg.Counter("sim_events_fired_total", "").Value(); v == 0 {
				t.Fatal("registry saw no fired events")
			}
			if v := reg.Counter("medium_transmissions_total", "").Value(); v == 0 {
				t.Fatal("registry saw no transmissions")
			}
			if spec.Parallel != nil {
				if v := reg.Counter("exec_windows_total", "").Value(); v == 0 {
					t.Fatal("parallel run published no exec windows")
				}
			}
		})
	}
}

// TestObsScrapeDuringRun drives runs in slices (the RunProgress path,
// bit-identical to Run) while a goroutine hammers a live /metrics
// endpoint over the shared registry. The result must still match the
// obs-off baseline byte for byte, and the scraper must actually see
// mid-run metric text.
func TestObsScrapeDuringRun(t *testing.T) {
	for _, spec := range obsToggleCases(t) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			base := runJSON(t, spec)

			reg := obs.NewRegistry()
			s := spec
			s.ObsRegistry = reg
			srv := httptest.NewServer(obs.Handler(reg, nil))
			defer srv.Close()

			scrape := func() string {
				resp, err := http.Get(srv.URL + "/metrics")
				if err != nil {
					return ""
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				return string(body)
			}

			// A background goroutine scrapes continuously (the race
			// detector's food) ...
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
						scrape()
					}
				}
			}()

			// ... and one deterministic scrape fires from the tick
			// callback at mid-horizon, so even a run too fast for the
			// goroutine provably serves mid-run metric text.
			var midRun string
			res, err := RunProgress(s, func(now, horizon time.Duration, fired uint64) {
				if midRun == "" && now >= horizon/2 && now < horizon {
					midRun = scrape()
				}
			})
			close(stop)
			wg.Wait()
			if err != nil {
				t.Fatalf("RunProgress(%s): %v", s.Name, err)
			}
			got, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(base, got) {
				t.Fatal("result differs when scraped mid-run")
			}
			if !strings.Contains(midRun, "sim_events_fired_total") {
				t.Fatalf("mid-run scrape missing metrics: %q", midRun)
			}
		})
	}
}

// TestObsReplicateAccumulates shares one registry across a parallel
// replication sweep: the summary must match the obs-off run byte for
// byte while the runner metrics account for every replication.
func TestObsReplicateAccumulates(t *testing.T) {
	spec := cityShortSpec(t, "hidden-terminal", 2*time.Second)
	base, err := Replicate(spec, 3, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	baseJSON, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	s := spec
	s.Obs = &ObsParams{Enabled: true}
	s.ObsRegistry = reg
	sum, err := Replicate(s, 3, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(baseJSON, gotJSON) {
		t.Fatal("replication summary differs with obs on")
	}
	if v := reg.Counter("runner_reps_total", "").Value(); v != 3 {
		t.Fatalf("runner_reps_total = %d, want 3", v)
	}
	if v := reg.Counter("runner_panics_recovered_total", "").Value(); v != 0 {
		t.Fatalf("runner_panics_recovered_total = %d, want 0", v)
	}
	if v := reg.Counter("sim_events_fired_total", "").Value(); v == 0 {
		t.Fatal("no kernel metrics accumulated across replications")
	}
	if h := reg.Histogram("runner_rep_wall_ns", "").Count(); h != 3 {
		t.Fatalf("runner_rep_wall_ns count = %d, want 3", h)
	}
}

// TestObsOverheadRandom1024 is the CI bench-smoke (satellite of the
// observability PR): random-1024 with obs on must stay within 3% of
// obs off on ns per logical event. Timing assertions are flaky on
// shared runners, so the 3% gate is enforced only under
// OBS_BENCH_STRICT=1 (the dedicated CI step); otherwise the ratio is
// logged for the record.
func TestObsOverheadRandom1024(t *testing.T) {
	if testing.Short() {
		t.Skip("timing benchmark; skipped in -short")
	}
	spec := cityShortSpec(t, "random-1024", 2*time.Second)

	// One timed iteration: Build outside the timer, run + collect
	// inside — the BENCH_PR*.json discipline.
	iteration := func(s Spec) float64 {
		inst, err := Build(s)
		if err != nil {
			t.Fatal(err)
		}
		horizon := inst.Spec.Duration.D()
		t0 := time.Now()
		inst.Net.Run(horizon)
		inst.Collect(horizon)
		wall := time.Since(t0)
		return float64(wall) / float64(inst.Net.Fired())
	}

	// Interleave the legs (off, on, off, on, ...) and take each leg's
	// best of 5, so a frequency ramp or noisy neighbor hits both sides
	// rather than biasing whichever leg ran second.
	onSpec := spec
	onSpec.Obs = &ObsParams{Enabled: true}
	iteration(spec) // warm caches outside the measurement
	off, withObs := 0.0, 0.0
	for i := 0; i < 5; i++ {
		if v := iteration(spec); off == 0 || v < off {
			off = v
		}
		if v := iteration(onSpec); withObs == 0 || v < withObs {
			withObs = v
		}
	}
	ratio := withObs / off
	t.Logf("random-1024 ns/logical-event: obs off %.1f, obs on %.1f (ratio %.3f)", off, withObs, ratio)
	if os.Getenv("OBS_BENCH_STRICT") == "1" && ratio > 1.03 {
		t.Errorf("obs overhead %.1f%% exceeds the 3%% budget", 100*(ratio-1))
	}
}
