package scenario

import (
	"fmt"
	"sort"
	"time"
)

// The preset library: named ready-to-run scenarios. The first two mirror
// the paper's own topologies; the rest go beyond it into the classic
// 802.11 ad hoc geometries the two-preset API could never express.
//
// Distances are chosen against the calibrated DefaultProfile ranges
// (TX_range ≈ 30/70/95/120 m at 11/5.5/2/1 Mbit/s, PCS_range ≈ 190 m),
// so each preset exhibits the interaction it is named after.

// presets returns the library, rebuilt per call so callers can mutate
// their copy freely.
func presets() []Spec {
	ps := basePresets()
	return append(ps, faultPresets(ps)...)
}

func basePresets() []Spec {
	return []Spec{
		{
			Name:        "paper-two-node",
			Description: "§3.1 single saturating UDP session, two stations 10 m apart at 11 Mbit/s",
			Seed:        42,
			Duration:    Duration(10 * time.Second),
			MSS:         512,
			Topology:    Topology{Kind: KindLine, N: 2, Spacing: 10},
			MAC:         MACParams{RateMbps: 11},
			Flows:       []Flow{{Src: 0, Dst: 1, Transport: TransportUDP, PacketSize: 512, Port: 9000}},
		},
		{
			Name:        "paper-four-node",
			Description: "§3.3 Figure 7: four stations on a 25/82.5/25 m line, two UDP sessions, testbed asymmetry",
			Seed:        42,
			Duration:    Duration(10 * time.Second),
			MSS:         512,
			Profile:     ProfileTestbed,
			Topology:    Topology{Kind: KindLine, Spacings: []float64{25, 82.5, 25}},
			MAC:         MACParams{RateMbps: 11},
			Flows: []Flow{
				{Src: 0, Dst: 1, Transport: TransportUDP, PacketSize: 512, Port: 9000},
				{Src: 2, Dst: 3, Transport: TransportUDP, PacketSize: 512, Port: 9000},
			},
		},
		{
			Name: "hidden-terminal",
			Description: "two senders 220 m apart (beyond PCS_range) converge on one middle receiver at 1 Mbit/s: " +
				"collisions at the receiver that carrier sense cannot prevent",
			Seed:     42,
			Duration: Duration(10 * time.Second),
			Topology: Topology{Kind: KindLine, N: 3, Spacing: 110},
			MAC:      MACParams{RateMbps: 1},
			Flows: []Flow{
				{Src: 0, Dst: 1, Transport: TransportUDP, PacketSize: 512, Port: 9000},
				{Src: 2, Dst: 1, Transport: TransportUDP, PacketSize: 512, Port: 9001},
			},
		},
		{
			Name: "exposed-terminal",
			Description: "two 50 m sessions pointing away from each other with their senders 100 m apart (inside " +
				"PCS_range) at 5.5 Mbit/s: carrier sense serializes transmissions that could safely overlap",
			Seed:     42,
			Duration: Duration(10 * time.Second),
			Topology: Topology{Kind: KindExplicit, Positions: [][2]float64{{0, 0}, {50, 0}, {150, 0}, {200, 0}}},
			MAC:      MACParams{RateMbps: 5.5},
			Flows: []Flow{
				{Src: 1, Dst: 0, Transport: TransportUDP, PacketSize: 512, Port: 9000},
				{Src: 2, Dst: 3, Transport: TransportUDP, PacketSize: 512, Port: 9000},
			},
		},
		{
			Name: "grid-3x3",
			Description: "nine stations on a 3×3 grid with 25 m spacing at 11 Mbit/s, four one-hop UDP sessions " +
				"contending inside one carrier-sense domain",
			Seed:     42,
			Duration: Duration(10 * time.Second),
			Topology: Topology{Kind: KindGrid, Rows: 3, Cols: 3, Spacing: 25},
			MAC:      MACParams{RateMbps: 11},
			Flows: []Flow{
				{Src: 0, Dst: 1, Transport: TransportUDP, PacketSize: 512, Port: 9000},
				{Src: 2, Dst: 5, Transport: TransportUDP, PacketSize: 512, Port: 9000},
				{Src: 6, Dst: 3, Transport: TransportUDP, PacketSize: 512, Port: 9000},
				{Src: 8, Dst: 7, Transport: TransportUDP, PacketSize: 512, Port: 9000},
			},
		},
		{
			Name: "ring-8",
			Description: "eight stations on a 33 m-radius ring at 11 Mbit/s, four adjacent-pair UDP sessions " +
				"(every receiver neighbors another session's sender)",
			Seed:     42,
			Duration: Duration(10 * time.Second),
			Topology: Topology{Kind: KindRing, N: 8, Radius: 33},
			MAC:      MACParams{RateMbps: 11},
			Flows: []Flow{
				{Src: 0, Dst: 1, Transport: TransportUDP, PacketSize: 512, Port: 9000},
				{Src: 2, Dst: 3, Transport: TransportUDP, PacketSize: 512, Port: 9000},
				{Src: 4, Dst: 5, Transport: TransportUDP, PacketSize: 512, Port: 9000},
				{Src: 6, Dst: 7, Transport: TransportUDP, PacketSize: 512, Port: 9000},
			},
		},
		{
			Name: "grid-32x32",
			Description: "1024 stations on a 32×32 grid with 110 m spacing at 1 Mbit/s, eight paced neighbor flows " +
				"spread across the field: a city-scale hidden-terminal fabric (two-hop pairs sit beyond PCS_range)",
			Seed:     42,
			Duration: Duration(5 * time.Second),
			Topology: Topology{Kind: KindGrid, Rows: 32, Cols: 32, Spacing: 110},
			MAC:      MACParams{RateMbps: 1},
			Flows:    gridNeighborFlows(32, 8),
		},
		random1024(),
		random16k(),
		clusteredBlocks100k(),
		{
			Name: "chain-4",
			Description: "four stations on a 20 m string at 11 Mbit/s, one paced UDP flow relayed end to end " +
				"(3 hops) over compile-time min-hop routes",
			Seed:     42,
			Duration: Duration(10 * time.Second),
			Topology: Topology{Kind: KindLine, N: 4, Spacing: 20},
			MAC:      MACParams{RateMbps: 11},
			Routing:  &RoutingParams{Protocol: "static"},
			Flows: []Flow{
				{Src: 0, Dst: 3, Transport: TransportUDP, PacketSize: 512,
					Interval: Duration(20 * time.Millisecond), Port: 9000},
			},
		},
		{
			Name: "chain-8",
			Description: "eight stations on a 20 m string at 11 Mbit/s, one paced UDP flow relayed over 7 hops " +
				"with DSDV discovering the string on the air",
			Seed:     42,
			Duration: Duration(10 * time.Second),
			Topology: Topology{Kind: KindLine, N: 8, Spacing: 20},
			MAC:      MACParams{RateMbps: 11},
			// The +3 dB neighbor margin keeps the marginal 40 m two-hop
			// shortcuts (which lose ~83% of data epochs) out of the
			// neighbor set while the 20 m string links stay comfortably in.
			Routing: &RoutingParams{Protocol: "dsdv", NeighborMarginDB: 3},
			Flows: []Flow{
				{Src: 0, Dst: 7, Transport: TransportUDP, PacketSize: 512,
					Interval: Duration(20 * time.Millisecond), Port: 9000},
			},
		},
		{
			Name: "mesh-5x5-multihop",
			Description: "25 stations on a 5×5 grid with 20 m spacing at 11 Mbit/s, two paced corner-to-corner " +
				"UDP flows crossing the mesh over DSDV routes",
			Seed:     42,
			Duration: Duration(10 * time.Second),
			Topology: Topology{Kind: KindGrid, Rows: 5, Cols: 5, Spacing: 20},
			MAC:      MACParams{RateMbps: 11},
			// As in chain-8, the margin keeps the 28 m diagonals — which
			// lose a third of their data epochs — from displacing the
			// solid 20 m grid links.
			Routing: &RoutingParams{Protocol: "dsdv", NeighborMarginDB: 3},
			Flows: []Flow{
				{Src: 0, Dst: 24, Transport: TransportUDP, PacketSize: 512,
					Interval: Duration(40 * time.Millisecond), Port: 9000},
				{Src: 4, Dst: 20, Transport: TransportUDP, PacketSize: 512,
					Interval: Duration(40 * time.Millisecond), Port: 9001},
			},
		},
		{
			Name: "mobile-pair",
			Description: "a static sink and a random-waypoint walker on a 300×300 m field at 1 Mbit/s paced CBR: " +
				"the §3.2 mobility consequence — goodput tracks the walker's distance",
			Seed:     42,
			Duration: Duration(30 * time.Second),
			Topology: Topology{Kind: KindExplicit, Positions: [][2]float64{{150, 150}, {160, 150}}},
			MAC:      MACParams{RateMbps: 1},
			Flows: []Flow{
				{Src: 1, Dst: 0, Transport: TransportUDP, PacketSize: 512, Port: 9000, Interval: Duration(20 * time.Millisecond)},
			},
			Mobility: &Mobility{Model: ModelRandomWaypoint, Width: 300, Height: 300, Stations: []int{1}},
		},
	}
}

// faultPresets derives the churn library from the base presets: the
// same topologies and traffic matrices, with a "faults" block layered
// on top, so a faulted preset's healthy twin is always one name away.
func faultPresets(ps []Spec) []Spec {
	base := func(name string) Spec {
		for _, p := range ps {
			if p.Name == name {
				return p
			}
		}
		panic("scenario: fault preset derives from unknown base " + name)
	}

	mesh := base("mesh-5x5-multihop")
	mesh.Name = "churn-mesh-5x5"
	mesh.Description = "mesh-5x5-multihop under relay churn: random relay crashes (~30/min, 0.5–2 s down) plus a " +
		"20 dB shadowing episode on the center station, DSDV re-converging around every hole"
	// Churn only the relays — the four corner flow endpoints stay up, so
	// delivery ratio isolates route breakage from endpoint downtime.
	relays := make([]int, 0, 21)
	for i := 0; i < 25; i++ {
		if i != 0 && i != 4 && i != 20 && i != 24 {
			relays = append(relays, i)
		}
	}
	mesh.Faults = &FaultSpec{
		Churn: &FaultChurn{
			RatePerMin: 30,
			MinDown:    Duration(500 * time.Millisecond),
			MaxDown:    Duration(2 * time.Second),
			Stations:   relays,
		},
		Degradations: []FaultDegradation{
			{Station: 12, From: Duration(2 * time.Second), To: Duration(4 * time.Second), OffsetDB: -20},
		},
	}

	chain := base("chain-8")
	chain.Name = "partition-heal-chain-8"
	chain.Description = "chain-8 cut in half: a 60 dB partition isolates stations 4–7 from 3 s to 6 s, the 7-hop " +
		"flow dies mid-chain, and DSDV re-discovers the string when the partition heals"
	chain.Faults = &FaultSpec{
		// The chain runs along the x axis at 20 m spacing; the box covers
		// stations 4–7 (x = 80–140 m).
		Partitions: []FaultPartition{
			{X0: 70, Y0: -1, X1: 1000, Y1: 1,
				From: Duration(3 * time.Second), To: Duration(6 * time.Second), AttenDB: 60},
		},
	}

	r16k := random16k()
	r16k.Name = "churn-random-16k"
	r16k.Description = "random-16k with city-wide churn: ten station crashes per second (0.2–0.6 s down) across the " +
		"whole field — the fault engine at the city-scale kernel's 16k tier"
	r16k.Faults = &FaultSpec{
		Churn: &FaultChurn{
			RatePerMin: 600,
			MinDown:    Duration(200 * time.Millisecond),
			MaxDown:    Duration(600 * time.Millisecond),
		},
	}

	return []Spec{mesh, chain, r16k}
}

// gridNeighborFlows returns count paced single-hop UDP flows between
// horizontal grid neighbors, spread evenly over a side×side grid so the
// sessions land in distinct carrier-sense domains.
func gridNeighborFlows(side, count int) []Flow {
	flows := make([]Flow, 0, count)
	for i := 0; i < count; i++ {
		// One flow every few rows, staggered across columns so no two
		// flows share a column band.
		row := i * side / count
		col := (i * 7) % (side - 1)
		src := row*side + col
		flows = append(flows, Flow{
			Src: src, Dst: src + 1,
			Transport:  TransportUDP,
			PacketSize: 512,
			Interval:   Duration(20 * time.Millisecond),
			Port:       uint16(9000 + i),
		})
	}
	return flows
}

// random1024 builds the random-1024 preset. On a random field only the
// drawn layout knows which stations are neighbors, so the flows declare
// NearestDst and the engine pairs each of the eight spread-out sources
// with its nearest station at build time — overriding -seed re-draws
// the field *and* re-pairs the flows, so every seed measures viable
// links.
func random1024() Spec {
	s := Spec{
		Name: "random-1024",
		Description: "1024 stations scattered uniformly over a 3.4×3.4 km field at 1 Mbit/s, eight paced " +
			"nearest-neighbor flows: the sparse city-scale regime the spatial medium index is built for",
		Seed:     42,
		Duration: Duration(5 * time.Second),
		Topology: Topology{Kind: KindRandomUniform, N: 1024, Width: 3400, Height: 3400},
		MAC:      MACParams{RateMbps: 1},
	}
	for i := 0; i < 8; i++ {
		s.Flows = append(s.Flows, Flow{
			Src: i * 1024 / 8, NearestDst: true,
			Transport:  TransportUDP,
			PacketSize: 512,
			Interval:   Duration(20 * time.Millisecond),
			Port:       uint16(9000 + i),
		})
	}
	return s
}

// random16k builds the random-16k preset: random-1024 scaled 16× in
// area at the same station density (one station per ~11 300 m²), run
// under the city profile so each transmission's relevance radius covers
// its neighborhood rather than the whole field, and on the calendar
// queue — the backend built for this event population. Like
// random-1024 the flows declare NearestDst, so re-seeding re-pairs them
// with viable links.
func random16k() Spec {
	s := Spec{
		Name: "random-16k",
		Description: "16384 stations scattered uniformly over a 13.6×13.6 km field at 1 Mbit/s under the city " +
			"profile, sixteen paced nearest-neighbor flows on the calendar queue: the 16k tier of the city-scale kernel",
		Seed:      42,
		Duration:  Duration(2 * time.Second),
		Profile:   ProfileCity,
		Scheduler: "calendar",
		Topology:  Topology{Kind: KindRandomUniform, N: 16384, Width: 13600, Height: 13600},
		MAC:       MACParams{RateMbps: 1},
	}
	for i := 0; i < 16; i++ {
		s.Flows = append(s.Flows, Flow{
			Src: i * 16384 / 16, NearestDst: true,
			Transport:  TransportUDP,
			PacketSize: 512,
			Interval:   Duration(20 * time.Millisecond),
			Port:       uint16(9000 + i),
		})
	}
	return s
}

// clusteredBlocks100k builds the clustered-blocks-100k preset: a
// 100 000-station city of 32×32 dense blocks (~98 stations within
// 150 m of each block center) with ~850 m of empty street between
// block centers, under the city profile on the calendar queue. Each
// block is its own contention domain — PCS_range 190 m spans one block,
// never its neighbor — and the block grid's consecutive station
// assignment keeps index locality equal to spatial locality. The
// thirty-two sources land one per 32nd block, so the flows sample
// blocks across the whole city.
func clusteredBlocks100k() Spec {
	s := Spec{
		Name: "clustered-blocks-100k",
		Description: "100000 stations in 1024 dense city blocks over a 27.2×27.2 km field at 1 Mbit/s under the " +
			"city profile, 32 paced nearest-neighbor flows on the calendar queue: the 100k tier of the city-scale kernel",
		Seed:      42,
		Duration:  Duration(time.Second),
		Profile:   ProfileCity,
		Scheduler: "calendar",
		Topology: Topology{Kind: KindClusteredBlocks, N: 100000,
			Rows: 32, Cols: 32, Width: 27200, Height: 27200, Radius: 150},
		MAC: MACParams{RateMbps: 1},
	}
	for i := 0; i < 32; i++ {
		s.Flows = append(s.Flows, Flow{
			Src: i * 100000 / 32, NearestDst: true,
			Transport:  TransportUDP,
			PacketSize: 512,
			Interval:   Duration(20 * time.Millisecond),
			Port:       uint16(9000 + i),
		})
	}
	return s
}

// Presets lists the built-in scenario library, sorted by name.
func Presets() []Spec {
	ps := presets()
	sort.Slice(ps, func(i, j int) bool { return ps[i].Name < ps[j].Name })
	return ps
}

// Preset returns the named built-in scenario.
func Preset(name string) (Spec, error) {
	for _, p := range presets() {
		if p.Name == name {
			return p, nil
		}
	}
	names := make([]string, 0)
	for _, p := range Presets() {
		names = append(names, p.Name)
	}
	return Spec{}, fmt.Errorf("scenario: unknown preset %q (have %v)", name, names)
}
