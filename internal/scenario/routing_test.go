package scenario

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"adhocsim/internal/phy"
	"adhocsim/internal/routing"
)

// TestChain8BothProtocols is the multi-hop acceptance test: the chain-8
// preset must deliver nonzero end-to-end UDP goodput over all 7 relay
// hops under both control planes, deterministically at its fixed seed.
func TestChain8BothProtocols(t *testing.T) {
	for _, proto := range []string{routing.ProtocolStatic, routing.ProtocolDSDV} {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			spec, err := Preset("chain-8")
			if err != nil {
				t.Fatal(err)
			}
			spec.Routing.Protocol = proto
			a := MustRun(spec)
			b := MustRun(spec)
			aj, _ := json.Marshal(a)
			bj, _ := json.Marshal(b)
			if !bytes.Equal(aj, bj) {
				t.Fatalf("fixed-seed run is not deterministic:\n%s\n%s", aj, bj)
			}
			f := a.Flows[0]
			if f.GoodputKbps <= 0 {
				t.Fatalf("no end-to-end goodput: %+v", f)
			}
			if f.Hops < 7 {
				t.Fatalf("delivered path = %d hops, want ≥ 7", f.Hops)
			}
			var forwarded uint64
			for _, st := range a.Stations {
				forwarded += st.NetForwarded
			}
			if forwarded == 0 {
				t.Fatal("nothing was relayed")
			}
			if a.Routing != proto {
				t.Fatalf("Result.Routing = %q", a.Routing)
			}
			if proto == routing.ProtocolDSDV {
				var ctl uint64
				for _, st := range a.Stations {
					ctl += st.CtlBytes
				}
				if ctl == 0 {
					t.Fatal("dsdv reported no control overhead")
				}
			}
		})
	}
}

// TestThreeStationRelayAccounting pins the end-to-end goodput
// accounting of the minimal relay scenario A→B→C: what C's sink counts
// must be consistent with what B forwarded and what A sent, and the
// measured hop count must be 2.
func TestThreeStationRelayAccounting(t *testing.T) {
	spec := Spec{
		Name:     "relay-3",
		Seed:     42,
		Duration: Duration(5 * time.Second),
		Topology: Topology{Kind: KindLine, N: 3, Spacing: 20},
		MAC:      MACParams{RateMbps: 11},
		Routing:  &RoutingParams{Protocol: routing.ProtocolStatic},
		Flows: []Flow{{Src: 0, Dst: 2, Transport: TransportUDP, PacketSize: 512,
			Interval: Duration(20 * time.Millisecond), Port: 9000}},
	}
	res := MustRun(spec)
	f := res.Flows[0]
	src, relay, dst := res.Stations[0], res.Stations[1], res.Stations[2]

	if f.Received == 0 || f.GoodputKbps == 0 {
		t.Fatalf("no end-to-end delivery: %+v", f)
	}
	if f.Hops != 2 {
		t.Fatalf("Hops = %d, want 2", f.Hops)
	}
	// Every datagram C's transport delivered arrived at C's stack.
	if dst.NetReceived != f.Received {
		t.Fatalf("dst stack received %d, sink %d", dst.NetReceived, f.Received)
	}
	// Every packet C received was forwarded by B, and B forwarded no
	// more than A originated.
	if relay.NetForwarded < dst.NetReceived {
		t.Fatalf("relay forwarded %d < dst received %d", relay.NetForwarded, dst.NetReceived)
	}
	if relay.NetForwarded > src.NetSent {
		t.Fatalf("relay forwarded %d > src sent %d", relay.NetForwarded, src.NetSent)
	}
	// The source originated every generated datagram (static routes
	// exist from t=0, so nothing was refused).
	if src.NetSent != f.AppSent {
		t.Fatalf("src stack sent %d, app sent %d", src.NetSent, f.AppSent)
	}
	// Loss happened on the air, not in the accounting: generated =
	// delivered + gaps (+ any packets still in flight at the horizon,
	// which the final-gap accounting of the sink does not count).
	if f.Received+f.Gaps > f.AppSent {
		t.Fatalf("delivered %d + gaps %d > generated %d", f.Received, f.Gaps, f.AppSent)
	}
}

// TestDSDVScenarioLinkBreakRecovery is the scenario-level break test:
// a walking relay carries a 2-hop flow, walks out of range mid-run
// (random waypoint), and DSDV re-resolves the flow through the
// replacement path; the summary reports the control overhead spent.
func TestDSDVScenarioLinkBreakRecovery(t *testing.T) {
	// A static diamond: source 0, destination 3, relays 1 (on the line)
	// and 2 (offset). Both relays are viable; the mobile relay 1 walks
	// away mid-run, and the flow must survive on relay 2.
	spec := Spec{
		Name:     "dsdv-break",
		Seed:     42,
		Duration: Duration(12 * time.Second),
		Topology: Topology{Kind: KindExplicit, Positions: [][2]float64{
			{0, 0}, {20, 0}, {18, 12}, {40, 0},
		}},
		MAC:     MACParams{RateMbps: 11},
		Routing: &RoutingParams{Protocol: routing.ProtocolDSDV},
		Flows: []Flow{{Src: 0, Dst: 3, Transport: TransportUDP, PacketSize: 512,
			Interval: Duration(20 * time.Millisecond), Port: 9000}},
	}
	inst, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Converge and carry traffic with everyone in place.
	inst.Net.Run(6 * time.Second)
	before := inst.udpSinks[0].Received
	if before == 0 {
		t.Fatal("no delivery before the break")
	}
	breaks := func() (n uint64) {
		for _, r := range inst.Routers() {
			n += r.Counters.LinkBreaks
		}
		return n
	}
	preBreaks := breaks()

	// Relay 1 abruptly leaves the field.
	inst.Net.Stations[1].Radio.SetPos(phy.Pos(20, 5000))
	inst.Net.Run(6 * time.Second)

	after := inst.udpSinks[0].Received
	if after <= before {
		t.Fatalf("flow never recovered: %d before, %d after", before, after)
	}
	res := inst.Collect(12 * time.Second)
	if res.Flows[0].Hops < 2 {
		t.Fatalf("recovered path hops = %d", res.Flows[0].Hops)
	}
	var ctl uint64
	for _, st := range res.Stations {
		ctl += st.CtlBytes
	}
	if ctl == 0 {
		t.Fatal("summary reports no control overhead")
	}
	if breaks() == preBreaks {
		// The break may be detected by the source or by a relay whose
		// next hop vanished; someone must have noticed.
		t.Fatal("no station declared a link break")
	}
}

// TestStaticUnreachableFlowErrors proves a flow whose endpoints the
// connectivity graph cannot join is a build error, not a silent
// starvation.
func TestStaticUnreachableFlowErrors(t *testing.T) {
	spec := Spec{
		Name:     "unreachable",
		Seed:     1,
		Duration: Duration(time.Second),
		Topology: Topology{Kind: KindLine, N: 3, Spacing: 200}, // gaps beyond any range
		MAC:      MACParams{RateMbps: 11},
		Routing:  &RoutingParams{Protocol: routing.ProtocolStatic},
		Flows:    []Flow{{Src: 0, Dst: 2, Transport: TransportUDP, PacketSize: 512, Port: 9000}},
	}
	if _, err := Build(spec); err == nil {
		t.Fatal("unreachable static flow built without error")
	}
}

// --- golden: single-hop presets with routing compiled in but disabled ---

var updatePresetGolden = flag.Bool("update", false, "re-record the preset summary golden")

// goldenPresetNames are the single-hop presets pinned byte-for-byte:
// the routing subsystem is compiled in but disabled for all of them, and
// must not perturb a single counter or float.
var goldenPresetNames = []string{
	"paper-two-node", "paper-four-node", "hidden-terminal",
	"exposed-terminal", "grid-3x3", "ring-8",
}

// TestGoldenSingleHopPresets locks the single-hop preset results. The
// golden file was recorded when the routing subsystem landed; any later
// change to these bytes means a change leaked into the routing-disabled
// path. Re-bless with -update only for a change that is meant to alter
// simulation results, and say so in the commit message.
func TestGoldenSingleHopPresets(t *testing.T) {
	got := make(map[string]Result, len(goldenPresetNames))
	for _, name := range goldenPresetNames {
		spec, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Routing != nil {
			t.Fatalf("preset %q is not single-hop", name)
		}
		spec.Duration = Duration(2 * time.Second) // keep the golden cheap
		got[name] = MustRun(spec)
	}
	path := filepath.Join("testdata", "golden_presets.json")
	if *updatePresetGolden {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("recorded %d presets to %s", len(got), path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to record): %v", err)
	}
	buf, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, '\n')
	if !bytes.Equal(buf, want) {
		t.Fatalf("single-hop preset summaries diverged from the recorded golden; " +
			"the routing-disabled path must stay byte-identical (re-bless with -update only for an intended simulation change)")
	}
}
