// Package scenario is the declarative experiment layer: one Spec
// describes an entire 802.11 ad hoc experiment — topology, traffic
// matrix, per-station MAC/PHY configuration, optional mobility, horizon
// and seed — and one engine (Build/Run) compiles it into a live
// node.Network and measures per-flow goodput, loss and MAC-level
// counters.
//
// Specs marshal to and from JSON, so scenarios can live in files and be
// run by cmd/adhocsim -scenario without recompiling. The paper's
// hand-built experiments (internal/experiments RunTwoNode/RunFourNode)
// are thin presets that compile to Specs; golden tests pin their outputs
// bit-for-bit to the pre-refactor implementations.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"adhocsim/internal/mac"
	"adhocsim/internal/obs"
	"adhocsim/internal/phy"
	"adhocsim/internal/routing"
	"adhocsim/internal/sim"
	"adhocsim/internal/trace"
)

// Duration is a time.Duration that marshals to JSON as a human-readable
// string ("10s", "250ms") and unmarshals from either that form or a
// plain number of nanoseconds.
type Duration time.Duration

// D returns the value as a time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// MarshalJSON renders the duration as a string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "10s"-style strings or integer nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("scenario: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return fmt.Errorf("scenario: duration must be a string or nanoseconds: %s", b)
	}
	*d = Duration(ns)
	return nil
}

// Transport names a flow's transport protocol.
type Transport string

// The two transports of the paper's workloads.
const (
	TransportUDP Transport = "udp"
	TransportTCP Transport = "tcp"
)

// MACParams is the JSON-able subset of mac.Config a Spec can set, both
// network-wide (Spec.MAC) and per station (Spec.Stations). The zero
// value means "MAC defaults": 11 Mbit/s, basic access, standard retry
// limits.
type MACParams struct {
	// RateMbps is the unicast data rate: 1, 2, 5.5 or 11. 0 selects the
	// MAC default (11 Mbit/s).
	RateMbps float64 `json:"rate_mbps,omitempty"`
	// RTSCTS protects every unicast data frame with RTS/CTS.
	RTSCTS bool `json:"rtscts,omitempty"`
	// RTSThresholdBytes, when positive, overrides RTSCTS with a byte
	// threshold: MSDUs at least this large are RTS-protected.
	RTSThresholdBytes int `json:"rts_threshold_bytes,omitempty"`
	// ShortRetryLimit / LongRetryLimit / QueueCap follow mac.Config's
	// conventions (0 = default, negative retry limits disable retries).
	ShortRetryLimit int `json:"short_retry_limit,omitempty"`
	LongRetryLimit  int `json:"long_retry_limit,omitempty"`
	QueueCap        int `json:"queue_cap,omitempty"`
	// DisableEIFS and DeferResponses are the ablation switches of
	// mac.Config (see DESIGN.md).
	DisableEIFS    bool `json:"disable_eifs,omitempty"`
	DeferResponses bool `json:"defer_responses,omitempty"`
	// BeaconInterval enables IBSS beaconing when positive.
	BeaconInterval Duration `json:"beacon_interval,omitempty"`
}

// rate returns the phy.Rate for RateMbps (0 = MAC default).
func (p MACParams) rate() (phy.Rate, error) {
	switch p.RateMbps {
	case 0:
		return 0, nil
	case 1:
		return phy.Rate1, nil
	case 2:
		return phy.Rate2, nil
	case 5.5:
		return phy.Rate5_5, nil
	case 11:
		return phy.Rate11, nil
	}
	return 0, fmt.Errorf("scenario: rate %g Mbit/s is not an 802.11b rate", p.RateMbps)
}

// Config compiles the params into a mac.Config (Address and BSSID are
// assigned by the network builder).
func (p MACParams) Config() (mac.Config, error) {
	rate, err := p.rate()
	if err != nil {
		return mac.Config{}, err
	}
	rts := mac.RTSNever
	switch {
	case p.RTSThresholdBytes > 0:
		rts = p.RTSThresholdBytes
	case p.RTSCTS:
		rts = mac.RTSAlways + 1 // any MSDU ≥ 1 byte is protected
	}
	return mac.Config{
		DataRate:        rate,
		RTSThreshold:    rts,
		ShortRetryLimit: p.ShortRetryLimit,
		LongRetryLimit:  p.LongRetryLimit,
		QueueCap:        p.QueueCap,
		DisableEIFS:     p.DisableEIFS,
		DeferResponses:  p.DeferResponses,
		BeaconInterval:  p.BeaconInterval.D(),
	}, nil
}

// StationOverride replaces the network-wide MAC parameters and/or radio
// profile for one station (0-based topology index).
type StationOverride struct {
	Station int `json:"station"`
	// MAC, when non-nil, replaces Spec.MAC wholesale for this station.
	MAC *MACParams `json:"mac,omitempty"`
	// Profile, when non-empty, selects a named radio profile for this
	// station's radio alone (see Spec.Profile for the names).
	Profile string `json:"profile,omitempty"`
}

// Flow is one src→dst traffic session of the scenario's traffic matrix.
type Flow struct {
	// Src and Dst are 0-based station indices into the topology.
	Src int `json:"src"`
	Dst int `json:"dst"`
	// NearestDst, when true, ignores Dst (which must be zero) and
	// resolves the destination at build time to the station nearest Src
	// in the expanded topology. On random topologies this is the only
	// way to declare a flow that is guaranteed a viable link whatever
	// the seed draws — re-seeding a spec re-pairs its flows.
	NearestDst bool `json:"nearest_dst,omitempty"`
	// Transport selects the workload: "udp" is a CBR source (saturating
	// when Interval is zero, paced otherwise), "tcp" a saturating bulk
	// transfer. Defaults to "udp".
	Transport Transport `json:"transport,omitempty"`
	// PacketSize is the application payload in bytes (default 512, the
	// paper's size).
	PacketSize int `json:"packet_size,omitempty"`
	// Interval paces a UDP CBR source (one packet per interval); zero
	// keeps the MAC queue saturated, the paper's asymptotic regime.
	// Ignored for TCP.
	Interval Duration `json:"interval,omitempty"`
	// Port is the destination port (default 9000). Two flows may share a
	// port only if they terminate at different stations.
	Port uint16 `json:"port,omitempty"`
}

func (f Flow) withDefaults() Flow {
	if f.Transport == "" {
		f.Transport = TransportUDP
	}
	if f.PacketSize == 0 {
		f.PacketSize = 512
	}
	if f.Port == 0 {
		f.Port = 9000
	}
	return f
}

// RoutingParams configures the scenario's route control plane
// (internal/routing). Without it the network layer keeps its classic
// single-hop behaviour: every station transmits straight to the
// destination's link-layer address and multi-hop flows starve.
type RoutingParams struct {
	// Protocol selects the control plane: "static" compiles min-hop
	// routes from the topology at build time; "dsdv" runs the
	// destination-sequenced distance-vector protocol over the air.
	Protocol string `json:"protocol"`
	// LinkRangeM overrides the static compiler's connectivity radius in
	// meters. 0 derives it from the network-wide radio profile and data
	// rate (the rate's median transmission range — the paper's
	// TX_range). Ignored by dsdv, which discovers links by hearing
	// advertisements.
	LinkRangeM float64 `json:"link_range_m,omitempty"`
	// AdvertInterval is dsdv's periodic advertisement period (default
	// 1s); SettleDelay bounds its triggered-update delay and broadcast
	// jitter (default 50ms).
	AdvertInterval Duration `json:"advert_interval,omitempty"`
	SettleDelay    Duration `json:"settle_delay,omitempty"`
	// NeighborMarginDB shifts dsdv's gray-zone filter: advertisements
	// arriving weaker than the station's data-rate decode sensitivity
	// plus this margin do not establish the sender as a neighbor
	// (default 0: the sensitivity itself).
	NeighborMarginDB float64 `json:"neighbor_margin_db,omitempty"`
}

// linkRange resolves the static compiler's connectivity radius:
// LinkRangeM when pinned, else the profile's median transmission range
// at the network-wide data rate. Validation and the build both use it,
// so the graph Validate checks is the graph Build installs.
func (r *RoutingParams) linkRange(p *phy.Profile, mac MACParams) float64 {
	if r.LinkRangeM > 0 {
		return r.LinkRangeM
	}
	rate := phy.Rate11
	if rr, err := mac.rate(); err == nil && rr != 0 {
		rate = rr
	}
	return routing.DefaultLinkRange(p, rate)
}

// ParallelParams opts a scenario into the space-partitioned parallel
// event kernel (sim.Exec): the field is split into a grid of regions,
// each region's events run on its own scheduler, and regions advance
// concurrently under a conservative propagation-delay lookahead.
//
// Any grid shape is sound — the lookahead between two regions scales
// with their separation (see internal/phy/lookahead.go) — so explicit
// Cols/Rows are honored exactly. Auto-sized dimensions (0) instead
// target load balance: one region per carrier-sense range the field
// spans, capped at 8 per dimension and shrunk until regions average at
// least 64 stations, so a small field ends up as a single region and
// runs exactly like the sequential kernel. Mobility scenarios ignore
// the block entirely and fall back to the sequential kernel (regions
// would have to re-home moving stations), as do degenerate radio
// models with no finite relevance radius.
type ParallelParams struct {
	// Cols and Rows request the region grid; 0 auto-sizes that
	// dimension from the field extent (see above).
	Cols int `json:"cols,omitempty"`
	Rows int `json:"rows,omitempty"`
	// Workers is the goroutine count driving the regions; 0 means one
	// per CPU (clamped to the region count). Results never depend on it.
	Workers int `json:"workers,omitempty"`
	// Partitioner places the grid's cut lines: "balanced" (the default)
	// puts them at activity-weighted station quantiles per axis
	// (phy.FitWeightedRegionGrid with flow endpoints weighted — see
	// activityWeights), so regions share the expected event load;
	// "uniform" keeps the equal-size reference cells
	// (phy.FitRegionGrid). Both are deterministic functions of the
	// topology draw and the resolved flows. The partition moves
	// tie-break order between same-instant cross-region arrivals, so
	// switching it can flip the documented tie counters on tie-tolerant
	// workloads — same equivalence class as parallel-vs-sequential.
	Partitioner string `json:"partitioner,omitempty"`
	// Sequential selects the executor's single-goroutine reference path
	// (sim.Exec.SetSequential) — the parallel analog of the medium's
	// SetBruteForce/SetGainCache escape hatches, for equivalence tests.
	Sequential bool `json:"sequential,omitempty"`
}

// Partitioner names accepted by ParallelParams.
const (
	PartitionerBalanced = "balanced"
	PartitionerUniform  = "uniform"
)

// Mobility attaches a movement model to some or all stations.
type Mobility struct {
	// Model names the mover; "random-waypoint" is the only model today.
	Model string `json:"model"`
	// Width/Height bound the movement field in meters (default 300×300).
	Width  float64 `json:"width,omitempty"`
	Height float64 `json:"height,omitempty"`
	// MinSpeed/MaxSpeed bound the uniform speed draw in m/s (default
	// pedestrian 0.5–2.0).
	MinSpeed float64 `json:"min_speed,omitempty"`
	MaxSpeed float64 `json:"max_speed,omitempty"`
	// Pause is the dwell time at each waypoint (default 2s); Tick the
	// position-update granularity (default 100ms).
	Pause Duration `json:"pause,omitempty"`
	Tick  Duration `json:"tick,omitempty"`
	// Stations lists the stations that move (0-based indices); empty
	// means all of them.
	Stations []int `json:"stations,omitempty"`
}

// ModelRandomWaypoint is the Mobility.Model name of the random-waypoint
// mover (node.RandomWaypoint).
const ModelRandomWaypoint = "random-waypoint"

// Named radio profiles selectable from JSON.
const (
	// ProfileDefault is phy.DefaultProfile: the calibrated outdoor model.
	ProfileDefault = "default"
	// ProfileTestbed is phy.TestbedProfile: default plus static per-link
	// asymmetry, the §3.3 four-station conditions.
	ProfileTestbed = "testbed"
	// ProfileClear / ProfileDamp are the Figure 4 weather variants.
	ProfileClear = "weather-clear"
	ProfileDamp  = "weather-damp"
	// ProfileCity is phy.CityProfile: urban propagation (exponent 3.5,
	// σ = 2 dB) with a ~1.5 km relevance radius — the model the
	// city-scale presets run under.
	ProfileCity = "city"
)

// profileByName resolves a named profile; "" means ProfileDefault.
func profileByName(name string) (*phy.Profile, error) {
	switch name {
	case "", ProfileDefault:
		return nil, nil // nil lets node.NewNetwork pick phy.DefaultProfile
	case ProfileTestbed:
		return phy.TestbedProfile(), nil
	case ProfileClear:
		return phy.WeatherClear.Apply(phy.DefaultProfile()), nil
	case ProfileDamp:
		return phy.WeatherDamp.Apply(phy.DefaultProfile()), nil
	case ProfileCity:
		return phy.CityProfile(), nil
	}
	return nil, fmt.Errorf("scenario: unknown profile %q", name)
}

// ProfileNames lists the named radio profiles a Spec can reference.
func ProfileNames() []string {
	return []string{ProfileDefault, ProfileTestbed, ProfileClear, ProfileDamp, ProfileCity}
}

// Spec is one complete declarative scenario.
type Spec struct {
	// Name and Description identify the scenario in listings and output.
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	// Seed roots every random draw of the run; equal Specs with equal
	// seeds produce bit-identical results.
	Seed uint64 `json:"seed"`
	// Duration is the measurement horizon (default 10s).
	Duration Duration `json:"duration,omitempty"`
	// MSS overrides the TCP maximum segment size. 0 follows the paper's
	// convention: the packet size of the first TCP flow (so one
	// application packet rides in one segment), or the transport default
	// when no TCP flow exists.
	MSS int `json:"mss,omitempty"`

	// Profile names the network-wide radio profile (see ProfileNames).
	Profile string `json:"profile,omitempty"`
	// CustomProfile, when non-nil, overrides Profile with an arbitrary
	// in-process radio model. Not serialized: JSON scenarios use named
	// profiles.
	CustomProfile *phy.Profile `json:"-"`

	// Topology places the stations.
	Topology Topology `json:"topology"`
	// MAC is the network-wide MAC configuration; Stations overrides it
	// per station.
	MAC      MACParams         `json:"mac,omitempty"`
	Stations []StationOverride `json:"stations,omitempty"`

	// Flows is the traffic matrix. Flows start at time zero and run for
	// the whole horizon, as the paper's sessions do.
	Flows []Flow `json:"flows"`

	// Routing optionally enables a route control plane, which is what
	// lets flows span more than one hop. Packet forwarding is switched
	// on at every station as part of it.
	Routing *RoutingParams `json:"routing,omitempty"`

	// Mobility optionally moves stations during the run.
	Mobility *Mobility `json:"mobility,omitempty"`

	// Faults optionally injects deterministic faults — station crashes,
	// link degradation, regional partitions, flow outages, random churn
	// — compiled per replication against the replication's seed (see
	// internal/faults and FaultSpec).
	Faults *FaultSpec `json:"faults,omitempty"`

	// Parallel opts the run into the space-partitioned parallel kernel.
	// Ignored (sequential fallback) when Mobility is set, and stripped
	// by Replicate (sweeps parallelize across seeds instead).
	Parallel *ParallelParams `json:"parallel,omitempty"`

	// Scheduler selects the event-queue backend every scheduler of the
	// run uses: "heap" (the 4-ary reference backend, the default) or
	// "calendar" (the calendar queue, O(1) near-future scheduling — the
	// right pick at city-scale event populations). The backends are
	// bit-identical; the sim package's cross-backend tests and the
	// scenario toggle-equivalence tests insist on it.
	Scheduler string `json:"scheduler,omitempty"`

	// MACHook, when non-nil, is applied to every station's compiled
	// mac.Config after overrides (station is the 0-based index). It is
	// the programmatic escape hatch for non-serializable configuration —
	// rate controllers, ablation mutations. Not serialized.
	MACHook func(station int, cfg *mac.Config) `json:"-"`

	// Obs opts the run into the out-of-band observability layer
	// (internal/obs): kernel, medium, runner and fault metrics collected
	// into a registry the run report and the live /metrics endpoint
	// read. Strictly out-of-band — results are byte-identical with it
	// on, off, or scraped mid-run.
	Obs *ObsParams `json:"obs,omitempty"`

	// ObsRegistry, when non-nil, is the registry the run publishes into,
	// shared across replications (counters accumulate via atomic adds).
	// Not serialized; nil with Obs.Enabled makes Build create one
	// (retrieve it with Instance.Obs). Implies Obs when set.
	ObsRegistry *obs.Registry `json:"-"`

	// Tracer, when non-nil, is the execution tracer wired into the MAC
	// retry/backoff and routing route-change paths (adhocsim -trace).
	// Each station gets a WithClock handle on its own scheduler. Not
	// serialized, purely observational.
	Tracer *trace.Tracer `json:"-"`
}

// ObsParams is the Spec's observability block.
type ObsParams struct {
	// Enabled turns metric collection on for this run.
	Enabled bool `json:"enabled"`
}

func (s Spec) withDefaults() Spec {
	if s.Duration == 0 {
		s.Duration = Duration(10 * time.Second)
	}
	// Copy the flow slice: withDefaults must not mutate the caller's spec.
	flows := make([]Flow, len(s.Flows))
	for i, f := range s.Flows {
		flows[i] = f.withDefaults()
	}
	s.Flows = flows
	return s
}

// Validate checks the spec for structural errors: unknown topology
// kinds, out-of-range flow endpoints, port clashes, bad rates,
// statically unroutable flows. Build validates automatically; Validate
// exists for early feedback when authoring specs.
func (s Spec) Validate() error {
	d := s.withDefaults()
	positions, flows, err := d.check()
	if err != nil {
		return err
	}
	_, err = d.staticReachability(positions, flows)
	return err
}

// check validates an already-defaulted spec and returns the expanded
// topology plus the flow matrix with every NearestDst destination
// resolved against it, so Build validates, expands and resolves exactly
// once.
func (s Spec) check() ([]phy.Position, []Flow, error) {
	positions, err := s.Topology.Expand(s.Seed)
	if err != nil {
		return nil, nil, err
	}
	flows, err := resolveFlows(s.Flows, positions)
	if err != nil {
		return nil, nil, err
	}
	s.Flows = flows
	n := len(positions)
	if _, err := profileByName(s.Profile); err != nil && s.CustomProfile == nil {
		return nil, nil, err
	}
	if _, err := s.MAC.Config(); err != nil {
		return nil, nil, err
	}
	overridden := make(map[int]bool, len(s.Stations))
	for _, ov := range s.Stations {
		if ov.Station < 0 || ov.Station >= n {
			return nil, nil, fmt.Errorf("scenario: station override %d outside topology of %d stations", ov.Station, n)
		}
		if overridden[ov.Station] {
			return nil, nil, fmt.Errorf("scenario: station %d overridden twice", ov.Station)
		}
		overridden[ov.Station] = true
		if ov.MAC != nil {
			if _, err := ov.MAC.Config(); err != nil {
				return nil, nil, err
			}
		}
		if _, err := profileByName(ov.Profile); err != nil {
			return nil, nil, err
		}
	}
	if len(s.Flows) == 0 {
		return nil, nil, fmt.Errorf("scenario: no flows")
	}
	type sinkKey struct {
		dst  int
		port uint16
	}
	sinks := map[sinkKey]int{}
	for i, f := range s.Flows {
		if f.Src < 0 || f.Src >= n || f.Dst < 0 || f.Dst >= n {
			return nil, nil, fmt.Errorf("scenario: flow %d endpoints %d→%d outside topology of %d stations", i, f.Src, f.Dst, n)
		}
		if f.Src == f.Dst {
			return nil, nil, fmt.Errorf("scenario: flow %d sends to itself (station %d)", i, f.Src)
		}
		if f.Transport != TransportUDP && f.Transport != TransportTCP {
			return nil, nil, fmt.Errorf("scenario: flow %d has unknown transport %q", i, f.Transport)
		}
		if f.PacketSize < 0 || f.PacketSize > mac.MaxMSDU {
			return nil, nil, fmt.Errorf("scenario: flow %d packet size %d outside (0, %d]", i, f.PacketSize, mac.MaxMSDU)
		}
		if f.Interval < 0 {
			return nil, nil, fmt.Errorf("scenario: flow %d has negative interval", i)
		}
		k := sinkKey{f.Dst, f.Port}
		if prev, clash := sinks[k]; clash {
			return nil, nil, fmt.Errorf("scenario: flows %d and %d both terminate at station %d port %d", prev, i, f.Dst, f.Port)
		}
		sinks[k] = i
	}
	if r := s.Routing; r != nil {
		if r.Protocol != routing.ProtocolStatic && r.Protocol != routing.ProtocolDSDV {
			return nil, nil, fmt.Errorf("scenario: unknown routing protocol %q (want one of %v)", r.Protocol, routing.Protocols())
		}
		if r.Protocol == routing.ProtocolDSDV && n > routing.MaxNetworkSize {
			return nil, nil, fmt.Errorf("scenario: dsdv supports at most %d stations (a full route dump must fit one MSDU), topology has %d — use static routing", routing.MaxNetworkSize, n)
		}
		if r.LinkRangeM < 0 {
			return nil, nil, fmt.Errorf("scenario: negative routing link range %g m", r.LinkRangeM)
		}
		if r.AdvertInterval < 0 || r.SettleDelay < 0 {
			return nil, nil, fmt.Errorf("scenario: negative routing interval")
		}
	}
	if m := s.Mobility; m != nil {
		if m.Model != ModelRandomWaypoint {
			return nil, nil, fmt.Errorf("scenario: unknown mobility model %q", m.Model)
		}
		seen := make(map[int]bool, len(m.Stations))
		for _, st := range m.Stations {
			if st < 0 || st >= n {
				return nil, nil, fmt.Errorf("scenario: mobility station %d outside topology of %d stations", st, n)
			}
			if seen[st] {
				return nil, nil, fmt.Errorf("scenario: mobility station %d listed twice", st)
			}
			seen[st] = true
		}
	}
	if p := s.Parallel; p != nil {
		if p.Cols < 0 || p.Rows < 0 {
			return nil, nil, fmt.Errorf("scenario: negative parallel region grid %dx%d", p.Cols, p.Rows)
		}
		if p.Workers < 0 {
			return nil, nil, fmt.Errorf("scenario: negative parallel worker count %d", p.Workers)
		}
		switch p.Partitioner {
		case "", PartitionerBalanced, PartitionerUniform:
		default:
			return nil, nil, fmt.Errorf("scenario: unknown partitioner %q (want %s or %s)",
				p.Partitioner, PartitionerBalanced, PartitionerUniform)
		}
	}
	if _, err := sim.ParseKind(s.Scheduler); err != nil {
		return nil, nil, fmt.Errorf("scenario: unknown scheduler %q (want heap or calendar)", s.Scheduler)
	}
	if s.Duration <= 0 {
		return nil, nil, fmt.Errorf("scenario: non-positive duration %v", s.Duration.D())
	}
	if err := s.checkFaults(n, s.Flows); err != nil {
		return nil, nil, err
	}
	return positions, s.Flows, nil
}

// staticReachability rejects flows the static compiler cannot route,
// returning the solved graph (nil when static routing does not apply)
// so that within one Build the validated graph is also the installed
// one. (A Validate-then-Build sequence still solves twice — the
// standalone Validate has nowhere to stash the graph; per sweep that
// is one extra solve per worker, amortized over its replications.) With static routing on a deterministic topology an
// unreachable flow is a spec bug; catching it at Validate/Build time
// (not per Reset — the answer is seed-independent, and re-deriving the
// all-pairs graph per replication would undercut arena reuse) means a
// sweep fails before it fans out. On a random topology reachability is
// a property of the seed's draw, so a disconnected flow is legal — it
// starves (ErrNoRoute, counted as drops) for that replication rather
// than crashing the sweep.
func (s Spec) staticReachability(positions []phy.Position, flows []Flow) (*routing.Graph, error) {
	r := s.Routing
	if r == nil || r.Protocol != routing.ProtocolStatic || s.Topology.Kind == KindRandomUniform {
		return nil, nil
	}
	p := s.CustomProfile
	if p == nil {
		p, _ = profileByName(s.Profile) // error already rejected by check
	}
	if p == nil {
		p = phy.DefaultProfile()
	}
	g := routing.NewGraph(positions, r.linkRange(p, s.MAC))
	for i, f := range flows {
		if g.Hops(f.Src, f.Dst) < 0 {
			return nil, fmt.Errorf("scenario: flow %d (%d→%d) is unreachable over the static %v", i, f.Src, f.Dst, g)
		}
	}
	return g, nil
}

// nearestIndexMin is the station count above which NearestDst
// resolution searches a spatial hash instead of scanning every
// position; below it the scan wins.
const nearestIndexMin = 1024

// nearestBruteOnly forces the reference linear scan in resolveFlows —
// the path the nearest-pairing equivalence test compares the indexed
// search against.
var nearestBruteOnly bool

// nearestStationIndexed finds the station nearest positions[src]
// through a growing-radius query over ix. The over-approximating query
// guarantees every station within the radius is returned, so once the
// best candidate's distance is within the radius nothing closer can
// hide outside it. Ties break toward the lowest index, exactly like
// the reference scan (which keeps the first minimum it meets).
func nearestStationIndexed(ix *phy.CellIndex, positions []phy.Position, src int) int {
	center := positions[src]
	r := ix.CellSize()
	var buf []uint32
	for {
		buf = ix.AppendWithin(buf[:0], center, r)
		dst, best := -1, math.Inf(1)
		for _, v := range buf {
			j := int(v)
			if j == src {
				continue
			}
			if d := phy.Dist(center, positions[j]); d < best || (d == best && j < dst) {
				dst, best = j, d
			}
		}
		if dst >= 0 && best <= r {
			return dst
		}
		r *= 2
	}
}

// resolveFlows returns the flow matrix with every NearestDst
// destination replaced by the index of the station nearest that flow's
// source in positions. The input slice is not mutated (check runs on a
// defaulted copy, but Build keeps the resolved result).
func resolveFlows(flows []Flow, positions []phy.Position) ([]Flow, error) {
	resolved := flows
	copied := false
	var ix *phy.CellIndex
	for i, f := range flows {
		if !f.NearestDst {
			continue
		}
		if f.Dst != 0 {
			return nil, fmt.Errorf("scenario: flow %d sets both nearest_dst and dst %d", i, f.Dst)
		}
		// A nearest_dst destination depends on the seed, so the usual
		// sink-uniqueness check (same station, same port) could pass at
		// one seed and clash at another — a replication sweep would then
		// crash mid-run. Require the port to be unique across all flows,
		// which is seed-independent and keeps every replication valid.
		for j, other := range flows {
			if j != i && other.Port == f.Port {
				return nil, fmt.Errorf("scenario: nearest_dst flow %d must use a port unique across all flows: port %d is shared with flow %d, and the nearest destination varies with the seed", i, f.Port, j)
			}
		}
		if f.Src < 0 || f.Src >= len(positions) {
			return nil, fmt.Errorf("scenario: flow %d source %d outside topology of %d stations", i, f.Src, len(positions))
		}
		if len(positions) < 2 {
			return nil, fmt.Errorf("scenario: flow %d needs a second station to pair with", i)
		}
		if !copied {
			resolved = append([]Flow(nil), flows...)
			copied = true
		}
		if len(positions) >= nearestIndexMin && !nearestBruteOnly {
			if ix == nil {
				// Density-scaled cells (~1 station per cell) keep both the
				// build and each growing-radius probe O(earshot).
				spanX, spanY := fieldSpans(positions)
				cell := math.Max(spanX, spanY) / math.Sqrt(float64(len(positions)))
				if !(cell > 0) {
					cell = 1
				}
				ix = phy.NewCellIndex(cell)
				for j, p := range positions {
					ix.Insert(uint32(j), p)
				}
			}
			resolved[i].Dst = nearestStationIndexed(ix, positions, f.Src)
		} else {
			dst, best := -1, math.Inf(1)
			for j, p := range positions {
				if j == f.Src {
					continue
				}
				if d := phy.Dist(positions[f.Src], p); d < best {
					dst, best = j, d
				}
			}
			resolved[i].Dst = dst
		}
		resolved[i].NearestDst = false
	}
	return resolved, nil
}

// ParseSpec decodes and validates a JSON scenario. Unknown fields are
// rejected so typos in hand-written specs fail loudly.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// MarshalSpec encodes a spec as indented JSON.
func MarshalSpec(s Spec) ([]byte, error) {
	buf, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return append(buf, '\n'), nil
}
