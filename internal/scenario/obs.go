package scenario

import (
	"time"

	"adhocsim/internal/medium"
	"adhocsim/internal/obs"
	"adhocsim/internal/sim"
)

// This file is the scenario layer's bridge between the kernel's plain
// out-of-band counters and the obs registry's atomics. The kernels keep
// their counters as ordinary fields (owned by one goroutine — free to
// bump, impossible to contend on); a publisher flushes the *deltas*
// into registry counters at barrier-safe points: after every Run slice
// of a metered run, at Collect, and after each replication. Scrapers
// read only registry atomics, so a /metrics request mid-run observes a
// slightly stale but perfectly race-free view, and never touches — let
// alone perturbs — simulation state. Only genuinely low-frequency or
// already-concurrent paths (exec window/barrier histograms, fault
// edges, per-replication wall times) write the atomics directly.

// obsPub publishes one instance's kernel counters into a registry. A
// nil *obsPub (observability off) makes every method a no-op.
type obsPub struct {
	reg *obs.Registry

	simFired, simPushes, simCalResizes *obs.Counter
	execWindows, execMessages          *obs.Counter
	medTx, medDeliv, medPHYErr         *obs.Counter
	gainHits, gainMisses               *obs.Counter
	fanReplays, fanBuilds              *obs.Counter
	candReuses, candRebuilds           *obs.Counter
	soaRescans                         *obs.Counter

	windowWall, barrierWait *obs.Histogram

	crashes, restarts       *obs.Counter
	outageStarts, outageEnd *obs.Counter
	planned                 [4]*obs.Counter

	// last holds the absolute kernel counts already published, so
	// repeated publishes (every progress slice) add only the increments
	// and several instances can share one registry.
	last kernelCounts
}

// kernelCounts is one coherent reading of every counter the publisher
// mirrors. All sources are monotone between rebases.
type kernelCounts struct {
	sched             sim.Stats
	med               medium.Stats
	windows, messages uint64
}

func newObsPub(reg *obs.Registry) *obsPub {
	if reg == nil {
		return nil
	}
	return &obsPub{
		reg:           reg,
		simFired:      reg.Counter("sim_events_fired_total", "events executed across all schedulers"),
		simPushes:     reg.Counter("sim_queue_pushes_total", "event-queue insertions (heap or calendar backend)"),
		simCalResizes: reg.Counter("sim_calendar_resizes_total", "calendar-queue bucket-array resizes"),
		execWindows:   reg.Counter("exec_windows_total", "parallel executor barrier windows run"),
		execMessages:  reg.Counter("exec_messages_total", "cross-region messages delivered into region schedulers"),
		medTx:         reg.Counter("medium_transmissions_total", "frames put on the air"),
		medDeliv:      reg.Counter("medium_deliveries_total", "frames decoded by a receiver"),
		medPHYErr:     reg.Counter("medium_phy_errors_total", "receptions lost to SINR/PHY errors"),
		gainHits:      reg.Counter("medium_gain_cache_hits_total", "link-gain lookups served fully from cache"),
		gainMisses:    reg.Counter("medium_gain_cache_misses_total", "link-gain lookups recomputing at least one component"),
		fanReplays:    reg.Counter("medium_fanout_replays_total", "transmissions replayed from the fan-out memo"),
		fanBuilds:     reg.Counter("medium_fanout_builds_total", "transmissions that walked candidates and rebuilt the memo"),
		candReuses:    reg.Counter("medium_candidate_reuses_total", "candidate-memo reuses (index walk skipped)"),
		candRebuilds:  reg.Counter("medium_candidate_rebuilds_total", "candidate-memo rebuilds after geometry changes"),
		soaRescans:    reg.Counter("medium_soa_rescans_total", "arrival-list energy-fold rebuilds at trailing edges"),
		windowWall:    reg.Histogram("exec_window_wall_ns", "wall nanoseconds per executor window (worker 0)"),
		barrierWait:   reg.Histogram("exec_barrier_wait_ns", "wall nanoseconds each worker waits per barrier crossing"),
		crashes:      reg.Counter("faults_crashes_applied_total", "station crash edges applied"),
		restarts:     reg.Counter("faults_restarts_applied_total", "station restart edges applied"),
		outageStarts: reg.Counter("faults_outage_starts_applied_total", "flow outage start edges applied"),
		outageEnd:    reg.Counter("faults_outage_ends_applied_total", "flow outage end edges applied"),
		planned: [4]*obs.Counter{
			reg.Counter("faults_crashes_planned_total", "station crash edges compiled into schedules"),
			reg.Counter("faults_restarts_planned_total", "station restart edges compiled into schedules"),
			reg.Counter("faults_outage_starts_planned_total", "flow outage start edges compiled into schedules"),
			reg.Counter("faults_outage_ends_planned_total", "flow outage end edges compiled into schedules"),
		},
	}
}

// attach installs the hooks that must write the registry directly: the
// executor's window/barrier histograms (atomic observes from worker
// goroutines; out-of-band by construction).
func (p *obsPub) attach(inst *Instance) {
	if p == nil || inst.Net.Exec == nil {
		return
	}
	inst.Net.Exec.SetObs(sim.ExecObs{WindowWall: p.windowWall, BarrierWait: p.barrierWait})
}

func (p *obsPub) gather(inst *Instance) kernelCounts {
	c := kernelCounts{sched: inst.Net.KernelStats(), med: inst.Net.Medium.Stats()}
	if inst.Net.Exec != nil {
		c.windows = inst.Net.Exec.Windows()
		c.messages = inst.Net.Exec.Messages()
	}
	return c
}

// dsub is a saturating delta: if the kernel counters rewound under us
// (a Reset without a rebase), treat the current value as fresh growth
// rather than underflowing.
func dsub(cur, last uint64) uint64 {
	if cur < last {
		return cur
	}
	return cur - last
}

// publish flushes the growth since the previous publish into the
// registry. Call only from the driving goroutine at a point where no
// region worker is running (after Run/Run-slice returns) — the same
// discipline FoldCounters and KernelStats already require.
func (p *obsPub) publish(inst *Instance) {
	if p == nil {
		return
	}
	cur := p.gather(inst)
	p.simFired.Add(dsub(cur.sched.Fired, p.last.sched.Fired))
	p.simPushes.Add(dsub(cur.sched.Pushes, p.last.sched.Pushes))
	p.simCalResizes.Add(dsub(cur.sched.CalResizes, p.last.sched.CalResizes))
	p.execWindows.Add(dsub(cur.windows, p.last.windows))
	p.execMessages.Add(dsub(cur.messages, p.last.messages))
	p.medTx.Add(dsub(cur.med.Transmissions, p.last.med.Transmissions))
	p.medDeliv.Add(dsub(cur.med.Deliveries, p.last.med.Deliveries))
	p.medPHYErr.Add(dsub(cur.med.PHYErrors, p.last.med.PHYErrors))
	p.gainHits.Add(dsub(cur.med.GainHits, p.last.med.GainHits))
	p.gainMisses.Add(dsub(cur.med.GainMisses, p.last.med.GainMisses))
	p.fanReplays.Add(dsub(cur.med.FanReplays, p.last.med.FanReplays))
	p.fanBuilds.Add(dsub(cur.med.FanBuilds, p.last.med.FanBuilds))
	p.candReuses.Add(dsub(cur.med.CandReuses, p.last.med.CandReuses))
	p.candRebuilds.Add(dsub(cur.med.CandRebuilds, p.last.med.CandRebuilds))
	p.soaRescans.Add(dsub(cur.med.SoARescans, p.last.med.SoARescans))
	p.last = cur
}

// rebase re-reads the kernel counters as the new baseline without
// publishing — call right after a Reset rewinds them to zero.
func (p *obsPub) rebase(inst *Instance) {
	if p == nil {
		return
	}
	p.last = p.gather(inst)
}

// faultCounters hands the fault wiring its applied-edge counters,
// indexed by faults.Kind. All nil when observability is off; the
// closures then pay one nil check per fired edge.
func (p *obsPub) faultCounters() [4]*obs.Counter {
	if p == nil {
		return [4]*obs.Counter{}
	}
	return [4]*obs.Counter{p.crashes, p.restarts, p.outageStarts, p.outageEnd}
}

// notePlanned records a freshly compiled fault schedule's executable
// event counts by kind (faults.Schedule.EventCounts order) — the
// planned side of the planned-vs-applied pair a report compares.
func (p *obsPub) notePlanned(counts [4]int) {
	if p == nil {
		return
	}
	for k, n := range counts {
		p.planned[k].Add(uint64(n))
	}
}

// wireTracer hands every MAC and every router a tracer handle bound to
// its own station's clock (the region scheduler's in parallel mode).
// Idempotent; Build and Reset both call it after the routers exist.
func (inst *Instance) wireTracer() {
	tr := inst.Spec.Tracer
	if tr == nil {
		return
	}
	for _, st := range inst.Net.Stations {
		st.MAC.SetTracer(tr.WithClock(st.Sched.Now))
	}
	for i, r := range inst.routers {
		r.SetTracer(tr.WithClock(inst.Net.Stations[i].Sched.Now))
	}
}

// Obs returns the registry this instance publishes into, nil when
// observability is off. With Spec.Obs enabled but no Spec.ObsRegistry,
// Build created it — this is how callers reach the report data.
func (inst *Instance) Obs() *obs.Registry {
	if inst.pub == nil {
		return nil
	}
	return inst.pub.reg
}

// PublishObs flushes the instance's kernel counters into its registry
// (no-op when observability is off). Runners driving Net directly can
// call it at any post-Run point to freshen a live /metrics view;
// Collect calls it automatically.
func (inst *Instance) PublishObs() { inst.pub.publish(inst) }

// runnerObs bundles the replication-harness metrics: per-replication
// wall time, recovered panics, replication count, and the sweep's
// worker utilization. All handles are nil (no-ops) when obs is off.
type runnerObs struct {
	repWall     *obs.Histogram
	reps        *obs.Counter
	panics      *obs.Counter
	utilization *obs.Gauge
	workers     *obs.Gauge
}

func newRunnerObs(reg *obs.Registry) runnerObs {
	if reg == nil {
		return runnerObs{}
	}
	return runnerObs{
		repWall:     reg.Histogram("runner_rep_wall_ns", "wall nanoseconds per replication"),
		reps:        reg.Counter("runner_reps_total", "replications completed"),
		panics:      reg.Counter("runner_panics_recovered_total", "replication panics recovered by the harness"),
		utilization: reg.Gauge("runner_worker_utilization", "busy fraction of the replication workers over the last sweep"),
		workers:     reg.Gauge("runner_workers", "replication worker count of the last sweep"),
	}
}

// onJobDone returns the runner.Config hook recording one replication's
// wall time, or nil when obs is off (keeping the runner's hot loop
// branch-free). Safe for concurrent calls: every update is atomic.
func (ro runnerObs) onJobDone() func(i int, wall time.Duration, panicked bool) {
	if ro.repWall == nil {
		return nil
	}
	return func(_ int, wall time.Duration, panicked bool) {
		ro.repWall.Observe(uint64(wall))
		ro.reps.Inc()
		if panicked {
			ro.panics.Inc()
		}
	}
}

// noteSweep records a finished sweep's worker utilization: the summed
// per-replication busy time against workers × elapsed wall time.
func (ro runnerObs) noteSweep(workers int, elapsed time.Duration) {
	if ro.utilization == nil || workers <= 0 || elapsed <= 0 {
		return
	}
	busy := time.Duration(ro.repWall.Sum())
	u := float64(busy) / (float64(workers) * float64(elapsed))
	if u > 1 {
		u = 1
	}
	ro.workers.Set(float64(workers))
	ro.utilization.Set(u)
}
