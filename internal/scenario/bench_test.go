package scenario

import (
	"runtime"
	"testing"
)

// BenchmarkRandom1024Sequential is the end-to-end baseline the parallel
// kernel is measured against: the random-1024 preset built and run on
// the classic single-scheduler path, full scenario cost (build + run +
// collect). The ns/event metric divides wall time by the events the
// kernel executed, so it is comparable with the parallel bench below
// only after accounting for the executor's extra per-region message
// events (the parallel run executes ~1.8× the events for the same
// logical work; BENCH_PR6.json at the root records both sides).
func BenchmarkRandom1024Sequential(b *testing.B) {
	benchmarkRandom1024(b, nil)
}

// BenchmarkRandom1024ParallelRegions is the PR 6 headline bench: the
// same preset on the space-partitioned executor with an auto-fitted
// region grid (4×4 at this field size) and one worker per CPU. On a
// multi-core host the regions run concurrently under the conservative
// lookahead window; on one CPU the bench degrades gracefully to
// near-sequential cost and measures pure protocol overhead (windows,
// inter-region messaging, barriers).
func BenchmarkRandom1024ParallelRegions(b *testing.B) {
	benchmarkRandom1024(b, &ParallelParams{Workers: runtime.GOMAXPROCS(0)})
}

func benchmarkRandom1024(b *testing.B, par *ParallelParams) {
	spec, err := Preset("random-1024")
	if err != nil {
		b.Fatal(err)
	}
	spec.Parallel = par
	b.ReportAllocs()
	b.ResetTimer()
	var fired uint64
	for i := 0; i < b.N; i++ {
		inst, err := Build(spec)
		if err != nil {
			b.Fatal(err)
		}
		horizon := inst.Spec.Duration.D()
		inst.Net.Run(horizon)
		inst.Collect(horizon)
		fired = inst.Net.Fired()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(fired), "ns/event")
	b.ReportMetric(float64(fired), "events/run")
}
