package scenario

import (
	"runtime"
	"testing"
)

// BenchmarkRandom1024Sequential is the end-to-end baseline the parallel
// kernel is measured against: the random-1024 preset built and run on
// the classic single-scheduler path, full scenario cost (build + run +
// collect). The ns/event metric divides wall time by the events the
// kernel executed, so it is comparable with the parallel bench below
// only after accounting for the executor's extra per-region message
// events (the parallel run executes ~1.8× the events for the same
// logical work; BENCH_PR6.json at the root records both sides).
func BenchmarkRandom1024Sequential(b *testing.B) {
	benchmarkRandom1024(b, nil)
}

// BenchmarkRandom1024ParallelRegions is the PR 6 headline bench: the
// same preset on the space-partitioned executor with an auto-fitted
// region grid (4×4 at this field size) and one worker per CPU. On a
// multi-core host the regions run concurrently under the conservative
// lookahead window; on one CPU the bench degrades gracefully to
// near-sequential cost and measures pure protocol overhead (windows,
// inter-region messaging, barriers).
func BenchmarkRandom1024ParallelRegions(b *testing.B) {
	benchmarkRandom1024(b, &ParallelParams{Workers: runtime.GOMAXPROCS(0)})
}

func benchmarkRandom1024(b *testing.B, par *ParallelParams) {
	spec, err := Preset("random-1024")
	if err != nil {
		b.Fatal(err)
	}
	spec.Parallel = par
	b.ReportAllocs()
	b.ResetTimer()
	var fired, logical uint64
	for i := 0; i < b.N; i++ {
		inst, err := Build(spec)
		if err != nil {
			b.Fatal(err)
		}
		horizon := inst.Spec.Duration.D()
		inst.Net.Run(horizon)
		inst.Collect(horizon)
		fired = inst.Net.Fired()
		logical = logicalEvents(inst)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(fired), "ns/event")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(logical), "ns/logical-event")
	b.ReportMetric(float64(fired), "events/run")
}

// logicalEvents reconstructs the pre-batching event stream the PR 4
// ns/logical-event baseline divides by: every fired scheduler event,
// minus the two pooled batch actions per transmission, plus the two
// per-receiver arrival edges (start/end) batching folded into them.
// Each arrival edge settles into exactly one radio verdict counter
// (decoded, errored, or missed), so the verdict sum counts the edges;
// only edges still in flight at the horizon are missed (on random-1024
// this formula reproduces BENCH_PR4.json's 3695669-event reference
// stream to within 16 events, 4 per mille of one percent).
func logicalEvents(inst *Instance) uint64 {
	var edges uint64
	for _, st := range inst.Net.Stations {
		edges += st.Radio.FramesDecoded + st.Radio.FramesErrored + st.Radio.FramesMissed
	}
	return inst.Net.Fired() - 2*inst.Net.Medium.Transmissions + 2*edges
}

// BenchmarkRandom16k is the PR 7 headline bench: the 16384-station city
// preset at its full duration on its own configuration (calendar queue,
// hierarchical index, incremental interference sums).
// BenchmarkRandom16kHeap is the same workload on the 4-ary heap
// reference backend — the pair isolates what the calendar queue buys at
// city scale. BenchmarkClusteredBlocks100k is the 100k tier. All three
// build once and Reset per iteration, so ns/event is pure kernel cost
// (the city benches guard the scheduler, not the construction path —
// TestRandom16kBuildBudget guards that). A full-preset iteration runs
// well under a second, so the CI bench smoke (-benchtime=1x) stays
// cheap without cutting the horizon — and the uncut ns/logical-event
// figure is exactly the acceptance metric BENCH_PR7.json records.
func BenchmarkRandom16k(b *testing.B) {
	benchmarkCityKernel(b, "random-16k", "")
}

func BenchmarkRandom16kHeap(b *testing.B) {
	benchmarkCityKernel(b, "random-16k", "heap")
}

func BenchmarkClusteredBlocks100k(b *testing.B) {
	benchmarkCityKernel(b, "clustered-blocks-100k", "")
}

// BenchmarkRandom16kParallel and BenchmarkClusteredBlocks100kParallel
// are the PR 8 headline benches: the city presets at full duration on
// the space-partitioned kernel with the auto-fitted 8x8 grid and the
// default balanced partitioner; the *Uniform variants pin the
// equal-cell reference partitioner so the pair isolates what
// occupancy-balanced cut lines buy. Parallel instances do not support
// Reset, so each iteration rebuilds untimed (StopTimer/StartTimer
// brackets the build) and ns/event is still pure kernel cost. Beyond
// the timing, each bench reports the kernel's structural metrics —
// windows, cross-region messages, and the load-balance factor
// (max/mean per-region events) — which BENCH_PR8.json records.
func BenchmarkRandom16kParallel(b *testing.B) {
	benchmarkCityParallel(b, "random-16k", PartitionerBalanced)
}

func BenchmarkRandom16kParallelUniform(b *testing.B) {
	benchmarkCityParallel(b, "random-16k", PartitionerUniform)
}

func BenchmarkClusteredBlocks100kParallel(b *testing.B) {
	benchmarkCityParallel(b, "clustered-blocks-100k", PartitionerBalanced)
}

func BenchmarkClusteredBlocks100kParallelUniform(b *testing.B) {
	benchmarkCityParallel(b, "clustered-blocks-100k", PartitionerUniform)
}

func benchmarkCityParallel(b *testing.B, name, part string) {
	spec, err := Preset(name)
	if err != nil {
		b.Fatal(err)
	}
	horizon := spec.Duration.D()
	spec.Parallel = &ParallelParams{Workers: runtime.GOMAXPROCS(0), Partitioner: part}
	b.ReportAllocs()
	b.ResetTimer()
	var fired, logical, windows, messages uint64
	var balance float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		inst, err := Build(spec)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		inst.Net.Run(horizon)
		inst.Collect(horizon)
		fired = inst.Net.Fired()
		logical = logicalEvents(inst)
		if es := inst.ExecStats(); es != nil {
			windows, messages, balance = es.Windows, es.Messages, es.LoadBalance
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(fired), "ns/event")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(logical), "ns/logical-event")
	b.ReportMetric(float64(logical), "logical-events/run")
	b.ReportMetric(float64(windows), "windows/run")
	b.ReportMetric(float64(messages), "xregion-msgs/run")
	b.ReportMetric(balance, "load-balance")
}

func benchmarkCityKernel(b *testing.B, name string, sched string) {
	spec, err := Preset(name)
	if err != nil {
		b.Fatal(err)
	}
	horizon := spec.Duration.D()
	if sched != "" {
		spec.Scheduler = sched
	}
	inst, err := Build(spec)
	if err != nil {
		b.Fatal(err)
	}
	// One untimed replication warms the arena — gain-cache
	// transcendentals, fan-out memos, pools — so the timed iterations
	// measure the steady state a replication sweep actually runs in.
	if err := inst.Reset(spec.Seed); err != nil {
		b.Fatal(err)
	}
	inst.Net.Run(horizon)
	inst.Collect(horizon)
	b.ReportAllocs()
	b.ResetTimer()
	var fired, logical uint64
	for i := 0; i < b.N; i++ {
		if err := inst.Reset(spec.Seed); err != nil {
			b.Fatal(err)
		}
		inst.Net.Run(horizon)
		inst.Collect(horizon)
		fired = inst.Net.Fired()
		logical = logicalEvents(inst)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(fired), "ns/event")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(logical), "ns/logical-event")
	b.ReportMetric(float64(logical), "logical-events/run")
}
