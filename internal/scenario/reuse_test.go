package scenario

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// reuseSpecs returns the scenarios the arena-reuse equivalence tests
// sweep: every preset small enough for the test budget (the two
// 1024-station presets are covered by the repository-root macro
// benchmark instead), plus purpose-built specs for the per-run state
// the presets do not exercise — TCP connections, IBSS beaconing, and a
// seed-dependent random topology with NearestDst re-pairing, which
// forces Reset to re-place every radio and re-resolve the flow matrix.
func reuseSpecs(t *testing.T) []Spec {
	t.Helper()
	var specs []Spec
	for _, spec := range Presets() {
		positions, err := spec.Topology.Expand(spec.Seed)
		if err != nil {
			t.Fatalf("preset %q: %v", spec.Name, err)
		}
		if len(positions) > 16 {
			continue
		}
		spec.Duration = Duration(time.Second)
		specs = append(specs, spec)
	}
	specs = append(specs,
		Spec{
			Name:     "reuse-tcp-bulk",
			Seed:     7,
			Duration: Duration(time.Second),
			MSS:      512,
			Topology: Topology{Kind: KindLine, N: 3, Spacing: 15},
			MAC:      MACParams{RateMbps: 11},
			Flows: []Flow{
				{Src: 0, Dst: 1, Transport: TransportTCP, PacketSize: 512, Port: 5001},
				{Src: 2, Dst: 1, Transport: TransportUDP, PacketSize: 256, Port: 5002},
			},
		},
		Spec{
			Name:     "reuse-beacons",
			Seed:     11,
			Duration: Duration(time.Second),
			Topology: Topology{Kind: KindLine, N: 2, Spacing: 10},
			MAC:      MACParams{RateMbps: 2, BeaconInterval: Duration(100 * time.Millisecond)},
			Flows:    []Flow{{Src: 0, Dst: 1, Transport: TransportUDP, PacketSize: 512, Port: 9000}},
		},
		Spec{
			Name:     "reuse-random-nearest",
			Seed:     13,
			Duration: Duration(time.Second),
			Profile:  ProfileTestbed, // static + dynamic shadowing across reseeds
			Topology: Topology{Kind: KindRandomUniform, N: 12, Width: 400, Height: 400},
			MAC:      MACParams{RateMbps: 1},
			Flows: []Flow{
				{Src: 0, NearestDst: true, Transport: TransportUDP, PacketSize: 512,
					Interval: Duration(20 * time.Millisecond), Port: 9000},
				{Src: 6, NearestDst: true, Transport: TransportUDP, PacketSize: 512,
					Interval: Duration(20 * time.Millisecond), Port: 9001},
			},
		},
	)
	return specs
}

// marshalSummary renders a summary for byte-level comparison.
func marshalSummary(t *testing.T, s Summary) []byte {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestReplicateReuseMatchesRebuild is the PR 4 arena-reuse equivalence
// test: a replication sweep that builds each worker's network once and
// re-seeds it per replication must produce a byte-identical summary to
// the reference sweep that rebuilds the network for every replication,
// across the preset library and the purpose-built specs above.
func TestReplicateReuseMatchesRebuild(t *testing.T) {
	const reps = 3
	for _, spec := range reuseSpecs(t) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			// workers=1 guarantees one worker runs several replications
			// back to back, so the sweep genuinely exercises Reset (with
			// more workers than reps every replication could land on a
			// fresh arena and the test would prove nothing).
			reuse, err := Replicate(spec, reps, 1, nil)
			if err != nil {
				t.Fatal(err)
			}
			SetRebuildEachRep(true)
			rebuild, err := Replicate(spec, reps, 1, nil)
			SetRebuildEachRep(false)
			if err != nil {
				t.Fatal(err)
			}
			a, b := marshalSummary(t, reuse), marshalSummary(t, rebuild)
			if !bytes.Equal(a, b) {
				t.Fatalf("arena reuse diverged from rebuild-per-rep:\nreuse:   %s\nrebuild: %s", a, b)
			}
			// The worker count must stay irrelevant with reuse on.
			parallel, err := Replicate(spec, reps, 3, nil)
			if err != nil {
				t.Fatal(err)
			}
			if c := marshalSummary(t, parallel); !bytes.Equal(a, c) {
				t.Fatalf("reuse summary depends on worker count:\n1 worker:  %s\n3 workers: %s", a, c)
			}
		})
	}
}

// TestInstanceResetMatchesBuild exercises Reset directly, outside the
// sweep machinery: running seed B on a network previously run at seed A
// must reproduce the fresh-build seed-B result exactly, including after
// several back-to-back reseeds of the same arena.
func TestInstanceResetMatchesBuild(t *testing.T) {
	// The four-node preset uses the testbed profile, whose static
	// per-link shadowing draws are the seed-dependent state most easily
	// left stale by a broken reseed.
	var spec Spec
	for _, s := range reuseSpecs(t) {
		if s.Name == "paper-four-node" {
			spec = s
			break
		}
	}
	if spec.Name == "" {
		t.Fatal("paper-four-node preset missing from reuse specs")
	}
	seeds := []uint64{42, 1001, 42, 7} // includes returning to an earlier seed

	fresh := make([]Result, len(seeds))
	for i, seed := range seeds {
		s := spec
		s.Seed = seed
		fresh[i] = MustRun(s)
	}

	s := spec
	inst, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	for i, seed := range seeds {
		if i == 0 && seed == spec.Seed {
			// First run uses the built instance as-is.
		} else if err := inst.Reset(seed); err != nil {
			t.Fatal(err)
		}
		horizon := inst.Spec.Duration.D()
		inst.Net.Run(horizon)
		got := inst.Collect(horizon)
		a, _ := json.Marshal(got)
		b, _ := json.Marshal(fresh[i])
		if !bytes.Equal(a, b) {
			t.Fatalf("reset run %d (seed %d) diverged from fresh build:\nreset: %s\nfresh: %s", i, seed, a, b)
		}
	}
}
