package app

import (
	"testing"
	"time"

	"adhocsim/internal/mac"
	"adhocsim/internal/node"
	"adhocsim/internal/phy"
)

func cleanPair(seed uint64) (*node.Network, *node.Station, *node.Station) {
	prof := phy.DefaultProfile()
	prof.Fading.SigmaDB = 0
	n := node.NewNetwork(seed, node.WithProfile(prof), node.WithMSS(512))
	a := n.AddStation(phy.Pos(0, 0), mac.Config{DataRate: phy.Rate11})
	b := n.AddStation(phy.Pos(10, 0), mac.Config{DataRate: phy.Rate11})
	return n, a, b
}

func TestPacedCBRRate(t *testing.T) {
	n, a, b := cleanPair(1)
	var sink UDPSink
	sink.ListenUDP(b, 9000)
	// 100 packets/s × 500 B = 400 kbit/s, far below capacity: everything
	// arrives and the measured rate matches the configured one.
	cbr := NewCBR(n, a, b.Addr(), 9000, 500, 10*time.Millisecond)
	cbr.Start()
	n.Run(5 * time.Second)

	if got := float64(sink.Received) / 5; got < 95 || got > 105 {
		t.Fatalf("paced rate = %.1f pkt/s, want ~100", got)
	}
	if sink.Gaps != 0 || sink.Reorders != 0 {
		t.Fatalf("clean channel: gaps=%d reorders=%d", sink.Gaps, sink.Reorders)
	}
	kbps := sink.ThroughputMbps(5*time.Second) * 1000
	if kbps < 380 || kbps > 420 {
		t.Fatalf("throughput = %.0f kbit/s, want ~400", kbps)
	}
}

func TestSaturatingCBRFillsChannel(t *testing.T) {
	n, a, b := cleanPair(2)
	var sink UDPSink
	sink.ListenUDP(b, 9000)
	NewCBR(n, a, b.Addr(), 9000, 512, 0).Start()
	n.Run(2 * time.Second)

	// Saturation must reach the analytic bound's neighbourhood (~3.3).
	if got := sink.ThroughputMbps(2 * time.Second); got < 3.0 {
		t.Fatalf("saturating CBR reached only %.2f Mbit/s", got)
	}
	// The MAC queue stays backlogged the whole time.
	if a.MAC.QueueLen() == 0 {
		t.Fatal("saturator failed to keep the queue backlogged")
	}
}

func TestCBRMinimumSize(t *testing.T) {
	n, a, b := cleanPair(3)
	var sink UDPSink
	sink.ListenUDP(b, 9000)
	// Size below the sequence header is bumped up, not broken.
	cbr := NewCBR(n, a, b.Addr(), 9000, 1, 50*time.Millisecond)
	cbr.Start()
	n.Run(time.Second)
	if sink.Received == 0 {
		t.Fatal("tiny packets never delivered")
	}
}

func TestCBRStartIdempotent(t *testing.T) {
	n, a, b := cleanPair(4)
	var sink UDPSink
	sink.ListenUDP(b, 9000)
	cbr := NewCBR(n, a, b.Addr(), 9000, 500, 100*time.Millisecond)
	cbr.Start()
	cbr.Start() // second Start must not double the rate
	n.Run(time.Second)
	if got := sink.Received; got > 12 {
		t.Fatalf("received %d packets in 1 s at 10 pkt/s: double start?", got)
	}
}

func TestUDPSinkGapAccounting(t *testing.T) {
	// Lossy mid-range link: gaps observed must roughly equal the packets
	// that went missing.
	prof := phy.DefaultProfile()
	n := node.NewNetwork(5, node.WithProfile(prof))
	a := n.AddStation(phy.Pos(0, 0), mac.Config{DataRate: phy.Rate11, ShortRetryLimit: -1})
	b := n.AddStation(phy.Pos(31, 0), mac.Config{DataRate: phy.Rate11})
	var sink UDPSink
	sink.ListenUDP(b, 9000)
	cbr := NewCBR(n, a, b.Addr(), 9000, 500, 5*time.Millisecond)
	cbr.Start()
	n.Run(3 * time.Second)

	if sink.Received == 0 || sink.Gaps == 0 {
		t.Fatalf("expected both deliveries and losses: rx=%d gaps=%d", sink.Received, sink.Gaps)
	}
	missing := cbr.Sent - sink.Received
	slack := missing / 5
	if sink.Gaps < missing-10-slack || sink.Gaps > missing+10+slack {
		t.Fatalf("gaps=%d vs missing=%d; accounting off", sink.Gaps, missing)
	}
}

func TestBulkSaturatesTCP(t *testing.T) {
	n, a, b := cleanPair(6)
	var sink TCPSink
	sink.ListenTCP(b, 9000)
	bulk := StartBulk(n, a, b.Addr(), 9000, 512)
	n.Run(2 * time.Second)

	if sink.Conns != 1 {
		t.Fatalf("accepted %d conns", sink.Conns)
	}
	mbps := sink.ThroughputMbps(2 * time.Second)
	if mbps < 1.8 {
		t.Fatalf("bulk TCP reached only %.2f Mbit/s", mbps)
	}
	if bulk.Written <= sink.Bytes {
		t.Fatal("writer should stay ahead of the receiver")
	}
	if bulk.Conn().Stats.SegsSent == 0 {
		t.Fatal("no segments sent")
	}
}

func TestBulkBackpressure(t *testing.T) {
	// The bulk writer must not buffer unboundedly: written bytes stay
	// within the send-buffer cap of delivered bytes.
	n, a, b := cleanPair(7)
	var sink TCPSink
	sink.ListenTCP(b, 9000)
	bulk := StartBulk(n, a, b.Addr(), 9000, 512)
	n.Run(time.Second)
	if lead := bulk.Written - sink.Bytes; lead > 70<<10 {
		t.Fatalf("writer leads by %d bytes; backpressure broken", lead)
	}
}
