// Package app provides the paper's two workloads and their measuring
// sinks: a CBR source over UDP and a saturating bulk-transfer ("ftp")
// source over TCP, both operating in the asymptotic regime of §3.1 —
// "they always have packets ready for transmission" — with constant
// packet sizes.
package app

import (
	"encoding/binary"
	"errors"
	"time"

	"adhocsim/internal/mac"
	"adhocsim/internal/network"
	"adhocsim/internal/node"
	"adhocsim/internal/transport"
)

// seqHeaderBytes is the CBR in-payload sequence header used for loss
// accounting.
const seqHeaderBytes = 4

// CBR is a constant-bit-rate (or saturating) UDP source.
type CBR struct {
	net      *node.Network
	from     *node.Station
	dst      network.Addr
	port     uint16
	size     int
	interval time.Duration // 0 = saturate the MAC queue

	seq     uint32
	started bool
	filling bool // re-entrancy guard: queue-space events fire inside SendTo
	retry   bool // a saturating-mode retry tick is pending
	paused  bool // flow outage (fault engine): offer nothing until Resume

	// Sent counts datagrams handed to UDP successfully. Attempts counts
	// every offered datagram, delivered or not — the delivery-ratio
	// denominator under faults (a paced tick that finds no route, or a
	// crashed source MAC, is an attempt that produced a loss). DownErr
	// counts the attempts refused because this station's own MAC was
	// powered down: the source-side share of downtime-attributed loss.
	Sent     uint64
	Attempts uint64
	DownErr  uint64
}

// retryInterval is how soon a saturating source retries after a send
// failed outright (no route yet under dynamic routing). Queue-space
// events cannot rescue it: nothing was queued, so none will fire.
const retryInterval = 10 * time.Millisecond

// NewCBR creates a CBR source on station from, addressed to dst:port,
// sending size-byte application packets. interval==0 selects the
// asymptotic (always-backlogged) regime: the source keeps the MAC queue
// full and refills on queue-space events. interval>0 paces packets.
func NewCBR(net *node.Network, from *node.Station, dst network.Addr, port uint16, size int, interval time.Duration) *CBR {
	if size < seqHeaderBytes {
		size = seqHeaderBytes
	}
	return &CBR{net: net, from: from, dst: dst, port: port, size: size, interval: interval}
}

// Start begins generation. Safe to call once.
func (c *CBR) Start() {
	if c.started {
		return
	}
	c.started = true
	if c.interval > 0 {
		c.tickPaced()
		return
	}
	c.from.Net.OnQueueSpace(c.fill)
	c.fill()
}

func (c *CBR) tickPaced() {
	// A paused flow keeps its tick chain alive — the outage must not
	// shift the post-resume tick phase — but offers nothing.
	if !c.paused {
		c.sendOne()
	}
	// The source's timers live on its own station's scheduler, which in
	// parallel mode is the station's region scheduler.
	c.from.Sched.After(c.interval, c.tickPaced)
}

// Pause suspends the flow (fault-engine outage). Paced ticks keep
// firing but offer nothing; saturating sources stop refilling.
func (c *CBR) Pause() { c.paused = true }

// Resume lifts a Pause. Saturating sources are re-kicked immediately;
// paced sources pick up at their next tick.
func (c *CBR) Resume() {
	if !c.paused {
		return
	}
	c.paused = false
	if c.started && c.interval == 0 {
		c.fill()
	}
}

func (c *CBR) fill() {
	if c.filling || c.paused {
		return
	}
	c.filling = true
	defer func() { c.filling = false }()
	// Leave one queue slot free so SIFS responses and TCP ACKs of other
	// flows on this station are never starved by the saturator.
	for c.from.Net.QueueFree() > 1 {
		if !c.sendOne() {
			// With an empty MAC queue there is no queue-space event to
			// wake us (the failure was not backpressure — e.g. routing
			// has not resolved the destination yet), so poll on a timer.
			if !c.retry && c.from.Net.MAC().QueueLen() == 0 {
				c.retry = true
				c.from.Sched.After(retryInterval, func() {
					c.retry = false
					c.fill()
				})
			}
			return
		}
	}
}

func (c *CBR) sendOne() bool {
	c.Attempts++
	payload := make([]byte, c.size)
	binary.BigEndian.PutUint32(payload, c.seq)
	if err := c.from.UDP.SendTo(payload, c.dst, c.port, c.port); err != nil {
		if errors.Is(err, mac.ErrDown) {
			c.DownErr++
		}
		return false
	}
	c.seq++
	c.Sent++
	return true
}

// UDPSink receives CBR traffic and keeps delivery statistics.
type UDPSink struct {
	// Received counts datagrams; Bytes counts application payload bytes.
	Received uint64
	Bytes    uint64
	// MaxSeq is the highest sequence number observed (+1 == sender count
	// lower bound in-flight losses aside); Gaps counts skipped sequence
	// numbers, Reorders counts sequence regressions.
	MaxSeq   uint32
	Gaps     uint64
	Reorders uint64

	// Route-recovery accounting under faults. MarkFault stamps a fault
	// instant; the first datagram delivered after each pending marker
	// closes it and records the delay as a recovery sample. Markers
	// still pending at the end of the run are the flow's Unrecovered
	// faults.
	Recovered   uint64
	RecoverySum time.Duration
	RecoveryMax time.Duration

	pending []time.Duration
	haveSeq bool
	nextSeq uint32
}

// MarkFault records a fault instant affecting this flow; the next
// delivery closes it as a recovery sample.
func (s *UDPSink) MarkFault(t time.Duration) {
	s.pending = append(s.pending, t)
}

// Unrecovered reports the number of fault markers no delivery ever
// closed.
func (s *UDPSink) Unrecovered() int { return len(s.pending) }

// ListenUDP attaches the sink to a station's UDP port.
func (s *UDPSink) ListenUDP(st *node.Station, port uint16) {
	sched := st.Sched
	st.UDP.Listen(port, func(payload []byte, _ network.Addr, _ uint16) {
		s.Received++
		s.Bytes += uint64(len(payload))
		if len(s.pending) > 0 {
			now := sched.Now()
			for _, m := range s.pending {
				d := now - m
				s.Recovered++
				s.RecoverySum += d
				if d > s.RecoveryMax {
					s.RecoveryMax = d
				}
			}
			s.pending = s.pending[:0]
		}
		if len(payload) < seqHeaderBytes {
			return
		}
		seq := binary.BigEndian.Uint32(payload)
		if seq > s.MaxSeq {
			s.MaxSeq = seq
		}
		if !s.haveSeq {
			s.haveSeq = true
			s.nextSeq = seq + 1
			return
		}
		switch {
		case seq == s.nextSeq:
			s.nextSeq++
		case seq > s.nextSeq:
			s.Gaps += uint64(seq - s.nextSeq)
			s.nextSeq = seq + 1
		default:
			s.Reorders++
		}
	})
}

// ThroughputMbps converts the sink's byte count to application-level
// Mbit/s over the given horizon.
func (s *UDPSink) ThroughputMbps(horizon time.Duration) float64 {
	return float64(s.Bytes) * 8 / horizon.Seconds() / 1e6
}

// Bulk is a saturating TCP sender: it keeps the connection's send buffer
// full for the lifetime of the simulation, like an ftp transfer of an
// unbounded file.
type Bulk struct {
	conn  *transport.Conn
	chunk []byte

	// Written counts bytes accepted into the send buffer.
	Written uint64
}

// StartBulk dials dst:port from the station and saturates the
// connection with size-byte application writes (the paper's 512-byte
// packets; the harness also sets MSS=size so segments carry exactly one
// packet).
func StartBulk(net *node.Network, from *node.Station, dst network.Addr, port uint16, size int) *Bulk {
	b := &Bulk{chunk: make([]byte, size)}
	b.conn = from.TCP.Dial(dst, port)
	b.conn.OnWritable(b.fill)
	b.fill()
	return b
}

// Conn exposes the underlying connection for instrumentation.
func (b *Bulk) Conn() *transport.Conn { return b.conn }

func (b *Bulk) fill() {
	for {
		n := b.conn.Write(b.chunk)
		b.Written += uint64(n)
		if n < len(b.chunk) {
			return
		}
	}
}

// TCPSink accepts one bulk connection on a port and counts delivered
// bytes.
type TCPSink struct {
	Bytes  uint64
	Conns  int
	closed bool
}

// ListenTCP starts the sink on the station's port.
func (s *TCPSink) ListenTCP(st *node.Station, port uint16) {
	st.TCP.Listen(port, func(c *transport.Conn) {
		s.Conns++
		c.OnData(func(p []byte) { s.Bytes += uint64(len(p)) })
		c.OnClose(func() { s.closed = true })
	})
}

// ThroughputMbps converts delivered bytes to Mbit/s over the horizon.
func (s *TCPSink) ThroughputMbps(horizon time.Duration) float64 {
	return float64(s.Bytes) * 8 / horizon.Seconds() / 1e6
}
