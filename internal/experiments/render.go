package experiments

import (
	"fmt"
	"strings"

	"adhocsim/internal/capacity"
	"adhocsim/internal/phy"
)

// This file renders experiment results as the markdown/ASCII tables the
// CLI tools print, laid out like the paper's tables and figure legends.

// RenderTable1 prints the protocol parameters (the paper's Table 1).
func RenderTable1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1. IEEE 802.11b parameter values\n")
	fmt.Fprintf(&b, "  Slot_Time  %v\n", phy.SlotTime)
	fmt.Fprintf(&b, "  tau        %v\n", phy.PropDelay)
	fmt.Fprintf(&b, "  PHY_hdr    %d bits (%v at 1 Mbit/s)\n", phy.PLCPBits, phy.PLCPTime)
	fmt.Fprintf(&b, "  MAC_hdr    %d bits\n", phy.MACHeaderBits)
	fmt.Fprintf(&b, "  DIFS       %v\n", phy.DIFS)
	fmt.Fprintf(&b, "  SIFS       %v\n", phy.SIFS)
	fmt.Fprintf(&b, "  ACK        %d bits + PHY_hdr\n", phy.ACKBits)
	fmt.Fprintf(&b, "  CW_min     %d slots\n", phy.CWMin)
	fmt.Fprintf(&b, "  CW_max     %d slots\n", phy.CWMax)
	fmt.Fprintf(&b, "  EIFS       %v\n", phy.EIFS())
	fmt.Fprintf(&b, "  Bit rates  1, 2, 5.5, 11 Mbit/s\n")
	return b.String()
}

// RenderTable2 prints the analytic maximum throughputs next to the
// paper's published values.
func RenderTable2() string {
	paper := capacity.PaperTable2()
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2. Maximum throughputs (Mbit/s); paper's values in parentheses\n")
	fmt.Fprintf(&b, "%-10s %-6s | %-22s | %-22s\n", "rate", "m", "no RTS/CTS", "RTS/CTS")
	for _, row := range capacity.Table2() {
		p := paper[row.Rate][row.PayloadBytes]
		fmt.Fprintf(&b, "%-10s %-6d | %6.3f  (paper %5.3f) | %6.3f  (paper %5.3f)\n",
			row.Rate, row.PayloadBytes, row.NoRTS, p[0], row.RTS, p[1])
	}
	return b.String()
}

// RenderFigure2 prints the ideal-vs-measured bars of Figure 2. Cells
// aggregated over replications get a ± 95% CI column.
func RenderFigure2(rate phy.Rate, cells []Figure2Cell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2. Theoretical vs measured throughput at %v (Mbit/s)\n", rate)
	fmt.Fprintf(&b, "%-5s %-10s | %-7s | %-8s\n", "proto", "access", "ideal", "measured")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-5s %-10s | %7.3f | %8.3f%s\n",
			c.Transport, accessName(c.RTSCTS), c.Ideal, c.Measured, ciSuffix(c.MeasuredCI, "%.3f"))
	}
	return b.String()
}

// ciSuffix renders " ± x" with the given format when ci is nonzero, so
// single-run tables keep their classic byte-exact layout.
func ciSuffix(ci float64, format string) string {
	if ci == 0 {
		return ""
	}
	return " ± " + fmt.Sprintf(format, ci)
}

// RenderLossCurves prints Figure 3/4-style loss-vs-distance tables.
// Replicated curves render each cell as "loss±ci"; single-run tables
// keep their classic byte-exact layout.
func RenderLossCurves(title string, curves map[string][]LossPoint, order []string) string {
	withCI := false
	for _, name := range order {
		for _, p := range curves[name] {
			if p.CI95 > 0 {
				withCI = true
			}
		}
	}
	cell := func(p LossPoint) string {
		if withCI {
			return fmt.Sprintf("%.3f±%.3f", p.Loss, p.CI95)
		}
		return fmt.Sprintf("%.3f", p.Loss)
	}
	var b strings.Builder
	fmt.Fprintln(&b, title)
	fmt.Fprintf(&b, "%-10s", "dist(m)")
	for _, name := range order {
		fmt.Fprintf(&b, " %12s", name)
	}
	fmt.Fprintln(&b)
	if len(order) == 0 {
		return b.String()
	}
	for i := range curves[order[0]] {
		fmt.Fprintf(&b, "%-10.0f", curves[order[0]][i].Distance)
		for _, name := range order {
			fmt.Fprintf(&b, " %12s", cell(curves[name][i]))
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// RenderTable3 prints the range estimates against the paper's.
func RenderTable3(rows []RangeEstimate) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3. Transmission range estimates (meters)\n")
	fmt.Fprintf(&b, "%-9s %-8s | %-9s %-9s %-9s\n", "rate", "frames", "measured", "analytic", "paper")
	for _, r := range rows {
		kind := "data"
		if r.Control {
			kind = "control"
		}
		fmt.Fprintf(&b, "%-9s %-8s | %7.1f   %7.1f   %7.1f\n", r.Rate, kind, r.Measured, r.Analytic, r.Paper)
	}
	return b.String()
}

// RenderFourNode prints a Figures 7/9/11/12-style panel. Cells
// aggregated over replications get ± 95% CI columns.
func RenderFourNode(title string, session2 string, cells []FourNodeCell) string {
	var b strings.Builder
	fmt.Fprintln(&b, title)
	fmt.Fprintf(&b, "%-5s %-10s | %10s | %10s | %-8s\n", "proto", "access", "1->2 kbps", session2+" kbps", "fairness")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-5s %-10s | %10.0f%s | %10.0f%s | %8.2f\n",
			c.Transport, accessName(c.RTSCTS),
			c.Result.Session1Kbps, ciSuffix(c.S1CI, "%.0f"),
			c.Result.Session2Kbps, ciSuffix(c.S2CI, "%.0f"),
			c.Result.Fairness)
	}
	return b.String()
}

func accessName(rts bool) string {
	if rts {
		return "RTS/CTS"
	}
	return "no RTS/CTS"
}

// CSV renders loss points as CSV for plotting. The ci95 column is 0
// for single-replication sweeps.
func CSV(points []LossPoint) string {
	var b strings.Builder
	fmt.Fprintln(&b, "distance_m,loss,analytic,ci95")
	for _, p := range points {
		fmt.Fprintf(&b, "%.1f,%.4f,%.4f,%.4f\n", p.Distance, p.Loss, p.Analytic, p.CI95)
	}
	return b.String()
}
