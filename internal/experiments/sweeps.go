package experiments

import (
	"sort"
	"time"

	"adhocsim/internal/app"
	"adhocsim/internal/mac"
	"adhocsim/internal/node"
	"adhocsim/internal/phy"
	"adhocsim/internal/runner"
)

// This file implements the §3.2 measurements: packet-loss rate as a
// function of distance (Figure 3), its day-to-day variability
// (Figure 4), and the transmission-range estimates derived from the
// curves (Table 3).

// LossPoint is one sample of a loss-vs-distance curve.
type LossPoint struct {
	Distance float64 `json:"distance_m"` // meters
	Loss     float64 `json:"loss"`       // application-level packet loss rate, 0..1
	CI95     float64 `json:"ci95"`       // 95% CI half-width over replications (0 for one run)
	Analytic float64 `json:"analytic"`   // shadowing-model prediction at this distance
}

// LossSweep parameterizes a loss-vs-distance measurement.
type LossSweep struct {
	Rate       phy.Rate
	Distances  []float64
	Packets    int           // probes per distance
	Interval   time.Duration // probe spacing (spans fading epochs)
	PacketSize int
	Seed       uint64
	Profile    *phy.Profile
	// Replications averages every point over this many independently
	// seeded probe trains; 0 and 1 both mean the classic single train.
	Replications int
	// Workers bounds the goroutines that fan (point, replication) jobs
	// out; 0 selects GOMAXPROCS. The curve never depends on it.
	Workers int
	// Progress, when non-nil, is called as jobs complete.
	Progress func(done, total int)
}

func (c LossSweep) withDefaults() LossSweep {
	if len(c.Distances) == 0 {
		c.Distances = Figure3Distances()
	}
	if c.Packets == 0 {
		c.Packets = 200
	}
	if c.Interval == 0 {
		c.Interval = 25 * time.Millisecond
	}
	if c.PacketSize == 0 {
		c.PacketSize = 512
	}
	if c.Profile == nil {
		c.Profile = phy.DefaultProfile()
	}
	return c
}

// Figure3Distances returns the x-axis of the paper's Figure 3:
// 20–150 m in 10 m steps.
func Figure3Distances() []float64 {
	var ds []float64
	for d := 20.0; d <= 150; d += 10 {
		ds = append(ds, d)
	}
	return ds
}

// Figure4Distances returns the x-axis of the paper's Figure 4:
// 50–160 m in 10 m steps.
func Figure4Distances() []float64 {
	var ds []float64
	for d := 50.0; d <= 160; d += 10 {
		ds = append(ds, d)
	}
	return ds
}

// RunLossSweep measures per-transmission packet loss between two
// stations at each distance: paced UDP probes so that consecutive
// packets see different fading epochs, exactly like a testbed operator
// sending probe trains while walking a tape measure.
//
// MAC retransmissions are disabled for the probes, so the sink's count
// against the sender's count is the per-frame loss rate — the paper's
// own methodology (the receiver tallies arrivals against the known probe
// count). With retries enabled, retry bursts would oversample bad fading
// epochs (per-attempt accounting) or convert loss into delay (per-packet
// accounting), biasing the curve in opposite directions.
// Sweep points fan out across workers: each (distance, replication)
// job builds its own Network from a seed derived only from the root
// seed and its indices, and per-point losses are averaged in
// replication order, so the curve is bit-identical for any Workers
// value. Point i keeps its historical root (Seed + i*1000), so
// single-replication curves match the classic serial output exactly.
func RunLossSweep(cfg LossSweep) []LossPoint {
	return runLossSweeps([]LossSweep{cfg}, cfg.Workers, cfg.Progress)[0]
}

// runLossSweeps measures several sweeps through one shared worker
// pool, so fan-out spans every (sweep, distance, replication) job and
// a progress meter counts all jobs once. Used by the multi-curve
// figures (Figure 3's four rates, Figure 4's two days) so no core
// idles between curves.
func runLossSweeps(cfgs []LossSweep, workers int, progress func(done, total int)) [][]LossPoint {
	type job struct{ sweep, point, rep int }
	var jobs []job
	reps := make([]int, len(cfgs))
	for s := range cfgs {
		cfgs[s] = cfgs[s].withDefaults()
		reps[s] = cfgs[s].Replications
		if reps[s] < 1 {
			reps[s] = 1
		}
		for i := range cfgs[s].Distances {
			for r := 0; r < reps[s]; r++ {
				jobs = append(jobs, job{s, i, r})
			}
		}
	}
	pool := runner.Config{Workers: workers, Progress: progress}
	losses := runner.Map(pool, len(jobs), func(k int) float64 {
		j := jobs[k]
		c := cfgs[j.sweep]
		return measureLoss(c, c.Distances[j.point], runner.SeedFor(c.Seed+uint64(j.point)*1000, j.rep))
	})
	// Jobs are ordered sweep-major, point-major, replication-minor, so
	// each point's replications are a contiguous run, folded in
	// replication order.
	out := make([][]LossPoint, len(cfgs))
	idx := 0
	for s, c := range cfgs {
		pts := make([]LossPoint, len(c.Distances))
		for i, d := range c.Distances {
			sum := runner.Summarize(losses[idx : idx+reps[s]])
			idx += reps[s]
			pts[i] = LossPoint{
				Distance: d,
				Loss:     sum.Mean,
				CI95:     sum.CI95,
				Analytic: c.Profile.LossProbability(c.Rate, d),
			}
		}
		out[s] = pts
	}
	return out
}

// measureLoss runs one probe train of cfg.Packets packets over distance
// d and returns the per-transmission loss rate.
func measureLoss(cfg LossSweep, d float64, seed uint64) float64 {
	net := node.NewNetwork(seed, node.WithProfile(cfg.Profile))
	macCfg := mac.Config{DataRate: cfg.Rate, ShortRetryLimit: -1, LongRetryLimit: -1}
	src := net.AddStation(phy.Pos(0, 0), macCfg)
	dst := net.AddStation(phy.Pos(d, 0), macCfg)

	var sink app.UDPSink
	sink.ListenUDP(dst, 9000)
	cbr := app.NewCBR(net, src, dst.Addr(), 9000, cfg.PacketSize, cfg.Interval)
	cbr.Start()
	// Run long enough for every probe plus MAC retries to settle.
	net.Run(time.Duration(cfg.Packets)*cfg.Interval + time.Second)

	loss := 1.0
	if cbr.Sent > 0 {
		loss = 1 - float64(sink.Received)/float64(cbr.Sent)
	}
	if loss < 0 {
		loss = 0
	}
	return loss
}

// Figure3 reproduces the paper's Figure 3: one loss-vs-distance curve
// per data rate. Points are measured in parallel; see Figure3Reps for
// replication.
func Figure3(seed uint64, packets int) map[phy.Rate][]LossPoint {
	return Figure3Reps(seed, packets, Rep{})
}

// Figure4Curve labels one day's 1 Mbit/s range measurement.
type Figure4Curve struct {
	Day    string
	Points []LossPoint
}

// Figure4 reproduces the paper's Figure 4: the 1 Mbit/s loss-vs-distance
// curve measured on two days with different weather. Points are
// measured in parallel; see Figure4Reps for replication.
func Figure4(seed uint64, packets int) []Figure4Curve {
	return Figure4Reps(seed, packets, Rep{})
}

// RangeEstimate is one row of Table 3.
type RangeEstimate struct {
	Rate     phy.Rate
	Control  bool    // true for the control-frame rows (1 and 2 Mbit/s)
	Measured float64 // 50%-loss crossing of the measured curve, meters
	Analytic float64 // profile's median range, meters
	Paper    float64 // the paper's Table 3 estimate (midpoint), meters
}

// paperTable3 holds the paper's Table 3 midpoints.
var paperTable3 = map[phy.Rate]float64{
	phy.Rate11:  30,
	phy.Rate5_5: 70,
	phy.Rate2:   95,  // "90–100 meters"
	phy.Rate1:   120, // "110–130 meters"
}

// Table3 estimates the transmission range per rate from measured loss
// curves, as the paper derives its Table 3 from Figure 3. The control
// rows reuse the 2 and 1 Mbit/s measurements: control frames travel at
// basic rates, so their range equals the corresponding data range.
func Table3(seed uint64, packets int) []RangeEstimate {
	return Table3Reps(seed, packets, Rep{})
}

// CrossingDistance returns the distance at which the loss curve first
// crosses the threshold, linearly interpolated between samples. If the
// curve never crosses, the last distance is returned.
func CrossingDistance(points []LossPoint, threshold float64) float64 {
	pts := append([]LossPoint(nil), points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].Distance < pts[j].Distance })
	for i := 1; i < len(pts); i++ {
		lo, hi := pts[i-1], pts[i]
		if lo.Loss <= threshold && hi.Loss >= threshold {
			if hi.Loss == lo.Loss {
				return lo.Distance
			}
			f := (threshold - lo.Loss) / (hi.Loss - lo.Loss)
			return lo.Distance + f*(hi.Distance-lo.Distance)
		}
	}
	if len(pts) == 0 {
		return 0
	}
	return pts[len(pts)-1].Distance
}
