package experiments

import (
	"sort"
	"time"

	"adhocsim/internal/app"
	"adhocsim/internal/mac"
	"adhocsim/internal/node"
	"adhocsim/internal/phy"
)

// This file implements the §3.2 measurements: packet-loss rate as a
// function of distance (Figure 3), its day-to-day variability
// (Figure 4), and the transmission-range estimates derived from the
// curves (Table 3).

// LossPoint is one sample of a loss-vs-distance curve.
type LossPoint struct {
	Distance float64 // meters
	Loss     float64 // application-level packet loss rate, 0..1
	Analytic float64 // shadowing-model prediction at this distance
}

// LossSweep parameterizes a loss-vs-distance measurement.
type LossSweep struct {
	Rate       phy.Rate
	Distances  []float64
	Packets    int           // probes per distance
	Interval   time.Duration // probe spacing (spans fading epochs)
	PacketSize int
	Seed       uint64
	Profile    *phy.Profile
}

func (c LossSweep) withDefaults() LossSweep {
	if len(c.Distances) == 0 {
		c.Distances = Figure3Distances()
	}
	if c.Packets == 0 {
		c.Packets = 200
	}
	if c.Interval == 0 {
		c.Interval = 25 * time.Millisecond
	}
	if c.PacketSize == 0 {
		c.PacketSize = 512
	}
	if c.Profile == nil {
		c.Profile = phy.DefaultProfile()
	}
	return c
}

// Figure3Distances returns the x-axis of the paper's Figure 3:
// 20–150 m in 10 m steps.
func Figure3Distances() []float64 {
	var ds []float64
	for d := 20.0; d <= 150; d += 10 {
		ds = append(ds, d)
	}
	return ds
}

// Figure4Distances returns the x-axis of the paper's Figure 4:
// 50–160 m in 10 m steps.
func Figure4Distances() []float64 {
	var ds []float64
	for d := 50.0; d <= 160; d += 10 {
		ds = append(ds, d)
	}
	return ds
}

// RunLossSweep measures per-transmission packet loss between two
// stations at each distance: paced UDP probes so that consecutive
// packets see different fading epochs, exactly like a testbed operator
// sending probe trains while walking a tape measure.
//
// MAC retransmissions are disabled for the probes, so the sink's count
// against the sender's count is the per-frame loss rate — the paper's
// own methodology (the receiver tallies arrivals against the known probe
// count). With retries enabled, retry bursts would oversample bad fading
// epochs (per-attempt accounting) or convert loss into delay (per-packet
// accounting), biasing the curve in opposite directions.
func RunLossSweep(cfg LossSweep) []LossPoint {
	cfg = cfg.withDefaults()
	points := make([]LossPoint, 0, len(cfg.Distances))
	for i, d := range cfg.Distances {
		net := node.NewNetwork(cfg.Seed+uint64(i)*1000, node.WithProfile(cfg.Profile))
		macCfg := mac.Config{DataRate: cfg.Rate, ShortRetryLimit: -1, LongRetryLimit: -1}
		src := net.AddStation(phy.Pos(0, 0), macCfg)
		dst := net.AddStation(phy.Pos(d, 0), macCfg)

		var sink app.UDPSink
		sink.ListenUDP(dst, 9000)
		cbr := app.NewCBR(net, src, dst.Addr(), 9000, cfg.PacketSize, cfg.Interval)
		cbr.Start()
		// Run long enough for every probe plus MAC retries to settle.
		net.Run(time.Duration(cfg.Packets)*cfg.Interval + time.Second)

		loss := 1.0
		if cbr.Sent > 0 {
			loss = 1 - float64(sink.Received)/float64(cbr.Sent)
		}
		if loss < 0 {
			loss = 0
		}
		points = append(points, LossPoint{
			Distance: d,
			Loss:     loss,
			Analytic: cfg.Profile.LossProbability(cfg.Rate, d),
		})
	}
	return points
}

// Figure3 reproduces the paper's Figure 3: one loss-vs-distance curve
// per data rate.
func Figure3(seed uint64, packets int) map[phy.Rate][]LossPoint {
	out := make(map[phy.Rate][]LossPoint, len(phy.Rates))
	for i, r := range phy.Rates {
		out[r] = RunLossSweep(LossSweep{
			Rate:    r,
			Packets: packets,
			Seed:    seed + uint64(i)*7919,
		})
	}
	return out
}

// Figure4Curve labels one day's 1 Mbit/s range measurement.
type Figure4Curve struct {
	Day    string
	Points []LossPoint
}

// Figure4 reproduces the paper's Figure 4: the 1 Mbit/s loss-vs-distance
// curve measured on two days with different weather.
func Figure4(seed uint64, packets int) []Figure4Curve {
	base := phy.DefaultProfile()
	var out []Figure4Curve
	for i, w := range []phy.Weather{phy.WeatherClear, phy.WeatherDamp} {
		prof := w.Apply(base)
		pts := RunLossSweep(LossSweep{
			Rate:      phy.Rate1,
			Distances: Figure4Distances(),
			Packets:   packets,
			Seed:      seed + uint64(i)*104729,
			Profile:   prof,
		})
		out = append(out, Figure4Curve{Day: w.Name, Points: pts})
	}
	return out
}

// RangeEstimate is one row of Table 3.
type RangeEstimate struct {
	Rate     phy.Rate
	Control  bool    // true for the control-frame rows (1 and 2 Mbit/s)
	Measured float64 // 50%-loss crossing of the measured curve, meters
	Analytic float64 // profile's median range, meters
	Paper    float64 // the paper's Table 3 estimate (midpoint), meters
}

// paperTable3 holds the paper's Table 3 midpoints.
var paperTable3 = map[phy.Rate]float64{
	phy.Rate11:  30,
	phy.Rate5_5: 70,
	phy.Rate2:   95,  // "90–100 meters"
	phy.Rate1:   120, // "110–130 meters"
}

// Table3 estimates the transmission range per rate from measured loss
// curves, as the paper derives its Table 3 from Figure 3. The control
// rows reuse the 2 and 1 Mbit/s measurements: control frames travel at
// basic rates, so their range equals the corresponding data range.
func Table3(seed uint64, packets int) []RangeEstimate {
	prof := phy.DefaultProfile()
	curves := Figure3(seed, packets)
	var rows []RangeEstimate
	for i := len(phy.Rates) - 1; i >= 0; i-- {
		r := phy.Rates[i]
		rows = append(rows, RangeEstimate{
			Rate:     r,
			Measured: CrossingDistance(curves[r], 0.5),
			Analytic: prof.MedianRange(r),
			Paper:    paperTable3[r],
		})
	}
	for _, r := range []phy.Rate{phy.Rate2, phy.Rate1} {
		rows = append(rows, RangeEstimate{
			Rate:     r,
			Control:  true,
			Measured: CrossingDistance(curves[r], 0.5),
			Analytic: prof.MedianRange(r),
			Paper:    paperTable3[r],
		})
	}
	return rows
}

// CrossingDistance returns the distance at which the loss curve first
// crosses the threshold, linearly interpolated between samples. If the
// curve never crosses, the last distance is returned.
func CrossingDistance(points []LossPoint, threshold float64) float64 {
	pts := append([]LossPoint(nil), points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].Distance < pts[j].Distance })
	for i := 1; i < len(pts); i++ {
		lo, hi := pts[i-1], pts[i]
		if lo.Loss <= threshold && hi.Loss >= threshold {
			if hi.Loss == lo.Loss {
				return lo.Distance
			}
			f := (threshold - lo.Loss) / (hi.Loss - lo.Loss)
			return lo.Distance + f*(hi.Distance-lo.Distance)
		}
	}
	if len(pts) == 0 {
		return 0
	}
	return pts[len(pts)-1].Distance
}
