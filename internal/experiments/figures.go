package experiments

import (
	"time"

	"adhocsim/internal/phy"
)

// This file names the concrete figure configurations of the paper so
// that tools, tests and benches all run exactly the same scenarios.
// The classic entry points (Figure2, Figure7, ...) are the
// single-replication views of the replicated runners in replicate.go;
// they produce the same results they always did, just in parallel.

// Figure2Cell is one bar pair of Figure 2: ideal vs measured throughput
// for one (transport, access-mode) combination at 11 Mbit/s.
type Figure2Cell struct {
	Transport Transport `json:"transport"`
	RTSCTS    bool      `json:"rtscts"`
	Ideal     float64   `json:"ideal_mbps"`    // Mbit/s, Equations (1)/(2)
	Measured  float64   `json:"measured_mbps"` // Mbit/s, simulated (replication mean)
	// MeasuredCI is the 95% confidence half-width of Measured over
	// replications; 0 for a single run.
	MeasuredCI float64 `json:"measured_ci95"`
}

// Figure2 reproduces the paper's Figure 2 at the given rate (the paper
// plots 11 Mbit/s and reports that other rates behave alike): four
// cells, TCP/UDP × basic/RTS-CTS, each with its analytic bound.
func Figure2(rate phy.Rate, seed uint64, duration time.Duration) []Figure2Cell {
	return Figure2Reps(rate, seed, duration, Rep{})
}

// FourNodeCell is one bar pair of Figures 7/9/11/12. Under replication
// the Result's goodput and fairness fields hold replication means
// (counters come from replication 0) and S1CI/S2CI carry the 95%
// confidence half-widths.
type FourNodeCell struct {
	Transport Transport      `json:"transport"`
	RTSCTS    bool           `json:"rtscts"`
	Result    FourNodeResult `json:"result"`
	S1CI      float64        `json:"session1_ci95"`
	S2CI      float64        `json:"session2_ci95"`
}

// Figure7 reproduces Figures 6–7: 11 Mbit/s, distances 25 / 80–85 / 25 m
// (we use the midpoint 82.5), sessions S1→S2 and S3→S4.
func Figure7(seed uint64, duration time.Duration) []FourNodeCell {
	return Figure7Reps(seed, duration, Rep{})
}

// Figure9 reproduces Figures 8–9: 2 Mbit/s, distances 25 / 90–95 / 25 m.
func Figure9(seed uint64, duration time.Duration) []FourNodeCell {
	return Figure9Reps(seed, duration, Rep{})
}

// Figure11 reproduces Figures 10–11: the symmetric scenario (sessions
// S1→S2 and S4→S3, receivers adjacent) at 11 Mbit/s, 25 / 60–65 / 25 m.
func Figure11(seed uint64, duration time.Duration) []FourNodeCell {
	return Figure11Reps(seed, duration, Rep{})
}

// Figure12 reproduces Figure 12: the symmetric scenario at 2 Mbit/s.
func Figure12(seed uint64, duration time.Duration) []FourNodeCell {
	return Figure12Reps(seed, duration, Rep{})
}
