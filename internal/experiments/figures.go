package experiments

import (
	"time"

	"adhocsim/internal/phy"
)

// This file names the concrete figure configurations of the paper so
// that tools, tests and benches all run exactly the same scenarios.

// Figure2Cell is one bar pair of Figure 2: ideal vs measured throughput
// for one (transport, access-mode) combination at 11 Mbit/s.
type Figure2Cell struct {
	Transport Transport
	RTSCTS    bool
	Ideal     float64 // Mbit/s, Equations (1)/(2)
	Measured  float64 // Mbit/s, simulated
}

// Figure2 reproduces the paper's Figure 2 at the given rate (the paper
// plots 11 Mbit/s and reports that other rates behave alike): four
// cells, TCP/UDP × basic/RTS-CTS, each with its analytic bound.
func Figure2(rate phy.Rate, seed uint64, duration time.Duration) []Figure2Cell {
	var cells []Figure2Cell
	for _, tr := range []Transport{UDP, TCP} {
		for _, rts := range []bool{false, true} {
			res := RunTwoNode(TwoNode{
				Rate:      rate,
				Distance:  10,
				Transport: tr,
				RTSCTS:    rts,
				Duration:  duration,
				Seed:      seed,
			})
			cells = append(cells, Figure2Cell{
				Transport: tr,
				RTSCTS:    rts,
				Ideal:     res.IdealMbps,
				Measured:  res.MeasuredMbps,
			})
		}
	}
	return cells
}

// FourNodeCell is one bar pair of Figures 7/9/11/12.
type FourNodeCell struct {
	Transport Transport
	RTSCTS    bool
	Result    FourNodeResult
}

// runFourNodeFigure runs the four (transport × access mode) panels of
// one four-station figure. The four-node figures use the asymmetric
// testbed profile: the paper attributes the session imbalance to the
// channel's asymmetric conditions, which the static shadowing component
// models (see phy.TestbedProfile).
func runFourNodeFigure(base FourNode, seed uint64, duration time.Duration) []FourNodeCell {
	var cells []FourNodeCell
	for _, tr := range []Transport{UDP, TCP} {
		for _, rts := range []bool{false, true} {
			cfg := base
			cfg.Transport = tr
			cfg.RTSCTS = rts
			cfg.Seed = seed
			cfg.Duration = duration
			if cfg.Profile == nil {
				cfg.Profile = phy.TestbedProfile()
			}
			cells = append(cells, FourNodeCell{
				Transport: tr,
				RTSCTS:    rts,
				Result:    RunFourNode(cfg),
			})
		}
	}
	return cells
}

// Figure7 reproduces Figures 6–7: 11 Mbit/s, distances 25 / 80–85 / 25 m
// (we use the midpoint 82.5), sessions S1→S2 and S3→S4.
func Figure7(seed uint64, duration time.Duration) []FourNodeCell {
	return runFourNodeFigure(FourNode{
		Rate: phy.Rate11, D12: 25, D23: 82.5, D34: 25,
	}, seed, duration)
}

// Figure9 reproduces Figures 8–9: 2 Mbit/s, distances 25 / 90–95 / 25 m.
func Figure9(seed uint64, duration time.Duration) []FourNodeCell {
	return runFourNodeFigure(FourNode{
		Rate: phy.Rate2, D12: 25, D23: 92.5, D34: 25,
	}, seed, duration)
}

// Figure11 reproduces Figures 10–11: the symmetric scenario (sessions
// S1→S2 and S4→S3, receivers adjacent) at 11 Mbit/s, 25 / 60–65 / 25 m.
func Figure11(seed uint64, duration time.Duration) []FourNodeCell {
	return runFourNodeFigure(FourNode{
		Rate: phy.Rate11, D12: 25, D23: 62.5, D34: 25,
		Session2Reversed: true,
	}, seed, duration)
}

// Figure12 reproduces Figure 12: the symmetric scenario at 2 Mbit/s.
func Figure12(seed uint64, duration time.Duration) []FourNodeCell {
	return runFourNodeFigure(FourNode{
		Rate: phy.Rate2, D12: 25, D23: 62.5, D34: 25,
		Session2Reversed: true,
	}, seed, duration)
}
