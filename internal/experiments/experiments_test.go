package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"adhocsim/internal/phy"
)

// Shape assertions for every reproduced table/figure. Horizons are kept
// short (seconds of simulated time) so the suite stays fast; the benches
// run the full-length versions.

const testHorizon = 4 * time.Second

func TestFigure2UDPTracksIdeal(t *testing.T) {
	cells := Figure2(phy.Rate11, 11, testHorizon)
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(cells))
	}
	for _, c := range cells {
		switch c.Transport {
		case UDP:
			// The paper: "experimental results related to the UDP traffic
			// are very close to the maximum throughput computed
			// analytically."
			if dev := math.Abs(c.Measured-c.Ideal) / c.Ideal; dev > 0.05 {
				t.Errorf("UDP rts=%v: measured %.3f vs ideal %.3f (dev %.1f%%)",
					c.RTSCTS, c.Measured, c.Ideal, dev*100)
			}
		case TCP:
			// "in the presence of TCP traffic the measured throughput is
			// much lower than the theoretical maximum."
			if c.Measured >= 0.92*c.Ideal {
				t.Errorf("TCP rts=%v: measured %.3f not clearly below ideal %.3f",
					c.RTSCTS, c.Measured, c.Ideal)
			}
			if c.Measured < 0.4*c.Ideal {
				t.Errorf("TCP rts=%v: measured %.3f implausibly far below ideal %.3f",
					c.RTSCTS, c.Measured, c.Ideal)
			}
		}
	}
}

func TestFigure2OtherRates(t *testing.T) {
	// "Similar results have been also obtained ... when the NIC data
	// rate is set to 1, 2 or 5.5 Mbps."
	for _, rate := range []phy.Rate{phy.Rate2, phy.Rate5_5} {
		res := RunTwoNode(TwoNode{Rate: rate, Transport: UDP, Duration: testHorizon, Seed: 3})
		if dev := math.Abs(res.MeasuredMbps-res.IdealMbps) / res.IdealMbps; dev > 0.05 {
			t.Errorf("%v UDP: measured %.3f vs ideal %.3f", rate, res.MeasuredMbps, res.IdealMbps)
		}
	}
}

func TestFigure3CurveShapes(t *testing.T) {
	curves := Figure3(7, 120)
	prof := phy.DefaultProfile()
	for _, rate := range phy.Rates {
		pts := curves[rate]
		if len(pts) != len(Figure3Distances()) {
			t.Fatalf("%v: %d points", rate, len(pts))
		}
		// Loss near zero well inside the range, near one well outside.
		median := prof.MedianRange(rate)
		for _, p := range pts {
			if p.Distance < 0.6*median && p.Loss > 0.25 {
				t.Errorf("%v at %.0f m (inside range): loss %.2f", rate, p.Distance, p.Loss)
			}
			if p.Distance > 1.6*median && p.Loss < 0.75 {
				t.Errorf("%v at %.0f m (outside range): loss %.2f", rate, p.Distance, p.Loss)
			}
		}
	}
	// At any distance, faster rates lose at least as much (within noise).
	for i := range Figure3Distances() {
		for j := 1; j < len(phy.Rates); j++ {
			lo := curves[phy.Rates[j-1]][i].Loss
			hi := curves[phy.Rates[j]][i].Loss
			if hi < lo-0.15 {
				t.Errorf("at %.0f m: %v loss %.2f < %v loss %.2f",
					curves[phy.Rates[j]][i].Distance, phy.Rates[j], hi, phy.Rates[j-1], lo)
			}
		}
	}
}

func TestFigure4WeatherSpread(t *testing.T) {
	curves := Figure4(9, 120)
	if len(curves) != 2 {
		t.Fatalf("curves = %d", len(curves))
	}
	clear, damp := curves[0], curves[1]
	// The damp day's range must be visibly shorter: its 50% crossing
	// comes earlier.
	cClear := CrossingDistance(clear.Points, 0.5)
	cDamp := CrossingDistance(damp.Points, 0.5)
	if cDamp >= cClear {
		t.Fatalf("damp crossing %.1f m ≥ clear crossing %.1f m", cDamp, cClear)
	}
	if cClear-cDamp < 5 || cClear-cDamp > 60 {
		t.Fatalf("day-to-day spread = %.1f m, want 5–60 m (paper shows ≈20)", cClear-cDamp)
	}
}

func TestTable3RangesMatchPaper(t *testing.T) {
	rows := Table3(13, 150)
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 4 data + 2 control", len(rows))
	}
	for _, r := range rows {
		// Measured crossing within 20% of the paper's estimate.
		if dev := math.Abs(r.Measured-r.Paper) / r.Paper; dev > 0.20 {
			t.Errorf("%v (control=%v): measured %.1f m vs paper %.1f m",
				r.Rate, r.Control, r.Measured, r.Paper)
		}
	}
	// Control rows must be the basic rates only.
	if !rows[4].Control || !rows[5].Control {
		t.Fatal("last two rows must be control ranges")
	}
}

func TestFigure7AsymmetryAt11Mbps(t *testing.T) {
	cells := Figure7(42, testHorizon)
	for _, c := range cells {
		r := c.Result
		if c.Transport == UDP {
			// The paper's central §3.3 finding: session 2 (S3→S4)
			// outperforms session 1 (S1→S2) because S1 suffers EIFS
			// deferrals (it cannot decode S4's basic-rate ACKs) and S2
			// sits closer to the interfering session.
			if r.Session2Kbps <= 1.2*r.Session1Kbps {
				t.Errorf("UDP rts=%v: s2 %.0f kbps not clearly above s1 %.0f kbps",
					c.RTSCTS, r.Session2Kbps, r.Session1Kbps)
			}
			if r.EIFS1 <= r.EIFS2 {
				t.Errorf("UDP rts=%v: EIFS1 %d ≤ EIFS2 %d; the EIFS mechanism should disfavor S1",
					c.RTSCTS, r.EIFS1, r.EIFS2)
			}
		} else {
			// "when the TCP protocol is used the differences between the
			// throughputs achieved by the two connections still exist but
			// are reduced." TCP's congestion control is very sensitive to
			// the seed over short horizons, so assert only that both
			// sessions stay alive and the combined goodput is plausible.
			if r.Session1Kbps+r.Session2Kbps < 200 {
				t.Errorf("TCP rts=%v: total %.0f kbps implausibly low",
					c.RTSCTS, r.Session1Kbps+r.Session2Kbps)
			}
		}
	}
}

func TestFigure9MoreBalancedAt2Mbps(t *testing.T) {
	f7 := Figure7(42, testHorizon)
	f9 := Figure9(42, testHorizon)
	// "in this case the system is more balanced from the throughput
	// standpoint": Jain fairness at 2 Mbit/s ≥ fairness at 11 Mbit/s for
	// the UDP panels.
	for i := range f9 {
		if f9[i].Transport != UDP {
			continue
		}
		if f9[i].Result.Fairness < f7[i].Result.Fairness-0.02 {
			t.Errorf("panel %d: 2 Mbit/s fairness %.3f < 11 Mbit/s fairness %.3f",
				i, f9[i].Result.Fairness, f7[i].Result.Fairness)
		}
		if f9[i].Result.Fairness < 0.9 {
			t.Errorf("panel %d: 2 Mbit/s fairness %.3f, want ≥ 0.9", i, f9[i].Result.Fairness)
		}
	}
}

func TestFigure11SymmetricScenario(t *testing.T) {
	cells := Figure11(42, testHorizon)
	for _, c := range cells {
		r := c.Result
		if r.Session1Kbps+r.Session2Kbps < 100 {
			t.Errorf("%v rts=%v: total %.0f kbps implausibly low",
				c.Transport, c.RTSCTS, r.Session1Kbps+r.Session2Kbps)
		}
		// The paper's Figure 11 shows session 1 persistently ahead — a
		// static channel asymmetry of that particular field and set of
		// cards. Our zero-mean fading model is symmetric by construction,
		// so the scenario is balanced in the long run and either session
		// may lead per seed (see EXPERIMENTS.md; Fading.StaticSigmaDB
		// reintroduces persistent asymmetry). Assert the scenario's
		// invariant instead: both sessions coexist.
		if c.Transport == UDP {
			lo := math.Min(r.Session1Kbps, r.Session2Kbps)
			hi := math.Max(r.Session1Kbps, r.Session2Kbps)
			if lo < 0.1*hi {
				t.Errorf("UDP rts=%v: sessions %.0f/%.0f kbps; symmetric scenario should not starve either",
					c.RTSCTS, r.Session1Kbps, r.Session2Kbps)
			}
		}
	}
}

func TestFigure12BalancedSymmetric2Mbps(t *testing.T) {
	cells := Figure12(42, testHorizon)
	for _, c := range cells {
		if c.Result.Fairness < 0.9 {
			t.Errorf("%v rts=%v: fairness %.2f, want ≥ 0.9 at 2 Mbit/s",
				c.Transport, c.RTSCTS, c.Result.Fairness)
		}
	}
}

func TestRTSCTSCostsThroughputEverywhere(t *testing.T) {
	for _, tr := range []Transport{UDP, TCP} {
		basic := RunTwoNode(TwoNode{Transport: tr, RTSCTS: false, Duration: testHorizon, Seed: 5})
		rts := RunTwoNode(TwoNode{Transport: tr, RTSCTS: true, Duration: testHorizon, Seed: 5})
		if rts.MeasuredMbps >= basic.MeasuredMbps {
			t.Errorf("%v: RTS %.3f ≥ basic %.3f", tr, rts.MeasuredMbps, basic.MeasuredMbps)
		}
	}
}

func TestDeterministicResults(t *testing.T) {
	a := RunTwoNode(TwoNode{Transport: UDP, Duration: time.Second, Seed: 99})
	b := RunTwoNode(TwoNode{Transport: UDP, Duration: time.Second, Seed: 99})
	if a != b {
		t.Fatalf("identical configs diverged: %+v vs %+v", a, b)
	}
	c := RunTwoNode(TwoNode{Transport: UDP, Duration: time.Second, Seed: 100})
	if a.SentPackets == c.SentPackets && a.MeasuredMbps == c.MeasuredMbps && a.Retries == c.Retries {
		t.Log("different seeds produced identical results (possible on a clean channel)")
	}
}

func TestCrossingDistance(t *testing.T) {
	pts := []LossPoint{{Distance: 10, Loss: 0}, {Distance: 20, Loss: 0.4}, {Distance: 30, Loss: 0.8}}
	got := CrossingDistance(pts, 0.5)
	if math.Abs(got-22.5) > 1e-9 {
		t.Fatalf("crossing = %.2f, want 22.5", got)
	}
	// Never crosses → last distance.
	flat := []LossPoint{{Distance: 10, Loss: 0.1}, {Distance: 20, Loss: 0.2}}
	if got := CrossingDistance(flat, 0.9); got != 20 {
		t.Fatalf("flat crossing = %v, want 20", got)
	}
	if got := CrossingDistance(nil, 0.5); got != 0 {
		t.Fatalf("empty crossing = %v", got)
	}
}

func TestRenderers(t *testing.T) {
	if s := RenderTable1(); !strings.Contains(s, "CW_min") || !strings.Contains(s, "20µs") {
		t.Errorf("Table 1 render missing content:\n%s", s)
	}
	if s := RenderTable2(); !strings.Contains(s, "11Mbps") || !strings.Contains(s, "paper") {
		t.Errorf("Table 2 render missing content:\n%s", s)
	}
	cells := []Figure2Cell{{Transport: UDP, Ideal: 3.3, Measured: 3.2}}
	if s := RenderFigure2(phy.Rate11, cells); !strings.Contains(s, "3.300") {
		t.Errorf("Figure 2 render missing content:\n%s", s)
	}
	rows := []RangeEstimate{{Rate: phy.Rate11, Measured: 30, Analytic: 30, Paper: 30}}
	if s := RenderTable3(rows); !strings.Contains(s, "30.0") {
		t.Errorf("Table 3 render missing content:\n%s", s)
	}
	fn := []FourNodeCell{{Transport: UDP, Result: FourNodeResult{Session1Kbps: 500, Session2Kbps: 2000, Fairness: 0.73}}}
	if s := RenderFourNode("Figure 7", "3->4", fn); !strings.Contains(s, "2000") {
		t.Errorf("four-node render missing content:\n%s", s)
	}
	pts := []LossPoint{{Distance: 20, Loss: 0.5, Analytic: 0.45}}
	if s := CSV(pts); !strings.Contains(s, "20.0,0.5000,0.4500") {
		t.Errorf("CSV render wrong:\n%s", s)
	}
}
