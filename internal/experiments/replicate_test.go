package experiments

import (
	"bytes"
	"testing"
	"time"

	"adhocsim/internal/phy"
	"adhocsim/internal/runner"
)

// Determinism gates for the replication harness: aggregates must be
// byte-identical whatever the worker count, and single replications
// must reproduce the classic serial runners exactly.

func sweepJSON(t *testing.T, workers int) []byte {
	t.Helper()
	pts := RunLossSweep(LossSweep{
		Rate:         phy.Rate11,
		Distances:    []float64{20, 30, 40, 50},
		Packets:      40,
		Seed:         7,
		Replications: 3,
		Workers:      workers,
	})
	var buf bytes.Buffer
	if err := runner.WriteJSON(&buf, pts); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSweepWorkersInvariant(t *testing.T) {
	serial := sweepJSON(t, 1)
	parallel := sweepJSON(t, 8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("workers=1 and workers=8 sweeps diverged:\n%s\nvs\n%s", serial, parallel)
	}
}

func TestReplicateFourNodeWorkersInvariant(t *testing.T) {
	cfg := FourNode{Duration: time.Second, Seed: 42, Profile: phy.TestbedProfile()}
	run := func(workers int) []byte {
		sum := ReplicateFourNode(cfg, Rep{Replications: 4, Workers: workers})
		var buf bytes.Buffer
		if err := runner.WriteJSON(&buf, sum); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial, parallel := run(1), run(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("workers=1 and workers=8 aggregates diverged:\n%s\nvs\n%s", serial, parallel)
	}
}

func TestSingleReplicationMatchesClassic(t *testing.T) {
	cfg := TwoNode{Transport: UDP, Duration: time.Second, Seed: 99}
	classic := RunTwoNode(cfg)
	sum := ReplicateTwoNode(cfg, Rep{Replications: 1, Workers: 4})
	if sum.Runs[0] != classic {
		t.Fatalf("replication 0 diverged from classic run: %+v vs %+v", sum.Runs[0], classic)
	}
	if sum.Mbps.Mean != classic.MeasuredMbps || sum.Mbps.CI95 != 0 {
		t.Fatalf("single-rep summary %+v does not collapse to the classic value %v",
			sum.Mbps, classic.MeasuredMbps)
	}
	// Replications: 0 means the same thing as 1.
	if zero := ReplicateTwoNode(cfg, Rep{}); zero.Runs[0] != classic {
		t.Fatalf("Replications=0 diverged from classic run")
	}
}

func TestReplicationsShrinkCI(t *testing.T) {
	cfg := TwoNode{Transport: UDP, Distance: 40, Duration: time.Second, Seed: 3}
	sum := ReplicateTwoNode(cfg, Rep{Replications: 6})
	if sum.Replications != 6 || len(sum.Runs) != 6 {
		t.Fatalf("replications = %d, runs = %d", sum.Replications, len(sum.Runs))
	}
	seen := map[uint64]bool{}
	for _, r := range sum.Runs {
		seen[r.SentPackets] = true
	}
	// At 40 m the channel is noisy enough that six independent seeds
	// should not all behave identically.
	if sum.Mbps.CI95 == 0 && len(seen) == 1 {
		t.Error("six replications produced zero spread; seeds look correlated")
	}
	if sum.Mbps.Mean <= 0 {
		t.Errorf("mean throughput %v", sum.Mbps.Mean)
	}
}

func TestSweepProgressReachesTotal(t *testing.T) {
	var last, total int
	RunLossSweep(LossSweep{
		Rate:         phy.Rate11,
		Distances:    []float64{20, 40},
		Packets:      20,
		Seed:         1,
		Replications: 2,
		Workers:      4,
		Progress: func(d, n int) {
			last, total = d, n
		},
	})
	if total != 4 || last != 4 {
		t.Fatalf("progress ended at %d/%d, want 4/4", last, total)
	}
}
