package experiments

import (
	"fmt"
	"strings"
	"time"

	"adhocsim/internal/runner"
	"adhocsim/internal/scenario"
	"adhocsim/internal/stats"
)

// This file measures graceful degradation under churn: how DSDV's
// delivered goodput, delivery ratio and route-recovery time decay as
// relay stations crash and restart at increasing Poisson rates on the
// 5x5 mesh. The corners (every flow endpoint) never churn, so the
// sweep isolates what relay churn costs the control plane — every lost
// packet is a routing loss or a repair in progress, never a dead
// endpoint.

// ChurnConfig parameterizes RunChurn.
type ChurnConfig struct {
	// RatesPerMin are the churn rates swept, in expected relay crashes
	// per minute; 0 is the fault-free baseline. Default: 0, 15, 30, 60.
	RatesPerMin []float64
	// MinDown and MaxDown bound each crash's downtime, drawn uniformly
	// (default 500 ms .. 2 s).
	MinDown, MaxDown time.Duration
	// Duration is the measurement horizon per point (default 10s).
	Duration time.Duration
	// Seed roots each point's run; replication seeds derive from it.
	Seed uint64
}

func (c ChurnConfig) withDefaults() ChurnConfig {
	if len(c.RatesPerMin) == 0 {
		c.RatesPerMin = []float64{0, 15, 30, 60}
	}
	if c.MinDown == 0 {
		c.MinDown = 500 * time.Millisecond
	}
	if c.MaxDown == 0 {
		c.MaxDown = 2 * time.Second
	}
	if c.Duration == 0 {
		c.Duration = 10 * time.Second
	}
	return c
}

// Spec compiles one point of the sweep: the mesh-5x5-multihop preset
// (two corner-to-corner DSDV flows) with Poisson churn over the 21
// relay stations at the given rate. Rate 0 drops the faults block
// entirely — the fault-free baseline.
func (c ChurnConfig) Spec(ratePerMin float64) (scenario.Spec, error) {
	c = c.withDefaults()
	spec, err := scenario.Preset("mesh-5x5-multihop")
	if err != nil {
		return scenario.Spec{}, err
	}
	spec.Name = fmt.Sprintf("churn-%gpm", ratePerMin)
	spec.Description = "goodput vs churn rate sweep point"
	spec.Seed = c.Seed
	spec.Duration = scenario.Duration(c.Duration)
	if ratePerMin > 0 {
		var relays []int
		for s := 0; s < 25; s++ {
			if s != 0 && s != 4 && s != 20 && s != 24 { // corners carry the flows
				relays = append(relays, s)
			}
		}
		spec.Faults = &scenario.FaultSpec{
			Churn: &scenario.FaultChurn{
				RatePerMin: ratePerMin,
				MinDown:    scenario.Duration(c.MinDown),
				MaxDown:    scenario.Duration(c.MaxDown),
				Stations:   relays,
			},
		}
	}
	return spec, nil
}

// ChurnPoint is one row of the goodput-vs-churn-rate result. Goodput
// and control overhead sum over the two mesh flows / all stations;
// the graceful-degradation columns average over the flows and are
// negative for the fault-free baseline row, where no fault metrics
// exist to report.
type ChurnPoint struct {
	RatePerMin float64 `json:"rate_per_min"`
	// Kbps is the summed end-to-end goodput (replication mean) and
	// KbpsCI its 95% confidence half-width.
	Kbps   float64 `json:"kbps"`
	KbpsCI float64 `json:"kbps_ci95"`
	// Delivery is the mean per-flow delivery ratio (delivered sends over
	// attempted sends) and DeliveryCI its confidence half-width; -1 on
	// the baseline row.
	Delivery   float64 `json:"delivery,omitempty"`
	DeliveryCI float64 `json:"delivery_ci95,omitempty"`
	// RecoveryMs is the mean time to restore delivery after a fault
	// instant (downtime plus DSDV re-convergence); RecoveryMaxMs the
	// mean per-run worst case. -1 on the baseline row.
	RecoveryMs    float64 `json:"recovery_ms,omitempty"`
	RecoveryMaxMs float64 `json:"recovery_max_ms,omitempty"`
	// Unrecovered is the mean count of fault instants the flows never
	// delivered past within the horizon; -1 on the baseline row.
	Unrecovered float64 `json:"unrecovered,omitempty"`
	// DownSecs is the mean total station downtime per run in seconds.
	DownSecs float64 `json:"down_secs"`
	// CtlKbps is the DSDV control overhead summed over all stations.
	CtlKbps float64 `json:"ctl_kbps"`
}

// RunChurn measures delivery degradation versus churn rate: one point
// per configured rate, rate 0 first as the fault-free baseline.
func RunChurn(cfg ChurnConfig) ([]ChurnPoint, error) {
	return ChurnReps(cfg, Rep{})
}

// ChurnReps is RunChurn with replication: each point aggregates
// rep.Replications independently seeded runs.
func ChurnReps(cfg ChurnConfig, rep Rep) ([]ChurnPoint, error) {
	cfg = cfg.withDefaults()
	var points []ChurnPoint
	for _, rate := range cfg.RatesPerMin {
		spec, err := cfg.Spec(rate)
		if err != nil {
			return nil, err
		}
		sum, err := scenario.Replicate(spec, rep.reps(), rep.Workers, rep.Progress)
		if err != nil {
			return nil, fmt.Errorf("experiments: churn point %g/min: %w", rate, err)
		}
		p := ChurnPoint{
			RatePerMin: rate,
			Delivery:   -1, DeliveryCI: -1, RecoveryMs: -1, RecoveryMaxMs: -1, Unrecovered: -1,
		}
		for _, f := range sum.Flows {
			p.Kbps += f.Kbps.Mean
			p.KbpsCI += f.Kbps.CI95
		}
		if rate > 0 {
			p.Delivery, p.DeliveryCI, p.RecoveryMs, p.RecoveryMaxMs, p.Unrecovered = 0, 0, 0, 0, 0
			faulted := 0
			for _, f := range sum.Flows {
				if f.Delivery == nil {
					continue
				}
				faulted++
				p.Delivery += f.Delivery.Mean
				p.DeliveryCI += f.Delivery.CI95
				p.RecoveryMs += f.RecoveryMs.Mean
				p.RecoveryMaxMs += f.RecoveryMaxMs.Mean
				p.Unrecovered += f.Unrecovered.Mean
			}
			if faulted > 0 {
				n := float64(faulted)
				p.Delivery /= n
				p.DeliveryCI /= n
				p.RecoveryMs /= n
				p.RecoveryMaxMs /= n
			}
		}
		down := runner.SummarizeBy(sum.Runs, func(r scenario.Result) float64 {
			var d time.Duration
			for _, st := range r.Stations {
				d += st.DownTime.D()
			}
			return d.Seconds()
		})
		p.DownSecs = down.Mean
		ctl := runner.SummarizeBy(sum.Runs, func(r scenario.Result) float64 {
			var bytes uint64
			for _, st := range r.Stations {
				bytes += st.CtlBytes
			}
			return stats.Kbps(bytes, r.Duration.D())
		})
		p.CtlKbps = ctl.Mean
		points = append(points, p)
	}
	return points, nil
}

// RenderChurn prints the sweep as the CLI table: one row per churn
// rate, baseline first.
func RenderChurn(cfg ChurnConfig, points []ChurnPoint) string {
	cfg = cfg.withDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "Graceful degradation vs churn rate (5x5 mesh, dsdv routing, %v, downtime %v–%v)\n",
		cfg.Duration, cfg.MinDown, cfg.MaxDown)
	fmt.Fprintf(&b, "%-9s | %-18s | %-16s | %-20s | %-6s | %-9s | %s\n",
		"rate/min", "goodput [kbit/s]", "delivery", "recovery [ms]", "unrec", "down [s]", "ctl [kbit/s]")
	for _, p := range points {
		delivery, recovery, unrec := "       -", "          -", "   -"
		if p.Delivery >= 0 {
			delivery = fmt.Sprintf("%5.3f ± %-5.3f", p.Delivery, p.DeliveryCI)
			recovery = fmt.Sprintf("%6.1f (max %6.1f)", p.RecoveryMs, p.RecoveryMaxMs)
			unrec = fmt.Sprintf("%4.1f", p.Unrecovered)
		}
		fmt.Fprintf(&b, "%-9g | %7.1f ± %-7.1f | %-16s | %-20s | %-6s | %9.2f | %10.2f\n",
			p.RatePerMin, p.Kbps, p.KbpsCI, delivery, recovery, unrec, p.DownSecs, p.CtlKbps)
	}
	return b.String()
}
