package experiments

// Golden equivalence tests for the scenario-engine refactor.
//
// The testdata files were recorded by running this test with -update
// against the pre-refactor RunTwoNode/RunFourNode implementations (the
// hand-rolled topology builders). After the refactor the presets compile
// to scenario.Spec and run through scenario.Run; these tests prove the
// outputs stayed bit-identical — every float and every counter — at
// fixed seeds.
//
// Re-blessing with -update is only legitimate for a change that is
// *meant* to alter simulation results; document any re-bless in the
// commit message.

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"adhocsim/internal/phy"
)

var updateGolden = flag.Bool("update", false, "re-record golden experiment results")

const goldenHorizon = 2 * time.Second

// goldenTwoNodeCases enumerates the TwoNode configurations pinned by the
// golden file: every transport × access-mode cell plus a low-rate,
// long-distance point.
func goldenTwoNodeCases() map[string]TwoNode {
	return map[string]TwoNode{
		"udp-basic-11": {Rate: phy.Rate11, Transport: UDP, Duration: goldenHorizon, Seed: 42},
		"udp-rts-11":   {Rate: phy.Rate11, Transport: UDP, RTSCTS: true, Duration: goldenHorizon, Seed: 42},
		"tcp-basic-11": {Rate: phy.Rate11, Transport: TCP, Duration: goldenHorizon, Seed: 42},
		"tcp-rts-11":   {Rate: phy.Rate11, Transport: TCP, RTSCTS: true, Duration: goldenHorizon, Seed: 42},
		"udp-basic-2-far": {
			Rate: phy.Rate2, Distance: 50, Transport: UDP,
			PacketSize: 1024, Duration: goldenHorizon, Seed: 7,
		},
	}
}

// goldenFourNodeCases enumerates the FourNode configurations pinned by
// the golden file: the Figure 7/9 asymmetric line, the Figure 11
// symmetric scenario, a TCP panel, and a default-profile run.
func goldenFourNodeCases() map[string]FourNode {
	testbed := phy.TestbedProfile()
	return map[string]FourNode{
		"fig7-udp-basic": {
			Rate: phy.Rate11, D12: 25, D23: 82.5, D34: 25,
			Transport: UDP, Duration: goldenHorizon, Seed: 42, Profile: testbed,
		},
		"fig9-udp-rts": {
			Rate: phy.Rate2, D12: 25, D23: 92.5, D34: 25,
			Transport: UDP, RTSCTS: true, Duration: goldenHorizon, Seed: 42, Profile: testbed,
		},
		"fig11-tcp-basic": {
			Rate: phy.Rate11, D12: 25, D23: 62.5, D34: 25,
			Transport: TCP, Session2Reversed: true,
			Duration: goldenHorizon, Seed: 42, Profile: testbed,
		},
		"default-profile-udp": {
			Rate: phy.Rate11, D12: 25, D23: 82.5, D34: 25,
			Transport: UDP, Duration: goldenHorizon, Seed: 9,
		},
	}
}

func goldenPath(name string) string { return filepath.Join("testdata", name) }

// runGolden runs the recorded cases, compares them field-for-field
// against the golden file, and re-records under -update.
func runGolden[C any, R any](t *testing.T, file string, cases map[string]C, run func(C) R) {
	t.Helper()
	got := make(map[string]R, len(cases))
	for name, cfg := range cases {
		got[name] = run(cfg)
	}
	path := goldenPath(file)
	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
		t.Logf("recorded %d cases to %s", len(got), path)
		return
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to record): %v", err)
	}
	var want map[string]R
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("unmarshal golden: %v", err)
	}
	for name := range cases {
		w, ok := want[name]
		if !ok {
			t.Errorf("%s: no golden entry (run with -update)", name)
			continue
		}
		if !reflect.DeepEqual(got[name], w) {
			t.Errorf("%s: result diverged from pre-refactor golden\n got: %+v\nwant: %+v", name, got[name], w)
		}
	}
}

// TestGoldenTwoNode proves RunTwoNode reproduces the pre-refactor
// results bit-for-bit at fixed seeds.
func TestGoldenTwoNode(t *testing.T) {
	runGolden(t, "golden_two_node.json", goldenTwoNodeCases(), RunTwoNode)
}

// TestGoldenFourNode proves RunFourNode reproduces the pre-refactor
// results bit-for-bit at fixed seeds.
func TestGoldenFourNode(t *testing.T) {
	runGolden(t, "golden_four_node.json", goldenFourNodeCases(), RunFourNode)
}
