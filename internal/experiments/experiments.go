// Package experiments contains one runner per table and figure of the
// paper's evaluation, built on the full simulated stack. Each runner is
// deterministic given its seed; the cmd/adhocsim tool and the root-level
// benchmarks print their outputs in the paper's layout.
package experiments

import (
	"time"

	"adhocsim/internal/app"
	"adhocsim/internal/capacity"
	"adhocsim/internal/mac"
	"adhocsim/internal/node"
	"adhocsim/internal/phy"
	"adhocsim/internal/stats"
)

// Transport selects the workload of a session: CBR/UDP or ftp/TCP, the
// paper's two traffic types.
type Transport int

// Workload transports.
const (
	UDP Transport = iota
	TCP
)

// String names the transport.
func (t Transport) String() string {
	if t == TCP {
		return "TCP"
	}
	return "UDP"
}

// rtsThreshold maps the paper's two access modes onto the MAC config.
func rtsThreshold(rtscts bool) int {
	if rtscts {
		return mac.RTSAlways + 1 // any MSDU ≥ 1 byte is protected
	}
	return mac.RTSNever
}

// TwoNode parameterizes the single-session experiments of §3.1
// (Figure 2) and the range sweeps of §3.2.
type TwoNode struct {
	Rate       phy.Rate
	Distance   float64 // meters
	Transport  Transport
	RTSCTS     bool
	PacketSize int           // application bytes (the paper uses 512)
	Duration   time.Duration // measurement horizon
	Seed       uint64
	Profile    *phy.Profile // nil selects phy.DefaultProfile
	// RateController optionally enables dynamic rate switching (ARF) at
	// the sender; Rate is then only the starting point of the controller.
	RateController mac.RateController
}

func (c TwoNode) withDefaults() TwoNode {
	if c.Rate == 0 {
		c.Rate = phy.Rate11
	}
	if c.Distance == 0 {
		c.Distance = 10
	}
	if c.PacketSize == 0 {
		c.PacketSize = 512
	}
	if c.Duration == 0 {
		c.Duration = 10 * time.Second
	}
	return c
}

// TwoNodeResult reports one single-session run next to its analytic
// bound.
type TwoNodeResult struct {
	MeasuredMbps float64 // application-level goodput
	IdealMbps    float64 // Equation (1)/(2) with matching parameters
	SentPackets  uint64
	RcvdPackets  uint64
	Retries      uint64
	Drops        uint64
}

// RunTwoNode runs one saturating session between two stations
// cfg.Distance apart and reports goodput against the analytic maximum.
func RunTwoNode(cfg TwoNode) TwoNodeResult {
	cfg = cfg.withDefaults()
	net := newNet(cfg.Seed, cfg.Profile, cfg.PacketSize)
	macCfg := mac.Config{DataRate: cfg.Rate, RTSThreshold: rtsThreshold(cfg.RTSCTS)}
	srcCfg := macCfg
	srcCfg.RateControl = cfg.RateController
	src := net.AddStation(phy.Pos(0, 0), srcCfg)
	dst := net.AddStation(phy.Pos(cfg.Distance, 0), macCfg)

	res := TwoNodeResult{IdealMbps: idealFor(cfg)}
	switch cfg.Transport {
	case UDP:
		var sink app.UDPSink
		sink.ListenUDP(dst, 9000)
		cbr := app.NewCBR(net, src, dst.Addr(), 9000, cfg.PacketSize, 0)
		cbr.Start()
		net.Run(cfg.Duration)
		res.MeasuredMbps = sink.ThroughputMbps(cfg.Duration)
		res.SentPackets = cbr.Sent
		res.RcvdPackets = sink.Received
	case TCP:
		var sink app.TCPSink
		sink.ListenTCP(dst, 9000)
		bulk := app.StartBulk(net, src, dst.Addr(), 9000, cfg.PacketSize)
		net.Run(cfg.Duration)
		res.MeasuredMbps = sink.ThroughputMbps(cfg.Duration)
		res.SentPackets = bulk.Conn().Stats.SegsSent
		res.RcvdPackets = sink.Bytes / uint64(cfg.PacketSize)
	}
	res.Retries = src.MAC.Counters.Retries()
	res.Drops = src.MAC.Counters.TxDrops
	return res
}

// idealFor evaluates the analytic model with the run's parameters. TCP
// runs are still compared against Equation (1)/(2) — exactly what the
// paper's Figure 2 does ("ideal" vs "real TCP") — so the TCP bars sit
// visibly below their bound.
func idealFor(cfg TwoNode) float64 {
	m := capacity.New(cfg.Rate, cfg.PacketSize, cfg.RTSCTS)
	if cfg.Transport == TCP {
		m = m.WithOverhead(capacity.OverheadTCP)
	}
	return m.ThroughputMbps()
}

// FourNode parameterizes the two-session experiments of §3.3
// (Figures 5–12): S1 S2 S3 S4 on a line, session 1 = S1→S2, session 2 =
// S3→S4, or S4→S3 when Session2Reversed (the symmetric scenario of
// Figure 10).
type FourNode struct {
	Rate             phy.Rate
	D12, D23, D34    float64
	Transport        Transport
	RTSCTS           bool
	Session2Reversed bool
	PacketSize       int
	Duration         time.Duration
	Seed             uint64
	Profile          *phy.Profile
}

func (c FourNode) withDefaults() FourNode {
	if c.Rate == 0 {
		c.Rate = phy.Rate11
	}
	if c.PacketSize == 0 {
		c.PacketSize = 512
	}
	if c.Duration == 0 {
		c.Duration = 10 * time.Second
	}
	return c
}

// FourNodeResult reports both sessions' goodputs.
type FourNodeResult struct {
	Session1Kbps float64
	Session2Kbps float64
	// Fairness is Jain's index over the two sessions (1 = perfectly
	// balanced, 0.5 = one session starved).
	Fairness float64
	// EIFS deferrals at the two senders: the mechanism behind the
	// asymmetry (see DESIGN.md).
	EIFS1, EIFS2       uint64
	Retries1, Retries2 uint64
}

// RunFourNode runs the two concurrent sessions and reports per-session
// goodput in kbit/s, as the paper's Figures 7, 9, 11 and 12 do.
func RunFourNode(cfg FourNode) FourNodeResult {
	return RunFourNodeWith(cfg, nil)
}

// RunFourNodeWith is RunFourNode with a MAC-config hook applied to every
// station, used by the ablation benches (EIFS off, response-deferral
// quirk on, ...).
func RunFourNodeWith(cfg FourNode, mutate func(*mac.Config)) FourNodeResult {
	cfg = cfg.withDefaults()
	net := newNet(cfg.Seed, cfg.Profile, cfg.PacketSize)
	macCfg := mac.Config{DataRate: cfg.Rate, RTSThreshold: rtsThreshold(cfg.RTSCTS)}
	if mutate != nil {
		mutate(&macCfg)
	}

	s1 := net.AddStation(phy.Pos(0, 0), macCfg)
	s2 := net.AddStation(phy.Pos(cfg.D12, 0), macCfg)
	s3 := net.AddStation(phy.Pos(cfg.D12+cfg.D23, 0), macCfg)
	s4 := net.AddStation(phy.Pos(cfg.D12+cfg.D23+cfg.D34, 0), macCfg)

	tx2, rx2 := s3, s4
	if cfg.Session2Reversed {
		tx2, rx2 = s4, s3
	}

	var bytes1, bytes2 func() uint64
	switch cfg.Transport {
	case UDP:
		var sink1, sink2 app.UDPSink
		sink1.ListenUDP(s2, 9000)
		sink2.ListenUDP(rx2, 9000)
		app.NewCBR(net, s1, s2.Addr(), 9000, cfg.PacketSize, 0).Start()
		app.NewCBR(net, tx2, rx2.Addr(), 9000, cfg.PacketSize, 0).Start()
		bytes1 = func() uint64 { return sink1.Bytes }
		bytes2 = func() uint64 { return sink2.Bytes }
	case TCP:
		var sink1, sink2 app.TCPSink
		sink1.ListenTCP(s2, 9000)
		sink2.ListenTCP(rx2, 9000)
		app.StartBulk(net, s1, s2.Addr(), 9000, cfg.PacketSize)
		app.StartBulk(net, tx2, rx2.Addr(), 9000, cfg.PacketSize)
		bytes1 = func() uint64 { return sink1.Bytes }
		bytes2 = func() uint64 { return sink2.Bytes }
	}
	net.Run(cfg.Duration)

	r := FourNodeResult{
		Session1Kbps: stats.Kbps(bytes1(), cfg.Duration),
		Session2Kbps: stats.Kbps(bytes2(), cfg.Duration),
		EIFS1:        s1.MAC.Counters.EIFSDeferrals,
		EIFS2:        tx2.MAC.Counters.EIFSDeferrals,
		Retries1:     s1.MAC.Counters.Retries(),
		Retries2:     tx2.MAC.Counters.Retries(),
	}
	r.Fairness = stats.JainFairness(r.Session1Kbps, r.Session2Kbps)
	return r
}

// newNet builds a Network with the experiment conventions: TCP MSS equal
// to the application packet size, so one packet rides in one segment as
// in the paper's measurements.
func newNet(seed uint64, profile *phy.Profile, packetSize int) *node.Network {
	opts := []node.Option{node.WithMSS(packetSize)}
	if profile != nil {
		opts = append(opts, node.WithProfile(profile))
	}
	return node.NewNetwork(seed, opts...)
}
