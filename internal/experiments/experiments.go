// Package experiments contains one runner per table and figure of the
// paper's evaluation, built on the full simulated stack. Each runner is
// deterministic given its seed; the cmd/adhocsim tool and the root-level
// benchmarks print their outputs in the paper's layout.
//
// Since the scenario-engine refactor the TwoNode and FourNode runners
// are thin presets: each compiles to a scenario.Spec (see the Spec
// methods) and runs through scenario.Run. Golden tests pin their outputs
// bit-for-bit to the pre-refactor hand-rolled implementations.
package experiments

import (
	"time"

	"adhocsim/internal/capacity"
	"adhocsim/internal/mac"
	"adhocsim/internal/phy"
	"adhocsim/internal/scenario"
)

// Transport selects the workload of a session: CBR/UDP or ftp/TCP, the
// paper's two traffic types.
type Transport int

// Workload transports.
const (
	UDP Transport = iota
	TCP
)

// String names the transport.
func (t Transport) String() string {
	if t == TCP {
		return "TCP"
	}
	return "UDP"
}

// scenarioTransport maps the experiment transport onto the scenario
// layer's name.
func (t Transport) scenarioTransport() scenario.Transport {
	if t == TCP {
		return scenario.TransportTCP
	}
	return scenario.TransportUDP
}

// TwoNode parameterizes the single-session experiments of §3.1
// (Figure 2) and the range sweeps of §3.2.
type TwoNode struct {
	Rate       phy.Rate
	Distance   float64 // meters
	Transport  Transport
	RTSCTS     bool
	PacketSize int           // application bytes (the paper uses 512)
	Duration   time.Duration // measurement horizon
	Seed       uint64
	Profile    *phy.Profile // nil selects phy.DefaultProfile
	// RateController optionally enables dynamic rate switching (ARF) at
	// the sender; Rate is then only the starting point of the controller.
	RateController mac.RateController
}

func (c TwoNode) withDefaults() TwoNode {
	if c.Rate == 0 {
		c.Rate = phy.Rate11
	}
	if c.Distance == 0 {
		c.Distance = 10
	}
	if c.PacketSize == 0 {
		c.PacketSize = 512
	}
	if c.Duration == 0 {
		c.Duration = 10 * time.Second
	}
	return c
}

// TwoNodeResult reports one single-session run next to its analytic
// bound.
type TwoNodeResult struct {
	MeasuredMbps float64 // application-level goodput
	IdealMbps    float64 // Equation (1)/(2) with matching parameters
	SentPackets  uint64
	RcvdPackets  uint64
	Retries      uint64
	Drops        uint64
}

// Spec compiles the experiment into the declarative scenario it always
// was: two stations on a line, one saturating flow. The RateController,
// being a live object, rides along as a MACHook on the sender.
func (c TwoNode) Spec() scenario.Spec {
	c = c.withDefaults()
	spec := scenario.Spec{
		Name:          "paper-two-node",
		Description:   "§3.1 single saturating session between two stations",
		Seed:          c.Seed,
		Duration:      scenario.Duration(c.Duration),
		MSS:           c.PacketSize,
		CustomProfile: c.Profile,
		Topology:      scenario.Topology{Kind: scenario.KindLine, Spacings: []float64{c.Distance}},
		MAC:           scenario.MACParams{RateMbps: c.Rate.Mbps(), RTSCTS: c.RTSCTS},
		Flows: []scenario.Flow{{
			Src: 0, Dst: 1,
			Transport:  c.Transport.scenarioTransport(),
			PacketSize: c.PacketSize,
			Port:       9000,
		}},
	}
	if rc := c.RateController; rc != nil {
		spec.MACHook = func(station int, cfg *mac.Config) {
			if station == 0 {
				cfg.RateControl = rc
			}
		}
	}
	return spec
}

// RunTwoNode runs one saturating session between two stations
// cfg.Distance apart and reports goodput against the analytic maximum.
func RunTwoNode(cfg TwoNode) TwoNodeResult {
	cfg = cfg.withDefaults()
	flow := scenario.MustRun(cfg.Spec()).Flows[0]
	return TwoNodeResult{
		IdealMbps:    idealFor(cfg),
		MeasuredMbps: flow.GoodputMbps,
		SentPackets:  flow.AppSent,
		RcvdPackets:  flow.Received,
		Retries:      flow.Retries,
		Drops:        flow.TxDrops,
	}
}

// idealFor evaluates the analytic model with the run's parameters. TCP
// runs are still compared against Equation (1)/(2) — exactly what the
// paper's Figure 2 does ("ideal" vs "real TCP") — so the TCP bars sit
// visibly below their bound.
func idealFor(cfg TwoNode) float64 {
	m := capacity.New(cfg.Rate, cfg.PacketSize, cfg.RTSCTS)
	if cfg.Transport == TCP {
		m = m.WithOverhead(capacity.OverheadTCP)
	}
	return m.ThroughputMbps()
}

// FourNode parameterizes the two-session experiments of §3.3
// (Figures 5–12): S1 S2 S3 S4 on a line, session 1 = S1→S2, session 2 =
// S3→S4, or S4→S3 when Session2Reversed (the symmetric scenario of
// Figure 10).
type FourNode struct {
	Rate             phy.Rate
	D12, D23, D34    float64
	Transport        Transport
	RTSCTS           bool
	Session2Reversed bool
	PacketSize       int
	Duration         time.Duration
	Seed             uint64
	Profile          *phy.Profile
}

func (c FourNode) withDefaults() FourNode {
	if c.Rate == 0 {
		c.Rate = phy.Rate11
	}
	if c.PacketSize == 0 {
		c.PacketSize = 512
	}
	if c.Duration == 0 {
		c.Duration = 10 * time.Second
	}
	return c
}

// FourNodeResult reports both sessions' goodputs.
type FourNodeResult struct {
	Session1Kbps float64
	Session2Kbps float64
	// Fairness is Jain's index over the two sessions (1 = perfectly
	// balanced, 0.5 = one session starved).
	Fairness float64
	// EIFS deferrals at the two senders: the mechanism behind the
	// asymmetry (see DESIGN.md).
	EIFS1, EIFS2       uint64
	Retries1, Retries2 uint64
}

// RunFourNode runs the two concurrent sessions and reports per-session
// goodput in kbit/s, as the paper's Figures 7, 9, 11 and 12 do.
func RunFourNode(cfg FourNode) FourNodeResult {
	return RunFourNodeWith(cfg, nil)
}

// Spec compiles the experiment into its declarative form: four stations
// on a line with the paper's hop distances, two concurrent flows.
func (c FourNode) Spec() scenario.Spec {
	c = c.withDefaults()
	session2 := scenario.Flow{
		Src: 2, Dst: 3,
		Transport:  c.Transport.scenarioTransport(),
		PacketSize: c.PacketSize,
		Port:       9000,
	}
	if c.Session2Reversed {
		session2.Src, session2.Dst = 3, 2
	}
	return scenario.Spec{
		Name:          "paper-four-node",
		Description:   "§3.3 two concurrent sessions on a four-station line",
		Seed:          c.Seed,
		Duration:      scenario.Duration(c.Duration),
		MSS:           c.PacketSize,
		CustomProfile: c.Profile,
		Topology: scenario.Topology{
			Kind:     scenario.KindLine,
			Spacings: []float64{c.D12, c.D23, c.D34},
		},
		MAC: scenario.MACParams{RateMbps: c.Rate.Mbps(), RTSCTS: c.RTSCTS},
		Flows: []scenario.Flow{
			{
				Src: 0, Dst: 1,
				Transport:  c.Transport.scenarioTransport(),
				PacketSize: c.PacketSize,
				Port:       9000,
			},
			session2,
		},
	}
}

// RunFourNodeWith is RunFourNode with a MAC-config hook applied to every
// station, used by the ablation benches (EIFS off, response-deferral
// quirk on, ...).
func RunFourNodeWith(cfg FourNode, mutate func(*mac.Config)) FourNodeResult {
	spec := cfg.Spec()
	if mutate != nil {
		spec.MACHook = func(_ int, c *mac.Config) { mutate(c) }
	}
	run := scenario.MustRun(spec)
	f1, f2 := run.Flows[0], run.Flows[1]
	return FourNodeResult{
		Session1Kbps: f1.GoodputKbps,
		Session2Kbps: f2.GoodputKbps,
		Fairness:     run.Fairness,
		EIFS1:        f1.EIFSDeferrals,
		EIFS2:        f2.EIFSDeferrals,
		Retries1:     f1.Retries,
		Retries2:     f2.Retries,
	}
}
